package disco_test

import (
	"fmt"
	"log"
	"time"

	"disco"
)

// Example federates two relational sources under one mediator type and
// queries them through a single extent (the paper's §1.2 example).
func Example() {
	r0 := disco.NewRelStore()
	r0.CreateTable("person0", "id", "name", "salary")
	r0.Insert("person0", disco.Int(1), disco.Str("Mary"), disco.Int(200))
	r1 := disco.NewRelStore()
	r1.CreateTable("person1", "id", "name", "salary")
	r1.Insert("person1", disco.Int(2), disco.Str("Sam"), disco.Int(50))

	m := disco.New()
	m.RegisterEngine("r0", r0)
	m.RegisterEngine("r1", r1)
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		r1 := Repository(address="mem:r1");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;
	`); err != nil {
		log.Fatal(err)
	}

	v, err := m.Query(`select x.name from x in person where x.salary > 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output: bag("Mary", "Sam")
}

// Example_partialAnswers shows the §4 semantics: an unavailable source
// turns the answer into a resubmittable query.
func Example_partialAnswers() {
	r0 := disco.NewRelStore()
	r0.CreateTable("person0", "id", "name", "salary")
	r0.Insert("person0", disco.Int(1), disco.Str("Mary"), disco.Int(200))
	srv0, err := disco.ServeEngine("127.0.0.1:0", r0)
	if err != nil {
		log.Fatal(err)
	}
	defer srv0.Close()

	r1 := disco.NewRelStore()
	r1.CreateTable("person1", "id", "name", "salary")
	r1.Insert("person1", disco.Int(2), disco.Str("Sam"), disco.Int(50))
	srv1, err := disco.ServeEngine("127.0.0.1:0", r1)
	if err != nil {
		log.Fatal(err)
	}
	defer srv1.Close()

	m := disco.New(disco.WithTimeout(200 * time.Millisecond))
	if err := m.ExecODL(fmt.Sprintf(`
		r0 := Repository(address=%q);
		r1 := Repository(address=%q);
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;
	`, srv0.Addr(), srv1.Addr())); err != nil {
		log.Fatal(err)
	}

	srv0.SetAvailable(false) // r0 stops answering
	ans, err := m.QueryPartial(`select x.name from x in person where x.salary > 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("complete:", ans.Complete)
	fmt.Println("answer-as-query:", ans.Residual)

	srv0.SetAvailable(true) // recovery: resubmit the answer
	again, err := m.QueryPartial(ans.Residual.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("resubmitted:", again)
	// Output:
	// complete: false
	// answer-as-query: union(select x.name from x in person0 where x.salary > 10, bag("Sam"))
	// resubmitted: bag("Mary", "Sam")
}

// Example_views defines the paper's double reconciliation view (§2.2.3).
func Example_views() {
	r0 := disco.NewRelStore()
	r0.CreateTable("person0", "id", "name", "salary")
	r0.Insert("person0", disco.Int(1), disco.Str("Mary"), disco.Int(200))
	r1 := disco.NewRelStore()
	r1.CreateTable("person1", "id", "name", "salary")
	r1.Insert("person1", disco.Int(1), disco.Str("Mary"), disco.Int(55))

	m := disco.New()
	m.RegisterEngine("r0", r0)
	m.RegisterEngine("r1", r1)
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		r1 := Repository(address="mem:r1");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;

		define double as
		    select struct(name: x.name, salary: x.salary + y.salary)
		    from x in person0 and y in person1
		    where x.id = y.id;
	`); err != nil {
		log.Fatal(err)
	}
	v, err := m.Query(`select d from d in double`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output: bag(struct(name: "Mary", salary: 255))
}
