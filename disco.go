// Package disco is a Go implementation of DISCO — the Distributed
// Information Search COmponent (Tomasic, Raschid, Valduriez; ICDCS 1996) —
// a distributed mediator system for querying large numbers of
// heterogeneous, autonomous data sources.
//
// A Mediator accepts ODMG-style ODL definitions that model data sources as
// first-class objects (repositories, wrappers, extents with local
// transformation maps), evaluates OQL queries across the registered
// sources, pushes work to each source as far as that source's wrapper
// grammar allows, learns per-source costs from observed exec calls, and —
// when sources fail to answer in time — returns partial answers that are
// themselves OQL queries, resubmittable once the sources recover.
//
// Quick start:
//
//	m := disco.New()
//	store := disco.NewRelStore()
//	store.CreateTable("person0", "id", "name", "salary")
//	store.Insert("person0", disco.Int(1), disco.Str("Mary"), disco.Int(200))
//	m.RegisterEngine("r0", store)
//	m.ExecODL(`
//	    r0 := Repository(address="mem:r0");
//	    w0 := WrapperPostgres();
//	    interface Person (extent person) {
//	        attribute Short id;
//	        attribute String name;
//	        attribute Short salary;
//	    }
//	    extent person0 of Person wrapper w0 repository r0;
//	`)
//	v, err := m.Query(`select x.name from x in person where x.salary > 10`)
//
// # Scaling out
//
// One logical extent can be horizontally partitioned across several
// repositories with the "at" form of the extent declaration:
//
//	extent people of Person wrapper w0 at r0, r1, r2;
//
// A query over people fans out: the optimizer rewrites Get(people) into a
// parallel union of per-partition submits — pushing selections and
// projections down to each shard as its wrapper allows — and the physical
// layer executes the fan-out with a bounded-concurrency scatter-gather
// operator (see WithMaxFanout) that merges shard streams as they arrive and
// fuses distinct semantics into the merge where the plan requires it. Each
// shard call is recorded separately in the learned cost history, so the
// optimizer knows which shards are slow.
//
// The extent declaration can also carry the placement itself — how rows
// distribute over the repository list:
//
//	extent people of Person wrapper w0 at r0, r1, r2
//	    partition by hash(id);
//	extent orders of Order wrapper w0 at r0, r1, r2
//	    partition by range(total) (..100, 100..1000, 1000..);
//
// The clause is a contract (rows must live where the scheme says; range
// bounds are inclusive below, exclusive above), and the optimizer prunes
// with it: a point predicate over the partition attribute (id = 7, id in
// bag(3, 11)) eliminates every shard but the keys' home shards before the
// fan-out is built, so a point query over a 16-way extent performs exactly
// one source call, and contradictory predicates answer the empty bag with
// zero calls. Range schemes additionally prune on order predicates
// (total < 100 reads one shard). Explain names the skipped shards in a
// "pruned shards:" line.
//
// Placement also rewrites joins: when two extents are co-partitioned (same
// scheme and attribute, same partition count) and joined on the partition
// attribute, the optimizer replaces the all-pairs cross-shard join with a
// parallel union of per-shard joins, priced by the cost model's
// max-of-survivors rule — and when the two extents share repositories,
// each per-shard join is itself eligible for whole-join pushdown into the
// shard's wrapper. Shards pruned from one side of the join drop their
// counterpart on the other side.
//
// Each partition may also declare replicas — repositories holding a copy
// of the same rows — by separating them with "|" in the placement list,
// primary first:
//
//	extent people of Person wrapper w0 at r0|r0b, r1|r1b, r2;
//
// A submit that finds its shard's primary unavailable (timeout, refused
// or failed dial) transparently retries the shard's replicas, splitting
// the remaining evaluation deadline over the copies left to try, so even
// a cold failover reaches a live replica before the deadline. The answer
// stays complete — partial evaluation fires only when every copy of a
// shard is down. The replica contract mirrors the partitioning one:
// every repository of a group must hold the same rows.
//
// Routing among a shard's copies is fed by two signals. The learned cost
// history orders live copies fastest-first (an unmeasured copy never
// outranks a measured one). And every source carries a circuit breaker:
// consecutive classified unavailabilities (WithBreaker's threshold,
// default 3) open it, after which routing skips the dead copy without
// re-paying its timeout; once the cooldown (default 5s) elapses, a
// half-open probe — a background ping riding the next query that routes
// around the copy — decides whether it closes again. The breaker is
// advisory: when every copy of a shard is open, the mediator probes them
// all anyway rather than declare unavailability without dialing, so a
// breaker can delay but never forge a partial answer. The cost model
// consults the breakers too, charging submits to open sources the
// timeout they would burn, and Mediator.BreakerState exposes the state
// per repository. A caller cancelling a query is classified as neither
// an answer nor unavailability: it cannot degrade the query into a
// partial answer, and it cannot poison a breaker.
//
// Replicas also add read capacity, not just safety. WithLoadBalancing
// spreads reads across a shard's breaker-healthy copies by weighted random
// choice, each copy weighted by the inverse of its observed median latency
// (a small floor keeps every copy measured, so a recovered copy earns its
// share back), so aggregate throughput grows with the copy count instead
// of pinning the primary. WithHedging cuts the latency tail the balancer
// cannot: a submit that outlasts the healthy copies' observed 99th
// percentile fires one backup submit to the next-ranked copy, the first
// answer wins, and the loser is cancelled — a cancelled loser records
// neither a cost-history observation nor a breaker verdict, so hedging
// never distorts the signals routing runs on. Hedges are bounded by a
// global budget (a small fraction of total submits) and a floor on the
// trigger delay, so a mis-learned p99 cannot double the load. A hedged
// mediator also hurries scatter-gather stragglers: when most partitions of
// a fan-out have answered, the laggards' in-flight submits are told to
// hedge immediately rather than wait out the trigger. Trace.HedgesFired
// and Trace.HedgesWon report the hedging activity a query saw.
//
// Partial answers compose with partitioning: if a shard fails to answer
// before the deadline (every replica, when it has them), QueryPartial
// keeps the answered shards' data and returns a residual query over only
// the missing partitions, written with the shard-addressing form
// extent@repository:
//
//	union(select x.name from x in people@r2 where x.salary > 60, bag("Ben", "Mary"))
//
// Resubmitting that answer once any copy of r2 recovers touches only
// that shard. The extent@repository name is ordinary OQL here and can
// also be queried directly to address one shard (replica names
// canonicalize to their shard). See examples/sharding for the full
// scenario.
//
// Placement is not fixed at declaration time: a shard can move to another
// repository, split at a range bound, or merge into its neighbor while
// queries keep running. A migration is a catalog-driven state machine —
// BeginShardMove (or BeginShardSplit / BeginShardMerge) records the intent,
// and each AdvanceMigration call performs one phase transition:
//
//	declared -> copying    -> dual-read -> cutover -> done
//	                      \_ aborted (AbortMigration, from any live phase)
//
// The copying step bulk-copies the shard's rows into the destination;
// during dual-read the planner rewrites the migrating shard's read into a
// distinct union over both placements, so a destination that dies
// mid-migration degrades reads to the old copy rather than a partial
// answer; cutover swaps the placement in one catalog version bump, which
// the prepared-plan cache observes like any other catalog change — new
// plans read the new placement, in-flight plans drain against the old one
// before its rows are released. Every transition is itself one version
// bump, every resting phase survives DumpODL round trips (the record is
// emitted as a migrate clause), and a failed transition leaves the prior
// resting state intact, so crashing at any boundary never duplicates or
// drops a tuple: retry AdvanceMigration, or AbortMigration to roll the
// placement back to a consistent version. MoveShard, SplitShard and
// MergeShards wrap the begin-advance loop end to end.
//
// Where to rebalance comes from the traffic history: every shard read
// bumps a per-shard counter (ShardTraffic; Trace.ShardReads has the
// per-query slice), HotShards flags shards drawing a disproportionate
// share, and Explain surfaces the skew as "hot shards: people@r1 (42%)"
// lines with a concrete rebalance recommendation the migration calls
// above can act on. See examples/sharding for a live move under
// concurrent readers.
//
// Underneath every remote scenario sits a persistent wire layer. The
// mediator keeps one bounded pool of long-lived TCP connections per
// repository address, shared by every wrapper instance and freshness check
// that talks to it; concurrent submits multiplex over those connections
// and are matched back to callers by frame ID, broken connections are
// evicted and redialed transparently, and idle connections are reaped.
// Servers execute each pipelined request on its own goroutine (responses
// serialized per connection, answered in completion order), so a 16-shard
// scatter-gather whose shards share one mediator connection runs its
// shards concurrently instead of serializing behind the slowest one — and
// the fault-injection semantics (unavailability, injected latency) apply
// per request, exactly as the §4 timeout model assumes.
//
// Pool health is not discovered by borrowers: connections that idle past a
// health interval are pinged in the background, and one that stops
// answering (half-open TCP, hung peer) is evicted before any query is
// routed over it, so the next submit dials fresh instead of timing out on
// a dead socket.
//
// # Staying up
//
// Failover, partial answers and breakers protect a mediator from its
// sources; overload protection protects it from its callers. WithAdmission
// installs an admission gate in front of query execution: at most
// maxConcurrent queries run, a bounded FIFO holds the next arrivals, and
// everything past those bounds is shed immediately with an *OverloadError —
// a typed verdict distinct from unavailability, because nothing is down and
// a resubmission moments later may well be admitted (IsOverloadError tells
// the two apart). A shed query performs zero source dials. The gate is
// deadline-aware: it tracks the median service time of recent queries, and
// a query whose remaining deadline cannot cover it is rejected on arrival
// rather than queued to die — early rejection is what keeps the latency of
// admitted queries bounded when offered load exceeds capacity. Bring
// deadlines via QueryContext and QueryPartialContext; Trace.AdmissionWait
// and Trace.Shed record what the gate did to a query.
//
// Servers shed too: a wire server refuses requests beyond its per-
// connection cap (and optional server-wide cap, WithMaxServerInflight)
// with an explicit overload frame instead of silently queueing them, so a
// mediator learns of a saturated source while it can still act.
//
// Between shed-nothing and shed-everything sits the retry budget.
// Transient source failures — a connection dropped mid-answer, a refused
// dial with deadline to spare, an overload frame from a live server — earn
// one budgeted retry with jittered backoff before degrading into ordinary
// unavailability (and from there into failover or a partial answer). The
// budget is a token bucket funded by submit traffic (roughly one retry per
// ten submits), so under a healthy fleet a blip is retried invisibly,
// while under collapse — when most submits fail — the budget exhausts and
// the mediator degrades instead of doubling the load on whatever is left.
// Trace.Retried and Trace.RetryBudgetExhausted expose the budget's
// activity; Mediator.OverloadStats totals it.
//
// Abandoned work is reclaimed, not merely ignored. A caller's deadline
// rides every wire request as its remaining millisecond budget, so a
// source derives each handler's context from the budget that actually
// remains and rejects a request whose budget is already spent without
// executing it at all. Cancellation propagates the other way on a
// dedicated fire-and-forget protocol frame: when a caller walks away from
// an in-flight call — a hedge race resolved against it, the caller's
// context ended, the pool was torn down, the connection died — the client
// tells the server, the matching handler context is cancelled, and the
// engine stops at its next batch boundary with the response suppressed.
// The guarantee is deliberately asymmetric: expired-on-arrival rejection
// is exact (the handler never runs), while cancel frames are best-effort —
// a cancel racing the response loses benignly, and a frame that cannot be
// written is backstopped by the server cancelling everything in flight
// when the connection dies. Either way a cancelled call is a caller-side
// verdict: it never trips a breaker, never records a cost observation,
// and never becomes a partial answer. Trace.CancelsSent and the wire
// Stats (Cancelled, ExpiredOnArrival) expose the traffic.
//
// This degradation ladder is verified by seeded fault injection: the
// internal chaos package proxies the wire transport and composes latency
// spikes, mid-answer drops, partitions, corrupt frames and slow-drip
// responses on a scripted timeline, and the harness soak tests assert the
// contract under chaos — sheds are explicit, admitted queries stay fast,
// partitions degrade to residuals rather than errors, and recovery is
// complete once the faults lift.
//
// # Correctness invariants
//
// Several of the guarantees above are lexical properties of the code, not
// runtime behaviors — and each was once violated by a real bug the chaos
// harness caught. They are now enforced mechanically by the project's own
// analyzer suite (internal/lint, run via cmd/disco-lint, "make lint", and
// a dedicated CI job):
//
//   - eofidentity: io.EOF must be compared with err == io.EOF, never
//     errors.Is(err, io.EOF). Wrapped EOFs from a dropped connection are
//     NOT end-of-stream — treating them as one silently truncated answers
//     mid-drain (the PR 9 truncation bug). Sites that deliberately
//     classify wrapped EOFs as transport failures annotate themselves.
//   - ctxflow: no context.Background()/TODO() on request paths. A
//     detached context cannot carry the caller's deadline or
//     cancellation, which is how abandoned work escapes reclamation.
//     Deliberate detachments (server lifetime roots, background probes)
//     carry an annotation naming what bounds them instead.
//   - gotrack: every goroutine started in core, physical or wire must be
//     lexically tied to a WaitGroup, a close-signal channel, or a
//     context — an untracked goroutine is a leak the next soak finds.
//   - locksend: no blocking channel operation while a mutex is held; a
//     full peer turns that into a deadlock that holds the lock forever.
//   - traceexplain: every exported core.Trace field must be rendered by
//     the explain output, so observability cannot silently rot as fields
//     are added.
//
// A finding is suppressed only by an inline annotation that names the
// analyzer and justifies the exception:
//
//	//lint:allow ctxflow server lifetime root; bounded by Server.Close
//
// The justification is mandatory — a bare allow is itself a finding.
//
// Repeated queries skip recompilation entirely: Prepare results — parse,
// view expansion, compilation and optimization — are cached per (query
// text, catalog version), so a repeated query goes straight to execution.
// Trace.CacheHit reports the hit (with all front-half stage timings at
// zero) and any ODL change invalidates the cache, the paper's §3.3
// cached-plan rule applied to the whole pipeline.
//
// The execution engine itself is compiled and batched. Every scalar
// expression a plan evaluates per tuple — predicates, projections, join
// keys, dependent domains — is lowered once into a tree of Go closures:
// constants fold (a constant side of "in" becomes a prebuilt hash set),
// variables resolve to fixed slots in a flat, reusable environment rather
// than an allocated binding chain, and struct field accesses cache the
// field offset they resolved and revalidate it with one name comparison
// per tuple. The compiled programs ride the prepared-statement cache, so
// re-executing a prepared query skips expression lowering too; the
// tree-walking evaluator remains as the semantic reference, and the
// compiled engine is differentially fuzzed against it. Operators exchange
// data in batches of up to 1024 values through reusable buffers instead of
// tuple-at-a-time calls: selections filter each batch through a selection
// vector and compact it in place, hash joins key an entire probe batch per
// pass, and the scatter-gather merge forwards whole batches from shard
// goroutines through a recycling free list — one channel operation per
// batch where it used to pay one per tuple.
//
// See the examples directory for multi-source federations, wide-area
// deployments over TCP, partial answers, mediator composition and sharding.
package disco

import (
	"disco/internal/core"
	"disco/internal/partial"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// Mediator is a DISCO mediator: the query processor that federates data
// sources. Create one with New.
type Mediator = core.Mediator

// Option configures a Mediator.
type Option = core.Option

// Trace carries per-stage pipeline timings for one query (Figure 2 of the
// paper: parse, view expansion, compile, optimize, execute).
type Trace = core.Trace

// Answer is a query result under partial-evaluation semantics: either a
// complete value or a residual query over the unavailable sources.
type Answer = partial.Answer

// New returns an empty mediator.
func New(opts ...Option) *Mediator { return core.New(opts...) }

// WithTimeout sets the evaluation deadline after which silent sources are
// classified unavailable (the paper's "designated time", §4).
var WithTimeout = core.WithTimeout

// WithMaxFanout bounds how many partitions of a sharded extent the mediator
// queries concurrently (0 = all at once).
var WithMaxFanout = core.WithMaxFanout

// WithBreaker tunes the per-source circuit breakers: a source opens after
// threshold consecutive classified unavailabilities (replica routing then
// skips it without re-paying its timeout) and is probed again after
// cooldown. Zero values keep the defaults.
var WithBreaker = core.WithBreaker

// WithLoadBalancing spreads reads across a shard's breaker-healthy replicas
// by weighted random choice, weighting each copy by the inverse of its
// observed median latency. Off by default: replicas then serve only as
// failover targets.
var WithLoadBalancing = core.WithLoadBalancing

// WithHedging enables hedged requests: a submit that outlasts the healthy
// copies' observed p99 latency fires one backup submit to the next-ranked
// replica and the first answer wins. floor bounds the trigger delay from
// below (0 keeps the default); a global budget caps hedges at a small
// fraction of total submits.
var WithHedging = core.WithHedging

// WithAdmission installs the overload-protection gate: at most
// maxConcurrent queries execute, at most maxQueued wait FIFO behind them
// (0 = default), and nothing waits past maxWait (0 = default) or past the
// point where its own deadline could no longer cover the typical service
// time. Queries beyond those bounds are shed with an *OverloadError
// before any source is dialed.
var WithAdmission = core.WithAdmission

// OverloadError reports that the mediator (or a gate on its path) shed a
// query to protect itself. Nothing is known to be down — the same query
// resubmitted after a backoff may well be admitted.
type OverloadError = core.OverloadError

// IsOverloadError reports whether err is (or wraps) an overload shed, as
// opposed to an unavailability or a genuine query failure.
var IsOverloadError = core.IsOverloadError

// BreakerState is the state of one source's circuit breaker, as reported
// by Mediator.BreakerState: closed (healthy), open (recently dead, routed
// around), or half-open (one probe in flight).
type BreakerState = core.BreakerState

// Breaker states.
const (
	BreakerClosed   = core.BreakerClosed
	BreakerOpen     = core.BreakerOpen
	BreakerHalfOpen = core.BreakerHalfOpen
)

// Value is a runtime value of the DISCO data model: scalars, structs and
// the bag/list/set collections.
type Value = types.Value

// Scalar and collection values.
type (
	// Null is the absent value.
	Null = types.Null
	// Bool is a boolean value.
	Bool = types.Bool
	// Int is an integer value (ODL Short/Long).
	Int = types.Int
	// Float is a floating-point value.
	Float = types.Float
	// Str is a string value.
	Str = types.Str
	// Struct is an ordered record of named fields.
	Struct = types.Struct
	// Bag is an unordered collection preserving duplicates — the answer
	// collection of DISCO.
	Bag = types.Bag
	// Field is one named field of a Struct.
	Field = types.Field
)

// NewBag constructs a bag value.
func NewBag(elems ...Value) *Bag { return types.NewBag(elems...) }

// NewStruct constructs a struct value.
func NewStruct(fields ...Field) *Struct { return types.NewStruct(fields...) }

// Engine is an in-process data source that can be registered on a mediator
// under a mem: repository address.
type Engine = source.Engine

// RelStore is the bundled relational engine (SQL dialect).
type RelStore = source.RelStore

// DocStore is the bundled keyword-search document store.
type DocStore = source.DocStore

// NewRelStore returns an empty relational store.
func NewRelStore() *RelStore { return source.NewRelStore() }

// NewDocStore returns an empty document store.
func NewDocStore() *DocStore { return source.NewDocStore() }

// Server is a running wire-protocol server (data source or mediator).
type Server = wire.Server

// ServerOption configures a Server.
type ServerOption = wire.ServerOption

// WithMaxInflight caps concurrent request execution per server connection;
// requests beyond the cap are shed with an explicit overload frame.
var WithMaxInflight = wire.WithMaxInflight

// WithMaxServerInflight caps concurrent request execution across all of a
// server's connections (0 = no server-wide cap); requests beyond the cap
// are shed with an explicit overload frame.
var WithMaxServerInflight = wire.WithMaxServerInflight

// ServeEngine exposes an engine as a networked data source on addr
// (use "127.0.0.1:0" to pick a free port).
func ServeEngine(addr string, e Engine, opts ...ServerOption) (*Server, error) {
	return wire.NewServer(addr, core.EngineHandler{Engine: e}, opts...)
}
