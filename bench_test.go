package disco

// Benchmarks regenerating the per-experiment measurements indexed in
// DESIGN.md (run: go test -bench=. -benchmem). The corresponding
// human-readable tables come from cmd/disco-bench; these give the
// machine-readable timings per operation, plus ablations for the design
// choices DESIGN.md calls out (join algorithm, Earley recognition, plan
// caching, wire encoding).

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/catalog"
	"disco/internal/core"
	"disco/internal/costmodel"
	"disco/internal/harness"
	"disco/internal/oql"
	"disco/internal/partial"
	"disco/internal/physical"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

const paperQuery = `select x.name from x in person where x.salary > 10`

// BenchmarkFigure1Architecture measures the full Figure 1 round trip:
// application -> mediator -> wrappers -> two TCP sources and back.
func BenchmarkFigure1Architecture(b *testing.B) {
	f, err := harness.NewPersonFleet(harness.FleetConfig{Sources: 2, RowsPerSource: 100, TCP: true})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.M.Query(paperQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Pipeline measures the Prototype 0 stages separately.
func BenchmarkFigure2Pipeline(b *testing.B) {
	f, err := harness.NewPersonFleet(harness.FleetConfig{Sources: 2, RowsPerSource: 100})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()

	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := oql.ParseQuery(paperQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepare-warm", func(b *testing.B) {
		// Parse + expand + compile + optimize with a hot plan cache.
		if _, _, err := f.M.Prepare(paperQuery); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := f.M.Prepare(paperQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.M.Query(paperQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute-distinct", func(b *testing.B) {
		// The distinct path keys every merged row (CanonicalKey); it is
		// where the reusable key buffer shows up.
		const q = `select distinct x.name from x in person where x.salary > 10`
		for i := 0; i < b.N; i++ {
			if _, err := f.M.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAvailabilityScaling measures query latency as sources are added,
// all available (the E1 denominator; unavailable-source latency is the
// evaluation deadline by construction).
func BenchmarkAvailabilityScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("sources=%d", n), func(b *testing.B) {
			f, err := harness.NewPersonFleet(harness.FleetConfig{Sources: n, RowsPerSource: 20, TCP: true})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.M.Query(paperQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartialEvaluation measures residual construction — the cost the
// §4 semantics adds once outcomes are known (the wait for the deadline is
// workload, not overhead).
func BenchmarkPartialEvaluation(b *testing.B) {
	ref := algebra.ExtentRef{Extent: "person0", Repo: "r0", Source: "person0",
		Iface: "Person", Attrs: []string{"id", "name", "salary"}}
	ref1 := ref
	ref1.Extent, ref1.Repo, ref1.Source = "person1", "r1", "person1"
	sub0 := &algebra.Submit{Repo: "r0", Input: &algebra.Get{Ref: ref}}
	sub1 := &algebra.Submit{Repo: "r1", Input: &algebra.Get{Ref: ref1}}
	pred, err := oql.ParseQuery(`x.salary > 10`)
	if err != nil {
		b.Fatal(err)
	}
	proj, err := oql.ParseQuery(`x.name`)
	if err != nil {
		b.Fatal(err)
	}
	mkBranch := func(sub *algebra.Submit) algebra.Node {
		return &algebra.Map{Expr: proj, Input: &algebra.Select{Pred: pred, Input: &algebra.Bind{Var: "x", Input: sub}}}
	}
	plan := &algebra.Union{Inputs: []algebra.Node{mkBranch(sub0), mkBranch(sub1)}}

	rows := make([]types.Value, 100)
	for i := range rows {
		rows[i] = types.NewStruct(
			types.Field{Name: "id", Value: types.Int(int64(i))},
			types.Field{Name: "name", Value: types.Str(fmt.Sprintf("p%d", i))},
			types.Field{Name: "salary", Value: types.Int(int64(i))},
		)
	}
	outcomes := map[*algebra.Submit]physical.Outcome{
		sub0: {Err: &physical.UnavailableError{Repo: "r0", Err: context.DeadlineExceeded}},
		sub1: {Bag: types.NewBag(rows...)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partial.Residual(plan, outcomes); err != nil {
			b.Fatal(err)
		}
	}
}

// delayEngine adds a fixed service time to every shard call, modeling a
// remote source; it makes the scatter-gather speedup visible (wall time
// stays ~one service time however many partitions fan out).
type delayEngine struct {
	inner source.Engine
	d     time.Duration
}

func (e delayEngine) Query(q string) (*types.Bag, error) {
	time.Sleep(e.d)
	return e.inner.Query(q)
}

func (e delayEngine) Collections() []string { return e.inner.Collections() }

// BenchmarkScatterGather measures the partition fan-out: one logical extent
// split over 1, 4 and 16 repositories, each shard answering after a 2ms
// service time. Near-constant ns/op across partition counts is the parallel
// speedup the scatter-gather operator exists for.
func BenchmarkScatterGather(b *testing.B) {
	for _, parts := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			m := core.New(core.WithTimeout(10 * time.Second))
			odl := ""
			repos := ""
			for i := 0; i < parts; i++ {
				s := source.NewRelStore()
				if err := s.CreateTable("people", "id", "name", "salary"); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 64; j++ {
					if err := s.Insert("people", types.Int(int64(i*64+j)),
						types.Str(fmt.Sprintf("p%d_%d", i, j)), types.Int(int64(j))); err != nil {
						b.Fatal(err)
					}
				}
				repo := fmt.Sprintf("r%d", i)
				m.RegisterEngine(repo, delayEngine{inner: s, d: 2 * time.Millisecond})
				odl += repo + ` := Repository(address="mem:` + repo + `");` + "\n"
				if i > 0 {
					repos += ", "
				}
				repos += repo
			}
			odl += `
				w0 := WrapperPostgres();
				interface Person (extent person) {
				    attribute Short id;
				    attribute String name;
				    attribute Short salary;
				}
				extent people of Person wrapper w0 at ` + repos + `;`
			if err := m.ExecODL(odl); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Query(`select x.name from x in people where x.salary > 32`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionPruning measures placement-aware routing: one logical
// extent hash-partitioned by id over 1, 4 and 16 repositories (2ms service
// time each, fan-out bounded at 4 concurrent shard calls, as a production
// mediator would bound it). The "scan" case touches every shard, so its
// latency grows with the partition count (ceil(n/4) waves of 2ms); the
// "pruned" case routes the point query to the key's home shard and stays
// flat at ~one service time regardless of scale.
func BenchmarkPartitionPruning(b *testing.B) {
	for _, parts := range []int{1, 4, 16} {
		m := core.New(core.WithTimeout(10*time.Second), core.WithMaxFanout(4))
		odl := ""
		repos := ""
		for i := 0; i < parts; i++ {
			s := source.NewRelStore()
			if err := s.CreateTable("people", "id", "name", "salary"); err != nil {
				b.Fatal(err)
			}
			// Place each row at its hash shard, matching the declared scheme.
			for id := 0; id < 64; id++ {
				if int(algebra.HashValue(types.Int(int64(id)))%uint64(parts)) != i {
					continue
				}
				if err := s.Insert("people", types.Int(int64(id)),
					types.Str(fmt.Sprintf("p%d", id)), types.Int(int64(id%97))); err != nil {
					b.Fatal(err)
				}
			}
			repo := fmt.Sprintf("r%d", i)
			m.RegisterEngine(repo, delayEngine{inner: s, d: 2 * time.Millisecond})
			odl += repo + ` := Repository(address="mem:` + repo + `");` + "\n"
			if i > 0 {
				repos += ", "
			}
			repos += repo
		}
		// A partitioning scheme is only declarable (and only useful) over
		// more than one repository; the 1-partition baseline goes bare.
		scheme := "\n    partition by hash(id)"
		if parts == 1 {
			scheme = ""
		}
		odl += `
			w0 := WrapperPostgres();
			interface Person (extent person) {
			    attribute Short id;
			    attribute String name;
			    attribute Short salary;
			}
			extent people of Person wrapper w0 at ` + repos + scheme + `;`
		if err := m.ExecODL(odl); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pruned/partitions=%d", parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Query(`select x.name from x in people where x.id = 7`); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scan/partitions=%d", parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Query(`select x.name from x in people where x.salary > 32`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemoteQuery measures the wire layer itself: point queries over
// real TCP from 1/4/16 concurrent client goroutines, pooled multiplexed
// connections vs a fresh dial per request (the pre-pool baseline). The
// pooled rows are the per-submit cost every remote scenario — federation,
// sharding, partial answers — now pays.
func BenchmarkRemoteQuery(b *testing.B) {
	store := source.NewRelStore()
	if err := source.GenPeople(store, "person0", 200, 0); err != nil {
		b.Fatal(err)
	}
	srv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: store})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const q = `select name from person0 where id = 7`

	for _, mode := range []string{"dial", "pooled"} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode, clients), func(b *testing.B) {
				var opts []wire.ClientOption
				if mode == "dial" {
					opts = append(opts, wire.WithDialPerRequest())
				}
				c := wire.NewClient(srv.Addr(), opts...)
				defer c.Close()
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < clients; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for next.Add(1) <= int64(b.N) {
							ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
							_, err := c.Query(ctx, wire.LangSQL, q)
							cancel()
							if err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkPreparedStatements measures the repeated-query fast path: the
// first Prepare pays parse+expand+compile+optimize; every further Prepare
// of the same text is one cache lookup.
func BenchmarkPreparedStatements(b *testing.B) {
	f, err := harness.NewPersonFleet(harness.FleetConfig{Sources: 4, RowsPerSource: 10})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Distinct texts defeat the cache: full pipeline each time.
			q := fmt.Sprintf("select x.name from x in person where x.salary > %d", i%1000)
			if _, _, err := f.M.Prepare(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		if _, _, err := f.M.Prepare(paperQuery); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, tr, err := f.M.Prepare(paperQuery)
			if err != nil || !tr.CacheHit {
				b.Fatal("expected prepared-statement hit")
			}
		}
	})
}

// BenchmarkPushdown sweeps wrapper capability (E3): the same query against
// the same 2000-row TCP source under increasingly capable wrappers.
func BenchmarkPushdown(b *testing.B) {
	levels := []struct {
		name string
		odl  string
	}{
		{"get", `w0 := Wrapper("sql", ops="get");`},
		{"get-select", `w0 := Wrapper("sql", ops="get,select");`},
		{"get-select-project", `w0 := Wrapper("sql", ops="get,select,project");`},
	}
	const query = `select x.name from x in person0 where x.salary < 100`
	for _, level := range levels {
		b.Run(level.name, func(b *testing.B) {
			f, err := harness.NewPersonFleet(harness.FleetConfig{
				Sources: 1, RowsPerSource: 2000, TCP: true, WrapperODL: level.odl,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.M.Query(query); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if q := f.TotalQueries(); q > 0 {
				b.ReportMetric(float64(f.TotalBytesOut())/float64(q), "source-bytes/query")
			}
		})
	}
}

// BenchmarkCostLearning measures the cost model's record and estimate
// operations (E4's mechanism).
func BenchmarkCostLearning(b *testing.B) {
	h := costmodel.New()
	pred, err := oql.ParseQuery(`salary > 10`)
	if err != nil {
		b.Fatal(err)
	}
	expr := &algebra.Select{Pred: pred, Input: &algebra.Get{
		Ref: algebra.ExtentRef{Extent: "person0", Source: "person0", Attrs: []string{"id", "name", "salary"}},
	}}
	b.Run("record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Record("r0", expr, time.Millisecond, 10)
		}
	})
	b.Run("estimate-exact", func(b *testing.B) {
		h.Record("r0", expr, time.Millisecond, 10)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if est := h.Estimate("r0", expr); est.Basis != costmodel.BasisExact {
				b.Fatal("expected exact basis")
			}
		}
	})
	b.Run("estimate-default", func(b *testing.B) {
		fresh := costmodel.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if est := fresh.Estimate("r0", expr); est.Basis != costmodel.BasisDefault {
				b.Fatal("expected default basis")
			}
		}
	})
}

// BenchmarkSourceScaling measures in-process query latency as the DBA adds
// same-type sources (E5).
func BenchmarkSourceScaling(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("sources=%d", n), func(b *testing.B) {
			f, err := harness.NewPersonFleet(harness.FleetConfig{Sources: n, RowsPerSource: 50})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.M.Query(paperQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelingTools compares direct extents, mapped types and views
// over the same data (E6).
func BenchmarkModelingTools(b *testing.B) {
	f, err := harness.NewPersonFleet(harness.FleetConfig{Sources: 2, RowsPerSource: 200})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := f.M.ExecODL(`
		interface PersonPrime {
		    attribute String n;
		    attribute Short s;
		}
		extent personprime0 of PersonPrime wrapper w0 repository r0
		    map ((person0=personprime0),(name=n),(salary=s));
		define wealthy as
		    select struct(name: x.name, salary: x.salary)
		    from x in person where x.salary > 500;
	`); err != nil {
		b.Fatal(err)
	}
	cases := []struct{ name, q string }{
		{"direct", `select x.name from x in person0 where x.salary > 500`},
		{"mapped", `select x.n from x in personprime0 where x.s > 500`},
		{"view", `select w.name from w in wealthy`},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.M.Query(c.q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompiledEval compares the two expression evaluators on a
// select+project pipeline's per-tuple work: the tree-walking reference
// (oql.Eval over an Env chain rebuilt per tuple, the pre-PR4 hot path) vs
// the closure-compiled program (oql.Compile, tuples bound into a reusable
// flat slot environment). The acceptance bar is ≥2x time and ≥50% allocs.
func BenchmarkCompiledEval(b *testing.B) {
	const tuples = 1024
	rows := make([]*types.Struct, tuples)
	for i := range rows {
		rows[i] = types.NewStruct(types.Field{Name: "x", Value: types.NewStruct(
			types.Field{Name: "id", Value: types.Int(int64(i))},
			types.Field{Name: "name", Value: types.Str(fmt.Sprintf("p%d", i))},
			types.Field{Name: "salary", Value: types.Int(int64(i % 977))},
		)})
	}
	pred, err := oql.ParseQuery(`x.salary > 10 and x.name != "nobody"`)
	if err != nil {
		b.Fatal(err)
	}
	proj, err := oql.ParseQuery(`struct(name: x.name, pay: x.salary * 2)`)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("tree-walk", func(b *testing.B) {
		// evalWith as the pre-PR4 operators ran it: each operator rebuilt
		// the Env chain from the tuple's fields per expression evaluation
		// (MkSelect for the predicate, MkProj for the projection).
		evalWith := func(e oql.Expr, st *types.Struct) (types.Value, error) {
			var env *oql.Env
			for _, f := range st.Fields() {
				env = env.Bind(f.Name, f.Value)
			}
			return oql.Eval(e, env, oql.EmptyResolver)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kept := 0
			for _, st := range rows {
				cond, err := evalWith(pred, st)
				if err != nil {
					b.Fatal(err)
				}
				keep, err := types.Truthy(cond)
				if err != nil {
					b.Fatal(err)
				}
				if !keep {
					continue
				}
				if _, err := evalWith(proj, st); err != nil {
					b.Fatal(err)
				}
				kept++
			}
			if kept == 0 {
				b.Fatal("predicate filtered everything")
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		predProg, err := oql.Compile(pred)
		if err != nil {
			b.Fatal(err)
		}
		projProg, err := oql.Compile(proj)
		if err != nil {
			b.Fatal(err)
		}
		predEnv := predProg.NewEnv(oql.EmptyResolver)
		projEnv := projProg.NewEnv(oql.EmptyResolver)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kept := 0
			for _, st := range rows {
				predEnv.BindStruct(st)
				cond, err := predProg.Eval(predEnv)
				if err != nil {
					b.Fatal(err)
				}
				keep, err := types.Truthy(cond)
				if err != nil {
					b.Fatal(err)
				}
				if !keep {
					continue
				}
				projEnv.BindStruct(st)
				if _, err := projProg.Eval(projEnv); err != nil {
					b.Fatal(err)
				}
				kept++
			}
			if kept == 0 {
				b.Fatal("predicate filtered everything")
			}
		}
	})
}

// BenchmarkVolcano measures the Volcano layer's batch ablation: the same
// select+project operator pipeline over 8192 tuples driven with a
// capacity-1 output batch (tuple-at-a-time iteration, one operator-stack
// traversal per tuple) vs full types.BatchSize batches.
func BenchmarkVolcano(b *testing.B) {
	const n = 8192
	rows := make([]types.Value, n)
	for i := range rows {
		rows[i] = types.NewStruct(
			types.Field{Name: "id", Value: types.Int(int64(i))},
			types.Field{Name: "name", Value: types.Str(fmt.Sprintf("p%d", i))},
			types.Field{Name: "salary", Value: types.Int(int64(i % 977))},
		)
	}
	bag := types.NewBag(rows...)
	pred, err := oql.ParseQuery(`x.salary > 488`)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		cap  int
	}{{"tuple", 1}, {"batched", types.BatchSize}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op := &physical.MkProj{
					Cols: []algebra.Col{
						{Name: "name", Expr: &oql.Path{Base: &oql.Ident{Name: "x"}, Field: "name"}},
					},
					Input: &physical.MkSelect{
						Pred:  pred,
						Input: &physical.MkBind{Var: "x", Input: &physical.ConstScan{Bag: bag}},
					},
				}
				if err := op.Open(context.Background()); err != nil {
					b.Fatal(err)
				}
				batch := types.NewBatch(mode.cap)
				got := 0
				for {
					err := op.NextBatch(batch)
					if err != nil {
						break
					}
					got += batch.Len()
				}
				op.Close()
				if got == 0 {
					b.Fatal("pipeline produced nothing")
				}
			}
		})
	}
}

// --- ablations ---------------------------------------------------------------

// BenchmarkJoinAlgorithms compares the two join implementations on the same
// equi-join input (the implementation rule prefers hash).
func BenchmarkJoinAlgorithms(b *testing.B) {
	mkRows := func(n int, field string) *types.Bag {
		rows := make([]types.Value, n)
		for i := range rows {
			rows[i] = types.NewStruct(
				types.Field{Name: field, Value: types.NewStruct(
					types.Field{Name: "id", Value: types.Int(int64(i))},
				)},
			)
		}
		return types.NewBag(rows...)
	}
	const n = 300
	left, right := mkRows(n, "x"), mkRows(n, "y")
	pred, err := oql.ParseQuery(`x.id = y.id`)
	if err != nil {
		b.Fatal(err)
	}
	lk, _ := oql.ParseQuery(`x.id`)
	rk, _ := oql.ParseQuery(`y.id`)
	rt := &physical.Runtime{}

	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op := &physical.HashJoin{
				L: &physical.ConstScan{Bag: left}, R: &physical.ConstScan{Bag: right},
				LKey: lk, RKey: rk,
			}
			out, err := physical.Drain(context.Background(), op)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != n {
				b.Fatalf("rows = %d", len(out))
			}
		}
	})
	b.Run("nested-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op := &physical.NLJoin{
				L: &physical.ConstScan{Bag: left}, R: &physical.ConstScan{Bag: right},
				Pred: pred,
			}
			out, err := physical.Drain(context.Background(), op)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != n {
				b.Fatalf("rows = %d", len(out))
			}
		}
	})
	_ = rt
}

// BenchmarkEarleyRecognizer measures the wrapper grammar check the
// optimizer performs per candidate submit.
func BenchmarkEarleyRecognizer(b *testing.B) {
	g := capability.Standard(capability.FullOpSet())
	pred, err := oql.ParseQuery(`salary > 10 and name != "Bob"`)
	if err != nil {
		b.Fatal(err)
	}
	expr := &algebra.Project{
		Cols: []algebra.Col{{Name: "name", Expr: &oql.Ident{Name: "name"}}},
		Input: &algebra.Select{Pred: pred, Input: &algebra.Get{
			Ref: algebra.ExtentRef{Extent: "person0", Source: "person0"},
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !g.AcceptsExpr(expr) {
			b.Fatal("grammar should accept")
		}
	}
}

// BenchmarkPlanCache measures optimization with and without the plan cache
// (§3.3's cached-plan requirement).
func BenchmarkPlanCache(b *testing.B) {
	f, err := harness.NewPersonFleet(harness.FleetConfig{Sources: 4, RowsPerSource: 10})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.Run("hit", func(b *testing.B) {
		if _, _, err := f.M.Prepare(paperQuery); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, tr, err := f.M.Prepare(paperQuery); err != nil || !tr.CacheHit {
				b.Fatal("expected cache hit")
			}
		}
	})
}

// BenchmarkWireValueCodec measures the tagged value encoding used on every
// source round trip.
func BenchmarkWireValueCodec(b *testing.B) {
	rows := make([]types.Value, 100)
	for i := range rows {
		rows[i] = types.NewStruct(
			types.Field{Name: "id", Value: types.Int(int64(i))},
			types.Field{Name: "name", Value: types.Str(fmt.Sprintf("person-%d", i))},
			types.Field{Name: "salary", Value: types.Float(float64(i) * 1.5)},
		)
	}
	bag := types.NewBag(rows...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := types.EncodeValue(bag)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := types.DecodeValue(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMediatorComposition measures the M-over-M round trip of
// Figure 1: an upper mediator reaching data through a lower mediator that
// federates two TCP sources.
func BenchmarkMediatorComposition(b *testing.B) {
	lower, err := harness.NewPersonFleet(harness.FleetConfig{Sources: 2, RowsPerSource: 50, TCP: true})
	if err != nil {
		b.Fatal(err)
	}
	defer lower.Close()
	lowerSrv, err := lower.M.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer lowerSrv.Close()

	upper := harnessUpper(b, lowerSrv.Addr())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := upper.Query(paperQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func harnessUpper(b *testing.B, lowerAddr string) *core.Mediator {
	b.Helper()
	upper := core.New(core.WithTimeout(5 * time.Second))
	if err := upper.ExecODL(`
		rlower := Repository(address="` + lowerAddr + `");
		wmed := Wrapper("mediator");
		interface Person (extent staff) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person of Person wrapper wmed repository rlower;
	`); err != nil {
		b.Fatal(err)
	}
	return upper
}

// dropProxy forwards TCP bytes to a backend until drop flips, after which
// it silently discards everything — a source that served traffic (and so
// has cost history) and then went dark without closing anything, the
// §4 unavailability whose timeout the circuit breaker exists to skip.
type dropProxy struct {
	lis     net.Listener
	backend string
	drop    atomic.Bool
}

func newDropProxy(b *testing.B, backend string) *dropProxy {
	b.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	p := &dropProxy{lis: lis, backend: backend}
	go func() {
		for {
			client, err := lis.Accept()
			if err != nil {
				return
			}
			server, err := net.Dial("tcp", backend)
			if err != nil {
				client.Close()
				continue
			}
			forward := func(dst, src net.Conn) {
				buf := make([]byte, 4096)
				for {
					n, err := src.Read(buf)
					if n > 0 && !p.drop.Load() {
						if _, werr := dst.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}
			go forward(server, client)
			go forward(client, server)
		}
	}()
	b.Cleanup(func() { lis.Close() })
	return p
}

// BenchmarkFailover measures a point query over a replicated extent whose
// primary served traffic (so routing's cost history prefers it) and then
// went dark. The cold row has the circuit breaker effectively disabled:
// every query re-pays the dead primary's attempt share of the evaluation
// deadline before failing over to the replica. The warm row primed the
// breaker with one failed query, so routing skips the primary and goes
// straight to the live replica. The gap is the failover story's headline
// number.
func BenchmarkFailover(b *testing.B) {
	const timeout = 100 * time.Millisecond
	const q = `select x.name from x in people where x.id = 7`
	newMediator := func(b *testing.B, opts ...core.Option) (*core.Mediator, *dropProxy) {
		b.Helper()
		primary := source.NewRelStore()
		replica := source.NewRelStore()
		for _, s := range []*source.RelStore{primary, replica} {
			if err := source.GenPeople(s, "people", 50, 0); err != nil {
				b.Fatal(err)
			}
		}
		srv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: primary})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		proxy := newDropProxy(b, srv.Addr())
		// The replica is a touch slower than the primary, so the learned
		// cost history keeps preferring the (now dark) primary — the case
		// where only the breaker, not history, can stop the bleeding.
		repSrv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: replica})
		if err != nil {
			b.Fatal(err)
		}
		repSrv.SetLatency(2 * time.Millisecond)
		b.Cleanup(func() { repSrv.Close() })
		m := core.New(append([]core.Option{core.WithTimeout(timeout)}, opts...)...)
		b.Cleanup(m.Close)
		if err := m.ExecODL(`
			r0 := Repository(address="` + proxy.lis.Addr().String() + `");
			r0b := Repository(address="` + repSrv.Addr() + `");
			w0 := WrapperPostgres();
			interface Person (extent person) {
			    attribute Short id;
			    attribute String name;
			    attribute Short salary;
			}
			extent people of Person wrapper w0 at r0|r0b;
		`); err != nil {
			b.Fatal(err)
		}
		// The primary answers a few queries first: the learned cost
		// history now prefers it, as it would in any live deployment.
		for i := 0; i < 3; i++ {
			if _, err := m.Query(q); err != nil {
				b.Fatal(err)
			}
		}
		proxy.drop.Store(true)
		return m, proxy
	}

	b.Run("cold-timeout-path", func(b *testing.B) {
		// Threshold too high to ever open: every iteration waits out the
		// primary's share of the deadline, the pre-breaker behaviour.
		m, _ := newMediator(b, core.WithBreaker(1<<30, time.Hour))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("breaker-warm", func(b *testing.B) {
		m, _ := newMediator(b, core.WithBreaker(1, time.Hour))
		if _, err := m.Query(q); err != nil { // prime: opens r0's breaker
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// latQuantile reports the q-quantile of the recorded per-query latencies.
func latQuantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// BenchmarkHedgedTail: one shard whose primary copy is consistently 20x
// slower than its replica, read under load balancing. The balancer's weight
// floor keeps ~5% of reads on the slow copy (it must stay measured to be
// trusted again), so the unhedged p99 tracks the slow copy's 40ms. With
// hedging, a read outlasting the healthy copies' p99 fires a backup submit
// to the fast copy and the tail collapses to about twice the fast copy's
// latency (one p99 trigger wait plus one fast service time). Compare the
// p99-ms metric across the two sub-benchmarks.
func BenchmarkHedgedTail(b *testing.B) {
	const q = `select x.name from x in people where x.id = 7`
	const fastLat = 2 * time.Millisecond
	const slowLat = 40 * time.Millisecond
	newMediator := func(b *testing.B, opts ...core.Option) *core.Mediator {
		b.Helper()
		odl := ""
		for repo, lat := range map[string]time.Duration{"r0": slowLat, "r0b": fastLat} {
			s := source.NewRelStore()
			if err := source.GenPeople(s, "people", 50, 0); err != nil {
				b.Fatal(err)
			}
			srv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: s})
			if err != nil {
				b.Fatal(err)
			}
			srv.SetLatency(lat)
			b.Cleanup(func() { srv.Close() })
			odl += repo + ` := Repository(address="` + srv.Addr() + `");` + "\n"
		}
		m := core.New(append([]core.Option{
			core.WithTimeout(2 * time.Second), core.WithLoadBalancing(),
		}, opts...)...)
		b.Cleanup(m.Close)
		if err := m.ExecODL(odl + `
			w0 := WrapperPostgres();
			interface Person (extent person) {
			    attribute Short id;
			    attribute String name;
			    attribute Short salary;
			}
			extent people of Person wrapper w0 at r0|r0b;
		`); err != nil {
			b.Fatal(err)
		}
		// Warm the latency windows: the balancer needs both copies measured
		// to weight them, and the hedge trigger needs the fast copy's p99 —
		// enough rounds that connection-setup noise rotates out of the
		// sliding window and the p99 settles at the steady service time.
		for i := 0; i < 80; i++ {
			if _, err := m.Query(q); err != nil {
				b.Fatal(err)
			}
		}
		return m
	}
	run := func(b *testing.B, m *core.Mediator) {
		lats := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, err := m.Query(q); err != nil {
				b.Fatal(err)
			}
			lats = append(lats, time.Since(start))
		}
		b.ReportMetric(float64(latQuantile(lats, 0.50))/1e6, "p50-ms")
		b.ReportMetric(float64(latQuantile(lats, 0.99))/1e6, "p99-ms")
	}
	b.Run("unhedged", func(b *testing.B) {
		run(b, newMediator(b))
	})
	b.Run("hedged", func(b *testing.B) {
		run(b, newMediator(b, core.WithHedging(time.Millisecond)))
	})
}

// serialEngine models a copy with capacity one query per service time: the
// mutex serializes the sleep, so concurrent load queues behind it — unlike
// delayEngine, whose sleeps overlap freely.
type serialEngine struct {
	inner source.Engine
	mu    sync.Mutex
	d     time.Duration
}

func (e *serialEngine) Query(q string) (*types.Bag, error) {
	e.mu.Lock()
	time.Sleep(e.d)
	e.mu.Unlock()
	return e.inner.Query(q)
}

func (e *serialEngine) Collections() []string { return e.inner.Collections() }

// BenchmarkReplicaThroughput drives one extent with 16 concurrent readers
// while its replica group grows from 1 to 4 copies, each copy serving one
// query per 2ms. Load balancing spreads the reads, so ns/op should drop
// roughly in proportion to the copy count — the aggregate read capacity
// replication buys once reads stop pinning the primary.
func BenchmarkReplicaThroughput(b *testing.B) {
	const q = `select x.name from x in people where x.id = 7`
	const service = 2 * time.Millisecond
	const workers = 16
	names := []string{"r0", "r0b", "r0c", "r0d"}
	for _, copies := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("copies=%d", copies), func(b *testing.B) {
			m := core.New(core.WithTimeout(10*time.Second), core.WithLoadBalancing())
			b.Cleanup(m.Close)
			odl := ""
			group := ""
			for i := 0; i < copies; i++ {
				s := source.NewRelStore()
				if err := source.GenPeople(s, "people", 50, 0); err != nil {
					b.Fatal(err)
				}
				m.RegisterEngine(names[i], &serialEngine{inner: s, d: service})
				odl += names[i] + ` := Repository(address="mem:` + names[i] + `");` + "\n"
				if i > 0 {
					group += "|"
				}
				group += names[i]
			}
			if err := m.ExecODL(odl + `
				w0 := WrapperPostgres();
				interface Person (extent person) {
				    attribute Short id;
				    attribute String name;
				    attribute Short salary;
				}
				extent people of Person wrapper w0 at ` + group + `;
			`); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 8*copies; i++ { // let the balancer measure every copy
				if _, err := m.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := m.Query(q); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkOverload measures overload protection at 1x/2x/4x saturation:
// closed-loop clients at multiples of the admission gate's concurrency
// limit. The metrics that matter are the custom ones — goodput-q/s should
// hold near capacity as offered load grows, shed-% should absorb the
// excess, and p99-ms of admitted queries should stay bounded instead of
// climbing to the deadline (the collapse shedding prevents).
func BenchmarkOverload(b *testing.B) {
	const (
		maxConcurrent = 4
		slo           = 200 * time.Millisecond
	)
	for _, mult := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("load=%dx", mult), func(b *testing.B) {
			f, err := harness.NewPersonFleet(harness.FleetConfig{
				Sources: 2, RowsPerSource: 50, TCP: true,
				Latency:       5 * time.Millisecond,
				Timeout:       slo,
				MaxConcurrent: maxConcurrent,
				MaxQueued:     maxConcurrent,
				MaxQueueWait:  slo / 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			for i := 0; i < 4; i++ {
				if _, err := f.M.Query(paperQuery); err != nil {
					b.Fatal(err)
				}
			}
			clients := mult * maxConcurrent
			var (
				mu        sync.Mutex
				latencies []time.Duration
				shed      int64
				errs      int64
			)
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						ctx, cancel := context.WithTimeout(context.Background(), slo)
						t0 := time.Now()
						_, err := f.M.QueryContext(ctx, paperQuery)
						elapsed := time.Since(t0)
						cancel()
						mu.Lock()
						switch {
						case err == nil:
							latencies = append(latencies, elapsed)
						case core.IsOverloadError(err):
							shed++
						default:
							errs++
						}
						mu.Unlock()
						if err != nil {
							// Back off after a shed, as OverloadError asks of
							// callers — without it the shed clients busy-spin
							// and the benchmark measures scheduler contention.
							time.Sleep(2 * time.Millisecond)
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()
			if errs > int64(b.N)/100+1 {
				b.Errorf("%d of %d queries failed with non-overload errors", errs, b.N)
			}
			b.ReportMetric(float64(len(latencies))/elapsed, "goodput-q/s")
			b.ReportMetric(100*float64(shed)/float64(b.N), "shed-%")
			if len(latencies) > 0 {
				sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
				p99 := latencies[int(0.99*float64(len(latencies)-1))]
				b.ReportMetric(float64(p99.Milliseconds()), "p99-ms")
			}
		})
	}
}

// BenchmarkOQLParse measures the front of the pipeline on a representative
// reconciliation view.
func BenchmarkOQLParse(b *testing.B) {
	const src = `select struct(name: x.name, salary: sum(select z.salary from z in person where x.id = z.id))
		from x in person* where x.salary > 10 and x.name != "nobody"`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oql.ParseQuery(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCancellation measures what end-to-end cancellation buys under a
// workload that abandons most of its requests — the hedge-loser / impatient-
// caller regime. One source with a small server-side in-flight cap and 20ms
// of injected latency serves two populations: "abandoner" clients whose 4ms
// deadlines lapse on every call, and "survivor" clients with generous
// deadlines that retry overload sheds until they succeed. Goodput is the
// survivors' completion rate.
//
// With cancel propagation (the default), an abandoned request frees its
// server slot as soon as the cancel frame lands — the latency sleep aborts
// and the handler never runs — so zombies occupy a fraction of the cap and
// survivors get through. The WithoutCancelPropagation baseline is the
// pre-cancellation protocol: every abandoned request holds its slot for the
// full 20ms and executes for nobody, and the cap stays saturated with dead
// work. wasted-exec counts handler executions whose caller had already
// walked away (the work cancellation exists to avoid).
func BenchmarkCancellation(b *testing.B) {
	const (
		serverCap   = 4
		latency     = 20 * time.Millisecond
		abandoners  = 6
		abandonWait = 4 * time.Millisecond
		survivors   = 2
	)
	for _, variant := range []struct {
		name string
		opts []wire.ClientOption
	}{
		{name: "propagate-cancel", opts: nil},
		{name: "no-cancel-baseline", opts: []wire.ClientOption{wire.WithoutCancelPropagation()}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			store := source.NewRelStore()
			if err := source.GenPeople(store, "people", 20, 1); err != nil {
				b.Fatal(err)
			}
			srv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: store},
				wire.WithMaxServerInflight(serverCap))
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			srv.SetLatency(latency)

			abandonC := wire.NewClient(srv.Addr(), variant.opts...)
			defer abandonC.Close()
			surviveC := wire.NewClient(srv.Addr(), variant.opts...)
			defer surviveC.Close()

			// Offered zombie load: each abandoner issues a doomed request,
			// waits out its 4ms budget, pauses, repeats. The pacing keeps the
			// zombie arrival rate fixed across variants, so the only variable
			// is how long each zombie holds its server slot.
			stop := make(chan struct{})
			var awg sync.WaitGroup
			for w := 0; w < abandoners; w++ {
				awg.Add(1)
				go func() {
					defer awg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						ctx, cancel := context.WithTimeout(context.Background(), abandonWait)
						_, _ = abandonC.Query(ctx, wire.LangSQL, "SELECT id FROM people")
						cancel()
						time.Sleep(8 * time.Millisecond)
					}
				}()
			}

			handlerRunsBefore := srv.Stats().Queries.Load()
			var completed, sheds atomic.Int64
			var next atomic.Int64
			var swg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for w := 0; w < survivors; w++ {
				swg.Add(1)
				go func() {
					defer swg.Done()
					for next.Add(1) <= int64(b.N) {
						for {
							ctx, cancel := context.WithTimeout(context.Background(), time.Second)
							_, err := surviveC.Query(ctx, wire.LangSQL, "SELECT id FROM people")
							cancel()
							if err == nil {
								completed.Add(1)
								break
							}
							var oe *wire.OverloadedError
							if !errors.As(err, &oe) {
								b.Errorf("survivor query: %v", err)
								return
							}
							// Shed at the cap: back off briefly and retry, as
							// the overload frame asks. Time spent here is the
							// cost of the cap being full of zombies.
							sheds.Add(1)
							time.Sleep(time.Millisecond)
						}
					}
				}()
			}
			swg.Wait()
			elapsed := time.Since(start).Seconds()
			b.StopTimer()
			close(stop)
			awg.Wait()

			handlerRuns := srv.Stats().Queries.Load() - handlerRunsBefore
			wasted := handlerRuns - completed.Load()
			if wasted < 0 {
				wasted = 0
			}
			b.ReportMetric(float64(completed.Load())/elapsed, "goodput-q/s")
			b.ReportMetric(float64(sheds.Load())/float64(b.N), "sheds/op")
			b.ReportMetric(float64(wasted)/float64(b.N), "wasted-exec/op")
		})
	}
}

// BenchmarkLiveMigration measures what a live shard move costs its readers.
// One range-partitioned extent serves a range query that lands inside the
// migrating shard; the sub-benchmarks sample read latency at the three
// resting states of the move — before it starts, parked at dual-read (the
// read is a distinct union over both placements), and after cutover — so
// the dual-read tax shows up as the p50/p99 delta against steady state.
// The cutover itself happens under concurrent readers; the cutover-errors
// metric counts their failures (the contract is zero: reads flip from old
// to new placement on a catalog version bump, never through an error).
func BenchmarkLiveMigration(b *testing.B) {
	const q = `select x.name from x in people where x.id >= 12 and x.id < 24`
	// The injected per-reply latency stands in for real source service time,
	// so the dual-read comparison measures the union of two *parallel*
	// placement reads rather than the fan-out's constant setup cost.
	f, err := harness.NewShardedFleet(harness.ShardedFleetConfig{
		Shards: 3, Spares: 1, Rows: 36,
		TCP: true, Latency: 2 * time.Millisecond, Timeout: 2 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	advanceTo := func(want string) {
		b.Helper()
		phase, _, err := f.M.AdvanceMigration(ctx, "people")
		if err != nil {
			b.Fatal(err)
		}
		if phase != want {
			b.Fatalf("advanced to %s, want %s", phase, want)
		}
	}
	measure := func(b *testing.B) {
		lats := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, err := f.M.Query(q); err != nil {
				b.Fatal(err)
			}
			lats = append(lats, time.Since(start))
		}
		b.ReportMetric(float64(latQuantile(lats, 0.50))/1e6, "p50-ms")
		b.ReportMetric(float64(latQuantile(lats, 0.99))/1e6, "p99-ms")
	}

	b.Run("steady", measure)

	// Park the move at dual-read: declared -> copying -> dual-read (the
	// second advance runs the copy), a resting state queries see directly.
	if err := f.M.BeginShardMove("people", "r1", "r3"); err != nil {
		b.Fatal(err)
	}
	advanceTo(catalog.PhaseCopying)
	advanceTo(catalog.PhaseDualRead)
	b.Run("dual-read", measure)

	// Cut over while 8 readers hammer the migrating range, then count their
	// errors: the placement flip must be invisible to them.
	var cutoverErrs atomic.Int64
	var once sync.Once
	b.Run("after-cutover", func(b *testing.B) {
		once.Do(func() {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := f.M.Query(q); err != nil {
							cutoverErrs.Add(1)
						}
					}
				}()
			}
			advanceTo(catalog.PhaseCutover)
			if _, done, err := f.M.AdvanceMigration(ctx, "people"); err != nil {
				b.Fatal(err)
			} else if !done {
				b.Fatal("cutover -> done did not finish the migration")
			}
			close(stop)
			wg.Wait()
		})
		measure(b)
		b.ReportMetric(float64(cutoverErrs.Load()), "cutover-errors")
	})
}
