// Federation — the full Figure 1 topology over real sockets: data-source
// servers, a lower mediator federating them, and an upper mediator that
// uses the lower one as a data source (mediator composition). Ends with the
// §1.3 unavailable-source scenario: the partial answer, and its
// resubmission after recovery.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"time"

	"disco"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- two data-source servers (D boxes) -----------------------------
	mk := func(table, name string, id, salary int64) (*disco.Server, error) {
		s := disco.NewRelStore()
		if err := s.CreateTable(table, "id", "name", "salary"); err != nil {
			return nil, err
		}
		if err := s.Insert(table, disco.Int(id), disco.Str(name), disco.Int(salary)); err != nil {
			return nil, err
		}
		return disco.ServeEngine("127.0.0.1:0", s)
	}
	src0, err := mk("person0", "Mary", 1, 200)
	if err != nil {
		return err
	}
	defer src0.Close()
	src1, err := mk("person1", "Sam", 2, 50)
	if err != nil {
		return err
	}
	defer src1.Close()
	fmt.Printf("data sources listening on %s and %s\n", src0.Addr(), src1.Addr())

	// --- lower mediator (M box) federating both sources ----------------
	lower := disco.New(disco.WithTimeout(400 * time.Millisecond))
	if err := lower.ExecODL(fmt.Sprintf(`
		r0 := Repository(address=%q);
		r1 := Repository(address=%q);
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;
	`, src0.Addr(), src1.Addr())); err != nil {
		return err
	}
	lowerSrv, err := lower.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer lowerSrv.Close()
	fmt.Printf("lower mediator serving OQL on %s\n", lowerSrv.Addr())

	// --- upper mediator using the lower one as a source (M above M) ----
	upper := disco.New(disco.WithTimeout(2 * time.Second))
	if err := upper.ExecODL(fmt.Sprintf(`
		rlower := Repository(address=%q);
		wmed := Wrapper("mediator");
		interface Person (extent staff) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person of Person wrapper wmed repository rlower;
	`, lowerSrv.Addr())); err != nil {
		return err
	}

	const q = `select x.name from x in person where x.salary > 10`
	v, err := upper.Query(q)
	if err != nil {
		return err
	}
	fmt.Printf("\nupper mediator: %s\n=> %s\n", q, v)

	// --- §1.3: a source stops answering ---------------------------------
	fmt.Println("\nsource r0 stops answering...")
	src0.SetAvailable(false)
	ans, err := lower.QueryPartial(q)
	if err != nil {
		return err
	}
	if ans.Complete {
		return fmt.Errorf("expected a partial answer")
	}
	fmt.Printf("lower mediator's partial answer (a query!):\n  %s\n", ans.Residual)
	fmt.Printf("unavailable sources: %v\n", ans.Unavailable)

	fmt.Println("\nsource r0 recovers; resubmitting the answer as a query...")
	src0.SetAvailable(true)
	re, err := lower.QueryPartial(ans.Residual.String())
	if err != nil {
		return err
	}
	fmt.Printf("=> %s\n", re)
	return nil
}
