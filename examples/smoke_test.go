// Package examples holds no library code — each subdirectory is a runnable
// program. This harness builds and runs every example and asserts on its
// stdout, so the examples cannot rot as the mediator evolves.
package examples

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// smoke lists, per example, substrings its stdout must contain. Dynamic
// content (ports, arrival order) is deliberately not asserted.
var smoke = map[string][]string{
	"quickstart": {
		`=> bag("Mary", "Sam")`,
		"plan candidates:",
	},
	"payroll": {
		`=> bag("Ann", "Mary", "Mary", "Sam")`,
		"person* closes over Student extents",
		`=> bag(struct(name: "Mary", salary: 255))`,
	},
	"waterquality": {
		"average oxygen across all five stations:",
		"unavailable: [r2]",
		"after recovery, resubmission returns 30 readings",
	},
	"federation": {
		`=> bag("Mary", "Sam")`,
		`union(select x.name from x in person0 where x.salary > 10, bag("Sam"))`,
		"unavailable sources: [r0]",
	},
	"sharding": {
		"4 shard servers up",
		"punion[4] (parallel scatter-gather)",
		`salary > 60 across all shards: ["Ben", "Mary", "Zoe"]`,
		"pruned shards: people@r0, people@r1, people@r3",
		`point query answered by 1 shard: ["Zoe"]`,
		`primary r2 down -> replica r2b answers, still complete: ["Ben", "Mary", "Zoe"]`,
		"breaker for r2 after the failed submit: open",
		"replica r2b down too -> unavailable: [r2]",
		`union(select x.name from x in people@r2 where x.salary > 60, bag("Ben", "Mary"))`,
		`resubmitted after recovery: ["Ben", "Mary", "Zoe"]`,
	},
}

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run real servers; skipped in -short mode")
	}
	for dir, wants := range smoke {
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			// Bounded so one hung example fails its own subtest instead of
			// wedging the suite (the bound covers the go build step too).
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+dir)
			start := time.Now()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s failed after %v: %v\n%s", dir, time.Since(start), err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("output of %s lacks %q:\n%s", dir, want, out)
				}
			}
		})
	}
}
