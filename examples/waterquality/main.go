// Water quality monitoring — the paper's motivating application (§1): many
// geographically distributed stations measure the same quantities, and the
// DBA integrates each new station with a single extent declaration. The
// example also mixes in a keyword-search document source (station notes)
// with weak query capabilities, shows an aggregate view spanning every
// station, and demonstrates a partial answer when one station's link dies.
//
//	go run ./examples/waterquality
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"disco"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m := disco.New(disco.WithTimeout(300 * time.Millisecond))

	// Five monitoring stations, each an autonomous relational source
	// served over TCP (so that availability is real, not simulated).
	stations := []string{"amont", "aval", "marne", "oise", "yonne"}
	var servers []*disco.Server
	odl := `w0 := WrapperPostgres();
interface Reading (extent readings) {
    attribute String station;
    attribute Short day;
    attribute Float ph;
    attribute Float oxygen;
}
`
	rng := rand.New(rand.NewSource(42))
	for i, st := range stations {
		store := disco.NewRelStore()
		table := fmt.Sprintf("readings%d", i)
		if err := store.CreateTable(table, "station", "day", "ph", "oxygen"); err != nil {
			return err
		}
		for day := 0; day < 30; day++ {
			if err := store.Insert(table,
				disco.Str(st), disco.Int(int64(day)),
				disco.Float(6.0+2*rng.Float64()), disco.Float(5.0+6*rng.Float64()),
			); err != nil {
				return err
			}
		}
		srv, err := disco.ServeEngine("127.0.0.1:0", store)
		if err != nil {
			return err
		}
		servers = append(servers, srv)
		defer srv.Close()
		// Integrating a station = one repository + one extent declaration.
		odl += fmt.Sprintf("r%d := Repository(address=%q);\n", i, srv.Addr())
		odl += fmt.Sprintf("extent %s of Reading wrapper w0 repository r%d;\n", table, i)
	}

	// A keyword-search source (WAIS-like) holds free-text station notes;
	// its wrapper only supports scans and equality matches.
	notes := disco.NewDocStore()
	for _, n := range []struct{ station, note string }{
		{"amont", "upstream reference site"},
		{"aval", "downstream of the treatment plant"},
		{"marne", "confluence site"},
	} {
		notes.AddDocument("notes", disco.NewStruct(
			disco.Field{Name: "station", Value: disco.Str(n.station)},
			disco.Field{Name: "note", Value: disco.Str(n.note)},
		))
	}
	m.RegisterEngine("notesbox", notes)
	odl += `
rnotes := Repository(address="mem:notesbox");
wdoc := Wrapper("doc");
interface Note (extent allnotes) {
    attribute String station;
    attribute String note;
}
extent notes of Note wrapper wdoc repository rnotes;
`
	if err := m.ExecODL(odl); err != nil {
		return err
	}

	// A reconciliation view spanning every station (§2.2.3 style).
	if err := m.Define(`define acidity as
		select struct(station: r.station, ph: r.ph)
		from r in readings
		where r.ph < 6.5`); err != nil {
		return err
	}

	fmt.Println("-- average oxygen across all five stations:")
	v, err := m.Query(`avg(select r.oxygen from r in readings)`)
	if err != nil {
		return err
	}
	fmt.Printf("   %s\n", v)

	fmt.Println("-- acidic readings per station (view over every source):")
	v, err = m.Query(`select distinct a.station from a in acidity`)
	if err != nil {
		return err
	}
	fmt.Printf("   %s\n", v)

	fmt.Println("-- join quantitative data with the keyword source:")
	v, err = m.Query(`select struct(station: n.station, note: n.note, days: count(
			select r from r in readings where r.station = n.station and r.ph < 6.5))
		from n in notes`)
	if err != nil {
		return err
	}
	fmt.Printf("   %s\n", v)

	// One station's link goes down; the answer becomes a query.
	servers[2].SetAvailable(false)
	fmt.Println("-- station 'marne' stops answering; partial answer:")
	ans, err := m.QueryPartial(`select r.ph from r in readings where r.station = "marne"`)
	if err != nil {
		return err
	}
	if ans.Complete {
		return fmt.Errorf("expected a partial answer")
	}
	fmt.Printf("   unavailable: %v\n   answer-as-query: %.100s...\n", ans.Unavailable, ans.Residual)

	// The link recovers; resubmitting the answer yields the data.
	servers[2].SetAvailable(true)
	re, err := m.QueryPartial(ans.Residual.String())
	if err != nil {
		return err
	}
	fmt.Printf("-- after recovery, resubmission returns %d readings\n",
		re.Value.(*disco.Bag).Len())
	return nil
}
