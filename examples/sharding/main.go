// Sharding — one logical extent horizontally partitioned across four
// repositories. The mediator rewrites Get(people) into a parallel union of
// per-partition submits, executes the fan-out with the bounded-concurrency
// scatter-gather operator, and — when every copy of a shard dies —
// degrades to a §4 partial answer whose residual query names only the
// missing partition.
//
// The extent also declares its placement (partition by range(id)), so the
// optimizer prunes shards a predicate provably excludes: a point query on
// id routes to the key's home shard and the other three repositories are
// never contacted. Shard r2 additionally declares a replica (r2|r2b): when
// its primary dies, the mediator fails the submit over to the replica and
// the answer stays complete — partial evaluation is the last resort, not
// the first response.
//
// The finale rebalances live: skewed traffic makes one shard hot (Explain
// names it and recommends the move), and MoveShard migrates it to a fresh
// repository — copy, dual-read, cutover — while sixteen concurrent readers
// observe the same answer throughout, without a single error.
//
//	go run ./examples/sharding
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disco"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- four shard servers, each holding a slice of the people extent --
	shards := [][][2]interface{}{
		{{"Mary", 200}, {"Ann", 5}},
		{{"Sam", 50}},
		{{"Cal", 55}, {"Zoe", 120}},
		{{"Ben", 80}},
	}
	var servers []*disco.Server
	var odl strings.Builder
	var repos []string
	for i, rows := range shards {
		s := disco.NewRelStore()
		if err := s.CreateTable("people", "id", "name", "salary"); err != nil {
			return err
		}
		for j, r := range rows {
			if err := s.Insert("people",
				disco.Int(int64(i*10+j)), disco.Str(r[0].(string)), disco.Int(int64(r[1].(int)))); err != nil {
				return err
			}
		}
		srv, err := disco.ServeEngine("127.0.0.1:0", s)
		if err != nil {
			return err
		}
		defer srv.Close()
		servers = append(servers, srv)
		repo := fmt.Sprintf("r%d", i)
		repos = append(repos, repo)
		fmt.Fprintf(&odl, "%s := Repository(address=%q);\n", repo, srv.Addr())
	}
	fmt.Printf("%d shard servers up\n", len(servers))

	// --- a replica for shard r2: same rows, second server ---------------
	// The replica contract: r2b holds exactly the rows of r2.
	rep := disco.NewRelStore()
	if err := rep.CreateTable("people", "id", "name", "salary"); err != nil {
		return err
	}
	for j, r := range shards[2] {
		if err := rep.Insert("people",
			disco.Int(int64(2*10+j)), disco.Str(r[0].(string)), disco.Int(int64(r[1].(int)))); err != nil {
			return err
		}
	}
	repSrv, err := disco.ServeEngine("127.0.0.1:0", rep)
	if err != nil {
		return err
	}
	defer repSrv.Close()
	fmt.Fprintf(&odl, "r2b := Repository(address=%q);\n", repSrv.Addr())
	repos[2] = "r2|r2b"

	// --- one mediator, one partitioned + replicated extent --------------
	// The partition clause is the placement contract: shard i holds the
	// ids in [10i, 10(i+1)), which is how the rows were inserted above.
	// WithBreaker tunes the per-source circuit breakers: one classified
	// unavailability opens a source's breaker, so repeat queries skip the
	// dead copy without re-paying its timeout until the 2s cooldown admits
	// a probe.
	m := disco.New(
		disco.WithTimeout(400*time.Millisecond),
		disco.WithBreaker(1, 2*time.Second),
	)
	odl.WriteString(`
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at ` + strings.Join(repos, ", ") + `
		    partition by range(id) (..10, 10..20, 20..30, 30..);
	`)
	if err := m.ExecODL(odl.String()); err != nil {
		return err
	}

	// The selection is pushed down to every shard; the four submits run
	// concurrently and merge as they arrive.
	plan, err := m.ExplainPlan(`select x.name from x in people where x.salary > 60`)
	if err != nil {
		return err
	}
	fmt.Printf("fan-out plan:\n%s", indent(plan))

	v, err := m.Query(`select x.name from x in people where x.salary > 60`)
	if err != nil {
		return err
	}
	fmt.Printf("salary > 60 across all shards: %s\n", sorted(v))

	// --- placement-aware routing: a point query touches one shard -------
	const pointQuery = `select x.name from x in people where x.id = 21`
	report, err := m.Explain(pointQuery)
	if err != nil {
		return err
	}
	fmt.Println("\npoint query x.id = 21 against the range-partitioned extent:")
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "pruned shards:") {
			fmt.Println("  " + line)
		}
	}
	routed, err := m.ExplainPlan(pointQuery)
	if err != nil {
		return err
	}
	fmt.Printf("routed plan (only the id's home shard):\n%s", indent(routed))
	v, err = m.Query(pointQuery)
	if err != nil {
		return err
	}
	fmt.Printf("point query answered by 1 shard: %s\n", sorted(v))

	// --- the primary of r2 dies: failover keeps the answer whole --------
	servers[2].SetAvailable(false)
	ans, err := m.QueryPartial(`select x.name from x in people where x.salary > 60`)
	if err != nil {
		return err
	}
	if !ans.Complete {
		return fmt.Errorf("replica should have answered: %s", ans)
	}
	fmt.Printf("\nprimary r2 down -> replica r2b answers, still complete: %s\n", sorted(ans.Value))
	fmt.Printf("breaker for r2 after the failed submit: %s\n", m.BreakerState("r2"))

	// --- every copy of the shard dies: now the query degrades -----------
	repSrv.SetAvailable(false)
	ans, err = m.QueryPartial(`select x.name from x in people where x.salary > 60`)
	if err != nil {
		return err
	}
	fmt.Printf("replica r2b down too -> unavailable: %v\n", ans.Unavailable)
	fmt.Printf("partial answer (a query): %s\n", ans)

	// --- one copy recovers: resubmit the answer itself ------------------
	repSrv.SetAvailable(true)
	re, err := m.QueryPartial(ans.String())
	if err != nil {
		return err
	}
	fmt.Printf("resubmitted after recovery: %s\n", sorted(re.Value))

	// --- replicas as capacity: load balancing + hedged reads ------------
	// A second mediator turns the r2|r2b group into read capacity rather
	// than a failover spare: WithLoadBalancing spreads reads across the
	// breaker-healthy copies weighted by inverse observed latency, and
	// WithHedging fires a backup submit to the other copy whenever a read
	// outlasts the healthy copies' observed p99 — the first answer wins and
	// the cancelled loser leaves no trace in the cost history or breakers.
	servers[2].SetAvailable(true)
	m2 := disco.New(
		disco.WithTimeout(400*time.Millisecond),
		disco.WithLoadBalancing(),
		disco.WithHedging(0),
	)
	if err := m2.ExecODL(odl.String()); err != nil {
		return err
	}
	base2, base2b := servers[2].Stats().Queries.Load(), repSrv.Stats().Queries.Load()
	for i := 0; i < 40; i++ {
		if _, err := m2.Query(pointQuery); err != nil {
			return err
		}
	}
	fmt.Printf("\n40 point reads under load balancing: r2 served=%v r2b served=%v\n",
		servers[2].Stats().Queries.Load() > base2, repSrv.Stats().Queries.Load() > base2b)

	// Slow the primary copy without killing it — the failure mode breakers
	// cannot see. The balancer still sends it a share (its history says it
	// was fast), but each such read hedges to r2b and stays fast.
	servers[2].SetLatency(120 * time.Millisecond)
	var fired, won int64
	start := time.Now()
	for i := 0; i < 20; i++ {
		_, tr, err := m2.QueryTraced(pointQuery)
		if err != nil {
			return err
		}
		fired += tr.HedgesFired
		won += tr.HedgesWon
	}
	fmt.Printf("r2 slowed to 120ms -> 20 hedged reads in %v: hedges fired=%v won=%v\n",
		time.Since(start).Round(time.Millisecond), fired > 0, won > 0)

	// --- overload protection: admission control + load shedding ---------
	// A third mediator carries an admission gate: 2 queries execute, 2 more
	// may queue, nothing waits past 50ms. When a stampede of clients
	// exceeds that, the excess is shed immediately with an OverloadError —
	// a different verdict than unavailability (nothing is down; a shed
	// query dialed no source) — so callers back off instead of piling onto
	// a mediator that cannot serve them anyway.
	servers[2].SetLatency(0)
	for _, s := range servers {
		s.SetLatency(40 * time.Millisecond) // make saturation reachable
	}
	m3 := disco.New(
		disco.WithTimeout(400*time.Millisecond),
		disco.WithAdmission(2, 2, 50*time.Millisecond),
	)
	if err := m3.ExecODL(odl.String()); err != nil {
		return err
	}
	if _, err := m3.Query(pointQuery); err != nil { // warm the prepared plan
		return err
	}
	var admitted, shedCount int64
	var mu sync.Mutex
	var stampede sync.WaitGroup
	for c := 0; c < 16; c++ {
		stampede.Add(1)
		go func() {
			defer stampede.Done()
			for i := 0; i < 5; i++ {
				_, err := m3.Query(pointQuery)
				mu.Lock()
				switch {
				case err == nil:
					admitted++
				case disco.IsOverloadError(err):
					shedCount++
				}
				mu.Unlock()
			}
		}()
	}
	stampede.Wait()
	fmt.Printf("\nstampede of 16 clients vs a 2-wide gate: admitted=%d shed=%d (sheds dial no source)\n",
		admitted, shedCount)

	// The stampede over, the same mediator admits instantly again —
	// shedding protected it, it never fell over.
	if _, tr, err := m3.QueryTraced(pointQuery); err != nil {
		return err
	} else if tr.Shed == 0 && tr.AdmissionWait == 0 {
		fmt.Println("stampede over -> next query admitted with zero queue wait")
	}

	// --- live migration: move a hot shard with readers in flight --------
	// The traffic history points at the shard to move, and the migration
	// state machine moves it without a maintenance window: copy, dual-read
	// (the shard's reads become a distinct union over both placements),
	// then cutover as a single catalog version bump. Sixteen concurrent
	// readers ride through the whole move without one error.
	for _, s := range servers {
		s.SetLatency(0)
	}
	spare := disco.NewRelStore()
	spareSrv, err := disco.ServeEngine("127.0.0.1:0", spare)
	if err != nil {
		return err
	}
	defer spareSrv.Close()
	if err := m.ExecODL(fmt.Sprintf("r4 := Repository(address=%q);\n", spareSrv.Addr())); err != nil {
		return err
	}

	// Skewed traffic makes people@r1 hot; Explain names it and recommends
	// the rebalance the migration calls below perform.
	const hotQuery = `select x.name from x in people where x.id = 10`
	for i := 0; i < 48; i++ {
		if _, err := m.Query(hotQuery); err != nil {
			return err
		}
	}
	report, err = m.Explain(hotQuery)
	if err != nil {
		return err
	}
	fmt.Println("\nafter 48 skewed point reads:")
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "hot shards:") || strings.HasPrefix(line, "rebalance:") {
			fmt.Println("  " + line)
		}
	}

	// Readers hammer the extent for the whole move; every answer must be
	// the same multiset — a migration may never duplicate or drop a tuple.
	const scan = `select x.name from x in people`
	baseline, err := m.Query(scan)
	if err != nil {
		return err
	}
	want := sorted(baseline)
	stop := make(chan struct{})
	var readerErrs atomic.Int64
	var readers sync.WaitGroup
	for c := 0; c < 16; c++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := m.Query(scan)
				if err != nil || sorted(v) != want {
					readerErrs.Add(1)
				}
			}
		}()
	}
	if err := m.MoveShard(context.Background(), "people", "r1", "r4"); err != nil {
		return err
	}
	close(stop)
	readers.Wait()
	fmt.Printf("moved people@r1 -> r4 under 16 readers: reader errors=%d\n", readerErrs.Load())

	routed, err = m.ExplainPlan(hotQuery)
	if err != nil {
		return err
	}
	fmt.Printf("the hot id's home shard now routes to r4:\n%s", indent(routed))
	return nil
}

// sorted renders a bag of strings in name order, so the output is stable
// under the scatter-gather's arrival-order merge.
func sorted(v disco.Value) string {
	bag, ok := v.(*disco.Bag)
	if !ok {
		return v.String()
	}
	names := make([]string, 0, bag.Len())
	for i := 0; i < bag.Len(); i++ {
		names = append(names, bag.At(i).String())
	}
	sort.Strings(names)
	return "[" + strings.Join(names, ", ") + "]"
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
