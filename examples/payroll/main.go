// Payroll modeling — a walkthrough of the paper's §2 data-model features on
// personnel data: explicit and implicit extents, subtyping with the T*
// closure, local transformation maps for renamed schemas, and the double /
// multiple / personnew reconciliation views, each printed with its result.
//
//	go run ./examples/payroll
package main

import (
	"fmt"
	"log"

	"disco"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m := disco.New()

	// r0 and r1: Person sources sharing ids (Mary appears in both).
	r0 := disco.NewRelStore()
	if err := r0.CreateTable("person0", "id", "name", "salary"); err != nil {
		return err
	}
	for _, p := range [][3]interface{}{{1, "Mary", 200}, {2, "Ann", 90}} {
		if err := r0.Insert("person0", disco.Int(int64(p[0].(int))), disco.Str(p[1].(string)), disco.Int(int64(p[2].(int)))); err != nil {
			return err
		}
	}
	r1 := disco.NewRelStore()
	if err := r1.CreateTable("person1", "id", "name", "salary"); err != nil {
		return err
	}
	for _, p := range [][3]interface{}{{1, "Mary", 55}, {3, "Sam", 50}} {
		if err := r1.Insert("person1", disco.Int(int64(p[0].(int))), disco.Str(p[1].(string)), disco.Int(int64(p[2].(int)))); err != nil {
			return err
		}
	}
	// r2: students (a Person subtype) with the same structure.
	r2 := disco.NewRelStore()
	if err := r2.CreateTable("student0", "id", "name", "salary"); err != nil {
		return err
	}
	if err := r2.Insert("student0", disco.Int(4), disco.Str("Stu"), disco.Int(12)); err != nil {
		return err
	}
	// r5: PersonTwo splits pay into regular and consulting (§2.3).
	r5 := disco.NewRelStore()
	if err := r5.CreateTable("persontwo0", "name", "regular", "consult"); err != nil {
		return err
	}
	if err := r5.Insert("persontwo0", disco.Str("Cal"), disco.Int(30), disco.Int(25)); err != nil {
		return err
	}

	m.RegisterEngine("r0", r0)
	m.RegisterEngine("r1", r1)
	m.RegisterEngine("r2", r2)
	m.RegisterEngine("r5", r5)

	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		r1 := Repository(address="mem:r1");
		r2 := Repository(address="mem:r2");
		r5 := Repository(address="mem:r5");
		w0 := WrapperPostgres();

		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;

		interface Student:Person { }
		extent student0 of Student wrapper w0 repository r2;

		-- §2.2.2: a differently-named mediator type over the same relation,
		-- reconciled by the local transformation map.
		interface PersonPrime {
		    attribute String n;
		    attribute Short s;
		}
		extent personprime0 of PersonPrime wrapper w0 repository r0
		    map ((person0=personprime0),(name=n),(salary=s));

		interface PersonTwo {
		    attribute String name;
		    attribute Short regular;
		    attribute Short consult;
		}
		extent persontwo0 of PersonTwo wrapper w0 repository r5;

		-- §2.2.3: reconciliation views.
		define double as
		    select struct(name: x.name, salary: x.salary + y.salary)
		    from x in person0 and y in person1
		    where x.id = y.id;

		define multiple as
		    select struct(name: x.name,
		                  salary: sum(select z.salary from z in person where x.id = z.id))
		    from x in person*;

		-- §2.3: integrating a dissimilar structure.
		define personnew as
		    union(select struct(name: x.name, salary: x.salary) from x in person,
		          select struct(name: x.name, salary: x.regular + x.consult) from x in persontwo0);
	`); err != nil {
		return err
	}

	show := func(title, q string) error {
		v, err := m.Query(q)
		if err != nil {
			return fmt.Errorf("%s: %w", title, err)
		}
		fmt.Printf("-- %s\n   %s\n   => %s\n\n", title, q, v)
		return nil
	}

	steps := []struct{ title, q string }{
		{"implicit extent spans person0 and person1 (§2.1)",
			`select x.name from x in person where x.salary > 10`},
		{"person does not include subtype extents (§2.2.1)",
			`count(person)`},
		{"person* closes over Student extents (§2.2.1)",
			`count(person*)`},
		{"the mapped PersonPrime type reads the same relation (§2.2.2)",
			`select p.n from p in personprime0 where p.s > 100`},
		{"double: reconciliation by addition over shared ids (§2.2.3)",
			`select d from d in double`},
		{"multiple: aggregate over an arbitrary number of sources (§2.2.3)",
			`select v from v in multiple where v.name = "Mary"`},
		{"personnew: dissimilar structures unified by a view (§2.3)",
			`select p.name from p in personnew where p.salary > 54`},
		{"the catalog itself is queryable (§2.1)",
			`select e.name from e in metaextent where e.interface = "Person"`},
	}
	for _, s := range steps {
		if err := show(s.title, s.q); err != nil {
			return err
		}
	}
	return nil
}
