// Quickstart: federate two relational sources under one mediator type and
// query them through a single extent — the paper's §1.2 example, runnable.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"disco"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two autonomous data sources: r0 knows Mary, r1 knows Sam.
	r0 := disco.NewRelStore()
	if err := r0.CreateTable("person0", "id", "name", "salary"); err != nil {
		return err
	}
	if err := r0.Insert("person0", disco.Int(1), disco.Str("Mary"), disco.Int(200)); err != nil {
		return err
	}
	r1 := disco.NewRelStore()
	if err := r1.CreateTable("person1", "id", "name", "salary"); err != nil {
		return err
	}
	if err := r1.Insert("person1", disco.Int(2), disco.Str("Sam"), disco.Int(50)); err != nil {
		return err
	}

	// One mediator models both as extents of a single Person type.
	m := disco.New()
	m.RegisterEngine("r0", r0)
	m.RegisterEngine("r1", r1)
	if err := m.ExecODL(`
		r0 := Repository(host="rodin", name="db", address="mem:r0");
		r1 := Repository(host="rodin", name="db2", address="mem:r1");
		w0 := WrapperPostgres();

		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}

		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;
	`); err != nil {
		return err
	}

	// The paper's query: one extent, two data sources.
	const q = `select x.name from x in person where x.salary > 10`
	v, err := m.Query(q)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n=> %s\n", q, v)

	// Who talks to which source is visible in the optimizer report.
	explain, err := m.Explain(q)
	if err != nil {
		return err
	}
	fmt.Printf("\nplan candidates:\n%s", explain)
	return nil
}
