# Development targets. `make check` is the gate a change must pass:
# formatting, vet, and the full test suite under the race detector.

GO ?= go

.PHONY: check fmt vet test test-race bench bench-compile build

check: fmt vet test-race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The perf trajectory: compiled vs tree-walking expression evaluation,
# batched vs tuple-at-a-time Volcano iteration, remote point-query
# throughput (pooled vs dial-per-request wire connections at 1/4/16
# concurrent clients), prepared-statement hits vs full recompiles,
# scatter-gather fan-out and partition pruning across 1/4/16 partitions,
# replica failover with a dead primary (breaker-warm vs the cold timeout
# path), the hedged-request tail cut with one slow copy (p99-ms, hedged vs
# unhedged), and read throughput scaling across 1/2/4 load-balanced copies.
# The benchstat-compatible output lands in BENCH_PR6.json so runs can be
# diffed across PRs (benchstat old.json new.json).
bench:
	$(GO) test -run xxx -bench 'CompiledEval|Volcano|RemoteQuery|PreparedStatements|ScatterGather|PartitionPruning|Failover|HedgedTail|ReplicaThroughput' -benchmem . | tee BENCH_PR6.json

bench-all:
	$(GO) test -run xxx -bench . -benchmem .

# Compile-and-smoke every benchmark in every package (one iteration each)
# so bench rot fails CI rather than lingering.
bench-compile:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
