# Development targets. `make check` is the gate a change must pass:
# formatting, vet, and the full test suite under the race detector.

GO ?= go

# The staticcheck release both CI and local runs must use. Pinning keeps
# "make lint here" and "lint job there" analyzing with the same checks:
# an unpinned @latest drifts silently and the two disagree about what is
# clean. CI reads this via `make print-staticcheck-version`.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: check fmt vet lint disco-lint print-staticcheck-version test test-race bench bench-compile build chaos

check: fmt lint test-race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet: the project's own invariant suite
# (cmd/disco-lint, always runs — it builds from this repo) plus
# staticcheck. staticcheck is optional locally (the CI lint job installs
# the pinned release); when absent the skip is loud and names the version
# to install, and when present a version other than the pin fails rather
# than silently analyzing with different checks.
lint: vet disco-lint
	@if command -v staticcheck >/dev/null 2>&1; then \
		got="$$(staticcheck -version 2>/dev/null | sed -n 's/^staticcheck \([^ ]*\).*/\1/p')"; \
		if [ "$$got" != "$(STATICCHECK_VERSION)" ]; then \
			echo "staticcheck version $$got does not match pinned $(STATICCHECK_VERSION)"; \
			echo "install with: go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
			exit 1; \
		fi; \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; SKIPPING staticcheck (go vet and disco-lint ran)"; \
		echo "install with: go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

# The project-specific analyzers (internal/lint): eofidentity, ctxflow,
# gotrack, locksend, traceexplain. Mechanizes the bug classes the chaos
# harness keeps rediscovering; see the "Correctness invariants" section
# in disco.go.
disco-lint:
	$(GO) run ./cmd/disco-lint ./...

# Used by CI to install the exact staticcheck release the Makefile pins.
print-staticcheck-version:
	@echo $(STATICCHECK_VERSION)

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The perf trajectory: compiled vs tree-walking expression evaluation,
# batched vs tuple-at-a-time Volcano iteration, remote point-query
# throughput (pooled vs dial-per-request wire connections at 1/4/16
# concurrent clients), prepared-statement hits vs full recompiles,
# scatter-gather fan-out and partition pruning across 1/4/16 partitions,
# replica failover with a dead primary (breaker-warm vs the cold timeout
# path), the hedged-request tail cut with one slow copy (p99-ms, hedged vs
# unhedged), read throughput scaling across 1/2/4 load-balanced copies,
# overload protection (goodput-q/s, shed-%, admitted p99-ms at 1x/2x/4x
# saturation), end-to-end cancellation (survivor goodput with cancel
# propagation vs the no-cancel baseline, plus wasted handler executions),
# and live shard migration (read p50/p99 before, during dual-read, and
# after cutover, plus reader errors across the cutover itself).
# The benchstat-compatible output lands in BENCH_PR9.json so runs can be
# diffed across PRs (benchstat old.json new.json).
bench:
	$(GO) test -run xxx -bench 'CompiledEval|Volcano|RemoteQuery|PreparedStatements|ScatterGather|PartitionPruning|Failover|HedgedTail|ReplicaThroughput|Overload|Cancellation|LiveMigration' -benchmem . | tee BENCH_PR9.json

# The seeded fault-injection suite: chaos-proxy unit tests, the admission
# gate and retry-budget tests, the chaos soaks (overload -> partition ->
# recovery, hedge-loser cancellation reclaim, and the migration soak that
# faults a live shard move at every phase boundary), and the end-to-end
# cancellation tests — all under the race detector. Deterministic: the
# chaos timelines are seeded, so a failure replays.
chaos:
	$(GO) test -race -run 'TestChaosSoak|TestProxy|TestAdmission|TestRetryBudget|TestMediatorCloseWithQueriesQueued|TestQueryShed|TestClassifySourceError|TestHedgeLoserReclaimsServerWork|TestCallerCancelReclaimsServerWork' ./internal/chaos/ ./internal/core/ ./internal/harness/

bench-all:
	$(GO) test -run xxx -bench . -benchmem .

# Compile-and-smoke every benchmark in every package (one iteration each)
# so bench rot fails CI rather than lingering.
bench-compile:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
