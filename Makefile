# Development targets. `make check` is the gate a change must pass:
# formatting, vet, and the full test suite under the race detector.

GO ?= go

.PHONY: check fmt vet test test-race bench build

check: fmt vet test-race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The perf trajectory: scatter-gather fan-out and partition pruning across
# 1/4/16 partitions. The benchstat-compatible output lands in
# BENCH_PR2.json so runs can be diffed across PRs
# (benchstat old.json new.json).
bench:
	$(GO) test -run xxx -bench 'ScatterGather|PartitionPruning' -benchmem . | tee BENCH_PR2.json

bench-all:
	$(GO) test -run xxx -bench . -benchmem .
