# Development targets. `make check` is the gate a change must pass:
# formatting, vet, and the full test suite under the race detector.

GO ?= go

.PHONY: check fmt vet lint test test-race bench bench-compile build chaos

check: fmt lint test-race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is optional locally (the CI lint
# job installs it); when absent the target degrades to vet alone rather
# than failing machines that don't have it.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet ran)"; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The perf trajectory: compiled vs tree-walking expression evaluation,
# batched vs tuple-at-a-time Volcano iteration, remote point-query
# throughput (pooled vs dial-per-request wire connections at 1/4/16
# concurrent clients), prepared-statement hits vs full recompiles,
# scatter-gather fan-out and partition pruning across 1/4/16 partitions,
# replica failover with a dead primary (breaker-warm vs the cold timeout
# path), the hedged-request tail cut with one slow copy (p99-ms, hedged vs
# unhedged), read throughput scaling across 1/2/4 load-balanced copies,
# overload protection (goodput-q/s, shed-%, admitted p99-ms at 1x/2x/4x
# saturation), end-to-end cancellation (survivor goodput with cancel
# propagation vs the no-cancel baseline, plus wasted handler executions),
# and live shard migration (read p50/p99 before, during dual-read, and
# after cutover, plus reader errors across the cutover itself).
# The benchstat-compatible output lands in BENCH_PR9.json so runs can be
# diffed across PRs (benchstat old.json new.json).
bench:
	$(GO) test -run xxx -bench 'CompiledEval|Volcano|RemoteQuery|PreparedStatements|ScatterGather|PartitionPruning|Failover|HedgedTail|ReplicaThroughput|Overload|Cancellation|LiveMigration' -benchmem . | tee BENCH_PR9.json

# The seeded fault-injection suite: chaos-proxy unit tests, the admission
# gate and retry-budget tests, the chaos soaks (overload -> partition ->
# recovery, hedge-loser cancellation reclaim, and the migration soak that
# faults a live shard move at every phase boundary), and the end-to-end
# cancellation tests — all under the race detector. Deterministic: the
# chaos timelines are seeded, so a failure replays.
chaos:
	$(GO) test -race -run 'TestChaosSoak|TestProxy|TestAdmission|TestRetryBudget|TestMediatorCloseWithQueriesQueued|TestQueryShed|TestClassifySourceError|TestHedgeLoserReclaimsServerWork|TestCallerCancelReclaimsServerWork' ./internal/chaos/ ./internal/core/ ./internal/harness/

bench-all:
	$(GO) test -run xxx -bench . -benchmem .

# Compile-and-smoke every benchmark in every package (one iteration each)
# so bench rot fails CI rather than lingering.
bench-compile:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
