package main

import (
	"testing"
)

func TestRunQuickSubset(t *testing.T) {
	// The fast experiments run end to end at quick sizes.
	if err := run(t.Context(), []string{"f2", "e5", "e6"}, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(t.Context(), []string{"e99"}, true); err == nil {
		t.Error("unknown experiment id should fail")
	}
}

func TestRunEmptyIDsSkipped(t *testing.T) {
	if err := run(t.Context(), []string{""}, true); err != nil {
		t.Fatal(err)
	}
}
