// Command disco-bench regenerates the experiment tables recorded in
// EXPERIMENTS.md: the two paper figures run as living systems (F1, F2) and
// the experiments derived from the paper's claims (E1–E9), per the
// index in DESIGN.md.
//
// Usage:
//
//	disco-bench              # run everything
//	disco-bench -exp e1,e3   # run a subset
//	disco-bench -quick       # reduced sizes (used in CI)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"disco/internal/harness"
)

func main() {
	var (
		exps  = flag.String("exp", "f1,f2,e1,e2,e3,e4,e5,e6,e7,e8,e9", "comma-separated experiment ids")
		quick = flag.Bool("quick", false, "reduced problem sizes")
	)
	flag.Parse()
	// The process root context: ^C cancels the in-flight experiment's
	// generators instead of killing them mid-measurement.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, strings.Split(*exps, ","), *quick); err != nil {
		fmt.Fprintln(os.Stderr, "disco-bench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, ids []string, quick bool) error {
	e1ns := []int{1, 2, 4, 8, 16, 32}
	e1trials := 10
	e3rows := 4000
	e5ns := []int{1, 2, 4, 8, 16, 32, 64}
	e7rows := 1500
	e7lat := []time.Duration{0, 10 * time.Millisecond, 40 * time.Millisecond}
	e8clients := []int{1, 4, 16}
	e8per := 200
	e9 := harness.OverloadSweepConfig{Duration: 2 * time.Second}
	if quick {
		e1ns = []int{1, 2, 4, 8}
		e1trials = 4
		e3rows = 500
		e5ns = []int{1, 4, 16}
		e7rows = 300
		e7lat = []time.Duration{0, 10 * time.Millisecond}
		e8clients = []int{1, 4}
		e8per = 50
		e9.Duration = 400 * time.Millisecond
		e9.Multipliers = []int{1, 2}
	}

	for _, id := range ids {
		var (
			table *harness.Table
			err   error
		)
		switch strings.TrimSpace(strings.ToLower(id)) {
		case "f1":
			table, err = harness.F1Architecture()
		case "f2":
			table, err = harness.F2Pipeline()
		case "e1":
			table, err = harness.E1Availability(e1ns, 0.90, e1trials, 150*time.Millisecond)
		case "e2":
			table, err = harness.E2Partial()
		case "e3":
			table, err = harness.E3Pushdown(e3rows)
		case "e4":
			table, err = harness.E4CostLearning()
		case "e5":
			table, err = harness.E5Scaling(e5ns)
		case "e6":
			table, err = harness.E6Modeling()
		case "e7":
			table, err = harness.E7WideArea(e7rows, e7lat)
		case "e8":
			table, err = harness.E8ConnectionScaling(ctx, e8clients, e8per)
		case "e9":
			table, err = harness.E9Overload(ctx, e9)
		case "":
			continue
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(table)
	}
	return nil
}
