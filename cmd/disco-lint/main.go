// Command disco-lint runs disco's project-specific invariant analyzers
// (internal/lint) over Go packages — a multichecker in the mold of
// golang.org/x/tools/go/analysis/multichecker, built on the standard
// library so the module stays dependency-free.
//
// Usage:
//
//	disco-lint [-list] [packages...]
//
// With no packages, ./... is analyzed. Findings print one per line as
// file:line:col: analyzer: message, and any finding makes the exit status
// 1 — this is the `make lint` / CI gate. Suppress a deliberate exception
// in place with a justified allow comment on or directly above the
// flagged line:
//
//	//lint:allow <analyzer> <why this site is a legitimate exception>
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"

	"disco/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "disco-lint:", err)
		os.Exit(2)
	}
	for _, d := range findings {
		fmt.Println(d)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "disco-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// listedPackage is the slice of `go list -json` output the driver needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

func run(patterns []string) ([]lint.Diagnostic, error) {
	pkgs, err := listPackages(patterns)
	if err != nil {
		return nil, err
	}
	analyzers := lint.Analyzers()
	var findings []lint.Diagnostic
	for _, pkg := range pkgs {
		fset := token.NewFileSet()
		var files []*ast.File
		// Non-test files only: the invariants guard production code
		// paths; tests legitimately detach contexts and fire goroutines.
		for _, name := range pkg.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(pkg.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		diags, err := lint.RunPackage(fset, files, pkg.ImportPath, analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
		}
		findings = append(findings, diags...)
	}
	return findings, nil
}

func listPackages(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listedPackage
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
