package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout around f and returns what was printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 0, 4096)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if rerr != nil {
			break
		}
	}
	return string(buf), ferr
}

func fixtureFiles(t *testing.T) (odlPath string, data dataFlags) {
	t.Helper()
	dir := t.TempDir()
	script := writeFile(t, dir, "r0.sql", `
		CREATE TABLE person0 (id, name, salary);
		INSERT INTO person0 VALUES (1, 'Mary', 200), (2, 'Sam', 5);
	`)
	odlPath = writeFile(t, dir, "schema.odl", `
		r0 := Repository(address="mem:r0");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
	`)
	return odlPath, dataFlags{"r0=" + script}
}

func TestRunOneShotQuery(t *testing.T) {
	odlPath, data := fixtureFiles(t)
	out, err := capture(t, func() error {
		return run(odlPath, `select x.name from x in person where x.salary > 10`, false, false, time.Second, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `bag("Mary")`) {
		t.Errorf("output = %q", out)
	}
}

func TestRunExplain(t *testing.T) {
	odlPath, data := fixtureFiles(t)
	out, err := capture(t, func() error {
		return run(odlPath, `select x.name from x in person`, false, true, time.Second, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=>") || !strings.Contains(out, "submit(r0") {
		t.Errorf("explain output = %q", out)
	}
}

func TestRunPartialCompleteAnswer(t *testing.T) {
	odlPath, data := fixtureFiles(t)
	out, err := capture(t, func() error {
		return run(odlPath, `count(person)`, true, false, time.Second, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2") {
		t.Errorf("output = %q", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", false, false, time.Second, dataFlags{"malformed"}); err == nil {
		t.Error("malformed -data should fail")
	}
	if err := run("/nonexistent.odl", "x", false, false, time.Second, nil); err == nil {
		t.Error("missing odl file should fail")
	}
	odlPath, data := fixtureFiles(t)
	_, err := capture(t, func() error {
		return run(odlPath, `select broken from`, false, false, time.Second, data)
	})
	if err == nil {
		t.Error("broken query should fail")
	}
}

func TestReplSession(t *testing.T) {
	odlPath, data := fixtureFiles(t)
	// Drive the repl through a pipe standing in for stdin.
	inR, inW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldIn := os.Stdin
	os.Stdin = inR
	defer func() { os.Stdin = oldIn }()

	go func() {
		inW.WriteString("select x.name from x in person where x.salary > 10\n")
		inW.WriteString(".explain select x.name from x in person\n")
		inW.WriteString(".plan select x.name from x in person\n")
		inW.WriteString(".schema\n")
		inW.WriteString(".odl drop extent person0;\n")
		inW.WriteString("define v as select p from p in person\n")
		inW.WriteString("count(v)\n")
		inW.WriteString("not a query\n")
		inW.WriteString(".quit\n")
		inW.Close()
	}()

	out, err := capture(t, func() error {
		return run(odlPath, "", false, false, time.Second, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`bag("Mary")`,      // query result
		"=>",               // explain marker
		"map(x.name)",      // plan tree
		"interface Person", // schema dump
		"ok",               // .odl ack
		"0",                // count over the view after the drop
		"error:",           // bad query reported, repl continues
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("repl output missing %q:\n%s", frag, out)
		}
	}
}
