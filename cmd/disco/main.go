// Command disco is an interactive DISCO mediator shell: it loads ODL
// definitions, registers in-process or remote data sources, and evaluates
// OQL queries with either strict or partial-answer semantics.
//
// Usage:
//
//	disco [-odl schema.odl] [-data name=script.sql ...] [-timeout 2s] \
//	      [-q query] [-partial] [-explain]
//
// Each -data flag loads a RelStore from a CREATE TABLE/INSERT script and
// registers it as the in-process engine NAME, reachable from ODL as
// address="mem:NAME". Without -q, the shell reads commands from stdin:
//
//	disco> select x.name from x in person where x.salary > 10
//	disco> .partial select x.name from x in person
//	disco> .explain select x.name from x in person
//	disco> .odl extent person2 of Person wrapper w0 repository r2;
//	disco> .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"disco/internal/core"
	"disco/internal/source"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	var (
		odlPath = flag.String("odl", "", "ODL schema file to load at startup")
		query   = flag.String("q", "", "evaluate one query and exit")
		partial = flag.Bool("partial", false, "use partial-answer semantics for -q")
		explain = flag.Bool("explain", false, "print the optimizer report for -q instead of executing")
		timeout = flag.Duration("timeout", core.DefaultTimeout, "evaluation deadline for data sources")
		data    dataFlags
	)
	flag.Var(&data, "data", "NAME=SCRIPT.sql: load a relational store and register it as mem:NAME (repeatable)")
	flag.Parse()

	if err := run(*odlPath, *query, *partial, *explain, *timeout, data); err != nil {
		fmt.Fprintln(os.Stderr, "disco:", err)
		os.Exit(1)
	}
}

func run(odlPath, query string, partial, explain bool, timeout time.Duration, data dataFlags) error {
	m := core.New(core.WithTimeout(timeout))

	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-data wants NAME=SCRIPT, got %q", spec)
		}
		script, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		store := source.NewRelStore()
		if err := source.ExecScript(store, string(script)); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		m.RegisterEngine(name, store)
	}

	if odlPath != "" {
		odl, err := os.ReadFile(odlPath)
		if err != nil {
			return err
		}
		if err := m.ExecODL(string(odl)); err != nil {
			return fmt.Errorf("%s: %w", odlPath, err)
		}
	}

	if query != "" {
		return runOne(m, query, partial, explain)
	}
	return repl(m)
}

func runOne(m *core.Mediator, query string, partial, explain bool) error {
	switch {
	case explain:
		report, err := m.Explain(query)
		if err != nil {
			return err
		}
		fmt.Print(report)
	case partial:
		ans, err := m.QueryPartial(query)
		if err != nil {
			return err
		}
		if !ans.Complete {
			fmt.Printf("-- partial answer (unavailable: %s); resubmit when sources recover:\n",
				strings.Join(ans.Unavailable, ", "))
		}
		fmt.Println(ans)
	default:
		v, err := m.Query(query)
		if err != nil {
			return err
		}
		fmt.Println(v)
	}
	return nil
}

func repl(m *core.Mediator) error {
	fmt.Println("DISCO mediator shell. Commands: .odl <stmt>, .partial <q>, .explain <q>, .plan <q>, .schema, .quit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	fmt.Print("disco> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return nil
		case strings.HasPrefix(line, ".odl "):
			if err := m.ExecODL(strings.TrimPrefix(line, ".odl ")); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case strings.HasPrefix(line, ".partial "):
			if err := runOne(m, strings.TrimPrefix(line, ".partial "), true, false); err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, ".explain "):
			if err := runOne(m, strings.TrimPrefix(line, ".explain "), false, true); err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, ".plan "):
			tree, err := m.ExplainPlan(strings.TrimPrefix(line, ".plan "))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(tree)
			}
		case line == ".schema":
			fmt.Print(m.DumpODL())
		case strings.HasPrefix(line, "define "):
			if err := m.Define(line); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		default:
			if err := runOne(m, line, false, false); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("disco> ")
	}
	return scanner.Err()
}
