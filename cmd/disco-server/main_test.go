package main

import (
	"os"
	"path/filepath"
	"testing"

	"disco/internal/source"
	"disco/internal/types"
)

func TestLoadDocsCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sites.csv")
	if err := os.WriteFile(path, []byte("station,quality\namont,good\naval,poor\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := source.NewDocStore()
	if err := loadDocsCSV(store, path); err != nil {
		t.Fatal(err)
	}
	// Collection named after the file.
	b, err := store.Query("SCAN sites")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("docs = %d", b.Len())
	}
	doc := b.At(0).(*types.Struct)
	if v, ok := doc.Get("station"); !ok || v.Kind() != types.KindString {
		t.Errorf("doc = %s", doc)
	}
	// Ragged rows pad with empty strings rather than failing.
	path2 := filepath.Join(dir, "ragged.csv")
	if err := os.WriteFile(path2, []byte("a,b\nonly\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadDocsCSV(store, path2); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDocsCSVMissing(t *testing.T) {
	if err := loadDocsCSV(source.NewDocStore(), "/nonexistent.csv"); err == nil {
		t.Error("missing file should fail")
	}
}
