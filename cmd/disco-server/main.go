// Command disco-server runs a standalone data-source server speaking the
// DISCO wire protocol — one of the D boxes of the paper's Figure 1.
//
// Usage:
//
//	disco-server -addr 127.0.0.1:4001 -kind sql -data people.sql
//	disco-server -addr 127.0.0.1:4002 -kind doc -docs sites.csv
//
// A sql server loads a CREATE TABLE/INSERT script and answers the SQL
// dialect; a doc server loads one CSV file as a document collection and
// answers the keyword language. -latency injects per-reply delay so that
// wide-area behaviour can be reproduced locally.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"disco/internal/core"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:4001", "listen address")
		kind    = flag.String("kind", "sql", "engine kind: sql or doc")
		data    = flag.String("data", "", "SQL script for -kind sql")
		docs    = flag.String("docs", "", "CSV file served as a collection for -kind doc")
		latency = flag.Duration("latency", 0, "injected reply latency")
	)
	flag.Parse()
	if err := run(*addr, *kind, *data, *docs, *latency); err != nil {
		fmt.Fprintln(os.Stderr, "disco-server:", err)
		os.Exit(1)
	}
}

func run(addr, kind, data, docs string, latency time.Duration) error {
	var engine source.Engine
	switch kind {
	case "sql":
		store := source.NewRelStore()
		if data != "" {
			script, err := os.ReadFile(data)
			if err != nil {
				return err
			}
			if err := source.ExecScript(store, string(script)); err != nil {
				return fmt.Errorf("%s: %w", data, err)
			}
		}
		engine = store
	case "doc":
		store := source.NewDocStore()
		if docs != "" {
			if err := loadDocsCSV(store, docs); err != nil {
				return err
			}
		}
		engine = store
	default:
		return fmt.Errorf("unknown engine kind %q", kind)
	}

	srv, err := wire.NewServer(addr, core.EngineHandler{Engine: engine})
	if err != nil {
		return err
	}
	if latency > 0 {
		srv.SetLatency(latency)
	}
	fmt.Printf("disco-server: %s engine on %s serving %v\n", kind, srv.Addr(), engine.Collections())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Close()
}

// loadDocsCSV loads a CSV file (header row first) as one document
// collection named after the file.
func loadDocsCSV(store *source.DocStore, path string) error {
	collection := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 1 {
		return fmt.Errorf("%s: empty file", path)
	}
	header := strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		fields := make([]types.Field, 0, len(header))
		for i, h := range header {
			v := ""
			if i < len(cells) {
				v = strings.TrimSpace(cells[i])
			}
			fields = append(fields, types.Field{Name: strings.TrimSpace(h), Value: types.Str(v)})
		}
		store.AddDocument(collection, types.NewStruct(fields...))
	}
	return nil
}
