package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"disco/internal/core"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

func TestStartServesOQL(t *testing.T) {
	// A real data-source server for the mediator to federate.
	store := source.NewRelStore()
	if err := source.ExecScript(store, `
		CREATE TABLE person0 (id, name, salary);
		INSERT INTO person0 VALUES (1, 'Mary', 200);
	`); err != nil {
		t.Fatal(err)
	}
	srcSrv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: store})
	if err != nil {
		t.Fatal(err)
	}
	defer srcSrv.Close()

	dir := t.TempDir()
	odlPath := filepath.Join(dir, "federation.odl")
	odl := `
		r0 := Repository(address="` + srcSrv.Addr() + `");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
	`
	if err := os.WriteFile(odlPath, []byte(odl), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, extents, err := start("127.0.0.1:0", odlPath, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if len(extents) != 1 || extents[0] != "person0" {
		t.Errorf("extents = %v", extents)
	}

	// Query the mediator over the wire like an application would.
	c := wire.NewClient(srv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	raw, err := c.Query(ctx, wire.LangOQL, `select x.name from x in person`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := types.DecodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.NewBag(types.Str("Mary"))) {
		t.Errorf("answer = %s", v)
	}
}

func TestStartErrors(t *testing.T) {
	if _, _, err := start("127.0.0.1:0", "", time.Second); err == nil {
		t.Error("missing -odl should fail")
	}
	if _, _, err := start("127.0.0.1:0", "/nonexistent.odl", time.Second); err == nil {
		t.Error("missing file should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.odl")
	if err := os.WriteFile(bad, []byte("not odl at all %"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := start("127.0.0.1:0", bad, time.Second); err == nil {
		t.Error("bad schema should fail")
	}
}
