// Command disco-mediator runs a DISCO mediator as a network service — an M
// box of the paper's Figure 1. It loads an ODL schema describing the data
// sources it federates and then serves OQL over the wire protocol, so that
// applications (and other mediators: the composition arrow of Figure 1)
// can query it.
//
// Usage:
//
//	disco-mediator -addr 127.0.0.1:4000 -odl federation.odl [-timeout 2s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disco/internal/core"
	"disco/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:4000", "listen address")
		odlPath = flag.String("odl", "", "ODL schema file (required)")
		timeout = flag.Duration("timeout", core.DefaultTimeout, "evaluation deadline for data sources")
	)
	flag.Parse()
	if err := run(*addr, *odlPath, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "disco-mediator:", err)
		os.Exit(1)
	}
}

func run(addr, odlPath string, timeout time.Duration) error {
	srv, extents, err := start(addr, odlPath, timeout)
	if err != nil {
		return err
	}
	fmt.Printf("disco-mediator: serving OQL on %s over extents %v\n", srv.Addr(), extents)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Close()
}

// start loads the schema and begins serving; separated from run so tests
// can drive a live server without signals.
func start(addr, odlPath string, timeout time.Duration) (*wire.Server, []string, error) {
	if odlPath == "" {
		return nil, nil, fmt.Errorf("-odl is required")
	}
	odl, err := os.ReadFile(odlPath)
	if err != nil {
		return nil, nil, err
	}
	m := core.New(core.WithTimeout(timeout))
	if err := m.ExecODL(string(odl)); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", odlPath, err)
	}
	srv, err := m.Serve(addr)
	if err != nil {
		return nil, nil, err
	}
	extents := make([]string, 0)
	for _, me := range m.Catalog().Extents() {
		extents = append(extents, me.Name)
	}
	return srv, extents, nil
}
