// Package source implements the autonomous data sources DISCO mediates
// over. The paper's deployments used external DBMSs and information servers
// (relational servers, WAIS, file systems); this package substitutes two
// self-contained engines that exercise the same wrapper code paths:
//
//   - RelStore: a small relational engine queried in a SQL dialect —
//     the kind of server behind WrapperPostgres (§2.1). Query evaluation
//     reuses the algebra interpreter so that operator semantics match the
//     mediator exactly, the property §3.2 demands.
//   - DocStore: a keyword-search document store with deliberately weak
//     query power (scan and equality filter only), standing in for the
//     WAIS-class servers the paper cites as motivating the capability
//     grammar mechanism.
package source

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/types"
)

// Engine is a data source: it executes queries written in the engine's own
// language and lists the collections it holds. Wrappers translate mediator
// algebra into that language.
type Engine interface {
	// Query executes a query in the engine's native language.
	Query(q string) (*types.Bag, error)
	// Collections returns the collection (table) names, sorted.
	Collections() []string
}

// ContextEngine is implemented by engines whose query execution honors a
// context: a cancelled or expired context stops evaluation at the next
// operator (batch) boundary instead of computing an answer nobody will
// read. Serving layers prefer it over Engine.Query when present, passing
// the per-request context the wire server derived from the caller's
// propagated deadline and cancel frames.
type ContextEngine interface {
	QueryContext(ctx context.Context, q string) (*types.Bag, error)
}

// Versioned is implemented by engines that timestamp their collections:
// every mutation bumps the collection's version. It concretizes the §4
// sketch of checking whether data embedded in a partial answer went stale
// while a source was unavailable.
type Versioned interface {
	// Versions returns the current version of every collection.
	Versions() map[string]int64
}

// Table is one relation of a RelStore.
type Table struct {
	Name    string
	Cols    []string
	rows    []types.Value
	version int64
}

// RelStore is an in-memory relational database queried in SQL. It is safe
// for concurrent use.
type RelStore struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

var (
	_ Engine        = (*RelStore)(nil)
	_ ContextEngine = (*RelStore)(nil)
)

// NewRelStore returns an empty store.
func NewRelStore() *RelStore {
	return &RelStore{tables: make(map[string]*Table)}
}

// CreateTable defines a relation with the given columns.
func (s *RelStore) CreateTable(name string, cols ...string) error {
	if name == "" || len(cols) == 0 {
		return fmt.Errorf("relstore: table needs a name and columns")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return fmt.Errorf("relstore: table %q already exists", name)
	}
	s.tables[name] = &Table{Name: name, Cols: append([]string(nil), cols...)}
	return nil
}

// Insert appends one row; values align with the table's column order.
func (s *RelStore) Insert(table string, values ...types.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("relstore: no table %q", table)
	}
	if len(values) != len(t.Cols) {
		return fmt.Errorf("relstore: table %q has %d columns, got %d values", table, len(t.Cols), len(values))
	}
	fields := make([]types.Field, len(values))
	for i, v := range values {
		fields[i] = types.Field{Name: t.Cols[i], Value: v}
	}
	t.rows = append(t.rows, types.NewStruct(fields...))
	t.version++
	return nil
}

// Delete removes all rows matching pred (a SQL-dialect condition) from a
// table and returns how many went away. It exists so sources can change
// under the mediator, which the staleness checks are about.
func (s *RelStore) Delete(table, cond string) (int, error) {
	pred, err := ParseSQLCondition(cond)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", table)
	}
	kept := make([]types.Value, 0, len(t.rows))
	removed := 0
	for _, row := range t.rows {
		st := row.(*types.Struct)
		var env *oql.Env
		for _, f := range st.Fields() {
			env = env.Bind(f.Name, f.Value)
		}
		v, err := oql.Eval(pred, env, oql.EmptyResolver)
		if err != nil {
			return 0, err
		}
		match, err := types.Truthy(v)
		if err != nil {
			return 0, err
		}
		if match {
			removed++
			continue
		}
		kept = append(kept, row)
	}
	t.rows = kept
	if removed > 0 {
		t.version++
	}
	return removed, nil
}

// Versions implements Versioned.
func (s *RelStore) Versions() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.tables))
	for n, t := range s.tables {
		out[n] = t.version
	}
	return out
}

// Rows returns the current contents of a table as a bag of structs.
func (s *RelStore) Rows(table string) (*types.Bag, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", table)
	}
	return types.NewBag(t.rows...), nil
}

// Columns returns a table's column names.
func (s *RelStore) Columns(table string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", table)
	}
	return append([]string(nil), t.Cols...), nil
}

// Collections implements Engine.
func (s *RelStore) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Collection implements algebra.Collections so pushed-down logical
// expressions evaluate directly against the store.
func (s *RelStore) Collection(name string) (*types.Bag, error) {
	return s.Rows(name)
}

// Query implements Engine: it parses the SQL dialect and executes it. The
// SQL is compiled to the shared logical algebra and run by the algebra
// interpreter, which guarantees the engine's comparison and join semantics
// are identical to the mediator's.
func (s *RelStore) Query(q string) (*types.Bag, error) {
	//lint:allow ctxflow compat shim for the context-free Engine interface; context-aware callers (the mediator included) use QueryContext via ContextEngine
	return s.QueryContext(context.Background(), q)
}

// QueryContext implements ContextEngine: Query, with the interpreter
// checking the context at operator and join-loop boundaries so a cancelled
// request stops burning this store's CPU promptly.
func (s *RelStore) QueryContext(ctx context.Context, q string) (*types.Bag, error) {
	plan, err := ParseSQL(q)
	if err != nil {
		return nil, err
	}
	in := &algebra.Interp{Cols: s, Ctx: ctx}
	v, err := in.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("relstore: %w", err)
	}
	b, ok := v.(*types.Bag)
	if !ok {
		return nil, fmt.Errorf("relstore: query produced %s", v.Kind())
	}
	return b, nil
}
