// Bulk-load support for live shard migration. A migration copy must be
// idempotent — the copying phase can be killed and re-run — so every load is
// clear-then-insert under one lock: LoadRows wipes the rows the migration is
// responsible for (all of them, or a key range) and installs the new batch
// atomically with respect to concurrent queries.
package source

import (
	"fmt"

	"disco/internal/types"
)

// ClearSpec selects the rows LoadRows removes before inserting. The zero
// value clears nothing. It is structured rather than a SQL string so the
// same request crosses the wire to any engine kind without dialect
// rendering.
type ClearSpec struct {
	// All clears the whole collection.
	All bool
	// Attr, when All is false and Attr is non-empty, clears rows whose
	// attribute value v satisfies Lo <= v < Hi — the same inclusive-below,
	// exclusive-above convention as range partitioning. A nil bound leaves
	// that side open.
	Attr   string
	Lo, Hi types.Value
}

// matches reports whether a row falls in the spec's clear set.
func (c ClearSpec) matches(row types.Value) (bool, error) {
	if c.All {
		return true, nil
	}
	if c.Attr == "" {
		return false, nil
	}
	st, ok := row.(*types.Struct)
	if !ok {
		return false, fmt.Errorf("loader: row is %s, not struct", row.Kind())
	}
	v, ok := st.Get(c.Attr)
	if !ok {
		return false, fmt.Errorf("loader: row has no attribute %q", c.Attr)
	}
	if c.Lo != nil {
		cmp, err := types.Compare(v, c.Lo)
		if err != nil {
			return false, err
		}
		if cmp < 0 {
			return false, nil
		}
	}
	if c.Hi != nil {
		cmp, err := types.Compare(v, c.Hi)
		if err != nil {
			return false, err
		}
		if cmp >= 0 {
			return false, nil
		}
	}
	return true, nil
}

// Loader is implemented by engines that accept migration bulk loads: clear
// the spec'd rows of the collection (creating it with the given columns if
// missing) and insert rows, as one atomic mutation.
type Loader interface {
	LoadRows(collection string, cols []string, clear ClearSpec, rows []types.Value) error
}

var _ Loader = (*RelStore)(nil)

// LoadRows implements Loader. Rows are structs; each is projected onto the
// table's column order (missing attributes load as Nothing would — an
// error, to keep the migration copy honest about schema drift).
func (s *RelStore) LoadRows(collection string, cols []string, clear ClearSpec, rows []types.Value) error {
	if collection == "" {
		return fmt.Errorf("relstore: load needs a collection name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[collection]
	if !ok {
		if len(cols) == 0 {
			if len(rows) == 0 {
				// A pure clear of a table that never existed: nothing to
				// clear. Abort cleanup hits this when the copy never ran.
				return nil
			}
			return fmt.Errorf("relstore: load into missing table %q needs columns", collection)
		}
		t = &Table{Name: collection, Cols: append([]string(nil), cols...)}
		s.tables[collection] = t
	}
	kept := make([]types.Value, 0, len(t.rows))
	for _, row := range t.rows {
		match, err := clear.matches(row)
		if err != nil {
			return err
		}
		if !match {
			kept = append(kept, row)
		}
	}
	loaded := make([]types.Value, 0, len(rows))
	for _, row := range rows {
		st, ok := row.(*types.Struct)
		if !ok {
			return fmt.Errorf("relstore: load row is %s, not struct", row.Kind())
		}
		fields := make([]types.Field, len(t.Cols))
		for i, col := range t.Cols {
			v, ok := st.Get(col)
			if !ok {
				return fmt.Errorf("relstore: load row lacks column %q of table %q", col, collection)
			}
			fields[i] = types.Field{Name: col, Value: v}
		}
		loaded = append(loaded, types.NewStruct(fields...))
	}
	t.rows = append(kept, loaded...)
	t.version++
	return nil
}
