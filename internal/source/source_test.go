package source

import (
	"strings"
	"testing"

	"disco/internal/types"
)

func paperStore(t *testing.T) *RelStore {
	t.Helper()
	s := NewRelStore()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.CreateTable("person0", "id", "name", "salary"))
	must(s.Insert("person0", types.Int(1), types.Str("Mary"), types.Int(200)))
	must(s.Insert("person0", types.Int(3), types.Str("Ann"), types.Int(5)))
	must(s.CreateTable("employee0", "ename", "dept"))
	must(s.Insert("employee0", types.Str("Bob"), types.Str("db")))
	must(s.Insert("employee0", types.Str("Eve"), types.Str("os")))
	must(s.CreateTable("manager0", "mname", "mdept"))
	must(s.Insert("manager0", types.Str("Kim"), types.Str("db")))
	return s
}

func query(t *testing.T, s *RelStore, q string) *types.Bag {
	t.Helper()
	b, err := s.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return b
}

func TestSelectStar(t *testing.T) {
	s := paperStore(t)
	b := query(t, s, `SELECT * FROM person0`)
	if b.Len() != 2 {
		t.Errorf("rows = %d", b.Len())
	}
}

func TestSelectProjection(t *testing.T) {
	s := paperStore(t)
	b := query(t, s, `SELECT name FROM person0 WHERE salary > 10`)
	want := types.NewBag(types.NewStruct(types.Field{Name: "name", Value: types.Str("Mary")}))
	if !b.Equal(want) {
		t.Errorf("got %s, want %s", b, want)
	}
}

func TestSelectMultiColumn(t *testing.T) {
	s := paperStore(t)
	b := query(t, s, `SELECT name, salary FROM person0 WHERE id = 1`)
	if b.Len() != 1 {
		t.Fatalf("rows = %d", b.Len())
	}
	row := b.At(0).(*types.Struct)
	if len(row.FieldNames()) != 2 {
		t.Errorf("row = %s", row)
	}
}

func TestWherePredicates(t *testing.T) {
	s := paperStore(t)
	tests := []struct {
		q    string
		rows int
	}{
		{`SELECT * FROM person0 WHERE salary > 10`, 1},
		{`SELECT * FROM person0 WHERE salary >= 5`, 2},
		{`SELECT * FROM person0 WHERE salary < 10`, 1},
		{`SELECT * FROM person0 WHERE name = 'Mary'`, 1},
		{`SELECT * FROM person0 WHERE name <> 'Mary'`, 1},
		{`SELECT * FROM person0 WHERE name != 'Mary'`, 1},
		{`SELECT * FROM person0 WHERE salary > 10 AND name = 'Mary'`, 1},
		{`SELECT * FROM person0 WHERE salary > 10 OR salary < 6`, 2},
		{`SELECT * FROM person0 WHERE NOT salary > 10`, 1},
		{`SELECT * FROM person0 WHERE (salary > 10 OR id = 3) AND name = 'Ann'`, 1},
		{`SELECT * FROM person0 WHERE id IN (1, 3)`, 2},
		{`SELECT * FROM person0 WHERE id IN (9)`, 0},
		{`SELECT * FROM person0 WHERE TRUE = TRUE`, 2},
	}
	for _, tt := range tests {
		if got := query(t, s, tt.q).Len(); got != tt.rows {
			t.Errorf("%q: rows = %d, want %d", tt.q, got, tt.rows)
		}
	}
}

func TestJoin(t *testing.T) {
	s := paperStore(t)
	b := query(t, s, `SELECT ename, mname FROM employee0 JOIN manager0 ON dept = mdept`)
	want := types.NewBag(types.NewStruct(
		types.Field{Name: "ename", Value: types.Str("Bob")},
		types.Field{Name: "mname", Value: types.Str("Kim")},
	))
	if !b.Equal(want) {
		t.Errorf("join = %s, want %s", b, want)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	s := paperStore(t)
	b := query(t, s, `SELECT name FROM (SELECT name, salary FROM person0 WHERE salary > 10)`)
	if b.Len() != 1 {
		t.Errorf("rows = %d", b.Len())
	}
}

func TestDistinct(t *testing.T) {
	s := NewRelStore()
	if err := s.CreateTable("t", "a"); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{1, 1, 2} {
		if err := s.Insert("t", types.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	b := query(t, s, `SELECT DISTINCT a FROM t`)
	if b.Len() != 2 {
		t.Errorf("distinct rows = %d", b.Len())
	}
}

func TestStringEscapes(t *testing.T) {
	s := NewRelStore()
	if err := s.CreateTable("t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", types.Str("it's")); err != nil {
		t.Fatal(err)
	}
	b := query(t, s, `SELECT * FROM t WHERE a = 'it''s'`)
	if b.Len() != 1 {
		t.Errorf("rows = %d", b.Len())
	}
}

func TestSQLErrors(t *testing.T) {
	s := paperStore(t)
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM t`,
		`SELECT * FROM`,
		`SELECT * FROM nosuch`,
		`SELECT * FROM person0 WHERE`,
		`SELECT * FROM person0 WHERE salary ~ 3`,
		`SELECT * FROM person0 WHERE id IN (name)`,
		`SELECT * FROM person0 extra`,
		`SELECT * FROM (SELECT * FROM person0`,
		`SELECT nosuchcol FROM person0`,
		`DELETE FROM person0`,
		`SELECT * FROM person0 WHERE 'unterminated`,
	}
	for _, q := range bad {
		if _, err := s.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	s := NewRelStore()
	if err := s.CreateTable("t", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", types.Int(1)); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := s.Insert("nosuch", types.Int(1)); err == nil {
		t.Error("unknown table should fail")
	}
	if err := s.CreateTable("t", "a"); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := s.CreateTable("", "a"); err == nil {
		t.Error("empty name should fail")
	}
}

func TestCollections(t *testing.T) {
	s := paperStore(t)
	got := s.Collections()
	want := []string{"employee0", "manager0", "person0"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Collections = %v", got)
	}
	cols, err := s.Columns("person0")
	if err != nil || len(cols) != 3 {
		t.Errorf("Columns = %v, %v", cols, err)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	s := paperStore(t)
	b := query(t, s, `select name from person0 where salary > 10`)
	if b.Len() != 1 {
		t.Errorf("rows = %d", b.Len())
	}
}

// --- DocStore ---------------------------------------------------------------

func paperDocs(t *testing.T) *DocStore {
	t.Helper()
	d := NewDocStore()
	d.AddDocument("sites", types.NewStruct(
		types.Field{Name: "site", Value: types.Str("seine-amont")},
		types.Field{Name: "quality", Value: types.Str("good")},
		types.Field{Name: "ph", Value: types.Float(7.1)},
	))
	d.AddDocument("sites", types.NewStruct(
		types.Field{Name: "site", Value: types.Str("seine-aval")},
		types.Field{Name: "quality", Value: types.Str("poor")},
		types.Field{Name: "ph", Value: types.Float(6.2)},
	))
	return d
}

func TestDocScan(t *testing.T) {
	d := paperDocs(t)
	b, err := d.Query(`SCAN sites`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("docs = %d", b.Len())
	}
}

func TestDocMatch(t *testing.T) {
	d := paperDocs(t)
	b, err := d.Query(`MATCH sites quality 'good'`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("docs = %d", b.Len())
	}
	doc := b.At(0).(*types.Struct)
	if v, _ := doc.Get("site"); !v.Equal(types.Str("seine-amont")) {
		t.Errorf("doc = %s", doc)
	}
}

func TestDocMatchNonString(t *testing.T) {
	d := paperDocs(t)
	b, err := d.Query(`MATCH sites ph '7.1'`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Errorf("docs = %d", b.Len())
	}
}

func TestDocGrep(t *testing.T) {
	d := paperDocs(t)
	b, err := d.Query(`GREP sites site 'seine'`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("docs = %d", b.Len())
	}
}

func TestDocQuotedValueWithSpaces(t *testing.T) {
	d := NewDocStore()
	d.AddDocument("notes", types.NewStruct(types.Field{Name: "text", Value: types.Str("hello world")}))
	b, err := d.Query(`MATCH notes text 'hello world'`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Errorf("docs = %d", b.Len())
	}
}

func TestDocErrors(t *testing.T) {
	d := paperDocs(t)
	for _, q := range []string{
		``,
		`SCAN`,
		`SCAN nosuch`,
		`MATCH sites quality`,
		`EXPLODE sites`,
	} {
		if _, err := d.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestDocCollections(t *testing.T) {
	d := paperDocs(t)
	if got := d.Collections(); len(got) != 1 || got[0] != "sites" {
		t.Errorf("Collections = %v", got)
	}
}
