package source

import (
	"strings"
	"testing"

	"disco/internal/types"
)

func TestExecScript(t *testing.T) {
	s := NewRelStore()
	err := ExecScript(s, `
		-- the paper's r0 source
		CREATE TABLE person0 (id, name, salary);
		INSERT INTO person0 VALUES (1, 'Mary', 200);
		INSERT INTO person0 VALUES (2, 'Ann', 5), (3, 'Bob', 42);
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Rows("person0")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Errorf("rows = %d", rows.Len())
	}
	b, err := s.Query(`SELECT name FROM person0 WHERE salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("query rows = %d", b.Len())
	}
}

func TestExecScriptTypeAnnotations(t *testing.T) {
	s := NewRelStore()
	err := ExecScript(s, `
		CREATE TABLE t (id INT, name VARCHAR, ratio FLOAT);
		INSERT INTO t VALUES (1, 'x', 2.5);
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Rows("t")
	if err != nil {
		t.Fatal(err)
	}
	row := rows.At(0).(*types.Struct)
	if v, _ := row.Get("ratio"); v.Kind() != types.KindFloat {
		t.Errorf("ratio kind = %s", v.Kind())
	}
}

func TestExecScriptErrors(t *testing.T) {
	bad := []struct{ script, frag string }{
		{`DROP TABLE x;`, "CREATE or INSERT"},
		{`CREATE TABLE;`, "identifier"},
		{`CREATE TABLE t (a); INSERT INTO t VALUES (a);`, "literals"},
		{`INSERT INTO ghost VALUES (1);`, "no table"},
		{`CREATE TABLE t (a); INSERT INTO t VALUES (1, 2);`, "columns"},
		{`CREATE TABLE t (a)`, "expected"},
	}
	for _, tt := range bad {
		err := ExecScript(NewRelStore(), tt.script)
		if err == nil {
			t.Errorf("ExecScript(%q) should fail", tt.script)
			continue
		}
		if !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("ExecScript(%q) error = %q, want fragment %q", tt.script, err, tt.frag)
		}
	}
}

func TestGenPeople(t *testing.T) {
	s := NewRelStore()
	if err := GenPeople(s, "person0", 100, 7); err != nil {
		t.Fatal(err)
	}
	rows, err := s.Rows("person0")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 100 {
		t.Fatalf("rows = %d", rows.Len())
	}
	// Deterministic for a fixed seed.
	s2 := NewRelStore()
	if err := GenPeople(s2, "person0", 100, 7); err != nil {
		t.Fatal(err)
	}
	rows2, _ := s2.Rows("person0")
	if !rows.Equal(rows2) {
		t.Error("GenPeople should be deterministic per seed")
	}
	// Salaries within range.
	b, err := s.Query(`SELECT * FROM person0 WHERE salary >= 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("salaries out of range: %d rows", b.Len())
	}
}

func TestGenReadings(t *testing.T) {
	s := NewRelStore()
	if err := GenReadings(s, "readings0", "amont", 30, 3); err != nil {
		t.Fatal(err)
	}
	b, err := s.Query(`SELECT * FROM readings0 WHERE station = 'amont'`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 30 {
		t.Errorf("rows = %d", b.Len())
	}
	row := b.At(0).(*types.Struct)
	ph, _ := row.Get("ph")
	if n, ok := types.Numeric(ph); !ok || n < 6.0 || n > 8.0 {
		t.Errorf("ph out of range: %s", ph)
	}
}
