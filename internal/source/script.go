package source

import (
	"fmt"
	"math/rand"
	"strings"

	"disco/internal/oql"
	"disco/internal/types"
)

// ExecScript loads a data-definition script into a RelStore. The script
// language is the DDL/DML half of the SQL dialect:
//
//	CREATE TABLE person0 (id, name, salary);
//	INSERT INTO person0 VALUES (1, 'Mary', 200);
//
// Statements end with ";"; "--" comments run to end of line.
func ExecScript(s *RelStore, script string) error {
	toks, err := sqlLex(script)
	if err != nil {
		return err
	}
	p := &sqlParser{toks: toks}
	for p.cur().kind != sqlEOF {
		switch {
		case p.isKeyword("create"):
			if err := parseCreate(p, s); err != nil {
				return err
			}
		case p.isKeyword("insert"):
			if err := parseInsert(p, s); err != nil {
				return err
			}
		default:
			return p.errorf("expected CREATE or INSERT, found %q", p.cur().text)
		}
	}
	return nil
}

func parseCreate(p *sqlParser, s *RelStore) error {
	p.advance() // create
	if err := p.expectKeyword("table"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	var cols []string
	for {
		c, err := p.expectIdent()
		if err != nil {
			return err
		}
		// Optional type annotation after the column name is accepted and
		// ignored (the store is dynamically typed).
		if p.cur().kind == sqlIdent && !p.isKeyword("") {
			switch strings.ToLower(p.cur().text) {
			case "int", "integer", "short", "long", "text", "varchar", "float", "double", "boolean", "string":
				p.advance()
			}
		}
		cols = append(cols, c)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	return s.CreateTable(name, cols...)
}

func parseInsert(p *sqlParser, s *RelStore) error {
	p.advance() // insert
	if err := p.expectKeyword("into"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectKeyword("values"); err != nil {
		return err
	}
	for {
		if err := p.expect("("); err != nil {
			return err
		}
		var vals []types.Value
		for {
			lit, err := p.parseOperand()
			if err != nil {
				return err
			}
			v, ok := literalOf(lit)
			if !ok {
				return p.errorf("INSERT values must be literals")
			}
			vals = append(vals, v)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		if err := s.Insert(name, vals...); err != nil {
			return err
		}
		// Multiple tuples: VALUES (...), (...), ...
		if !p.accept(",") {
			break
		}
	}
	return p.expect(";")
}

// literalOf extracts the value of a literal operand expression.
func literalOf(e oql.Expr) (types.Value, bool) {
	if l, ok := e.(*oql.Literal); ok {
		return l.Val, true
	}
	return nil, false
}

// GenPeople fills a store with n deterministic synthetic person rows
// (table name given), used by the experiment harness and benchmarks. Ids
// are unique per (seed, i); salaries spread over [0, 1000).
func GenPeople(s *RelStore, table string, n int, seed int64) error {
	if err := s.CreateTable(table, "id", "name", "salary"); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d_%d", seed, i)
		if err := s.Insert(table,
			types.Int(int64(i)),
			types.Str(name),
			types.Int(r.Int63n(1000)),
		); err != nil {
			return err
		}
	}
	return nil
}

// GenReadings fills a store with synthetic water-quality readings — the
// paper's motivating application (§1): geographically distributed stations
// measuring the same quantities.
func GenReadings(s *RelStore, table string, station string, n int, seed int64) error {
	if err := s.CreateTable(table, "station", "day", "ph", "oxygen"); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(seed))
	for day := 0; day < n; day++ {
		if err := s.Insert(table,
			types.Str(station),
			types.Int(int64(day)),
			types.Float(6.0+2*r.Float64()),
			types.Float(5.0+6*r.Float64()),
		); err != nil {
			return err
		}
	}
	return nil
}
