package source

import (
	"fmt"
	"strconv"
	"strings"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/types"
)

// ParseSQL parses the RelStore SQL dialect into a logical plan over the
// store's tables:
//
//	SELECT [DISTINCT] * | col, col ...
//	FROM table | (subquery) [JOIN table|(subquery) ON cond]...
//	[WHERE cond]
//
// cond supports =, <>, !=, <, <=, >, >=, IN (lit, ...), AND, OR, NOT,
// parentheses, numeric literals, 'string' literals, TRUE and FALSE.
func ParseSQL(src string) (algebra.Node, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	n, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if p.cur().kind != sqlEOF {
		return nil, p.errorf("unexpected %q after query", p.cur().text)
	}
	return n, nil
}

// ParseSQLCondition parses a standalone condition in the SQL dialect (the
// WHERE-clause grammar) into an expression over attribute names.
func ParseSQLCondition(src string) (oql.Expr, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != sqlEOF {
		return nil, p.errorf("unexpected %q after condition", p.cur().text)
	}
	return cond, nil
}

type sqlKind uint8

const (
	sqlEOF sqlKind = iota + 1
	sqlIdent
	sqlNumber
	sqlString
	sqlPunct
)

type sqlTok struct {
	kind sqlKind
	text string
	off  int
}

func sqlLex(src string) ([]sqlTok, error) {
	var toks []sqlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isSQLLetter(c):
			start := i
			for i < len(src) && (isSQLLetter(src[i]) || src[i] >= '0' && src[i] <= '9') {
				i++
			}
			toks = append(toks, sqlTok{kind: sqlIdent, text: src[start:i], off: start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			toks = append(toks, sqlTok{kind: sqlNumber, text: src[start:i], off: start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("sql: offset %d: unterminated string", start)
				}
				if src[i] == '\'' {
					// '' escapes a quote, SQL style.
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(src[i])
				i++
			}
			toks = append(toks, sqlTok{kind: sqlString, text: b.String(), off: start})
		default:
			for _, two := range []string{"<>", "!=", "<=", ">="} {
				if strings.HasPrefix(src[i:], two) {
					toks = append(toks, sqlTok{kind: sqlPunct, text: two, off: i})
					i += 2
					goto next
				}
			}
			if strings.IndexByte("(),*=<>;", c) >= 0 {
				toks = append(toks, sqlTok{kind: sqlPunct, text: string(c), off: i})
				i++
				goto next
			}
			return nil, fmt.Errorf("sql: offset %d: unexpected character %q", i, c)
		next:
		}
	}
	toks = append(toks, sqlTok{kind: sqlEOF, off: len(src)})
	return toks, nil
}

func isSQLLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

type sqlParser struct {
	toks []sqlTok
	i    int
}

func (p *sqlParser) cur() sqlTok { return p.toks[p.i] }

func (p *sqlParser) advance() sqlTok {
	t := p.toks[p.i]
	if t.kind != sqlEOF {
		p.i++
	}
	return t
}

func (p *sqlParser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: offset %d: %s", p.cur().off, fmt.Sprintf(format, args...))
}

func (p *sqlParser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == sqlIdent && strings.EqualFold(t.text, kw)
}

func (p *sqlParser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", strings.ToUpper(kw), p.cur().text)
	}
	return nil
}

func (p *sqlParser) accept(text string) bool {
	t := p.cur()
	if t.kind == sqlPunct && t.text == text {
		p.advance()
		return true
	}
	return false
}

func (p *sqlParser) expect(text string) error {
	if !p.accept(text) {
		return p.errorf("expected %q, found %q", text, p.cur().text)
	}
	return nil
}

func (p *sqlParser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != sqlIdent {
		return "", p.errorf("expected identifier, found %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *sqlParser) parseSelect() (algebra.Node, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	distinct := p.acceptKeyword("distinct")

	star := false
	var cols []string
	if p.accept("*") {
		star = true
	} else {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	plan, err := p.parseFromItem()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("join") {
		right, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		plan = &algebra.Join{L: plan, R: right, Pred: cond}
	}
	if p.acceptKeyword("where") {
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		plan = &algebra.Select{Pred: cond, Input: plan}
	}
	if !star {
		pcols := make([]algebra.Col, len(cols))
		for i, c := range cols {
			pcols[i] = algebra.Col{Name: c, Expr: &oql.Ident{Name: c}}
		}
		plan = &algebra.Project{Cols: pcols, Input: plan}
	}
	if distinct {
		plan = &algebra.Distinct{Input: plan}
	}
	return plan, nil
}

func (p *sqlParser) parseFromItem() (algebra.Node, error) {
	if p.accept("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return sub, nil
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &algebra.Get{Ref: algebra.ExtentRef{Extent: table, Source: table}}, nil
}

// parseCond parses OR-expressions (lowest precedence).
func (p *sqlParser) parseCond() (oql.Expr, error) {
	left, err := p.parseCondAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseCondAnd()
		if err != nil {
			return nil, err
		}
		left = &oql.Binary{Op: oql.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parseCondAnd() (oql.Expr, error) {
	left, err := p.parseCondNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseCondNot()
		if err != nil {
			return nil, err
		}
		left = &oql.Binary{Op: oql.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parseCondNot() (oql.Expr, error) {
	if p.acceptKeyword("not") {
		x, err := p.parseCondNot()
		if err != nil {
			return nil, err
		}
		return &oql.Unary{Op: oql.OpNot, X: x}, nil
	}
	return p.parseComparison()
}

var sqlCmpOps = map[string]oql.BinaryOp{
	"=": oql.OpEq, "<>": oql.OpNe, "!=": oql.OpNe,
	"<": oql.OpLt, "<=": oql.OpLe, ">": oql.OpGt, ">=": oql.OpGe,
}

func (p *sqlParser) parseComparison() (oql.Expr, error) {
	if p.accept("(") {
		inner, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// IN (lit, lit, ...)
	if p.acceptKeyword("in") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var elems []types.Value
		for {
			lit, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			l, ok := lit.(*oql.Literal)
			if !ok {
				return nil, p.errorf("IN list accepts literals only")
			}
			elems = append(elems, l.Val)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &oql.Binary{Op: oql.OpIn, L: left, R: &oql.Literal{Val: types.NewBag(elems...)}}, nil
	}
	t := p.cur()
	if t.kind != sqlPunct {
		return nil, p.errorf("expected comparison operator, found %q", t.text)
	}
	op, ok := sqlCmpOps[t.text]
	if !ok {
		return nil, p.errorf("unknown operator %q", t.text)
	}
	p.advance()
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &oql.Binary{Op: op, L: left, R: right}, nil
}

func (p *sqlParser) parseOperand() (oql.Expr, error) {
	t := p.cur()
	switch t.kind {
	case sqlIdent:
		switch {
		case strings.EqualFold(t.text, "true"):
			p.advance()
			return &oql.Literal{Val: types.Bool(true)}, nil
		case strings.EqualFold(t.text, "false"):
			p.advance()
			return &oql.Literal{Val: types.Bool(false)}, nil
		default:
			p.advance()
			return &oql.Ident{Name: t.text}, nil
		}
	case sqlNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &oql.Literal{Val: types.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &oql.Literal{Val: types.Int(n)}, nil
	case sqlString:
		p.advance()
		return &oql.Literal{Val: types.Str(t.text)}, nil
	default:
		return nil, p.errorf("expected operand, found %q", t.text)
	}
}
