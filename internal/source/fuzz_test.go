package source

import (
	"testing"

	"disco/internal/types"
)

// FuzzSQL checks that the SQL dialect parser and executor never panic on
// arbitrary query text.
func FuzzSQL(f *testing.F) {
	seeds := []string{
		`SELECT * FROM person0`,
		`SELECT name, salary FROM person0 WHERE salary > 10 AND name <> 'x'`,
		`SELECT DISTINCT a FROM t WHERE a IN (1, 2, 'three')`,
		`SELECT e FROM a JOIN b ON x = y WHERE NOT (p = q)`,
		`SELECT * FROM (SELECT * FROM t)`,
		`SELECT`,
		`'unterminated`,
		`SELECT * FROM t WHERE ''''''`,
		`select 1 from from`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	store := NewRelStore()
	if err := store.CreateTable("person0", "id", "name", "salary"); err != nil {
		f.Fatal(err)
	}
	if err := store.Insert("person0", types.Int(1), types.Str("Mary"), types.Int(200)); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, q string) {
		_, _ = store.Query(q) // must not panic
	})
}

// FuzzExecScript checks the DDL/DML script loader.
func FuzzExecScript(f *testing.F) {
	f.Add("CREATE TABLE t (a, b);\nINSERT INTO t VALUES (1, 'x');")
	f.Add("CREATE TABLE t (a INT);")
	f.Add("INSERT INTO nowhere VALUES (1);")
	f.Add("CREATE TABLE t (a); INSERT INTO t VALUES (1), (2), (3);")
	f.Fuzz(func(t *testing.T, script string) {
		_ = ExecScript(NewRelStore(), script) // must not panic
	})
}

// FuzzDocQuery checks the keyword language.
func FuzzDocQuery(f *testing.F) {
	f.Add(`SCAN sites`)
	f.Add(`MATCH sites quality 'good'`)
	f.Add(`GREP sites note 'reference site'`)
	f.Add(`MATCH 'odd quoting`)
	d := NewDocStore()
	d.AddDocument("sites", types.NewStruct(types.Field{Name: "quality", Value: types.Str("good")}))
	f.Fuzz(func(t *testing.T, q string) {
		_, _ = d.Query(q) // must not panic
	})
}
