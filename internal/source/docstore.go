package source

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"disco/internal/types"
)

// DocStore is a keyword-search document server in the spirit of the WAIS
// servers the paper cites: it can scan a collection and filter on a single
// field, and nothing else. Its query language:
//
//	SCAN collection
//	MATCH collection field 'value'        -- exact equality
//	GREP collection field 'substring'     -- substring containment
//
// Wrappers over a DocStore therefore export the paper's weak grammar: get
// and a restricted select, with no composition.
type DocStore struct {
	mu       sync.RWMutex
	docs     map[string][]types.Value
	versions map[string]int64
}

var (
	_ Engine    = (*DocStore)(nil)
	_ Versioned = (*DocStore)(nil)
	_ Versioned = (*RelStore)(nil)
)

// NewDocStore returns an empty store.
func NewDocStore() *DocStore {
	return &DocStore{
		docs:     make(map[string][]types.Value),
		versions: make(map[string]int64),
	}
}

// AddDocument appends a document (a struct) to a collection, creating the
// collection on first use.
func (s *DocStore) AddDocument(collection string, doc *types.Struct) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[collection] = append(s.docs[collection], doc)
	s.versions[collection]++
}

// Versions implements Versioned.
func (s *DocStore) Versions() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.versions))
	for k, v := range s.versions {
		out[k] = v
	}
	return out
}

// Collections implements Engine.
func (s *DocStore) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.docs))
	for n := range s.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Query implements Engine.
func (s *DocStore) Query(q string) (*types.Bag, error) {
	fields := splitDocQuery(q)
	if len(fields) == 0 {
		return nil, fmt.Errorf("docstore: empty query")
	}
	op := strings.ToUpper(fields[0])
	switch op {
	case "SCAN":
		if len(fields) != 2 {
			return nil, fmt.Errorf("docstore: SCAN takes a collection name")
		}
		return s.scan(fields[1])
	case "MATCH", "GREP":
		if len(fields) != 4 {
			return nil, fmt.Errorf("docstore: %s takes collection, field and value", op)
		}
		coll, field, value := fields[1], fields[2], fields[3]
		docs, err := s.scan(coll)
		if err != nil {
			return nil, err
		}
		return types.BagFilter(docs, func(d types.Value) (bool, error) {
			st, ok := d.(*types.Struct)
			if !ok {
				return false, nil
			}
			v, ok := st.Get(field)
			if !ok {
				return false, nil
			}
			if op == "MATCH" {
				return v.Equal(types.Str(value)) || matchScalar(v, value), nil
			}
			str, ok := v.(types.Str)
			return ok && strings.Contains(string(str), value), nil
		})
	default:
		return nil, fmt.Errorf("docstore: unknown operation %q", fields[0])
	}
}

func (s *DocStore) scan(collection string) (*types.Bag, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs, ok := s.docs[collection]
	if !ok {
		return nil, fmt.Errorf("docstore: no collection %q", collection)
	}
	return types.NewBag(docs...), nil
}

// matchScalar compares a non-string document field against the query text
// by printing it (MATCH sites id '3' matches Int(3)).
func matchScalar(v types.Value, text string) bool {
	if v.Kind() == types.KindString {
		return false
	}
	return v.String() == text
}

// splitDocQuery splits on whitespace, honoring single-quoted values.
func splitDocQuery(q string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(q); i++ {
		c := q[i]
		switch {
		case c == '\'':
			if inQuote {
				out = append(out, cur.String()) // may be empty
				cur.Reset()
				inQuote = false
			} else {
				flush()
				inQuote = true
			}
		case !inQuote && (c == ' ' || c == '\t' || c == '\n' || c == '\r'):
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}
