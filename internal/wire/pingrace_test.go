package wire

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// firstConn returns the pool's only connection.
func firstConn(t *testing.T, c *Client) *clientConn {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.conns) != 1 {
		t.Fatalf("pool holds %d conns, want 1", len(c.conns))
	}
	return c.conns[0]
}

// TestBorrowSkipsConnUnderHealthPing: while a health ping probes a
// connection, conn() must not hand that connection to a borrower — its
// verdict is pending and a failing ping kills it. The borrower gets a
// fresh dial instead.
func TestBorrowSkipsConnUnderHealthPing(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	cc := firstConn(t, c)

	// Simulate a ping in flight on the idle connection.
	if !cc.pinging.CompareAndSwap(false, true) {
		t.Fatal("connection already pinging")
	}
	got, err := c.conn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer got.leased.Add(-1)
	if got == cc {
		t.Fatal("conn() handed out a connection under an in-flight health ping")
	}
	cc.pinging.Store(false)
}

// TestSaturatedPoolRidesConnUnderPing: when the pool is full and every
// usable connection is under a health ping, a borrower rides one anyway
// (its lease spares it from a failing ping's kill) instead of stalling
// for the ping verdict.
func TestSaturatedPoolRidesConnUnderPing(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr(), WithPoolSize(1))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	cc := firstConn(t, c)
	if !cc.pinging.CompareAndSwap(false, true) {
		t.Fatal("connection already pinging")
	}
	defer cc.pinging.Store(false)
	bctx, bcancel := context.WithTimeout(context.Background(), time.Second)
	defer bcancel()
	got, err := c.conn(bctx)
	if err != nil {
		t.Fatalf("borrower should ride the probed connection, not stall: %v", err)
	}
	defer got.leased.Add(-1)
	if got != cc {
		t.Fatalf("pool of 1: borrower must get the (probed) pooled connection")
	}
}

// TestFailingPingSparesLeasedConn closes the kill window the satellite
// names: a connection handed to a borrower (leased) before its request
// registers in inflight must survive a concurrently failing health ping —
// the request's own deadline judges the connection, not the ping's.
func TestFailingPingSparesLeasedConn(t *testing.T) {
	s := newTestServer(t)
	p := newBlackholeProxy(t, s.Addr())
	c := NewClient(p.Addr(), WithHealthCheckInterval(40*time.Millisecond), WithIdleTimeout(time.Minute))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	cc := firstConn(t, c)

	// The borrower holds the connection (leased, request not yet written)
	// when the peer goes silent and a health ping fails.
	borrowed, err := c.conn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if borrowed != cc {
		t.Fatal("expected the pooled connection")
	}
	p.drop.Store(true)
	if !cc.pinging.CompareAndSwap(false, true) {
		t.Fatal("connection already pinging")
	}
	c.pingConn(cc) // runs the failing ping synchronously
	if conns, _ := c.PoolStats(); conns != 1 {
		t.Fatalf("failing ping killed a leased connection: pool = %d conns", conns)
	}

	// Once the lease is back and the peer is still dead, the next ping may
	// (and must) evict it.
	borrowed.leased.Add(-1)
	if !cc.pinging.CompareAndSwap(false, true) {
		t.Fatal("connection already pinging")
	}
	c.pingConn(cc)
	if conns, _ := c.PoolStats(); conns != 0 {
		t.Fatalf("unleased dead connection survived the health ping: pool = %d conns", conns)
	}
}

// TestPingBorrowRaceUnderLoad drives borrowers against a client whose
// health interval is tiny, so pings and borrows interleave constantly;
// run under -race, and every request must succeed.
func TestPingBorrowRaceUnderLoad(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr(), WithHealthCheckInterval(time.Millisecond), WithPoolSize(2))
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, err := c.Query(ctx, LangSQL, fmt.Sprintf("q%d_%d", g, i))
				cancel()
				if err != nil {
					errs <- err
					return
				}
				// Idle gaps let the health checker engage between borrows.
				time.Sleep(2 * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
