// Package wire implements the network protocol between DISCO components
// (Figure 1): newline-delimited JSON frames over TCP. Data-source servers
// and mediator servers both speak it.
//
// The package also provides the fault injection the paper's unavailability
// semantics is about: a server can be made unavailable, in which case it
// accepts connections but never answers — exactly the "data source does not
// respond" behaviour that partial evaluation (§4) classifies by timeout —
// and can be given artificial latency to model wide-area links.
package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Query languages understood by data-source servers.
const (
	LangSQL = "sql" // RelStore SQL dialect
	LangDoc = "doc" // DocStore keyword language
	LangOQL = "oql" // full OQL (mediator servers)
)

// Request is one client frame.
type Request struct {
	ID int64  `json:"id"`
	Op string `json:"op"` // "query", "capability", "collections", "ping"
	// Lang and Text carry the query for Op == "query".
	Lang string `json:"lang,omitempty"`
	Text string `json:"text,omitempty"`
}

// Response is one server frame. Payload fields are op-specific.
type Response struct {
	ID  int64  `json:"id"`
	Err string `json:"err,omitempty"`
	// Value is the tagged encoding of the query result (op "query").
	Value json.RawMessage `json:"value,omitempty"`
	// Residual carries a partial answer-as-query when the server is a
	// mediator that could not reach all of its own sources (answers are
	// queries, so partial answers compose across mediator levels).
	Residual string `json:"residual,omitempty"`
	// Unavailable lists the server's unreachable sources for Residual.
	Unavailable []string `json:"unavailable,omitempty"`
	// Grammar is the capability grammar text (op "capability").
	Grammar string `json:"grammar,omitempty"`
	// Collections lists collection names (op "collections").
	Collections []string `json:"collections,omitempty"`
	// Versions maps collection names to their current data versions
	// (op "versions"); nil when the source does not track versions.
	Versions map[string]int64 `json:"versions,omitempty"`
}

// Handler is the server-side service implementation.
type Handler interface {
	// HandleQuery executes a query in the given language.
	HandleQuery(ctx context.Context, lang, text string) (json.RawMessage, error)
	// Capability returns the wrapper grammar text for this source.
	Capability() string
	// Collections lists the served collection names.
	Collections() []string
}

// VersionedHandler is implemented by handlers whose source tracks data
// versions per collection (the §4 staleness extension).
type VersionedHandler interface {
	Versions() map[string]int64
}

// PartialHandler is implemented by handlers (mediator servers) that can
// answer with a residual query when their own sources are unavailable. The
// server prefers it over HandleQuery when present.
type PartialHandler interface {
	// HandleQueryPartial returns either a complete value or a residual
	// answer-as-query plus the names of the unreachable sources.
	HandleQueryPartial(ctx context.Context, lang, text string) (value json.RawMessage, residual string, unavailable []string, err error)
}

// PartialUpstreamError reports that a queried mediator could only answer
// partially: from the caller's point of view the source is (partly)
// unavailable, and its own partial-evaluation machinery takes over.
type PartialUpstreamError struct {
	Addr        string
	Residual    string
	Unavailable []string
}

// Error implements the error interface.
func (e *PartialUpstreamError) Error() string {
	return fmt.Sprintf("wire: %s answered partially (unavailable: %v)", e.Addr, e.Unavailable)
}

// Stats counts server traffic; the benchmark harness reads it to measure
// data movement under different pushdown regimes.
type Stats struct {
	Queries  atomic.Int64
	BytesIn  atomic.Int64
	BytesOut atomic.Int64
}

// Server serves the wire protocol for a Handler.
type Server struct {
	handler Handler

	lis  net.Listener
	wg   sync.WaitGroup
	done chan struct{}

	unavailable atomic.Bool
	latencyNs   atomic.Int64

	stats Stats
}

// NewServer starts a server on addr ("127.0.0.1:0" picks a free port).
func NewServer(addr string, h Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{handler: h, lis: lis, done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Stats exposes the traffic counters.
func (s *Server) Stats() *Stats { return &s.stats }

// SetAvailable controls fault injection: an unavailable server accepts
// connections and reads requests but never replies.
func (s *Server) SetAvailable(up bool) { s.unavailable.Store(!up) }

// Available reports whether the server answers queries.
func (s *Server) Available() bool { return !s.unavailable.Load() }

// SetLatency injects a fixed delay before each reply, modeling link and
// processing latency.
func (s *Server) SetLatency(d time.Duration) { s.latencyNs.Store(int64(d)) }

// Close stops the server and waits for connection goroutines to exit.
func (s *Server) Close() error {
	select {
	case <-s.done:
		return nil // already closed
	default:
	}
	close(s.done)
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	// Close the connection when the server shuts down so blocked clients
	// unblock on EOF rather than leaking.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-s.done:
			conn.Close()
		case <-stop:
		}
	}()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		line := scanner.Bytes()
		s.stats.BytesIn.Add(int64(len(line)) + 1)
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			// Malformed frame: answer once, then drop the connection.
			_ = enc.Encode(Response{Err: "malformed request: " + err.Error()})
			return
		}
		if s.unavailable.Load() {
			// The source "does not respond": swallow the request. The
			// client's deadline, not an error, ends the exchange.
			continue
		}
		if d := time.Duration(s.latencyNs.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-s.done:
				return
			}
		}
		resp := s.dispatch(&req)
		buf, err := json.Marshal(resp)
		if err != nil {
			buf, _ = json.Marshal(Response{ID: req.ID, Err: "marshal response: " + err.Error()})
		}
		buf = append(buf, '\n')
		n, err := conn.Write(buf)
		s.stats.BytesOut.Add(int64(n))
		if err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *Request) Response {
	resp := Response{ID: req.ID}
	switch req.Op {
	case "ping":
		// Empty success.
	case "query":
		s.stats.Queries.Add(1)
		if ph, ok := s.handler.(PartialHandler); ok {
			value, residual, unavailable, err := ph.HandleQueryPartial(context.Background(), req.Lang, req.Text)
			switch {
			case err != nil:
				resp.Err = err.Error()
			case residual != "":
				resp.Residual = residual
				resp.Unavailable = unavailable
			default:
				resp.Value = value
			}
			break
		}
		value, err := s.handler.HandleQuery(context.Background(), req.Lang, req.Text)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Value = value
		}
	case "capability":
		resp.Grammar = s.handler.Capability()
	case "collections":
		resp.Collections = s.handler.Collections()
	case "versions":
		if vh, ok := s.handler.(VersionedHandler); ok {
			resp.Versions = vh.Versions()
		}
	default:
		resp.Err = fmt.Sprintf("unknown op %q", req.Op)
	}
	return resp
}

// Client issues wire requests. Each call dials a fresh connection, which
// keeps fault handling simple (a hung server only ever blocks the call that
// hit it) at the cost of a dial per request.
type Client struct {
	addr   string
	nextID atomic.Int64
}

// NewClient returns a client for the given server address.
func NewClient(addr string) *Client { return &Client{addr: addr} }

// Addr returns the target address.
func (c *Client) Addr() string { return c.addr }

// Do sends one request and waits for the matching response, honoring the
// context deadline both for dialing and for the exchange. A deadline
// exceeded error is how callers observe unavailable sources.
func (c *Client) Do(ctx context.Context, req Request) (*Response, error) {
	req.ID = c.nextID.Add(1)

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("wire: set deadline: %w", err)
		}
	}
	// Cancel the exchange if the context dies while we block on the read.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	buf, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	buf = append(buf, '\n')
	if _, err := conn.Write(buf); err != nil {
		return nil, wrapCtx(ctx, fmt.Errorf("wire: write %s: %w", c.addr, err))
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !scanner.Scan() {
		err := scanner.Err()
		if err == nil {
			err = fmt.Errorf("connection closed")
		}
		return nil, wrapCtx(ctx, fmt.Errorf("wire: read %s: %w", c.addr, err))
	}
	var resp Response
	if err := json.Unmarshal(scanner.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("wire: decode response: %w", err)
	}
	return &resp, nil
}

// wrapCtx prefers the context's error (deadline, cancel) over the raw
// network error it caused, so callers can match context.DeadlineExceeded.
// The connection deadline is set from the context's, so a net timeout maps
// to DeadlineExceeded even when it fires a moment before ctx.Err() does.
func wrapCtx(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("%w (%v)", ctx.Err(), err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w (%v)", context.DeadlineExceeded, err)
	}
	return err
}

// Ping checks liveness within the context deadline.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.Do(ctx, Request{Op: "ping"})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("wire: ping: %s", resp.Err)
	}
	return nil
}

// Query executes a query in the named language and returns the raw tagged
// value payload. A partially-answering mediator surfaces as a
// *PartialUpstreamError carrying its residual query.
func (c *Client) Query(ctx context.Context, lang, text string) (json.RawMessage, error) {
	resp, err := c.Do(ctx, Request{Op: "query", Lang: lang, Text: text})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Addr: c.addr, Msg: resp.Err}
	}
	if resp.Residual != "" {
		return nil, &PartialUpstreamError{Addr: c.addr, Residual: resp.Residual, Unavailable: resp.Unavailable}
	}
	return resp.Value, nil
}

// Capability fetches the server's wrapper grammar text.
func (c *Client) Capability(ctx context.Context) (string, error) {
	resp, err := c.Do(ctx, Request{Op: "capability"})
	if err != nil {
		return "", err
	}
	if resp.Err != "" {
		return "", &RemoteError{Addr: c.addr, Msg: resp.Err}
	}
	return resp.Grammar, nil
}

// Versions fetches the server's per-collection data versions; nil when the
// source does not track them.
func (c *Client) Versions(ctx context.Context) (map[string]int64, error) {
	resp, err := c.Do(ctx, Request{Op: "versions"})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Addr: c.addr, Msg: resp.Err}
	}
	return resp.Versions, nil
}

// Collections fetches the server's collection names.
func (c *Client) Collections(ctx context.Context) ([]string, error) {
	resp, err := c.Do(ctx, Request{Op: "collections"})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Addr: c.addr, Msg: resp.Err}
	}
	return resp.Collections, nil
}

// RemoteError is an error reported by the remote server (as opposed to a
// transport failure).
type RemoteError struct {
	Addr string
	Msg  string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return fmt.Sprintf("wire: %s: %s", e.Addr, e.Msg) }
