// Package wire implements the network protocol between DISCO components
// (Figure 1): newline-delimited JSON frames over TCP. Data-source servers
// and mediator servers both speak it.
//
// Connections are persistent and multiplexed: a client keeps a bounded
// pool of long-lived connections per server, many requests share one
// connection in flight at a time, and the server executes each request on
// its own goroutine (writes serialized per connection), matching responses
// to requests by frame ID. One slow request therefore never head-of-line-
// blocks the requests pipelined behind it.
//
// The package also provides the fault injection the paper's unavailability
// semantics is about: a server can be made unavailable, in which case it
// accepts connections but never answers — exactly the "data source does not
// respond" behaviour that partial evaluation (§4) classifies by timeout —
// and can be given artificial latency to model wide-area links. Both apply
// per request, not per connection: requests already in flight when the
// server flips keep the semantics they started with.
//
// Cancellation and deadline propagation: a Request may carry the caller's
// remaining time budget (DeadlineMillis), and the protocol has a
// fire-and-forget "cancel" op whose ID names an earlier in-flight request.
// The server derives each handler's context from the propagated budget,
// rejects requests whose budget is already spent without invoking the
// handler (Stats.ExpiredOnArrival), and keeps a per-connection registry of
// in-flight request contexts so a cancel frame — or the connection dying —
// cancels the matching handlers (Stats.Cancelled). Clients send a cancel
// frame whenever a caller abandons an in-flight call (context done, pool
// teardown), so abandoned work is reclaimed at the source instead of
// running to completion for nobody.
package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Query languages understood by data-source servers.
const (
	LangSQL = "sql" // RelStore SQL dialect
	LangDoc = "doc" // DocStore keyword language
	LangOQL = "oql" // full OQL (mediator servers)
)

// DefaultMaxInflight bounds how many requests one connection may have
// executing concurrently on the server; requests beyond it are shed with
// an explicit overload frame (CodeOverloaded) rather than silently
// queued — the caller learns immediately and can back off, retry
// elsewhere, or surface the overload.
const DefaultMaxInflight = 64

// CodeOverloaded marks a response frame that reports a shed: the server
// refused to execute the request because an in-flight cap was reached.
// It is an explicit overload signal, distinct from both transport
// failures (the server is up) and query errors (the query was never
// looked at).
const CodeOverloaded = "overloaded"

// CodeExpired marks a response frame for a request whose propagated
// deadline had already passed when the server would have executed it: the
// handler was never invoked (deadline-aware server-side admission).
const CodeExpired = "expired"

// OpCancel is the fire-and-forget cancellation op: its ID names an earlier
// request on the same connection whose handler context should be cancelled.
// A cancel frame never receives a response — by the time it lands the
// caller has already walked away.
const OpCancel = "cancel"

// Request is one client frame.
type Request struct {
	ID int64  `json:"id"`
	Op string `json:"op"` // "query", "capability", "collections", "ping", "cancel"
	// Lang and Text carry the query for Op == "query".
	Lang string `json:"lang,omitempty"`
	Text string `json:"text,omitempty"`
	// DeadlineMillis is the caller's remaining time budget in milliseconds
	// at send time (rounded up, so any positive remaining budget encodes as
	// at least 1). Zero means no deadline; negative means the budget was
	// already spent, and the server rejects the request without invoking
	// the handler. A relative budget survives clock skew between the two
	// ends, which an absolute deadline timestamp would not.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Load carries the migration bulk-load payload for Op == "load".
	Load *LoadRequest `json:"load,omitempty"`
}

// Response is one server frame. Payload fields are op-specific.
type Response struct {
	ID  int64  `json:"id"`
	Err string `json:"err,omitempty"`
	// Code carries a machine-readable error class; CodeOverloaded marks
	// requests the server shed at an in-flight cap.
	Code string `json:"code,omitempty"`
	// Value is the tagged encoding of the query result (op "query").
	Value json.RawMessage `json:"value,omitempty"`
	// Residual carries a partial answer-as-query when the server is a
	// mediator that could not reach all of its own sources (answers are
	// queries, so partial answers compose across mediator levels).
	Residual string `json:"residual,omitempty"`
	// Unavailable lists the server's unreachable sources for Residual.
	Unavailable []string `json:"unavailable,omitempty"`
	// Grammar is the capability grammar text (op "capability").
	Grammar string `json:"grammar,omitempty"`
	// Collections lists collection names (op "collections").
	Collections []string `json:"collections,omitempty"`
	// Versions maps collection names to their current data versions
	// (op "versions"); nil when the source does not track versions.
	Versions map[string]int64 `json:"versions,omitempty"`
}

// Handler is the server-side service implementation.
type Handler interface {
	// HandleQuery executes a query in the given language.
	HandleQuery(ctx context.Context, lang, text string) (json.RawMessage, error)
	// Capability returns the wrapper grammar text for this source.
	Capability() string
	// Collections lists the served collection names.
	Collections() []string
}

// VersionedHandler is implemented by handlers whose source tracks data
// versions per collection (the §4 staleness extension).
type VersionedHandler interface {
	Versions() map[string]int64
}

// PartialHandler is implemented by handlers (mediator servers) that can
// answer with a residual query when their own sources are unavailable. The
// server prefers it over HandleQuery when present.
type PartialHandler interface {
	// HandleQueryPartial returns either a complete value or a residual
	// answer-as-query plus the names of the unreachable sources.
	HandleQueryPartial(ctx context.Context, lang, text string) (value json.RawMessage, residual string, unavailable []string, err error)
}

// PartialUpstreamError reports that a queried mediator could only answer
// partially: from the caller's point of view the source is (partly)
// unavailable, and its own partial-evaluation machinery takes over.
type PartialUpstreamError struct {
	Addr        string
	Residual    string
	Unavailable []string
}

// Error implements the error interface.
func (e *PartialUpstreamError) Error() string {
	return fmt.Sprintf("wire: %s answered partially (unavailable: %v)", e.Addr, e.Unavailable)
}

// Stats counts server traffic; the benchmark harness reads it to measure
// data movement under different pushdown regimes.
type Stats struct {
	Queries  atomic.Int64
	BytesIn  atomic.Int64
	BytesOut atomic.Int64
	// Malformed counts frames that failed to parse as requests.
	Malformed atomic.Int64
	// Shed counts requests refused with an overload frame because a
	// per-connection or per-server in-flight cap was reached.
	Shed atomic.Int64
	// Cancelled counts in-flight handler contexts the server cancelled
	// before their request completed — by an explicit cancel frame, or by
	// the connection dying with requests still executing.
	Cancelled atomic.Int64
	// ExpiredOnArrival counts requests rejected without invoking the
	// handler because their propagated deadline had already passed (an
	// expired budget on the frame, or a budget that lapsed before the
	// handler could run).
	ExpiredOnArrival atomic.Int64
}

// Server serves the wire protocol for a Handler. Each request on a
// connection is dispatched on its own goroutine (bounded per connection),
// so pipelined requests — e.g. a scatter-gather whose shards share one
// mediator connection — execute concurrently and answer in completion
// order, not arrival order.
type Server struct {
	handler Handler

	lis  net.Listener
	wg   sync.WaitGroup
	done chan struct{}

	// baseCtx parents every handler context; baseCancel fires on Close so
	// in-flight handlers stop instead of outliving the server.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	unavailable atomic.Bool
	latencyNs   atomic.Int64

	// maxConnInflight caps concurrent requests per connection; srvSem,
	// when non-nil, caps them across the whole server. Requests beyond
	// either cap are shed with an overload frame, not queued.
	maxConnInflight int
	srvSem          chan struct{}

	inflight atomic.Int64
	stats    Stats
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxInflight caps how many requests one connection may have executing
// concurrently; beyond it the server sheds with an overload frame instead
// of silently stalling the connection's read loop (the pre-overload-frame
// behaviour). Non-positive keeps DefaultMaxInflight.
func WithMaxInflight(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxConnInflight = n
		}
	}
}

// WithMaxServerInflight caps concurrent request execution across every
// connection of the server — the admission bound that keeps a popular
// source from running an unbounded number of query goroutines. Requests
// past the cap are shed with an overload frame. Zero (the default) means
// no server-wide cap.
func WithMaxServerInflight(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.srvSem = make(chan struct{}, n)
		}
	}
}

// NewServer starts a server on addr ("127.0.0.1:0" picks a free port).
func NewServer(addr string, h Handler, opts ...ServerOption) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{handler: h, lis: lis, done: make(chan struct{}), maxConnInflight: DefaultMaxInflight}
	//lint:allow ctxflow server lifetime root: there is no caller context to inherit; per-request contexts derive from it with the propagated budget
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Stats exposes the traffic counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Inflight reports how many requests are executing right now, across every
// connection. It is the gauge the cancellation tests watch: after a caller
// abandons its requests, the count must drain back down instead of
// accumulating abandoned work.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// SetAvailable controls fault injection: an unavailable server accepts
// connections and reads requests but never replies. The check applies per
// request at dispatch time.
func (s *Server) SetAvailable(up bool) { s.unavailable.Store(!up) }

// Available reports whether the server answers queries.
func (s *Server) Available() bool { return !s.unavailable.Load() }

// SetLatency injects a fixed delay before each reply, modeling link and
// processing latency. The delay applies per request: pipelined requests
// wait it out concurrently, as they would on a real wide-area link.
func (s *Server) SetLatency(d time.Duration) { s.latencyNs.Store(int64(d)) }

// Close stops the server and waits for connection goroutines to exit.
func (s *Server) Close() error {
	select {
	case <-s.done:
		return nil // already closed
	default:
	}
	close(s.done)
	// Cancel in-flight handler contexts so a handler mid-query observes the
	// shutdown at its next cancellation check instead of running on against
	// a closed server.
	s.baseCancel()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// inflightRegistry tracks the cancel funcs of one connection's in-flight
// request contexts, keyed by request ID. A cancel frame (or the connection
// dying) cancels the matching entries; a handler completing removes its
// own entry, and the removal doubles as the "was I cancelled?" check that
// suppresses the response frame for a cancelled request.
type inflightRegistry struct {
	mu sync.Mutex
	m  map[int64]context.CancelFunc
}

func newInflightRegistry() *inflightRegistry {
	return &inflightRegistry{m: make(map[int64]context.CancelFunc)}
}

// add registers a request's cancel func. A duplicate ID (a misbehaving
// client reusing IDs) cancels the stale entry rather than leaking it.
func (r *inflightRegistry) add(id int64, cancel context.CancelFunc) {
	r.mu.Lock()
	prev := r.m[id]
	r.m[id] = cancel
	r.mu.Unlock()
	if prev != nil {
		prev()
	}
}

// cancel fires and removes the entry for id, reporting whether one was
// still in flight.
func (r *inflightRegistry) cancel(id int64) bool {
	r.mu.Lock()
	c, ok := r.m[id]
	delete(r.m, id)
	r.mu.Unlock()
	if ok {
		c()
	}
	return ok
}

// complete removes the entry for id without firing it, reporting whether
// it was still present — false means the request was cancelled and its
// response must not be written.
func (r *inflightRegistry) complete(id int64) bool {
	r.mu.Lock()
	_, ok := r.m[id]
	delete(r.m, id)
	r.mu.Unlock()
	return ok
}

// cancelAll fires every remaining entry — the connection died with
// requests in flight — and returns how many it cancelled.
func (r *inflightRegistry) cancelAll() int {
	r.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(r.m))
	for id, c := range r.m {
		cancels = append(cancels, c)
		delete(r.m, id)
	}
	r.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return len(cancels)
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	// Close the connection when the server shuts down so blocked clients
	// unblock on EOF rather than leaking.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-s.done:
			conn.Close()
		case <-stop:
		}
	}()

	var (
		writeMu sync.Mutex     // serializes response frames
		reqs    sync.WaitGroup // in-flight request goroutines
	)
	reg := newInflightRegistry()
	defer reqs.Wait() // flush in-flight responses before closing the conn
	// Runs before reqs.Wait (LIFO): a dead connection cancels its in-flight
	// handlers — nobody is left to read their answers — so the Wait above
	// drains promptly instead of letting abandoned work run to completion.
	defer func() { s.stats.Cancelled.Add(int64(reg.cancelAll())) }()
	sem := make(chan struct{}, s.maxConnInflight)

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), maxFrameBytes)
	for scanner.Scan() {
		line := scanner.Bytes()
		s.stats.BytesIn.Add(int64(len(line)) + 1)
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			// Malformed frame: answer once — echoing the request ID when
			// the frame is well-formed enough to carry one, so the caller
			// can match the error — then drop the connection, since the
			// stream's framing can no longer be trusted.
			s.stats.Malformed.Add(1)
			var probe struct {
				ID int64 `json:"id"`
			}
			_ = json.Unmarshal(line, &probe)
			s.writeResponse(conn, &writeMu, Response{ID: probe.ID, Err: "malformed request: " + err.Error()})
			return
		}
		if req.Op == OpCancel {
			// Fire-and-forget: cancel the matching in-flight handler, no
			// response. A miss (the request already completed, or never
			// existed) is the expected race, not an error.
			if reg.cancel(req.ID) {
				s.stats.Cancelled.Add(1)
			}
			continue
		}
		if req.DeadlineMillis < 0 {
			// Deadline-aware admission: the caller's budget was spent before
			// the frame was even written. Rejecting here costs nothing; the
			// handler is never invoked and no in-flight slot is consumed.
			s.stats.ExpiredOnArrival.Add(1)
			s.writeResponse(conn, &writeMu, Response{ID: req.ID, Err: "deadline expired before execution", Code: CodeExpired})
			continue
		}
		// Admission: both caps shed with an explicit overload frame rather
		// than stalling the read loop. The caller finds out now — while it
		// can still act on it — instead of discovering a silent queue when
		// its deadline fires.
		select {
		case sem <- struct{}{}:
		default:
			s.shedRequest(conn, &writeMu, req.ID, fmt.Sprintf("connection at its in-flight cap (%d)", s.maxConnInflight))
			continue
		}
		if s.srvSem != nil {
			select {
			case s.srvSem <- struct{}{}:
			default:
				<-sem
				s.shedRequest(conn, &writeMu, req.ID, fmt.Sprintf("server at its in-flight cap (%d)", cap(s.srvSem)))
				continue
			}
		}
		// The handler context carries the propagated budget and registers in
		// the connection's in-flight registry so a later cancel frame (or the
		// connection dying) reaches it.
		var rctx context.Context
		var cancel context.CancelFunc
		if req.DeadlineMillis > 0 {
			rctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		} else {
			rctx, cancel = context.WithCancel(s.baseCtx)
		}
		reg.add(req.ID, cancel)
		s.inflight.Add(1)
		reqs.Add(1)
		go func(req Request, rctx context.Context, cancel context.CancelFunc) {
			defer reqs.Done()
			defer s.inflight.Add(-1)
			defer cancel()
			defer func() {
				<-sem
				if s.srvSem != nil {
					<-s.srvSem
				}
			}()
			s.handleRequest(conn, &writeMu, req, rctx, reg)
		}(req, rctx, cancel)
	}
}

// shedRequest answers one request with the overload frame and counts it.
// The connection stays healthy: shedding is per request, and the requests
// pipelined behind the shed one proceed normally.
func (s *Server) shedRequest(conn net.Conn, writeMu *sync.Mutex, id int64, reason string) {
	s.stats.Shed.Add(1)
	s.writeResponse(conn, writeMu, Response{ID: id, Err: "server overloaded: " + reason, Code: CodeOverloaded})
}

// handleRequest runs one request to completion: fault-injection checks,
// dispatch, reply. It runs on its own goroutine so a slow request does not
// stall the requests behind it on the same connection. The request's
// registry entry doubles as the cancellation check: a request cancelled
// mid-flight has lost its entry, and its response is suppressed — the
// caller already walked away, and writing a frame nobody matches only
// burns bandwidth.
func (s *Server) handleRequest(conn net.Conn, writeMu *sync.Mutex, req Request, rctx context.Context, reg *inflightRegistry) {
	if s.unavailable.Load() {
		// The source "does not respond": swallow the request. The
		// client's deadline, not an error, ends the exchange.
		reg.complete(req.ID)
		return
	}
	if d := time.Duration(s.latencyNs.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-rctx.Done():
			// Cancelled or expired while "on the wire": fall through to the
			// pre-execution check below instead of sleeping out the link.
		case <-s.done:
			reg.complete(req.ID)
			return
		}
	}
	if rctx.Err() != nil {
		// The budget lapsed between arrival and execution (scheduling under
		// load, injected link latency): reject without invoking the handler.
		// When the entry is gone a cancel frame got here first — already
		// counted, nothing to write.
		if reg.complete(req.ID) {
			s.stats.ExpiredOnArrival.Add(1)
			s.writeResponse(conn, writeMu, Response{ID: req.ID, Err: "deadline expired before execution", Code: CodeExpired})
		}
		return
	}
	resp := s.dispatch(rctx, &req)
	if reg.complete(req.ID) {
		s.writeResponse(conn, writeMu, resp)
	}
}

// writeResponse marshals and writes one response frame under the
// connection's write lock.
func (s *Server) writeResponse(conn net.Conn, writeMu *sync.Mutex, resp Response) {
	buf, err := json.Marshal(resp)
	if err != nil {
		buf, _ = json.Marshal(Response{ID: resp.ID, Err: "marshal response: " + err.Error()})
	}
	buf = append(buf, '\n')
	writeMu.Lock()
	n, werr := conn.Write(buf)
	writeMu.Unlock()
	s.stats.BytesOut.Add(int64(n))
	if werr != nil {
		// The write side is broken; closing wedges the read loop too.
		conn.Close()
	}
}

func (s *Server) dispatch(ctx context.Context, req *Request) Response {
	resp := Response{ID: req.ID}
	switch req.Op {
	case "ping":
		// Empty success.
	case "query":
		s.stats.Queries.Add(1)
		if ph, ok := s.handler.(PartialHandler); ok {
			value, residual, unavailable, err := ph.HandleQueryPartial(ctx, req.Lang, req.Text)
			switch {
			case err != nil:
				resp.Err = err.Error()
			case residual != "":
				resp.Residual = residual
				resp.Unavailable = unavailable
			default:
				resp.Value = value
			}
			break
		}
		value, err := s.handler.HandleQuery(ctx, req.Lang, req.Text)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Value = value
		}
	case "load":
		lh, ok := s.handler.(LoadHandler)
		if !ok {
			resp.Err = "server does not accept loads"
			break
		}
		if req.Load == nil {
			resp.Err = "load frame without payload"
			break
		}
		if err := lh.HandleLoad(ctx, req.Load); err != nil {
			resp.Err = err.Error()
		}
	case "capability":
		resp.Grammar = s.handler.Capability()
	case "collections":
		resp.Collections = s.handler.Collections()
	case "versions":
		if vh, ok := s.handler.(VersionedHandler); ok {
			resp.Versions = vh.Versions()
		}
	default:
		resp.Err = fmt.Sprintf("unknown op %q", req.Op)
	}
	return resp
}
