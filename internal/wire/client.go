package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Connection-pool defaults. A mediator talks to each source over a small
// set of long-lived connections; requests multiplex over them and are
// matched back to callers by request ID, so one slow request never
// head-of-line-blocks the others.
const (
	// DefaultPoolSize is the maximum number of live connections a Client
	// keeps per address.
	DefaultPoolSize = 4
	// DefaultIdleTimeout is how long an unused connection survives before
	// the pool reaps it.
	DefaultIdleTimeout = 60 * time.Second
	// DefaultHealthInterval is how long a pooled connection may sit idle
	// before the pool pings it. Health checks discover dead connections
	// (half-open TCP, unresponsive peers) while they idle, so a borrower
	// is not the one to find out.
	DefaultHealthInterval = 15 * time.Second
	// maxFrameBytes bounds one protocol frame (shared with the server's
	// read buffer).
	maxFrameBytes = 64 * 1024 * 1024
	// dialAttempts is how many times Do transparently redials after a
	// pooled connection breaks under a request.
	dialAttempts = 3
)

// ErrClientClosed is returned by calls on a Client after Close.
var ErrClientClosed = errors.New("wire: client closed")

// Client issues wire requests to one server address. By default it keeps a
// bounded pool of persistent connections and multiplexes concurrent
// requests over them: responses are matched to callers by request ID,
// broken connections are evicted and redialed transparently, and idle
// connections are reaped. WithDialPerRequest restores the one-dial-per-
// request behaviour (useful as a baseline and for callers that want the
// simplest possible fault domain).
//
// A Client is safe for concurrent use and is meant to be shared: the
// mediator keeps one per repository address.
type Client struct {
	addr           string
	nextID         atomic.Int64
	poolSize       int
	idleTimeout    time.Duration
	healthInterval time.Duration
	dialPerRequest bool
	// noCancelPropagation disables deadline stamping and cancel frames
	// (WithoutCancelPropagation) — the pre-cancellation protocol, kept as a
	// benchmark baseline.
	noCancelPropagation bool

	stats ClientStats

	mu        sync.Mutex
	cond      *sync.Cond // signaled when conns/dialing change
	conns     []*clientConn
	dialing   int // dials in flight, reserved against poolSize
	reapTimer *time.Timer
	closed    bool

	// connWG and pingWG track the pool's background goroutines — one
	// readLoop per pooled connection, plus in-flight health pings — so
	// Close drains them instead of letting them outlive the pool. Both
	// Add under c.mu with closed checked, so no Add can race Close's
	// Wait.
	connWG sync.WaitGroup
	pingWG sync.WaitGroup
}

// ClientStats counts request-abandonment traffic on the client side of the
// cancellation protocol. The counters are best-effort (a teardown racing a
// caller's own abandonment may count the same request once from each
// side); they answer "is abandoned work being reported to the server", not
// "exactly how much".
type ClientStats struct {
	// Abandoned counts in-flight requests the client walked away from: the
	// caller's context ended before the response arrived, or the pool tore
	// the connection down (Close, idle reap, transport failure) with
	// requests still pending on it.
	Abandoned atomic.Int64
	// CancelsSent counts best-effort cancel frames successfully written
	// for abandoned requests, telling the server to stop working on them.
	CancelsSent atomic.Int64
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithPoolSize bounds the number of live connections the client keeps.
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithIdleTimeout sets how long an idle pooled connection survives.
func WithIdleTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.idleTimeout = d
		}
	}
}

// WithDialPerRequest makes every call dial (and close) its own connection
// instead of using the pool.
func WithDialPerRequest() ClientOption {
	return func(c *Client) { c.dialPerRequest = true }
}

// WithoutCancelPropagation stops the client from stamping the caller's
// remaining deadline onto requests and from sending cancel frames when
// callers abandon in-flight calls — the pre-cancellation protocol, where
// an abandoned request runs to completion on the server. It exists as the
// baseline the cancellation benchmark measures against.
func WithoutCancelPropagation() ClientOption {
	return func(c *Client) { c.noCancelPropagation = true }
}

// WithHealthCheckInterval sets how long a connection may idle before the
// pool pings it (and how long that ping may take before the connection is
// declared dead and evicted). d <= 0 disables health checks — for peers
// whose legitimate response time exceeds any sensible ping deadline.
func WithHealthCheckInterval(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.healthInterval = d
		} else {
			c.healthInterval = 0
		}
	}
}

// NewClient returns a client for the given server address.
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{
		addr:           addr,
		poolSize:       DefaultPoolSize,
		idleTimeout:    DefaultIdleTimeout,
		healthInterval: DefaultHealthInterval,
	}
	for _, o := range opts {
		o(c)
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Addr returns the target address.
func (c *Client) Addr() string { return c.addr }

// Stats exposes the client's abandonment counters.
func (c *Client) Stats() *ClientStats { return &c.stats }

// stampDeadline copies the context's remaining budget onto the request as
// a relative millisecond count, rounded up so any positive remaining
// budget encodes as at least 1 (a sub-millisecond budget must not read as
// "no deadline" at the server). A spent budget stamps -1: the server
// rejects it as expired-on-arrival, which is also what the caller's own
// ctx.Err() check is about to conclude.
func (c *Client) stampDeadline(ctx context.Context, req *Request) {
	if c.noCancelPropagation {
		return
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	rem := time.Until(dl)
	if rem <= 0 {
		req.DeadlineMillis = -1
		return
	}
	req.DeadlineMillis = (int64(rem) + int64(time.Millisecond) - 1) / int64(time.Millisecond)
}

// Close tears down the pool. In-flight requests fail; subsequent calls
// return ErrClientClosed.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := c.conns
	c.conns = nil
	if c.reapTimer != nil {
		c.reapTimer.Stop()
		c.reapTimer = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, cc := range conns {
		cc.shutdown(ErrClientClosed)
	}
	// Drain the pool's background goroutines: shutdown closed every
	// conn's socket (unblocking its readLoop) and its done channel
	// (unblocking any in-flight health ping), so both Waits are prompt.
	c.connWG.Wait()
	c.pingWG.Wait()
}

// PoolStats reports the pool's live connection count and total in-flight
// requests (tests and monitoring).
func (c *Client) PoolStats() (conns, inflight int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		inflight += int(cc.inflight.Load())
	}
	return len(c.conns), inflight
}

// Do sends one request and waits for the response carrying the same ID,
// honoring the context deadline both for dialing and for the exchange. A
// deadline exceeded error is how callers observe unavailable sources. If a
// pooled connection breaks under the request, Do redials and retries
// transparently (requests are queries — reads — so a retry is safe).
func (c *Client) Do(ctx context.Context, req Request) (*Response, error) {
	req.ID = c.nextID.Add(1)
	if c.dialPerRequest {
		return c.doDirect(ctx, req)
	}
	var lastErr error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("wire: %s: %w", c.addr, err)
		}
		// Re-stamped per attempt: a redial after a broken connection ships
		// the budget that actually remains, not the one at first send.
		c.stampDeadline(ctx, &req)
		cc, err := c.conn(ctx)
		if err != nil {
			return nil, err
		}
		resp, err := cc.roundTrip(ctx, &req, true)
		cc.leased.Add(-1)
		if err == nil {
			if resp.ID != req.ID {
				// Matching is by pending-map key, so this cannot fire
				// unless the transport is corrupted; reject rather than
				// hand a stray frame to the caller.
				return nil, fmt.Errorf("wire: %s: response id %d does not match request id %d", c.addr, resp.ID, req.ID)
			}
			if resp.Code == CodeOverloaded {
				// The server shed the request at an in-flight cap: a typed
				// error, so callers can tell "shed by a live server" from
				// both "source down" and "query failed".
				return nil, &OverloadedError{Addr: c.addr, Msg: resp.Err}
			}
			if resp.Code == CodeExpired {
				// The server judged the propagated budget spent before the
				// handler ran. Surface it as the deadline error the caller's
				// own context is about to (or already did) report, not as a
				// remote query failure.
				return nil, fmt.Errorf("wire: %s: %w (rejected by server: %s)", c.addr, context.DeadlineExceeded, resp.Err)
			}
			return resp, nil
		}
		var broken *brokenConnError
		if errors.As(err, &broken) {
			lastErr = broken.err
			continue // the conn was evicted; redial on the next attempt
		}
		return nil, err
	}
	return nil, fmt.Errorf("wire: %s: connection broke repeatedly: %w", c.addr, lastErr)
}

// conn returns the least-loaded pooled connection, dialing a new one when
// every existing connection is busy and the pool has room (in-flight dials
// count against the bound). When the pool is at capacity with every slot
// mid-dial, it waits for a dial to land. It also reaps connections that
// have sat idle past the idle timeout.
func (c *Client) conn(ctx context.Context) (*clientConn, error) {
	// Wake waiters if the context dies while they block on the cond.
	defer context.AfterFunc(ctx, func() { c.cond.Broadcast() })()

	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClientClosed
		}
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return nil, fmt.Errorf("wire: %s: %w", c.addr, err)
		}
		c.reapLocked(time.Now())
		var best, probed *clientConn
		for _, cc := range c.conns {
			if cc.pinging.Load() {
				// A health ping is probing this connection: its verdict is
				// pending, so prefer any alternative (another connection, a
				// fresh dial). It remains the last resort below.
				if probed == nil || cc.inflight.Load() < probed.inflight.Load() {
					probed = cc
				}
				continue
			}
			if best == nil || cc.inflight.Load() < best.inflight.Load() {
				best = cc
			}
		}
		if best != nil && (best.inflight.Load() == 0 || len(c.conns)+c.dialing >= c.poolSize) {
			best.leased.Add(1)
			best.touch()
			c.mu.Unlock()
			return best, nil
		}
		if len(c.conns)+c.dialing < c.poolSize {
			c.dialing++
			break
		}
		if probed != nil {
			// The pool is saturated and every usable connection is under a
			// ping: ride one anyway rather than stall for the ping verdict.
			// The lease spares the connection from a failing ping's kill, so
			// the request's own deadline judges it.
			probed.leased.Add(1)
			probed.touch()
			c.mu.Unlock()
			return probed, nil
		}
		// Every slot is an in-flight dial and no established connection is
		// usable yet: wait for a dial to complete (or the pool to change).
		c.cond.Wait()
	}
	c.mu.Unlock()

	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	c.mu.Lock()
	c.dialing--
	if err != nil {
		c.cond.Broadcast()
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, wrapCtx(ctx, err))
	}
	if c.closed {
		c.cond.Broadcast()
		c.mu.Unlock()
		nc.Close()
		return nil, ErrClientClosed
	}
	cc := &clientConn{
		c:       c,
		nc:      nc,
		pending: make(map[int64]chan *Response),
		done:    make(chan struct{}),
	}
	cc.leased.Add(1)
	cc.touch()
	c.conns = append(c.conns, cc)
	c.scheduleReapLocked()
	c.cond.Broadcast()
	c.connWG.Add(1) // under c.mu, after the closed check: Close will wait
	c.mu.Unlock()
	go cc.readLoop()
	return cc, nil
}

// reapLocked closes pooled connections idle past the idle timeout. Called
// with c.mu held.
func (c *Client) reapLocked(now time.Time) {
	keep := c.conns[:0]
	for _, cc := range c.conns {
		if cc.inflight.Load() == 0 && now.Sub(cc.lastUsed()) > c.idleTimeout {
			cc.shutdown(errors.New("wire: idle connection reaped"))
			continue
		}
		keep = append(keep, cc)
	}
	if len(keep) != len(c.conns) {
		c.conns = keep
		c.cond.Broadcast()
	}
}

// scheduleReapLocked arms a timer that reaps idle connections even when no
// further request arrives to trigger reaping on acquisition — a client
// that goes quiet must not pin sockets (and the server-side goroutines
// behind them) forever. The same timer drives idle health checks, so it
// fires at the finer of the two cadences. One timer at a time; it rearms
// itself while connections remain. Called with c.mu held.
func (c *Client) scheduleReapLocked() {
	if c.closed || c.reapTimer != nil || len(c.conns) == 0 {
		return
	}
	period := c.idleTimeout
	if c.healthInterval > 0 && c.healthInterval < period {
		period = c.healthInterval
	}
	c.reapTimer = time.AfterFunc(period/2, c.reapTick)
}

func (c *Client) reapTick() {
	c.mu.Lock()
	c.reapTimer = nil
	if !c.closed {
		now := time.Now()
		c.reapLocked(now)
		c.healthCheckLocked(now)
		c.scheduleReapLocked()
	}
	c.mu.Unlock()
}

// healthCheckLocked pings connections that have idled past the health
// interval, so a dead connection (half-open TCP, hung peer) is discovered
// and evicted on the reap cadence instead of by the next borrower. Pings
// run off the lock, one at a time per connection; a connection with
// requests in flight is proving its own liveness and is skipped. Called
// with c.mu held.
func (c *Client) healthCheckLocked(now time.Time) {
	if c.healthInterval <= 0 {
		return
	}
	for _, cc := range c.conns {
		if cc.inflight.Load() != 0 || cc.leased.Load() != 0 || now.Sub(cc.lastUsed()) < c.healthInterval {
			continue
		}
		if !cc.pinging.CompareAndSwap(false, true) {
			continue
		}
		// Add under c.mu (reapTick checked closed), Done in the launcher —
		// not in pingConn, which tests also call synchronously.
		c.pingWG.Add(1)
		go func() {
			defer c.pingWG.Done()
			c.pingConn(cc)
		}()
	}
}

// pingConn round-trips one ping on a pooled connection. Failure — timeout
// included — kills and evicts the connection; the next borrower dials
// fresh instead of inheriting a dead socket. The ping does not refresh the
// idle clock: a connection nobody borrows must still age out. While the
// ping runs, conn() refuses to hand the connection out (and waiters are
// woken when the verdict lands), so a kill can only hit a connection no
// borrower holds — leases granted before the ping started disarm it.
func (c *Client) pingConn(cc *clientConn) {
	defer func() {
		cc.pinging.Store(false)
		// Wake borrowers that skipped this connection while it was probed.
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
	//lint:allow ctxflow background health ping with no caller: the reap timer launches it, bounded by the health interval
	ctx, cancel := context.WithTimeout(context.Background(), c.healthInterval)
	defer cancel()
	req := Request{ID: c.nextID.Add(1), Op: "ping"}
	// Any response frame proves the peer alive; an application-level error
	// (a server without a ping handler) is still an answer.
	if _, err := cc.roundTrip(ctx, &req, false); err != nil {
		if cc.inflight.Load() > 0 || cc.leased.Load() > 0 {
			// A real request boarded the connection before the ping's
			// verdict (a slow-but-live peer can outlast the ping deadline):
			// let that request's own deadline judge the connection instead
			// of killing it — and the rider with it — on the ping's say-so.
			return
		}
		cc.fail(fmt.Errorf("wire: health check %s: %w", c.addr, err))
	}
}

// remove evicts a dead connection from the pool.
func (c *Client) remove(cc *clientConn) {
	c.mu.Lock()
	for i, x := range c.conns {
		if x == cc {
			c.conns = append(c.conns[:i], c.conns[i+1:]...)
			c.cond.Broadcast()
			break
		}
	}
	c.mu.Unlock()
}

// doDirect is the dial-per-request path: one connection per call, closed
// on return.
func (c *Client) doDirect(ctx context.Context, req Request) (*Response, error) {
	c.stampDeadline(ctx, &req)
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("wire: set deadline: %w", err)
		}
	}
	// Cancel the exchange if the context dies while we block on the read.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	buf, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	buf = append(buf, '\n')
	if _, err := conn.Write(buf); err != nil {
		return nil, wrapCtx(ctx, fmt.Errorf("wire: write %s: %w", c.addr, err))
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), maxFrameBytes)
	if !scanner.Scan() {
		err := scanner.Err()
		if err == nil {
			err = fmt.Errorf("connection closed")
		}
		return nil, wrapCtx(ctx, fmt.Errorf("wire: read %s: %w", c.addr, err))
	}
	var resp Response
	if err := json.Unmarshal(scanner.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("wire: decode response: %w", err)
	}
	if resp.ID != req.ID {
		// A stale or misordered frame must not be accepted as the answer.
		return nil, fmt.Errorf("wire: %s: response id %d does not match request id %d", c.addr, resp.ID, req.ID)
	}
	if resp.Code == CodeOverloaded {
		return nil, &OverloadedError{Addr: c.addr, Msg: resp.Err}
	}
	if resp.Code == CodeExpired {
		return nil, fmt.Errorf("wire: %s: %w (rejected by server: %s)", c.addr, context.DeadlineExceeded, resp.Err)
	}
	return &resp, nil
}

// brokenConnError marks transport failures on a pooled connection that make
// the request eligible for a transparent retry on a fresh connection.
type brokenConnError struct {
	err error
}

func (e *brokenConnError) Error() string { return fmt.Sprintf("wire: connection broken: %v", e.err) }
func (e *brokenConnError) Unwrap() error { return e.err }

// clientConn is one pooled connection: a single TCP stream shared by many
// in-flight requests, with a persistent read loop (one scanner and buffer
// per connection, not per call) that routes response frames to waiters by
// request ID.
type clientConn struct {
	c  *Client
	nc net.Conn

	writeMu sync.Mutex // serializes frame writes

	inflight atomic.Int64
	// leased counts borrowers between conn() handing the connection out and
	// their roundTrip returning. It covers the window before the borrower's
	// request registers in inflight, so a concurrently failing health ping
	// can never kill a connection a borrower is already holding.
	leased  atomic.Int64
	lastUse atomic.Int64 // unix nanos of last acquisition/completion
	pinging atomic.Bool  // a health ping is in flight

	mu      sync.Mutex
	pending map[int64]chan *Response
	closed  bool
	err     error

	done chan struct{} // closed by shutdown, after err is set
}

func (cc *clientConn) touch()              { cc.lastUse.Store(time.Now().UnixNano()) }
func (cc *clientConn) lastUsed() time.Time { return time.Unix(0, cc.lastUse.Load()) }

// shutdown marks the connection dead and unblocks every waiter. It does not
// touch the pool's connection list (fail does). Requests still pending on
// the connection are abandoned: before the socket closes, each gets a
// best-effort cancel frame so a deliberate teardown (Client.Close, idle
// reap) tells the server to stop the work instead of silently orphaning it.
// (Idle reaping only touches connections with zero in-flight requests, so
// its teardowns write nothing; the frames matter for Close and for
// transport failures, where the write usually fails and the server's
// connection-death path cancels the same handlers.)
func (cc *clientConn) shutdown(err error) {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return
	}
	cc.closed = true
	cc.err = err
	orphans := make([]int64, 0, len(cc.pending))
	for id := range cc.pending {
		orphans = append(orphans, id)
	}
	cc.mu.Unlock()
	if len(orphans) > 0 {
		cc.c.stats.Abandoned.Add(int64(len(orphans)))
		if !cc.c.noCancelPropagation {
			cc.sendCancels(orphans)
		}
	}
	cc.nc.Close()
	close(cc.done)
}

// fail is shutdown plus eviction from the pool.
func (cc *clientConn) fail(err error) {
	cc.shutdown(err)
	cc.c.remove(cc)
}

// roundTrip registers the request, writes its frame, and waits for the
// matching response, the context, or the connection's death — whichever
// comes first. refreshIdle marks real traffic: health pings pass false so
// probing an idle connection does not reset its idle clock (a connection
// nobody borrows must still reach the idle timeout and be reaped).
func (cc *clientConn) roundTrip(ctx context.Context, req *Request, refreshIdle bool) (*Response, error) {
	ch := make(chan *Response, 1)
	cc.mu.Lock()
	if cc.closed {
		err := cc.err
		cc.mu.Unlock()
		return nil, &brokenConnError{err: err}
	}
	cc.pending[req.ID] = ch
	cc.mu.Unlock()
	cc.inflight.Add(1)
	defer func() {
		cc.mu.Lock()
		delete(cc.pending, req.ID)
		cc.mu.Unlock()
		cc.inflight.Add(-1)
		if refreshIdle {
			cc.touch()
		}
	}()

	buf, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	buf = append(buf, '\n')
	cc.writeMu.Lock()
	if deadline, ok := ctx.Deadline(); ok {
		_ = cc.nc.SetWriteDeadline(deadline)
	} else {
		_ = cc.nc.SetWriteDeadline(time.Time{})
	}
	n, werr := cc.nc.Write(buf)
	cc.writeMu.Unlock()
	if werr != nil {
		var ne net.Error
		if n == 0 && (ctx.Err() != nil || (errors.As(werr, &ne) && ne.Timeout())) {
			// Nothing left the buffer and the failure is the caller's own
			// deadline — either ctx already expired, or the mirrored
			// socket write deadline fired a moment before ctx.Err() flips
			// (wrapCtx maps that skew to DeadlineExceeded). The stream is
			// still correctly framed, so the connection shared with other
			// in-flight requests stays up.
			return nil, fmt.Errorf("wire: %s: %w", cc.c.addr, wrapCtx(ctx, werr))
		}
		// A partial write leaves the stream unframed for every request
		// sharing it, and a zero-byte network failure means the transport
		// is gone: kill the connection either way.
		cc.fail(fmt.Errorf("wire: write %s: %w", cc.c.addr, werr))
		if ctx.Err() != nil {
			return nil, fmt.Errorf("wire: %s: %w", cc.c.addr, ctx.Err())
		}
		return nil, &brokenConnError{err: werr}
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		// The request stays written; the pending entry is dropped by the
		// deferred cleanup, so a late response frame is discarded as stale
		// rather than matched to a future request. A best-effort cancel
		// frame tells the server to stop working on it — this is the hedge
		// loser, timed-out caller, and abandoned-call path.
		cc.abandon(req.ID)
		return nil, fmt.Errorf("wire: %s: %w", cc.c.addr, ctx.Err())
	case <-cc.done:
		return nil, &brokenConnError{err: cc.err}
	}
}

// abandon notes that the caller walked away from an in-flight request and,
// unless cancel propagation is off, tells the server — asynchronously, so
// the abandoning caller's error return is not held up behind the
// connection's write lock.
func (cc *clientConn) abandon(id int64) {
	cc.c.stats.Abandoned.Add(1)
	if cc.c.noCancelPropagation {
		return
	}
	//lint:allow gotrack fire-and-forget by design: a best-effort cancel frame bounded by a short write deadline; the server's connection-death path covers the loss
	go cc.sendCancels([]int64{id})
}

// sendCancels writes fire-and-forget cancel frames for abandoned request
// IDs, all in one write so a teardown with many pending requests costs one
// syscall. Best-effort: a short write deadline bounds the attempt, and a
// failure (the connection is usually dying at this point) is not reported
// — the server's own connection-death path cancels the same handlers.
func (cc *clientConn) sendCancels(ids []int64) {
	buf := make([]byte, 0, 32*len(ids))
	for _, id := range ids {
		b, err := json.Marshal(Request{ID: id, Op: OpCancel})
		if err != nil {
			return
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	cc.writeMu.Lock()
	_ = cc.nc.SetWriteDeadline(time.Now().Add(time.Second))
	_, werr := cc.nc.Write(buf)
	cc.writeMu.Unlock()
	if werr == nil {
		cc.c.stats.CancelsSent.Add(int64(len(ids)))
	}
}

// readLoop is the connection's demultiplexer: it owns the read side and its
// buffers for the connection's whole life and hands each response frame to
// the waiter registered under the frame's ID. Frames with no waiter (the
// caller gave up, or the server misbehaved) are dropped, never delivered to
// the wrong request.
func (cc *clientConn) readLoop() {
	defer cc.c.connWG.Done()
	r := bufio.NewReaderSize(cc.nc, 64*1024)
	for {
		line, err := readFrame(r)
		if err != nil {
			cc.fail(fmt.Errorf("wire: read %s: %w", cc.c.addr, err))
			return
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			cc.fail(fmt.Errorf("wire: %s: decode response: %w", cc.c.addr, err))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		if ok {
			delete(cc.pending, resp.ID)
		}
		cc.mu.Unlock()
		if ok {
			rr := resp
			ch <- &rr
		}
	}
}

// readFrame reads one newline-terminated frame, bounded by maxFrameBytes.
// A connection that dies mid-frame reports io.ErrUnexpectedEOF — a frame
// without its terminator is a mid-answer drop, not a (truncated) answer,
// and must never reach the JSON decoder looking like in-stream garbage:
// the two classify differently (transient vs plain failure).
func readFrame(r *bufio.Reader) ([]byte, error) {
	var frame []byte
	for {
		chunk, err := r.ReadSlice('\n')
		frame = append(frame, chunk...)
		switch err {
		case nil:
			return frame[:len(frame)-1], nil
		case bufio.ErrBufferFull:
			if len(frame) > maxFrameBytes {
				return nil, fmt.Errorf("frame exceeds %d bytes", maxFrameBytes)
			}
		case io.EOF:
			if len(frame) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

// Ping checks liveness within the context deadline.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.Do(ctx, Request{Op: "ping"})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("wire: ping: %s", resp.Err)
	}
	return nil
}

// Query executes a query in the named language and returns the raw tagged
// value payload. A partially-answering mediator surfaces as a
// *PartialUpstreamError carrying its residual query.
func (c *Client) Query(ctx context.Context, lang, text string) (json.RawMessage, error) {
	resp, err := c.Do(ctx, Request{Op: "query", Lang: lang, Text: text})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Addr: c.addr, Msg: resp.Err}
	}
	if resp.Residual != "" {
		return nil, &PartialUpstreamError{Addr: c.addr, Residual: resp.Residual, Unavailable: resp.Unavailable}
	}
	return resp.Value, nil
}

// Capability fetches the server's wrapper grammar text.
func (c *Client) Capability(ctx context.Context) (string, error) {
	resp, err := c.Do(ctx, Request{Op: "capability"})
	if err != nil {
		return "", err
	}
	if resp.Err != "" {
		return "", &RemoteError{Addr: c.addr, Msg: resp.Err}
	}
	return resp.Grammar, nil
}

// Versions fetches the server's per-collection data versions; nil when the
// source does not track them.
func (c *Client) Versions(ctx context.Context) (map[string]int64, error) {
	resp, err := c.Do(ctx, Request{Op: "versions"})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Addr: c.addr, Msg: resp.Err}
	}
	return resp.Versions, nil
}

// Collections fetches the server's collection names.
func (c *Client) Collections(ctx context.Context) ([]string, error) {
	resp, err := c.Do(ctx, Request{Op: "collections"})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Addr: c.addr, Msg: resp.Err}
	}
	return resp.Collections, nil
}

// RemoteError is an error reported by the remote server (as opposed to a
// transport failure).
type RemoteError struct {
	Addr string
	Msg  string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return fmt.Sprintf("wire: %s: %s", e.Addr, e.Msg) }

// OverloadedError reports that the server shed the request at one of its
// in-flight caps (CodeOverloaded). The server is alive — this is neither a
// transport failure nor a query error — and a retry moments later may be
// admitted; the mediator classifies it as a retryable transient.
type OverloadedError struct {
	Addr string
	Msg  string
}

// Error implements the error interface.
func (e *OverloadedError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("wire: %s: %s", e.Addr, e.Msg)
	}
	return fmt.Sprintf("wire: %s: server overloaded", e.Addr)
}

// wrapCtx prefers the context's error (deadline, cancel) over the raw
// network error it caused, so callers can match context.DeadlineExceeded.
// The connection deadline is set from the context's, so a net timeout maps
// to DeadlineExceeded even when it fires a moment before ctx.Err() does.
func wrapCtx(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("%w (%v)", ctx.Err(), err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w (%v)", context.DeadlineExceeded, err)
	}
	return err
}
