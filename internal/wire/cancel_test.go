package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// blockingHandler parks every query on its context: the only way a request
// finishes is its ctx being cancelled (cancel frame, connection death,
// propagated deadline, server close). It records each invocation's context
// so tests can assert cancellation actually reached the handler.
type blockingHandler struct {
	mu      sync.Mutex
	ctxs    []context.Context
	started chan struct{} // one tick per invocation
}

func newBlockingHandler() *blockingHandler {
	return &blockingHandler{started: make(chan struct{}, 64)}
}

func (h *blockingHandler) HandleQuery(ctx context.Context, lang, text string) (json.RawMessage, error) {
	h.mu.Lock()
	h.ctxs = append(h.ctxs, ctx)
	h.mu.Unlock()
	h.started <- struct{}{}
	<-ctx.Done()
	return nil, ctx.Err()
}

func (h *blockingHandler) Capability() string    { return "a :- get OPEN SOURCE CLOSE" }
func (h *blockingHandler) Collections() []string { return nil }
func (h *blockingHandler) invocations() int      { h.mu.Lock(); defer h.mu.Unlock(); return len(h.ctxs) }
func (h *blockingHandler) contexts() []context.Context {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]context.Context(nil), h.ctxs...)
}

// waitFor polls cond until it holds or the timeout lapses.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", timeout, msg)
}

// rawConn dials the server directly so tests can write hand-built frames
// (expired deadlines, cancel ops, abrupt hangups) that the Client would
// never produce on its own.
func rawConn(t *testing.T, addr string) (net.Conn, *bufio.Scanner) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), maxFrameBytes)
	return conn, sc
}

func writeFrame(t *testing.T, conn net.Conn, req Request) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(buf, '\n')); err != nil {
		t.Fatal(err)
	}
}

// TestExpiredOnArrivalRejected is the deadline-aware admission acceptance
// test: a request whose propagated budget is already spent is answered with
// CodeExpired, counted, and the handler is never invoked.
func TestExpiredOnArrivalRejected(t *testing.T) {
	h := newBlockingHandler()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, sc := rawConn(t, s.Addr())
	writeFrame(t, conn, Request{ID: 7, Op: "query", Lang: LangSQL, Text: "SELECT 1", DeadlineMillis: -1})
	if !sc.Scan() {
		t.Fatalf("no response frame: %v", sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || resp.Code != CodeExpired || resp.Err == "" {
		t.Fatalf("resp = %+v, want id=7 code=%q", resp, CodeExpired)
	}
	if n := s.Stats().ExpiredOnArrival.Load(); n != 1 {
		t.Errorf("ExpiredOnArrival = %d, want 1", n)
	}
	if h.invocations() != 0 {
		t.Errorf("handler invoked %d times for an expired request", h.invocations())
	}
	if s.Inflight() != 0 {
		t.Errorf("inflight = %d after rejection", s.Inflight())
	}
}

// TestClientSideExpiredDeadline exercises the same rejection through the
// real client: a context that expires before the frame is stamped maps to
// DeadlineMillis=-1 and the caller sees a deadline error, not a remote one.
func TestClientSideExpiredDeadline(t *testing.T) {
	h := newBlockingHandler()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var req Request
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := NewClient(s.Addr())
	defer c.Close()
	c.stampDeadline(ctx, &req)
	if req.DeadlineMillis != -1 {
		t.Fatalf("DeadlineMillis = %d, want -1 for a spent budget", req.DeadlineMillis)
	}

	// A positive sub-millisecond budget must round up, never down to "no
	// deadline".
	req = Request{}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Microsecond)
	defer cancel2()
	c.stampDeadline(ctx2, &req)
	if req.DeadlineMillis < 1 && req.DeadlineMillis != -1 {
		t.Fatalf("DeadlineMillis = %d, want >=1 or -1 for a sub-millisecond budget", req.DeadlineMillis)
	}
}

// TestDeadlinePropagatesToHandler asserts the handler's context carries
// (approximately) the caller's remaining budget.
func TestDeadlinePropagatesToHandler(t *testing.T) {
	h := newBlockingHandler()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewClient(s.Addr())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Query(ctx, LangSQL, "SELECT 1")
	if err == nil {
		t.Fatal("blocking handler answered?")
	}
	<-h.started
	ctxs := h.contexts()
	if len(ctxs) != 1 {
		t.Fatalf("handler invoked %d times, want 1", len(ctxs))
	}
	dl, ok := ctxs[0].Deadline()
	if !ok {
		t.Fatal("handler context has no deadline; propagation lost")
	}
	if rem := dl.Sub(start); rem <= 0 || rem > 400*time.Millisecond {
		t.Errorf("handler deadline %v from start, want within (0, 400ms]", rem)
	}
	// The handler unblocks when the propagated deadline fires (or the cancel
	// frame from the abandoning caller lands first), and the gauge drains.
	waitFor(t, time.Second, func() bool { return s.Inflight() == 0 }, "inflight drain after deadline")
}

// TestCancelFrameCancelsHandler sends an explicit cancel op for an in-flight
// request: the handler's context must be cancelled, the cancellation
// counted, and the response suppressed.
func TestCancelFrameCancelsHandler(t *testing.T) {
	h := newBlockingHandler()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, sc := rawConn(t, s.Addr())
	writeFrame(t, conn, Request{ID: 1, Op: "query", Lang: LangSQL, Text: "SELECT 1"})
	<-h.started
	if s.Inflight() != 1 {
		t.Fatalf("inflight = %d, want 1", s.Inflight())
	}
	writeFrame(t, conn, Request{ID: 1, Op: OpCancel})

	waitFor(t, time.Second, func() bool { return s.Inflight() == 0 }, "inflight drain after cancel frame")
	if n := s.Stats().Cancelled.Load(); n != 1 {
		t.Errorf("Cancelled = %d, want 1", n)
	}
	ctxs := h.contexts()
	if len(ctxs) != 1 || ctxs[0].Err() != context.Canceled {
		t.Errorf("handler ctx err = %v, want Canceled", ctxs[0].Err())
	}

	// The cancelled request's response is suppressed: a follow-up ping must
	// be the next (and only) frame on the wire.
	writeFrame(t, conn, Request{ID: 2, Op: "ping"})
	if !sc.Scan() {
		t.Fatalf("no ping response: %v", sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 2 {
		t.Errorf("next frame has id %d, want 2 (cancelled request's response not suppressed)", resp.ID)
	}
}

// TestConnDeathCancelsHandlers is the satellite regression test: a client
// hanging up with requests in flight must cancel every matching handler
// context instead of letting abandoned work run to completion.
func TestConnDeathCancelsHandlers(t *testing.T) {
	h := newBlockingHandler()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, _ := rawConn(t, s.Addr())
	const n = 3
	for i := 1; i <= n; i++ {
		writeFrame(t, conn, Request{ID: int64(i), Op: "query", Lang: LangSQL, Text: fmt.Sprintf("q%d", i)})
	}
	for i := 0; i < n; i++ {
		<-h.started
	}
	if got := s.Inflight(); got != n {
		t.Fatalf("inflight = %d, want %d", got, n)
	}
	conn.Close() // client dies mid-query

	waitFor(t, time.Second, func() bool { return s.Inflight() == 0 }, "inflight drain after connection death")
	if got := s.Stats().Cancelled.Load(); got != n {
		t.Errorf("Cancelled = %d, want %d", got, n)
	}
	for i, ctx := range h.contexts() {
		if ctx.Err() != context.Canceled {
			t.Errorf("handler %d ctx err = %v, want Canceled", i, ctx.Err())
		}
	}
}

// TestClientCloseCancelsPending is the teardown satellite: Close with
// requests in flight abandons them, sends best-effort cancel frames, and
// the server stops the work.
func TestClientCloseCancelsPending(t *testing.T) {
	h := newBlockingHandler()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewClient(s.Addr())
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := c.Query(ctx, LangSQL, "SELECT 1")
		done <- err
	}()
	<-h.started
	c.Close()

	if err := <-done; err == nil {
		t.Fatal("Query survived Close")
	}
	if n := c.Stats().Abandoned.Load(); n < 1 {
		t.Errorf("Abandoned = %d, want >= 1", n)
	}
	// The cancel reaches the server as a frame or, failing that, as the
	// connection dying; either way the handler is cancelled and the in-flight
	// gauge drains.
	waitFor(t, time.Second, func() bool { return s.Inflight() == 0 }, "inflight drain after client Close")
	if n := s.Stats().Cancelled.Load(); n < 1 {
		t.Errorf("server Cancelled = %d, want >= 1", n)
	}
}

// TestAbandonSendsCancelFrame covers the hedge-loser/timed-out-caller path:
// the caller's context ends mid-call, the client sends a cancel frame on the
// still-healthy connection, and the server reclaims the work while the
// connection keeps serving other requests.
func TestAbandonSendsCancelFrame(t *testing.T) {
	h := newBlockingHandler()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewClient(s.Addr())
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, LangSQL, "SELECT 1")
		done <- err
	}()
	<-h.started
	cancel() // the caller walks away; no deadline involved

	if err := <-done; err == nil {
		t.Fatal("Query survived its caller's cancel")
	}
	waitFor(t, time.Second, func() bool { return s.Inflight() == 0 }, "inflight drain after caller cancel")
	waitFor(t, time.Second, func() bool { return c.Stats().CancelsSent.Load() >= 1 }, "cancel frame sent")
	if n := s.Stats().Cancelled.Load(); n != 1 {
		t.Errorf("server Cancelled = %d, want 1", n)
	}
	// The connection survived the cancel: the next request rides the same
	// pool without redialing.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := c.Ping(ctx2); err != nil {
		t.Fatalf("ping after abandon: %v", err)
	}
}

// TestWithoutCancelPropagation pins the baseline the benchmark measures
// against: no deadline stamping, no cancel frames — abandoned work keeps
// running server-side until its own devices (here: server close) stop it.
func TestWithoutCancelPropagation(t *testing.T) {
	h := newBlockingHandler()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewClient(s.Addr(), WithoutCancelPropagation())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := c.Query(ctx, LangSQL, "SELECT 1"); err == nil {
		t.Fatal("blocking handler answered?")
	}
	<-h.started
	ctxs := h.contexts()
	if _, ok := ctxs[0].Deadline(); ok {
		t.Error("handler context has a deadline despite WithoutCancelPropagation")
	}
	// Give a would-be cancel frame ample time to land, then verify none did:
	// the abandoned request is still running server-side.
	time.Sleep(50 * time.Millisecond)
	if n := c.Stats().CancelsSent.Load(); n != 0 {
		t.Errorf("CancelsSent = %d, want 0", n)
	}
	if n := s.Stats().Cancelled.Load(); n != 0 {
		t.Errorf("server Cancelled = %d, want 0", n)
	}
	if s.Inflight() != 1 {
		t.Errorf("inflight = %d, want 1 (abandoned work keeps running)", s.Inflight())
	}
	if n := c.Stats().Abandoned.Load(); n != 1 {
		t.Errorf("Abandoned = %d, want 1 (abandonment is still counted)", n)
	}
}

// TestCancelledRequestNotCounted makes sure a cancel for an unknown or
// already-completed ID is the benign race the protocol promises, not an
// error or a counter bump.
func TestCancelStaleIDIsBenign(t *testing.T) {
	s := newTestServer(t)
	conn, sc := rawConn(t, s.Addr())
	writeFrame(t, conn, Request{ID: 99, Op: OpCancel}) // never existed
	writeFrame(t, conn, Request{ID: 1, Op: "ping"})
	if !sc.Scan() {
		t.Fatalf("no response: %v", sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 || resp.Err != "" {
		t.Fatalf("resp = %+v, want clean ping answer", resp)
	}
	if n := s.Stats().Cancelled.Load(); n != 0 {
		t.Errorf("Cancelled = %d, want 0 for a stale cancel", n)
	}
}

// TestLatencySleepAbortsOnCancel asserts injected link latency does not
// delay reclamation: a cancel arriving while the request is "on the wire"
// aborts the sleep instead of waiting it out.
func TestLatencySleepAbortsOnCancel(t *testing.T) {
	h := newBlockingHandler()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetLatency(2 * time.Second)

	conn, _ := rawConn(t, s.Addr())
	writeFrame(t, conn, Request{ID: 1, Op: "query", Lang: LangSQL, Text: "SELECT 1"})
	waitFor(t, time.Second, func() bool { return s.Inflight() == 1 }, "request in flight")
	start := time.Now()
	writeFrame(t, conn, Request{ID: 1, Op: OpCancel})
	waitFor(t, time.Second, func() bool { return s.Inflight() == 0 }, "inflight drain despite injected latency")
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Errorf("drain took %v; cancel should abort the 2s latency sleep", waited)
	}
	if h.invocations() != 0 {
		t.Errorf("handler invoked %d times for a request cancelled on the wire", h.invocations())
	}
}
