package wire

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"disco/internal/types"
)

// TestNoGoroutineLeakAfterClose: a server with hung (never-answered)
// clients must release every goroutine when closed.
func TestNoGoroutineLeakAfterClose(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := NewServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetAvailable(false)

	// Several clients block against the unavailable server.
	done := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			c := NewClient(s.Addr())
			_, _ = c.Query(ctx, LangSQL, "SELECT 1")
		}()
	}
	time.Sleep(100 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("client still blocked after server close")
		}
	}

	// Allow the runtime to settle, then compare goroutine counts.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestPipelinedRequestsOnOneConnection: the server answers a sequence of
// frames on a single connection in order.
func TestPipelinedRequestsOnOneConnection(t *testing.T) {
	s := newTestServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// Write three requests back to back.
	for i := 1; i <= 3; i++ {
		req, err := json.Marshal(Request{ID: int64(i), Op: "query", Lang: "sql", Text: fmt.Sprintf("q%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(append(req, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	// Read three responses, IDs in order.
	dec := json.NewDecoder(conn)
	for i := 1; i <= 3; i++ {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.ID != int64(i) {
			t.Errorf("response %d has id %d", i, resp.ID)
		}
		v, err := types.DecodeValue(resp.Value)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(types.Str(fmt.Sprintf("sql:q%d", i))) {
			t.Errorf("response %d = %s", i, v)
		}
	}
}

// TestLargePayloadRoundTrip: multi-megabyte answers survive the framing.
func TestLargePayloadRoundTrip(t *testing.T) {
	big := strings.Repeat("x", 4<<20) // 4 MiB
	h := payloadHandler{payload: big}
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := c.Query(ctx, LangSQL, "anything")
	if err != nil {
		t.Fatal(err)
	}
	v, err := types.DecodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.Str(big)) {
		t.Error("large payload corrupted")
	}
}

type payloadHandler struct{ payload string }

func (h payloadHandler) HandleQuery(context.Context, string, string) (json.RawMessage, error) {
	return types.EncodeValue(types.Str(h.payload))
}
func (payloadHandler) Capability() string    { return "" }
func (payloadHandler) Collections() []string { return nil }

// TestFlappingAvailability: rapid availability flips never wedge the
// server; available windows answer, unavailable ones time out.
func TestFlappingAvailability(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	for i := 0; i < 6; i++ {
		up := i%2 == 0
		s.SetAvailable(up)
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		_, err := c.Query(ctx, LangSQL, "SELECT 1")
		cancel()
		if up && err != nil {
			t.Errorf("round %d (up): %v", i, err)
		}
		if !up && err == nil {
			t.Errorf("round %d (down): query should time out", i)
		}
	}
}
