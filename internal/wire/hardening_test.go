package wire

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"disco/internal/types"
)

// TestNoGoroutineLeakAfterClose: a server with hung (never-answered)
// clients must release every goroutine when closed.
func TestNoGoroutineLeakAfterClose(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := NewServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetAvailable(false)

	// Several clients block against the unavailable server.
	done := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			c := NewClient(s.Addr())
			_, _ = c.Query(ctx, LangSQL, "SELECT 1")
		}()
	}
	time.Sleep(100 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("client still blocked after server close")
		}
	}

	// Allow the runtime to settle, then compare goroutine counts.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestPipelinedRequestsOnOneConnection: the server answers every frame
// pipelined on a single connection, each response carrying its request's
// ID. Responses arrive in completion order, not arrival order, so the test
// matches them by ID.
func TestPipelinedRequestsOnOneConnection(t *testing.T) {
	s := newTestServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// Write three requests back to back.
	for i := 1; i <= 3; i++ {
		req, err := json.Marshal(Request{ID: int64(i), Op: "query", Lang: "sql", Text: fmt.Sprintf("q%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(append(req, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	// Read three responses, each answering the request its ID names.
	dec := json.NewDecoder(conn)
	seen := map[int64]bool{}
	for i := 0; i < 3; i++ {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.ID < 1 || resp.ID > 3 || seen[resp.ID] {
			t.Fatalf("unexpected response id %d (seen %v)", resp.ID, seen)
		}
		seen[resp.ID] = true
		v, err := types.DecodeValue(resp.Value)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(types.Str(fmt.Sprintf("sql:q%d", resp.ID))) {
			t.Errorf("response for id %d = %s", resp.ID, v)
		}
	}
}

// TestNoHeadOfLineBlocking: with per-request latency, requests pipelined on
// one pooled connection wait it out concurrently — eight 150ms requests
// complete in ~one latency, not eight. Against the old serialized server
// this takes 1.2s+; the generous 4x-latency bound keeps the test stable
// under race-detector and CI-scheduler slowdowns while still being far
// below the serialized wall time.
func TestNoHeadOfLineBlocking(t *testing.T) {
	s := newTestServer(t)
	const latency = 150 * time.Millisecond
	s.SetLatency(latency)
	c := NewClient(s.Addr(), WithPoolSize(1)) // force one shared connection
	defer c.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			raw, err := c.Query(ctx, LangSQL, fmt.Sprintf("q%d", i))
			if err != nil {
				errs <- err
				return
			}
			v, err := types.DecodeValue(raw)
			if err != nil {
				errs <- err
				return
			}
			if !v.Equal(types.Str(fmt.Sprintf("sql:q%d", i))) {
				errs <- fmt.Errorf("wrong answer %s for q%d", v, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < latency {
		t.Errorf("finished in %v, faster than one latency %v?", elapsed, latency)
	}
	if elapsed >= 4*latency {
		t.Errorf("8 pipelined requests took %v — serialized behind each other (want ~%v)", elapsed, latency)
	}
	if conns, _ := c.PoolStats(); conns != 1 {
		t.Errorf("pool grew to %d conns, want 1", conns)
	}
}

// TestLargePayloadRoundTrip: multi-megabyte answers survive the framing.
func TestLargePayloadRoundTrip(t *testing.T) {
	big := strings.Repeat("x", 4<<20) // 4 MiB
	h := payloadHandler{payload: big}
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := c.Query(ctx, LangSQL, "anything")
	if err != nil {
		t.Fatal(err)
	}
	v, err := types.DecodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.Str(big)) {
		t.Error("large payload corrupted")
	}
}

type payloadHandler struct{ payload string }

func (h payloadHandler) HandleQuery(context.Context, string, string) (json.RawMessage, error) {
	return types.EncodeValue(types.Str(h.payload))
}
func (payloadHandler) Capability() string    { return "" }
func (payloadHandler) Collections() []string { return nil }

// TestFlappingAvailability: rapid availability flips never wedge the
// server; available windows answer, unavailable ones time out.
func TestFlappingAvailability(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	for i := 0; i < 6; i++ {
		up := i%2 == 0
		s.SetAvailable(up)
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		_, err := c.Query(ctx, LangSQL, "SELECT 1")
		cancel()
		if up && err != nil {
			t.Errorf("round %d (up): %v", i, err)
		}
		if !up && err == nil {
			t.Errorf("round %d (down): query should time out", i)
		}
	}
}
