package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"disco/internal/types"
)

// echoHandler answers queries by echoing the text as a string value.
type echoHandler struct{}

func (echoHandler) HandleQuery(_ context.Context, lang, text string) (json.RawMessage, error) {
	if lang == "fail" {
		return nil, fmt.Errorf("boom: %s", text)
	}
	return types.EncodeValue(types.Str(lang + ":" + text))
}

func (echoHandler) Capability() string { return "a :- get OPEN SOURCE CLOSE" }

func (echoHandler) Collections() []string { return []string{"c1", "c2"} }

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestQueryRoundTrip(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	raw, err := c.Query(ctx, LangSQL, "SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	v, err := types.DecodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.Str("sql:SELECT 1")) {
		t.Errorf("value = %s", v)
	}
}

func TestRemoteError(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := c.Query(ctx, "fail", "x")
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v (%T)", err, err)
	}
	if !strings.Contains(re.Msg, "boom") {
		t.Errorf("msg = %q", re.Msg)
	}
}

func TestCapabilityAndCollections(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	g, err := c.Capability(ctx)
	if err != nil || !strings.Contains(g, "get") {
		t.Errorf("capability = %q, %v", g, err)
	}
	cols, err := c.Collections(ctx)
	if err != nil || len(cols) != 2 {
		t.Errorf("collections = %v, %v", cols, err)
	}
}

func TestPing(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestUnavailableServerBlocksUntilDeadline is the behaviour partial
// evaluation depends on: an unavailable source accepts the connection and
// never answers, so the caller's deadline fires.
func TestUnavailableServerBlocksUntilDeadline(t *testing.T) {
	s := newTestServer(t)
	s.SetAvailable(false)
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, LangSQL, "SELECT 1")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed < 100*time.Millisecond {
		t.Errorf("returned after %v, should have blocked until the deadline", elapsed)
	}
	// Recovery: the same server answers again once available.
	s.SetAvailable(true)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if _, err := c.Query(ctx2, LangSQL, "SELECT 1"); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	s := newTestServer(t)
	s.SetLatency(120 * time.Millisecond)
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := c.Query(ctx, LangSQL, "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("reply after %v, want >= latency", elapsed)
	}
}

func TestStatsCount(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := c.Query(ctx, LangSQL, "SELECT 1"); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if got := st.Queries.Load(); got != 3 {
		t.Errorf("queries = %d", got)
	}
	if st.BytesIn.Load() == 0 || st.BytesOut.Load() == 0 {
		t.Errorf("byte counters not advancing: in=%d out=%d", st.BytesIn.Load(), st.BytesOut.Load())
	}
}

func TestConcurrentClients(t *testing.T) {
	s := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(s.Addr())
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			raw, err := c.Query(ctx, LangSQL, fmt.Sprintf("q%d", i))
			if err != nil {
				errs <- err
				return
			}
			v, err := types.DecodeValue(raw)
			if err != nil {
				errs <- err
				return
			}
			if !v.Equal(types.Str(fmt.Sprintf("sql:q%d", i))) {
				errs <- fmt.Errorf("wrong answer %s for q%d", v, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestUnknownOp(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := c.Do(ctx, Request{Op: "explode"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "unknown op") {
		t.Errorf("err = %q", resp.Err)
	}
}

func TestMalformedFrame(t *testing.T) {
	s := newTestServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "malformed") {
		t.Errorf("response = %q", buf[:n])
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := newTestServer(t)
	s.SetAvailable(false)
	c := NewClient(s.Addr())
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := c.Query(ctx, LangSQL, "SELECT 1")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("blocked query should fail when server closes")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still blocked after server close")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := newTestServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens there
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.Query(ctx, LangSQL, "SELECT 1"); err == nil {
		t.Error("dial to dead address should fail")
	}
}
