package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disco/internal/types"
)

// TestPooledClientConcurrentRace: many goroutines share one pooled client
// against one server; every request must get its own answer (run under
// -race this is the pool's core correctness test).
func TestPooledClientConcurrentRace(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	defer c.Close()

	const goroutines = 32
	const perG = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				q := fmt.Sprintf("g%d_i%d", g, i)
				raw, err := c.Query(ctx, LangSQL, q)
				cancel()
				if err != nil {
					errs <- err
					return
				}
				v, err := types.DecodeValue(raw)
				if err != nil {
					errs <- err
					return
				}
				if !v.Equal(types.Str("sql:" + q)) {
					errs <- fmt.Errorf("wrong answer %s for %s", v, q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	conns, inflight := c.PoolStats()
	if conns == 0 || conns > DefaultPoolSize {
		t.Errorf("pool holds %d conns, want 1..%d", conns, DefaultPoolSize)
	}
	if inflight != 0 {
		t.Errorf("inflight = %d after all calls returned", inflight)
	}
}

// killableProxy forwards TCP bytes between clients and a backend, and can
// kill every live link mid-flight to simulate a broken connection.
type killableProxy struct {
	lis     net.Listener
	backend string

	mu    sync.Mutex
	conns []net.Conn
}

func newKillableProxy(t *testing.T, backend string) *killableProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{lis: lis, backend: backend}
	go p.acceptLoop()
	t.Cleanup(func() { lis.Close(); p.KillAll() })
	return p
}

func (p *killableProxy) Addr() string { return p.lis.Addr().String() }

func (p *killableProxy) acceptLoop() {
	for {
		client, err := p.lis.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, client, server)
		p.mu.Unlock()
		go func() { io.Copy(server, client); server.Close() }()
		go func() { io.Copy(client, server); client.Close() }()
	}
}

// KillAll severs every live link.
func (p *killableProxy) KillAll() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// TestTransparentRedialAfterConnKill: killing the pooled connections under
// a live client must not surface to callers — the client evicts the broken
// connections, redials, and the request succeeds.
func TestTransparentRedialAfterConnKill(t *testing.T) {
	s := newTestServer(t)
	p := newKillableProxy(t, s.Addr())
	c := NewClient(p.Addr())
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Query(ctx, LangSQL, "warmup"); err != nil {
		t.Fatal(err)
	}
	if conns, _ := c.PoolStats(); conns != 1 {
		t.Fatalf("pool = %d conns after warmup", conns)
	}

	// Kill the established link; the next query must transparently redial.
	p.KillAll()
	raw, err := c.Query(ctx, LangSQL, "after-kill")
	if err != nil {
		t.Fatalf("query after conn kill: %v", err)
	}
	v, err := types.DecodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.Str("sql:after-kill")) {
		t.Errorf("answer = %s", v)
	}
}

// TestTransparentRedialUnderLoad: connections die repeatedly while many
// goroutines hammer the client; no caller may observe a transport error.
func TestTransparentRedialUnderLoad(t *testing.T) {
	s := newTestServer(t)
	p := newKillableProxy(t, s.Addr())
	c := NewClient(p.Addr())
	defer c.Close()

	stop := make(chan struct{})
	var killerWG sync.WaitGroup
	killerWG.Add(1)
	go func() {
		defer killerWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				p.KillAll()
			}
		}
	}()

	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, err := c.Query(ctx, LangSQL, fmt.Sprintf("g%d_i%d", g, i))
				cancel()
				if err != nil {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	killerWG.Wait()
	// A request can outlast dialAttempts kills in pathological schedules;
	// the point is that redial keeps the failure count near zero rather
	// than every post-kill request failing.
	if f := failures.Load(); f > 8 {
		t.Errorf("%d/80 requests failed despite transparent redial", f)
	}
}

// newRogueServer runs a raw TCP server that answers each decoded request
// with whatever the respond function fabricates — used to simulate
// misbehaving peers (wrong response IDs).
func newRogueServer(t *testing.T, respond func(req Request) Response) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec := json.NewDecoder(conn)
				enc := json.NewEncoder(conn)
				for {
					var req Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					if err := enc.Encode(respond(req)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return lis.Addr().String()
}

// TestMismatchedResponseIDRejected: a frame whose ID matches no outstanding
// request must never be accepted as an answer — in dial-per-request mode it
// is an explicit error; in pooled mode the stale frame is dropped and the
// caller times out instead of receiving someone else's answer.
func TestMismatchedResponseIDRejected(t *testing.T) {
	addr := newRogueServer(t, func(req Request) Response {
		return Response{ID: req.ID + 1000} // always the wrong ID
	})

	t.Run("dial-per-request", func(t *testing.T) {
		c := NewClient(addr, WithDialPerRequest())
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, err := c.Do(ctx, Request{Op: "ping"})
		if err == nil || !strings.Contains(err.Error(), "does not match request id") {
			t.Fatalf("err = %v, want id mismatch rejection", err)
		}
	})

	t.Run("pooled", func(t *testing.T) {
		c := NewClient(addr)
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		_, err := c.Do(ctx, Request{Op: "ping"})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want deadline exceeded (stale frame dropped)", err)
		}
	})
}

// TestPoolBounded: hammering the client never grows the pool past its
// configured size.
func TestPoolBounded(t *testing.T) {
	s := newTestServer(t)
	s.SetLatency(20 * time.Millisecond) // force real concurrency
	c := NewClient(s.Addr(), WithPoolSize(2))
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := c.Query(ctx, LangSQL, fmt.Sprintf("q%d", g)); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if conns, _ := c.PoolStats(); conns > 2 {
		t.Errorf("pool grew to %d conns, bound is 2", conns)
	}
}

// TestIdleConnectionsReaped: a connection unused past the idle timeout is
// closed on the next acquisition; the request still succeeds on a fresh
// connection.
func TestIdleConnectionsReaped(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr(), WithIdleTimeout(50*time.Millisecond))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Query(ctx, LangSQL, "warmup"); err != nil {
		t.Fatal(err)
	}
	if conns, _ := c.PoolStats(); conns != 1 {
		t.Fatalf("pool = %d conns after warmup", conns)
	}
	// The reap timer fires without any further traffic: the idle conn must
	// disappear on its own.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if conns, _ := c.PoolStats(); conns == 0 {
			break
		}
		if time.Now().After(deadline) {
			conns, _ := c.PoolStats()
			t.Fatalf("pool still holds %d conns long past the idle timeout", conns)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Query(ctx, LangSQL, "after-idle"); err != nil {
		t.Fatal(err)
	}
	// The reaped conn was replaced by the one serving the second query.
	if conns, _ := c.PoolStats(); conns != 1 {
		t.Errorf("pool = %d conns after reap+redial, want 1", conns)
	}
}

// TestClientClose: Close fails fast and unblocks nothing-left-behind.
func TestClientClose(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Do(ctx, Request{Op: "ping"}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want ErrClientClosed", err)
	}
	if conns, _ := c.PoolStats(); conns != 0 {
		t.Errorf("pool = %d conns after Close", conns)
	}
}

// TestMalformedFrameCountedAndIDEchoed: a malformed frame that still parses
// far enough to carry an ID gets that ID echoed in the error response, and
// the Malformed counter advances.
func TestMalformedFrameCountedAndIDEchoed(t *testing.T) {
	s := newTestServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// Valid JSON, wrong field type: Request unmarshal fails, ID probe works.
	if _, err := conn.Write([]byte(`{"id":42,"op":7}` + "\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 {
		t.Errorf("error response carries id %d, want 42", resp.ID)
	}
	if !strings.Contains(resp.Err, "malformed") {
		t.Errorf("err = %q", resp.Err)
	}
	if got := s.Stats().Malformed.Load(); got != 1 {
		t.Errorf("Malformed = %d, want 1", got)
	}
	// Unparseable garbage still answers (ID 0) and counts.
	conn2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := conn2.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write([]byte("not json at all\n")); err != nil {
		t.Fatal(err)
	}
	var resp2 Response
	if err := json.NewDecoder(conn2).Decode(&resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.ID != 0 || !strings.Contains(resp2.Err, "malformed") {
		t.Errorf("resp = %+v", resp2)
	}
	if got := s.Stats().Malformed.Load(); got != 2 {
		t.Errorf("Malformed = %d, want 2", got)
	}
}

// TestPerRequestAvailability: SetAvailable applies per request — a request
// dispatched while the server is down is swallowed even if the server comes
// back before the deadline of a later request on the same connection.
func TestPerRequestAvailability(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr(), WithPoolSize(1))
	defer c.Close()

	// Warm the connection.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	s.SetAvailable(false)
	downCtx, downCancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer downCancel()
	if _, err := c.Query(downCtx, LangSQL, "swallowed"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("down request: err = %v, want deadline exceeded", err)
	}

	// Same pooled connection, server back up: answers again.
	s.SetAvailable(true)
	if _, err := c.Query(ctx, LangSQL, "alive"); err != nil {
		t.Fatalf("after recovery on same conn: %v", err)
	}
	if conns, _ := c.PoolStats(); conns != 1 {
		t.Errorf("pool = %d conns, want the same single conn", conns)
	}
}

// blackholeProxy forwards TCP bytes between clients and a backend and can
// start silently discarding traffic while keeping connections open — the
// half-open-connection failure mode that only a health check can discover
// (nothing errors, nothing closes; the peer just never answers again).
type blackholeProxy struct {
	lis     net.Listener
	backend string
	drop    atomic.Bool
}

func newBlackholeProxy(t *testing.T, backend string) *blackholeProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &blackholeProxy{lis: lis, backend: backend}
	go p.acceptLoop()
	t.Cleanup(func() { lis.Close() })
	return p
}

func (p *blackholeProxy) Addr() string { return p.lis.Addr().String() }

func (p *blackholeProxy) acceptLoop() {
	for {
		client, err := p.lis.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		forward := func(dst, src net.Conn) {
			buf := make([]byte, 4096)
			for {
				n, err := src.Read(buf)
				if n > 0 && !p.drop.Load() {
					if _, werr := dst.Write(buf[:n]); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		}
		go forward(server, client)
		go forward(client, server)
	}
}

// TestHealthCheckEvictsDeadIdleConnection: a connection whose peer goes
// silent (open socket, no answers) must be discovered by the idle health
// ping and evicted before any caller borrows it — and the next request
// must succeed on a fresh dial once the path heals.
func TestHealthCheckEvictsDeadIdleConnection(t *testing.T) {
	s := newTestServer(t)
	p := newBlackholeProxy(t, s.Addr())
	c := NewClient(p.Addr(),
		WithIdleTimeout(time.Minute), // idle reaping must not be the one evicting
		WithHealthCheckInterval(40*time.Millisecond))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Query(ctx, LangSQL, "warmup"); err != nil {
		t.Fatal(err)
	}
	if conns, _ := c.PoolStats(); conns != 1 {
		t.Fatalf("pool = %d conns after warmup", conns)
	}

	// The peer goes silent: the connection stays open but answers nothing.
	p.drop.Store(true)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if conns, _ := c.PoolStats(); conns == 0 {
			break
		}
		if time.Now().After(deadline) {
			conns, _ := c.PoolStats()
			t.Fatalf("health check never evicted the dead connection (pool = %d)", conns)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Path healed: the next query dials fresh and succeeds without the
	// caller ever having seen the dead connection.
	p.drop.Store(false)
	raw, err := c.Query(ctx, LangSQL, "after-heal")
	if err != nil {
		t.Fatalf("query after heal: %v", err)
	}
	v, err := types.DecodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.Str("sql:after-heal")) {
		t.Errorf("answer = %s", v)
	}
}

// TestHealthCheckKeepsLiveConnection: a healthy idle connection must
// survive health checks (no false-positive eviction) while remaining
// subject to the idle timeout — pings must not refresh the idle clock.
func TestHealthCheckKeepsLiveConnection(t *testing.T) {
	s := newTestServer(t)
	c := NewClient(s.Addr(),
		WithIdleTimeout(450*time.Millisecond),
		WithHealthCheckInterval(40*time.Millisecond))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Query(ctx, LangSQL, "warmup"); err != nil {
		t.Fatal(err)
	}
	// Well inside the idle timeout, across several health-check periods,
	// the connection must still be there.
	time.Sleep(200 * time.Millisecond)
	if conns, _ := c.PoolStats(); conns != 1 {
		t.Fatalf("healthy idle conn evicted by health checks (pool = %d)", conns)
	}
	// And the idle timeout still applies even though pings kept succeeding.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if conns, _ := c.PoolStats(); conns == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("pinged connection never idled out; health checks must not refresh the idle clock")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
