// The "load" op: migration bulk loads over the wire. A mediator copying a
// shard to a TCP source ships the rows in one idempotent clear-then-insert
// frame; servers whose engine implements source.Loader accept it via
// LoadHandler.
package wire

import (
	"context"
	"encoding/json"
	"fmt"

	"disco/internal/types"
)

// LoadClear is the wire form of a clear specification: remove everything, or
// the rows whose Attr value falls in [Lo, Hi) (tagged value encoding; a
// missing bound leaves that side open).
type LoadClear struct {
	All  bool            `json:"all,omitempty"`
	Attr string          `json:"attr,omitempty"`
	Lo   json.RawMessage `json:"lo,omitempty"`
	Hi   json.RawMessage `json:"hi,omitempty"`
}

// LoadRequest is the payload of a load frame: atomically clear the spec'd
// rows of Collection (creating it with Cols if missing) and insert Rows (the
// tagged encoding of a list of structs).
type LoadRequest struct {
	Collection string          `json:"collection"`
	Cols       []string        `json:"cols,omitempty"`
	Clear      LoadClear       `json:"clear"`
	Rows       json.RawMessage `json:"rows,omitempty"`
}

// LoadHandler is implemented by handlers whose engine accepts migration bulk
// loads. The server rejects load frames for handlers that do not.
type LoadHandler interface {
	HandleLoad(ctx context.Context, req *LoadRequest) error
}

// EncodeLoadRows encodes rows for LoadRequest.Rows.
func EncodeLoadRows(rows []types.Value) (json.RawMessage, error) {
	return types.EncodeValue(types.NewList(rows...))
}

// DecodeLoadRows decodes LoadRequest.Rows back into row values. A missing
// payload is an empty load (clear only).
func DecodeLoadRows(raw json.RawMessage) ([]types.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	v, err := types.DecodeValue(raw)
	if err != nil {
		return nil, err
	}
	l, ok := v.(*types.List)
	if !ok {
		return nil, fmt.Errorf("wire: load rows payload is %s, not list", v.Kind())
	}
	return l.Elems(), nil
}

// EncodeLoadBound encodes one clear bound; nil stays nil (open).
func EncodeLoadBound(v types.Value) (json.RawMessage, error) {
	if v == nil {
		return nil, nil
	}
	return types.EncodeValue(v)
}

// DecodeLoadBound decodes one clear bound; empty stays nil (open).
func DecodeLoadBound(raw json.RawMessage) (types.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	return types.DecodeValue(raw)
}

// Load ships a bulk load to the server and waits for its ack.
func (c *Client) Load(ctx context.Context, req *LoadRequest) error {
	resp, err := c.Do(ctx, Request{Op: "load", Load: req})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return &RemoteError{Addr: c.addr, Msg: resp.Err}
	}
	return nil
}
