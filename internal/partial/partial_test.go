package partial

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/physical"
	"disco/internal/types"
)

// --- fixture: the paper's two-source setup with switchable availability ----

func personRef(extent, repo string) algebra.ExtentRef {
	return algebra.ExtentRef{
		Extent: extent, Repo: repo, Source: extent, Iface: "Person",
		Attrs: []string{"id", "name", "salary"},
	}
}

type resolver struct{}

func (resolver) ResolvePlan(name string, star bool) (algebra.Node, error) {
	switch name {
	case "person0":
		return &algebra.Submit{Repo: "r0", Input: &algebra.Get{Ref: personRef("person0", "r0")}}, nil
	case "person1":
		return &algebra.Submit{Repo: "r1", Input: &algebra.Get{Ref: personRef("person1", "r1")}}, nil
	case "person":
		p0, _ := resolver{}.ResolvePlan("person0", false)
		p1, _ := resolver{}.ResolvePlan("person1", false)
		return &algebra.Union{Inputs: []algebra.Node{p0, p1}}, nil
	default:
		return nil, fmt.Errorf("unknown extent %q", name)
	}
}

type world struct {
	data map[string]algebra.CollectionsMap
	down map[string]bool
}

// paperWorld matches §1.2: r0 holds Mary (salary 200), r1 holds Sam (50).
func paperWorld() *world {
	mk := func(id int64, name string, sal int64) *types.Struct {
		return types.NewStruct(
			types.Field{Name: "id", Value: types.Int(id)},
			types.Field{Name: "name", Value: types.Str(name)},
			types.Field{Name: "salary", Value: types.Int(sal)},
		)
	}
	return &world{
		data: map[string]algebra.CollectionsMap{
			"r0": {"person0": types.NewBag(mk(1, "Mary", 200))},
			"r1": {"person1": types.NewBag(mk(2, "Sam", 50))},
		},
		down: map[string]bool{},
	}
}

func (w *world) runtime() *physical.Runtime {
	rt := &physical.Runtime{}
	rt.Submit = func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		if w.down[repo] {
			<-ctx.Done()
			return nil, &physical.UnavailableError{Repo: repo, Err: ctx.Err()}
		}
		src, err := algebra.ToSource(expr)
		if err != nil {
			return nil, err
		}
		in := &algebra.Interp{Cols: w.data[repo]}
		v, err := in.Run(src)
		if err != nil {
			return nil, err
		}
		return v.(*types.Bag), nil
	}
	rt.Resolver = oql.ResolverFunc(func(name string, star bool) (types.Value, error) {
		plan, err := resolver{}.ResolvePlan(name, star)
		if err != nil {
			return nil, err
		}
		p, err := physical.Build(plan, rt)
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		return p.Run(ctx)
	})
	return rt
}

// evaluate compiles, normalizes and evaluates src against the world with a
// short deadline.
func evaluate(t *testing.T, w *world, src string) *Answer {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := algebra.Compile(e, resolver{})
	if err != nil {
		t.Fatal(err)
	}
	plan = algebra.Normalize(plan)
	p, err := physical.Build(plan, w.runtime())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	ans, err := Evaluate(ctx, p)
	if err != nil {
		t.Fatalf("Evaluate(%q): %v", src, err)
	}
	return ans
}

const paperQuery = `select x.name from x in person where x.salary > 10`

// TestCompleteAnswer: with all sources up the answer is plain data.
func TestCompleteAnswer(t *testing.T) {
	w := paperWorld()
	ans := evaluate(t, w, paperQuery)
	if !ans.Complete {
		t.Fatalf("answer should be complete, got residual %s", ans.Residual)
	}
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !ans.Value.Equal(want) {
		t.Errorf("value = %s, want %s", ans.Value, want)
	}
}

// TestPaperPartialAnswer reproduces §1.3 exactly: with r0 down, the answer
// is union(select x.name from x in person0 where x.salary > 10, bag("Sam")).
func TestPaperPartialAnswer(t *testing.T) {
	w := paperWorld()
	w.down["r0"] = true
	ans := evaluate(t, w, paperQuery)
	if ans.Complete {
		t.Fatal("answer should be partial")
	}
	if len(ans.Unavailable) != 1 || ans.Unavailable[0] != "r0" {
		t.Errorf("unavailable = %v", ans.Unavailable)
	}
	got := ans.Residual.String()
	want := `union(select x.name from x in person0 where x.salary > 10, bag("Sam"))`
	if got != want {
		t.Errorf("residual:\n got  %s\n want %s", got, want)
	}
}

// TestResubmissionYieldsFullAnswer: §4's key property — once r0 recovers,
// evaluating the partial answer as a query returns the original answer.
func TestResubmissionYieldsFullAnswer(t *testing.T) {
	w := paperWorld()
	w.down["r0"] = true
	ans := evaluate(t, w, paperQuery)
	if ans.Complete {
		t.Fatal("expected partial answer")
	}
	// r0 comes back; resubmit the answer as a new query.
	w.down["r0"] = false
	resubmitted := evaluate(t, w, ans.Residual.String())
	if !resubmitted.Complete {
		t.Fatalf("resubmission should complete, got %s", resubmitted.Residual)
	}
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !resubmitted.Value.Equal(want) {
		t.Errorf("resubmitted = %s, want %s", resubmitted.Value, want)
	}
}

// TestPartialAnswerIsIdempotentWhileDown: resubmitting while r0 is still
// down returns an equivalent partial answer.
func TestPartialAnswerIsIdempotentWhileDown(t *testing.T) {
	w := paperWorld()
	w.down["r0"] = true
	first := evaluate(t, w, paperQuery)
	second := evaluate(t, w, first.Residual.String())
	if second.Complete {
		t.Fatal("should still be partial")
	}
	if first.Residual.String() != second.Residual.String() {
		t.Errorf("residuals differ:\n %s\n %s", first.Residual, second.Residual)
	}
}

func TestAllSourcesDown(t *testing.T) {
	w := paperWorld()
	w.down["r0"] = true
	w.down["r1"] = true
	ans := evaluate(t, w, paperQuery)
	if ans.Complete {
		t.Fatal("expected partial answer")
	}
	if len(ans.Unavailable) != 2 {
		t.Errorf("unavailable = %v", ans.Unavailable)
	}
	got := ans.Residual.String()
	// No data arrived: the residual is the (distributed) original query.
	want := `union(select x.name from x in person0 where x.salary > 10, select x.name from x in person1 where x.salary > 10)`
	if got != want {
		t.Errorf("residual:\n got  %s\n want %s", got, want)
	}
}

// TestPartialJoin: a join where one side is down keeps the arrived side as
// a data literal inside the residual query.
func TestPartialJoin(t *testing.T) {
	w := paperWorld()
	w.down["r0"] = true
	ans := evaluate(t, w, `select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id`)
	if ans.Complete {
		t.Fatal("expected partial answer")
	}
	got := ans.Residual.String()
	if !strings.Contains(got, "person0") {
		t.Errorf("residual should reference the unavailable extent: %s", got)
	}
	if !strings.Contains(got, `"Sam"`) {
		t.Errorf("residual should embed the arrived r1 data: %s", got)
	}
	// The residual parses and, once r0 is back, evaluates to the join's
	// true answer (empty here: ids 1 and 2 do not match).
	w.down["r0"] = false
	re := evaluate(t, w, got)
	if !re.Complete {
		t.Fatalf("resubmission incomplete: %s", re.Residual)
	}
	if re.Value.(*types.Bag).Len() != 0 {
		t.Errorf("join result = %s, want empty", re.Value)
	}
}

// TestPartialAggregate: aggregates over unavailable data stay symbolic.
func TestPartialAggregate(t *testing.T) {
	w := paperWorld()
	w.down["r1"] = true
	ans := evaluate(t, w, `sum(select x.salary from x in person)`)
	if ans.Complete {
		t.Fatal("expected partial answer")
	}
	got := ans.Residual.String()
	if !strings.HasPrefix(got, "sum(") {
		t.Errorf("residual should remain an aggregate: %s", got)
	}
	if !strings.Contains(got, "person1") {
		t.Errorf("residual should reference person1: %s", got)
	}
	// Resubmission computes the true sum.
	w.down["r1"] = false
	re := evaluate(t, w, got)
	if !re.Complete || !re.Value.Equal(types.Int(250)) {
		t.Errorf("resubmitted sum = %v (complete=%v), want 250", re.Value, re.Complete)
	}
}

// TestSourceDataChangeSemantics documents the §4 caveat: the resubmitted
// answer reflects already-fetched data for sources that were up, so if they
// changed meanwhile the combined answer mixes snapshots.
func TestSourceDataChangeSemantics(t *testing.T) {
	w := paperWorld()
	w.down["r0"] = true
	ans := evaluate(t, w, paperQuery)

	// Sam gets a raise to 5 (below the predicate threshold) while r0 is
	// down — but Sam's old value is already baked into the answer.
	w.data["r1"]["person1"] = types.NewBag(types.NewStruct(
		types.Field{Name: "id", Value: types.Int(2)},
		types.Field{Name: "name", Value: types.Str("Sam")},
		types.Field{Name: "salary", Value: types.Int(5)},
	))
	w.down["r0"] = false
	re := evaluate(t, w, ans.Residual.String())
	if !re.Complete {
		t.Fatal("expected complete answer")
	}
	// Mary from live r0, Sam from the stale embedded data.
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !re.Value.Equal(want) {
		t.Errorf("resubmitted = %s, want %s (stale Sam retained)", re.Value, want)
	}
}

func TestRealSourceErrorIsNotPartial(t *testing.T) {
	w := paperWorld()
	rt := w.runtime()
	// A submit that answers with a genuine error must fail the query.
	inner := rt.Submit
	rt.Submit = func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		if repo == "r0" {
			return nil, errors.New("schema mismatch at source")
		}
		return inner(ctx, repo, expr)
	}
	e, err := oql.ParseQuery(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := algebra.Compile(e, resolver{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := physical.Build(algebra.Normalize(plan), rt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := Evaluate(ctx, p); err == nil {
		t.Error("genuine source errors must not produce partial answers")
	}
}

func TestResidualIsParseable(t *testing.T) {
	w := paperWorld()
	w.down["r0"] = true
	queries := []string{
		paperQuery,
		`select struct(n: x.name) from x in person`,
		`select distinct x.name from x in person`,
		`count(person)`,
		`union(select x.name from x in person0, bag("Zoe"))`,
	}
	for _, src := range queries {
		ans := evaluate(t, w, src)
		if ans.Complete {
			continue
		}
		if _, err := oql.ParseQuery(ans.Residual.String()); err != nil {
			t.Errorf("%q: residual does not parse: %q: %v", src, ans.Residual, err)
		}
	}
}

func TestAnswerString(t *testing.T) {
	complete := &Answer{Complete: true, Value: types.NewBag(types.Str("Mary"))}
	if complete.String() != `bag("Mary")` {
		t.Errorf("complete answer prints %q", complete.String())
	}
	partial := &Answer{Residual: &oql.Ident{Name: "person0"}}
	if partial.String() != "person0" {
		t.Errorf("partial answer prints %q", partial.String())
	}
}

func TestNeedsRemoteOnCorrelatedExpressions(t *testing.T) {
	pred, err := oql.ParseQuery(`x.salary > count(person1)`)
	if err != nil {
		t.Fatal(err)
	}
	bind := &algebra.Bind{Var: "x", Input: &algebra.Const{Data: types.NewBag()}}
	sel := &algebra.Select{Pred: pred, Input: bind}
	if !needsRemote(sel) {
		t.Error("a predicate referencing another extent must count as remote")
	}
	localPred, err := oql.ParseQuery(`x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if needsRemote(&algebra.Select{Pred: localPred, Input: bind}) {
		t.Error("a pure predicate over bound vars is local")
	}
	// Projections with free names are remote too.
	projExpr, err := oql.ParseQuery(`struct(a: x.name, n: count(person0))`)
	if err != nil {
		t.Fatal(err)
	}
	proj := &algebra.Project{Cols: []algebra.Col{{Name: "out", Expr: projExpr}}, Input: bind}
	if !needsRemote(proj) {
		t.Error("correlated projection must count as remote")
	}
}
