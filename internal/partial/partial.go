// Package partial implements DISCO's partial evaluation semantics (paper
// §4): when some data sources fail to respond before the evaluation
// deadline, the answer to a query is another query — a closed OQL
// expression combining the data that did arrive with a residual query over
// the unavailable sources, canonically
//
//	union(select y.name from y in person0 where y.salary > 10, bag("Sam"))
//
// Resubmitting the answer once the sources recover yields the full answer
// (assuming the sources are unchanged), and the user may equally reissue
// the original query.
package partial

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/physical"
	"disco/internal/types"
)

// Answer is the outcome of evaluating a query under partial-evaluation
// semantics.
type Answer struct {
	// Complete is true when every source answered; Value then holds the
	// answer.
	Complete bool
	Value    types.Value
	// Residual is the answer-as-query when Complete is false. It is a
	// legal OQL expression in the mediator's namespace.
	Residual oql.Expr
	// Unavailable lists the repositories that did not respond, sorted.
	Unavailable []string
	// Snapshot records the data versions of the collections whose data is
	// embedded in a partial answer, keyed by repository then collection.
	// The mediator's CheckFresh compares it against current versions — the
	// §4 staleness extension. Nil when sources do not track versions.
	Snapshot map[string]map[string]int64
}

// String renders the answer: the value if complete, the residual query
// otherwise.
func (a *Answer) String() string {
	if a.Complete {
		return a.Value.String()
	}
	return a.Residual.String()
}

// Evaluate runs a physical plan and applies the §4 semantics: a complete
// answer when all sources respond, an answer-as-query when some block, and
// a plain error for genuine failures (a source answering with an error is
// a failed query, not an unavailable source).
func Evaluate(ctx context.Context, p *physical.Plan) (*Answer, error) {
	v, err := p.Run(ctx)
	if err == nil {
		return &Answer{Complete: true, Value: v}, nil
	}
	var ue *physical.UnavailableError
	if !errors.As(err, &ue) {
		return nil, err
	}
	outcomes := p.Outcomes()
	downSet := map[string]bool{}
	for sub, o := range outcomes {
		if o.Err == nil {
			continue
		}
		var unavailable *physical.UnavailableError
		if !errors.As(o.Err, &unavailable) {
			// A real failure from an available source aborts the query.
			return nil, o.Err
		}
		downSet[sub.Repo] = true
	}
	residual, err := Residual(p.Logical, outcomes)
	if err != nil {
		return nil, fmt.Errorf("partial: build residual: %w", err)
	}
	down := make([]string, 0, len(downSet))
	for repo := range downSet {
		down = append(down, repo)
	}
	sort.Strings(down)
	return &Answer{Residual: residual, Unavailable: down}, nil
}

// Residual transforms a logical plan plus the per-submit outcomes into the
// answer-as-query: successful submits become data literals, every subtree
// free of unavailable sources evaluates to data, and the remainder converts
// back to OQL (the paper's "the physical expression is transformed back
// into a high level query").
func Residual(logical algebra.Node, outcomes map[*algebra.Submit]physical.Outcome) (oql.Expr, error) {
	// Step 1: substitute available results for their submit nodes.
	substituted := algebra.Transform(logical, func(n algebra.Node) algebra.Node {
		if sub, ok := n.(*algebra.Submit); ok {
			if o, found := outcomes[sub]; found && o.Err == nil {
				return &algebra.Const{Data: o.Bag}
			}
		}
		return n
	})
	// Step 2: evaluate every maximal subtree that no longer depends on a
	// remote call.
	collapsed, err := collapse(substituted)
	if err != nil {
		return nil, err
	}
	// Step 3: canonicalize unions — merge data branches into a single
	// trailing bag, the paper's union(query, data) form.
	canonical := algebra.Transform(collapsed, mergeUnionData)
	return algebra.ToOQL(canonical)
}

// collapse rewrites bottom-up, folding remote-free subtrees to constants.
func collapse(n algebra.Node) (algebra.Node, error) {
	switch n.(type) {
	case *algebra.Submit, *algebra.Eval:
		// A remaining submit is an unavailable source: its whole subtree
		// (including the get below it) stays symbolic.
		return n, nil
	}
	// Fold only subtrees whose output is raw data: collapsing an
	// env-struct producer (bind, nest, depend) to a constant would strip
	// the variable structure its parent operators reference.
	if !needsRemote(n) && len(algebra.EnvVars(n)) == 0 {
		if _, ok := n.(*algebra.Const); ok {
			return n, nil
		}
		in := &algebra.Interp{}
		v, err := in.Run(n)
		if err != nil {
			return nil, err
		}
		b, ok := v.(*types.Bag)
		if !ok {
			// Scalar subtree (aggregate over available data): keep the
			// value as a one-element bag only if the context is a
			// collection; safer to re-express as OQL literal via Eval.
			return &algebra.Eval{Expr: &oql.Literal{Val: v}}, nil
		}
		return &algebra.Const{Data: b}, nil
	}
	children := n.Children()
	if len(children) == 0 {
		return n, nil
	}
	rebuilt := make([]algebra.Node, len(children))
	for i, c := range children {
		cc, err := collapse(c)
		if err != nil {
			return nil, err
		}
		rebuilt[i] = cc
	}
	return n.WithChildren(rebuilt), nil
}

// needsRemote reports whether evaluating the subtree could touch a data
// source: it still contains a submit, a generic eval (whose expression the
// mediator resolves against live extents), or an expression referencing
// names outside the variables its input binds (correlated subqueries).
func needsRemote(n algebra.Node) bool {
	remote := false
	algebra.Walk(n, func(m algebra.Node) {
		switch x := m.(type) {
		case *algebra.Submit, *algebra.Eval:
			remote = true
		case *algebra.Select:
			if referencesBeyondEnv(x.Pred, x.Input) {
				remote = true
			}
		case *algebra.Map:
			if referencesBeyondEnv(x.Expr, x.Input) {
				remote = true
			}
		case *algebra.Project:
			for _, c := range x.Cols {
				if referencesBeyondEnv(c.Expr, x.Input) {
					remote = true
				}
			}
		case *algebra.Join:
			if x.Pred != nil && referencesBeyondEnvJoin(x.Pred, x.L, x.R) {
				remote = true
			}
		case *algebra.Depend:
			if referencesBeyondEnv(x.Domain, x.Input) {
				remote = true
			}
		}
	})
	return remote
}

func referencesBeyondEnv(e oql.Expr, input algebra.Node) bool {
	env := map[string]bool{}
	for _, v := range algebra.EnvVars(input) {
		env[v] = true
	}
	if len(env) == 0 {
		// Raw input: element fields are source attributes.
		attrs, ok := algebra.OutputAttrs(input)
		if !ok {
			return true // unknown element shape: be conservative
		}
		for _, a := range attrs {
			env[a] = true
		}
	}
	for _, name := range oql.FreeNames(e) {
		if !env[name] {
			return true
		}
	}
	return false
}

func referencesBeyondEnvJoin(e oql.Expr, l, r algebra.Node) bool {
	env := map[string]bool{}
	for _, v := range algebra.EnvVars(l) {
		env[v] = true
	}
	for _, v := range algebra.EnvVars(r) {
		env[v] = true
	}
	for _, name := range oql.FreeNames(e) {
		if !env[name] {
			return true
		}
	}
	return false
}

// mergeUnionData merges the constant branches of a union into one trailing
// bag literal, producing the paper's canonical union(query..., data) shape.
func mergeUnionData(n algebra.Node) algebra.Node {
	u, ok := n.(*algebra.Union)
	if !ok {
		return n
	}
	var queries []algebra.Node
	var data []*types.Bag
	for _, in := range u.Inputs {
		if c, isConst := in.(*algebra.Const); isConst {
			data = append(data, c.Data)
			continue
		}
		queries = append(queries, in)
	}
	if len(data) <= 1 && len(queries)+len(data) == len(u.Inputs) && len(data) == 0 {
		return n // nothing to merge
	}
	merged := types.BagUnion(data...)
	switch {
	case len(queries) == 0:
		return &algebra.Const{Data: merged}
	case len(data) == 0:
		return n
	default:
		return &algebra.Union{Inputs: append(queries, &algebra.Const{Data: merged}), Par: u.Par}
	}
}
