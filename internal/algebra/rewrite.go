package algebra

import (
	"disco/internal/oql"
	"disco/internal/types"
)

// Capabilities answers whether the wrapper serving a repository can evaluate
// a logical expression — the optimizer-side view of the wrapper interface's
// submit-functionality call (paper §3.2). Implementations consult the
// wrapper's operator grammar.
type Capabilities interface {
	Accepts(repo string, expr Node) bool
}

// AcceptAll is a Capabilities that accepts everything; useful in tests.
type AcceptAll struct{}

// Accepts implements Capabilities.
func (AcceptAll) Accepts(string, Node) bool { return true }

// AcceptNone is a Capabilities that rejects all pushdown beyond plain get.
type AcceptNone struct{}

// Accepts implements Capabilities.
func (AcceptNone) Accepts(_ string, expr Node) bool {
	_, ok := expr.(*Get)
	return ok
}

// PushOptions selects which operator classes the optimizer may push to
// wrappers; the cost-based search enumerates combinations.
type PushOptions struct {
	Select  bool
	Project bool
	Join    bool
}

// Normalize rewrites a plan into the canonical form the pushdown rules
// expect: binds, selects and projections distribute over unions, conjunctive
// predicates split, and join predicates migrate from enclosing selects into
// the joins themselves. Normalization never needs capability checks — it is
// pure mediator-side algebra.
func Normalize(n Node) Node {
	for {
		next := Transform(n, normalizeOnce)
		if Equal(next, n) {
			return next
		}
		n = next
	}
}

func normalizeOnce(n Node) Node {
	switch x := n.(type) {
	case *Union:
		// union of unions flattens; empty constant branches vanish;
		// single-input union unwraps. A nested union of the other flavor
		// (Par vs ordered) stays intact: flattening a partition fan-out into
		// an ordered union would lose its parallel merge.
		flat := make([]Node, 0, len(x.Inputs))
		changed := false
		for _, in := range x.Inputs {
			switch c := in.(type) {
			case *Union:
				if c.Par != x.Par {
					flat = append(flat, in)
					continue
				}
				flat = append(flat, c.Inputs...)
				changed = true
			case *Const:
				if c.Data.Len() == 0 {
					changed = true
					continue
				}
				flat = append(flat, in)
			default:
				flat = append(flat, in)
			}
		}
		switch {
		case len(flat) == 0:
			return emptyConst()
		case len(flat) == 1:
			return flat[0]
		case changed:
			return &Union{Inputs: flat, Par: x.Par}
		default:
			return x
		}
	case *Bind:
		if isEmptyConst(x.Input) {
			return emptyConst()
		}
		if u, ok := x.Input.(*Union); ok {
			out := make([]Node, len(u.Inputs))
			for i, in := range u.Inputs {
				out[i] = &Bind{Var: x.Var, Input: in}
			}
			return &Union{Inputs: out, Par: u.Par}
		}
		if d, ok := x.Input.(*Distinct); ok {
			// Binding wraps each element in a one-field struct — injective —
			// so dedup-then-wrap equals wrap-then-dedup. Pulling the distinct
			// outward lets the bind keep distributing into a dual-read union
			// so each placement branch stays a pushable submit.
			return &Distinct{Input: &Bind{Var: x.Var, Input: d.Input}}
		}
		return x
	case *Select:
		return normalizeSelect(x)
	case *Map:
		if isEmptyConst(x.Input) {
			return emptyConst()
		}
		if u, ok := x.Input.(*Union); ok {
			out := make([]Node, len(u.Inputs))
			for i, in := range u.Inputs {
				out[i] = &Map{Expr: x.Expr, Input: in}
			}
			return &Union{Inputs: out, Par: u.Par}
		}
		return x
	case *Project:
		if isEmptyConst(x.Input) {
			return emptyConst()
		}
		if u, ok := x.Input.(*Union); ok {
			out := make([]Node, len(u.Inputs))
			for i, in := range u.Inputs {
				out[i] = &Project{Cols: x.Cols, Input: in}
			}
			return &Union{Inputs: out, Par: u.Par}
		}
		return x
	case *Join:
		// A join with a provably empty side is empty.
		if isEmptyConst(x.L) || isEmptyConst(x.R) {
			return emptyConst()
		}
		return x
	case *Distinct:
		if isEmptyConst(x.Input) {
			return emptyConst()
		}
		if d, ok := x.Input.(*Distinct); ok {
			// Dedup is idempotent; stacked distincts (a distinct query over a
			// dual-read union) collapse to one.
			return d
		}
		return x
	case *Flatten:
		if isEmptyConst(x.Input) {
			return emptyConst()
		}
		return x
	default:
		return n
	}
}

func emptyConst() Node { return &Const{Data: types.NewBag()} }

func isEmptyConst(n Node) bool {
	c, ok := n.(*Const)
	return ok && c.Data.Len() == 0
}

func normalizeSelect(x *Select) Node {
	// Constant predicates: true vanishes, false empties the input.
	if lit, ok := x.Pred.(*oql.Literal); ok {
		if b, ok := lit.Val.(types.Bool); ok {
			if b {
				return x.Input
			}
			return emptyConst()
		}
	}
	// Selection over an empty input is empty.
	if isEmptyConst(x.Input) {
		return emptyConst()
	}
	// Conjunctions split into stacked selects so conjuncts push
	// independently.
	if bin, ok := x.Pred.(*oql.Binary); ok && bin.Op == oql.OpAnd {
		return &Select{Pred: bin.L, Input: &Select{Pred: bin.R, Input: x.Input}}
	}
	switch in := x.Input.(type) {
	case *Union:
		out := make([]Node, len(in.Inputs))
		for i, c := range in.Inputs {
			out[i] = &Select{Pred: x.Pred, Input: c}
		}
		return &Union{Inputs: out, Par: in.Par}
	case *Distinct:
		// Filtering commutes with dedup (a predicate never distinguishes
		// duplicates), so the select sinks under a dual-read distinct and
		// keeps pushing toward the per-placement submits. Map and Project do
		// NOT sink: projecting before a dedup could collapse rows the dedup
		// must keep apart.
		return &Distinct{Input: &Select{Pred: x.Pred, Input: in.Input}}
	case *Select:
		// Canonical stacking order (by predicate text) so equal plans
		// normalize identically.
		if x.Pred.String() < in.Pred.String() {
			return &Select{Pred: in.Pred, Input: &Select{Pred: x.Pred, Input: in.Input}}
		}
		return x
	case *Join:
		vars := toSet(referencedVars(x.Pred))
		lVars, rVars := toSet(envVars(in.L)), toSet(envVars(in.R))
		switch {
		case len(lVars) == 0 || len(rVars) == 0:
			return x // raw join: leave alone
		case subset(vars, lVars):
			return &Join{L: &Select{Pred: x.Pred, Input: in.L}, R: in.R, Pred: in.Pred}
		case subset(vars, rVars):
			return &Join{L: in.L, R: &Select{Pred: x.Pred, Input: in.R}, Pred: in.Pred}
		default:
			// References both sides: merge into the join predicate.
			pred := x.Pred
			if in.Pred != nil {
				pred = &oql.Binary{Op: oql.OpAnd, L: in.Pred, R: pred}
			}
			return &Join{L: in.L, R: in.R, Pred: pred}
		}
	default:
		return x
	}
}

// Push greedily applies the selected pushdown rules everywhere the wrapper
// capabilities accept the resulting submit expression. The input should be
// normalized first.
func Push(n Node, caps Capabilities, opt PushOptions) Node {
	for {
		next := Transform(n, func(m Node) Node { return pushOnce(m, caps, opt) })
		if Equal(next, n) {
			return next
		}
		n = next
	}
}

func pushOnce(n Node, caps Capabilities, opt PushOptions) Node {
	switch x := n.(type) {
	case *Select:
		if opt.Select {
			if out, ok := pushSelect(x, caps); ok {
				return out
			}
		}
	case *Map:
		if opt.Project {
			if out, ok := pruneColumns(x.Expr, nil, x.Input, caps); ok {
				return &Map{Expr: x.Expr, Input: out}
			}
		}
	case *Project:
		if opt.Project {
			exprs := make([]oql.Expr, len(x.Cols))
			for i, c := range x.Cols {
				exprs[i] = c.Expr
			}
			if out, ok := pruneColumns(nil, exprs, x.Input, caps); ok {
				return &Project{Cols: x.Cols, Input: out}
			}
		}
	case *Join:
		if opt.Join {
			if out, ok := pushJoin(x, caps); ok {
				return out
			}
		}
	}
	return n
}

// pushSelect moves select(pred, bind(x, submit(r, inner))) into the submit:
// bind(x, submit(r, select(pred', inner))). It also pushes through Nest for
// predicates over nested join results.
func pushSelect(x *Select, caps Capabilities) (Node, bool) {
	switch in := x.Input.(type) {
	case *Bind:
		sub, ok := in.Input.(*Submit)
		if !ok {
			return nil, false
		}
		attrs, ok := OutputAttrs(sub.Input)
		if !ok {
			return nil, false
		}
		pred, ok := stripVars(x.Pred, map[string][]string{in.Var: attrs})
		if !ok {
			return nil, false
		}
		pushed := &Select{Pred: pred, Input: sub.Input}
		if !caps.Accepts(sub.Repo, pushed) {
			return nil, false
		}
		return &Bind{Var: in.Var, Input: &Submit{Repo: sub.Repo, Input: pushed}}, true
	case *Nest:
		sub, ok := in.Input.(*Submit)
		if !ok {
			return nil, false
		}
		groups := make(map[string][]string, len(in.Groups))
		for _, g := range in.Groups {
			groups[g.Var] = g.Attrs
		}
		pred, ok := stripVars(x.Pred, groups)
		if !ok {
			return nil, false
		}
		pushed := &Select{Pred: pred, Input: sub.Input}
		if !caps.Accepts(sub.Repo, pushed) {
			return nil, false
		}
		return &Nest{Groups: in.Groups, Input: &Submit{Repo: sub.Repo, Input: pushed}}, true
	default:
		return nil, false
	}
}

// pruneColumns pushes a project of only the attributes the final projection
// uses into the submit feeding a bind: map(e, bind(x, submit(r, inner)))
// becomes map(e, bind(x, submit(r, project(used, inner)))).
func pruneColumns(single oql.Expr, several []oql.Expr, input Node, caps Capabilities) (Node, bool) {
	bind, ok := input.(*Bind)
	if !ok {
		return nil, false
	}
	sub, ok := bind.Input.(*Submit)
	if !ok {
		return nil, false
	}
	if _, already := sub.Input.(*Project); already {
		return nil, false
	}
	attrs, ok := OutputAttrs(sub.Input)
	if !ok {
		return nil, false
	}
	exprs := several
	if single != nil {
		exprs = []oql.Expr{single}
	}
	used, ok := attrsUsed(exprs, bind.Var, attrs)
	if !ok || len(used) == 0 || len(used) >= len(attrs) {
		return nil, false
	}
	cols := make([]Col, 0, len(used))
	for _, a := range used {
		cols = append(cols, Col{Name: a, Expr: &oql.Ident{Name: a}})
	}
	pushed := &Project{Cols: cols, Input: sub.Input}
	if !caps.Accepts(sub.Repo, pushed) {
		return nil, false
	}
	return &Bind{Var: bind.Var, Input: &Submit{Repo: sub.Repo, Input: pushed}}, true
}

// pushJoin rewrites join(bind(x, submit(r, A)), bind(y, submit(r, B)), p)
// into nest([x, y], submit(r, join(A, B, p'))) when both sides live at the
// same repository, the wrapper accepts joins, and the attribute sets are
// disjoint (paper §3.2's employee/manager example).
func pushJoin(x *Join, caps Capabilities) (Node, bool) {
	lb, ok := x.L.(*Bind)
	if !ok {
		return nil, false
	}
	rb, ok := x.R.(*Bind)
	if !ok {
		return nil, false
	}
	ls, ok := lb.Input.(*Submit)
	if !ok {
		return nil, false
	}
	rs, ok := rb.Input.(*Submit)
	if !ok {
		return nil, false
	}
	if ls.Repo != rs.Repo {
		return nil, false
	}
	lAttrs, ok := OutputAttrs(ls.Input)
	if !ok {
		return nil, false
	}
	rAttrs, ok := OutputAttrs(rs.Input)
	if !ok {
		return nil, false
	}
	if overlap(lAttrs, rAttrs) {
		return nil, false
	}
	var pred oql.Expr
	if x.Pred != nil {
		pred, ok = stripVars(x.Pred, map[string][]string{lb.Var: lAttrs, rb.Var: rAttrs})
		if !ok {
			return nil, false
		}
	}
	pushed := &Join{L: ls.Input, R: rs.Input, Pred: pred}
	if !caps.Accepts(ls.Repo, pushed) {
		return nil, false
	}
	return &Nest{
		Groups: []NestGroup{{Var: lb.Var, Attrs: lAttrs}, {Var: rb.Var, Attrs: rAttrs}},
		Input:  &Submit{Repo: ls.Repo, Input: pushed},
	}, true
}

// referencedVars lists base variables referenced by an expression: both
// bare identifiers and path bases.
func referencedVars(e oql.Expr) []string {
	return oql.FreeNames(e)
}

// stripVars rewrites a mediator-side predicate into the source namespace:
// x.attr becomes attr. It fails (ok=false) when the expression uses
// anything a wrapper cannot see: whole-tuple variables, unknown attributes,
// nested queries, calls, or multi-step paths.
func stripVars(e oql.Expr, groups map[string][]string) (oql.Expr, bool) {
	attrOf := func(v, a string) bool {
		for _, attr := range groups[v] {
			if attr == a {
				return true
			}
		}
		return false
	}
	var walk func(e oql.Expr) (oql.Expr, bool)
	walk = func(e oql.Expr) (oql.Expr, bool) {
		switch x := e.(type) {
		case *oql.Literal:
			return x, true
		case *oql.Path:
			base, ok := x.Base.(*oql.Ident)
			if !ok || base.Star {
				return nil, false
			}
			if _, isVar := groups[base.Name]; !isVar || !attrOf(base.Name, x.Field) {
				return nil, false
			}
			return &oql.Ident{Name: x.Field}, true
		case *oql.Unary:
			inner, ok := walk(x.X)
			if !ok {
				return nil, false
			}
			return &oql.Unary{Op: x.Op, X: inner}, true
		case *oql.Binary:
			l, ok := walk(x.L)
			if !ok {
				return nil, false
			}
			r, ok := walk(x.R)
			if !ok {
				return nil, false
			}
			return &oql.Binary{Op: x.Op, L: l, R: r}, true
		case *oql.Call:
			// contains(x.attr, "text") pushes as a source-side substring
			// predicate; no other call does.
			if x.Fn != "contains" || len(x.Args) != 2 {
				return nil, false
			}
			l, ok := walk(x.Args[0])
			if !ok {
				return nil, false
			}
			r, ok := walk(x.Args[1])
			if !ok {
				return nil, false
			}
			return &oql.Call{Fn: "contains", Args: []oql.Expr{l, r}}, true
		default:
			// Bare idents, selects, struct ctors: not pushable.
			return nil, false
		}
	}
	return walk(e)
}

// attrsUsed collects which attributes of var v the expressions touch. It
// reports ok=false when v is used other than through single-step paths
// (e.g. projected whole), which makes column pruning unsound.
func attrsUsed(exprs []oql.Expr, v string, attrs []string) ([]string, bool) {
	attrSet := toSet(attrs)
	used := map[string]bool{}
	ok := true
	var walk func(e oql.Expr, bound map[string]bool)
	walk = func(e oql.Expr, bound map[string]bool) {
		switch x := e.(type) {
		case *oql.Ident:
			if x.Name == v && !bound[v] {
				ok = false // whole-tuple use
			}
		case *oql.Path:
			if base, isIdent := x.Base.(*oql.Ident); isIdent && base.Name == v && !bound[v] {
				if !attrSet[x.Field] {
					ok = false
				}
				used[x.Field] = true
				return
			}
			walk(x.Base, bound)
		case *oql.Unary:
			walk(x.X, bound)
		case *oql.Binary:
			walk(x.L, bound)
			walk(x.R, bound)
		case *oql.StructCtor:
			for _, f := range x.Fields {
				walk(f.Expr, bound)
			}
		case *oql.Call:
			for _, a := range x.Args {
				walk(a, bound)
			}
		case *oql.Select:
			inner := map[string]bool{}
			for k := range bound {
				inner[k] = true
			}
			for _, b := range x.From {
				walk(b.Domain, inner)
				inner[b.Var] = true
			}
			walk(x.Proj, inner)
			if x.Where != nil {
				walk(x.Where, inner)
			}
		}
	}
	for _, e := range exprs {
		walk(e, map[string]bool{})
	}
	if !ok {
		return nil, false
	}
	// Preserve the extent's attribute order.
	var out []string
	for _, a := range attrs {
		if used[a] {
			out = append(out, a)
		}
	}
	return out, true
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func overlap(a, b []string) bool {
	set := toSet(a)
	for _, x := range b {
		if set[x] {
			return true
		}
	}
	return false
}
