// Package algebra implements DISCO's logical algebra (paper §3.1-3.2): the
// operators get, select (filter), project, join, union, flatten and the
// submit operator that locates a subexpression at a data source. Plans
// compile from OQL, rewrite under capability-checked transformation rules,
// and convert back to OQL — the property partial evaluation relies on
// (§4: "each logical operation has a corresponding OQL expression").
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"disco/internal/oql"
	"disco/internal/types"
)

// Node is a logical operator. Nodes form immutable trees; rewrites build new
// trees via WithChildren.
type Node interface {
	// String renders the node in the paper's prefix syntax, e.g.
	// project(name, get(person0)).
	String() string
	// Children returns the input operators in order.
	Children() []Node
	// WithChildren returns a copy of the node with the inputs replaced.
	// The slice length must match Children.
	WithChildren(children []Node) Node
}

// ExtentRef identifies one data-source extent as registered in the catalog.
// Attribute names and predicates in plans always use the mediator namespace;
// AttrMap carries the local transformation map (paper §2.2.2) that exec
// applies when translating the expression for the wrapper.
type ExtentRef struct {
	// Extent is the extent name in the mediator (e.g. person0).
	Extent string
	// Repo is the repository object name (e.g. r0).
	Repo string
	// Source is the collection name inside the data source, after applying
	// the local transformation map. Equal to Extent when no map is set.
	Source string
	// Iface is the mediator interface name of the extent's objects.
	Iface string
	// Attrs lists the mediator-side attribute names of Iface.
	Attrs []string
	// AttrMap maps mediator attribute names to source attribute names for
	// attributes renamed by the local transformation map.
	AttrMap map[string]string
	// Partition is set when this ref is one shard of a horizontally
	// partitioned extent: the repository name of the shard. Partitioned gets
	// render as extent@repo so a residual query can name exactly the shards
	// that did not answer.
	Partition string
	// Replicas lists every repository holding a copy of this shard's data,
	// primary first (the declared "at r0|r0b" replica group). Empty or
	// single-element when the shard is unreplicated. Like PartSpec it does
	// not render into the plan string: it is placement metadata the runtime
	// uses to fail a submit over to a replica when the primary does not
	// answer.
	Replicas []string
	// PartSpec is the extent's declared partitioning scheme (nil when none).
	// It does not render into the plan string: the (Extent, Partition) pair
	// already identifies the shard, and the scheme is catalog metadata.
	PartSpec *PartitionSpec
	// PartIndex and PartCount locate this shard within the scheme: the
	// shard's position in the declared repository list and the total number
	// of partitions. Meaningful only when PartSpec is set.
	PartIndex, PartCount int
	// Standby marks the new-placement branch of a dual-read during live
	// migration: the copy at the destination repository before cutover makes
	// it authoritative. Like Replicas it does not render into the plan
	// string. The runtime treats an unavailable standby as an empty answer
	// rather than a residual — the old placement still holds every row, so
	// a dead new copy degrades the migration, not the query.
	Standby bool
}

// QualifiedName is the OQL-level name of the extent this ref reads: the
// plain extent name, or extent@repo for one shard of a partitioned extent.
func (r ExtentRef) QualifiedName() string {
	if r.Partition == "" {
		return r.Extent
	}
	return r.Extent + "@" + r.Partition
}

// SourceAttr translates a mediator attribute name to the source namespace.
func (r ExtentRef) SourceAttr(name string) string {
	if s, ok := r.AttrMap[name]; ok {
		return s
	}
	return name
}

// Get retrieves all objects of one data-source extent (the paper's
// get(person0)). It is the leaf of source-side expressions.
type Get struct {
	Ref ExtentRef
}

// String implements Node.
func (g *Get) String() string { return "get(" + g.Ref.QualifiedName() + ")" }

// Children implements Node.
func (*Get) Children() []Node { return nil }

// WithChildren implements Node.
func (g *Get) WithChildren(children []Node) Node {
	mustArity("get", children, 0)
	return g
}

// Const is literal data embedded in a plan: bag literals in queries and the
// data part of partial answers.
type Const struct {
	Data *types.Bag
}

// String implements Node.
func (c *Const) String() string { return "const(" + c.Data.String() + ")" }

// Children implements Node.
func (*Const) Children() []Node { return nil }

// WithChildren implements Node.
func (c *Const) WithChildren(children []Node) Node {
	mustArity("const", children, 0)
	return c
}

// Union is n-ary bag union (duplicates preserved). A Par union is the
// fan-out over the shards of one horizontally partitioned extent: the
// physical layer executes its inputs with a scatter-gather operator that
// merges shard streams as they arrive instead of draining them in order.
type Union struct {
	Inputs []Node
	// Par marks a partition fan-out whose branches may merge in arrival
	// order (bag semantics make the reordering sound).
	Par bool
}

// String implements Node.
func (u *Union) String() string {
	parts := make([]string, len(u.Inputs))
	for i, in := range u.Inputs {
		parts[i] = in.String()
	}
	op := "union"
	if u.Par {
		op = "punion"
	}
	return op + "(" + strings.Join(parts, ", ") + ")"
}

// Children implements Node.
func (u *Union) Children() []Node { return u.Inputs }

// WithChildren implements Node.
func (u *Union) WithChildren(children []Node) Node {
	mustArity("union", children, len(u.Inputs))
	return &Union{Inputs: children, Par: u.Par}
}

// Submit locates the evaluation of Input at a data source (paper §3.2).
// It has remote-procedure-call semantics: the input expression travels to
// the wrapper, data comes back. It cannot accept data from another source,
// which is why semijoins are inexpressible (a restriction the paper states).
type Submit struct {
	Repo  string
	Input Node
}

// String implements Node.
func (s *Submit) String() string {
	return "submit(" + s.Repo + ", " + s.Input.String() + ")"
}

// Children implements Node.
func (s *Submit) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Submit) WithChildren(children []Node) Node {
	mustArity("submit", children, 1)
	return &Submit{Repo: s.Repo, Input: children[0]}
}

// Bind wraps each element e of the input into a one-field struct {Var: e},
// introducing the OQL variable naming that downstream predicates use.
type Bind struct {
	Var   string
	Input Node
}

// String implements Node.
func (b *Bind) String() string {
	return "bind(" + b.Var + ", " + b.Input.String() + ")"
}

// Children implements Node.
func (b *Bind) Children() []Node { return []Node{b.Input} }

// WithChildren implements Node.
func (b *Bind) WithChildren(children []Node) Node {
	mustArity("bind", children, 1)
	return &Bind{Var: b.Var, Input: children[0]}
}

// Select filters elements by a predicate (the paper's select operator; the
// runtime name Filter avoids clashing with OQL select). The predicate is an
// OQL expression evaluated with the element's struct fields bound as
// variables: source-side that means attribute names (salary > 10),
// mediator-side the bind variables (x.salary > 10).
type Select struct {
	Pred  oql.Expr
	Input Node
}

// String implements Node.
func (s *Select) String() string {
	return "select(" + s.Pred.String() + ", " + s.Input.String() + ")"
}

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Select) WithChildren(children []Node) Node {
	mustArity("select", children, 1)
	return &Select{Pred: s.Pred, Input: children[0]}
}

// Col is one output column of a Project.
type Col struct {
	Name string
	Expr oql.Expr
}

// Project maps each element to a struct of named columns (the paper's
// project operator).
type Project struct {
	Cols  []Col
	Input Node
}

// String implements Node.
func (p *Project) String() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		if id, ok := c.Expr.(*oql.Ident); ok && id.Name == c.Name && !id.Star {
			parts[i] = c.Name
		} else {
			parts[i] = c.Name + ": " + c.Expr.String()
		}
	}
	return "project([" + strings.Join(parts, ", ") + "], " + p.Input.String() + ")"
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// WithChildren implements Node.
func (p *Project) WithChildren(children []Node) Node {
	mustArity("project", children, 1)
	return &Project{Cols: p.Cols, Input: children[0]}
}

// Map evaluates an arbitrary OQL expression per element (the final
// projection step when the result is not a struct, e.g. select x.name).
type Map struct {
	Expr  oql.Expr
	Input Node
}

// String implements Node.
func (m *Map) String() string {
	return "map(" + m.Expr.String() + ", " + m.Input.String() + ")"
}

// Children implements Node.
func (m *Map) Children() []Node { return []Node{m.Input} }

// WithChildren implements Node.
func (m *Map) WithChildren(children []Node) Node {
	mustArity("map", children, 1)
	return &Map{Expr: m.Expr, Input: children[0]}
}

// Join combines two inputs of struct elements into merged structs, keeping
// pairs that satisfy Pred. Field sets of the two sides must be disjoint.
type Join struct {
	L, R Node
	Pred oql.Expr // nil means cross product
}

// String implements Node.
func (j *Join) String() string {
	pred := "true"
	if j.Pred != nil {
		pred = j.Pred.String()
	}
	return "join(" + j.L.String() + ", " + j.R.String() + ", " + pred + ")"
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

// WithChildren implements Node.
func (j *Join) WithChildren(children []Node) Node {
	mustArity("join", children, 2)
	return &Join{L: children[0], R: children[1], Pred: j.Pred}
}

// NestGroup names one variable of a Nest and the attributes it owns.
type NestGroup struct {
	Var   string
	Attrs []string
}

// Nest re-nests flat joined tuples into per-variable structs: a flat tuple
// {a, b, c, d} with groups x→{a,b}, y→{c,d} becomes
// {x: struct(a, b), y: struct(c, d)}. It is the mediator-side complement of
// join pushdown.
type Nest struct {
	Groups []NestGroup
	Input  Node
}

// String implements Node.
func (n *Nest) String() string {
	parts := make([]string, len(n.Groups))
	for i, g := range n.Groups {
		parts[i] = g.Var + ": {" + strings.Join(g.Attrs, ", ") + "}"
	}
	return "nest([" + strings.Join(parts, ", ") + "], " + n.Input.String() + ")"
}

// Children implements Node.
func (n *Nest) Children() []Node { return []Node{n.Input} }

// WithChildren implements Node.
func (n *Nest) WithChildren(children []Node) Node {
	mustArity("nest", children, 1)
	return &Nest{Groups: n.Groups, Input: children[0]}
}

// Depend binds Var to the elements of a domain expression evaluated per
// input element (a dependent from-clause binding such as m in g.members).
type Depend struct {
	Var    string
	Domain oql.Expr
	Input  Node
}

// String implements Node.
func (d *Depend) String() string {
	return "depend(" + d.Var + ", " + d.Domain.String() + ", " + d.Input.String() + ")"
}

// Children implements Node.
func (d *Depend) Children() []Node { return []Node{d.Input} }

// WithChildren implements Node.
func (d *Depend) WithChildren(children []Node) Node {
	mustArity("depend", children, 1)
	return &Depend{Var: d.Var, Domain: d.Domain, Input: children[0]}
}

// Distinct removes duplicate elements.
type Distinct struct {
	Input Node
}

// String implements Node.
func (d *Distinct) String() string { return "distinct(" + d.Input.String() + ")" }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

// WithChildren implements Node.
func (d *Distinct) WithChildren(children []Node) Node {
	mustArity("distinct", children, 1)
	return &Distinct{Input: children[0]}
}

// Flatten concatenates a bag of collections.
type Flatten struct {
	Input Node
}

// String implements Node.
func (f *Flatten) String() string { return "flatten(" + f.Input.String() + ")" }

// Children implements Node.
func (f *Flatten) Children() []Node { return []Node{f.Input} }

// WithChildren implements Node.
func (f *Flatten) WithChildren(children []Node) Node {
	mustArity("flatten", children, 1)
	return &Flatten{Input: children[0]}
}

// Agg applies an aggregate function (count, sum, min, max, avg, exists,
// element) to the whole input, producing a single-element bag holding the
// scalar.
type Agg struct {
	Fn    string
	Input Node
}

// String implements Node.
func (a *Agg) String() string { return a.Fn + "(" + a.Input.String() + ")" }

// Children implements Node.
func (a *Agg) Children() []Node { return []Node{a.Input} }

// WithChildren implements Node.
func (a *Agg) WithChildren(children []Node) Node {
	mustArity(a.Fn, children, 1)
	return &Agg{Fn: a.Fn, Input: children[0]}
}

// Eval is the generic fallback: evaluate an arbitrary OQL expression with
// the reference evaluator against the mediator's name resolver. Plans never
// push through it; it exists so every OQL query is executable even when it
// falls outside the planned fragment.
type Eval struct {
	Expr oql.Expr
}

// String implements Node.
func (e *Eval) String() string { return "eval(" + e.Expr.String() + ")" }

// Children implements Node.
func (*Eval) Children() []Node { return nil }

// WithChildren implements Node.
func (e *Eval) WithChildren(children []Node) Node {
	mustArity("eval", children, 0)
	return e
}

// Compile-time conformance checks.
var (
	_ Node = (*Get)(nil)
	_ Node = (*Const)(nil)
	_ Node = (*Union)(nil)
	_ Node = (*Submit)(nil)
	_ Node = (*Bind)(nil)
	_ Node = (*Select)(nil)
	_ Node = (*Project)(nil)
	_ Node = (*Map)(nil)
	_ Node = (*Join)(nil)
	_ Node = (*Nest)(nil)
	_ Node = (*Depend)(nil)
	_ Node = (*Distinct)(nil)
	_ Node = (*Flatten)(nil)
	_ Node = (*Agg)(nil)
	_ Node = (*Eval)(nil)
)

func mustArity(op string, children []Node, n int) {
	if len(children) != n {
		panic(fmt.Sprintf("algebra: %s takes %d children, got %d", op, n, len(children)))
	}
}

// Equal reports whether two plans are structurally identical. The canonical
// string rendering carries every semantically relevant detail, so string
// comparison is the definition.
func Equal(a, b Node) bool { return a.String() == b.String() }

// Transform applies f bottom-up over the plan, rebuilding nodes whose
// children changed.
func Transform(n Node, f func(Node) Node) Node {
	children := n.Children()
	if len(children) > 0 {
		rebuilt := make([]Node, len(children))
		changed := false
		for i, c := range children {
			rebuilt[i] = Transform(c, f)
			if rebuilt[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(rebuilt)
		}
	}
	return f(n)
}

// Walk visits every node of the plan top-down.
func Walk(n Node, visit func(Node)) {
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// Submits returns all submit nodes in the plan in visit order.
func Submits(n Node) []*Submit {
	var out []*Submit
	Walk(n, func(m Node) {
		if s, ok := m.(*Submit); ok {
			out = append(out, s)
		}
	})
	return out
}

// OutputAttrs computes the attribute names of the structs a source-side
// node produces, in the mediator namespace. It reports ok=false for nodes
// whose output is not a flat struct relation (e.g. Map).
func OutputAttrs(n Node) ([]string, bool) {
	switch x := n.(type) {
	case *Get:
		return append([]string(nil), x.Ref.Attrs...), true
	case *Const:
		// Uniform struct data exposes its field names (partial answers
		// substitute constants for submits, so this keeps residual
		// rendering working above them).
		if x.Data.Len() == 0 {
			return nil, false
		}
		first, ok := x.Data.At(0).(*types.Struct)
		if !ok {
			return nil, false
		}
		names := first.FieldNames()
		for _, e := range x.Data.Elems()[1:] {
			st, ok := e.(*types.Struct)
			if !ok || !sameStrings(names, st.FieldNames()) {
				return nil, false
			}
		}
		return names, true
	case *Select:
		return OutputAttrs(x.Input)
	case *Distinct:
		return OutputAttrs(x.Input)
	case *Project:
		attrs := make([]string, len(x.Cols))
		for i, c := range x.Cols {
			attrs[i] = c.Name
		}
		return attrs, true
	case *Join:
		l, ok := OutputAttrs(x.L)
		if !ok {
			return nil, false
		}
		r, ok := OutputAttrs(x.R)
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	case *Union:
		if len(x.Inputs) == 0 {
			return nil, false
		}
		first, ok := OutputAttrs(x.Inputs[0])
		if !ok {
			return nil, false
		}
		for _, in := range x.Inputs[1:] {
			rest, ok := OutputAttrs(in)
			if !ok || !sameStrings(first, rest) {
				return nil, false
			}
		}
		return first, true
	case *Submit:
		return OutputAttrs(x.Input)
	default:
		return nil, false
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
