package algebra

import (
	"fmt"

	"disco/internal/oql"
)

// ToOQL converts a logical plan back into an OQL expression over mediator
// names. This realizes the paper's §4 requirement that "each logical
// operation has a corresponding OQL expression": partial evaluation turns
// the unevaluated remainder of a physical plan into a high-level query by
// way of this function.
//
// The conversion is semantics-preserving: evaluating the returned expression
// with the mediator's resolver yields the same bag as executing the plan
// (a property the tests check).
func ToOQL(n Node) (oql.Expr, error) {
	switch x := n.(type) {
	case *Get:
		// Partitioned gets render as extent@repo, so a residual query names
		// exactly the shards it still has to read.
		return &oql.Ident{Name: x.Ref.QualifiedName()}, nil
	case *Const:
		return &oql.Literal{Val: x.Data}, nil
	case *Eval:
		return x.Expr, nil
	case *Submit:
		// Location is transparent in OQL: the repository is recoverable
		// from the extent names referenced inside.
		return ToOQL(x.Input)
	case *Union:
		args := make([]oql.Expr, 0, len(x.Inputs))
		for _, in := range x.Inputs {
			e, err := ToOQL(in)
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		}
		return &oql.Call{Fn: "union", Args: args}, nil
	case *Flatten:
		in, err := ToOQL(x.Input)
		if err != nil {
			return nil, err
		}
		return &oql.Call{Fn: "flatten", Args: []oql.Expr{in}}, nil
	case *Agg:
		in, err := ToOQL(x.Input)
		if err != nil {
			return nil, err
		}
		return &oql.Call{Fn: x.Fn, Args: []oql.Expr{in}}, nil
	case *Distinct:
		in, err := ToOQL(x.Input)
		if err != nil {
			return nil, err
		}
		return &oql.Call{Fn: "distinct", Args: []oql.Expr{in}}, nil
	case *Map:
		return selectOQL(x.Expr, x.Input)
	case *Project:
		ctor := &oql.StructCtor{Fields: make([]oql.StructField, 0, len(x.Cols))}
		for _, c := range x.Cols {
			ctor.Fields = append(ctor.Fields, oql.StructField{Name: c.Name, Expr: c.Expr})
		}
		return selectOQL(ctor, x.Input)
	case *Select:
		return filterOQL(x)
	case *Bind:
		// A bare bind renames elements into {var: elem} structs.
		in, err := ToOQL(x.Input)
		if err != nil {
			return nil, err
		}
		v := freshVar(x.Var)
		ctor := &oql.StructCtor{Fields: []oql.StructField{{Name: x.Var, Expr: &oql.Ident{Name: v}}}}
		return &oql.Select{Proj: ctor, From: []oql.Binding{{Var: v, Domain: in}}}, nil
	case *Join:
		return joinOQL(x)
	case *Nest:
		return nestOQL(x)
	case *Depend:
		binds, where, err := collectEnv(x)
		if err != nil {
			return nil, err
		}
		// Standalone depend produces env-structs of all bound vars.
		vars := envVars(x)
		ctor := &oql.StructCtor{}
		for _, v := range vars {
			ctor.Fields = append(ctor.Fields, oql.StructField{Name: v, Expr: &oql.Ident{Name: v}})
		}
		return &oql.Select{Proj: ctor, From: binds, Where: where}, nil
	default:
		return nil, fmt.Errorf("algebra: no OQL form for %T", n)
	}
}

// selectOQL builds "select proj from ... where ..." for a projection over
// an input that produces env-structs, or falls back to a fresh-variable
// select for raw inputs.
func selectOQL(proj oql.Expr, input Node) (oql.Expr, error) {
	if binds, where, err := collectEnv(input); err == nil {
		return &oql.Select{Proj: proj, From: binds, Where: where}, nil
	}
	// Raw input (e.g. a projected submit result): elements are structs whose
	// fields the projection references as free attribute names or, for
	// env-shaped elements, as variables. Rewrite both to v.name paths.
	in, err := ToOQL(input)
	if err != nil {
		return nil, err
	}
	names, err := elementFields(input)
	if err != nil {
		return nil, err
	}
	v := freshVar("")
	return &oql.Select{
		Proj: substFree(proj, names, v),
		From: []oql.Binding{{Var: v, Domain: in}},
	}, nil
}

// filterOQL renders select(pred, input).
func filterOQL(x *Select) (oql.Expr, error) {
	if vars := envVars(x.Input); len(vars) > 0 {
		binds, where, err := collectEnv(x)
		if err != nil {
			return nil, err
		}
		// The elements are env-structs; reproduce them.
		ctor := &oql.StructCtor{}
		for _, v := range vars {
			ctor.Fields = append(ctor.Fields, oql.StructField{Name: v, Expr: &oql.Ident{Name: v}})
		}
		return &oql.Select{Proj: ctor, From: binds, Where: where}, nil
	}
	in, err := ToOQL(x.Input)
	if err != nil {
		return nil, err
	}
	names, err := elementFields(x.Input)
	if err != nil {
		return nil, err
	}
	v := freshVar("")
	return &oql.Select{
		Proj:  &oql.Ident{Name: v},
		From:  []oql.Binding{{Var: v, Domain: in}},
		Where: substFree(x.Pred, names, v),
	}, nil
}

func joinOQL(x *Join) (oql.Expr, error) {
	binds, where, err := collectEnv(x)
	if err == nil {
		vars := envVars(x)
		ctor := &oql.StructCtor{}
		for _, v := range vars {
			ctor.Fields = append(ctor.Fields, oql.StructField{Name: v, Expr: &oql.Ident{Name: v}})
		}
		return &oql.Select{Proj: ctor, From: binds, Where: where}, nil
	}
	// Raw join (source side): merge attribute sets.
	lAttrs, okL := OutputAttrs(x.L)
	rAttrs, okR := OutputAttrs(x.R)
	if !okL || !okR {
		return nil, fmt.Errorf("algebra: cannot render join over unknown attributes")
	}
	lIn, err := ToOQL(x.L)
	if err != nil {
		return nil, err
	}
	rIn, err := ToOQL(x.R)
	if err != nil {
		return nil, err
	}
	lv, rv := freshVar("l"), freshVar("r")
	ctor := &oql.StructCtor{}
	for _, a := range lAttrs {
		ctor.Fields = append(ctor.Fields, oql.StructField{Name: a, Expr: &oql.Path{Base: &oql.Ident{Name: lv}, Field: a}})
	}
	for _, a := range rAttrs {
		ctor.Fields = append(ctor.Fields, oql.StructField{Name: a, Expr: &oql.Path{Base: &oql.Ident{Name: rv}, Field: a}})
	}
	var where2 oql.Expr
	if x.Pred != nil {
		where2 = substFree(substFree(x.Pred, toSet(lAttrs), lv), toSet(rAttrs), rv)
	}
	return &oql.Select{
		Proj:  ctor,
		From:  []oql.Binding{{Var: lv, Domain: lIn}, {Var: rv, Domain: rIn}},
		Where: where2,
	}, nil
}

func nestOQL(x *Nest) (oql.Expr, error) {
	in, err := ToOQL(x.Input)
	if err != nil {
		return nil, err
	}
	v := freshVar("")
	ctor := &oql.StructCtor{}
	for _, g := range x.Groups {
		inner := &oql.StructCtor{}
		for _, a := range g.Attrs {
			inner.Fields = append(inner.Fields, oql.StructField{Name: a, Expr: &oql.Path{Base: &oql.Ident{Name: v}, Field: a}})
		}
		ctor.Fields = append(ctor.Fields, oql.StructField{Name: g.Var, Expr: inner})
	}
	return &oql.Select{Proj: ctor, From: []oql.Binding{{Var: v, Domain: in}}}, nil
}

// collectEnv deconstructs a tree of Bind/Join/Select/Depend nodes over
// env-structs into from-clause bindings and a where predicate.
func collectEnv(n Node) ([]oql.Binding, oql.Expr, error) {
	var binds []oql.Binding
	var conj []oql.Expr
	var walk func(n Node) error
	walk = func(n Node) error {
		switch x := n.(type) {
		case *Bind:
			// A bind over a submit whose expression is a pushed-down
			// select/project pyramid unrolls back into from/where form,
			// reproducing the query the pushdown came from (pushed
			// projections are safe to drop: column pruning guarantees the
			// outer query touches only projected attributes).
			if sub, ok := x.Input.(*Submit); ok {
				if dom, preds, ok := unrollSubmit(sub.Input, x.Var); ok {
					binds = append(binds, oql.Binding{Var: x.Var, Domain: dom})
					conj = append(conj, preds...)
					return nil
				}
			}
			in, err := ToOQL(x.Input)
			if err != nil {
				return err
			}
			binds = append(binds, oql.Binding{Var: x.Var, Domain: in})
			return nil
		case *Depend:
			if err := walk(x.Input); err != nil {
				return err
			}
			binds = append(binds, oql.Binding{Var: x.Var, Domain: x.Domain})
			return nil
		case *Join:
			if len(envVars(x.L)) == 0 || len(envVars(x.R)) == 0 {
				return fmt.Errorf("algebra: raw join inside env tree")
			}
			if err := walk(x.L); err != nil {
				return err
			}
			if err := walk(x.R); err != nil {
				return err
			}
			if x.Pred != nil {
				conj = append(conj, x.Pred)
			}
			return nil
		case *Select:
			if err := walk(x.Input); err != nil {
				return err
			}
			conj = append(conj, x.Pred)
			return nil
		default:
			return fmt.Errorf("algebra: %T does not produce env-structs", n)
		}
	}
	if err := walk(n); err != nil {
		return nil, nil, err
	}
	return binds, conjoin(conj), nil
}

// unrollSubmit deconstructs a source-side select/project pyramid over a
// single get into a from-clause domain plus predicate conjuncts referencing
// the binding variable. Predicates rewrite from attribute idents back to
// v.attr paths (the inverse of the pushdown's stripVars).
func unrollSubmit(n Node, v string) (domain oql.Expr, preds []oql.Expr, ok bool) {
	for {
		switch x := n.(type) {
		case *Project:
			n = x.Input
		case *Select:
			attrSet := toSet(oql.FreeNames(x.Pred))
			preds = append(preds, substFree(x.Pred, attrSet, v))
			n = x.Input
		case *Get:
			return &oql.Ident{Name: x.Ref.QualifiedName()}, preds, true
		default:
			return nil, nil, false
		}
	}
}

func conjoin(conj []oql.Expr) oql.Expr {
	var out oql.Expr
	for _, c := range conj {
		if out == nil {
			out = c
		} else {
			out = &oql.Binary{Op: oql.OpAnd, L: out, R: c}
		}
	}
	return out
}

// EnvVars lists the environment variables carried by a node's elements, or
// nil when the node produces raw data. The physical implementation rules
// use it to split join predicates into probe and build keys.
func EnvVars(n Node) []string { return envVars(n) }

// envVars lists the environment variables carried by a node's elements, or
// nil when the node produces raw data.
func envVars(n Node) []string {
	switch x := n.(type) {
	case *Bind:
		return []string{x.Var}
	case *Depend:
		return append(envVars(x.Input), x.Var)
	case *Join:
		l := envVars(x.L)
		r := envVars(x.R)
		if len(l) == 0 || len(r) == 0 {
			return nil
		}
		return append(l, r...)
	case *Select:
		return envVars(x.Input)
	case *Distinct:
		return envVars(x.Input)
	case *Union:
		// Union branches come from distributing binds over the inputs of
		// one collection (a multi-extent type or a partition fan-out), so
		// every branch carries the same variables; the first branch is
		// representative. Branches without env vars make the whole union
		// raw data.
		if len(x.Inputs) == 0 {
			return nil
		}
		return envVars(x.Inputs[0])
	case *Nest:
		vars := make([]string, len(x.Groups))
		for i, g := range x.Groups {
			vars[i] = g.Var
		}
		return vars
	default:
		return nil
	}
}

// elementFields lists the struct field names of a node's elements, whether
// env variables or source attributes.
func elementFields(n Node) (map[string]bool, error) {
	if vars := envVars(n); len(vars) > 0 {
		return toSet(vars), nil
	}
	attrs, ok := OutputAttrs(n)
	if !ok {
		return nil, fmt.Errorf("algebra: unknown element fields for %T", n)
	}
	return toSet(attrs), nil
}

func toSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

// substFree replaces every free identifier X from names with v.X, honoring
// variable shadowing inside nested selects.
func substFree(e oql.Expr, names map[string]bool, v string) oql.Expr {
	return substExpr(e, names, v, map[string]bool{})
}

func substExpr(e oql.Expr, names map[string]bool, v string, bound map[string]bool) oql.Expr {
	switch x := e.(type) {
	case *oql.Ident:
		if !x.Star && names[x.Name] && !bound[x.Name] {
			return &oql.Path{Base: &oql.Ident{Name: v}, Field: x.Name}
		}
		return x
	case *oql.Literal:
		return x
	case *oql.Path:
		return &oql.Path{Base: substExpr(x.Base, names, v, bound), Field: x.Field}
	case *oql.Unary:
		return &oql.Unary{Op: x.Op, X: substExpr(x.X, names, v, bound)}
	case *oql.Binary:
		return &oql.Binary{Op: x.Op, L: substExpr(x.L, names, v, bound), R: substExpr(x.R, names, v, bound)}
	case *oql.StructCtor:
		fields := make([]oql.StructField, len(x.Fields))
		for i, f := range x.Fields {
			fields[i] = oql.StructField{Name: f.Name, Expr: substExpr(f.Expr, names, v, bound)}
		}
		return &oql.StructCtor{Fields: fields}
	case *oql.Call:
		args := make([]oql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substExpr(a, names, v, bound)
		}
		return &oql.Call{Fn: x.Fn, Args: args}
	case *oql.Select:
		inner := make(map[string]bool, len(bound)+len(x.From))
		for k := range bound {
			inner[k] = true
		}
		from := make([]oql.Binding, len(x.From))
		for i, b := range x.From {
			from[i] = oql.Binding{Var: b.Var, Domain: substExpr(b.Domain, names, v, inner)}
			inner[b.Var] = true
		}
		out := &oql.Select{
			Distinct: x.Distinct,
			Proj:     substExpr(x.Proj, names, v, inner),
			From:     from,
		}
		if x.Where != nil {
			out.Where = substExpr(x.Where, names, v, inner)
		}
		return out
	default:
		return e
	}
}

// freshVar returns a variable name that cannot collide with user variables
// (user identifiers cannot contain "$"... they can, underscore-only; use a
// reserved prefix that the lexer accepts but examples avoid).
func freshVar(hint string) string {
	if hint == "" {
		hint = "v"
	}
	return "_" + hint
}
