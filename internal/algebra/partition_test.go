package algebra

import (
	"strings"
	"testing"

	"disco/internal/oql"
	"disco/internal/types"
)

func rangeSpec() *PartitionSpec {
	return &PartitionSpec{Kind: PartRange, Attr: "id", Ranges: []RangeBound{
		{Hi: types.Int(10)},
		{Lo: types.Int(10), Hi: types.Int(20)},
		{Lo: types.Int(20)},
	}}
}

func TestLocateRangeBoundaries(t *testing.T) {
	s := rangeSpec()
	cases := []struct {
		v    types.Value
		want int
	}{
		{types.Int(-5), 0},
		{types.Int(9), 0},
		{types.Int(10), 1}, // Lo inclusive: 10 belongs to 10..20
		{types.Int(19), 1},
		{types.Int(20), 2}, // Hi exclusive: 20 belongs to 20..
		{types.Float(19.5), 1},
		{types.Str("x"), -1}, // unorderable against int bounds
	}
	for _, c := range cases {
		if got := s.Locate(c.v, 3); got != c.want {
			t.Errorf("Locate(%s) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLocateHashDeterministic(t *testing.T) {
	s := &PartitionSpec{Kind: PartHash, Attr: "id"}
	for _, n := range []int{1, 2, 16} {
		a := s.Locate(types.Int(42), n)
		b := s.Locate(types.Int(42), n)
		if a != b || a < 0 || a >= n {
			t.Errorf("Locate over %d shards = %d then %d", n, a, b)
		}
	}
	// Model-equal values land together.
	if s.Locate(types.Int(2), 16) != s.Locate(types.Float(2), 16) {
		t.Error("Int(2) and Float(2) should share a hash slot")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := rangeSpec().Validate(3); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := rangeSpec().Validate(2); err == nil {
		t.Error("count mismatch accepted")
	}
	bad := &PartitionSpec{Kind: PartRange, Attr: "id", Ranges: []RangeBound{
		{Lo: types.Int(5), Hi: types.Int(5)}, {Lo: types.Int(5)},
	}}
	if err := bad.Validate(2); err == nil {
		t.Error("empty interval accepted")
	}
	all := &PartitionSpec{Kind: PartRange, Attr: "id", Ranges: []RangeBound{{}, {Lo: types.Int(0)}}}
	if err := all.Validate(2); err == nil {
		t.Error("catch-all interval alongside others accepted")
	}
	hashWithRanges := &PartitionSpec{Kind: PartHash, Attr: "id", Ranges: []RangeBound{{}}}
	if err := hashWithRanges.Validate(1); err == nil {
		t.Error("hash with ranges accepted")
	}
}

// shardPlan builds the normalized branch shape select(pred, bind(x,
// submit(r_i, get(e@r_i)))) for each shard of a 3-way range extent.
func shardPlan(t *testing.T, pred string) Node {
	t.Helper()
	p, err := oql.ParseQuery(pred)
	if err != nil {
		t.Fatal(err)
	}
	spec := rangeSpec()
	inputs := make([]Node, 3)
	for i, repo := range []string{"r0", "r1", "r2"} {
		inputs[i] = &Select{Pred: p, Input: &Bind{Var: "x", Input: &Submit{Repo: repo, Input: &Get{Ref: ExtentRef{
			Extent: "e", Repo: repo, Source: "e", Attrs: []string{"id", "v"},
			Partition: repo, PartSpec: spec, PartIndex: i, PartCount: 3,
		}}}}}
	}
	return &Union{Inputs: inputs, Par: true}
}

func survivors(t *testing.T, pred string) (string, []string) {
	t.Helper()
	plan, pruned := PrunePartitions(shardPlan(t, pred))
	plan = Normalize(plan)
	var repos []string
	for _, s := range Submits(plan) {
		repos = append(repos, s.Repo)
	}
	return strings.Join(repos, ","), pruned
}

func TestPruneRangePredicates(t *testing.T) {
	cases := []struct {
		pred string
		want string
	}{
		{`x.id = 10`, "r1"},
		{`x.id = 9`, "r0"},
		{`10 = x.id`, "r1"},
		{`x.id < 10`, "r0"},
		{`x.id <= 10`, "r0,r1"},
		{`x.id > 20`, "r2"},
		{`x.id >= 20`, "r2"},
		{`x.id >= 10`, "r1,r2"},
		{`30 < x.id`, "r2"},
		{`x.id = -3`, "r0"},
		{`x.id in bag(5, 25)`, "r0,r2"},
		{`x.id = 5 or x.id = 15`, "r0,r1"},
		// Non-partition attributes and opaque predicates keep every shard.
		{`x.v = 10`, "r0,r1,r2"},
		{`x.id != 10`, "r0,r1,r2"},
		{`x.id = x.v`, "r0,r1,r2"},
	}
	for _, c := range cases {
		got, _ := survivors(t, c.pred)
		if got != c.want {
			t.Errorf("survivors(%s) = %q, want %q", c.pred, got, c.want)
		}
	}
}

func TestPruneReportsQualifiedNames(t *testing.T) {
	_, pruned := survivors(t, `x.id = 10`)
	if strings.Join(pruned, ",") != "e@r0,e@r2" {
		t.Errorf("pruned = %v", pruned)
	}
}

func TestPruneStackedConjuncts(t *testing.T) {
	// Normalization splits conjunctions into stacked selects; each level
	// prunes independently.
	plan := Normalize(shardPlan(t, `x.id >= 10 and x.id < 20`))
	plan, _ = PrunePartitions(plan)
	plan = Normalize(plan)
	subs := Submits(plan)
	if len(subs) != 1 || subs[0].Repo != "r1" {
		t.Errorf("conjunction should isolate r1: %s", plan)
	}
}

func TestPruneContradictionEmptiesPlan(t *testing.T) {
	plan := Normalize(shardPlan(t, `x.id = 5 and x.id = 25`))
	plan, _ = PrunePartitions(plan)
	plan = Normalize(plan)
	if len(Submits(plan)) != 0 {
		t.Errorf("contradiction should remove every submit: %s", plan)
	}
	c, ok := plan.(*Const)
	if !ok || c.Data.Len() != 0 {
		t.Errorf("plan should collapse to the empty constant: %s", plan)
	}
}

func TestPruneHashIgnoresOrderPredicates(t *testing.T) {
	spec := &PartitionSpec{Kind: PartHash, Attr: "id"}
	p, err := oql.ParseQuery(`x.id < 10`)
	if err != nil {
		t.Fatal(err)
	}
	branch := &Select{Pred: p, Input: &Bind{Var: "x", Input: &Submit{Repo: "r0", Input: &Get{Ref: ExtentRef{
		Extent: "e", Repo: "r0", Source: "e", Attrs: []string{"id"},
		Partition: "r0", PartSpec: spec, PartIndex: 0, PartCount: 4,
	}}}}}
	out, pruned := PrunePartitions(branch)
	if len(pruned) != 0 || !Equal(out, branch) {
		t.Errorf("hash shards must not prune on order predicates: %s, pruned %v", out, pruned)
	}
}

func TestPartitionWiseSkipsPrunedIndexes(t *testing.T) {
	spec := &PartitionSpec{Kind: PartHash, Attr: "id"}
	mkBranch := func(extent, v, repo string, idx int) Node {
		return &Bind{Var: v, Input: &Submit{Repo: repo, Input: &Get{Ref: ExtentRef{
			Extent: extent, Repo: repo, Source: extent, Attrs: []string{"id"},
			Partition: repo, PartSpec: spec, PartIndex: idx, PartCount: 2,
		}}}}
	}
	pred, err := oql.ParseQuery(`x.id = y.id`)
	if err != nil {
		t.Fatal(err)
	}
	// The left side survived pruning only at shard 1.
	j := &Join{
		L:    mkBranch("a", "x", "r1", 1),
		R:    &Union{Par: true, Inputs: []Node{mkBranch("b", "y", "r0", 0), mkBranch("b", "y", "r1", 1)}},
		Pred: pred,
	}
	out, dropped := PartitionWiseJoins(j)
	subs := Submits(out)
	if len(subs) != 2 {
		t.Fatalf("join should pair only shard 1: %s", out)
	}
	for _, s := range subs {
		if s.Repo != "r1" {
			t.Errorf("submit to %s; shard 0 should be dropped entirely: %s", s.Repo, out)
		}
	}
	// The dropped counterpart is accounted for, so EXPLAIN can name every
	// source the plan skips.
	if strings.Join(dropped, ",") != "b@r0" {
		t.Errorf("dropped = %v, want the skipped counterpart b@r0", dropped)
	}
}

// TestPruneNeverFiresOnTypeMismatch: a comparand that does not order
// against a range scheme's bounds must keep every shard (pruning all of
// them would silently answer the empty bag for data a heterogeneous source
// may legitimately hold).
func TestPruneNeverFiresOnTypeMismatch(t *testing.T) {
	for _, pred := range []string{`x.id = "m"`, `x.id in bag("m", "n")`} {
		got, pruned := survivors(t, pred)
		if got != "r0,r1,r2" || len(pruned) != 0 {
			t.Errorf("survivors(%s) = %q pruned %v; type mismatches must not prune", pred, got, pruned)
		}
	}
}

// TestPruneUncoveredKeySpace: a constant that orders against the bounds
// but falls in a declared gap excludes every shard — the placement
// contract says no row can hold it.
func TestPruneUncoveredKeySpace(t *testing.T) {
	gap := &PartitionSpec{Kind: PartRange, Attr: "id", Ranges: []RangeBound{
		{Hi: types.Int(10)},
		{Lo: types.Int(20)},
	}}
	p, err := oql.ParseQuery(`x.id = 15`)
	if err != nil {
		t.Fatal(err)
	}
	var inputs []Node
	for i, repo := range []string{"r0", "r1"} {
		inputs = append(inputs, &Select{Pred: p, Input: &Bind{Var: "x", Input: &Submit{Repo: repo, Input: &Get{Ref: ExtentRef{
			Extent: "e", Repo: repo, Source: "e", Attrs: []string{"id"},
			Partition: repo, PartSpec: gap, PartIndex: i, PartCount: 2,
		}}}}})
	}
	plan, pruned := PrunePartitions(&Union{Inputs: inputs, Par: true})
	if len(pruned) != 2 {
		t.Errorf("gap value should prune both shards, pruned = %v:\n%s", pruned, plan)
	}
}

// TestRangeBoundRendersWithoutExponent: bound rendering must stay within
// the ODL lexer's plain-decimal number syntax or DumpODL output would not
// reparse.
func TestRangeBoundRendersWithoutExponent(t *testing.T) {
	r := RangeBound{Lo: types.Float(1e6), Hi: types.Float(0.00001)}
	if got := r.String(); got != "1000000..0.00001" {
		t.Errorf("String = %q, want plain decimals", got)
	}
}
