package algebra

import (
	"sort"

	"disco/internal/oql"
	"disco/internal/types"
)

// This file implements the two placement-aware rewrites the optimizer runs
// on normalized plans:
//
//   - PrunePartitions removes partition-fan-out branches whose shard cannot
//     contain rows satisfying the branch's predicate, so a point query over
//     a hash-partitioned extent submits to exactly one repository;
//   - PartitionWiseJoins rewrites a join between co-partitioned extents on
//     their partition attribute into a parallel union of per-shard joins,
//     replacing the all-pairs cross-shard join.
//
// Both rely on the placement contract of the ODL "partition by" clause: the
// DBA asserts every row lives at the shard the scheme assigns to its
// partition-attribute value.

// PrunePartitions eliminates shards a normalized plan provably does not
// need: any select whose predicate excludes every row its shard can hold
// (by the shard's declared hash slot or key range) collapses to an empty
// constant, which normalization then drops from the enclosing union. It
// returns the rewritten plan and the qualified names (extent@repo) of the
// pruned shards, for the optimizer report and EXPLAIN output.
func PrunePartitions(n Node) (Node, []string) {
	var pruned []string
	out := Transform(n, func(m Node) Node {
		sel, ok := m.(*Select)
		if !ok {
			return m
		}
		v, ref, ok := shardLeaf(sel)
		if !ok {
			return m
		}
		if shardMayMatch(sel.Pred, v, ref) {
			return m
		}
		pruned = append(pruned, ref.QualifiedName())
		return emptyConst()
	})
	sort.Strings(pruned)
	return out, dedupeStrings(pruned)
}

func dedupeStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// shardLeaf descends through a stack of selects to the canonical fan-out
// branch shape bind(v, submit(repo, get(extent@repo))) and returns the bind
// variable and the shard's extent ref, provided the extent declares a
// partitioning scheme. Any other shape reports ok=false, and no pruning
// happens.
func shardLeaf(n Node) (string, *ExtentRef, bool) {
	for {
		switch x := n.(type) {
		case *Select:
			n = x.Input
		case *Bind:
			sub, ok := x.Input.(*Submit)
			if !ok {
				return "", nil, false
			}
			get, ok := sub.Input.(*Get)
			if !ok || get.Ref.PartSpec == nil || get.Ref.PartCount <= 0 {
				return "", nil, false
			}
			return x.Var, &get.Ref, true
		default:
			return "", nil, false
		}
	}
}

// shardMayMatch reports whether any row the shard can hold might satisfy
// the predicate. It must only return false when exclusion is provable; any
// unhandled predicate shape answers true (no pruning).
func shardMayMatch(pred oql.Expr, v string, ref *ExtentRef) bool {
	switch x := pred.(type) {
	case *oql.Binary:
		switch x.Op {
		case oql.OpAnd:
			// A row matches a conjunction only if it matches both sides.
			return shardMayMatch(x.L, v, ref) && shardMayMatch(x.R, v, ref)
		case oql.OpOr:
			return shardMayMatch(x.L, v, ref) || shardMayMatch(x.R, v, ref)
		case oql.OpEq:
			if k, ok := keyComparand(x, v, ref.PartSpec.Attr); ok {
				return shardMayHold(ref, k)
			}
		case oql.OpIn:
			if !isPartAttrPath(x.L, v, ref.PartSpec.Attr) {
				return true
			}
			elems, ok := literalElems(x.R)
			if !ok {
				return true
			}
			for _, e := range elems {
				if shardMayHold(ref, e) {
					return true
				}
			}
			return false
		case oql.OpLt, oql.OpLe, oql.OpGt, oql.OpGe:
			// Order predicates prune range schemes only: hash placement
			// scatters adjacent keys.
			if ref.PartSpec.Kind != PartRange {
				return true
			}
			op := x.Op
			k, ok := literalValue(x.R)
			if !ok || !isPartAttrPath(x.L, v, ref.PartSpec.Attr) {
				// Try the flipped spelling, 10 < x.id.
				k, ok = literalValue(x.L)
				if !ok || !isPartAttrPath(x.R, v, ref.PartSpec.Attr) {
					return true
				}
				op = flipCmp(op)
			}
			return rangeMayMatch(ref.PartSpec.Ranges[ref.PartIndex], op, k)
		}
	}
	return true
}

// shardMayHold reports whether this shard can hold a row whose partition
// attribute equals k. For range schemes a comparison error (the constant
// does not order against the declared bounds) answers true for every
// shard — never prune on a type mismatch — while a constant that orders
// but falls outside the shard's interval excludes it.
func shardMayHold(ref *ExtentRef, k types.Value) bool {
	switch ref.PartSpec.Kind {
	case PartHash:
		return ref.PartSpec.Locate(k, ref.PartCount) == ref.PartIndex
	case PartRange:
		if ref.PartIndex < 0 || ref.PartIndex >= len(ref.PartSpec.Ranges) {
			return true
		}
		in, err := ref.PartSpec.Ranges[ref.PartIndex].contains(k)
		return err != nil || in
	default:
		return true
	}
}

// keyComparand extracts the constant k from v.attr = k or k = v.attr.
func keyComparand(x *oql.Binary, v, attr string) (types.Value, bool) {
	if isPartAttrPath(x.L, v, attr) {
		return literalValue(x.R)
	}
	if isPartAttrPath(x.R, v, attr) {
		return literalValue(x.L)
	}
	return nil, false
}

// isPartAttrPath recognizes the v.attr path over the branch's bind variable.
func isPartAttrPath(e oql.Expr, v, attr string) bool {
	p, ok := e.(*oql.Path)
	if !ok || p.Field != attr {
		return false
	}
	base, ok := p.Base.(*oql.Ident)
	return ok && !base.Star && base.Name == v
}

// literalValue extracts a constant scalar from an expression: a literal, or
// a negated numeric literal.
func literalValue(e oql.Expr) (types.Value, bool) {
	switch x := e.(type) {
	case *oql.Literal:
		switch x.Val.(type) {
		case types.Int, types.Float, types.Str, types.Bool:
			return x.Val, true
		}
	case *oql.Unary:
		if x.Op != oql.OpNeg {
			return nil, false
		}
		inner, ok := literalValue(x.X)
		if !ok {
			return nil, false
		}
		switch n := inner.(type) {
		case types.Int:
			return types.Int(-int64(n)), true
		case types.Float:
			return types.Float(-float64(n)), true
		}
	}
	return nil, false
}

// literalElems extracts the members of a constant collection: a collection
// literal, or a bag/list/set constructor call over constant scalars.
func literalElems(e oql.Expr) ([]types.Value, bool) {
	switch x := e.(type) {
	case *oql.Literal:
		switch c := x.Val.(type) {
		case *types.Bag:
			return c.Elems(), true
		case *types.List:
			return c.Elems(), true
		case *types.Set:
			return c.Elems(), true
		}
	case *oql.Call:
		if x.Fn != "bag" && x.Fn != "list" && x.Fn != "set" {
			return nil, false
		}
		out := make([]types.Value, 0, len(x.Args))
		for _, a := range x.Args {
			v, ok := literalValue(a)
			if !ok {
				return nil, false
			}
			out = append(out, v)
		}
		return out, true
	}
	return nil, false
}

func flipCmp(op oql.BinaryOp) oql.BinaryOp {
	switch op {
	case oql.OpLt:
		return oql.OpGt
	case oql.OpLe:
		return oql.OpGe
	case oql.OpGt:
		return oql.OpLt
	case oql.OpGe:
		return oql.OpLe
	default:
		return op
	}
}

// rangeMayMatch reports whether the shard interval [Lo, Hi) can contain a
// value satisfying "value op k". Comparison errors (unorderable constant)
// answer true: never prune on a type mismatch.
func rangeMayMatch(r RangeBound, op oql.BinaryOp, k types.Value) bool {
	cmp := func(a, b types.Value) (int, bool) {
		c, err := types.Compare(a, b)
		return c, err == nil
	}
	switch op {
	case oql.OpLt:
		// Some v in [Lo, Hi) with v < k requires Lo < k.
		if r.Lo == nil {
			return true
		}
		c, ok := cmp(r.Lo, k)
		return !ok || c < 0
	case oql.OpLe:
		if r.Lo == nil {
			return true
		}
		c, ok := cmp(r.Lo, k)
		return !ok || c <= 0
	case oql.OpGt, oql.OpGe:
		// Some v in [Lo, Hi) with v >= k (or > k) requires k < Hi; the Hi
		// bound is exclusive, so Hi = k leaves nothing at or above k.
		if r.Hi == nil {
			return true
		}
		c, ok := cmp(r.Hi, k)
		return !ok || c > 0
	default:
		return true
	}
}

// PartitionWiseJoins rewrites join(A, B, ... a.k = b.k ...) over
// co-partitioned extents A and B (same scheme, same partition attribute,
// same partition count) into a parallel union of per-shard joins: rows with
// equal partition keys live at the same shard index on both sides, so
// cross-shard pairs cannot produce output. Shards pruned from one side drop
// their counterpart on the other; the dropped counterparts' qualified names
// are returned so the optimizer report accounts for every skipped source.
// The rewrite produces a plan the cost model prices with the parallel-union
// max-not-sum rule, and each per-shard join becomes eligible for whole-join
// pushdown when both extents share a repository.
func PartitionWiseJoins(n Node) (Node, []string) {
	var dropped []string
	out := Transform(n, func(m Node) Node {
		next, names := partitionWiseOnce(m)
		dropped = append(dropped, names...)
		return next
	})
	sort.Strings(dropped)
	return out, dedupeStrings(dropped)
}

func partitionWiseOnce(n Node) (Node, []string) {
	j, ok := n.(*Join)
	if !ok || j.Pred == nil {
		return n, nil
	}
	l, ok := shardSideOf(j.L)
	if !ok {
		return n, nil
	}
	r, ok := shardSideOf(j.R)
	if !ok {
		return n, nil
	}
	if !l.spec.Equal(r.spec) || l.count != r.count {
		return n, nil
	}
	if !joinsOnPartitionAttr(j.Pred, l.varName, r.varName, l.spec.Attr) {
		return n, nil
	}
	// Both sides full and single-sharded: the rewrite would be an identity.
	if len(l.byIndex) == 1 && len(r.byIndex) == 1 && l.count == 1 {
		return n, nil
	}
	inputs := make([]Node, 0, l.count)
	var dropped []string
	for idx := 0; idx < l.count; idx++ {
		lb, lOK := l.byIndex[idx]
		rb, rOK := r.byIndex[idx]
		if lOK != rOK {
			// The shard was pruned on one side: equal keys on the other
			// side could only pair with it, so the pair contributes
			// nothing; record the surviving side's branch as skipped.
			surviving := lb
			if rOK {
				surviving = rb
			}
			if _, ref, ok := shardLeaf(surviving); ok {
				dropped = append(dropped, ref.QualifiedName())
			}
			continue
		}
		if !lOK {
			continue // pruned on both sides already
		}
		inputs = append(inputs, &Join{L: lb, R: rb, Pred: j.Pred})
	}
	switch len(inputs) {
	case 0:
		return emptyConst(), dropped
	case 1:
		return inputs[0], dropped
	default:
		return &Union{Inputs: inputs, Par: true}, dropped
	}
}

// shardSide describes one join input made of partition fan-out branches.
type shardSide struct {
	spec    *PartitionSpec
	count   int
	varName string
	byIndex map[int]Node
}

// shardSideOf recognizes a join input that is a parallel union of shard
// branches (or a single branch, after pruning) of one partitioned extent.
func shardSideOf(n Node) (*shardSide, bool) {
	branches := []Node{n}
	if u, ok := n.(*Union); ok {
		if !u.Par {
			return nil, false
		}
		branches = u.Inputs
	}
	side := &shardSide{byIndex: make(map[int]Node, len(branches))}
	for _, b := range branches {
		v, ref, ok := shardLeaf(b)
		if !ok {
			return nil, false
		}
		if side.spec == nil {
			side.spec, side.count, side.varName = ref.PartSpec, ref.PartCount, v
		} else if !side.spec.Equal(ref.PartSpec) || side.count != ref.PartCount || side.varName != v {
			return nil, false
		}
		if _, dup := side.byIndex[ref.PartIndex]; dup {
			return nil, false
		}
		side.byIndex[ref.PartIndex] = b
	}
	return side, side.spec != nil
}

// joinsOnPartitionAttr reports whether the predicate's conjuncts include
// lv.attr = rv.attr (either order).
func joinsOnPartitionAttr(pred oql.Expr, lv, rv, attr string) bool {
	for _, c := range conjunctsOf(pred) {
		bin, ok := c.(*oql.Binary)
		if !ok || bin.Op != oql.OpEq {
			continue
		}
		if isPartAttrPath(bin.L, lv, attr) && isPartAttrPath(bin.R, rv, attr) {
			return true
		}
		if isPartAttrPath(bin.L, rv, attr) && isPartAttrPath(bin.R, lv, attr) {
			return true
		}
	}
	return false
}

func conjunctsOf(e oql.Expr) []oql.Expr {
	if bin, ok := e.(*oql.Binary); ok && bin.Op == oql.OpAnd {
		return append(conjunctsOf(bin.L), conjunctsOf(bin.R)...)
	}
	return []oql.Expr{e}
}
