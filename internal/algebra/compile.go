package algebra

import (
	"fmt"

	"disco/internal/oql"
	"disco/internal/types"
)

// NameResolver supplies plans for free collection names: extents resolve to
// submit(get(...)) trees (or unions of them for multi-extent types), views
// are substituted before compilation and so never reach the resolver.
type NameResolver interface {
	ResolvePlan(name string, star bool) (Node, error)
}

// Compile translates an OQL query into a logical plan. Constructs outside
// the planned fragment compile to Eval fallback nodes, which execute with
// reference semantics but cannot be optimized or partially evaluated.
func Compile(e oql.Expr, r NameResolver) (Node, error) {
	switch x := e.(type) {
	case *oql.Select:
		return compileSelect(x, r)
	case *oql.Ident:
		return r.ResolvePlan(x.Name, x.Star)
	case *oql.Literal:
		if b, ok := x.Val.(*types.Bag); ok {
			return &Const{Data: b}, nil
		}
		return &Eval{Expr: x}, nil
	case *oql.Call:
		return compileCall(x, r)
	default:
		return &Eval{Expr: e}, nil
	}
}

func compileCall(x *oql.Call, r NameResolver) (Node, error) {
	switch x.Fn {
	case "union":
		inputs := make([]Node, 0, len(x.Args))
		for _, a := range x.Args {
			n, err := Compile(a, r)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, n)
		}
		return &Union{Inputs: inputs}, nil
	case "flatten":
		if len(x.Args) == 1 {
			in, err := Compile(x.Args[0], r)
			if err != nil {
				return nil, err
			}
			return &Flatten{Input: in}, nil
		}
	case "distinct":
		if len(x.Args) == 1 {
			in, err := Compile(x.Args[0], r)
			if err != nil {
				return nil, err
			}
			return &Distinct{Input: in}, nil
		}
	case "count", "sum", "min", "max", "avg", "exists", "element":
		if len(x.Args) == 1 {
			in, err := Compile(x.Args[0], r)
			if err != nil {
				return nil, err
			}
			return &Agg{Fn: x.Fn, Input: in}, nil
		}
	}
	return &Eval{Expr: x}, nil
}

func compileSelect(sel *oql.Select, r NameResolver) (Node, error) {
	bound := map[string]bool{}
	var plan Node
	for _, b := range sel.From {
		if b.Var == "" {
			return nil, fmt.Errorf("compile: empty binding variable")
		}
		dependent := false
		for _, name := range oql.FreeNames(b.Domain) {
			if bound[name] {
				dependent = true
				break
			}
		}
		switch {
		case dependent && plan == nil:
			return nil, fmt.Errorf("compile: first binding %s cannot be dependent", b.Var)
		case dependent:
			plan = &Depend{Var: b.Var, Domain: b.Domain, Input: plan}
		default:
			dnode, err := compileCollection(b.Domain, r)
			if err != nil {
				return nil, err
			}
			bind := &Bind{Var: b.Var, Input: dnode}
			if plan == nil {
				plan = bind
			} else {
				plan = &Join{L: plan, R: bind}
			}
		}
		bound[b.Var] = true
	}
	if plan == nil {
		return nil, fmt.Errorf("compile: select without bindings")
	}
	if sel.Where != nil {
		plan = &Select{Pred: sel.Where, Input: plan}
	}
	if ctor, ok := sel.Proj.(*oql.StructCtor); ok {
		cols := make([]Col, 0, len(ctor.Fields))
		for _, f := range ctor.Fields {
			cols = append(cols, Col{Name: f.Name, Expr: f.Expr})
		}
		plan = &Project{Cols: cols, Input: plan}
	} else {
		plan = &Map{Expr: sel.Proj, Input: plan}
	}
	if sel.Distinct {
		plan = &Distinct{Input: plan}
	}
	return plan, nil
}

// compileCollection compiles a from-clause domain. Scalar literals and
// unplannable forms fall back to Eval.
func compileCollection(e oql.Expr, r NameResolver) (Node, error) {
	switch x := e.(type) {
	case *oql.Ident:
		return r.ResolvePlan(x.Name, x.Star)
	case *oql.Literal:
		switch v := x.Val.(type) {
		case *types.Bag:
			return &Const{Data: v}, nil
		case *types.List:
			return &Const{Data: types.NewBag(v.Elems()...)}, nil
		case *types.Set:
			return &Const{Data: types.NewBag(v.Elems()...)}, nil
		default:
			return nil, fmt.Errorf("compile: %s is not a collection", x.Val.Kind())
		}
	case *oql.Select:
		return compileSelect(x, r)
	case *oql.Call:
		return compileCall(x, r)
	default:
		return &Eval{Expr: e}, nil
	}
}
