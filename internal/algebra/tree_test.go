package algebra

import (
	"strings"
	"testing"
)

func TestTreeString(t *testing.T) {
	n := mustCompile(t, `select x.name from x in person where x.salary > 10`)
	tree := TreeString(n)
	// Top operator first, leaves indented below, both union branches shown.
	lines := strings.Split(strings.TrimRight(tree, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "map(x.name)") {
		t.Errorf("first line = %q", lines[0])
	}
	for _, frag := range []string{"select(x.salary > 10)", "bind(x)", "union[2]", "submit(r0)", "submit(r1)", "get(person0)", "get(person1)", "└─", "├─"} {
		if !strings.Contains(tree, frag) {
			t.Errorf("tree missing %q:\n%s", frag, tree)
		}
	}
	// Leaves are the deepest-indented lines.
	if !strings.Contains(tree, "   │  └─ get(person0)") && !strings.Contains(tree, "│     └─ get(person0)") {
		t.Logf("tree layout:\n%s", tree)
	}
}

func TestTreeStringAllNodeKinds(t *testing.T) {
	queries := []string{
		`select struct(a: x.name) from x in person0, y in person1 where x.id = y.id`,
		`select distinct x.name from x in person*`,
		`count(person)`,
		`flatten(bag(bag(1)))`,
		`select m from g in person0, m in g.name`,
	}
	for _, q := range queries {
		n := mustCompile(t, q)
		if tree := TreeString(n); len(tree) == 0 {
			t.Errorf("empty tree for %q", q)
		}
	}
}
