package algebra

import (
	"fmt"
	"testing"

	"disco/internal/oql"
	"disco/internal/types"
)

// --- shared fixture: the paper's two-source person schema -----------------

func personRef(extent, repo string) ExtentRef {
	return ExtentRef{
		Extent: extent,
		Repo:   repo,
		Source: extent,
		Iface:  "Person",
		Attrs:  []string{"id", "name", "salary"},
	}
}

// fixtureResolver resolves person0/person1 extents and the implicit person
// extent that unions them.
type fixtureResolver struct{}

func (fixtureResolver) ResolvePlan(name string, star bool) (Node, error) {
	switch name {
	case "person0":
		return &Submit{Repo: "r0", Input: &Get{Ref: personRef("person0", "r0")}}, nil
	case "person1":
		return &Submit{Repo: "r1", Input: &Get{Ref: personRef("person1", "r1")}}, nil
	case "person":
		return &Union{Inputs: []Node{
			&Submit{Repo: "r0", Input: &Get{Ref: personRef("person0", "r0")}},
			&Submit{Repo: "r1", Input: &Get{Ref: personRef("person1", "r1")}},
		}}, nil
	case "employee0":
		return &Submit{Repo: "r0", Input: &Get{Ref: ExtentRef{
			Extent: "employee0", Repo: "r0", Source: "employee0", Iface: "Employee",
			Attrs: []string{"ename", "dept"},
		}}}, nil
	case "manager0":
		return &Submit{Repo: "r0", Input: &Get{Ref: ExtentRef{
			Extent: "manager0", Repo: "r0", Source: "manager0", Iface: "Manager",
			Attrs: []string{"mname", "mdept"},
		}}}, nil
	default:
		return nil, fmt.Errorf("unknown extent %q", name)
	}
}

func person(id int64, name string, salary int64) *types.Struct {
	return types.NewStruct(
		types.Field{Name: "id", Value: types.Int(id)},
		types.Field{Name: "name", Value: types.Str(name)},
		types.Field{Name: "salary", Value: types.Int(salary)},
	)
}

// stores returns the per-repository source data.
func stores() map[string]CollectionsMap {
	return map[string]CollectionsMap{
		"r0": {
			"person0": types.NewBag(person(1, "Mary", 200), person(3, "Ann", 5)),
			"employee0": types.NewBag(
				types.NewStruct(types.Field{Name: "ename", Value: types.Str("Bob")}, types.Field{Name: "dept", Value: types.Str("db")}),
				types.NewStruct(types.Field{Name: "ename", Value: types.Str("Eve")}, types.Field{Name: "dept", Value: types.Str("os")}),
			),
			"manager0": types.NewBag(
				types.NewStruct(types.Field{Name: "mname", Value: types.Str("Kim")}, types.Field{Name: "mdept", Value: types.Str("db")}),
			),
		},
		"r1": {
			"person1": types.NewBag(person(2, "Sam", 50), person(1, "Mary", 55)),
		},
	}
}

// testSubmitter executes submit expressions against the in-memory stores,
// mimicking the wrapper: translate to source namespace, run, rename back.
func testSubmitter(data map[string]CollectionsMap) func(string, Node) (types.Value, error) {
	return func(repo string, expr Node) (types.Value, error) {
		cols, ok := data[repo]
		if !ok {
			return nil, fmt.Errorf("unknown repo %q", repo)
		}
		src, err := ToSource(expr)
		if err != nil {
			return nil, err
		}
		in := &Interp{Cols: cols}
		v, err := in.Run(src)
		if err != nil {
			return nil, err
		}
		bag, ok := v.(*types.Bag)
		if !ok {
			return nil, fmt.Errorf("source returned %s", v.Kind())
		}
		// Rename attributes back to the mediator namespace.
		var refs []ExtentRef
		Walk(expr, func(m Node) {
			if g, ok := m.(*Get); ok {
				refs = append(refs, g.Ref)
			}
		})
		return types.BagMap(bag, func(e types.Value) (types.Value, error) {
			st, ok := e.(*types.Struct)
			if !ok {
				return e, nil
			}
			for _, ref := range refs {
				st = FromSource(ref, st)
			}
			return st, nil
		})
	}
}

// referenceResolver materializes extents for the reference evaluator.
func referenceResolver(data map[string]CollectionsMap) oql.Resolver {
	return oql.ResolverFunc(func(name string, star bool) (types.Value, error) {
		plan, err := fixtureResolver{}.ResolvePlan(name, star)
		if err != nil {
			return nil, err
		}
		in := &Interp{Submitter: testSubmitter(data)}
		return in.Run(plan)
	})
}

func mustCompile(t *testing.T, src string) Node {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := Compile(e, fixtureResolver{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return n
}

func runPlan(t *testing.T, n Node) types.Value {
	t.Helper()
	in := &Interp{Submitter: testSubmitter(stores()), Resolver: referenceResolver(stores())}
	v, err := in.Run(n)
	if err != nil {
		t.Fatalf("run %s: %v", n, err)
	}
	return v
}

// --- compilation ----------------------------------------------------------

func TestCompilePaperQueryShape(t *testing.T) {
	n := mustCompile(t, `select x.name from x in person where x.salary > 10`)
	want := "map(x.name, select(x.salary > 10, bind(x, union(submit(r0, get(person0)), submit(r1, get(person1))))))"
	if n.String() != want {
		t.Errorf("plan = %s\nwant   %s", n, want)
	}
}

func TestCompileStructProjection(t *testing.T) {
	n := mustCompile(t, `select struct(name: x.name, salary: x.salary) from x in person0`)
	want := "project([name: x.name, salary: x.salary], bind(x, submit(r0, get(person0))))"
	if n.String() != want {
		t.Errorf("plan = %s\nwant   %s", n, want)
	}
}

func TestCompileJoin(t *testing.T) {
	n := mustCompile(t, `select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id`)
	if _, ok := n.(*Project); !ok {
		t.Fatalf("top = %T", n)
	}
	found := false
	Walk(n, func(m Node) {
		if _, ok := m.(*Join); ok {
			found = true
		}
	})
	if !found {
		t.Errorf("expected a join in %s", n)
	}
}

func TestCompileDependentBinding(t *testing.T) {
	e, err := oql.ParseQuery(`select m from g in person0, m in g.name`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Compile(e, fixtureResolver{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	Walk(n, func(m Node) {
		if _, ok := m.(*Depend); ok {
			found = true
		}
	})
	if !found {
		t.Errorf("expected depend node in %s", n)
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		`select x from x in nosuch`,
		`select x from x in 5`,
	} {
		e, err := oql.ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(e, fixtureResolver{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestCompileAggregates(t *testing.T) {
	n := mustCompile(t, `count(person0)`)
	if _, ok := n.(*Agg); !ok {
		t.Fatalf("top = %T", n)
	}
	got := runPlan(t, n)
	if !got.Equal(types.Int(2)) {
		t.Errorf("count = %s", got)
	}
}

// --- normalization and pushdown -------------------------------------------

func TestNormalizeDistributesOverUnion(t *testing.T) {
	n := mustCompile(t, `select x.name from x in person where x.salary > 10`)
	norm := Normalize(n)
	top, ok := norm.(*Union)
	if !ok {
		t.Fatalf("normalized top = %T: %s", norm, norm)
	}
	if len(top.Inputs) != 2 {
		t.Fatalf("union arity = %d", len(top.Inputs))
	}
	// Each branch is a full map/select/bind pyramid over one submit.
	want0 := "map(x.name, select(x.salary > 10, bind(x, submit(r0, get(person0)))))"
	if top.Inputs[0].String() != want0 {
		t.Errorf("branch0 = %s\nwant     %s", top.Inputs[0], want0)
	}
}

func TestPushSelectIntoSubmit(t *testing.T) {
	n := Normalize(mustCompile(t, `select x.name from x in person0 where x.salary > 10`))
	pushed := Push(n, AcceptAll{}, PushOptions{Select: true})
	want := "map(x.name, bind(x, submit(r0, select(salary > 10, get(person0)))))"
	if pushed.String() != want {
		t.Errorf("pushed = %s\nwant    %s", pushed, want)
	}
	// With no capabilities nothing moves.
	same := Push(n, AcceptNone{}, PushOptions{Select: true})
	if !Equal(same, n) {
		t.Errorf("pushdown without capability should be identity, got %s", same)
	}
}

func TestPushProjectIntoSubmit(t *testing.T) {
	n := Normalize(mustCompile(t, `select x.name from x in person0`))
	pushed := Push(n, AcceptAll{}, PushOptions{Project: true})
	want := "map(x.name, bind(x, submit(r0, project([name], get(person0)))))"
	if pushed.String() != want {
		t.Errorf("pushed = %s\nwant    %s", pushed, want)
	}
}

func TestPushSelectAndProject(t *testing.T) {
	n := Normalize(mustCompile(t, `select x.name from x in person0 where x.salary > 10`))
	pushed := Push(n, AcceptAll{}, PushOptions{Select: true, Project: true})
	// Select pushes below; project prunes to the used columns above it.
	want := "map(x.name, bind(x, submit(r0, project([name], select(salary > 10, get(person0))))))"
	if pushed.String() != want {
		t.Errorf("pushed = %s\nwant    %s", pushed, want)
	}
}

func TestPushJoinSameRepo(t *testing.T) {
	// The paper's §3.2 example: employees and managers in the same
	// repository joined on department.
	n := Normalize(mustCompile(t,
		`select struct(e: x.ename, m: y.mname) from x in employee0, y in manager0 where x.dept = y.mdept`))
	pushed := Push(n, AcceptAll{}, PushOptions{Join: true})
	foundNest := false
	Walk(pushed, func(m Node) {
		if nest, ok := m.(*Nest); ok {
			foundNest = true
			if _, ok := nest.Input.(*Submit); !ok {
				t.Errorf("nest input should be submit, got %T", nest.Input)
			}
		}
	})
	if !foundNest {
		t.Fatalf("join was not pushed: %s", pushed)
	}
	// The submitted expression contains the join.
	subs := Submits(pushed)
	if len(subs) != 1 {
		t.Fatalf("submit count = %d", len(subs))
	}
	if _, ok := subs[0].Input.(*Join); !ok {
		t.Errorf("submitted expr = %s", subs[0].Input)
	}
}

func TestJoinNotPushedAcrossRepos(t *testing.T) {
	n := Normalize(mustCompile(t,
		`select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id`))
	pushed := Push(n, AcceptAll{}, PushOptions{Select: true, Project: true, Join: true})
	// person0 and person1 live in different repositories (and share
	// attribute names); the join must stay at the mediator.
	subs := Submits(pushed)
	for _, s := range subs {
		if _, ok := s.Input.(*Join); ok {
			t.Errorf("join pushed across repositories: %s", pushed)
		}
	}
}

func TestNonPushablePredicateStays(t *testing.T) {
	// The predicate references a nested query: not pushable.
	n := Normalize(mustCompile(t,
		`select x.name from x in person0 where x.salary > count(person1)`))
	pushed := Push(n, AcceptAll{}, PushOptions{Select: true})
	subs := Submits(pushed)
	for _, s := range subs {
		if _, ok := s.Input.(*Select); ok {
			t.Errorf("nested-query predicate must not push: %s", pushed)
		}
	}
}

// --- execution equivalence (optimized plans agree with the reference) ------

var equivalenceQueries = []string{
	`select x.name from x in person where x.salary > 10`,
	`select x.name from x in person0 where x.salary > 10`,
	`select x.name from x in union(person0, person1) where x.salary > 10`,
	`select struct(name: x.name, salary: x.salary) from x in person`,
	`select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id`,
	`select struct(e: x.ename, m: y.mname) from x in employee0, y in manager0 where x.dept = y.mdept`,
	`select distinct x.name from x in person`,
	`count(person)`,
	`sum(select x.salary from x in person)`,
	`select x.salary * 2 from x in person0`,
	`select x.name from x in person where x.salary > 10 and x.id = 1`,
	`union(select x.name from x in person0, bag("Sam"))`,
	`flatten(bag(bag(1), bag(2)))`,
	`select x.name from x in person where x.name = "Mary" or x.salary < 20`,
}

func TestOptimizedPlansAgreeWithReference(t *testing.T) {
	data := stores()
	ref := referenceResolver(data)
	options := []PushOptions{
		{},
		{Select: true},
		{Project: true},
		{Join: true},
		{Select: true, Project: true},
		{Select: true, Project: true, Join: true},
	}
	for _, src := range equivalenceQueries {
		e, err := oql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		want, err := oql.Eval(e, nil, ref)
		if err != nil {
			t.Fatalf("reference eval %q: %v", src, err)
		}
		for _, opt := range options {
			plan, err := Compile(e, fixtureResolver{})
			if err != nil {
				t.Fatalf("compile %q: %v", src, err)
			}
			plan = Push(Normalize(plan), AcceptAll{}, opt)
			in := &Interp{Submitter: testSubmitter(data), Resolver: ref}
			got, err := in.Run(plan)
			if err != nil {
				t.Errorf("run %q with %+v: %v\nplan: %s", src, opt, err, plan)
				continue
			}
			if !got.Equal(want) {
				t.Errorf("%q with %+v:\n got  %s\n want %s\n plan %s", src, opt, got, want, plan)
			}
		}
	}
}

// --- plan → OQL (the §4 closure property) ----------------------------------

func TestToOQLAgreesWithPlan(t *testing.T) {
	data := stores()
	ref := referenceResolver(data)
	for _, src := range equivalenceQueries {
		e, err := oql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		for _, opt := range []PushOptions{{}, {Select: true, Project: true, Join: true}} {
			plan, err := Compile(e, fixtureResolver{})
			if err != nil {
				t.Fatalf("compile %q: %v", src, err)
			}
			plan = Push(Normalize(plan), AcceptAll{}, opt)
			back, err := ToOQL(plan)
			if err != nil {
				t.Errorf("ToOQL(%s): %v", plan, err)
				continue
			}
			// The reconstructed query must be parseable...
			if _, err := oql.ParseQuery(back.String()); err != nil {
				t.Errorf("reconstructed OQL does not parse: %q: %v", back, err)
				continue
			}
			// ... and evaluate to the same answer as the plan.
			want, err := oql.Eval(e, nil, ref)
			if err != nil {
				t.Fatalf("reference eval: %v", err)
			}
			got, err := oql.Eval(back, nil, ref)
			if err != nil {
				t.Errorf("eval of reconstructed %q: %v", back, err)
				continue
			}
			if !got.Equal(want) {
				t.Errorf("%q: reconstructed %q\n got  %s\n want %s", src, back, got, want)
			}
		}
	}
}

func TestToOQLSimpleShapes(t *testing.T) {
	plan := mustCompile(t, `select x.name from x in person0 where x.salary > 10`)
	back, err := ToOQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := `select x.name from x in person0 where x.salary > 10`
	if back.String() != want {
		t.Errorf("ToOQL = %q, want %q", back, want)
	}
}

// --- source namespace translation (§2.2.2 maps) -----------------------------

func TestToSourceAppliesMap(t *testing.T) {
	// PersonPrime: mediator attrs n, s map to source name, salary; the
	// mediator extent personprime0 reads source relation person0.
	ref := ExtentRef{
		Extent:  "personprime0",
		Repo:    "r0",
		Source:  "person0",
		Iface:   "PersonPrime",
		Attrs:   []string{"n", "s"},
		AttrMap: map[string]string{"n": "name", "s": "salary"},
	}
	pred, err := oql.ParseQuery(`s > 10`)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Project{
		Cols:  []Col{{Name: "n", Expr: &oql.Ident{Name: "n"}}},
		Input: &Select{Pred: pred, Input: &Get{Ref: ref}},
	}
	src, err := ToSource(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := "project([name], select(salary > 10, get(person0)))"
	if src.String() != want {
		t.Errorf("ToSource = %s, want %s", src, want)
	}
	// Executing against the store works end to end.
	in := &Interp{Cols: stores()["r0"]}
	v, err := in.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*types.Bag)
	if got.Len() != 1 {
		t.Errorf("rows = %d, want 1 (only Mary earns > 10)", got.Len())
	}
	// And FromSource renames the tuple back into the mediator namespace,
	// where the attribute is called n.
	tuple := got.At(0).(*types.Struct)
	back := FromSource(ref, tuple)
	if v, ok := back.Get("n"); !ok || !v.Equal(types.Str("Mary")) {
		t.Errorf("renamed tuple = %s, want field n = Mary", back)
	}
}

func TestToSourceConflictingMaps(t *testing.T) {
	a := ExtentRef{Extent: "e1", Repo: "r0", Source: "s1", Attrs: []string{"x"}, AttrMap: map[string]string{"x": "a"}}
	b := ExtentRef{Extent: "e2", Repo: "r0", Source: "s2", Attrs: []string{"x"}, AttrMap: map[string]string{"x": "b"}}
	plan := &Join{L: &Get{Ref: a}, R: &Get{Ref: b}}
	if _, err := ToSource(plan); err == nil {
		t.Error("ambiguous attribute mapping should fail")
	}
}

// --- node plumbing -----------------------------------------------------------

func TestTransformRebuilds(t *testing.T) {
	n := mustCompile(t, `select x.name from x in person0`)
	// Replace all Get extents with a marker name.
	out := Transform(n, func(m Node) Node {
		if g, ok := m.(*Get); ok {
			ref := g.Ref
			ref.Extent = "marked"
			return &Get{Ref: ref}
		}
		return m
	})
	if out.String() == n.String() {
		t.Error("transform should have rebuilt the tree")
	}
	found := false
	Walk(out, func(m Node) {
		if g, ok := m.(*Get); ok && g.Ref.Extent == "marked" {
			found = true
		}
	})
	if !found {
		t.Error("marker not found after transform")
	}
}

func TestOutputAttrs(t *testing.T) {
	get := &Get{Ref: personRef("person0", "r0")}
	attrs, ok := OutputAttrs(get)
	if !ok || len(attrs) != 3 {
		t.Fatalf("attrs = %v, %v", attrs, ok)
	}
	proj := &Project{Cols: []Col{{Name: "name", Expr: &oql.Ident{Name: "name"}}}, Input: get}
	attrs, ok = OutputAttrs(proj)
	if !ok || len(attrs) != 1 || attrs[0] != "name" {
		t.Fatalf("project attrs = %v, %v", attrs, ok)
	}
	if _, ok := OutputAttrs(&Map{Expr: &oql.Ident{Name: "x"}, Input: get}); ok {
		t.Error("map output attrs should be unknown")
	}
}

// --- normalization simplifications -------------------------------------------

func TestNormalizeEmptyPropagation(t *testing.T) {
	empty := &Const{Data: types.NewBag()}
	nonEmpty := &Const{Data: types.NewBag(types.Int(1))}
	pred, err := oql.ParseQuery(`x > 1`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		plan Node
	}{
		{"select over empty", &Select{Pred: pred, Input: empty}},
		{"map over empty", &Map{Expr: pred, Input: empty}},
		{"bind over empty", &Bind{Var: "x", Input: empty}},
		{"join with empty side", &Join{L: nonEmpty, R: empty}},
		{"distinct over empty", &Distinct{Input: empty}},
		{"flatten over empty", &Flatten{Input: empty}},
		{"union of empties", &Union{Inputs: []Node{empty, empty}}},
	}
	for _, tt := range cases {
		got := Normalize(tt.plan)
		if !isEmptyConst(got) {
			t.Errorf("%s: normalized to %s, want empty const", tt.name, got)
		}
	}
}

func TestNormalizeConstantPredicates(t *testing.T) {
	input := &Const{Data: types.NewBag(types.Int(1), types.Int(2))}
	trueSel := &Select{Pred: &oql.Literal{Val: types.Bool(true)}, Input: input}
	if got := Normalize(trueSel); !Equal(got, input) {
		t.Errorf("select(true) should vanish: %s", got)
	}
	falseSel := &Select{Pred: &oql.Literal{Val: types.Bool(false)}, Input: input}
	if got := Normalize(falseSel); !isEmptyConst(got) {
		t.Errorf("select(false) should empty: %s", got)
	}
}

func TestNormalizeDropsEmptyUnionBranches(t *testing.T) {
	empty := &Const{Data: types.NewBag()}
	keep := &Const{Data: types.NewBag(types.Int(7))}
	u := &Union{Inputs: []Node{empty, keep, empty}}
	got := Normalize(u)
	if !Equal(got, keep) {
		t.Errorf("union with empty branches should reduce to the survivor: %s", got)
	}
}

// TestPushableContains: contains() predicates participate in pushdown.
func TestPushableContains(t *testing.T) {
	n := Normalize(mustCompile(t, `select x.name from x in person0 where contains(x.name, "Mar")`))
	pushed := Push(n, AcceptAll{}, PushOptions{Select: true})
	want := `map(x.name, bind(x, submit(r0, select(contains(name, "Mar"), get(person0)))))`
	if pushed.String() != want {
		t.Errorf("pushed = %s\nwant    %s", pushed, want)
	}
	// And the source-translated form renames attributes through maps.
	subs := Submits(pushed)
	if len(subs) != 1 {
		t.Fatalf("submits = %d", len(subs))
	}
}
