package algebra

import (
	"context"
	"fmt"

	"disco/internal/oql"
	"disco/internal/types"
)

// Collections supplies named collections to the interpreter: relations at a
// data source, or materialized extents at the mediator.
type Collections interface {
	Collection(name string) (*types.Bag, error)
}

// CollectionsMap is a map-backed Collections.
type CollectionsMap map[string]*types.Bag

// Collection implements Collections.
func (m CollectionsMap) Collection(name string) (*types.Bag, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("unknown collection %q", name)
	}
	return b, nil
}

// Interp evaluates logical plans directly. Data sources use it to execute
// submitted expressions with exactly the mediator's operator semantics
// (the paper stresses the two must match exactly, §3.2); the tests use it
// as the executable specification the optimized runtime must agree with.
//
// Per-tuple expressions (select predicates, projections, join conditions,
// dependent domains) run as closure-compiled programs (oql.Compile): the
// expression lowers once per operator and each tuple binds into a flat
// slot environment, instead of re-walking the AST over an allocated Env
// chain per element — the same engine the mediator's physical layer uses,
// so the semantics stay aligned by construction (the compiled evaluator is
// differentially tested against oql.Eval).
type Interp struct {
	// Cols resolves Get leaves. Get nodes look up Ref.Extent, so plans
	// translated with ToSource resolve source relation names and mediator
	// plans resolve extent names.
	Cols Collections
	// Resolver resolves free collection names inside expressions (nested
	// selects in projections and predicates). Nil means none resolve.
	Resolver oql.Resolver
	// Submitter executes submit nodes. Nil means submits are an error.
	Submitter func(repo string, expr Node) (types.Value, error)
	// Ctx, when non-nil, bounds the evaluation: the interpreter checks it
	// at every operator boundary and periodically inside join loops, so a
	// cancelled or expired request stops burning CPU promptly. Data-source
	// servers set it to the wire server's per-request context; a nil Ctx
	// evaluates unbounded (the reference-interpreter default).
	Ctx context.Context
}

// ctxErr reports the context's error, if a context is installed and done.
func (in *Interp) ctxErr() error {
	if in.Ctx == nil {
		return nil
	}
	if err := in.Ctx.Err(); err != nil {
		return fmt.Errorf("interp: evaluation stopped: %w", err)
	}
	return nil
}

func (in *Interp) resolver() oql.Resolver {
	if in.Resolver != nil {
		return in.Resolver
	}
	return oql.EmptyResolver
}

// Run evaluates the plan to a value: a bag for collection-valued operators,
// a scalar for Agg and whatever the expression yields for Eval.
func (in *Interp) Run(n Node) (types.Value, error) {
	switch x := n.(type) {
	case *Agg:
		input, err := in.runBag(x.Input)
		if err != nil {
			return nil, err
		}
		return oql.ApplyCall(x.Fn, []types.Value{input})
	case *Eval:
		return oql.Eval(x.Expr, nil, in.resolver())
	default:
		return in.runBag(n)
	}
}

func (in *Interp) runBag(n Node) (*types.Bag, error) {
	// One check per operator: evaluation is a post-order walk, so a
	// cancelled context stops the plan between operators — the interpreter
	// equivalent of the physical layer's batch-boundary checks.
	if err := in.ctxErr(); err != nil {
		return nil, err
	}
	switch x := n.(type) {
	case *Get:
		if in.Cols == nil {
			return nil, fmt.Errorf("interp: no collections to resolve get(%s)", x.Ref.Extent)
		}
		return in.Cols.Collection(x.Ref.Extent)
	case *Const:
		return x.Data, nil
	case *Union:
		bags := make([]*types.Bag, 0, len(x.Inputs))
		for _, c := range x.Inputs {
			b, err := in.runBag(c)
			if err != nil {
				return nil, err
			}
			bags = append(bags, b)
		}
		return types.BagUnion(bags...), nil
	case *Submit:
		if in.Submitter == nil {
			return nil, fmt.Errorf("interp: no submitter for %s", x)
		}
		v, err := in.Submitter(x.Repo, x.Input)
		if err != nil {
			return nil, err
		}
		b, ok := v.(*types.Bag)
		if !ok {
			return nil, fmt.Errorf("interp: submit to %s returned %s, want bag", x.Repo, v.Kind())
		}
		return b, nil
	case *Bind:
		input, err := in.runBag(x.Input)
		if err != nil {
			return nil, err
		}
		return types.BagMap(input, func(e types.Value) (types.Value, error) {
			return types.NewStruct(types.Field{Name: x.Var, Value: e}), nil
		})
	case *Select:
		input, err := in.runBag(x.Input)
		if err != nil {
			return nil, err
		}
		eval, err := in.evaluator(x.Pred)
		if err != nil {
			return nil, err
		}
		return types.BagFilter(input, func(e types.Value) (bool, error) {
			v, err := eval(e)
			if err != nil {
				return false, err
			}
			return types.Truthy(v)
		})
	case *Project:
		input, err := in.runBag(x.Input)
		if err != nil {
			return nil, err
		}
		// The whole column list compiles into one struct-constructor
		// program, so each tuple binds its variables exactly once.
		eval, err := in.evaluator(ProjCtor(x.Cols))
		if err != nil {
			return nil, err
		}
		return types.BagMap(input, eval)
	case *Map:
		input, err := in.runBag(x.Input)
		if err != nil {
			return nil, err
		}
		eval, err := in.evaluator(x.Expr)
		if err != nil {
			return nil, err
		}
		return types.BagMap(input, eval)
	case *Join:
		return in.runJoin(x)
	case *Nest:
		input, err := in.runBag(x.Input)
		if err != nil {
			return nil, err
		}
		return types.BagMap(input, func(e types.Value) (types.Value, error) {
			st, ok := e.(*types.Struct)
			if !ok {
				return nil, fmt.Errorf("interp: nest over %s", e.Kind())
			}
			outer := make([]types.Field, 0, len(x.Groups))
			for _, g := range x.Groups {
				inner := make([]types.Field, 0, len(g.Attrs))
				for _, a := range g.Attrs {
					v, ok := st.Get(a)
					if !ok {
						return nil, fmt.Errorf("interp: nest attribute %q missing", a)
					}
					inner = append(inner, types.Field{Name: a, Value: v})
				}
				outer = append(outer, types.Field{Name: g.Var, Value: types.NewStruct(inner...)})
			}
			return types.NewStruct(outer...), nil
		})
	case *Depend:
		input, err := in.runBag(x.Input)
		if err != nil {
			return nil, err
		}
		eval, err := in.evaluator(x.Domain)
		if err != nil {
			return nil, err
		}
		var out []types.Value
		var rangeErr error
		input.Range(func(e types.Value) bool {
			dom, err := eval(e)
			if err != nil {
				rangeErr = err
				return false
			}
			st := e.(*types.Struct)
			if err := types.RangeElements(dom, func(d types.Value) bool {
				out = append(out, types.ExtendStruct(st, types.Field{Name: x.Var, Value: d}))
				return true
			}); err != nil {
				rangeErr = fmt.Errorf("interp: dependent domain for %s: %w", x.Var, err)
				return false
			}
			return true
		})
		if rangeErr != nil {
			return nil, rangeErr
		}
		return types.NewBag(out...), nil
	case *Distinct:
		input, err := in.runBag(x.Input)
		if err != nil {
			return nil, err
		}
		return types.BagDistinct(input), nil
	case *Flatten:
		input, err := in.runBag(x.Input)
		if err != nil {
			return nil, err
		}
		return types.Flatten(input)
	case *Eval:
		v, err := oql.Eval(x.Expr, nil, in.resolver())
		if err != nil {
			return nil, err
		}
		b, ok := v.(*types.Bag)
		if !ok {
			return nil, fmt.Errorf("interp: eval produced %s where a bag was needed", v.Kind())
		}
		return b, nil
	case *Agg:
		// An aggregate used where a collection is needed must itself have
		// produced a collection (matching the reference evaluator, which
		// errors on union/flatten over scalars).
		v, err := in.Run(x)
		if err != nil {
			return nil, err
		}
		b, ok := v.(*types.Bag)
		if !ok {
			return nil, fmt.Errorf("interp: %s produced %s where a collection was needed", x.Fn, v.Kind())
		}
		return b, nil
	default:
		return nil, fmt.Errorf("interp: unknown node %T", n)
	}
}

func (in *Interp) runJoin(x *Join) (*types.Bag, error) {
	left, err := in.runBag(x.L)
	if err != nil {
		return nil, err
	}
	right, err := in.runBag(x.R)
	if err != nil {
		return nil, err
	}
	var eval func(types.Value) (types.Value, error)
	if x.Pred != nil {
		eval, err = in.evaluator(x.Pred)
		if err != nil {
			return nil, err
		}
	}
	var out []types.Value
	for i := 0; i < left.Len(); i++ {
		// The nested loop is the interpreter's only superlinear operator, so
		// it re-checks the context as it goes — every 64 outer rows, which
		// bounds the overrun after a cancel without paying the check on
		// every tuple.
		if i%64 == 0 {
			if err := in.ctxErr(); err != nil {
				return nil, err
			}
		}
		l := left.At(i)
		ls, ok := l.(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("interp: join over %s elements", l.Kind())
		}
		for k := 0; k < right.Len(); k++ {
			r := right.At(k)
			rs, ok := r.(*types.Struct)
			if !ok {
				return nil, fmt.Errorf("interp: join over %s elements", r.Kind())
			}
			merged := types.JoinStructs(ls, rs)
			if eval != nil {
				v, err := eval(merged)
				if err != nil {
					return nil, err
				}
				keep, err := types.Truthy(v)
				if err != nil {
					return nil, err
				}
				if !keep {
					continue
				}
			}
			out = append(out, merged)
		}
	}
	return types.NewBag(out...), nil
}

// ProjCtor lowers a projection's column list into the single OQL struct
// constructor its tuples evaluate. It is the one definition of that
// lowering: both the reference interpreter and the physical layer's MkProj
// compile exactly this expression, so the two engines cannot diverge on
// projection semantics.
func ProjCtor(cols []Col) *oql.StructCtor {
	ctor := &oql.StructCtor{Fields: make([]oql.StructField, len(cols))}
	for i, c := range cols {
		ctor.Fields[i] = oql.StructField{Name: c.Name, Expr: c.Expr}
	}
	return ctor
}

// evaluator compiles an expression once and returns the per-tuple
// evaluation function: the element's struct fields bind into the program's
// flat slot environment (hoisted here, not per call). Compilation is per
// operator loop — amortized over the bag, not memoized (plans arrive
// freshly parsed, so their expression pointers would never hit a cache).
func (in *Interp) evaluator(e oql.Expr) (func(types.Value) (types.Value, error), error) {
	prog, err := oql.Compile(e)
	if err != nil {
		return nil, err
	}
	env := prog.NewEnv(in.resolver())
	return func(elem types.Value) (types.Value, error) {
		st, ok := elem.(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("interp: expression %s over non-struct element %s", e, elem)
		}
		env.BindStruct(st)
		return prog.Eval(env)
	}, nil
}

// ToSource translates a submit argument from the mediator namespace into
// the data-source namespace: extent names become source collection names
// and renamed attributes are rewritten through each extent's local
// transformation map (paper §3.3: "exec transforms the second argument ...
// using the map").
func ToSource(n Node) (Node, error) {
	rename := map[string]string{}
	conflict := map[string]bool{}
	Walk(n, func(m Node) {
		g, ok := m.(*Get)
		if !ok {
			return
		}
		for _, a := range g.Ref.Attrs {
			src := g.Ref.SourceAttr(a)
			if prev, seen := rename[a]; seen && prev != src {
				conflict[a] = true
			}
			rename[a] = src
		}
	})
	for a := range conflict {
		return nil, fmt.Errorf("algebra: attribute %q maps ambiguously across extents", a)
	}
	out := Transform(n, func(m Node) Node {
		switch x := m.(type) {
		case *Get:
			ref := x.Ref
			ref.Extent = ref.Source
			// Shard addressing is local to this mediator: the submit already
			// routes the call to the right repository, and a downstream
			// source (e.g. a composed mediator) knows the collection by its
			// plain name, not by this mediator's extent@repo form.
			ref.Partition = ""
			return &Get{Ref: ref}
		case *Select:
			return &Select{Pred: renameIdents(x.Pred, rename), Input: x.Input}
		case *Project:
			cols := make([]Col, len(x.Cols))
			for i, c := range x.Cols {
				cols[i] = Col{Name: rGet(rename, c.Name), Expr: renameIdents(c.Expr, rename)}
			}
			return &Project{Cols: cols, Input: x.Input}
		case *Join:
			if x.Pred == nil {
				return x
			}
			return &Join{L: x.L, R: x.R, Pred: renameIdents(x.Pred, rename)}
		default:
			return m
		}
	})
	return out, nil
}

// FromSource renames the attributes of a tuple returned by a data source
// back into the mediator namespace for one extent.
func FromSource(ref ExtentRef, tuple *types.Struct) *types.Struct {
	if len(ref.AttrMap) == 0 {
		return tuple
	}
	back := make(map[string]string, len(ref.AttrMap))
	for med, src := range ref.AttrMap {
		back[src] = med
	}
	fields := tuple.Fields()
	out := make([]types.Field, len(fields))
	for i, f := range fields {
		name := f.Name
		if med, ok := back[name]; ok {
			name = med
		}
		out[i] = types.Field{Name: name, Value: f.Value}
	}
	return types.NewStruct(out...)
}

func rGet(rename map[string]string, name string) string {
	if s, ok := rename[name]; ok {
		return s
	}
	return name
}

func renameIdents(e oql.Expr, rename map[string]string) oql.Expr {
	switch x := e.(type) {
	case *oql.Ident:
		if s, ok := rename[x.Name]; ok && !x.Star {
			return &oql.Ident{Name: s}
		}
		return x
	case *oql.Unary:
		return &oql.Unary{Op: x.Op, X: renameIdents(x.X, rename)}
	case *oql.Binary:
		return &oql.Binary{Op: x.Op, L: renameIdents(x.L, rename), R: renameIdents(x.R, rename)}
	case *oql.Call:
		args := make([]oql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = renameIdents(a, rename)
		}
		return &oql.Call{Fn: x.Fn, Args: args}
	default:
		return e
	}
}
