package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"disco/internal/oql"
	"disco/internal/types"
)

// TestMapRoundTripProperty is DESIGN.md's map-soundness invariant: pushing
// a tuple through a random local transformation map into the source
// namespace and renaming it back is the identity.
func TestMapRoundTripProperty(t *testing.T) {
	letters := []string{"alpha", "beta", "gamma", "delta", "eps"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random mediator attributes with a random partial renaming.
		n := 1 + r.Intn(4)
		attrs := make([]string, 0, n)
		attrMap := map[string]string{}
		used := map[string]bool{}
		for i := 0; i < n; i++ {
			a := letters[r.Intn(len(letters))]
			if used[a] {
				continue
			}
			used[a] = true
			attrs = append(attrs, a)
			if r.Intn(2) == 0 {
				attrMap[a] = "src_" + a
			}
		}
		ref := ExtentRef{
			Extent: "e", Repo: "r0", Source: "s", Attrs: attrs, AttrMap: attrMap,
		}
		// A tuple in the SOURCE namespace (what the wrapper returns).
		fields := make([]types.Field, 0, len(attrs))
		for _, a := range attrs {
			fields = append(fields, types.Field{Name: ref.SourceAttr(a), Value: types.Int(r.Int63n(100))})
		}
		srcTuple := types.NewStruct(fields...)
		med := FromSource(ref, srcTuple)
		// Every mediator attribute is present with the source's value.
		for _, a := range attrs {
			got, ok := med.Get(a)
			if !ok {
				return false
			}
			want, _ := srcTuple.Get(ref.SourceAttr(a))
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestToSourceInvertsStripping: pushing a predicate down (stripVars) and
// translating it to the source namespace (ToSource) yields an expression
// whose execution against renamed source data matches evaluating the
// original predicate against mediator-renamed data.
func TestToSourceThenExecuteMatchesMediatorEvaluation(t *testing.T) {
	ref := ExtentRef{
		Extent: "prime", Repo: "r0", Source: "person0",
		Attrs:   []string{"n", "s"},
		AttrMap: map[string]string{"n": "name", "s": "salary"},
	}
	pred, err := oql.ParseQuery(`s > 10 and contains(n, "a")`)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Select{Pred: pred, Input: &Get{Ref: ref}}
	src, err := ToSource(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Source data in the source namespace.
	store := CollectionsMap{"person0": types.NewBag(
		types.NewStruct(types.Field{Name: "name", Value: types.Str("Mary")}, types.Field{Name: "salary", Value: types.Int(200)}),
		types.NewStruct(types.Field{Name: "name", Value: types.Str("Bob")}, types.Field{Name: "salary", Value: types.Int(5)}),
		types.NewStruct(types.Field{Name: "name", Value: types.Str("Zed")}, types.Field{Name: "salary", Value: types.Int(90)}),
	)}
	in := &Interp{Cols: store}
	v, err := in.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*types.Bag)
	if got.Len() != 1 { // only Mary: salary > 10 and name contains "a"
		t.Errorf("rows = %d: %s", got.Len(), got)
	}
}

// --- ToOQL coverage for the non-pyramid paths --------------------------------

func TestToOQLRawSelectPath(t *testing.T) {
	// A raw (source-side) select outside any submit: the fresh-variable
	// rendering must still evaluate correctly.
	pred, err := oql.ParseQuery(`salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	rows := types.NewBag(
		types.NewStruct(types.Field{Name: "name", Value: types.Str("Mary")}, types.Field{Name: "salary", Value: types.Int(200)}),
		types.NewStruct(types.Field{Name: "name", Value: types.Str("Ann")}, types.Field{Name: "salary", Value: types.Int(3)}),
	)
	plan := &Select{Pred: pred, Input: &Project{
		Cols:  []Col{{Name: "name", Expr: &oql.Ident{Name: "name"}}, {Name: "salary", Expr: &oql.Ident{Name: "salary"}}},
		Input: &Const{Data: rows},
	}}
	back, err := ToOQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oql.ParseQuery(back.String()); err != nil {
		t.Fatalf("reconstructed %q does not parse: %v", back, err)
	}
	got, err := oql.Eval(back, nil, oql.EmptyResolver)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*types.Bag).Len() != 1 {
		t.Errorf("raw-path OQL = %q evaluated to %s", back, got)
	}
}

func TestToOQLNestPath(t *testing.T) {
	flat := types.NewBag(types.NewStruct(
		types.Field{Name: "a", Value: types.Int(1)},
		types.Field{Name: "b", Value: types.Int(2)},
	))
	plan := &Nest{
		Groups: []NestGroup{{Var: "x", Attrs: []string{"a"}}, {Var: "y", Attrs: []string{"b"}}},
		Input:  &Const{Data: flat},
	}
	back, err := ToOQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := oql.Eval(back, nil, oql.EmptyResolver)
	if err != nil {
		t.Fatalf("eval %q: %v", back, err)
	}
	in := &Interp{}
	want, err := in.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("nest OQL %q = %s, want %s", back, got, want)
	}
}

func TestToOQLDependPath(t *testing.T) {
	groups := types.NewBag(types.NewStruct(
		types.Field{Name: "label", Value: types.Str("g")},
		types.Field{Name: "members", Value: types.NewBag(types.Str("a"), types.Str("b"))},
	))
	dom, err := oql.ParseQuery(`g.members`)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Depend{
		Var:    "m",
		Domain: dom,
		Input:  &Bind{Var: "g", Input: &Const{Data: groups}},
	}
	back, err := ToOQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := oql.Eval(back, nil, oql.EmptyResolver)
	if err != nil {
		t.Fatalf("eval %q: %v", back, err)
	}
	in := &Interp{}
	want, err := in.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("depend OQL %q = %s, want %s", back, got, want)
	}
}

func TestToOQLBareBind(t *testing.T) {
	plan := &Bind{Var: "x", Input: &Const{Data: types.NewBag(types.Int(1), types.Int(2))}}
	back, err := ToOQL(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := oql.Eval(back, nil, oql.EmptyResolver)
	if err != nil {
		t.Fatalf("eval %q: %v", back, err)
	}
	in := &Interp{}
	want, err := in.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("bind OQL %q = %s, want %s", back, got, want)
	}
}
