package algebra

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"disco/internal/types"
)

// Partitioning scheme kinds. A horizontally partitioned extent may declare
// how rows are placed across its repositories; the optimizer uses the
// declaration to prune shards that cannot contain rows a predicate asks for
// and to build partition-wise joins between co-partitioned extents.
const (
	// PartHash places a row at shard HashValue(attr) mod n.
	PartHash = "hash"
	// PartRange places a row at the shard whose [Lo, Hi) interval contains
	// the attribute value.
	PartRange = "range"
)

// RangeBound is one shard's key interval for range partitioning: values v
// with Lo <= v < Hi live at the shard. A nil Lo means unbounded below, a nil
// Hi unbounded above (the ODL spellings ..10 and 20..).
type RangeBound struct {
	Lo, Hi types.Value
}

// String renders the bound in ODL syntax (..10, 10..20, 20..). The output
// must reparse through the ODL lexer, which reads plain decimal numbers
// only — floats render without exponent notation.
func (r RangeBound) String() string {
	var b strings.Builder
	if r.Lo != nil {
		b.WriteString(boundString(r.Lo))
	}
	b.WriteString("..")
	if r.Hi != nil {
		b.WriteString(boundString(r.Hi))
	}
	return b.String()
}

func boundString(v types.Value) string {
	if f, ok := v.(types.Float); ok {
		return strconv.FormatFloat(float64(f), 'f', -1, 64)
	}
	return v.String()
}

// PartitionSpec is the placement metadata of a horizontally partitioned
// extent: which attribute routes rows and how (declared in ODL as
// "partition by hash(attr)" or "partition by range(attr) (..10, 10..20,
// 20..)"). The declaration is a contract: the DBA asserts rows are placed by
// the scheme, and the optimizer prunes and partitions work under that
// assumption.
type PartitionSpec struct {
	// Kind is PartHash or PartRange.
	Kind string
	// Attr is the mediator-side attribute that routes rows.
	Attr string
	// Ranges holds one interval per partition, in declaration order. Only
	// set for PartRange, where its length equals the partition count.
	Ranges []RangeBound
}

// String renders the scheme as its ODL clause (without the leading
// "partition by").
func (s *PartitionSpec) String() string {
	if s.Kind == PartHash {
		return fmt.Sprintf("hash(%s)", s.Attr)
	}
	parts := make([]string, len(s.Ranges))
	for i, r := range s.Ranges {
		parts[i] = r.String()
	}
	return fmt.Sprintf("range(%s) (%s)", s.Attr, strings.Join(parts, ", "))
}

// Equal reports whether two specs describe the same placement.
func (s *PartitionSpec) Equal(o *PartitionSpec) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Kind != o.Kind || s.Attr != o.Attr || len(s.Ranges) != len(o.Ranges) {
		return false
	}
	for i, r := range s.Ranges {
		if !boundEqual(r.Lo, o.Ranges[i].Lo) || !boundEqual(r.Hi, o.Ranges[i].Hi) {
			return false
		}
	}
	return true
}

func boundEqual(a, b types.Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Equal(b)
}

// HashValue hashes a value for hash partitioning: FNV-1a over the canonical
// key, so model-equal values (Int(2) and Float(2)) land on the same shard.
// Data placement and query routing must use the same function; it is
// exported so loaders can place rows where the optimizer will look.
func HashValue(v types.Value) uint64 {
	h := fnv.New64a()
	h.Write([]byte(types.CanonicalKey(v)))
	return h.Sum64()
}

// Locate returns the index of the shard that holds rows whose partition
// attribute equals v, or -1 when no shard's interval contains it (possible
// only for range schemes with uncovered key space). nparts is the extent's
// partition count.
func (s *PartitionSpec) Locate(v types.Value, nparts int) int {
	switch s.Kind {
	case PartHash:
		if nparts <= 0 {
			return -1
		}
		return int(HashValue(v) % uint64(nparts))
	case PartRange:
		for i, r := range s.Ranges {
			in, err := r.contains(v)
			if err != nil {
				return -1
			}
			if in {
				return i
			}
		}
		return -1
	default:
		return -1
	}
}

// contains reports whether v falls in [Lo, Hi). A comparison error (the
// value's type does not order against the bounds) propagates so callers can
// refuse to prune rather than route wrongly.
func (r RangeBound) contains(v types.Value) (bool, error) {
	if r.Lo != nil {
		c, err := types.Compare(v, r.Lo)
		if err != nil || c < 0 {
			return false, err
		}
	}
	if r.Hi != nil {
		c, err := types.Compare(v, r.Hi)
		if err != nil || c >= 0 {
			return false, err
		}
	}
	return true, nil
}

// Validate checks internal consistency against a partition count: range
// schemes need exactly one interval per partition, each with Lo < Hi when
// both are set.
func (s *PartitionSpec) Validate(nparts int) error {
	switch s.Kind {
	case PartHash:
		if len(s.Ranges) != 0 {
			return fmt.Errorf("hash partitioning takes no ranges")
		}
		return nil
	case PartRange:
		if len(s.Ranges) != nparts {
			return fmt.Errorf("range partitioning declares %d ranges for %d partitions", len(s.Ranges), nparts)
		}
		for i, r := range s.Ranges {
			if r.Lo == nil && r.Hi == nil && nparts > 1 {
				return fmt.Errorf("range %d (..) covers everything; other partitions are unreachable", i)
			}
			if r.Lo != nil && r.Hi != nil {
				c, err := types.Compare(r.Lo, r.Hi)
				if err != nil {
					return fmt.Errorf("range %d bounds do not order: %v", i, err)
				}
				if c >= 0 {
					return fmt.Errorf("range %d is empty (%s)", i, r)
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown partitioning kind %q", s.Kind)
	}
}
