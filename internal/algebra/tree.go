package algebra

import (
	"fmt"
	"strings"
)

// TreeString renders a plan as an indented operator tree for EXPLAIN-style
// output: each node on its own line with box-drawing connectors, carrying
// the node's own parameters but not its inputs (which appear as children).
func TreeString(n Node) string {
	var b strings.Builder
	writeTree(&b, n, "", "")
	return b.String()
}

func writeTree(b *strings.Builder, n Node, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(nodeLabel(n))
	b.WriteByte('\n')
	children := n.Children()
	for i, c := range children {
		if i == len(children)-1 {
			writeTree(b, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			writeTree(b, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// nodeLabel renders one operator without its inputs.
func nodeLabel(n Node) string {
	switch x := n.(type) {
	case *Get:
		return fmt.Sprintf("get(%s)", x.Ref.QualifiedName())
	case *Const:
		return fmt.Sprintf("const(%d rows)", x.Data.Len())
	case *Union:
		if x.Par {
			return fmt.Sprintf("punion[%d] (parallel scatter-gather)", len(x.Inputs))
		}
		return fmt.Sprintf("union[%d]", len(x.Inputs))
	case *Submit:
		return fmt.Sprintf("submit(%s)", x.Repo)
	case *Bind:
		return fmt.Sprintf("bind(%s)", x.Var)
	case *Select:
		return fmt.Sprintf("select(%s)", x.Pred)
	case *Project:
		cols := make([]string, len(x.Cols))
		for i, c := range x.Cols {
			cols[i] = c.Name
		}
		return fmt.Sprintf("project(%s)", strings.Join(cols, ", "))
	case *Map:
		return fmt.Sprintf("map(%s)", x.Expr)
	case *Join:
		if x.Pred == nil {
			return "join(cross)"
		}
		return fmt.Sprintf("join(%s)", x.Pred)
	case *Nest:
		vars := make([]string, len(x.Groups))
		for i, g := range x.Groups {
			vars[i] = g.Var
		}
		return fmt.Sprintf("nest(%s)", strings.Join(vars, ", "))
	case *Depend:
		return fmt.Sprintf("depend(%s in %s)", x.Var, x.Domain)
	case *Distinct:
		return "distinct"
	case *Flatten:
		return "flatten"
	case *Agg:
		return x.Fn
	case *Eval:
		return fmt.Sprintf("eval(%s)", x.Expr)
	default:
		return fmt.Sprintf("%T", n)
	}
}
