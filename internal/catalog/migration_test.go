package catalog

import (
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/types"
)

// migrationCatalog is partitionCatalog plus spare repositories and one
// range-partitioned extent (..10, 10..20, 20..) over r0, r1, r2.
func migrationCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if err := c.DefineInterface(&types.Interface{
		Name: "Person", ExtentName: "person",
		Attrs: []types.Attribute{
			{Name: "id", Type: types.ScalarAttr(types.TInt)},
			{Name: "name", Type: types.ScalarAttr(types.TString)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddWrapper(&Wrapper{Name: "w0", Kind: "sql"}); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"r0", "r1", "r2", "r3", "r4"} {
		if err := c.AddRepository(&Repository{Name: r, Address: "mem:" + r}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1", "r2"},
		Scheme: &algebra.PartitionSpec{Kind: algebra.PartRange, Attr: "id", Ranges: []algebra.RangeBound{
			{Hi: types.Int(10)},
			{Lo: types.Int(10), Hi: types.Int(20)},
			{Lo: types.Int(20)},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMigrationPhaseTransitions(t *testing.T) {
	c := migrationCatalog(t)
	if err := c.BeginMigration(&Migration{Extent: "people", Kind: MigrateMove, From: "r1", To: "r3"}); err != nil {
		t.Fatal(err)
	}
	mig, ok := c.MigrationOf("people")
	if !ok || mig.Phase != PhaseDeclared {
		t.Fatalf("after begin: %+v", mig)
	}
	// Illegal jumps are refused from declared.
	if err := c.SetMigrationPhase("people", PhaseDualRead); err == nil {
		t.Error("declared -> dual-read should be illegal")
	}
	if err := c.CutoverMigration("people"); err == nil {
		t.Error("declared -> cutover should be illegal")
	}
	if err := c.FinishMigration("people"); err == nil {
		t.Error("finish before cutover should be illegal")
	}
	if err := c.ClearMigration("people"); err == nil {
		t.Error("clear of a non-aborted migration should be illegal")
	}
	if err := c.SetMigrationPhase("people", PhaseCopying); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMigrationPhase("people", PhaseCopying); err == nil {
		t.Error("copying -> copying should be illegal")
	}
	if err := c.SetMigrationPhase("people", PhaseDualRead); err != nil {
		t.Fatal(err)
	}
	if err := c.AbortMigration("people"); err != nil {
		t.Fatal(err)
	}
	// Abort is idempotent; placement never changed.
	if err := c.AbortMigration("people"); err != nil {
		t.Errorf("re-abort should be a no-op: %v", err)
	}
	me, _ := c.Extent("people")
	if got := strings.Join(me.Partitions(), ","); got != "r0,r1,r2" {
		t.Errorf("aborted migration changed placement: %s", got)
	}
	if err := c.ClearMigration("people"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.MigrationOf("people"); ok {
		t.Error("cleared record still present")
	}
	if err := c.ClearMigration("people"); err != nil {
		t.Errorf("clearing a missing record should be a no-op: %v", err)
	}
}

func TestMigrationAbortAfterCutoverRefused(t *testing.T) {
	c := migrationCatalog(t)
	if err := c.BeginMigration(&Migration{Extent: "people", Kind: MigrateMove, From: "r1", To: "r3"}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMigrationPhase("people", PhaseCopying); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMigrationPhase("people", PhaseDualRead); err != nil {
		t.Fatal(err)
	}
	if err := c.CutoverMigration("people"); err != nil {
		t.Fatal(err)
	}
	if err := c.AbortMigration("people"); err == nil {
		t.Error("abort past cutover should be refused")
	}
	if err := c.FinishMigration("people"); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationCutoverCloneIsolation: cutover swaps in a deep clone; a reader
// holding the pre-cutover MetaExtent keeps seeing the old placement.
func TestMigrationCutoverCloneIsolation(t *testing.T) {
	c := migrationCatalog(t)
	before, _ := c.Extent("people")
	if err := c.BeginMigration(&Migration{Extent: "people", Kind: MigrateSplit, From: "r1", To: "r3", SplitAt: types.Int(15)}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMigrationPhase("people", PhaseCopying); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMigrationPhase("people", PhaseDualRead); err != nil {
		t.Fatal(err)
	}
	version := c.Version()
	if err := c.CutoverMigration("people"); err != nil {
		t.Fatal(err)
	}
	if c.Version() <= version {
		t.Error("cutover did not bump the catalog version")
	}
	if got := strings.Join(before.Partitions(), ","); got != "r0,r1,r2" {
		t.Errorf("pre-cutover snapshot mutated: %s", got)
	}
	if got := before.Scheme.String(); got != "range(id) (..10, 10..20, 20..)" {
		t.Errorf("pre-cutover scheme mutated: %s", got)
	}
	after, _ := c.Extent("people")
	if got := strings.Join(after.Partitions(), ","); got != "r0,r1,r3,r2" {
		t.Errorf("post-split placement = %s", got)
	}
	if got := after.Scheme.String(); got != "range(id) (..10, 10..15, 15..20, 20..)" {
		t.Errorf("post-split scheme = %s", got)
	}
}

// TestMigrationMergeCutoverPlacement covers both merge directions and the
// merge-to-one-partition degeneration.
func TestMigrationMergeCutoverPlacement(t *testing.T) {
	runMerge := func(t *testing.T, c *Catalog, from, to string) {
		t.Helper()
		if err := c.BeginMigration(&Migration{Extent: "people", Kind: MigrateMerge, From: from, To: to}); err != nil {
			t.Fatal(err)
		}
		if err := c.SetMigrationPhase("people", PhaseCopying); err != nil {
			t.Fatal(err)
		}
		if err := c.CutoverMigration("people"); err != nil {
			t.Fatal(err)
		}
		if err := c.FinishMigration("people"); err != nil {
			t.Fatal(err)
		}
	}

	// Absorb upward: r1 (10..20) into r2 (20..).
	c := migrationCatalog(t)
	runMerge(t, c, "r1", "r2")
	me, _ := c.Extent("people")
	if got := strings.Join(me.Partitions(), ","); got != "r0,r2" {
		t.Errorf("upward merge placement = %s", got)
	}
	if got := me.Scheme.String(); got != "range(id) (..10, 10..)" {
		t.Errorf("upward merge scheme = %s", got)
	}

	// Absorb downward: r1 (10..20) into r0 (..10).
	c = migrationCatalog(t)
	runMerge(t, c, "r1", "r0")
	me, _ = c.Extent("people")
	if got := strings.Join(me.Partitions(), ","); got != "r0,r2" {
		t.Errorf("downward merge placement = %s", got)
	}
	if got := me.Scheme.String(); got != "range(id) (..20, 20..)" {
		t.Errorf("downward merge scheme = %s", got)
	}

	// Merging down to one partition drops the scheme entirely.
	runMerge(t, c, "r2", "r0")
	me, _ = c.Extent("people")
	if me.Partitioned() || me.Scheme != nil || me.Repository != "r0" {
		t.Errorf("merge-to-one extent = repositories %v scheme %v repository %s, want plain r0",
			me.Repositories, me.Scheme, me.Repository)
	}
}

// TestMigrationDualReadSkippedForMerge: merge has no dual-read phase — the
// absorbed shard stays authoritative until placement merges.
func TestMigrationDualReadSkippedForMerge(t *testing.T) {
	c := migrationCatalog(t)
	if err := c.BeginMigration(&Migration{Extent: "people", Kind: MigrateMerge, From: "r1", To: "r2"}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMigrationPhase("people", PhaseCopying); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMigrationPhase("people", PhaseDualRead); err == nil {
		t.Error("merge must not enter dual-read")
	}
}

func TestMigrationBeginRetriesAborted(t *testing.T) {
	c := migrationCatalog(t)
	mv := &Migration{Extent: "people", Kind: MigrateMove, From: "r1", To: "r3"}
	if err := c.BeginMigration(mv); err != nil {
		t.Fatal(err)
	}
	if err := c.AbortMigration("people"); err != nil {
		t.Fatal(err)
	}
	// A different change may not replace the aborted record (its cleanup is
	// still owed), but the same change may retry.
	if err := c.BeginMigration(&Migration{Extent: "people", Kind: MigrateMove, From: "r1", To: "r4"}); err == nil {
		t.Error("different target should not replace an aborted record")
	}
	if err := c.BeginMigration(mv); err != nil {
		t.Errorf("same target should retry an aborted migration: %v", err)
	}
	mig, ok := c.MigrationOf("people")
	if !ok || mig.Phase != PhaseDeclared {
		t.Errorf("retried record = %+v, want phase declared", mig)
	}
}

func TestMigrationReplicatedShardCutover(t *testing.T) {
	c := migrationCatalog(t)
	if err := c.AddExtent(&MetaExtent{
		Name: "crew", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1"},
		Replicas:     [][]string{{"r0", "r2"}, {"r1"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginMigration(&Migration{Extent: "crew", Kind: MigrateMove, From: "r1", To: "r3"}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMigrationPhase("crew", PhaseCopying); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMigrationPhase("crew", PhaseDualRead); err != nil {
		t.Fatal(err)
	}
	if err := c.CutoverMigration("crew"); err != nil {
		t.Fatal(err)
	}
	me, _ := c.Extent("crew")
	if got := strings.Join(me.Partitions(), ","); got != "r0,r3" {
		t.Errorf("placement = %s", got)
	}
	// The moved shard's replica group collapses to its new single home; the
	// untouched shard keeps its group.
	if g := me.ReplicaGroup("r3"); strings.Join(g, ",") != "r3" {
		t.Errorf("moved shard group = %v", g)
	}
	if g := me.ReplicaGroup("r0"); strings.Join(g, ",") != "r0,r2" {
		t.Errorf("untouched shard group = %v", g)
	}
}

func TestMigrationDropExtentRemovesRecord(t *testing.T) {
	c := migrationCatalog(t)
	if err := c.BeginMigration(&Migration{Extent: "people", Kind: MigrateMove, From: "r1", To: "r3"}); err != nil {
		t.Fatal(err)
	}
	if err := c.DropExtent("people"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.MigrationOf("people"); ok {
		t.Error("dropping the extent should remove its migration record")
	}
	if got := c.Migrations(); len(got) != 0 {
		t.Errorf("Migrations() = %v, want empty", got)
	}
}

func TestMigrationRestore(t *testing.T) {
	c := migrationCatalog(t)
	if err := c.RestoreMigration(&Migration{
		Extent: "people", Kind: MigrateSplit, From: "r1", To: "r3",
		SplitAt: types.Int(15), Phase: PhaseDualRead,
	}); err != nil {
		t.Fatal(err)
	}
	mig, ok := c.MigrationOf("people")
	if !ok || mig.Phase != PhaseDualRead || !mig.SplitAt.Equal(types.Int(15)) {
		t.Errorf("restored = %+v", mig)
	}
	if err := c.RestoreMigration(&Migration{Extent: "people", Kind: "shuffle", From: "r1", To: "r3", Phase: PhaseCopying}); err == nil {
		t.Error("unknown kind should be refused")
	}
	if err := c.RestoreMigration(&Migration{Extent: "people", Kind: MigrateMove, From: "r1", To: "r3", Phase: "warming"}); err == nil {
		t.Error("unknown phase should be refused")
	}
	if err := c.RestoreMigration(&Migration{Extent: "people", Kind: MigrateSplit, From: "r1", To: "r3", Phase: PhaseCopying}); err == nil {
		t.Error("split without a split point should be refused")
	}
	if err := c.RestoreMigration(&Migration{Extent: "ghosts", Kind: MigrateMove, From: "r1", To: "r3", Phase: PhaseCopying}); err == nil {
		t.Error("unknown extent should be refused")
	}
}

func TestMigrationTargetVisibility(t *testing.T) {
	c := migrationCatalog(t)
	if err := c.BeginMigration(&Migration{Extent: "people", Kind: MigrateMove, From: "r1", To: "r3"}); err != nil {
		t.Fatal(err)
	}
	if c.IsMigrationTarget("people", "r3") {
		t.Error("declared migration should not yet open the target for reads")
	}
	if err := c.SetMigrationPhase("people", PhaseCopying); err != nil {
		t.Fatal(err)
	}
	if !c.IsMigrationTarget("people", "r3") {
		t.Error("copying migration target should accept loads and reads")
	}
	if c.IsMigrationTarget("people", "r4") {
		t.Error("non-target repo reported as migration target")
	}
	if err := c.SetMigrationPhase("people", PhaseDualRead); err != nil {
		t.Fatal(err)
	}
	if !c.IsMigrationTarget("people", "r3") {
		t.Error("dual-read migration target should accept reads")
	}
	if err := c.CutoverMigration("people"); err != nil {
		t.Fatal(err)
	}
	if c.IsMigrationTarget("people", "r3") {
		t.Error("past cutover the target is ordinary placement, not a migration target")
	}
}
