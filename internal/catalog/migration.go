// Live shard migration records (ROADMAP item 2): catalog operations to move
// a shard between repositories and to split or merge range partitions while
// queries run. A migration is a small state machine whose resting states live
// in the catalog, so every phase transition is one catalog version bump and
// the prepared-plan cache invalidates for free:
//
//	declared -> copying -> dual-read -> cutover -> (record removed)
//	                   \-> cutover (merge skips dual-read)
//	any pre-cutover state -> aborted -> (record removed after cleanup)
//
// The catalog only records state; the copy/cleanup work and the phase driver
// live in internal/core. Placement itself changes exactly once, at cutover,
// by swapping in a deep-cloned MetaExtent — readers hold *MetaExtent without
// locks, so the old struct must stay immutable for in-flight queries.
package catalog

import (
	"fmt"

	"disco/internal/algebra"
	"disco/internal/types"
)

// Migration kinds.
const (
	// MigrateMove relocates one shard's rows from repository From to To.
	MigrateMove = "move"
	// MigrateSplit divides From's range at SplitAt; rows >= SplitAt move to
	// the new shard at To.
	MigrateSplit = "split"
	// MigrateMerge folds shard From's range into the adjacent shard To.
	MigrateMerge = "merge"
)

// Migration phases. Each is a resting state a crash can leave behind; the
// driver in internal/core resumes or aborts from any of them.
const (
	// PhaseDeclared: the migration is registered; no data has moved.
	PhaseDeclared = "declared"
	// PhaseCopying: rows are being copied to To. The copy is idempotent
	// (clear-then-load), so a crash here re-runs the copy.
	PhaseCopying = "copying"
	// PhaseDualRead: the copy finished; reads consult both placements,
	// distinct-fused, so a stale or dead new copy cannot lose or duplicate
	// rows. Move and split only — merge cuts over straight from copying.
	PhaseDualRead = "dual-read"
	// PhaseCutover: placement has swapped to the new layout; only source-side
	// cleanup (clearing moved-away rows) remains before the record is
	// removed.
	PhaseCutover = "cutover"
	// PhaseAborted: the migration was abandoned before cutover; placement
	// never changed. The record is kept until cleanup wipes any partial copy,
	// then removed so the migration can be retried.
	PhaseAborted = "aborted"
)

// Migration is one live placement change for one extent. At most one
// migration per extent may be in flight.
type Migration struct {
	// Extent names the migrating extent.
	Extent string
	// Kind is MigrateMove, MigrateSplit or MigrateMerge.
	Kind string
	// From is the shard's current primary repository. For merge it is the
	// shard being absorbed.
	From string
	// To is the destination repository. For merge it is the surviving
	// adjacent shard's primary.
	To string
	// SplitAt is the split point for MigrateSplit (rows >= SplitAt move to
	// To); nil otherwise. The bound is inclusive-below like every range
	// bound: after the split From holds [Lo, SplitAt) and To holds
	// [SplitAt, Hi).
	SplitAt types.Value
	// Phase is the current resting state.
	Phase string
}

// DualRead reports whether reads of the migrating shard must consult both
// the old and the new placement.
func (m *Migration) DualRead() bool { return m.Phase == PhaseDualRead }

// validKind reports whether k names a migration kind.
func validKind(k string) bool {
	return k == MigrateMove || k == MigrateSplit || k == MigrateMerge
}

// validPhase reports whether p names a resting state.
func validPhase(p string) bool {
	switch p {
	case PhaseDeclared, PhaseCopying, PhaseDualRead, PhaseCutover, PhaseAborted:
		return true
	}
	return false
}

// sameTarget reports whether two migrations describe the same placement
// change (used to let Begin retry an aborted migration).
func sameTarget(a, b *Migration) bool {
	if a.Extent != b.Extent || a.Kind != b.Kind || a.From != b.From || a.To != b.To {
		return false
	}
	if (a.SplitAt == nil) != (b.SplitAt == nil) {
		return false
	}
	return a.SplitAt == nil || a.SplitAt.Equal(b.SplitAt)
}

// BeginMigration registers a migration in phase declared after validating it
// against current placement. An aborted migration for the same extent with
// the same parameters is replaced (retry); any other in-flight migration for
// the extent is an error.
func (c *Catalog) BeginMigration(mig *Migration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !validKind(mig.Kind) {
		return fmt.Errorf("catalog: unknown migration kind %q", mig.Kind)
	}
	me, ok := c.extents[mig.Extent]
	if !ok {
		return &ErrNotFound{Kind: "extent", Name: mig.Extent}
	}
	if _, ok := c.repos[mig.From]; !ok {
		return &ErrNotFound{Kind: "repository", Name: mig.From}
	}
	if _, ok := c.repos[mig.To]; !ok {
		return &ErrNotFound{Kind: "repository", Name: mig.To}
	}
	if prev, dup := c.migrations[mig.Extent]; dup {
		if prev.Phase != PhaseAborted || !sameTarget(prev, mig) {
			return fmt.Errorf("catalog: extent %q already has a %s migration in phase %s", mig.Extent, prev.Kind, prev.Phase)
		}
		// Retrying an aborted migration: fall through and replace the record.
	}
	if p, ok := me.PrimaryFor(mig.From); !ok || p != mig.From {
		return fmt.Errorf("catalog: migration source %q is not a partition primary of extent %q", mig.From, mig.Extent)
	}
	switch mig.Kind {
	case MigrateMove, MigrateSplit:
		if me.HasPartition(mig.To) {
			return fmt.Errorf("catalog: migration target %q already holds extent %q", mig.To, mig.Extent)
		}
	case MigrateMerge:
		if p, ok := me.PrimaryFor(mig.To); !ok || p != mig.To {
			return fmt.Errorf("catalog: merge target %q is not a partition primary of extent %q", mig.To, mig.Extent)
		}
		if mig.To == mig.From {
			return fmt.Errorf("catalog: merge of shard %q into itself", mig.From)
		}
	}
	if mig.Kind == MigrateSplit || mig.Kind == MigrateMerge {
		if me.Scheme == nil || me.Scheme.Kind != algebra.PartRange {
			return fmt.Errorf("catalog: %s requires a range-partitioned extent", mig.Kind)
		}
	}
	switch mig.Kind {
	case MigrateMove:
		if mig.SplitAt != nil {
			return fmt.Errorf("catalog: move takes no split point")
		}
	case MigrateSplit:
		if mig.SplitAt == nil {
			return fmt.Errorf("catalog: split requires a split point")
		}
		r := me.Scheme.Ranges[partitionIndex(me, mig.From)]
		if r.Lo != nil {
			c, err := types.Compare(mig.SplitAt, r.Lo)
			if err != nil || c <= 0 {
				return fmt.Errorf("catalog: split point %s is not strictly inside shard range %s", mig.SplitAt, r)
			}
		}
		if r.Hi != nil {
			c, err := types.Compare(mig.SplitAt, r.Hi)
			if err != nil || c >= 0 {
				return fmt.Errorf("catalog: split point %s is not strictly inside shard range %s", mig.SplitAt, r)
			}
		}
	case MigrateMerge:
		if mig.SplitAt != nil {
			return fmt.Errorf("catalog: merge takes no split point")
		}
		i := partitionIndex(me, mig.From)
		j := partitionIndex(me, mig.To)
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi != lo+1 || !adjacentBounds(me.Scheme.Ranges[lo], me.Scheme.Ranges[hi]) {
			return fmt.Errorf("catalog: merge shards %q and %q are not adjacent ranges", mig.From, mig.To)
		}
	}
	rec := *mig
	rec.Phase = PhaseDeclared
	if _, dup := c.migrations[mig.Extent]; !dup {
		c.migOrder = append(c.migOrder, mig.Extent)
	}
	c.migrations[mig.Extent] = &rec
	c.version++
	return nil
}

// partitionIndex returns repo's index in the extent's partition list, or -1.
// Callers hold c.mu.
func partitionIndex(m *MetaExtent, repo string) int {
	for i, p := range m.Partitions() {
		if p == repo {
			return i
		}
	}
	return -1
}

// adjacentBounds reports whether the earlier range's upper bound meets the
// later range's lower bound exactly.
func adjacentBounds(a, b algebra.RangeBound) bool {
	return a.Hi != nil && b.Lo != nil && a.Hi.Equal(b.Lo)
}

// SetMigrationPhase advances a migration between non-cutover resting states.
// Legal transitions: declared->copying, copying->dual-read (move and split
// only). Cutover goes through CutoverMigration (it swaps placement), abort
// through AbortMigration.
func (c *Catalog) SetMigrationPhase(extent, phase string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	mig, ok := c.migrations[extent]
	if !ok {
		return &ErrNotFound{Kind: "migration", Name: extent}
	}
	legal := false
	switch {
	case mig.Phase == PhaseDeclared && phase == PhaseCopying:
		legal = true
	case mig.Phase == PhaseCopying && phase == PhaseDualRead:
		legal = mig.Kind != MigrateMerge
	}
	if !legal {
		return fmt.Errorf("catalog: migration of %q cannot go %s -> %s", extent, mig.Phase, phase)
	}
	mig.Phase = phase
	c.version++
	return nil
}

// AbortMigration abandons a migration before cutover. Placement never
// changed, so queries are unaffected; the record stays in phase aborted
// until ClearMigration, marking that a partial copy may need cleanup and
// letting BeginMigration retry the same change.
func (c *Catalog) AbortMigration(extent string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	mig, ok := c.migrations[extent]
	if !ok {
		return &ErrNotFound{Kind: "migration", Name: extent}
	}
	switch mig.Phase {
	case PhaseCutover:
		return fmt.Errorf("catalog: migration of %q is past cutover and can no longer abort", extent)
	case PhaseAborted:
		return nil
	}
	mig.Phase = PhaseAborted
	c.version++
	return nil
}

// CutoverMigration swaps placement to the post-migration layout and sets the
// phase to cutover. The swap installs a deep-cloned MetaExtent so in-flight
// queries holding the old struct keep a consistent snapshot. From cutover the
// new layout is authoritative; only cleanup remains before FinishMigration.
func (c *Catalog) CutoverMigration(extent string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	mig, ok := c.migrations[extent]
	if !ok {
		return &ErrNotFound{Kind: "migration", Name: extent}
	}
	switch {
	case mig.Phase == PhaseDualRead && mig.Kind != MigrateMerge:
	case mig.Phase == PhaseCopying && mig.Kind == MigrateMerge:
	default:
		return fmt.Errorf("catalog: migration of %q cannot cut over from phase %s", extent, mig.Phase)
	}
	me := c.extents[extent]
	if me == nil {
		return &ErrNotFound{Kind: "extent", Name: extent}
	}
	clone := cloneExtent(me)
	switch mig.Kind {
	case MigrateMove:
		cutoverMove(clone, mig)
	case MigrateSplit:
		cutoverSplit(clone, mig)
	case MigrateMerge:
		cutoverMerge(clone, mig)
	}
	c.extents[extent] = clone
	mig.Phase = PhaseCutover
	c.version++
	return nil
}

// cloneExtent deep-copies a MetaExtent so the original stays immutable for
// readers that captured it before the cutover.
func cloneExtent(m *MetaExtent) *MetaExtent {
	clone := *m
	clone.Repositories = append([]string(nil), m.Repositories...)
	if m.Replicas != nil {
		clone.Replicas = make([][]string, len(m.Replicas))
		for i, g := range m.Replicas {
			clone.Replicas[i] = append([]string(nil), g...)
		}
	}
	if m.Scheme != nil {
		s := *m.Scheme
		s.Ranges = append([]algebra.RangeBound(nil), m.Scheme.Ranges...)
		clone.Scheme = &s
	}
	if m.AttrMap != nil {
		clone.AttrMap = make(map[string]string, len(m.AttrMap))
		for k, v := range m.AttrMap {
			clone.AttrMap[k] = v
		}
	}
	return &clone
}

func cutoverMove(clone *MetaExtent, mig *Migration) {
	if !clone.Partitioned() {
		clone.Repository = mig.To
		if clone.Replicas != nil {
			clone.Replicas = [][]string{{mig.To}}
		}
		return
	}
	i := partitionIndex(clone, mig.From)
	clone.Repositories[i] = mig.To
	if clone.Replicas != nil {
		clone.Replicas[i] = []string{mig.To}
	}
	clone.Repository = clone.Repositories[0]
}

func cutoverSplit(clone *MetaExtent, mig *Migration) {
	i := partitionIndex(clone, mig.From)
	old := clone.Scheme.Ranges[i]
	clone.Scheme.Ranges[i] = algebra.RangeBound{Lo: old.Lo, Hi: mig.SplitAt}
	clone.Scheme.Ranges = insertRange(clone.Scheme.Ranges, i+1, algebra.RangeBound{Lo: mig.SplitAt, Hi: old.Hi})
	clone.Repositories = insertString(clone.Repositories, i+1, mig.To)
	if clone.Replicas != nil {
		clone.Replicas = insertGroup(clone.Replicas, i+1, []string{mig.To})
	}
	clone.Repository = clone.Repositories[0]
}

func cutoverMerge(clone *MetaExtent, mig *Migration) {
	i := partitionIndex(clone, mig.From)
	j := partitionIndex(clone, mig.To)
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	merged := algebra.RangeBound{Lo: clone.Scheme.Ranges[lo].Lo, Hi: clone.Scheme.Ranges[hi].Hi}
	clone.Scheme.Ranges[j] = merged
	clone.Scheme.Ranges = append(clone.Scheme.Ranges[:i], clone.Scheme.Ranges[i+1:]...)
	clone.Repositories = append(clone.Repositories[:i], clone.Repositories[i+1:]...)
	if clone.Replicas != nil {
		clone.Replicas = append(clone.Replicas[:i], clone.Replicas[i+1:]...)
	}
	if len(clone.Repositories) == 1 {
		// A single remaining partition must not carry a scheme (AddExtent and
		// DumpODL reject it): the extent becomes plain unpartitioned.
		clone.Repository = clone.Repositories[0]
		clone.Repositories = nil
		clone.Scheme = nil
		if clone.Replicas != nil && len(clone.Replicas) == 1 {
			// Keep the surviving group only if it actually replicates.
			if len(clone.Replicas[0]) <= 1 {
				clone.Replicas = nil
			}
		}
		return
	}
	clone.Repository = clone.Repositories[0]
}

func insertRange(s []algebra.RangeBound, i int, v algebra.RangeBound) []algebra.RangeBound {
	s = append(s, algebra.RangeBound{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertString(s []string, i int, v string) []string {
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertGroup(s [][]string, i int, v []string) [][]string {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// FinishMigration removes a cutover migration's record: the new placement is
// live and source-side cleanup is done (or delegated). The version bump makes
// any phase-dependent plan rewrite (the split cutover guard) recompile away.
func (c *Catalog) FinishMigration(extent string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	mig, ok := c.migrations[extent]
	if !ok {
		return &ErrNotFound{Kind: "migration", Name: extent}
	}
	if mig.Phase != PhaseCutover {
		return fmt.Errorf("catalog: migration of %q cannot finish from phase %s", extent, mig.Phase)
	}
	c.removeMigrationLocked(extent)
	c.version++
	return nil
}

// ClearMigration removes an aborted migration's record after cleanup,
// letting a fresh BeginMigration start over. Clearing a missing record is a
// no-op.
func (c *Catalog) ClearMigration(extent string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	mig, ok := c.migrations[extent]
	if !ok {
		return nil
	}
	if mig.Phase != PhaseAborted {
		return fmt.Errorf("catalog: migration of %q is in phase %s, not aborted; use FinishMigration or AbortMigration", extent, mig.Phase)
	}
	c.removeMigrationLocked(extent)
	c.version++
	return nil
}

// removeMigrationLocked deletes the record; callers hold c.mu.
func (c *Catalog) removeMigrationLocked(extent string) {
	delete(c.migrations, extent)
	for i, n := range c.migOrder {
		if n == extent {
			c.migOrder = append(c.migOrder[:i], c.migOrder[i+1:]...)
			break
		}
	}
}

// RestoreMigration installs a migration record in an arbitrary resting state
// without replaying its transitions — the ODL "migrate" statement uses it so
// a DumpODL taken mid-migration round-trips. The extent declaration in the
// dump already reflects the placement for the recorded phase (pre-cutover
// layout before cutover, post-cutover layout at cutover), so no placement
// change happens here.
func (c *Catalog) RestoreMigration(mig *Migration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !validKind(mig.Kind) {
		return fmt.Errorf("catalog: unknown migration kind %q", mig.Kind)
	}
	if !validPhase(mig.Phase) {
		return fmt.Errorf("catalog: unknown migration phase %q", mig.Phase)
	}
	if mig.Kind == MigrateSplit && mig.SplitAt == nil {
		return fmt.Errorf("catalog: split migration requires a split point")
	}
	if _, ok := c.extents[mig.Extent]; !ok {
		return &ErrNotFound{Kind: "extent", Name: mig.Extent}
	}
	if _, ok := c.repos[mig.From]; !ok {
		return &ErrNotFound{Kind: "repository", Name: mig.From}
	}
	if _, ok := c.repos[mig.To]; !ok {
		return &ErrNotFound{Kind: "repository", Name: mig.To}
	}
	rec := *mig
	if _, dup := c.migrations[mig.Extent]; !dup {
		c.migOrder = append(c.migOrder, mig.Extent)
	}
	c.migrations[mig.Extent] = &rec
	c.version++
	return nil
}

// MigrationOf returns a copy of the extent's in-flight migration record.
func (c *Catalog) MigrationOf(extent string) (Migration, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mig, ok := c.migrations[extent]
	if !ok {
		return Migration{}, false
	}
	return *mig, true
}

// Migrations returns copies of every in-flight migration record, in
// begin order.
func (c *Catalog) Migrations() []Migration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Migration, 0, len(c.migOrder))
	for _, n := range c.migOrder {
		out = append(out, *c.migrations[n])
	}
	return out
}

// IsMigrationTarget reports whether repo is the destination of an in-flight
// migration of the extent that is actively copying or dual-reading — the
// phases where the mediator submits to a repository that placement does not
// (yet) list.
func (c *Catalog) IsMigrationTarget(extent, repo string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mig, ok := c.migrations[extent]
	if !ok || mig.To != repo {
		return false
	}
	return mig.Phase == PhaseCopying || mig.Phase == PhaseDualRead
}

// IsMigrationEndpoint reports whether repo is either end of a live
// migration record of the extent, whatever the phase. The runtime's
// routing sanity check accepts endpoint submits while the record exists:
// a plan resolved just before a cutover (or an abort's rollback) may still
// submit to the side placement no longer lists, and the record outlives
// the transition precisely until those in-flight readers have drained.
func (c *Catalog) IsMigrationEndpoint(extent, repo string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mig, ok := c.migrations[extent]
	return ok && (mig.From == repo || mig.To == repo)
}
