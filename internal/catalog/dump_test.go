package catalog

import (
	"strings"
	"testing"

	"disco/internal/odl"
	"disco/internal/oql"
	"disco/internal/types"
)

// applyStatements loads parsed ODL statements into a catalog (the test-side
// equivalent of the mediator's Apply).
func applyStatements(t *testing.T, c *Catalog, stmts []odl.Statement) {
	t.Helper()
	for _, s := range stmts {
		var err error
		switch x := s.(type) {
		case *odl.InterfaceDecl:
			err = c.DefineInterface(x.Iface)
		case *odl.RepositoryDecl:
			err = c.AddRepository(&Repository{
				Name: x.Name, Host: x.Props["host"], Address: x.Props["address"],
				DB: x.Props["name"], Props: x.Props,
			})
		case *odl.WrapperDecl:
			err = c.AddWrapper(&Wrapper{Name: x.Name, Kind: x.Kind, Props: x.Props})
		case *odl.ExtentDecl:
			err = c.AddExtent(&MetaExtent{
				Name: x.Name, Iface: x.Iface, Wrapper: x.Wrapper,
				Repository: x.Repository, SourceName: x.SourceName, AttrMap: x.AttrMap,
			})
		case *odl.ViewDecl:
			err = c.DefineView(x.Name, x.Query)
		default:
			t.Fatalf("unexpected statement %T", s)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDumpODLRoundTrip(t *testing.T) {
	c := paperCatalog(t)
	q, err := oql.ParseQuery(`select x.name from x in person0 where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineView("names", q); err != nil {
		t.Fatal(err)
	}

	dump := c.DumpODL()
	stmts, err := odl.Parse(dump)
	if err != nil {
		t.Fatalf("dump does not reparse: %v\n%s", err, dump)
	}
	c2 := New()
	applyStatements(t, c2, stmts)

	// The second dump must equal the first (dump is a fixpoint).
	dump2 := c2.DumpODL()
	if dump != dump2 {
		t.Errorf("dump round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", dump, dump2)
	}
	// Structure survives.
	if len(c2.ExtentsOf("Person")) != 2 {
		t.Errorf("Person extents lost: %d", len(c2.ExtentsOf("Person")))
	}
	me, err := c2.Extent("personprime0")
	if err != nil || me.SourceName != "person0" || me.AttrMap["n"] != "name" {
		t.Errorf("map lost: %+v, %v", me, err)
	}
	if _, ok := c2.View("names"); !ok {
		t.Error("view lost")
	}
	if !c2.Schema().IsSubtype("Student", "Person") {
		t.Error("subtype lost")
	}
}

func TestDumpODLContainsMapClause(t *testing.T) {
	c := paperCatalog(t)
	dump := c.DumpODL()
	if !strings.Contains(dump, "map ((person0=personprime0),(name=n),(salary=s))") {
		t.Errorf("dump should render the transformation map:\n%s", dump)
	}
}

func TestDumpODLCollectionAttrTypes(t *testing.T) {
	c := New()
	elem := types.ScalarAttr(types.TFloat)
	if err := c.DefineInterface(&types.Interface{
		Name: "Series",
		Attrs: []types.Attribute{
			{Name: "points", Type: types.AttrType{Kind: types.TBagOf, Elem: &elem}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	dump := c.DumpODL()
	if !strings.Contains(dump, "attribute Bag<Float> points;") {
		t.Errorf("collection attribute lost:\n%s", dump)
	}
	if _, err := odl.Parse(dump); err != nil {
		t.Errorf("dump does not reparse: %v", err)
	}
}

func TestDumpODLEmptyCatalog(t *testing.T) {
	c := New()
	if dump := c.DumpODL(); strings.TrimSpace(dump) != "" {
		t.Errorf("empty catalog should dump empty: %q", dump)
	}
}
