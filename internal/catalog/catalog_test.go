package catalog

import (
	"strings"
	"testing"

	"disco/internal/oql"
	"disco/internal/types"
)

// paperCatalog builds the catalog from the paper's running example:
// Person with extents person0 (r0) and person1 (r1), Student subtype with
// student0/student1, and the PersonPrime mapped type.
func paperCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.DefineInterface(&types.Interface{
		Name:       "Person",
		ExtentName: "person",
		Attrs: []types.Attribute{
			{Name: "id", Type: types.ScalarAttr(types.TInt)},
			{Name: "name", Type: types.ScalarAttr(types.TString)},
			{Name: "salary", Type: types.ScalarAttr(types.TInt)},
		},
	}))
	must(c.DefineInterface(&types.Interface{Name: "Student", Super: "Person", ExtentName: "student"}))
	must(c.DefineInterface(&types.Interface{
		Name: "PersonPrime",
		Attrs: []types.Attribute{
			{Name: "n", Type: types.ScalarAttr(types.TString)},
			{Name: "s", Type: types.ScalarAttr(types.TInt)},
		},
	}))
	for _, r := range []string{"r0", "r1", "r2", "r3"} {
		must(c.AddRepository(&Repository{Name: r, Host: "rodin", Address: "mem:" + r}))
	}
	must(c.AddWrapper(&Wrapper{Name: "w0", Kind: "sql"}))
	must(c.AddExtent(&MetaExtent{Name: "person0", Iface: "Person", Wrapper: "w0", Repository: "r0"}))
	must(c.AddExtent(&MetaExtent{Name: "person1", Iface: "Person", Wrapper: "w0", Repository: "r1"}))
	must(c.AddExtent(&MetaExtent{Name: "student0", Iface: "Student", Wrapper: "w0", Repository: "r2"}))
	must(c.AddExtent(&MetaExtent{Name: "student1", Iface: "Student", Wrapper: "w0", Repository: "r3"}))
	must(c.AddExtent(&MetaExtent{
		Name: "personprime0", Iface: "PersonPrime", Wrapper: "w0", Repository: "r0",
		SourceName: "person0",
		AttrMap:    map[string]string{"n": "name", "s": "salary"},
	}))
	return c
}

func TestExtentsOfExcludesSubtypes(t *testing.T) {
	c := paperCatalog(t)
	// §2.2.1: "The person extent still contains only the two extents."
	got := c.ExtentsOf("Person")
	if len(got) != 2 {
		t.Fatalf("ExtentsOf(Person) = %d extents, want 2", len(got))
	}
	if got[0].Name != "person0" || got[1].Name != "person1" {
		t.Errorf("extents = %v, %v", got[0].Name, got[1].Name)
	}
}

func TestExtentsOfStarIncludesSubtypes(t *testing.T) {
	c := paperCatalog(t)
	// §2.2.1: "The person* extent now contains four extents."
	got := c.ExtentsOfStar("Person")
	if len(got) != 4 {
		t.Fatalf("ExtentsOfStar(Person) = %d extents, want 4", len(got))
	}
}

func TestAddExtentValidation(t *testing.T) {
	c := paperCatalog(t)
	cases := []struct {
		name string
		m    *MetaExtent
		frag string
	}{
		{"dup", &MetaExtent{Name: "person0", Iface: "Person", Wrapper: "w0", Repository: "r0"}, "already defined"},
		{"no iface", &MetaExtent{Name: "x", Iface: "Nope", Wrapper: "w0", Repository: "r0"}, "interface"},
		{"no wrapper", &MetaExtent{Name: "x", Iface: "Person", Wrapper: "nope", Repository: "r0"}, "wrapper"},
		{"no repo", &MetaExtent{Name: "x", Iface: "Person", Wrapper: "w0", Repository: "nope"}, "repository"},
		{"bad map", &MetaExtent{Name: "x", Iface: "Person", Wrapper: "w0", Repository: "r0",
			AttrMap: map[string]string{"ghost": "g"}}, "unknown attribute"},
		{"empty", &MetaExtent{}, "empty name"},
	}
	for _, tt := range cases {
		err := c.AddExtent(tt.m)
		if err == nil {
			t.Errorf("%s: AddExtent should fail", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("%s: error %q does not mention %q", tt.name, err, tt.frag)
		}
	}
}

func TestDropExtent(t *testing.T) {
	c := paperCatalog(t)
	v := c.Version()
	if err := c.DropExtent("person1"); err != nil {
		t.Fatal(err)
	}
	if c.Version() == v {
		t.Error("version should bump on drop")
	}
	if got := c.ExtentsOf("Person"); len(got) != 1 {
		t.Errorf("after drop: %d extents", len(got))
	}
	if err := c.DropExtent("person1"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestVersionBumps(t *testing.T) {
	c := New()
	v0 := c.Version()
	if err := c.DefineInterface(&types.Interface{Name: "T"}); err != nil {
		t.Fatal(err)
	}
	if c.Version() == v0 {
		t.Error("DefineInterface should bump version")
	}
}

func TestSourceNameDefaults(t *testing.T) {
	c := paperCatalog(t)
	m, err := c.Extent("person0")
	if err != nil {
		t.Fatal(err)
	}
	if m.SourceName != "person0" {
		t.Errorf("SourceName = %q, want the extent name", m.SourceName)
	}
	mp, err := c.Extent("personprime0")
	if err != nil {
		t.Fatal(err)
	}
	if mp.SourceName != "person0" {
		t.Errorf("mapped SourceName = %q, want person0", mp.SourceName)
	}
}

func TestExtentRef(t *testing.T) {
	c := paperCatalog(t)
	m, err := c.Extent("personprime0")
	if err != nil {
		t.Fatal(err)
	}
	ref := c.ExtentRef(m)
	if ref.Extent != "personprime0" || ref.Repo != "r0" || ref.Source != "person0" {
		t.Errorf("ref = %+v", ref)
	}
	if len(ref.Attrs) != 2 || ref.SourceAttr("n") != "name" || ref.SourceAttr("s") != "salary" {
		t.Errorf("attrs = %v, map = %v", ref.Attrs, ref.AttrMap)
	}
	// Inherited attributes appear for subtypes.
	st, err := c.Extent("student0")
	if err != nil {
		t.Fatal(err)
	}
	sref := c.ExtentRef(st)
	if len(sref.Attrs) != 3 {
		t.Errorf("student attrs = %v, want the 3 inherited from Person", sref.Attrs)
	}
}

func TestViews(t *testing.T) {
	c := paperCatalog(t)
	q, err := oql.ParseQuery(`select x.name from x in person0`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineView("names", q); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.View("names"); !ok {
		t.Error("view not found")
	}
	if err := c.DefineView("names", q); err == nil {
		t.Error("duplicate view should fail")
	}
	if err := c.DefineView("person0", q); err == nil {
		t.Error("view colliding with extent should fail")
	}
	// Views can reference views.
	q2, err := oql.ParseQuery(`select n from n in names`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineView("names2", q2); err != nil {
		t.Fatal(err)
	}
	if got := c.Views(); len(got) != 2 || got[0] != "names" {
		t.Errorf("Views() = %v", got)
	}
}

func TestViewCycleDetection(t *testing.T) {
	c := paperCatalog(t)
	qa, err := oql.ParseQuery(`select x from x in vb`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineView("va", qa); err != nil {
		t.Fatal(err) // vb not yet a view: legal (resolves later or errors)
	}
	qb, err := oql.ParseQuery(`select x from x in va`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineView("vb", qb); err == nil {
		t.Error("view cycle va <-> vb should be rejected")
	} else if !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("error = %v", err)
	}
	// Direct self-reference.
	qs, err := oql.ParseQuery(`select x from x in vs`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineView("vs", qs); err == nil {
		t.Error("self-referencing view should be rejected")
	}
}

func TestMetaExtentBag(t *testing.T) {
	c := paperCatalog(t)
	bag := c.MetaExtentBag()
	if bag.Len() != 5 {
		t.Fatalf("metaextent has %d entries, want 5", bag.Len())
	}
	// The §2.1 query: which extents belong to Person?
	q, err := oql.ParseQuery(`select x.e from x in metaextent where x.interface = "Person"`)
	if err != nil {
		t.Fatal(err)
	}
	r := oql.ResolverFunc(func(name string, _ bool) (types.Value, error) {
		if name == "metaextent" {
			return c.MetaExtentBag(), nil
		}
		return nil, &ErrNotFound{Kind: "name", Name: name}
	})
	got, err := oql.Eval(q, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.Str("person0"), types.Str("person1"))
	if !got.Equal(want) {
		t.Errorf("metaextent query = %s, want %s", got, want)
	}
}

func TestInterfaceByExtentName(t *testing.T) {
	c := paperCatalog(t)
	i, ok := c.InterfaceByExtentName("person")
	if !ok || i.Name != "Person" {
		t.Errorf("InterfaceByExtentName(person) = %v, %v", i, ok)
	}
	if _, ok := c.InterfaceByExtentName("nothing"); ok {
		t.Error("unknown implicit extent should not resolve")
	}
}

func TestLookupErrors(t *testing.T) {
	c := New()
	if _, err := c.Repository("r9"); err == nil {
		t.Error("missing repository should error")
	}
	if _, err := c.Wrapper("w9"); err == nil {
		t.Error("missing wrapper should error")
	}
	if _, err := c.Extent("e9"); err == nil {
		t.Error("missing extent should error")
	}
	var nf *ErrNotFound
	_, err := c.Extent("e9")
	if !asErr(err, &nf) || nf.Kind != "extent" {
		t.Errorf("error type = %T", err)
	}
}

func asErr(err error, target interface{}) bool {
	switch t := target.(type) {
	case **ErrNotFound:
		e, ok := err.(*ErrNotFound)
		if ok {
			*t = e
		}
		return ok
	default:
		return false
	}
}

func TestDuplicateRepoWrapper(t *testing.T) {
	c := paperCatalog(t)
	if err := c.AddRepository(&Repository{Name: "r0"}); err == nil {
		t.Error("duplicate repository should fail")
	}
	if err := c.AddWrapper(&Wrapper{Name: "w0"}); err == nil {
		t.Error("duplicate wrapper should fail")
	}
	if err := c.AddRepository(&Repository{}); err == nil {
		t.Error("empty repository name should fail")
	}
	if err := c.AddWrapper(&Wrapper{}); err == nil {
		t.Error("empty wrapper name should fail")
	}
}
