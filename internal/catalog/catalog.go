// Package catalog implements the mediator's internal database (paper §3):
// the schema of mediator interfaces, the Repository and Wrapper objects that
// model data sources as first-class values (§2.1), the MetaExtent registry
// that records which extents belong to which interface, and named views.
//
// The catalog is the DBA's surface: adding a data source is one AddExtent
// call (or one ODL extent declaration), after which existing queries over
// the interface's implicit extent automatically range over the new source —
// the scaling property §1.2 claims.
package catalog

import (
	"fmt"
	"sync"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/types"
)

// Repository models the paper's Repository type: the address of a database
// or other repository, created in ODL as
// r0 := Repository(host="rodin", name="db", address="123.45.6.7").
type Repository struct {
	// Name is the repository object name (r0).
	Name string
	// Host and Address locate the server; Address is host:port for TCP
	// repositories and a scheme like "mem:" for in-process ones.
	Host    string
	Address string
	// DB is the database name within the server.
	DB string
	// Props holds the open-ended attributes the paper mentions
	// (maintainer, cost of access, ...).
	Props map[string]string
}

// Wrapper models a registered wrapper object (w0 := WrapperPostgres()).
type Wrapper struct {
	// Name is the wrapper object name (w0).
	Name string
	// Kind selects the wrapper implementation: "sql", "scan", "doc",
	// "csv" or "mediator".
	Kind string
	// Props holds implementation-specific settings.
	Props map[string]string
}

// MetaExtent is the paper's meta-data type (§2.1): one extent of one
// mediator interface, mapped onto one data source through a wrapper.
type MetaExtent struct {
	// Name is the extent name (person0).
	Name string
	// Iface is the mediator interface whose extent this is.
	Iface string
	// Wrapper and Repository name the catalog objects used to reach the
	// data source. For a horizontally partitioned extent Repository is the
	// first partition; Repositories carries the full list.
	Wrapper    string
	Repository string
	// Repositories lists every repository holding a horizontal partition of
	// the extent, in declaration order (extent e of T wrapper w at r0, r1).
	// Empty or single-element for unpartitioned extents. Each entry is the
	// primary of its partition.
	Repositories []string
	// Replicas is the per-partition replica group, primary first, from the
	// ODL "at r0|r0b, r1|r1b" form: Replicas[i] lists every repository
	// holding a copy of partition i's rows. Nil when no partition declares
	// replicas; single-element groups mark unreplicated partitions. The
	// declaration is a contract: every repository of a group must hold the
	// same rows, and the mediator reads a replica only when repositories
	// earlier in the group do not answer.
	Replicas [][]string
	// Scheme is the declared placement of rows over Repositories (ODL
	// "partition by hash(attr)" / "partition by range(attr) (...)"); nil
	// when the extent declares none. With a scheme the optimizer prunes
	// shards that cannot answer a predicate and builds partition-wise
	// joins between co-partitioned extents. The declaration is a contract:
	// rows must actually be placed where the scheme says.
	Scheme *algebra.PartitionSpec
	// SourceName is the collection name at the data source; it defaults to
	// Name and is overridden by the local transformation map's
	// (source=extent) entry (§2.2.2).
	SourceName string
	// AttrMap maps mediator attribute names to source attribute names for
	// attributes renamed by the local transformation map.
	AttrMap map[string]string
}

// Partitions returns the repositories holding the extent's data: the
// declared partition list, or the single repository for unpartitioned
// extents.
func (m *MetaExtent) Partitions() []string {
	if len(m.Repositories) > 0 {
		return m.Repositories
	}
	return []string{m.Repository}
}

// Partitioned reports whether the extent is split across more than one
// partition (replicas of one partition do not count).
func (m *MetaExtent) Partitioned() bool { return len(m.Repositories) > 1 }

// Replicated reports whether any partition declares a replica.
func (m *MetaExtent) Replicated() bool {
	for _, g := range m.Replicas {
		if len(g) > 1 {
			return true
		}
	}
	return false
}

// ReplicaGroup returns every repository holding a copy of the partition
// whose primary (or replica) is repo, primary first. Unreplicated
// partitions return a single-element group; an unknown repository returns
// nil.
func (m *MetaExtent) ReplicaGroup(repo string) []string {
	parts := m.Partitions()
	for i, p := range parts {
		if i < len(m.Replicas) {
			for _, r := range m.Replicas[i] {
				if r == repo {
					return m.Replicas[i]
				}
			}
			continue
		}
		if p == repo {
			return []string{p}
		}
	}
	return nil
}

// PrimaryFor canonicalizes a repository holding extent data to the primary
// of its partition (a replica name maps to its shard's primary; a primary
// maps to itself).
func (m *MetaExtent) PrimaryFor(repo string) (string, bool) {
	if g := m.ReplicaGroup(repo); g != nil {
		return g[0], true
	}
	return "", false
}

// HasPartition reports whether the extent stores data at the repository —
// as a partition primary or as one of its replicas.
func (m *MetaExtent) HasPartition(repo string) bool {
	_, ok := m.PrimaryFor(repo)
	return ok
}

// ErrNotFound reports a missing catalog object.
type ErrNotFound struct {
	Kind string
	Name string
}

// Error implements the error interface.
func (e *ErrNotFound) Error() string {
	return fmt.Sprintf("catalog: %s %q not found", e.Kind, e.Name)
}

// Catalog is the mediator's internal database. It is safe for concurrent
// use.
type Catalog struct {
	mu       sync.RWMutex
	schema   *types.Schema
	repos    map[string]*Repository
	wrappers map[string]*Wrapper
	extents  map[string]*MetaExtent
	extOrder []string
	views    map[string]oql.Expr
	vOrder   []string
	// migrations holds the in-flight live-migration record per extent (at
	// most one each); migOrder preserves begin order for listing and dump.
	migrations map[string]*Migration
	migOrder   []string
	version    int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		schema:     types.NewSchema(),
		repos:      make(map[string]*Repository),
		wrappers:   make(map[string]*Wrapper),
		extents:    make(map[string]*MetaExtent),
		views:      make(map[string]oql.Expr),
		migrations: make(map[string]*Migration),
	}
}

// Version returns a counter that increases on every catalog change. The
// optimizer keys its plan cache on it, implementing the §3.3 requirement
// that cached plans be invalidated when extents change.
func (c *Catalog) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Schema exposes the interface schema for type checking. Callers must not
// mutate it except through DefineInterface.
func (c *Catalog) Schema() *types.Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.schema
}

// DefineInterface adds a mediator interface.
func (c *Catalog) DefineInterface(i *types.Interface) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.views[i.ExtentName] != nil {
		return fmt.Errorf("catalog: extent name %q collides with a view", i.ExtentName)
	}
	if err := c.schema.Define(i); err != nil {
		return err
	}
	c.version++
	return nil
}

// AddRepository registers a repository object.
func (c *Catalog) AddRepository(r *Repository) error {
	if r.Name == "" {
		return fmt.Errorf("catalog: repository with empty name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.repos[r.Name]; dup {
		return fmt.Errorf("catalog: repository %q already defined", r.Name)
	}
	c.repos[r.Name] = r
	c.version++
	return nil
}

// Repository looks up a repository object by name.
func (c *Catalog) Repository(name string) (*Repository, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.repos[name]
	if !ok {
		return nil, &ErrNotFound{Kind: "repository", Name: name}
	}
	return r, nil
}

// AddWrapper registers a wrapper object.
func (c *Catalog) AddWrapper(w *Wrapper) error {
	if w.Name == "" {
		return fmt.Errorf("catalog: wrapper with empty name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.wrappers[w.Name]; dup {
		return fmt.Errorf("catalog: wrapper %q already defined", w.Name)
	}
	c.wrappers[w.Name] = w
	c.version++
	return nil
}

// Wrapper looks up a wrapper object by name.
func (c *Catalog) Wrapper(name string) (*Wrapper, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.wrappers[name]
	if !ok {
		return nil, &ErrNotFound{Kind: "wrapper", Name: name}
	}
	return w, nil
}

// AddExtent registers an extent declaration:
// extent NAME of IFACE wrapper W repository R [map ...].
// The interface, wrapper and repository must already exist.
func (c *Catalog) AddExtent(m *MetaExtent) error {
	if m.Name == "" {
		return fmt.Errorf("catalog: extent with empty name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.extents[m.Name]; dup {
		return fmt.Errorf("catalog: extent %q already defined", m.Name)
	}
	if _, ok := c.schema.Lookup(m.Iface); !ok {
		return &ErrNotFound{Kind: "interface", Name: m.Iface}
	}
	if _, ok := c.wrappers[m.Wrapper]; !ok {
		return &ErrNotFound{Kind: "wrapper", Name: m.Wrapper}
	}
	if len(m.Repositories) > 0 {
		seen := map[string]bool{}
		for _, r := range m.Repositories {
			if _, ok := c.repos[r]; !ok {
				return &ErrNotFound{Kind: "repository", Name: r}
			}
			if seen[r] {
				return fmt.Errorf("catalog: extent %q lists partition %q twice", m.Name, r)
			}
			seen[r] = true
		}
		m.Repository = m.Repositories[0]
	}
	if _, ok := c.repos[m.Repository]; !ok {
		return &ErrNotFound{Kind: "repository", Name: m.Repository}
	}
	if len(m.Replicas) > 0 {
		parts := m.Partitions()
		if len(m.Replicas) != len(parts) {
			return fmt.Errorf("catalog: extent %q declares %d replica groups for %d partitions", m.Name, len(m.Replicas), len(parts))
		}
		seen := map[string]bool{}
		for i, group := range m.Replicas {
			if len(group) == 0 || group[0] != parts[i] {
				return fmt.Errorf("catalog: extent %q replica group %d must start with its partition primary %q", m.Name, i, parts[i])
			}
			for _, r := range group {
				if _, ok := c.repos[r]; !ok {
					return &ErrNotFound{Kind: "repository", Name: r}
				}
				if seen[r] {
					return fmt.Errorf("catalog: extent %q lists replica %q twice", m.Name, r)
				}
				seen[r] = true
			}
		}
	}
	if m.SourceName == "" {
		m.SourceName = m.Name
	}
	for med := range m.AttrMap {
		if _, ok := c.schema.AttrOf(m.Iface, med); !ok {
			return fmt.Errorf("catalog: map names unknown attribute %q of %s", med, m.Iface)
		}
	}
	if m.Scheme != nil {
		if !m.Partitioned() {
			// A scheme on a single repository would prune nothing and would
			// not survive a DumpODL round trip (the clause belongs to the
			// "at r0, r1, ..." form); reject rather than silently drop it.
			return fmt.Errorf("catalog: extent %q declares a partitioning scheme over a single repository", m.Name)
		}
		if _, ok := c.schema.AttrOf(m.Iface, m.Scheme.Attr); !ok {
			return fmt.Errorf("catalog: extent %q partitions by unknown attribute %q of %s", m.Name, m.Scheme.Attr, m.Iface)
		}
		if err := m.Scheme.Validate(len(m.Partitions())); err != nil {
			return fmt.Errorf("catalog: extent %q: %v", m.Name, err)
		}
	}
	c.extents[m.Name] = m
	c.extOrder = append(c.extOrder, m.Name)
	c.version++
	return nil
}

// DropExtent removes an extent declaration (extents "can be added and
// deleted directly", §2.1).
func (c *Catalog) DropExtent(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.extents[name]; !ok {
		return &ErrNotFound{Kind: "extent", Name: name}
	}
	if _, ok := c.migrations[name]; ok {
		// An in-flight migration dies with its extent.
		c.removeMigrationLocked(name)
	}
	delete(c.extents, name)
	for i, n := range c.extOrder {
		if n == name {
			c.extOrder = append(c.extOrder[:i], c.extOrder[i+1:]...)
			break
		}
	}
	c.version++
	return nil
}

// Extent looks up one extent by name.
func (c *Catalog) Extent(name string) (*MetaExtent, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.extents[name]
	if !ok {
		return nil, &ErrNotFound{Kind: "extent", Name: name}
	}
	return m, nil
}

// Extents returns all extents in declaration order.
func (c *Catalog) Extents() []*MetaExtent {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*MetaExtent, 0, len(c.extOrder))
	for _, n := range c.extOrder {
		out = append(out, c.extents[n])
	}
	return out
}

// ExtentsOf returns the extents declared for exactly the given interface.
// Subtype extents are not included: "the extent of a type does not
// automatically reference the extents of the sub-types" (§2.2.1).
func (c *Catalog) ExtentsOf(iface string) []*MetaExtent {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*MetaExtent
	for _, n := range c.extOrder {
		if c.extents[n].Iface == iface {
			out = append(out, c.extents[n])
		}
	}
	return out
}

// ExtentsOfStar returns the extents of the interface and all its subtypes —
// the paper's person* syntax (§2.2.1).
func (c *Catalog) ExtentsOfStar(iface string) []*MetaExtent {
	c.mu.RLock()
	defer c.mu.RUnlock()
	subs := map[string]bool{}
	for _, s := range c.schema.Subtypes(iface) {
		subs[s] = true
	}
	var out []*MetaExtent
	for _, n := range c.extOrder {
		if subs[c.extents[n].Iface] {
			out = append(out, c.extents[n])
		}
	}
	return out
}

// InterfaceByExtentName finds the interface whose implicit extent has the
// given name (interface Person (extent person) {...}).
func (c *Catalog) InterfaceByExtentName(extent string) (*types.Interface, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, i := range c.schema.Interfaces() {
		if i.ExtentName == extent && extent != "" {
			return i, true
		}
	}
	return nil, false
}

// DefineView records a named view (define name as query, §2.2.3). Views may
// reference other views as long as the references are acyclic.
func (c *Catalog) DefineView(name string, query oql.Expr) error {
	if name == "" {
		return fmt.Errorf("catalog: view with empty name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.views[name]; dup {
		return fmt.Errorf("catalog: view %q already defined", name)
	}
	if _, dup := c.extents[name]; dup {
		return fmt.Errorf("catalog: view %q collides with an extent", name)
	}
	// Cycle check: walk view references from the new body.
	if err := c.checkAcyclic(name, query, map[string]bool{name: true}); err != nil {
		return err
	}
	c.views[name] = query
	c.vOrder = append(c.vOrder, name)
	c.version++
	return nil
}

func (c *Catalog) checkAcyclic(root string, body oql.Expr, onPath map[string]bool) error {
	for _, name := range oql.FreeNames(body) {
		// onPath includes the view being defined, which is not yet in
		// c.views; hitting any on-path name closes a cycle.
		if onPath[name] {
			return fmt.Errorf("catalog: view %q is cyclic through %q", root, name)
		}
		next, ok := c.views[name]
		if !ok {
			continue
		}
		onPath[name] = true
		if err := c.checkAcyclic(root, next, onPath); err != nil {
			return err
		}
		delete(onPath, name)
	}
	return nil
}

// View returns a view body by name.
func (c *Catalog) View(name string) (oql.Expr, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[name]
	return v, ok
}

// Views returns view names in definition order.
func (c *Catalog) Views() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.vOrder...)
}

// ExtentRef converts a MetaExtent into the algebra's extent reference,
// resolving the interface's attribute list.
func (c *Catalog) ExtentRef(m *MetaExtent) algebra.ExtentRef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	attrs := c.schema.AllAttrs(m.Iface)
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
	}
	ref := algebra.ExtentRef{
		Extent:  m.Name,
		Repo:    m.Repository,
		Source:  m.SourceName,
		Iface:   m.Iface,
		Attrs:   names,
		AttrMap: m.AttrMap,
	}
	if g := m.ReplicaGroup(m.Repository); len(g) > 1 {
		ref.Replicas = g
	}
	return ref
}

// PartitionRef is ExtentRef for one shard of a partitioned extent: the ref
// reads the shard at the given repository and renders as extent@repo. When
// the extent declares a partitioning scheme, the ref carries the scheme and
// the shard's index so the optimizer can prune it.
func (c *Catalog) PartitionRef(m *MetaExtent, repo string) algebra.ExtentRef {
	ref := c.ExtentRef(m)
	ref.Repo = repo
	if m.Partitioned() {
		ref.Partition = repo
	}
	if g := m.ReplicaGroup(repo); len(g) > 1 {
		ref.Replicas = g
	} else {
		ref.Replicas = nil
	}
	if m.Scheme != nil {
		parts := m.Partitions()
		for i, p := range parts {
			if p == repo {
				ref.PartSpec = m.Scheme
				ref.PartIndex = i
				ref.PartCount = len(parts)
				break
			}
		}
	}
	return ref
}

// MetaExtentBag materializes the metaextent collection (§2.1): one struct
// per extent with attributes name, e, interface, wrapper, repository and
// map. The e attribute carries the extent name; the mediator's resolver
// interprets references to it (the implicit-extent definition
// "flatten(select x.e from x in metaextent ...)" is realized natively).
func (c *Catalog) MetaExtentBag() *types.Bag {
	c.mu.RLock()
	defer c.mu.RUnlock()
	elems := make([]types.Value, 0, len(c.extOrder))
	for _, n := range c.extOrder {
		m := c.extents[n]
		var mapPairs []types.Value
		for med, src := range m.AttrMap {
			mapPairs = append(mapPairs, types.Str(src+"="+med))
		}
		elems = append(elems, types.NewStruct(
			types.Field{Name: "name", Value: types.Str(m.Name)},
			types.Field{Name: "e", Value: types.Str(m.Name)},
			types.Field{Name: "interface", Value: types.Str(m.Iface)},
			types.Field{Name: "wrapper", Value: types.Str(m.Wrapper)},
			types.Field{Name: "repository", Value: types.Str(placementList(m, ","))},
			types.Field{Name: "map", Value: types.NewSet(mapPairs...)},
		))
	}
	return types.NewBag(elems...)
}
