package catalog

import (
	"strings"
	"testing"

	"disco/internal/types"
)

// replicaCatalog registers repositories r0, r0b, r1, r1b and one wrapper.
func replicaCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if err := c.DefineInterface(&types.Interface{
		Name: "Person", ExtentName: "person",
		Attrs: []types.Attribute{
			{Name: "id", Type: types.ScalarAttr(types.TInt)},
			{Name: "name", Type: types.ScalarAttr(types.TString)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"r0", "r0b", "r1", "r1b"} {
		if err := c.AddRepository(&Repository{Name: r, Address: "mem:" + r}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddWrapper(&Wrapper{Name: "w0", Kind: "sql"}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReplicaGroupsAndRefs(t *testing.T) {
	c := replicaCatalog(t)
	if err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1"},
		Replicas:     [][]string{{"r0", "r0b"}, {"r1"}},
	}); err != nil {
		t.Fatal(err)
	}
	m, _ := c.Extent("people")
	if !m.Replicated() {
		t.Error("extent with a replica group reports unreplicated")
	}
	if g := m.ReplicaGroup("r0b"); len(g) != 2 || g[0] != "r0" {
		t.Errorf("ReplicaGroup(r0b) = %v", g)
	}
	if p, ok := m.PrimaryFor("r0b"); !ok || p != "r0" {
		t.Errorf("PrimaryFor(r0b) = %q, %v", p, ok)
	}
	if !m.HasPartition("r0b") {
		t.Error("HasPartition must accept a replica name")
	}
	if m.HasPartition("r1b") {
		t.Error("r1b is not part of any declared group")
	}
	ref := c.PartitionRef(m, "r0")
	if len(ref.Replicas) != 2 || ref.Replicas[0] != "r0" || ref.Replicas[1] != "r0b" {
		t.Errorf("PartitionRef(r0).Replicas = %v", ref.Replicas)
	}
	if ref2 := c.PartitionRef(m, "r1"); len(ref2.Replicas) != 0 {
		t.Errorf("unreplicated shard carries Replicas %v", ref2.Replicas)
	}
}

func TestReplicaValidation(t *testing.T) {
	cases := []struct {
		name string
		m    *MetaExtent
		want string
	}{
		{
			name: "unknown replica repository",
			m: &MetaExtent{Name: "x", Iface: "Person", Wrapper: "w0",
				Repositories: []string{"r0", "r1"},
				Replicas:     [][]string{{"r0", "nope"}, {"r1"}}},
			want: "not found",
		},
		{
			name: "group count mismatch",
			m: &MetaExtent{Name: "x", Iface: "Person", Wrapper: "w0",
				Repositories: []string{"r0", "r1"},
				Replicas:     [][]string{{"r0", "r0b"}}},
			want: "replica groups",
		},
		{
			name: "group must lead with its primary",
			m: &MetaExtent{Name: "x", Iface: "Person", Wrapper: "w0",
				Repositories: []string{"r0", "r1"},
				Replicas:     [][]string{{"r0b", "r0"}, {"r1"}}},
			want: "primary",
		},
		{
			name: "replica listed twice",
			m: &MetaExtent{Name: "x", Iface: "Person", Wrapper: "w0",
				Repositories: []string{"r0", "r1"},
				Replicas:     [][]string{{"r0", "r0b"}, {"r1", "r0b"}}},
			want: "twice",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := replicaCatalog(t)
			err := c.AddExtent(tc.m)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("AddExtent = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestReplicaDumpRenders: the replica groups survive DumpODL in the
// "r0|r0b" form, on partitioned and single-shard extents alike.
func TestReplicaDumpRenders(t *testing.T) {
	c := replicaCatalog(t)
	if err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1"},
		Replicas:     [][]string{{"r0", "r0b"}, {"r1", "r1b"}},
	}); err != nil {
		t.Fatal(err)
	}
	dump := c.DumpODL()
	if !strings.Contains(dump, "at r0|r0b, r1|r1b") {
		t.Errorf("dump misses the replica groups:\n%s", dump)
	}

	c2 := replicaCatalog(t)
	if err := c2.AddExtent(&MetaExtent{
		Name: "solo", Iface: "Person", Wrapper: "w0",
		Repository: "r0",
		Replicas:   [][]string{{"r0", "r0b"}},
	}); err != nil {
		t.Fatal(err)
	}
	if dump := c2.DumpODL(); !strings.Contains(dump, "at r0|r0b") {
		t.Errorf("single-shard replicated dump:\n%s", dump)
	}

	// The metaextent bag shows the full placement too.
	bag := c.MetaExtentBag()
	st := bag.At(0).(*types.Struct)
	repo, _ := st.Get("repository")
	if !repo.Equal(types.Str("r0|r0b,r1|r1b")) {
		t.Errorf("metaextent repository = %s", repo)
	}
}
