package catalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"disco/internal/types"
)

// DumpODL renders the catalog's current state as ODL text that, applied to
// an empty mediator (with the same engines registered), reproduces it.
// It backs the shell's .schema command and catalog persistence: a
// mediator's configuration is its ODL.
func (c *Catalog) DumpODL() string {
	c.mu.RLock()
	defer c.mu.RUnlock()

	var b strings.Builder

	// Repositories, in name order for stable output.
	repoNames := make([]string, 0, len(c.repos))
	for n := range c.repos {
		repoNames = append(repoNames, n)
	}
	sort.Strings(repoNames)
	for _, n := range repoNames {
		r := c.repos[n]
		fmt.Fprintf(&b, "%s := Repository(", r.Name)
		wrote := false
		writeProp := func(k, v string) {
			if v == "" {
				return
			}
			if wrote {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%q", k, v)
			wrote = true
		}
		writeProp("host", r.Host)
		writeProp("name", r.DB)
		writeProp("address", r.Address)
		// Extra properties beyond the modeled ones.
		extra := make([]string, 0, len(r.Props))
		for k := range r.Props {
			if k != "host" && k != "name" && k != "address" {
				extra = append(extra, k)
			}
		}
		sort.Strings(extra)
		for _, k := range extra {
			writeProp(k, r.Props[k])
		}
		b.WriteString(");\n")
	}

	// Wrappers.
	wrapperNames := make([]string, 0, len(c.wrappers))
	for n := range c.wrappers {
		wrapperNames = append(wrapperNames, n)
	}
	sort.Strings(wrapperNames)
	for _, n := range wrapperNames {
		w := c.wrappers[n]
		fmt.Fprintf(&b, "%s := Wrapper(%q", w.Name, w.Kind)
		keys := make([]string, 0, len(w.Props))
		for k := range w.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, ", %s=%q", k, w.Props[k])
		}
		b.WriteString(");\n")
	}

	// Interfaces, in definition order (supertypes precede subtypes by
	// construction).
	for _, i := range c.schema.Interfaces() {
		fmt.Fprintf(&b, "\ninterface %s", i.Name)
		if i.Super != "" {
			fmt.Fprintf(&b, ":%s", i.Super)
		}
		if i.ExtentName != "" {
			fmt.Fprintf(&b, " (extent %s)", i.ExtentName)
		}
		b.WriteString(" {\n")
		for _, a := range i.Attrs {
			fmt.Fprintf(&b, "    attribute %s %s;\n", a.Type, a.Name)
		}
		b.WriteString("}\n")
	}

	// Extents, in declaration order.
	if len(c.extOrder) > 0 {
		b.WriteString("\n")
	}
	for _, n := range c.extOrder {
		m := c.extents[n]
		if m.Partitioned() {
			fmt.Fprintf(&b, "extent %s of %s wrapper %s at %s", m.Name, m.Iface, m.Wrapper, placementList(m, ", "))
			if m.Scheme != nil {
				fmt.Fprintf(&b, "\n    partition by %s", m.Scheme)
			}
		} else if m.Replicated() {
			fmt.Fprintf(&b, "extent %s of %s wrapper %s at %s", m.Name, m.Iface, m.Wrapper, placementList(m, ", "))
		} else {
			fmt.Fprintf(&b, "extent %s of %s wrapper %s repository %s", m.Name, m.Iface, m.Wrapper, m.Repository)
		}
		var pairs []string
		if m.SourceName != "" && m.SourceName != m.Name {
			pairs = append(pairs, fmt.Sprintf("(%s=%s)", m.SourceName, m.Name))
		}
		attrs := make([]string, 0, len(m.AttrMap))
		for med := range m.AttrMap {
			attrs = append(attrs, med)
		}
		sort.Strings(attrs)
		for _, med := range attrs {
			pairs = append(pairs, fmt.Sprintf("(%s=%s)", m.AttrMap[med], med))
		}
		if len(pairs) > 0 {
			fmt.Fprintf(&b, "\n    map (%s)", strings.Join(pairs, ","))
		}
		b.WriteString(";\n")
	}

	// In-flight migrations, in begin order: a dump taken mid-migration
	// restores both the placement (the extent declarations above already
	// reflect the recorded phase) and the migration's resting state.
	if len(c.migOrder) > 0 {
		b.WriteString("\n")
	}
	for _, n := range c.migOrder {
		mig := c.migrations[n]
		switch mig.Kind {
		case MigrateMove:
			fmt.Fprintf(&b, "migrate %s move %s to %s phase %q;\n", mig.Extent, mig.From, mig.To, mig.Phase)
		case MigrateSplit:
			fmt.Fprintf(&b, "migrate %s split %s at %s to %s phase %q;\n", mig.Extent, mig.From, dumpBound(mig.SplitAt), mig.To, mig.Phase)
		case MigrateMerge:
			fmt.Fprintf(&b, "migrate %s merge %s into %s phase %q;\n", mig.Extent, mig.From, mig.To, mig.Phase)
		}
	}

	// Views, in definition order.
	if len(c.vOrder) > 0 {
		b.WriteString("\n")
	}
	for _, n := range c.vOrder {
		fmt.Fprintf(&b, "define %s as\n    %s;\n", n, c.views[n])
	}
	return b.String()
}

// dumpBound renders a split bound the way range bounds render in a partition
// clause, so the migrate statement re-parses to the same value: floats in
// plain decimal notation, strings quoted, integers bare.
func dumpBound(v types.Value) string {
	if f, ok := v.(types.Float); ok {
		return strconv.FormatFloat(float64(f), 'f', -1, 64)
	}
	return v.String()
}

// placementList renders an extent's partition list (for the ODL "at"
// clause and the metaextent bag), with replica groups joined by "|"
// (r0|r0b, r1) and partitions joined by sep.
func placementList(m *MetaExtent, sep string) string {
	parts := m.Partitions()
	out := make([]string, len(parts))
	for i, p := range parts {
		if i < len(m.Replicas) && len(m.Replicas[i]) > 1 {
			out[i] = strings.Join(m.Replicas[i], "|")
		} else {
			out[i] = p
		}
	}
	return strings.Join(out, sep)
}
