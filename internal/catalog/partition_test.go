package catalog

import (
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/odl"
	"disco/internal/types"
)

func partitionCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if err := c.DefineInterface(&types.Interface{
		Name: "Person", ExtentName: "person",
		Attrs: []types.Attribute{{Name: "name", Type: types.ScalarAttr(types.TString)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddWrapper(&Wrapper{Name: "w0", Kind: "sql"}); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"r0", "r1", "r2"} {
		if err := c.AddRepository(&Repository{Name: r, Address: "mem:" + r}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAddPartitionedExtent(t *testing.T) {
	c := partitionCatalog(t)
	if err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1", "r2"},
	}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Partitioned() {
		t.Error("extent should report Partitioned")
	}
	if m.Repository != "r0" {
		t.Errorf("Repository = %q, want first partition", m.Repository)
	}
	if got := strings.Join(m.Partitions(), ","); got != "r0,r1,r2" {
		t.Errorf("Partitions = %q", got)
	}
	ref := c.PartitionRef(m, "r1")
	if ref.Repo != "r1" || ref.Partition != "r1" || ref.QualifiedName() != "people@r1" {
		t.Errorf("PartitionRef = %+v", ref)
	}
}

func TestAddPartitionedExtentUnknownRepository(t *testing.T) {
	c := partitionCatalog(t)
	err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r9"},
	})
	if err == nil || !strings.Contains(err.Error(), `repository "r9"`) {
		t.Errorf("err = %v", err)
	}
}

func TestAddPartitionedExtentDuplicatePartition(t *testing.T) {
	c := partitionCatalog(t)
	err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1", "r0"},
	})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("err = %v", err)
	}
}

func TestUnpartitionedPartitionRefHasNoQualifier(t *testing.T) {
	c := partitionCatalog(t)
	if err := c.AddExtent(&MetaExtent{
		Name: "person0", Iface: "Person", Wrapper: "w0", Repository: "r0",
	}); err != nil {
		t.Fatal(err)
	}
	m, _ := c.Extent("person0")
	if m.Partitioned() {
		t.Error("single-repo extent reports Partitioned")
	}
	ref := c.PartitionRef(m, "r0")
	if ref.Partition != "" || ref.QualifiedName() != "person0" {
		t.Errorf("ref = %+v", ref)
	}
}

func TestPartitionedMetaExtentBag(t *testing.T) {
	c := partitionCatalog(t)
	if err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1", "r2"},
	}); err != nil {
		t.Fatal(err)
	}
	bag := c.MetaExtentBag()
	st := bag.At(0).(*types.Struct)
	repo, _ := st.Get("repository")
	if !repo.Equal(types.Str("r0,r1,r2")) {
		t.Errorf("metaextent repository = %s", repo)
	}
}

func TestAddExtentWithHashScheme(t *testing.T) {
	c := partitionCatalog(t)
	if err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1", "r2"},
		Scheme:       &algebra.PartitionSpec{Kind: algebra.PartHash, Attr: "name"},
	}); err != nil {
		t.Fatal(err)
	}
	m, _ := c.Extent("people")
	ref := c.PartitionRef(m, "r1")
	if ref.PartSpec == nil || ref.PartIndex != 1 || ref.PartCount != 3 {
		t.Errorf("PartitionRef placement = spec:%v index:%d count:%d", ref.PartSpec, ref.PartIndex, ref.PartCount)
	}
}

func TestAddExtentSchemeUnknownAttr(t *testing.T) {
	c := partitionCatalog(t)
	err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1"},
		Scheme:       &algebra.PartitionSpec{Kind: algebra.PartHash, Attr: "zip"},
	})
	if err == nil || !strings.Contains(err.Error(), `unknown attribute "zip"`) {
		t.Errorf("err = %v", err)
	}
}

func TestAddExtentRangeSchemeValidation(t *testing.T) {
	c := partitionCatalog(t)
	// Two ranges for three partitions.
	err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1", "r2"},
		Scheme: &algebra.PartitionSpec{Kind: algebra.PartRange, Attr: "name", Ranges: []algebra.RangeBound{
			{Hi: types.Str("m")}, {Lo: types.Str("m")},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "3 partitions") {
		t.Errorf("count mismatch err = %v", err)
	}
	// An empty interval.
	err = c.AddExtent(&MetaExtent{
		Name: "people2", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1"},
		Scheme: &algebra.PartitionSpec{Kind: algebra.PartRange, Attr: "name", Ranges: []algebra.RangeBound{
			{Hi: types.Str("m")}, {Lo: types.Str("z"), Hi: types.Str("a")},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty range err = %v", err)
	}
}

// TestDumpODLRoundTripsPartitionScheme: the dumped catalog text reproduces
// the partitioning scheme when reparsed.
func TestDumpODLRoundTripsPartitionScheme(t *testing.T) {
	c := partitionCatalog(t)
	spec := &algebra.PartitionSpec{Kind: algebra.PartRange, Attr: "name", Ranges: []algebra.RangeBound{
		{Hi: types.Str("m")},
		{Lo: types.Str("m"), Hi: types.Str("t")},
		{Lo: types.Str("t")},
	}}
	if err := c.AddExtent(&MetaExtent{
		Name: "people", Iface: "Person", Wrapper: "w0",
		Repositories: []string{"r0", "r1", "r2"},
		Scheme:       spec,
	}); err != nil {
		t.Fatal(err)
	}
	dump := c.DumpODL()
	if !strings.Contains(dump, `partition by range(name) ("m".."t")`) &&
		!strings.Contains(dump, `partition by range(name) (.."m", "m".."t", "t"..)`) {
		t.Fatalf("dump misses the partition clause:\n%s", dump)
	}
	stmts, err := odl.Parse(dump)
	if err != nil {
		t.Fatalf("dump does not reparse: %v\n%s", err, dump)
	}
	found := false
	for _, s := range stmts {
		d, ok := s.(*odl.ExtentDecl)
		if !ok || d.Name != "people" {
			continue
		}
		found = true
		if !d.Scheme.Equal(spec) {
			t.Errorf("reparsed scheme = %+v, want %+v", d.Scheme, spec)
		}
	}
	if !found {
		t.Errorf("dump misses the extent:\n%s", dump)
	}
}

func TestAddExtentSchemeNeedsPartitions(t *testing.T) {
	c := partitionCatalog(t)
	err := c.AddExtent(&MetaExtent{
		Name: "person1", Iface: "Person", Wrapper: "w0", Repository: "r0",
		Scheme: &algebra.PartitionSpec{Kind: algebra.PartHash, Attr: "name"},
	})
	if err == nil || !strings.Contains(err.Error(), "single repository") {
		t.Errorf("scheme over one repository should be rejected, err = %v", err)
	}
}
