package harness

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"disco/internal/catalog"
	"disco/internal/chaos"
	"disco/internal/oql"
	"disco/internal/types"
)

// migScanQuery and migRangeQuery are the two reader queries the soak keeps
// in flight: a full scan (touches every shard, including both copies during
// dual-read) and a range query that lands inside the migrating shard.
const (
	migScanQuery  = `select x.name from x in people`
	migRangeQuery = `select x.name from x in people where x.id >= 12 and x.id < 24`
)

// migWant builds the no-migration baseline for a soak fleet of n rows:
// the multiset of names a scan must answer regardless of migration state.
func migWant(lo, hi int) *types.Bag {
	var vals []types.Value
	for i := lo; i < hi; i++ {
		vals = append(vals, types.Str(fmt.Sprintf("p%d", i)))
	}
	return types.NewBag(vals...)
}

// migReaders starts n closed-loop readers that query the fleet until stop
// closes. Every complete answer must be multiset-equal to the no-migration
// baseline — a migration that duplicates or drops a tuple fails here — and
// every residual must parse. Returned channel carries the first few
// divergences.
func migReaders(f *Fleet, n, rows int, stop <-chan struct{}) (*sync.WaitGroup, chan error) {
	scanWant := migWant(0, rows)
	rangeWant := migWant(12, 24)
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				query, want := migScanQuery, scanWant
				if (c+i)%2 == 1 {
					query, want = migRangeQuery, rangeWant
				}
				ans, err := f.M.QueryPartial(query)
				if err != nil {
					report(fmt.Errorf("reader %d: %v", c, err))
					return
				}
				if ans.Complete {
					if !ans.Value.Equal(want) {
						mig, ok := f.M.Catalog().MigrationOf("people")
						report(fmt.Errorf("reader %d: %s = %s, want %s (catalog version %d, migration %+v %v)",
							c, query, ans.Value, want, f.M.Catalog().Version(), mig, ok))
					}
				} else if _, perr := oql.ParseQuery(ans.Residual.String()); perr != nil {
					report(fmt.Errorf("reader %d: malformed residual %q: %v", c, ans.Residual, perr))
				}
			}
		}(c)
	}
	return &wg, errs
}

// migrationSoakScenario is one scripted fault at one phase boundary: drive
// the move to `atPhase`, inject the fault, attempt the next transition
// (which may fail — the catalog must then still hold the old resting
// state), heal, and retry to completion.
type migrationSoakScenario struct {
	name    string
	atPhase string // resting phase at which the fault strikes
	victim  int    // repository index the fault lands on
	inject  func(f *Fleet, victim int)
	heal    func(f *Fleet, victim int)
}

// TestChaosSoakMigrationPhaseBoundaries kills, partitions, or times out a
// live shard move at every phase boundary of the migration state machine,
// under continuous concurrent readers. The contract at every point:
//
//   - readers never see an error, a duplicate, or a dropped tuple — every
//     complete answer is multiset-equal to the no-migration baseline;
//   - a failed transition leaves the catalog in the prior resting state
//     (same phase, same placement), and retrying after the fault heals
//     drives the same migration to completion;
//   - the finished move has the destination in the placement, the source
//     released, and no migration record left behind.
//
// The chaos proxies are seeded, so a failure replays.
func TestChaosSoakMigrationPhaseBoundaries(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	const (
		shards  = 3
		spares  = 2
		rows    = 36
		from    = "r1" // shard holding ids 12..24
		fromIdx = 1
		dest    = "r3" // first spare
		destIdx = 3
		readers = 4
	)
	partition := func(f *Fleet, v int) { f.SetFault(v, chaos.Partition{}) }
	healProxy := func(f *Fleet, v int) { f.SetFault(v, chaos.Healthy{}) }
	scenarios := []migrationSoakScenario{
		// declared -> copying is a catalog-only flip; the partition proves
		// readers ride through a dead destination before any copy starts.
		{"partition-dest-at-declared", catalog.PhaseDeclared, destIdx, partition, healProxy},
		// copying -> dual-read runs the copy; a destination stuck behind
		// latency beyond the evaluation deadline times the copy out.
		{"timeout-dest-at-copying", catalog.PhaseCopying, destIdx,
			func(f *Fleet, v int) { f.SetFault(v, chaos.Latency{D: 2 * time.Second}) }, healProxy},
		// dual-read -> cutover with the new copy killed outright: reads
		// must degrade to the old placement, not to a residual.
		{"kill-dest-at-dual-read", catalog.PhaseDualRead, destIdx,
			func(f *Fleet, v int) { f.Servers[v].SetAvailable(false) },
			func(f *Fleet, v int) { f.Servers[v].SetAvailable(true) }},
		// cutover -> done clears the released source; partitioning it
		// blocks the cleanup but never the reads (they moved at cutover).
		{"partition-source-at-cutover", catalog.PhaseCutover, fromIdx, partition, healProxy},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			f, err := NewShardedFleet(ShardedFleetConfig{
				Shards: shards, Spares: spares, Rows: rows,
				TCP: true, Chaos: true, ChaosSeed: 1137,
				Timeout: 500 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			versionBefore := f.M.Catalog().Version()

			stop := make(chan struct{})
			wg, errs := migReaders(f, readers, rows, stop)

			if err := f.M.BeginShardMove("people", from, dest); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			phase := catalog.PhaseDeclared
			done := false
			for !done {
				if phase == sc.atPhase {
					sc.inject(f, sc.victim)
					// The faulted transition: either it rides through the
					// fault, or it fails and must have left the resting
					// state untouched for the retry.
					if _, _, err := f.M.AdvanceMigration(ctx, "people"); err != nil {
						mig, ok := f.M.Catalog().MigrationOf("people")
						if !ok || mig.Phase != sc.atPhase {
							t.Fatalf("failed transition out of %s left phase %q (record %v)", sc.atPhase, mig.Phase, ok)
						}
					}
					sc.heal(f, sc.victim)
				}
				// Retry until the transition lands: the heal is synchronous
				// at the proxy but the client pool rediscovers sockets
				// asynchronously.
				deadline := time.Now().Add(15 * time.Second)
				for {
					p, d, err := f.M.AdvanceMigration(ctx, "people")
					if err == nil {
						phase, done = p, d
						break
					}
					if !time.Now().Before(deadline) {
						t.Fatalf("transition out of %s never recovered: %v", phase, err)
					}
					time.Sleep(50 * time.Millisecond)
				}
			}

			close(stop)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			if _, ok := f.M.Catalog().MigrationOf("people"); ok {
				t.Error("migration record survived completion")
			}
			if v := f.M.Catalog().Version(); v <= versionBefore {
				t.Errorf("catalog version %d did not advance past %d", v, versionBefore)
			}
			me, err := f.M.Catalog().Extent("people")
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.Join(me.Partitions(), ","); got != "r0,r3,r2" {
				t.Errorf("final placement %s, want r0,r3,r2", got)
			}
			// The moved-to layout answers the same baseline, completely.
			assertCompleteBaseline(t, f, rows)
		})
	}

	// Goroutine hygiene across all scenarios: chaos, killed servers, and
	// failed copies must not leave forwarders or waiters behind.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked through the migration soak: %d before, %d after",
		goroutinesBefore, runtime.NumGoroutine())
}

// TestChaosSoakMigrationAbortRetry aborts a move at dual-read while the
// destination is partitioned — so even the abort's cleanup fails — then
// heals, finishes the cleanup, and retries the same move to completion,
// with readers in flight throughout.
func TestChaosSoakMigrationAbortRetry(t *testing.T) {
	const (
		rows    = 36
		destIdx = 3
	)
	f, err := NewShardedFleet(ShardedFleetConfig{
		Shards: 3, Spares: 2, Rows: rows,
		TCP: true, Chaos: true, ChaosSeed: 2291,
		Timeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	stop := make(chan struct{})
	wg, errs := migReaders(f, 4, rows, stop)

	ctx := context.Background()
	if err := f.M.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	mustAdvance := func(wantPhase string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			p, _, err := f.M.AdvanceMigration(ctx, "people")
			if err == nil {
				if p != wantPhase {
					t.Fatalf("advanced to %s, want %s", p, wantPhase)
				}
				return
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("advance to %s never succeeded: %v", wantPhase, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	mustAdvance(catalog.PhaseCopying)
	mustAdvance(catalog.PhaseDualRead)

	// Abort behind a partitioned destination: the placement rolls back
	// immediately (dual-read ends), the cleanup stays owed, the record
	// stays aborted so the debt is visible.
	f.SetFault(destIdx, chaos.Partition{})
	if err := f.M.AbortMigration(ctx, "people"); err == nil {
		t.Fatal("abort with a partitioned destination should report the failed cleanup")
	}
	mig, ok := f.M.Catalog().MigrationOf("people")
	if !ok || mig.Phase != catalog.PhaseAborted {
		t.Fatalf("aborted migration record = %+v (present %v)", mig, ok)
	}
	me, err := f.M.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(me.Partitions(), ","); got != "r0,r1,r2" {
		t.Errorf("aborted placement %s, want the original r0,r1,r2", got)
	}

	// Heal; the owed cleanup completes and clears the record.
	f.SetFault(destIdx, chaos.Healthy{})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, _, err := f.M.AdvanceMigration(ctx, "people"); err == nil {
			break
		} else if !time.Now().Before(deadline) {
			t.Fatalf("aborted cleanup never recovered: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, ok := f.M.Catalog().MigrationOf("people"); ok {
		t.Fatal("aborted record survived its cleanup")
	}

	// The same move retries cleanly end to end.
	if err := f.M.MoveShard(ctx, "people", "r1", "r3"); err != nil {
		t.Fatalf("retrying the aborted move: %v", err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	me, err = f.M.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(me.Partitions(), ","); got != "r0,r3,r2" {
		t.Errorf("retried move placement %s, want r0,r3,r2", got)
	}
	assertCompleteBaseline(t, f, rows)
}

// assertCompleteBaseline retries the full scan until the answer is complete
// again (breakers may still be cooling down from the injected faults) and
// asserts it equals the no-migration multiset.
func assertCompleteBaseline(t *testing.T, f *Fleet, rows int) {
	t.Helper()
	want := migWant(0, rows)
	deadline := time.Now().Add(10 * time.Second)
	for {
		ans, err := f.M.QueryPartial(migScanQuery)
		if err == nil && ans.Complete {
			if !ans.Value.Equal(want) {
				t.Errorf("post-migration scan = %s, want %s", ans.Value, want)
			}
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("scan never returned a complete answer after healing (err %v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
