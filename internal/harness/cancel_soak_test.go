package harness

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"disco/internal/chaos"
	"disco/internal/core"
	"disco/internal/source"
	"disco/internal/wire"
)

// waitUntil polls cond until it holds or the timeout lapses.
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// TestChaosSoakHedgeLoserReclaimed soaks the hedge-loser cancellation path
// under seeded chaos: one replicated extent whose primary copy is both slow
// to serve (server latency keeps the loser's work in flight server-side)
// and behind a chaos proxy slow-dripping its responses (so even a reply
// that does get written crawls back). Every read of that shard hedges to
// the fast replica and wins there; the contract under test is that each
// race's loser is actively reclaimed — a cancel frame cancels its handler
// context and the slow server's in-flight gauge returns to zero promptly
// after the race resolves, instead of accumulating one zombie per race.
//
// The reclamation bound asserted (250ms per race) is far stricter than the
// client pool's reap cadence: reclamation must come from the cancel frame
// aborting the work, not from connection teardown finding it later.
//
// Cancels are a caller-side verdict, so they must leave the control loops
// untouched: with a breaker threshold of 1, a single cancelled loser
// misread as "source unavailable" would quarantine the slow copy — the
// closed breakers at the end prove no misreads happened. The soak is
// goroutine-leak-checked, and the chaos seed makes the proxy's choices
// reproducible.
func TestChaosSoakHedgeLoserReclaimed(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	const chaosSeed = 11
	servers := map[string]*wire.Server{}
	var closers []func()
	closeAll := func() {
		for _, c := range closers {
			c()
		}
		closers = nil
	}
	defer closeAll()
	var odl strings.Builder
	for shard := 0; shard < 2; shard++ {
		for _, suffix := range []string{"", "b"} {
			repo := fmt.Sprintf("r%d%s", shard, suffix)
			store := source.NewRelStore()
			// Primary and replica of a shard share a seed: identical rows,
			// the replica contract.
			if err := source.GenPeople(store, "people", 20, int64(shard)); err != nil {
				t.Fatal(err)
			}
			srv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: store})
			if err != nil {
				t.Fatal(err)
			}
			closers = append(closers, func() { srv.Close() })
			servers[repo] = srv
			addr := srv.Addr()
			if repo == "r0" {
				// The slow copy answers through a seeded slow-drip proxy.
				// Chaos faults apply to the server->client direction only, so
				// cancel frames still reach the server cleanly — as they
				// would on a real link that is slow, not severed.
				proxy, err := chaos.NewProxy(addr, chaosSeed)
				if err != nil {
					t.Fatal(err)
				}
				closers = append(closers, func() { proxy.Close() })
				proxy.SetFault(chaos.SlowDrip{Chunk: 64, PerChunk: 5 * time.Millisecond})
				addr = proxy.Addr()
			}
			fmt.Fprintf(&odl, "%s := Repository(address=%q);\n", repo, addr)
		}
	}
	odl.WriteString(`
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at r0|r0b, r1|r1b;
	`)
	// Server latency on the slow copy is what keeps the loser's request in
	// flight server-side while the race resolves at the replica.
	servers["r0"].SetLatency(80 * time.Millisecond)

	m := core.New(
		core.WithTimeout(800*time.Millisecond),
		core.WithHedging(5*time.Millisecond),
		core.WithBreaker(1, time.Minute),
	)
	defer m.Close()
	if err := m.ExecODL(odl.String()); err != nil {
		t.Fatal(err)
	}

	const races = 25
	var want string
	var hedges int64
	for i := 0; i < races; i++ {
		v, tr, err := m.QueryTraced(`select x from x in people`)
		if err != nil {
			t.Fatalf("race %d: %v", i, err)
		}
		if want == "" {
			want = v.String()
		} else if got := v.String(); got != want {
			t.Fatalf("race %d: answer drifted under chaos:\n got %s\nwant %s", i, got, want)
		}
		hedges += tr.HedgesFired
		// The race resolved; the loser's server-side slot must drain within
		// the bound, not pile up.
		if !waitUntil(250*time.Millisecond, func() bool { return servers["r0"].Inflight() == 0 }) {
			t.Fatalf("race %d: slow copy inflight = %d, abandoned loser not reclaimed", i, servers["r0"].Inflight())
		}
	}
	if hedges == 0 {
		t.Fatal("no hedges fired against an 80ms straggler; the soak exercised nothing")
	}
	// Cancel frames are sent asynchronously after the abandoning caller has
	// already returned, so the proof of propagation is the server-side
	// counter, not per-query trace windows.
	if !waitUntil(time.Second, func() bool { return servers["r0"].Stats().Cancelled.Load() > 0 }) {
		t.Error("slow copy counted no cancelled handlers")
	}
	for _, repo := range []string{"r0", "r0b", "r1", "r1b"} {
		if got := m.BreakerState(repo); got != core.BreakerClosed {
			t.Errorf("breaker %s = %v, want closed: cancelled losers poisoned it", repo, got)
		}
	}

	m.Close()
	closeAll()
	leakDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= goroutinesBefore {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked through the cancellation soak: %d before, %d after",
		goroutinesBefore, runtime.NumGoroutine())
}
