package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"disco/internal/algebra"
	"disco/internal/core"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// paperQuery is the §1.2 query used throughout the experiments.
const paperQuery = `select x.name from x in person where x.salary > 10`

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// F1Architecture runs Figure 1 as a living system: an application queries a
// mediator which reaches two wrapped TCP sources, and the table reports
// what each component did.
func F1Architecture() (*Table, error) {
	f, err := NewPersonFleet(FleetConfig{Sources: 2, RowsPerSource: 100, TCP: true})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	v, tr, err := f.M.QueryTraced(paperQuery)
	if err != nil {
		return nil, err
	}
	rows := v.(*types.Bag).Len()

	t := &Table{
		ID:     "F1",
		Title:  "Figure 1 — distributed architecture (A -> M -> W -> D over TCP)",
		Header: []string{"component", "role", "queries", "bytes_out", "detail"},
	}
	t.Rows = append(t.Rows, []string{"application", "issues OQL", "1", "-", paperQuery})
	t.Rows = append(t.Rows, []string{"mediator", "plan+execute", "1", "-",
		fmt.Sprintf("parse=%sms optimize=%sms execute=%sms", ms(tr.Parse), ms(tr.Optimize), ms(tr.Execute))})
	for i, srv := range f.Servers {
		st := srv.Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("wrapper+source r%d", i), "SQL translation + scan",
			fmt.Sprintf("%d", st.Queries.Load()),
			fmt.Sprintf("%d", st.BytesOut.Load()),
			fmt.Sprintf("person%d", i),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("answer rows: %d (from %d per-source rows)", rows, f.RowsPerSource))
	return t, nil
}

// F2Pipeline times the Mediator Prototype 0 stages (Figure 2) cold and
// warm (plan cache hit).
func F2Pipeline() (*Table, error) {
	f, err := NewPersonFleet(FleetConfig{Sources: 2, RowsPerSource: 200})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	_, cold, err := f.M.QueryTraced(paperQuery)
	if err != nil {
		return nil, err
	}
	_, warm, err := f.M.QueryTraced(paperQuery)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F2",
		Title:  "Figure 2 — Prototype 0 pipeline stage timings (ms)",
		Header: []string{"stage", "cold", "warm(plan cache)"},
		Rows: [][]string{
			{"oql parse", ms(cold.Parse), ms(warm.Parse)},
			{"view expansion", ms(cold.Expand), ms(warm.Expand)},
			{"compile to algebra", ms(cold.Compile), ms(warm.Compile)},
			{"optimize", ms(cold.Optimize), ms(warm.Optimize)},
			{"execute", ms(cold.Execute), ms(warm.Execute)},
		},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("warm run cache hit: %v", warm.CacheHit))
	return t, nil
}

// E1Availability measures the paper's §1 scaling claim: the probability
// that a query over n sources can be answered completely collapses as n
// grows, while partial-evaluation answers remain useful (they always
// return, carrying the available fraction of the data).
func E1Availability(ns []int, p float64, trials int, timeout time.Duration) (*Table, error) {
	if timeout <= 0 {
		timeout = 150 * time.Millisecond
	}
	r := rand.New(rand.NewSource(1996))
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("availability vs number of sources (per-source availability p=%.2f, %d trials)", p, trials),
		Header: []string{
			"sources", "analytic p^n", "full answers", "partial answers", "avg data fraction",
		},
	}
	for _, n := range ns {
		f, err := NewPersonFleet(FleetConfig{Sources: n, RowsPerSource: 5, TCP: true, Timeout: timeout})
		if err != nil {
			return nil, err
		}
		full, partialCount := 0, 0
		dataFrac := 0.0
		for trial := 0; trial < trials; trial++ {
			up := 0
			for i := 0; i < n; i++ {
				avail := r.Float64() < p
				f.SetAvailable(i, avail)
				if avail {
					up++
				}
			}
			ans, err := f.M.QueryPartial(`select x.name from x in person`)
			if err != nil {
				f.Close()
				return nil, err
			}
			if ans.Complete {
				full++
				dataFrac += 1
			} else {
				partialCount++
				dataFrac += float64(up) / float64(n)
			}
		}
		f.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", math.Pow(p, float64(n))),
			fmt.Sprintf("%d/%d", full, trials),
			fmt.Sprintf("%d/%d", partialCount, trials),
			fmt.Sprintf("%.2f", dataFrac/float64(trials)),
		})
	}
	t.Notes = append(t.Notes,
		"full answers track p^n; partial semantics always answers, returning the available fraction")
	return t, nil
}

// E2Partial reproduces §1.3/§4 end to end and times each phase.
func E2Partial() (*Table, error) {
	f, err := NewPersonFleet(FleetConfig{Sources: 2, RowsPerSource: 50, TCP: true, Timeout: 250 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	t := &Table{
		ID:     "E2",
		Title:  "partial evaluation: unavailable source, answer-as-query, resubmission",
		Header: []string{"phase", "latency_ms", "outcome"},
	}

	start := time.Now()
	ans, err := f.M.QueryPartial(paperQuery)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"all sources up", ms(time.Since(start)),
		fmt.Sprintf("complete, %d rows", ans.Value.(*types.Bag).Len())})

	f.SetAvailable(0, false)
	start = time.Now()
	ans, err = f.M.QueryPartial(paperQuery)
	if err != nil {
		return nil, err
	}
	if ans.Complete {
		return nil, fmt.Errorf("harness: expected a partial answer")
	}
	residual := ans.Residual.String()
	t.Rows = append(t.Rows, []string{"r0 down", ms(time.Since(start)),
		fmt.Sprintf("partial: %.60s...", residual)})

	f.SetAvailable(0, true)
	start = time.Now()
	re, err := f.M.QueryPartial(residual)
	if err != nil {
		return nil, err
	}
	if !re.Complete {
		return nil, fmt.Errorf("harness: resubmission should complete")
	}
	full, err := f.M.Query(paperQuery)
	if err != nil {
		return nil, err
	}
	match := re.Value.Equal(full)
	t.Rows = append(t.Rows, []string{"resubmit after recovery", ms(time.Since(start)),
		fmt.Sprintf("complete, equals original answer: %v", match)})
	if !match {
		return nil, fmt.Errorf("harness: resubmitted answer does not match")
	}
	t.Notes = append(t.Notes, "the partial-phase latency is dominated by the evaluation deadline (the paper's designated time)")
	return t, nil
}

// E3Pushdown sweeps wrapper capability sets and measures data movement for
// the same query (§3.2: the wrapper grammar governs what the optimizer may
// push).
func E3Pushdown(rows int) (*Table, error) {
	if rows <= 0 {
		rows = 2000
	}
	const query = `select x.name from x in person0 where x.salary < 100`
	levels := []struct {
		label string
		odl   string
	}{
		{"get only", `w0 := Wrapper("sql", ops="get");`},
		{"get+select", `w0 := Wrapper("sql", ops="get,select");`},
		{"get+select+project", `w0 := Wrapper("sql", ops="get,select,project");`},
	}
	t := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("capability-driven pushdown (%d-row source, selectivity ~0.1)", rows),
		Header: []string{"wrapper capability", "bytes from source", "source queries", "latency_ms", "answer rows"},
	}
	var baseline int64
	for _, level := range levels {
		f, err := NewPersonFleet(FleetConfig{Sources: 1, RowsPerSource: rows, TCP: true, WrapperODL: level.odl})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		v, err := f.M.Query(query)
		if err != nil {
			f.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		bytes := f.TotalBytesOut()
		queries := f.TotalQueries()
		f.Close()
		if baseline == 0 {
			baseline = bytes
		}
		t.Rows = append(t.Rows, []string{
			level.label,
			fmt.Sprintf("%d (%.0f%%)", bytes, 100*float64(bytes)/float64(baseline)),
			fmt.Sprintf("%d", queries),
			ms(elapsed),
			fmt.Sprintf("%d", v.(*types.Bag).Len()),
		})
	}
	t.Notes = append(t.Notes, "richer wrapper grammars cut data movement; answers are identical across rows")
	return t, nil
}

// E4CostLearning measures §3.3: estimate error against observed exec calls
// as the history accumulates, plus the default-cost pushdown behaviour.
func E4CostLearning() (*Table, error) {
	f, err := NewPersonFleet(FleetConfig{
		Sources: 1, RowsPerSource: 500, TCP: true,
		Latency: 15 * time.Millisecond, Timeout: 5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	const query = `select x.name from x in person0 where x.salary < 500`
	plan, _, err := f.M.Prepare(query)
	if err != nil {
		return nil, err
	}
	subs := algebra.Submits(plan)
	if len(subs) != 1 {
		return nil, fmt.Errorf("harness: expected 1 submit, got %d", len(subs))
	}
	sub := subs[0]

	t := &Table{
		ID:     "E4",
		Title:  "learned exec costs: estimate vs observation (15ms injected source latency)",
		Header: []string{"observed calls", "basis", "est time_ms", "est rows", "actual time_ms", "actual rows"},
	}
	var lastElapsed time.Duration
	var lastRows int
	for k := 0; k <= 8; k++ {
		est := f.M.History().Estimate(sub.Repo, sub.Input)
		actualTime, actualRows := "-", "-"
		if k > 0 {
			actualTime = ms(lastElapsed)
			actualRows = fmt.Sprintf("%d", lastRows)
		}
		if k == 0 || k == 1 || k == 2 || k == 4 || k == 8 {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", k), est.Basis.String(),
				ms(est.Time), fmt.Sprintf("%.1f", est.Rows),
				actualTime, actualRows,
			})
		}
		if k == 8 {
			break
		}
		start := time.Now()
		v, err := f.M.Query(query)
		if err != nil {
			return nil, err
		}
		lastElapsed = time.Since(start)
		lastRows = v.(*types.Bag).Len()
	}
	// Default-cost pushdown check on a fresh mediator.
	explain, err := f.M.Explain(query)
	if err != nil {
		return nil, err
	}
	pushed := strings.Contains(explain, "submit(r0, project([name], select(")
	t.Notes = append(t.Notes, fmt.Sprintf("default estimate is (time 0, rows 1); optimizer pushes maximally under it: %v", pushed))
	return t, nil
}

// E7WideArea measures how injected link latency amplifies the value of
// pushdown — the performance concern §6.2 raises for the distributed
// architecture ("network communication occurs between several components
// to process a single query").
func E7WideArea(rows int, latencies []time.Duration) (*Table, error) {
	if rows <= 0 {
		rows = 1500
	}
	if len(latencies) == 0 {
		latencies = []time.Duration{0, 10 * time.Millisecond, 40 * time.Millisecond}
	}
	const query = `select x.name from x in person0 where x.salary < 100`
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("pushdown vs link latency (%d-row source)", rows),
		Header: []string{"link latency", "scan-only_ms", "full pushdown_ms", "speedup"},
	}
	for _, lat := range latencies {
		var results [2]time.Duration
		for i, wrapperODL := range []string{
			`w0 := Wrapper("sql", ops="get");`,
			`w0 := WrapperPostgres();`,
		} {
			f, err := NewPersonFleet(FleetConfig{
				Sources: 1, RowsPerSource: rows, TCP: true,
				Latency: lat, Timeout: 30 * time.Second, WrapperODL: wrapperODL,
			})
			if err != nil {
				return nil, err
			}
			// Warm the plan cache so only execution is measured.
			if _, err := f.M.Query(query); err != nil {
				f.Close()
				return nil, err
			}
			start := time.Now()
			if _, err := f.M.Query(query); err != nil {
				f.Close()
				return nil, err
			}
			results[i] = time.Since(start)
			f.Close()
		}
		t.Rows = append(t.Rows, []string{
			lat.String(),
			ms(results[0]),
			ms(results[1]),
			fmt.Sprintf("%.1fx", float64(results[0])/float64(results[1])),
		})
	}
	t.Notes = append(t.Notes,
		"both plans pay one round trip, so the absolute gap (data volume) stays constant while the ratio shrinks as link latency dominates")
	return t, nil
}

// E5Scaling measures the DBA-facing cost of adding sources (§1.2): one
// extent declaration each, with the query text unchanged.
func E5Scaling(ns []int) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "scaling the number of same-type sources (in-process, 50 rows each)",
		Header: []string{"sources", "add-extent_ms", "query_ms", "answer rows", "plan submits"},
	}
	for _, n := range ns {
		f, err := NewPersonFleet(FleetConfig{Sources: n, RowsPerSource: 50})
		if err != nil {
			return nil, err
		}
		// Time an incremental registration: one more source.
		extra := fmt.Sprintf(`
			rextra := Repository(address="mem:r0");
			extent personextra of Person wrapper w0 repository rextra
			    map ((person0=personextra));
		`)
		start := time.Now()
		if err := f.M.ExecODL(extra); err != nil {
			f.Close()
			return nil, err
		}
		addTime := time.Since(start)
		if err := f.M.ExecODL(`drop extent personextra;`); err != nil {
			f.Close()
			return nil, err
		}

		start = time.Now()
		v, err := f.M.Query(paperQuery)
		if err != nil {
			f.Close()
			return nil, err
		}
		queryTime := time.Since(start)

		plan, _, err := f.M.Prepare(paperQuery)
		if err != nil {
			f.Close()
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			ms(addTime),
			ms(queryTime),
			fmt.Sprintf("%d", v.(*types.Bag).Len()),
			fmt.Sprintf("%d", len(algebra.Submits(plan))),
		})
		f.Close()
	}
	t.Notes = append(t.Notes, "the query text never changes; each source adds one extent declaration and one submit to the plan")
	return t, nil
}

// E6Modeling measures the §2.2–2.3 modeling tools: maps, subtyping and
// views over the same underlying data.
func E6Modeling() (*Table, error) {
	f, err := NewPersonFleet(FleetConfig{Sources: 2, RowsPerSource: 200})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	if err := f.M.ExecODL(`
		interface PersonPrime {
		    attribute String n;
		    attribute Short s;
		}
		extent personprime0 of PersonPrime wrapper w0 repository r0
		    map ((person0=personprime0),(name=n),(salary=s));

		interface Student:Person { }
		extent student0 of Student wrapper w0 repository r1
		    map ((person1=student0));

		define wealthy as
		    select struct(name: x.name, salary: x.salary)
		    from x in person where x.salary > 500;

		define wealthycount as count(wealthy);
	`); err != nil {
		return nil, err
	}

	cases := []struct {
		label string
		query string
	}{
		{"direct extent", `select x.name from x in person0 where x.salary > 500`},
		{"mapped type (§2.2.2)", `select x.n from x in personprime0 where x.s > 500`},
		{"subtype closure (§2.2.1)", `select x.name from x in person* where x.salary > 500`},
		{"view (§2.2.3)", `select w.name from w in wealthy`},
		{"view over view", `wealthycount`},
	}
	t := &Table{
		ID:     "E6",
		Title:  "modeling tools: direct access vs maps, subtyping and views",
		Header: []string{"mechanism", "latency_ms", "result size"},
	}
	for _, c := range cases {
		start := time.Now()
		v, err := f.M.Query(c.query)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.label, err)
		}
		elapsed := time.Since(start)
		size := "1 (scalar)"
		if b, ok := v.(*types.Bag); ok {
			size = fmt.Sprintf("%d rows", b.Len())
		}
		t.Rows = append(t.Rows, []string{c.label, ms(elapsed), size})
	}
	t.Notes = append(t.Notes, "maps and views add only mediator-side rewriting; pushdown still applies underneath")
	return t, nil
}

// E8ConnectionScaling measures the wire layer's persistent-connection win:
// point queries against one TCP source from increasing numbers of
// concurrent application threads, a fresh dial per request (the pre-pool
// wire layer) vs one shared client with pooled, multiplexed connections.
func E8ConnectionScaling(ctx context.Context, clients []int, queriesPerClient int) (*Table, error) {
	if len(clients) == 0 {
		clients = []int{1, 4, 16}
	}
	if queriesPerClient <= 0 {
		queriesPerClient = 200
	}
	store := source.NewRelStore()
	if err := source.GenPeople(store, "person0", 200, 0); err != nil {
		return nil, err
	}
	srv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: store})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	t := &Table{
		ID:     "E8",
		Title:  fmt.Sprintf("connection reuse under concurrency (%d point queries per client)", queriesPerClient),
		Header: []string{"clients", "dial-per-request q/s", "pooled q/s", "speedup"},
	}
	for _, n := range clients {
		dialQPS, err := e8Throughput(ctx, srv.Addr(), n, queriesPerClient, true)
		if err != nil {
			return nil, err
		}
		poolQPS, err := e8Throughput(ctx, srv.Addr(), n, queriesPerClient, false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", dialQPS),
			fmt.Sprintf("%.0f", poolQPS),
			fmt.Sprintf("%.2fx", poolQPS/dialQPS),
		})
	}
	t.Notes = append(t.Notes,
		"pooled: one shared wire.Client, bounded persistent connections, requests multiplexed and matched by ID")
	return t, nil
}

// e8Throughput runs clients*perClient point queries and returns the
// aggregate queries/second. Each query gets its own deadline within
// whatever budget ctx still carries.
func e8Throughput(ctx context.Context, addr string, clients, perClient int, dialPerRequest bool) (float64, error) {
	var opts []wire.ClientOption
	if dialPerRequest {
		opts = append(opts, wire.WithDialPerRequest())
	}
	c := wire.NewClient(addr, opts...)
	defer c.Close()
	const q = `select name from person0 where id = 7`

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				_, err := c.Query(qctx, wire.LangSQL, q)
				cancel()
				if err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return float64(clients*perClient) / elapsed.Seconds(), nil
}
