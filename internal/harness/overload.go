package harness

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"disco/internal/core"
)

// OverloadPoint is one measured load level of the overload sweep.
type OverloadPoint struct {
	// Multiplier is the offered load relative to saturation (1x means as
	// many closed-loop clients as the gate admits concurrently).
	Multiplier int
	// Clients is the closed-loop client count that produced the load.
	Clients int
	// OfferedPerSec and GoodputPerSec are attempted and successful
	// queries per second.
	OfferedPerSec float64
	GoodputPerSec float64
	// ShedRate is the fraction of attempts the admission gate refused.
	ShedRate float64
	// Errors counts attempts that failed with anything other than a shed.
	Errors int64
	// P99 is the 99th-percentile latency of successful (admitted) queries.
	P99 time.Duration
}

// OverloadSweepConfig configures RunOverloadSweep.
type OverloadSweepConfig struct {
	// Sources and RowsPerSource shape the fleet (defaults 4 and 50).
	Sources       int
	RowsPerSource int
	// MaxConcurrent is the admission gate's concurrency limit (default 8);
	// saturation is defined as MaxConcurrent closed-loop clients.
	MaxConcurrent int
	// SLO is the per-query deadline clients bring (default 250ms). It is
	// also the evaluation timeout, so the deadline-aware shed has a real
	// deadline to compare against the gate's observed p50.
	SLO time.Duration
	// Duration is how long each load level runs (default 500ms).
	Duration time.Duration
	// Multipliers are the offered-load levels relative to saturation
	// (default 1x, 2x, 4x).
	Multipliers []int
}

// RunOverloadSweep drives a closed-loop overload generator against an
// admission-gated fleet at several multiples of saturation and measures
// what graceful degradation is supposed to deliver: goodput that holds
// (rather than collapsing) as offered load exceeds capacity, an explicit
// shed rate absorbing the excess, and a bounded p99 for the queries that
// were admitted. ctx bounds the whole sweep: cancelling it stops the
// generators at their next per-query deadline.
func RunOverloadSweep(ctx context.Context, cfg OverloadSweepConfig) ([]OverloadPoint, error) {
	if cfg.Sources <= 0 {
		cfg.Sources = 4
	}
	if cfg.RowsPerSource <= 0 {
		cfg.RowsPerSource = 50
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 8
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 250 * time.Millisecond
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}
	if len(cfg.Multipliers) == 0 {
		cfg.Multipliers = []int{1, 2, 4}
	}

	f, err := NewPersonFleet(FleetConfig{
		Sources:       cfg.Sources,
		RowsPerSource: cfg.RowsPerSource,
		TCP:           true,
		Timeout:       cfg.SLO,
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueued:     cfg.MaxConcurrent,
		MaxQueueWait:  cfg.SLO / 2,
	})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Warm the prepared-statement cache and the gate's service-time window
	// so the measured levels exercise steady-state behaviour.
	for i := 0; i < 4; i++ {
		if _, err := f.M.QueryContext(ctx, paperQuery); err != nil {
			return nil, fmt.Errorf("overload warm-up: %w", err)
		}
	}

	points := make([]OverloadPoint, 0, len(cfg.Multipliers))
	for _, mult := range cfg.Multipliers {
		p := runOverloadLevel(ctx, f.M, mult, cfg.MaxConcurrent*mult, cfg.SLO, cfg.Duration)
		points = append(points, p)
	}
	return points, nil
}

// runOverloadLevel runs one load level: clients closed-loop workers, each
// issuing the paper query back-to-back under the SLO deadline (within
// whatever budget the sweep's ctx still carries).
func runOverloadLevel(ctx context.Context, m *core.Mediator, mult, clients int, slo, duration time.Duration) OverloadPoint {
	var (
		mu        sync.Mutex
		latencies []time.Duration
		attempts  int64
		shed      int64
		errCount  int64
	)
	var wg sync.WaitGroup
	start := time.Now()
	stopAt := start.Add(duration)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stopAt) {
				qctx, cancel := context.WithTimeout(ctx, slo)
				t0 := time.Now()
				_, err := m.QueryContext(qctx, paperQuery)
				elapsed := time.Since(t0)
				cancel()
				mu.Lock()
				attempts++
				switch {
				case err == nil:
					latencies = append(latencies, elapsed)
				case core.IsOverloadError(err):
					shed++
				default:
					errCount++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	point := OverloadPoint{
		Multiplier:    mult,
		Clients:       clients,
		OfferedPerSec: float64(attempts) / elapsed,
		GoodputPerSec: float64(len(latencies)) / elapsed,
		Errors:        errCount,
		P99:           quantileDuration(latencies, 0.99),
	}
	if attempts > 0 {
		point.ShedRate = float64(shed) / float64(attempts)
	}
	return point
}

// quantileDuration returns the q-quantile of ds (0 when empty).
func quantileDuration(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// E9Overload is the overload-protection experiment: offered load at 1x,
// 2x, and 4x saturation against an admission-gated federation. The claim
// the table demonstrates: goodput holds near capacity while the shed rate
// absorbs the excess, and admitted-query p99 stays bounded near the SLO —
// load shedding converts "everyone times out" into "most succeed fast,
// the rest learn immediately".
func E9Overload(ctx context.Context, cfg OverloadSweepConfig) (*Table, error) {
	points, err := RunOverloadSweep(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E9",
		Title:  "overload protection: goodput and shed rate vs offered load",
		Header: []string{"load", "clients", "offered q/s", "goodput q/s", "shed %", "errors", "p99 admitted"},
		Notes: []string{
			"closed-loop clients at multiples of the admission gate's concurrency limit",
			"shed queries return OverloadError without dialing any source",
		},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx", p.Multiplier),
			fmt.Sprintf("%d", p.Clients),
			fmt.Sprintf("%.0f", p.OfferedPerSec),
			fmt.Sprintf("%.0f", p.GoodputPerSec),
			fmt.Sprintf("%.1f", p.ShedRate*100),
			fmt.Sprintf("%d", p.Errors),
			p.P99.Round(time.Millisecond).String(),
		})
	}
	return t, nil
}
