package harness

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"disco/internal/oql"
)

// TestSoakConcurrentQueriesWithFlappingSources drives a federation with
// parallel clients while sources flap, asserting the system's contract the
// whole time: every call returns either a complete answer or a parseable
// partial answer — never a crash, deadlock or malformed residual.
func TestSoakConcurrentQueriesWithFlappingSources(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	f, err := NewPersonFleet(FleetConfig{
		Sources: 4, RowsPerSource: 25, TCP: true, Timeout: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const duration = 2 * time.Second
	stop := make(chan struct{})

	// The flapper randomly toggles source availability.
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		r := rand.New(rand.NewSource(7))
		ticker := time.NewTicker(40 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				f.AllAvailable()
				return
			case <-ticker.C:
				f.SetAvailable(r.Intn(4), r.Intn(2) == 0)
			}
		}
	}()

	queries := []string{
		`select x.name from x in person where x.salary > 500`,
		`count(person)`,
		`select struct(n: x.name, s: x.salary) from x in person where x.salary < 250`,
		`select distinct x.name from x in person1`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	partials := make(chan string, 4096)
	deadline := time.Now().Add(duration)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				ans, err := f.M.QueryPartial(queries[(c+i)%len(queries)])
				if err != nil {
					errs <- err
					return
				}
				if !ans.Complete {
					select {
					case partials <- ans.Residual.String():
					default:
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	flapWG.Wait()
	close(errs)
	close(partials)

	for err := range errs {
		t.Errorf("soak error: %v", err)
	}
	seen := 0
	for residual := range partials {
		seen++
		if _, err := oql.ParseQuery(residual); err != nil {
			t.Fatalf("malformed residual under churn: %q: %v", residual, err)
		}
	}
	t.Logf("soak: %d partial answers, all parseable", seen)
}
