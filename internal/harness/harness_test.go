package harness

import (
	"strings"
	"testing"
	"time"

	"disco/internal/types"
)

func TestPersonFleetInProcess(t *testing.T) {
	f, err := NewPersonFleet(FleetConfig{Sources: 3, RowsPerSource: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	v, err := f.M.Query(`count(person)`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.Int(60)) {
		t.Errorf("count = %s, want 60", v)
	}
}

func TestPersonFleetTCP(t *testing.T) {
	f, err := NewPersonFleet(FleetConfig{Sources: 2, RowsPerSource: 10, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	v, err := f.M.Query(`count(person)`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.Int(20)) {
		t.Errorf("count = %s", v)
	}
	if f.TotalQueries() == 0 || f.TotalBytesOut() == 0 {
		t.Error("server stats should register traffic")
	}
}

func TestFleetAvailabilityToggle(t *testing.T) {
	f, err := NewPersonFleet(FleetConfig{Sources: 2, RowsPerSource: 5, TCP: true, Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetAvailable(0, false)
	ans, err := f.M.QueryPartial(`select x.name from x in person`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Error("expected partial answer with one source down")
	}
	f.AllAvailable()
	ans, err = f.M.QueryPartial(`select x.name from x in person`)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Complete {
		t.Error("expected complete answer after recovery")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := NewPersonFleet(FleetConfig{Sources: 0}); err == nil {
		t.Error("zero sources should fail")
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "long_column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := tb.String()
	for _, frag := range []string{"== T: demo ==", "long_column", "333", "note: a note"} {
		if !strings.Contains(s, frag) {
			t.Errorf("table output missing %q:\n%s", frag, s)
		}
	}
}

// Smoke tests: every experiment runs at reduced size and produces rows.

func TestF1Smoke(t *testing.T) {
	tb, err := F1Architecture()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestF2Smoke(t *testing.T) {
	tb, err := F2Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
	if !strings.Contains(strings.Join(tb.Notes, " "), "cache hit: true") {
		t.Errorf("warm run should hit the plan cache: %v", tb.Notes)
	}
}

func TestE1Smoke(t *testing.T) {
	tb, err := E1Availability([]int{1, 4}, 0.7, 3, 120*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestE2Smoke(t *testing.T) {
	tb, err := E2Partial()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("rows = %d\n%s", len(tb.Rows), tb)
	}
}

func TestE3Smoke(t *testing.T) {
	tb, err := E3Pushdown(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The shape that must hold: bytes shrink as capability grows.
	if !strings.Contains(tb.Rows[0][1], "100%") {
		t.Errorf("baseline should be 100%%: %v", tb.Rows[0])
	}
}

func TestE4Smoke(t *testing.T) {
	tb, err := E4CostLearning()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][1] != "default" {
		t.Errorf("first estimate should be default-based: %v", tb.Rows[0])
	}
	if tb.Rows[1][1] != "exact" {
		t.Errorf("post-observation estimate should be exact-based: %v", tb.Rows[1])
	}
	if !strings.Contains(strings.Join(tb.Notes, " "), "pushes maximally under it: true") {
		t.Errorf("default-cost pushdown note wrong: %v", tb.Notes)
	}
}

func TestE5Smoke(t *testing.T) {
	tb, err := E5Scaling([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Submits grow with sources.
	if tb.Rows[0][4] != "1" || tb.Rows[2][4] != "4" {
		t.Errorf("plan submits should equal source count: %v", tb.Rows)
	}
}

func TestE6Smoke(t *testing.T) {
	tb, err := E6Modeling()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Errorf("rows = %d\n%s", len(tb.Rows), tb)
	}
}

func TestE7Smoke(t *testing.T) {
	tb, err := E7WideArea(100, []time.Duration{0, 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.HasSuffix(tb.Rows[0][3], "x") {
		t.Errorf("speedup column malformed: %v", tb.Rows[0])
	}
}
