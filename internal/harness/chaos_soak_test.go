package harness

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"disco/internal/chaos"
	"disco/internal/core"
	"disco/internal/oql"
)

// TestChaosSoakGracefulDegradation is the closed-loop verification of the
// overload-protection contract, driven by seeded fault injection so every
// run replays the same chaos. It walks the federation through four phases
// and asserts the degradation ladder at each rung:
//
//  1. Overload: offered load far beyond the admission gate's capacity.
//     Excess queries are shed with an OverloadError — and a shed query
//     dials no source, so the sources see only the admitted load.
//  2. Bounded latency: the p99 of admitted queries stays near the SLO
//     even at saturation — early rejection, not queueing, absorbs the
//     excess.
//  3. Partition: a chaos proxy severs one source mid-soak. Queries under
//     partial-evaluation semantics keep returning answers — complete or
//     parseable residuals — never errors.
//  4. Recovery: the fault lifts and the same mediator, same pools, same
//     breakers, returns to complete answers.
//
// The whole walk is goroutine-leak-checked: chaos must not leave
// forwarding or waiter goroutines behind.
func TestChaosSoakGracefulDegradation(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	const (
		sources       = 3
		maxConcurrent = 4
		slo           = 400 * time.Millisecond
	)
	f, err := NewPersonFleet(FleetConfig{
		Sources:       sources,
		RowsPerSource: 25,
		TCP:           true,
		Chaos:         true,
		ChaosSeed:     42,
		// Server-side latency makes saturation latency-bound rather than
		// CPU-bound, so the test measures the gate, not the test machine.
		Latency:       20 * time.Millisecond,
		Timeout:       slo,
		MaxConcurrent: maxConcurrent,
		MaxQueued:     maxConcurrent,
		MaxQueueWait:  slo / 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Warm-up: prepared plan cached, service-time window primed.
	for i := 0; i < 4; i++ {
		if _, err := f.M.Query(paperQuery); err != nil {
			t.Fatalf("warm-up query %d: %v", i, err)
		}
	}

	// Phase 1+2 — overload. 8x the gate's capacity in closed-loop clients.
	sourceQueriesBefore := f.TotalQueries()
	var (
		mu        sync.Mutex
		succeeded int64
		shed      int64
		latencies []time.Duration
	)
	var wg sync.WaitGroup
	overloadUntil := time.Now().Add(600 * time.Millisecond)
	for c := 0; c < 4*maxConcurrent; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(overloadUntil) {
				ctx, cancel := context.WithTimeout(context.Background(), slo)
				t0 := time.Now()
				_, err := f.M.QueryContext(ctx, paperQuery)
				elapsed := time.Since(t0)
				cancel()
				mu.Lock()
				switch {
				case err == nil:
					succeeded++
					latencies = append(latencies, elapsed)
				case core.IsOverloadError(err):
					shed++
				default:
					mu.Unlock()
					t.Errorf("overload phase: non-overload error: %v", err)
					return
				}
				mu.Unlock()
				if err != nil {
					// A shed client backs off before retrying — the behaviour
					// OverloadError asks of callers, and what keeps the
					// generator from degenerating into a busy spin.
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()

	if succeeded == 0 {
		t.Fatal("overload phase: nothing succeeded — shedding everything is collapse, not protection")
	}
	if shed == 0 {
		t.Fatal("overload phase: 8x capacity produced zero sheds — the gate is not gating")
	}
	// A shed query performs zero source dials: the sources' query counters
	// account exactly for the admitted queries (each fans out to every
	// source; healthy links mean no retries inflate the count).
	sourceQueries := f.TotalQueries() - sourceQueriesBefore
	if want := succeeded * sources; sourceQueries != want {
		t.Errorf("source query count %d != admitted x sources %d: shed queries reached the sources",
			sourceQueries, want)
	}
	// Bounded p99 for admitted queries at saturation: early rejection keeps
	// the served queries fast. The bound is generous (the SLO plus queue
	// wait) because CI machines are noisy; the collapse mode it guards
	// against — p99 at the full deadline because everything queues — is far
	// beyond it.
	if p99 := quantileDuration(latencies, 0.99); p99 > slo {
		t.Errorf("admitted-query p99 %v exceeds the SLO %v under saturation", p99, slo)
	}
	t.Logf("overload: %d admitted, %d shed (%.0f%%), p99 %v",
		succeeded, shed, 100*float64(shed)/float64(succeeded+shed),
		quantileDuration(latencies, 0.99))

	// Phase 3 — partition. Source 0's link goes down; answers degrade to
	// residuals, never to errors. The kill is synchronous at the proxy but
	// the client pool discovers dead sockets asynchronously, so probe until
	// the partition is observed — a bounded wait, so a partition that never
	// degrades anything still fails the test.
	f.SetFault(0, chaos.Partition{})
	partials := 0
	partitionDeadline := time.Now().Add(5 * time.Second)
	for partials == 0 {
		if !time.Now().Before(partitionDeadline) {
			t.Fatal("partition phase: a severed source never produced a residual answer")
		}
		ans, err := f.M.QueryPartial(paperQuery)
		if err != nil {
			t.Fatalf("partition phase: graceful degradation returned an error: %v", err)
		}
		if !ans.Complete {
			partials++
			if _, perr := oql.ParseQuery(ans.Residual.String()); perr != nil {
				t.Fatalf("partition phase: malformed residual %q: %v", ans.Residual, perr)
			}
		}
	}
	// With the partition established, the contract must hold steadily.
	for i := 0; i < 5; i++ {
		ans, err := f.M.QueryPartial(paperQuery)
		if err != nil {
			t.Fatalf("partition phase query %d: graceful degradation returned an error: %v", i, err)
		}
		if !ans.Complete {
			if _, perr := oql.ParseQuery(ans.Residual.String()); perr != nil {
				t.Fatalf("partition phase: malformed residual %q: %v", ans.Residual, perr)
			}
		}
	}

	// Phase 4 — recovery. The fault lifts; the same mediator returns to
	// complete answers (the breaker's probe cadence bounds how long the
	// partitioned source stays quarantined).
	f.AllHealthy()
	recovered := false
	recoveryDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(recoveryDeadline) {
		ans, err := f.M.QueryPartial(paperQuery)
		if err == nil && ans.Complete {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("no full recovery after chaos ended")
	}

	f.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked through the chaos soak: %d before, %d after",
		goroutinesBefore, runtime.NumGoroutine())
}

// TestChaosSoakFlakyLinksDegradeNotError: a scripted timeline of mid-answer
// drops and latency spikes on every link must never surface as a caller
// error — the retry budget absorbs what it can, partial evaluation converts
// the rest into residuals, and the run is identical for a given seed.
func TestChaosSoakFlakyLinksDegradeNotError(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	f, err := NewPersonFleet(FleetConfig{
		Sources:       3,
		RowsPerSource: 25,
		TCP:           true,
		Chaos:         true,
		ChaosSeed:     7,
		Timeout:       250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Scripted chaos on every link: healthy, then flaky (drop each answer
	// mid-frame), a latency spike, and back to healthy.
	script := chaos.Script{Seed: 7, Steps: []chaos.Step{
		{After: 0, Fault: chaos.Healthy{}},
		{After: 200 * time.Millisecond, Fault: chaos.Flaky{DropAfter: 20}},
		{After: 600 * time.Millisecond, Fault: chaos.Latency{D: 30 * time.Millisecond, Jitter: 20 * time.Millisecond}},
		{After: 900 * time.Millisecond, Fault: chaos.Healthy{}},
	}}
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	for _, p := range f.Proxies {
		chaosWG.Add(1)
		go func(p *chaos.Proxy) {
			defer chaosWG.Done()
			p.Run(stop, script)
		}(p)
	}

	var wg sync.WaitGroup
	until := time.Now().Add(1200 * time.Millisecond)
	errs := make(chan error, 64)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(until) {
				ans, err := f.M.QueryPartial(paperQuery)
				if err != nil {
					errs <- err
					return
				}
				if !ans.Complete {
					if _, perr := oql.ParseQuery(ans.Residual.String()); perr != nil {
						errs <- perr
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("flaky-link soak: %v", err)
	}

	// The retry budget should have seen action: flaky links produce
	// transient mid-answer drops, and the first line of defence is a
	// budgeted retry, not immediate unavailability.
	_, retried, _ := f.M.OverloadStats()
	t.Logf("flaky-link soak: %d budgeted retries", retried)

	// Full recovery after the script ends.
	recovered := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ans, err := f.M.QueryPartial(paperQuery)
		if err == nil && ans.Complete {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("no full recovery after the chaos script ended")
	}
}
