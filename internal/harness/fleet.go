// Package harness assembles reproducible experiment federations and runs
// the experiment suite indexed in DESIGN.md (F1, F2, E1–E6). The same
// functions back cmd/disco-bench (which prints the tables recorded in
// EXPERIMENTS.md) and the repository's Go benchmarks.
package harness

import (
	"fmt"
	"strings"
	"time"

	"disco/internal/chaos"
	"disco/internal/core"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// Fleet is a mediator federating n homogeneous person sources, optionally
// served over TCP with controllable availability and latency — the §1.2
// configuration scaled up.
type Fleet struct {
	M       *core.Mediator
	Servers []*wire.Server // nil entries when in-process
	// Proxies are the chaos proxies in front of the servers (nil entries
	// when the fleet was built without Chaos); the mediator dials the proxy,
	// so faults injected there hit its live pooled connections.
	Proxies []*chaos.Proxy
	Stores  []*source.RelStore
	// RowsPerSource is the number of person rows in each source.
	RowsPerSource int
}

// FleetConfig configures NewPersonFleet.
type FleetConfig struct {
	// Sources is the number of data sources (and extents).
	Sources int
	// RowsPerSource is the table size at each source.
	RowsPerSource int
	// TCP serves each source over a real socket; otherwise sources are
	// in-process engines.
	TCP bool
	// Chaos interposes a chaos.Proxy between the mediator and each TCP
	// server; ChaosSeed fixes the proxies' random choices (proxy i gets
	// ChaosSeed+i, so the proxies' draws are independent but reproducible).
	Chaos     bool
	ChaosSeed int64
	// Latency is injected per TCP reply.
	Latency time.Duration
	// Timeout is the mediator's evaluation deadline.
	Timeout time.Duration
	// MaxConcurrent, when positive, installs the mediator's admission gate
	// (core.WithAdmission) with the given queue bound and wait.
	MaxConcurrent int
	MaxQueued     int
	MaxQueueWait  time.Duration
	// MaxServerInflight caps concurrent request execution per TCP server
	// (wire.WithMaxServerInflight); zero means no server-wide cap.
	MaxServerInflight int
	// WrapperODL overrides the wrapper declaration; default full SQL.
	WrapperODL string
}

// NewPersonFleet builds the fleet. Each source i holds table person<i> of
// synthetic people (deterministic per i).
func NewPersonFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Sources <= 0 {
		return nil, fmt.Errorf("harness: fleet needs at least one source")
	}
	if cfg.RowsPerSource <= 0 {
		cfg.RowsPerSource = 50
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	opts := []core.Option{core.WithTimeout(cfg.Timeout)}
	if cfg.MaxConcurrent > 0 {
		opts = append(opts, core.WithAdmission(cfg.MaxConcurrent, cfg.MaxQueued, cfg.MaxQueueWait))
	}
	f := &Fleet{
		M:             core.New(opts...),
		RowsPerSource: cfg.RowsPerSource,
	}
	wrapperODL := cfg.WrapperODL
	if wrapperODL == "" {
		wrapperODL = `w0 := WrapperPostgres();`
	}

	var odl strings.Builder
	odl.WriteString(wrapperODL + "\n")
	odl.WriteString(`
interface Person (extent person) {
    attribute Short id;
    attribute String name;
    attribute Short salary;
}
`)
	for i := 0; i < cfg.Sources; i++ {
		table := fmt.Sprintf("person%d", i)
		store := source.NewRelStore()
		if err := source.GenPeople(store, table, cfg.RowsPerSource, int64(i)); err != nil {
			f.Close()
			return nil, err
		}
		f.Stores = append(f.Stores, store)

		addr := fmt.Sprintf("mem:r%d", i)
		if cfg.TCP {
			var srvOpts []wire.ServerOption
			if cfg.MaxServerInflight > 0 {
				srvOpts = append(srvOpts, wire.WithMaxServerInflight(cfg.MaxServerInflight))
			}
			srv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: store}, srvOpts...)
			if err != nil {
				f.Close()
				return nil, err
			}
			if cfg.Latency > 0 {
				srv.SetLatency(cfg.Latency)
			}
			f.Servers = append(f.Servers, srv)
			addr = srv.Addr()
			if cfg.Chaos {
				proxy, err := chaos.NewProxy(addr, cfg.ChaosSeed+int64(i))
				if err != nil {
					f.Close()
					return nil, err
				}
				f.Proxies = append(f.Proxies, proxy)
				addr = proxy.Addr()
			} else {
				f.Proxies = append(f.Proxies, nil)
			}
		} else {
			f.Servers = append(f.Servers, nil)
			f.Proxies = append(f.Proxies, nil)
			f.M.RegisterEngine(fmt.Sprintf("r%d", i), store)
		}
		fmt.Fprintf(&odl, "r%d := Repository(address=%q);\n", i, addr)
		fmt.Fprintf(&odl, "extent %s of Person wrapper w0 repository r%d;\n", table, i)
	}
	if err := f.M.ExecODL(odl.String()); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// ShardedFleetConfig configures NewShardedFleet.
type ShardedFleetConfig struct {
	// Shards is the number of range partitions holding data.
	Shards int
	// Spares is the number of empty repositories declared alongside — the
	// destinations live migrations move, split, or merge shards to.
	Spares int
	// Rows is the total people row count across all shards; ids run
	// 0..Rows-1 and shard boundaries divide the range evenly.
	Rows int
	// TCP / Chaos / ChaosSeed / Latency / Timeout as in FleetConfig.
	TCP       bool
	Chaos     bool
	ChaosSeed int64
	Latency   time.Duration
	Timeout   time.Duration
}

// NewShardedFleet builds a fleet whose single extent "people" is
// range-partitioned on id across cfg.Shards repositories, with cfg.Spares
// more repositories declared but holding nothing. It is the live-migration
// soak fixture: the spares are where shards move, and with Chaos set every
// link — including the links migration copies travel over — sits behind a
// seeded fault proxy. Repository index i < Shards serves shard i; index
// i >= Shards is the (i-Shards)'th spare.
func NewShardedFleet(cfg ShardedFleetConfig) (*Fleet, error) {
	if cfg.Shards <= 1 {
		return nil, fmt.Errorf("harness: sharded fleet needs at least two shards")
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 60
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	f := &Fleet{
		M:             core.New(core.WithTimeout(cfg.Timeout)),
		RowsPerSource: cfg.Rows / cfg.Shards,
	}

	var odl strings.Builder
	odl.WriteString(`w0 := WrapperPostgres();
interface Person (extent person) {
    attribute Short id;
    attribute String name;
    attribute Short salary;
}
`)
	bound := func(i int) int { return i * cfg.Rows / cfg.Shards }
	total := cfg.Shards + cfg.Spares
	for i := 0; i < total; i++ {
		store := source.NewRelStore()
		if i < cfg.Shards {
			if err := store.CreateTable("people", "id", "name", "salary"); err != nil {
				f.Close()
				return nil, err
			}
			for id := bound(i); id < bound(i+1); id++ {
				if err := store.Insert("people",
					types.Int(int64(id)),
					types.Str(fmt.Sprintf("p%d", id)),
					types.Int(int64(id%1000)),
				); err != nil {
					f.Close()
					return nil, err
				}
			}
		}
		f.Stores = append(f.Stores, store)

		addr := fmt.Sprintf("mem:r%d", i)
		if cfg.TCP {
			srv, err := wire.NewServer("127.0.0.1:0", core.EngineHandler{Engine: store})
			if err != nil {
				f.Close()
				return nil, err
			}
			if cfg.Latency > 0 {
				srv.SetLatency(cfg.Latency)
			}
			f.Servers = append(f.Servers, srv)
			addr = srv.Addr()
			if cfg.Chaos {
				proxy, err := chaos.NewProxy(addr, cfg.ChaosSeed+int64(i))
				if err != nil {
					f.Close()
					return nil, err
				}
				f.Proxies = append(f.Proxies, proxy)
				addr = proxy.Addr()
			} else {
				f.Proxies = append(f.Proxies, nil)
			}
		} else {
			f.Servers = append(f.Servers, nil)
			f.Proxies = append(f.Proxies, nil)
			f.M.RegisterEngine(fmt.Sprintf("r%d", i), store)
		}
		fmt.Fprintf(&odl, "r%d := Repository(address=%q);\n", i, addr)
	}

	var parts, ranges []string
	for i := 0; i < cfg.Shards; i++ {
		parts = append(parts, fmt.Sprintf("r%d", i))
		switch {
		case i == 0:
			ranges = append(ranges, fmt.Sprintf("..%d", bound(1)))
		case i == cfg.Shards-1:
			ranges = append(ranges, fmt.Sprintf("%d..", bound(i)))
		default:
			ranges = append(ranges, fmt.Sprintf("%d..%d", bound(i), bound(i+1)))
		}
	}
	fmt.Fprintf(&odl, "extent people of Person wrapper w0 at %s\n    partition by range(id) (%s);\n",
		strings.Join(parts, ", "), strings.Join(ranges, ", "))
	if err := f.M.ExecODL(odl.String()); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Close shuts down any TCP servers, chaos proxies, and the mediator's
// pooled connections.
func (f *Fleet) Close() {
	f.M.Close()
	for _, p := range f.Proxies {
		if p != nil {
			p.Close()
		}
	}
	for _, s := range f.Servers {
		if s != nil {
			s.Close()
		}
	}
}

// SetAvailable flips the availability of source i (TCP fleets only).
func (f *Fleet) SetAvailable(i int, up bool) {
	if f.Servers[i] != nil {
		f.Servers[i].SetAvailable(up)
	}
}

// AllAvailable restores every source.
func (f *Fleet) AllAvailable() {
	for i := range f.Servers {
		f.SetAvailable(i, true)
	}
}

// SetFault injects a chaos fault on the link to source i (Chaos fleets
// only).
func (f *Fleet) SetFault(i int, fault chaos.Fault) {
	if f.Proxies[i] != nil {
		f.Proxies[i].SetFault(fault)
	}
}

// AllHealthy clears every injected chaos fault.
func (f *Fleet) AllHealthy() {
	for i := range f.Proxies {
		f.SetFault(i, chaos.Healthy{})
	}
}

// TotalShed sums the requests the sources refused with an overload frame.
func (f *Fleet) TotalShed() int64 {
	var total int64
	for _, s := range f.Servers {
		if s != nil {
			total += s.Stats().Shed.Load()
		}
	}
	return total
}

// TotalBytesOut sums the bytes every source shipped to the mediator.
func (f *Fleet) TotalBytesOut() int64 {
	var total int64
	for _, s := range f.Servers {
		if s != nil {
			total += s.Stats().BytesOut.Load()
		}
	}
	return total
}

// TotalQueries sums the queries the sources served.
func (f *Fleet) TotalQueries() int64 {
	var total int64
	for _, s := range f.Servers {
		if s != nil {
			total += s.Stats().Queries.Load()
		}
	}
	return total
}

// Table is one experiment's printable result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
