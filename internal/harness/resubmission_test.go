package harness

import (
	"math/rand"
	"testing"
	"time"
)

// TestResubmissionInvariantRandomOutages is the §4 property under random
// failure patterns: whatever subset of sources is down when a query runs,
// resubmitting the partial answer after full recovery yields exactly the
// answer the original query gives with everything up.
func TestResubmissionInvariantRandomOutages(t *testing.T) {
	if testing.Short() {
		t.Skip("timeout-bound test")
	}
	f, err := NewPersonFleet(FleetConfig{
		Sources: 3, RowsPerSource: 10, TCP: true, Timeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	queries := []string{
		`select x.name from x in person where x.salary > 500`,
		`select struct(n: x.name, s: x.salary) from x in person where x.salary < 100`,
		`count(person)`,
		`select distinct x.name from x in person`,
		`sum(select x.salary from x in person)`,
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		q := queries[trial%len(queries)]

		// Ground truth with everything available.
		f.AllAvailable()
		want, err := f.M.Query(q)
		if err != nil {
			t.Fatal(err)
		}

		// Random non-empty outage.
		down := 0
		for i := 0; i < 3; i++ {
			avail := rng.Intn(2) == 0
			f.SetAvailable(i, avail)
			if !avail {
				down++
			}
		}
		if down == 0 {
			f.SetAvailable(rng.Intn(3), false)
			down = 1
		}

		ans, err := f.M.QueryPartial(q)
		if err != nil {
			t.Fatalf("trial %d %q: %v", trial, q, err)
		}
		if ans.Complete {
			t.Fatalf("trial %d: answer complete with %d sources down", trial, down)
		}
		if len(ans.Unavailable) != down {
			t.Errorf("trial %d: unavailable = %v, want %d repos", trial, ans.Unavailable, down)
		}

		// Recovery + resubmission.
		f.AllAvailable()
		re, err := f.M.QueryPartial(ans.Residual.String())
		if err != nil {
			t.Fatalf("trial %d resubmit %q: %v", trial, ans.Residual, err)
		}
		if !re.Complete {
			t.Fatalf("trial %d: resubmission still partial: %s", trial, re.Residual)
		}
		if !re.Value.Equal(want) {
			t.Errorf("trial %d %q (down=%d):\n resubmitted %s\n want        %s\n residual    %s",
				trial, q, down, re.Value, want, ans.Residual)
		}
	}
}
