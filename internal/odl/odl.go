// Package odl parses the ODMG object definition language subset DISCO uses,
// plus the paper's extensions (§2): interface declarations with implicit
// extents, the special extent syntax binding an extent to a wrapper and
// repository with an optional local transformation map, Repository and
// Wrapper object construction, view definitions, and extent removal.
//
// The grammar, one statement per ";":
//
//	interface NAME [:SUPER] [(extent ENAME)] { attribute TYPE NAME; ... };
//	extent NAME of IFACE wrapper W repository R [map ((a=b), ...)];
//	extent NAME of IFACE wrapper W at R1[|R1b...], R2[|R2b...], ...
//	    [partition by hash(ATTR) | partition by range(ATTR) (..B1, B1..B2, B2..)]
//	    [map ((a=b), ...)];
//	NAME := Repository(key="value", ...);
//	NAME := WrapperKIND(key="value", ...);   -- e.g. WrapperPostgres()
//	NAME := Wrapper("kind", key="value", ...);
//	define NAME as OQL-QUERY;
//	drop extent NAME;
//	migrate NAME move FROM to TO phase "PHASE";
//	migrate NAME split FROM at BOUND to TO phase "PHASE";
//	migrate NAME merge FROM into TO phase "PHASE";
package odl

import (
	"fmt"
	"strconv"
	"strings"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/types"
)

// Statement is one parsed ODL statement.
type Statement interface{ stmt() }

// InterfaceDecl declares a mediator interface.
type InterfaceDecl struct {
	Iface *types.Interface
}

func (*InterfaceDecl) stmt() {}

// ExtentDecl is the DISCO extent extension:
//
//	extent person0 of Person wrapper w0 repository r0 map ((name=n));
//	extent person of Person wrapper w0 at r0, r1, r2;
//	extent person of Person wrapper w0 at r0|r0b, r1|r1b;
//
// The "at" form declares a horizontally partitioned extent stored across
// several repositories; "repository" also accepts a comma-separated list.
// Within a partition, "|" separates replicas: the first repository is the
// partition's primary and the rest hold copies of the same rows, read when
// the primary does not answer.
type ExtentDecl struct {
	Name    string
	Iface   string
	Wrapper string
	// Repository is the single repository, or the first partition of a
	// partitioned extent.
	Repository string
	// Repositories is the full partition list (len > 1 when partitioned).
	// Each entry is the primary of its partition.
	Repositories []string
	// Replicas is the per-partition replica group, primary first, from the
	// "r0|r0b" syntax. Nil when no partition declares a replica; otherwise
	// len(Replicas) matches the partition count and single-element groups
	// mark unreplicated partitions.
	Replicas [][]string
	// Scheme is the placement metadata from the optional "partition by"
	// clause: how rows distribute over Repositories (nil when undeclared).
	Scheme *algebra.PartitionSpec
	// SourceName is the data-source collection name from the map clause
	// (empty means same as Name).
	SourceName string
	// AttrMap maps mediator attribute names to source attribute names.
	AttrMap map[string]string
}

func (*ExtentDecl) stmt() {}

// RepositoryDecl constructs a Repository object:
// r0 := Repository(host="rodin", name="db", address="123.45.6.7").
type RepositoryDecl struct {
	Name  string
	Props map[string]string
}

func (*RepositoryDecl) stmt() {}

// WrapperDecl constructs a Wrapper object: w0 := WrapperPostgres().
type WrapperDecl struct {
	Name  string
	Kind  string
	Props map[string]string
}

func (*WrapperDecl) stmt() {}

// ViewDecl is an OQL view definition: define double as select ... .
type ViewDecl struct {
	Name  string
	Query oql.Expr
}

func (*ViewDecl) stmt() {}

// DropExtentDecl removes an extent: drop extent person0.
type DropExtentDecl struct {
	Name string
}

func (*DropExtentDecl) stmt() {}

// MigrateDecl records an in-flight live shard migration at a resting phase:
//
//	migrate people move r1 to r3 phase "dual-read";
//	migrate people split r1 at 15 to r3 phase "copying";
//	migrate people merge r1 into r2 phase "declared";
//
// The statement restores migration state (a DumpODL taken mid-migration
// round-trips); it does not start or advance the migration itself. The phase
// is a quoted string because "dual-read" is not one identifier.
type MigrateDecl struct {
	Extent string
	Kind   string // move, split or merge
	From   string
	To     string
	// SplitAt is the split bound (split only): rows >= SplitAt move to To.
	SplitAt types.Value
	Phase   string
}

func (*MigrateDecl) stmt() {}

// Error is an ODL parse error with its byte offset.
type Error struct {
	Off int
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("odl: offset %d: %s", e.Off, e.Msg) }

// Parse parses a sequence of ODL statements.
func Parse(src string) ([]Statement, error) {
	p := &parser{src: src}
	if err := p.lex(); err != nil {
		return nil, err
	}
	var out []Statement
	for !p.atEOF() {
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// --- lexer -----------------------------------------------------------------

type tkind uint8

const (
	tEOF tkind = iota + 1
	tIdent
	tString
	tNumber
	tPunct
)

type tok struct {
	kind tkind
	text string
	off  int
}

type parser struct {
	src  string
	toks []tok
	i    int
}

func (p *parser) lex() error {
	i := 0
	src := p.src
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isLetter(c):
			start := i
			for i < len(src) && (isLetter(src[i]) || isDigit(src[i])) {
				i++
			}
			p.toks = append(p.toks, tok{kind: tIdent, text: src[start:i], off: start})
		case isDigit(c):
			start := i
			// Stop before "..": in "10..20" the dots are the range operator
			// of a partition-by clause, not a decimal point.
			for i < len(src) && (isDigit(src[i]) || (src[i] == '.' && !(i+1 < len(src) && src[i+1] == '.'))) {
				i++
			}
			p.toks = append(p.toks, tok{kind: tNumber, text: src[start:i], off: start})
		case c == '"':
			start := i
			i++
			var b strings.Builder
			for {
				if i >= len(src) {
					return &Error{Off: start, Msg: "unterminated string"}
				}
				if src[i] == '"' {
					i++
					break
				}
				if src[i] == '\\' && i+1 < len(src) {
					i++
				}
				b.WriteByte(src[i])
				i++
			}
			p.toks = append(p.toks, tok{kind: tString, text: b.String(), off: start})
		case c == ':' && i+1 < len(src) && src[i+1] == '=':
			p.toks = append(p.toks, tok{kind: tPunct, text: ":=", off: i})
			i += 2
		case c == '.' && i+1 < len(src) && src[i+1] == '.':
			p.toks = append(p.toks, tok{kind: tPunct, text: "..", off: i})
			i += 2
		// The set includes OQL operator characters so that define bodies
		// (sliced as raw text and reparsed by the OQL parser) lex through.
		case strings.IndexByte("{}():;,=<>*.+-/!|", c) >= 0:
			p.toks = append(p.toks, tok{kind: tPunct, text: string(c), off: i})
			i++
		default:
			return &Error{Off: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	p.toks = append(p.toks, tok{kind: tEOF, off: len(src)})
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// --- parser helpers ---------------------------------------------------------

func (p *parser) cur() tok { return p.toks[p.i] }

func (p *parser) atEOF() bool { return p.cur().kind == tEOF }

func (p *parser) advance() tok {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &Error{Off: p.cur().off, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isIdent(text string) bool {
	t := p.cur()
	return t.kind == tIdent && t.text == text
}

func (p *parser) isPunct(text string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.isIdent(text) || p.isPunct(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errorf("expected %q, found %q", text, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", p.errorf("expected identifier, found %q", t.text)
	}
	p.advance()
	return t.text, nil
}

// --- statements --------------------------------------------------------------

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isIdent("interface"):
		return p.parseInterface()
	case p.isIdent("extent"):
		return p.parseExtent()
	case p.isIdent("define"):
		return p.parseDefine()
	case p.isIdent("drop"):
		return p.parseDrop()
	case p.isIdent("migrate"):
		return p.parseMigrate()
	case p.cur().kind == tIdent && p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == ":=":
		return p.parseAssign()
	default:
		return nil, p.errorf("unexpected %q at statement start", p.cur().text)
	}
}

func (p *parser) parseInterface() (Statement, error) {
	p.advance() // interface
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	iface := &types.Interface{Name: name}
	if p.accept(":") {
		super, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		iface.Super = super
	}
	if p.accept("(") {
		if err := p.expect("extent"); err != nil {
			return nil, err
		}
		ext, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		iface.ExtentName = ext
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.accept("}") {
		if err := p.expect("attribute"); err != nil {
			return nil, err
		}
		at, err := p.parseAttrType()
		if err != nil {
			return nil, err
		}
		aname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		iface.Attrs = append(iface.Attrs, types.Attribute{Name: aname, Type: at})
	}
	p.accept(";") // optional trailing semicolon
	return &InterfaceDecl{Iface: iface}, nil
}

func (p *parser) parseAttrType() (types.AttrType, error) {
	name, err := p.expectIdent()
	if err != nil {
		return types.AttrType{}, err
	}
	switch name {
	case "String":
		return types.ScalarAttr(types.TString), nil
	case "Short", "Long", "Int", "Integer":
		return types.ScalarAttr(types.TInt), nil
	case "Float", "Double":
		return types.ScalarAttr(types.TFloat), nil
	case "Boolean", "Bool":
		return types.ScalarAttr(types.TBool), nil
	case "Any":
		return types.ScalarAttr(types.TAny), nil
	case "Bag", "List", "Set":
		if err := p.expect("<"); err != nil {
			return types.AttrType{}, err
		}
		elem, err := p.parseAttrType()
		if err != nil {
			return types.AttrType{}, err
		}
		if err := p.expect(">"); err != nil {
			return types.AttrType{}, err
		}
		kind := types.TBagOf
		switch name {
		case "List":
			kind = types.TListOf
		case "Set":
			kind = types.TSetOf
		}
		return types.AttrType{Kind: kind, Elem: &elem}, nil
	default:
		// A mediator interface name.
		return types.AttrType{Kind: types.TInterface, Iface: name}, nil
	}
}

func (p *parser) parseExtent() (Statement, error) {
	p.advance() // extent
	d := &ExtentDecl{AttrMap: map[string]string{}}
	var err error
	if d.Name, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expect("of"); err != nil {
		return nil, err
	}
	if d.Iface, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expect("wrapper"); err != nil {
		return nil, err
	}
	if d.Wrapper, err = p.expectIdent(); err != nil {
		return nil, err
	}
	// "repository r0" for a single source, "at r0, r1, ..." for a
	// horizontally partitioned extent; both accept a comma-separated list.
	// Each list element is a replica group: "r0|r0b" places a copy of the
	// partition at every named repository, primary first.
	if !p.accept("repository") {
		if err := p.expect("at"); err != nil {
			return nil, p.errorf("expected \"repository\" or \"at\" after wrapper")
		}
	}
	replicated := false
	for {
		repo, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		group := []string{repo}
		for p.accept("|") {
			rep, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			group = append(group, rep)
		}
		if len(group) > 1 {
			replicated = true
		}
		d.Repositories = append(d.Repositories, group[0])
		d.Replicas = append(d.Replicas, group)
		if !p.accept(",") {
			break
		}
	}
	d.Repository = d.Repositories[0]
	if !replicated {
		d.Replicas = nil
	}
	if len(d.Repositories) == 1 {
		d.Repositories = nil
	}
	if p.accept("partition") {
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		scheme, err := p.parsePartitionScheme()
		if err != nil {
			return nil, err
		}
		d.Scheme = scheme
	}
	if p.accept("map") {
		if err := p.parseMap(d); err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// parsePartitionScheme parses the clause after "partition by":
//
//	hash(id)
//	range(salary) (..100, 100..1000, 1000..)
//
// Range bounds are numbers (optionally negative) or strings; a missing
// bound leaves the interval open on that side. Bounds are inclusive below
// and exclusive above: 10 belongs to 10..20, not ..10.
func (p *parser) parsePartitionScheme() (*algebra.PartitionSpec, error) {
	kind, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if kind != algebra.PartHash && kind != algebra.PartRange {
		return nil, p.errorf("partition by %q: want hash or range", kind)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	attr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	spec := &algebra.PartitionSpec{Kind: kind, Attr: attr}
	if kind == algebra.PartHash {
		return spec, nil
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		var r algebra.RangeBound
		if !p.isPunct("..") {
			lo, err := p.parseBoundValue()
			if err != nil {
				return nil, err
			}
			r.Lo = lo
		}
		if err := p.expect(".."); err != nil {
			return nil, err
		}
		if !p.isPunct(",") && !p.isPunct(")") {
			hi, err := p.parseBoundValue()
			if err != nil {
				return nil, err
			}
			r.Hi = hi
		}
		spec.Ranges = append(spec.Ranges, r)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseBoundValue parses one range bound: a number, a negative number, or a
// quoted string.
func (p *parser) parseBoundValue() (types.Value, error) {
	neg := p.accept("-")
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.advance()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			if neg {
				i = -i
			}
			return types.Int(i), nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad range bound %q", t.text)
		}
		if neg {
			f = -f
		}
		return types.Float(f), nil
	case t.kind == tString && !neg:
		p.advance()
		return types.Str(t.text), nil
	default:
		return nil, p.errorf("expected range bound, found %q", t.text)
	}
}

// parseMap parses map ((person0=personprime0),(name=n),(salary=s)). Each
// pair is (sourceName=mediatorName); the pair whose mediator side equals the
// extent name renames the source collection, the others rename attributes
// (§2.2.2).
func (p *parser) parseMap(d *ExtentDecl) error {
	if err := p.expect("("); err != nil {
		return err
	}
	for {
		if err := p.expect("("); err != nil {
			return err
		}
		src, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expect("="); err != nil {
			return err
		}
		med, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		if med == d.Name {
			d.SourceName = src
		} else {
			if _, dup := d.AttrMap[med]; dup {
				return p.errorf("map lists attribute %q twice", med)
			}
			d.AttrMap[med] = src
		}
		if !p.accept(",") {
			break
		}
	}
	return p.expect(")")
}

func (p *parser) parseAssign() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":="); err != nil {
		return nil, err
	}
	ctor, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	props, err := p.parseProps()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	switch {
	case ctor == "Repository":
		return &RepositoryDecl{Name: name, Props: props}, nil
	case ctor == "Wrapper":
		kind := props["kind"]
		if kind == "" {
			return nil, p.errorf("Wrapper(...) needs kind=\"...\"")
		}
		delete(props, "kind")
		return &WrapperDecl{Name: name, Kind: strings.ToLower(kind), Props: props}, nil
	case strings.HasPrefix(ctor, "Wrapper"):
		// WrapperPostgres() and friends: the suffix is the kind.
		return &WrapperDecl{Name: name, Kind: strings.ToLower(ctor[len("Wrapper"):]), Props: props}, nil
	default:
		return nil, p.errorf("unknown constructor %q (want Repository or Wrapper*)", ctor)
	}
}

func (p *parser) parseProps() (map[string]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	props := map[string]string{}
	if p.accept(")") {
		return props, nil
	}
	for {
		t := p.cur()
		switch t.kind {
		case tString:
			// Positional string argument: Wrapper("sql").
			p.advance()
			props["kind"] = t.text
		case tIdent:
			key, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			v := p.cur()
			if v.kind != tString && v.kind != tNumber && v.kind != tIdent {
				return nil, p.errorf("expected value for %q, found %q", key, v.text)
			}
			p.advance()
			if _, dup := props[key]; dup {
				return nil, p.errorf("property %q given twice", key)
			}
			props[key] = v.text
		default:
			return nil, p.errorf("expected property, found %q", t.text)
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return props, nil
}

// parseDefine slices the raw OQL text between "as" and the statement's
// terminating semicolon and hands it to the OQL parser.
func (p *parser) parseDefine() (Statement, error) {
	p.advance() // define
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("as"); err != nil {
		return nil, err
	}
	start := p.cur().off
	// Scan tokens until the terminating semicolon.
	depth := 0
	for {
		t := p.cur()
		if t.kind == tEOF {
			return nil, p.errorf("unterminated define %s (missing ';')", name)
		}
		if t.kind == tPunct {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
			case ";":
				if depth == 0 {
					text := p.src[start:t.off]
					p.advance() // consume ;
					q, err := oql.ParseQuery(text)
					if err != nil {
						return nil, fmt.Errorf("in define %s: %w", name, err)
					}
					return &ViewDecl{Name: name, Query: q}, nil
				}
			}
		}
		p.advance()
	}
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // drop
	if err := p.expect("extent"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &DropExtentDecl{Name: name}, nil
}

func (p *parser) parseMigrate() (Statement, error) {
	p.advance() // migrate
	d := &MigrateDecl{}
	var err error
	if d.Extent, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if d.Kind, err = p.expectIdent(); err != nil {
		return nil, err
	}
	switch d.Kind {
	case "move":
		if d.From, err = p.expectIdent(); err != nil {
			return nil, err
		}
		if err := p.expect("to"); err != nil {
			return nil, err
		}
	case "split":
		if d.From, err = p.expectIdent(); err != nil {
			return nil, err
		}
		if err := p.expect("at"); err != nil {
			return nil, err
		}
		if d.SplitAt, err = p.parseBoundValue(); err != nil {
			return nil, err
		}
		if err := p.expect("to"); err != nil {
			return nil, err
		}
	case "merge":
		if d.From, err = p.expectIdent(); err != nil {
			return nil, err
		}
		if err := p.expect("into"); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf("migrate %s: unknown kind %q (want move, split or merge)", d.Extent, d.Kind)
	}
	if d.To, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expect("phase"); err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tString {
		return nil, p.errorf("expected quoted migration phase, found %q", t.text)
	}
	d.Phase = t.text
	p.advance()
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}
