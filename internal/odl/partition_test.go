package odl

import (
	"strings"
	"testing"
)

// TestParsePartitionedExtent covers the "at r0, r1, ..." extension and the
// comma-separated repository list.
func TestParsePartitionedExtent(t *testing.T) {
	stmts, err := Parse(`
		extent people of Person wrapper w0 at r0, r1, r2;
	`)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := stmts[0].(*ExtentDecl)
	if !ok {
		t.Fatalf("parsed %T", stmts[0])
	}
	if d.Name != "people" || d.Iface != "Person" || d.Wrapper != "w0" {
		t.Errorf("decl = %+v", d)
	}
	if d.Repository != "r0" {
		t.Errorf("Repository = %q, want first partition r0", d.Repository)
	}
	if got := strings.Join(d.Repositories, ","); got != "r0,r1,r2" {
		t.Errorf("Repositories = %q, want r0,r1,r2", got)
	}
}

func TestParsePartitionedExtentWithMap(t *testing.T) {
	stmts, err := Parse(`
		extent people of Person wrapper w0 at r0, r1 map ((folk=people),(n=name));
	`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmts[0].(*ExtentDecl)
	if len(d.Repositories) != 2 || d.SourceName != "folk" || d.AttrMap["name"] != "n" {
		t.Errorf("decl = %+v", d)
	}
}

func TestParseRepositoryListIsPartitioned(t *testing.T) {
	stmts, err := Parse(`
		extent people of Person wrapper w0 repository r0, r1;
	`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmts[0].(*ExtentDecl)
	if len(d.Repositories) != 2 {
		t.Errorf("repository list form: Repositories = %v", d.Repositories)
	}
}

func TestParseSingleRepositoryStaysUnpartitioned(t *testing.T) {
	stmts, err := Parse(`
		extent person0 of Person wrapper w0 repository r0;
	`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmts[0].(*ExtentDecl)
	if d.Repository != "r0" || d.Repositories != nil {
		t.Errorf("single-repo decl = %+v", d)
	}
}

func TestParseExtentMissingRepositoryClause(t *testing.T) {
	if _, err := Parse(`extent people of Person wrapper w0;`); err == nil ||
		!strings.Contains(err.Error(), `"repository" or "at"`) {
		t.Errorf("err = %v", err)
	}
}
