package odl

import (
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/types"
)

// TestParsePartitionedExtent covers the "at r0, r1, ..." extension and the
// comma-separated repository list.
func TestParsePartitionedExtent(t *testing.T) {
	stmts, err := Parse(`
		extent people of Person wrapper w0 at r0, r1, r2;
	`)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := stmts[0].(*ExtentDecl)
	if !ok {
		t.Fatalf("parsed %T", stmts[0])
	}
	if d.Name != "people" || d.Iface != "Person" || d.Wrapper != "w0" {
		t.Errorf("decl = %+v", d)
	}
	if d.Repository != "r0" {
		t.Errorf("Repository = %q, want first partition r0", d.Repository)
	}
	if got := strings.Join(d.Repositories, ","); got != "r0,r1,r2" {
		t.Errorf("Repositories = %q, want r0,r1,r2", got)
	}
}

func TestParsePartitionedExtentWithMap(t *testing.T) {
	stmts, err := Parse(`
		extent people of Person wrapper w0 at r0, r1 map ((folk=people),(n=name));
	`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmts[0].(*ExtentDecl)
	if len(d.Repositories) != 2 || d.SourceName != "folk" || d.AttrMap["name"] != "n" {
		t.Errorf("decl = %+v", d)
	}
}

func TestParseRepositoryListIsPartitioned(t *testing.T) {
	stmts, err := Parse(`
		extent people of Person wrapper w0 repository r0, r1;
	`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmts[0].(*ExtentDecl)
	if len(d.Repositories) != 2 {
		t.Errorf("repository list form: Repositories = %v", d.Repositories)
	}
}

func TestParseSingleRepositoryStaysUnpartitioned(t *testing.T) {
	stmts, err := Parse(`
		extent person0 of Person wrapper w0 repository r0;
	`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmts[0].(*ExtentDecl)
	if d.Repository != "r0" || d.Repositories != nil {
		t.Errorf("single-repo decl = %+v", d)
	}
}

func TestParseExtentMissingRepositoryClause(t *testing.T) {
	if _, err := Parse(`extent people of Person wrapper w0;`); err == nil ||
		!strings.Contains(err.Error(), `"repository" or "at"`) {
		t.Errorf("err = %v", err)
	}
}

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("parse %q: %d statements", src, len(stmts))
	}
	return stmts[0]
}

func TestParsePartitionByHash(t *testing.T) {
	s := parseOne(t, `extent people of Person wrapper w0 at r0, r1, r2 partition by hash(id);`)
	d, ok := s.(*ExtentDecl)
	if !ok {
		t.Fatalf("statement = %T", s)
	}
	if d.Scheme == nil || d.Scheme.Kind != algebra.PartHash || d.Scheme.Attr != "id" {
		t.Errorf("Scheme = %+v, want hash(id)", d.Scheme)
	}
	if len(d.Repositories) != 3 {
		t.Errorf("Repositories = %v", d.Repositories)
	}
}

func TestParsePartitionByRange(t *testing.T) {
	s := parseOne(t, `extent people of Person wrapper w0 at r0, r1, r2
		partition by range(salary) (..10, 10..20, 20..);`)
	d := s.(*ExtentDecl)
	if d.Scheme == nil || d.Scheme.Kind != algebra.PartRange || d.Scheme.Attr != "salary" {
		t.Fatalf("Scheme = %+v, want range(salary)", d.Scheme)
	}
	want := []algebra.RangeBound{
		{Hi: types.Int(10)},
		{Lo: types.Int(10), Hi: types.Int(20)},
		{Lo: types.Int(20)},
	}
	if len(d.Scheme.Ranges) != len(want) {
		t.Fatalf("Ranges = %v", d.Scheme.Ranges)
	}
	for i, r := range d.Scheme.Ranges {
		if r.String() != want[i].String() {
			t.Errorf("range %d = %s, want %s", i, r, want[i])
		}
	}
}

func TestParsePartitionByRangeBoundKinds(t *testing.T) {
	s := parseOne(t, `extent t of T wrapper w at r0, r1, r2
		partition by range(k) (.. -1.5, -1.5.."m", "m"..);`)
	d := s.(*ExtentDecl)
	rs := d.Scheme.Ranges
	if len(rs) != 3 {
		t.Fatalf("Ranges = %v", rs)
	}
	if !rs[0].Hi.Equal(types.Float(-1.5)) || !rs[1].Lo.Equal(types.Float(-1.5)) {
		t.Errorf("negative float bounds = %v", rs)
	}
	if !rs[1].Hi.Equal(types.Str("m")) || !rs[2].Lo.Equal(types.Str("m")) {
		t.Errorf("string bounds = %v", rs)
	}
}

func TestParsePartitionWithMapClause(t *testing.T) {
	s := parseOne(t, `extent people of Person wrapper w0 at r0, r1
		partition by hash(id) map ((folk=people),(name=n));`)
	d := s.(*ExtentDecl)
	if d.Scheme == nil || d.Scheme.Kind != algebra.PartHash {
		t.Errorf("Scheme = %+v", d.Scheme)
	}
	if d.SourceName != "folk" || d.AttrMap["n"] != "name" {
		t.Errorf("map clause lost: source=%q attrs=%v", d.SourceName, d.AttrMap)
	}
}

func TestParsePartitionErrors(t *testing.T) {
	for _, src := range []string{
		`extent e of T wrapper w at r0, r1 partition by modulo(id);`,
		`extent e of T wrapper w at r0, r1 partition by hash id;`,
		`extent e of T wrapper w at r0, r1 partition by range(id) (10);`,
		`extent e of T wrapper w at r0, r1 partition by range(id) (..x);`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse %q should fail", src)
		}
	}
}

// TestNumberLexingUnaffected: adding the ".." token must not break decimal
// literals in property lists.
func TestNumberLexingUnaffected(t *testing.T) {
	s := parseOne(t, `r0 := Repository(address="mem:r0", weight=1.5);`)
	d, ok := s.(*RepositoryDecl)
	if !ok || d.Props["weight"] != "1.5" {
		t.Errorf("decimal property mis-lexed: %+v", s)
	}
}
