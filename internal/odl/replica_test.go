package odl

import (
	"strings"
	"testing"
)

// TestParseReplicatedExtent covers the "at r0|r0b, r1" replica-group
// syntax: primaries land in Repositories, full groups in Replicas.
func TestParseReplicatedExtent(t *testing.T) {
	stmts, err := Parse(`
		extent people of Person wrapper w0 at r0|r0b|r0c, r1, r2|r2b
		    partition by hash(id);
	`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmts[0].(*ExtentDecl)
	if got := strings.Join(d.Repositories, ","); got != "r0,r1,r2" {
		t.Errorf("Repositories = %q, want the primaries r0,r1,r2", got)
	}
	if len(d.Replicas) != 3 {
		t.Fatalf("Replicas = %v, want 3 groups", d.Replicas)
	}
	for i, want := range []string{"r0|r0b|r0c", "r1", "r2|r2b"} {
		if got := strings.Join(d.Replicas[i], "|"); got != want {
			t.Errorf("group %d = %q, want %q", i, got, want)
		}
	}
	if d.Scheme == nil || d.Scheme.Attr != "id" {
		t.Errorf("scheme = %+v; partition by must compose with replicas", d.Scheme)
	}
}

// TestParseUnreplicatedListStaysNil: without any "|", Replicas stays nil
// so the unpartitioned/partitioned representations are unchanged.
func TestParseUnreplicatedListStaysNil(t *testing.T) {
	stmts, err := Parse(`extent people of Person wrapper w0 at r0, r1;`)
	if err != nil {
		t.Fatal(err)
	}
	if d := stmts[0].(*ExtentDecl); d.Replicas != nil {
		t.Errorf("Replicas = %v, want nil", d.Replicas)
	}
}

// TestParseReplicatedSingleRepository: the "repository" form accepts a
// replica group too (one shard, two copies).
func TestParseReplicatedSingleRepository(t *testing.T) {
	stmts, err := Parse(`extent solo of Person wrapper w0 repository r0|r0b;`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmts[0].(*ExtentDecl)
	if d.Repository != "r0" || d.Repositories != nil {
		t.Errorf("decl = %+v, want unpartitioned with primary r0", d)
	}
	if len(d.Replicas) != 1 || strings.Join(d.Replicas[0], "|") != "r0|r0b" {
		t.Errorf("Replicas = %v", d.Replicas)
	}
}

func TestParseReplicaErrors(t *testing.T) {
	for _, src := range []string{
		`extent x of P wrapper w at r0|;`,
		`extent x of P wrapper w at |r0;`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted a malformed replica group", src)
		}
	}
}
