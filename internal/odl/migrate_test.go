package odl

import (
	"testing"

	"disco/internal/types"
)

func TestParseMigrateMove(t *testing.T) {
	d, ok := parseOne(t, `migrate people move r1 to r3 phase "dual-read";`).(*MigrateDecl)
	if !ok {
		t.Fatal("not a MigrateDecl")
	}
	want := MigrateDecl{Extent: "people", Kind: "move", From: "r1", To: "r3", Phase: "dual-read"}
	if *d != want {
		t.Errorf("parsed %+v, want %+v", *d, want)
	}
}

func TestParseMigrateSplit(t *testing.T) {
	d := parseOne(t, `migrate people split r1 at 15 to r3 phase "copying";`).(*MigrateDecl)
	if d.Kind != "split" || d.From != "r1" || d.To != "r3" || d.Phase != "copying" {
		t.Errorf("parsed %+v", d)
	}
	if !d.SplitAt.Equal(types.Int(15)) {
		t.Errorf("split at %s, want 15", d.SplitAt)
	}
	// Bounds take the same forms as partition range bounds.
	d = parseOne(t, `migrate people split r1 at -2.5 to r3 phase "declared";`).(*MigrateDecl)
	if !d.SplitAt.Equal(types.Float(-2.5)) {
		t.Errorf("split at %s, want -2.5", d.SplitAt)
	}
	d = parseOne(t, `migrate people split r1 at "m" to r3 phase "declared";`).(*MigrateDecl)
	if !d.SplitAt.Equal(types.Str("m")) {
		t.Errorf("split at %s, want \"m\"", d.SplitAt)
	}
}

func TestParseMigrateMerge(t *testing.T) {
	d := parseOne(t, `migrate people merge r1 into r2 phase "declared";`).(*MigrateDecl)
	want := MigrateDecl{Extent: "people", Kind: "merge", From: "r1", To: "r2", Phase: "declared"}
	if *d != want {
		t.Errorf("parsed %+v, want %+v", *d, want)
	}
}

func TestParseMigrateErrors(t *testing.T) {
	bad := []string{
		`migrate people shuffle r1 to r3 phase "copying";`, // unknown kind
		`migrate people move r1 to r3 phase dual-read;`,    // unquoted phase
		`migrate people move r1 to r3;`,                    // missing phase
		`migrate people split r1 to r3 phase "copying";`,   // split without at
		`migrate people merge r1 to r2 phase "copying";`,   // merge wants into
		`migrate people move r1 to r3 phase "copying"`,     // missing semicolon
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", src)
		}
	}
}
