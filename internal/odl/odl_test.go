package odl

import (
	"strings"
	"testing"

	"disco/internal/oql"
	"disco/internal/types"
)

// paperODL is the complete schema definition of the paper's running
// example, §2.1-§2.3, in DISCO's extended ODL.
const paperODL = `
r0 := Repository(host="rodin", name="db", address="123.45.6.7");
r1 := Repository(host="rodin", name="db2", address="123.45.6.8");
w0 := WrapperPostgres();

interface Person (extent person) {
    attribute String name;
    attribute Short salary;
}

extent person0 of Person wrapper w0 repository r0;
extent person1 of Person wrapper w0 repository r1;

interface Student:Person { }
extent student0 of Student wrapper w0 repository r0;

interface PersonPrime {
    attribute String n;
    attribute Short s;
}
extent personprime0 of PersonPrime wrapper w0 repository r0
    map ((person0=personprime0),(name=n),(salary=s));

define double as
    select struct(name: x.name, salary: x.salary + y.salary)
    from x in person0 and y in person1
    where x.id = y.id;
`

func TestParsePaperODL(t *testing.T) {
	stmts, err := Parse(paperODL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmts) != 11 {
		t.Fatalf("statements = %d, want 11", len(stmts))
	}

	r0, ok := stmts[0].(*RepositoryDecl)
	if !ok || r0.Name != "r0" {
		t.Fatalf("stmt0 = %#v", stmts[0])
	}
	if r0.Props["host"] != "rodin" || r0.Props["address"] != "123.45.6.7" {
		t.Errorf("r0 props = %v", r0.Props)
	}

	w0, ok := stmts[2].(*WrapperDecl)
	if !ok || w0.Name != "w0" || w0.Kind != "postgres" {
		t.Fatalf("stmt2 = %#v", stmts[2])
	}

	person, ok := stmts[3].(*InterfaceDecl)
	if !ok || person.Iface.Name != "Person" {
		t.Fatalf("stmt3 = %#v", stmts[3])
	}
	if person.Iface.ExtentName != "person" {
		t.Errorf("implicit extent = %q", person.Iface.ExtentName)
	}
	if len(person.Iface.Attrs) != 2 || person.Iface.Attrs[1].Type.Kind != types.TInt {
		t.Errorf("attrs = %+v", person.Iface.Attrs)
	}

	e0, ok := stmts[4].(*ExtentDecl)
	if !ok || e0.Name != "person0" || e0.Iface != "Person" || e0.Wrapper != "w0" || e0.Repository != "r0" {
		t.Fatalf("stmt4 = %#v", stmts[4])
	}

	student, ok := stmts[6].(*InterfaceDecl)
	if !ok || student.Iface.Super != "Person" {
		t.Fatalf("stmt6 = %#v", stmts[6])
	}

	prime, ok := stmts[9].(*ExtentDecl)
	if !ok {
		t.Fatalf("stmt9 = %#v", stmts[9])
	}
	if prime.SourceName != "person0" {
		t.Errorf("SourceName = %q", prime.SourceName)
	}
	if prime.AttrMap["n"] != "name" || prime.AttrMap["s"] != "salary" {
		t.Errorf("AttrMap = %v", prime.AttrMap)
	}

	view, ok := stmts[10].(*ViewDecl)
	if !ok || view.Name != "double" {
		t.Fatalf("stmt10 = %#v", stmts[10])
	}
	if _, ok := view.Query.(*oql.Select); !ok {
		t.Errorf("view query = %T", view.Query)
	}
}

func TestParseCollectionAttrs(t *testing.T) {
	stmts, err := Parse(`interface Site { attribute Bag<Float> readings; attribute List<String> tags; }`)
	if err != nil {
		t.Fatal(err)
	}
	i := stmts[0].(*InterfaceDecl).Iface
	if i.Attrs[0].Type.Kind != types.TBagOf || i.Attrs[0].Type.Elem.Kind != types.TFloat {
		t.Errorf("readings type = %v", i.Attrs[0].Type)
	}
	if i.Attrs[1].Type.Kind != types.TListOf {
		t.Errorf("tags type = %v", i.Attrs[1].Type)
	}
}

func TestParseInterfaceTypedAttr(t *testing.T) {
	stmts, err := Parse(`interface Emp { attribute Dept dept; }`)
	if err != nil {
		t.Fatal(err)
	}
	i := stmts[0].(*InterfaceDecl).Iface
	if i.Attrs[0].Type.Kind != types.TInterface || i.Attrs[0].Type.Iface != "Dept" {
		t.Errorf("dept type = %v", i.Attrs[0].Type)
	}
}

func TestParseWrapperForms(t *testing.T) {
	stmts, err := Parse(`
		w1 := WrapperPostgres();
		w2 := Wrapper("scan");
		w3 := Wrapper(kind="doc", lang="keyword");
		w4 := WrapperCSV(path="/data/f.csv");
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ name, kind string }{
		{"w1", "postgres"}, {"w2", "scan"}, {"w3", "doc"}, {"w4", "csv"},
	}
	for i, w := range want {
		d := stmts[i].(*WrapperDecl)
		if d.Name != w.name || d.Kind != w.kind {
			t.Errorf("stmt %d = %+v, want %+v", i, d, w)
		}
	}
	if stmts[3].(*WrapperDecl).Props["path"] != "/data/f.csv" {
		t.Errorf("w4 props = %v", stmts[3].(*WrapperDecl).Props)
	}
}

func TestParseDropExtent(t *testing.T) {
	stmts, err := Parse(`drop extent person0;`)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := stmts[0].(*DropExtentDecl)
	if !ok || d.Name != "person0" {
		t.Fatalf("stmt = %#v", stmts[0])
	}
}

func TestParseRepositoryNumericProps(t *testing.T) {
	stmts, err := Parse(`r := Repository(address="127.0.0.1:4001", timeoutMillis=250);`)
	if err != nil {
		t.Fatal(err)
	}
	r := stmts[0].(*RepositoryDecl)
	if r.Props["timeoutMillis"] != "250" {
		t.Errorf("props = %v", r.Props)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ src, frag string }{
		{`interface`, "identifier"},
		{`interface P { attribute String; }`, "expected"},
		{`extent e of T wrapper w;`, "repository"},
		{`extent e of T wrapper w repository r map ((a=b);`, "expected"},
		{`x := Mystery();`, "unknown constructor"},
		{`x := Wrapper();`, "kind"},
		{`define v as select x from;`, "oql"},
		{`define v as select x from x in c`, "missing ';'"},
		{`drop x;`, "extent"},
		{`@`, "unexpected character"},
		{`r := Repository(a="1", a="2");`, "twice"},
		{`extent e of T wrapper w repository r map ((a=e),(n=x),(m=x));`, "twice"},
		{`interface P : { }`, "identifier"},
		{`;`, "statement start"},
		{`r := Repository(k="unterminated);`, "unterminated string"},
	}
	for _, tt := range bad {
		_, err := Parse(tt.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", tt.src)
			continue
		}
		if !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("Parse(%q) error = %q, want fragment %q", tt.src, err, tt.frag)
		}
	}
}

func TestParseComments(t *testing.T) {
	stmts, err := Parse(`
		-- line comment
		// another comment style
		interface T { } -- trailing
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Errorf("statements = %d", len(stmts))
	}
}

func TestDefineWithNestedSemicolonFreeParens(t *testing.T) {
	// The define body may contain parenthesized subqueries with commas.
	stmts, err := Parse(`define v as union(select x.a from x in c, bag(1));`)
	if err != nil {
		t.Fatal(err)
	}
	v := stmts[0].(*ViewDecl)
	if _, ok := v.Query.(*oql.Call); !ok {
		t.Errorf("query = %T", v.Query)
	}
}

func TestEmptyInterfaceBody(t *testing.T) {
	stmts, err := Parse(`interface Student:Person { }`)
	if err != nil {
		t.Fatal(err)
	}
	i := stmts[0].(*InterfaceDecl).Iface
	if i.Super != "Person" || len(i.Attrs) != 0 {
		t.Errorf("iface = %+v", i)
	}
}
