package odl

import "testing"

// FuzzParse checks that the ODL parser never panics on arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`interface Person (extent person) { attribute String name; }`,
		`extent e of T wrapper w repository r map ((a=b),(c=d));`,
		`r0 := Repository(host="h", name="n", address="1.2.3.4");`,
		`w0 := WrapperPostgres();`,
		`define v as select x.a from x in c;`,
		`drop extent e;`,
		`interface :`,
		`extent`,
		`x := (`,
		"`",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src) // must not panic
	})
}
