// Package wrapper implements DISCO's wrapper interface (paper §1.4, §3.2).
// A wrapper declares the logical operators it supports as a grammar (the
// submit-functionality call) and evaluates accepted logical expressions by
// translating them into the data source's own query language — SQL for
// relational sources, the keyword language for document stores, nothing at
// all for scan-only sources — and reformatting the answers.
//
// Wrappers receive expressions already translated into the source
// namespace (extent and attribute names local to the source); the physical
// exec algorithm performs that translation using the catalog's local
// transformation maps before calling Execute.
package wrapper

import (
	"context"
	"fmt"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// Wrapper is the interface between mediator and data source.
type Wrapper interface {
	// Grammar describes the logical expressions Execute accepts, in the
	// capability grammar formalism. The optimizer consults it before
	// pushing operations to the source.
	Grammar() *capability.Grammar
	// Execute evaluates a source-namespace logical expression against the
	// data source and returns the resulting bag of tuples (also in the
	// source namespace).
	Execute(ctx context.Context, expr algebra.Node) (*types.Bag, error)
}

// Querier executes queries in a data source's native language. It
// abstracts over in-process engines and remote servers so the same wrapper
// code serves both.
type Querier interface {
	Query(ctx context.Context, text string) (*types.Bag, error)
}

// EngineQuerier adapts an in-process source.Engine.
type EngineQuerier struct {
	Engine source.Engine
}

// Query implements Querier, passing the context through to engines that
// honor one (source.ContextEngine), so in-process sources observe caller
// cancellation just like remote ones.
func (q EngineQuerier) Query(ctx context.Context, text string) (*types.Bag, error) {
	if ce, ok := q.Engine.(source.ContextEngine); ok {
		return ce.QueryContext(ctx, text)
	}
	return q.Engine.Query(text)
}

// RemoteQuerier adapts a wire client speaking a fixed language.
type RemoteQuerier struct {
	Client *wire.Client
	Lang   string
}

// Query implements Querier.
func (q RemoteQuerier) Query(ctx context.Context, text string) (*types.Bag, error) {
	raw, err := q.Client.Query(ctx, q.Lang, text)
	if err != nil {
		return nil, err
	}
	v, err := types.DecodeValue(raw)
	if err != nil {
		return nil, fmt.Errorf("wrapper: decode result: %w", err)
	}
	b, ok := v.(*types.Bag)
	if !ok {
		return nil, fmt.Errorf("wrapper: source returned %s, want bag", v.Kind())
	}
	return b, nil
}

// Scan restricts another wrapper to bare get expressions, modeling the
// weakest wrapper a DBI can write. Everything beyond retrieval stays at
// the mediator.
type Scan struct {
	inner Wrapper
}

// NewScan wraps an existing wrapper with a get-only grammar.
func NewScan(inner Wrapper) *Scan { return &Scan{inner: inner} }

// Grammar implements Wrapper.
func (*Scan) Grammar() *capability.Grammar {
	return capability.Standard(capability.ScanOpSet())
}

// Execute implements Wrapper.
func (s *Scan) Execute(ctx context.Context, expr algebra.Node) (*types.Bag, error) {
	if _, ok := expr.(*algebra.Get); !ok {
		return nil, &UnsupportedError{Expr: expr, Wrapper: "scan"}
	}
	return s.inner.Execute(ctx, expr)
}

// UnsupportedError reports an expression outside the wrapper's declared
// functionality. Seeing it means the optimizer skipped the grammar check.
type UnsupportedError struct {
	Expr    algebra.Node
	Wrapper string
}

// Error implements the error interface.
func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("wrapper %s: unsupported expression %s", e.Wrapper, e.Expr)
}

// CheckResult type-checks tuples returned for an extent against the
// mediator interface, implementing the run-time check of §2.1 ("the wrapper
// checks that these types are indeed the same"). It is applied to full-
// object retrievals; projected results carry attribute subsets and are
// checked structurally by the runtime instead.
func CheckResult(schema *types.Schema, iface string, bag *types.Bag) error {
	for _, e := range bag.Elems() {
		if err := schema.CheckConforms(e, iface); err != nil {
			return fmt.Errorf("wrapper: source data does not match mediator type %s: %w", iface, err)
		}
	}
	return nil
}
