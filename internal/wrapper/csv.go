package wrapper

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/types"
)

// CSV wraps a comma-separated file as a single-collection data source. It
// demonstrates the other way a DBI can build a wrapper (§1.4): instead of
// translating to a server's query language, the wrapper itself implements
// the logical operators — here by loading the file and running the shared
// algebra interpreter over it. Filtering and projection therefore execute
// "at the source" from the mediator's point of view.
type CSV struct {
	collection string
	rows       *types.Bag
}

// NewCSV loads the file at path and serves it as the named collection. The
// first record is the header; field values parse as integers, then floats,
// then booleans, falling back to strings.
func NewCSV(collection, path string) (*CSV, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csv wrapper: %w", err)
	}
	defer f.Close()
	return readCSV(collection, f)
}

// NewCSVFromReader is NewCSV over an arbitrary reader (used by tests).
func NewCSVFromReader(collection string, r io.Reader) (*CSV, error) {
	return readCSV(collection, r)
}

func readCSV(collection string, r io.Reader) (*CSV, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csv wrapper: read header: %w", err)
	}
	var rows []types.Value
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csv wrapper: %w", err)
		}
		fields := make([]types.Field, len(header))
		for i, cell := range rec {
			fields[i] = types.Field{Name: header[i], Value: parseCell(cell)}
		}
		rows = append(rows, types.NewStruct(fields...))
	}
	return &CSV{collection: collection, rows: types.NewBag(rows...)}, nil
}

func parseCell(cell string) types.Value {
	if n, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return types.Int(n)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return types.Float(f)
	}
	if b, err := strconv.ParseBool(cell); err == nil {
		return types.Bool(b)
	}
	return types.Str(cell)
}

// Grammar implements Wrapper: get, select and project with composition,
// all implemented inside the wrapper.
func (*CSV) Grammar() *capability.Grammar {
	return capability.Standard(capability.OpSet{
		Get: true, Project: true, Select: true,
		Compose: true, Connectives: true, Distinct: true,
	})
}

// Execute implements Wrapper.
func (w *CSV) Execute(_ context.Context, expr algebra.Node) (*types.Bag, error) {
	in := &algebra.Interp{Cols: algebra.CollectionsMap{w.collection: w.rows}}
	v, err := in.Run(expr)
	if err != nil {
		return nil, fmt.Errorf("csv wrapper: %w", err)
	}
	b, ok := v.(*types.Bag)
	if !ok {
		return nil, fmt.Errorf("csv wrapper: expression produced %s", v.Kind())
	}
	return b, nil
}
