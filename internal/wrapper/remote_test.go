package wrapper

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// sqlServerHandler serves a RelStore over the wire for RemoteQuerier tests.
type sqlServerHandler struct {
	store   *source.RelStore
	scalar  bool // answer with a non-bag value to exercise the error path
	badJSON bool
}

func (h sqlServerHandler) HandleQuery(_ context.Context, lang, text string) (json.RawMessage, error) {
	if h.badJSON {
		return json.RawMessage(`{"k":"mystery"}`), nil
	}
	if h.scalar {
		return types.EncodeValue(types.Int(7))
	}
	b, err := h.store.Query(text)
	if err != nil {
		return nil, err
	}
	return types.EncodeValue(b)
}
func (sqlServerHandler) Capability() string    { return "" }
func (sqlServerHandler) Collections() []string { return nil }

func remoteStore(t *testing.T) *source.RelStore {
	t.Helper()
	s := source.NewRelStore()
	if err := s.CreateTable("person0", "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("person0", types.Int(1), types.Str("Mary"), types.Int(200)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRemoteQuerierSQLWrapper(t *testing.T) {
	srv, err := wire.NewServer("127.0.0.1:0", sqlServerHandler{store: remoteStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	w := NewSQL(RemoteQuerier{Client: wire.NewClient(srv.Addr()), Lang: wire.LangSQL})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	b, err := w.Execute(ctx, get("person0"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Errorf("rows = %d", b.Len())
	}
}

func TestRemoteQuerierNonBagResult(t *testing.T) {
	srv, err := wire.NewServer("127.0.0.1:0", sqlServerHandler{scalar: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	q := RemoteQuerier{Client: wire.NewClient(srv.Addr()), Lang: wire.LangSQL}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = q.Query(ctx, "anything")
	if err == nil || !strings.Contains(err.Error(), "want bag") {
		t.Errorf("err = %v", err)
	}
}

func TestRemoteQuerierDecodeError(t *testing.T) {
	srv, err := wire.NewServer("127.0.0.1:0", sqlServerHandler{badJSON: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	q := RemoteQuerier{Client: wire.NewClient(srv.Addr()), Lang: wire.LangSQL}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := q.Query(ctx, "anything"); err == nil {
		t.Error("undecodable payload should fail")
	}
}

func TestUnsupportedErrorText(t *testing.T) {
	err := &UnsupportedError{Expr: get("t"), Wrapper: "doc"}
	if !strings.Contains(err.Error(), "doc") || !strings.Contains(err.Error(), "get(t)") {
		t.Errorf("error text = %q", err)
	}
}

func TestSQLLiteralForms(t *testing.T) {
	// Booleans and escaped strings render; collections are rejected.
	w := NewSQL(EngineQuerier{Engine: remoteStore(t)})
	sqlText, err := ToSQL(&algebra.Select{Pred: pred(t, `name = "O'Brien"`), Input: get("person0")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqlText, "'O''Brien'") {
		t.Errorf("quote escaping: %s", sqlText)
	}
	boolSQL, err := ToSQL(&algebra.Select{Pred: pred(t, `flag = true`), Input: get("person0")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(boolSQL, "TRUE") {
		t.Errorf("bool literal: %s", boolSQL)
	}
	if _, err := ToSQL(&algebra.Select{Pred: pred(t, `x = struct(a: bag(1))`), Input: get("person0")}); err == nil {
		t.Error("struct literal should be unsupported in SQL")
	}
	_ = w
}

func TestContainsPartsOrientations(t *testing.T) {
	field, value, ok := containsParts(pred(t, `contains(note, "ref")`))
	if !ok || field != "note" || value != "ref" {
		t.Errorf("containsParts = %q %q %v", field, value, ok)
	}
	for _, bad := range []string{
		`contains(note, 5)`,     // non-string needle
		`contains(a.b, "x")`,    // path, not ident
		`startswith(note, "x")`, // wrong function
		`note = "x"`,            // not a call
	} {
		if _, _, ok := containsParts(pred(t, bad)); ok {
			t.Errorf("containsParts(%q) should fail", bad)
		}
	}
}
