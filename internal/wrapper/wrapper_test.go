package wrapper

import (
	"context"
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/source"
	"disco/internal/types"
)

func relStore(t *testing.T) *source.RelStore {
	t.Helper()
	s := source.NewRelStore()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.CreateTable("person0", "id", "name", "salary"))
	must(s.Insert("person0", types.Int(1), types.Str("Mary"), types.Int(200)))
	must(s.Insert("person0", types.Int(3), types.Str("Ann"), types.Int(5)))
	must(s.CreateTable("manager0", "mname", "mdept"))
	must(s.Insert("manager0", types.Str("Kim"), types.Str("db")))
	must(s.CreateTable("employee0", "ename", "dept"))
	must(s.Insert("employee0", types.Str("Bob"), types.Str("db")))
	return s
}

func get(table string, attrs ...string) *algebra.Get {
	return &algebra.Get{Ref: algebra.ExtentRef{Extent: table, Source: table, Attrs: attrs}}
}

func pred(t *testing.T, src string) oql.Expr {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestToSQLShapes(t *testing.T) {
	tests := []struct {
		expr algebra.Node
		want string
	}{
		{get("person0"), `SELECT * FROM person0`},
		{
			&algebra.Select{Pred: pred(t, `salary > 10`), Input: get("person0")},
			`SELECT * FROM person0 WHERE salary > 10`,
		},
		{
			&algebra.Project{
				Cols:  []algebra.Col{{Name: "name", Expr: &oql.Ident{Name: "name"}}},
				Input: &algebra.Select{Pred: pred(t, `salary > 10 and name != "Bob"`), Input: get("person0")},
			},
			`SELECT name FROM person0 WHERE (salary > 10) AND (name <> 'Bob')`,
		},
		{
			&algebra.Join{L: get("employee0"), R: get("manager0"), Pred: pred(t, `dept = mdept`)},
			`SELECT * FROM employee0 JOIN manager0 ON dept = mdept`,
		},
		{
			&algebra.Distinct{Input: &algebra.Project{
				Cols:  []algebra.Col{{Name: "name", Expr: &oql.Ident{Name: "name"}}},
				Input: get("person0"),
			}},
			`SELECT DISTINCT name FROM person0`,
		},
		{
			&algebra.Select{Pred: pred(t, `id in bag(1, 3)`), Input: get("person0")},
			`SELECT * FROM person0 WHERE id IN (1, 3)`,
		},
		{
			// Composition beyond one select/project level nests subqueries.
			&algebra.Select{
				Pred:  pred(t, `salary > 10`),
				Input: &algebra.Project{Cols: []algebra.Col{{Name: "salary", Expr: &oql.Ident{Name: "salary"}}}, Input: get("person0")},
			},
			`SELECT * FROM (SELECT salary FROM person0) WHERE salary > 10`,
		},
		{
			&algebra.Select{Pred: pred(t, `not name = "Ann"`), Input: get("person0")},
			`SELECT * FROM person0 WHERE NOT (name = 'Ann')`,
		},
	}
	for _, tt := range tests {
		got, err := ToSQL(tt.expr)
		if err != nil {
			t.Errorf("ToSQL(%s): %v", tt.expr, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ToSQL(%s)\n got  %s\n want %s", tt.expr, got, tt.want)
		}
	}
}

func TestSQLWrapperExecute(t *testing.T) {
	w := NewSQL(EngineQuerier{Engine: relStore(t)})
	expr := &algebra.Project{
		Cols:  []algebra.Col{{Name: "name", Expr: &oql.Ident{Name: "name"}}},
		Input: &algebra.Select{Pred: pred(t, `salary > 10`), Input: get("person0")},
	}
	if !w.Grammar().AcceptsExpr(expr) {
		t.Fatal("grammar should accept select+project composition")
	}
	b, err := w.Execute(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.NewStruct(types.Field{Name: "name", Value: types.Str("Mary")}))
	if !b.Equal(want) {
		t.Errorf("result = %s, want %s", b, want)
	}
}

func TestSQLWrapperJoin(t *testing.T) {
	w := NewSQL(EngineQuerier{Engine: relStore(t)})
	expr := &algebra.Join{L: get("employee0"), R: get("manager0"), Pred: pred(t, `dept = mdept`)}
	if !w.Grammar().AcceptsExpr(expr) {
		t.Fatal("grammar should accept join")
	}
	b, err := w.Execute(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Errorf("join rows = %d", b.Len())
	}
}

// TestSQLWrapperSemanticsMatchInterp verifies the §3.2 requirement: the
// translated SQL means exactly what the mediator's algebra means.
func TestSQLWrapperSemanticsMatchInterp(t *testing.T) {
	s := relStore(t)
	w := NewSQL(EngineQuerier{Engine: s})
	exprs := []algebra.Node{
		get("person0"),
		&algebra.Select{Pred: pred(t, `salary > 10`), Input: get("person0")},
		&algebra.Select{Pred: pred(t, `salary > 10 or name = "Ann"`), Input: get("person0")},
		&algebra.Select{Pred: pred(t, `not salary > 10`), Input: get("person0")},
		&algebra.Project{Cols: []algebra.Col{{Name: "id", Expr: &oql.Ident{Name: "id"}}}, Input: get("person0")},
		&algebra.Join{L: get("employee0"), R: get("manager0"), Pred: pred(t, `dept = mdept`)},
		&algebra.Distinct{Input: &algebra.Project{Cols: []algebra.Col{{Name: "dept", Expr: &oql.Ident{Name: "dept"}}}, Input: get("employee0")}},
	}
	for _, expr := range exprs {
		viaSQL, err := w.Execute(context.Background(), expr)
		if err != nil {
			t.Errorf("Execute(%s): %v", expr, err)
			continue
		}
		in := &algebra.Interp{Cols: s}
		ref, err := in.Run(expr)
		if err != nil {
			t.Fatalf("interp(%s): %v", expr, err)
		}
		if !viaSQL.Equal(ref.(*types.Bag)) {
			t.Errorf("%s:\n sql    %s\n interp %s", expr, viaSQL, ref)
		}
	}
}

func TestSQLWrapperRejectsComputedColumns(t *testing.T) {
	w := NewSQL(EngineQuerier{Engine: relStore(t)})
	expr := &algebra.Project{
		Cols:  []algebra.Col{{Name: "double", Expr: pred(t, `salary * 2`)}},
		Input: get("person0"),
	}
	if _, err := w.Execute(context.Background(), expr); err == nil {
		t.Error("computed projection should be unsupported")
	}
}

func TestScanWrapper(t *testing.T) {
	inner := NewSQL(EngineQuerier{Engine: relStore(t)})
	w := NewScan(inner)
	if !w.Grammar().AcceptsExpr(get("person0")) {
		t.Error("scan grammar should accept get")
	}
	sel := &algebra.Select{Pred: pred(t, `salary > 10`), Input: get("person0")}
	if w.Grammar().AcceptsExpr(sel) {
		t.Error("scan grammar should reject select")
	}
	if _, err := w.Execute(context.Background(), sel); err == nil {
		t.Error("scan wrapper must refuse selects even if asked")
	}
	b, err := w.Execute(context.Background(), get("person0"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("rows = %d", b.Len())
	}
}

func docStore() *source.DocStore {
	d := source.NewDocStore()
	d.AddDocument("sites", types.NewStruct(
		types.Field{Name: "site", Value: types.Str("amont")},
		types.Field{Name: "quality", Value: types.Str("good")},
	))
	d.AddDocument("sites", types.NewStruct(
		types.Field{Name: "site", Value: types.Str("aval")},
		types.Field{Name: "quality", Value: types.Str("poor")},
	))
	return d
}

func TestDocWrapper(t *testing.T) {
	w := NewDoc(EngineQuerier{Engine: docStore()})
	g := w.Grammar()

	scan := get("sites")
	eq := &algebra.Select{Pred: pred(t, `quality = "good"`), Input: scan}
	rng := &algebra.Select{Pred: pred(t, `quality > "a"`), Input: scan}
	conj := &algebra.Select{Pred: pred(t, `quality = "good" and site = "amont"`), Input: scan}

	if !g.AcceptsExpr(scan) || !g.AcceptsExpr(eq) {
		t.Error("doc grammar should accept scan and equality select")
	}
	if g.AcceptsExpr(rng) {
		t.Error("doc grammar must reject range predicates")
	}
	if g.AcceptsExpr(conj) {
		t.Error("doc grammar must reject conjunctions")
	}

	b, err := w.Execute(context.Background(), eq)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("rows = %d", b.Len())
	}
	if _, err := w.Execute(context.Background(), rng); err == nil {
		t.Error("doc wrapper must refuse range selects")
	}
	// Mirrored equality order works too.
	mirror := &algebra.Select{Pred: pred(t, `"good" = quality`), Input: scan}
	if _, err := w.Execute(context.Background(), mirror); err != nil {
		t.Errorf("mirrored equality: %v", err)
	}
}

func TestCSVWrapper(t *testing.T) {
	data := "site,ph,flow\namont,7.1,120\naval,6.2,80\n"
	w, err := NewCSVFromReader("readings", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Typed parsing: ph floats, flow ints, site strings.
	b, err := w.Execute(context.Background(), get("readings"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("rows = %d", b.Len())
	}
	row := b.At(0).(*types.Struct)
	if v, _ := row.Get("ph"); v.Kind() != types.KindFloat {
		t.Errorf("ph kind = %s", v.Kind())
	}
	if v, _ := row.Get("flow"); v.Kind() != types.KindInt {
		t.Errorf("flow kind = %s", v.Kind())
	}
	// The wrapper itself implements selections.
	sel := &algebra.Select{Pred: pred(t, `ph > 7.0`), Input: get("readings")}
	if !w.Grammar().AcceptsExpr(sel) {
		t.Error("csv grammar should accept selects")
	}
	got, err := w.Execute(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("filtered rows = %d", got.Len())
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := NewCSV("x", "/nonexistent/file.csv"); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := NewCSVFromReader("x", strings.NewReader("")); err == nil {
		t.Error("empty file should fail")
	}
	if _, err := NewCSVFromReader("x", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestCheckResult(t *testing.T) {
	schema := types.NewSchema()
	if err := schema.Define(&types.Interface{
		Name: "Person",
		Attrs: []types.Attribute{
			{Name: "name", Type: types.ScalarAttr(types.TString)},
			{Name: "salary", Type: types.ScalarAttr(types.TInt)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	good := types.NewBag(types.NewStruct(
		types.Field{Name: "name", Value: types.Str("Mary")},
		types.Field{Name: "salary", Value: types.Int(200)},
	))
	if err := CheckResult(schema, "Person", good); err != nil {
		t.Errorf("conforming bag rejected: %v", err)
	}
	bad := types.NewBag(types.NewStruct(
		types.Field{Name: "name", Value: types.Int(7)},
		types.Field{Name: "salary", Value: types.Int(200)},
	))
	if err := CheckResult(schema, "Person", bad); err == nil {
		t.Error("non-conforming bag accepted")
	}
}
