package wrapper

import (
	"context"
	"fmt"
	"strings"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/oql"
	"disco/internal/types"
)

// SQL is the wrapper for relational sources (the paper's WrapperPostgres).
// By default it supports the full operator set with composition and
// translates logical expressions into the RelStore SQL dialect; a
// restricted operator set can be declared to model weaker servers (the
// capability sweep in the experiments uses this).
type SQL struct {
	q   Querier
	ops capability.OpSet
}

// NewSQL returns a SQL wrapper with the full relational operator set.
func NewSQL(q Querier) *SQL {
	ops := capability.FullOpSet()
	// The relational engine has no bag union operator in its dialect, and
	// arithmetic does not appear in the dialect's predicates.
	ops.Union = false
	ops.Arithmetic = false
	return NewSQLWithOps(q, ops)
}

// NewSQLWithOps returns a SQL wrapper advertising only the given operator
// set. The translator is unchanged — the grammar is the contract, and the
// optimizer never sends what the grammar rejects.
func NewSQLWithOps(q Querier, ops capability.OpSet) *SQL {
	return &SQL{q: q, ops: ops}
}

// Grammar implements Wrapper.
func (w *SQL) Grammar() *capability.Grammar {
	return capability.Standard(w.ops)
}

// Execute implements Wrapper.
func (w *SQL) Execute(ctx context.Context, expr algebra.Node) (*types.Bag, error) {
	text, err := ToSQL(expr)
	if err != nil {
		return nil, err
	}
	return w.q.Query(ctx, text)
}

// ToSQL translates a logical expression into the SQL dialect. Exported for
// the wrapper tests and the documentation examples.
func ToSQL(expr algebra.Node) (string, error) {
	var b strings.Builder
	if err := sqlQuery(&b, expr); err != nil {
		return "", err
	}
	return b.String(), nil
}

// sqlQuery renders a node as a complete SELECT statement.
func sqlQuery(b *strings.Builder, n algebra.Node) error {
	distinct := false
	if d, ok := n.(*algebra.Distinct); ok {
		distinct = true
		n = d.Input
	}

	cols := "*"
	if p, ok := n.(*algebra.Project); ok {
		names := make([]string, len(p.Cols))
		for i, c := range p.Cols {
			id, ok := c.Expr.(*oql.Ident)
			if !ok || id.Star || id.Name != c.Name {
				return &UnsupportedError{Expr: n, Wrapper: "sql"}
			}
			names[i] = id.Name
		}
		cols = strings.Join(names, ", ")
		n = p.Input
	}

	var where oql.Expr
	if s, ok := n.(*algebra.Select); ok {
		where = s.Pred
		n = s.Input
	}

	b.WriteString("SELECT ")
	if distinct {
		b.WriteString("DISTINCT ")
	}
	b.WriteString(cols)
	b.WriteString(" FROM ")
	if err := sqlFrom(b, n); err != nil {
		return err
	}
	if where != nil {
		b.WriteString(" WHERE ")
		if err := sqlPred(b, where); err != nil {
			return err
		}
	}
	return nil
}

// sqlFrom renders the from-clause part: a table, a join, or a subquery.
func sqlFrom(b *strings.Builder, n algebra.Node) error {
	switch x := n.(type) {
	case *algebra.Get:
		b.WriteString(x.Ref.Extent)
		return nil
	case *algebra.Join:
		if err := sqlFrom(b, x.L); err != nil {
			return err
		}
		b.WriteString(" JOIN ")
		if err := sqlFrom(b, x.R); err != nil {
			return err
		}
		b.WriteString(" ON ")
		if x.Pred == nil {
			b.WriteString("TRUE = TRUE")
			return nil
		}
		return sqlPred(b, x.Pred)
	case *algebra.Project, *algebra.Select, *algebra.Distinct:
		b.WriteByte('(')
		if err := sqlQuery(b, x); err != nil {
			return err
		}
		b.WriteByte(')')
		return nil
	default:
		return &UnsupportedError{Expr: n, Wrapper: "sql"}
	}
}

func sqlPred(b *strings.Builder, e oql.Expr) error {
	switch x := e.(type) {
	case *oql.Ident:
		if x.Star {
			return fmt.Errorf("sql wrapper: star identifier in predicate")
		}
		b.WriteString(x.Name)
		return nil
	case *oql.Literal:
		return sqlLiteral(b, x.Val)
	case *oql.Unary:
		if x.Op != oql.OpNot {
			return fmt.Errorf("sql wrapper: unsupported unary operator")
		}
		b.WriteString("NOT (")
		if err := sqlPred(b, x.X); err != nil {
			return err
		}
		b.WriteByte(')')
		return nil
	case *oql.Binary:
		return sqlBinary(b, x)
	default:
		return fmt.Errorf("sql wrapper: unsupported predicate %s", e)
	}
}

func sqlBinary(b *strings.Builder, x *oql.Binary) error {
	if x.Op == oql.OpIn {
		lit, ok := x.R.(*oql.Literal)
		if !ok {
			return fmt.Errorf("sql wrapper: IN requires a literal list")
		}
		elems, err := types.Elements(lit.Val)
		if err != nil {
			return fmt.Errorf("sql wrapper: IN list: %w", err)
		}
		if err := sqlPred(b, x.L); err != nil {
			return err
		}
		b.WriteString(" IN (")
		for i, e := range elems {
			if i > 0 {
				b.WriteString(", ")
			}
			if err := sqlLiteral(b, e); err != nil {
				return err
			}
		}
		b.WriteByte(')')
		return nil
	}
	op, ok := sqlOps[x.Op]
	if !ok {
		return fmt.Errorf("sql wrapper: unsupported operator %s", x.Op)
	}
	// Connectives parenthesize both sides; comparisons take flat operands.
	if x.Op == oql.OpAnd || x.Op == oql.OpOr {
		b.WriteByte('(')
		if err := sqlPred(b, x.L); err != nil {
			return err
		}
		b.WriteString(") " + op + " (")
		if err := sqlPred(b, x.R); err != nil {
			return err
		}
		b.WriteByte(')')
		return nil
	}
	if err := sqlPred(b, x.L); err != nil {
		return err
	}
	b.WriteString(" " + op + " ")
	return sqlPred(b, x.R)
}

var sqlOps = map[oql.BinaryOp]string{
	oql.OpEq:  "=",
	oql.OpNe:  "<>",
	oql.OpLt:  "<",
	oql.OpLe:  "<=",
	oql.OpGt:  ">",
	oql.OpGe:  ">=",
	oql.OpAnd: "AND",
	oql.OpOr:  "OR",
}

func sqlLiteral(b *strings.Builder, v types.Value) error {
	switch x := v.(type) {
	case types.Int, types.Float:
		b.WriteString(v.String())
		return nil
	case types.Bool:
		if x {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
		return nil
	case types.Str:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(string(x), "'", "''"))
		b.WriteByte('\'')
		return nil
	default:
		return fmt.Errorf("sql wrapper: cannot encode %s literal", v.Kind())
	}
}
