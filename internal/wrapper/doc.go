package wrapper

import (
	"context"
	"fmt"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/oql"
	"disco/internal/types"
)

// Doc wraps a keyword-search document source (DocStore). Its functionality
// is deliberately weak — get, plus a select restricted to a single equality
// comparison, with no composition beyond select-over-get — matching the
// WAIS-class servers that motivate the capability grammar mechanism.
type Doc struct {
	q Querier
}

// NewDoc returns a wrapper over a document-store querier.
func NewDoc(q Querier) *Doc { return &Doc{q: q} }

// docGrammar is hand-written in the paper's notation: the select production
// admits exactly one equality comparison or one substring containment, and
// does not compose.
const docGrammar = `
a :- b
a :- c
b :- get OPEN SOURCE CLOSE
c :- select OPEN p COMMA b CLOSE
p :- EQ OPEN ATTRIBUTE COMMA CONST CLOSE
p :- CONTAINS OPEN ATTRIBUTE COMMA CONST CLOSE
`

// Grammar implements Wrapper.
func (*Doc) Grammar() *capability.Grammar {
	g, err := capability.Parse(docGrammar)
	if err != nil {
		// The grammar is a compile-time constant; failing to parse it is a
		// programming error.
		panic(fmt.Sprintf("wrapper: doc grammar: %v", err))
	}
	return g
}

// Execute implements Wrapper.
func (w *Doc) Execute(ctx context.Context, expr algebra.Node) (*types.Bag, error) {
	switch x := expr.(type) {
	case *algebra.Get:
		return w.q.Query(ctx, "SCAN "+x.Ref.Extent)
	case *algebra.Select:
		get, ok := x.Input.(*algebra.Get)
		if !ok {
			return nil, &UnsupportedError{Expr: expr, Wrapper: "doc"}
		}
		if field, value, ok := equalityParts(x.Pred); ok {
			return w.q.Query(ctx, fmt.Sprintf("MATCH %s %s '%s'", get.Ref.Extent, field, value))
		}
		if field, value, ok := containsParts(x.Pred); ok {
			return w.q.Query(ctx, fmt.Sprintf("GREP %s %s '%s'", get.Ref.Extent, field, value))
		}
		return nil, &UnsupportedError{Expr: expr, Wrapper: "doc"}
	default:
		return nil, &UnsupportedError{Expr: expr, Wrapper: "doc"}
	}
}

// containsParts deconstructs contains(attr, "text").
func containsParts(pred oql.Expr) (field, value string, ok bool) {
	call, isCall := pred.(*oql.Call)
	if !isCall || call.Fn != "contains" || len(call.Args) != 2 {
		return "", "", false
	}
	id, isIdent := call.Args[0].(*oql.Ident)
	lit, isLit := call.Args[1].(*oql.Literal)
	if !isIdent || !isLit || id.Star {
		return "", "", false
	}
	s, isStr := lit.Val.(types.Str)
	if !isStr {
		return "", "", false
	}
	return id.Name, string(s), true
}

// equalityParts deconstructs attr = literal (either side order).
func equalityParts(pred oql.Expr) (field, value string, ok bool) {
	bin, isBin := pred.(*oql.Binary)
	if !isBin || bin.Op != oql.OpEq {
		return "", "", false
	}
	l, r := bin.L, bin.R
	id, isIdent := l.(*oql.Ident)
	lit, isLit := r.(*oql.Literal)
	if !isIdent || !isLit {
		// Try the mirrored orientation const = attr.
		id, isIdent = r.(*oql.Ident)
		lit, isLit = l.(*oql.Literal)
		if !isIdent || !isLit {
			return "", "", false
		}
	}
	if id.Star {
		return "", "", false
	}
	switch v := lit.Val.(type) {
	case types.Str:
		return id.Name, string(v), true
	case types.Int, types.Float, types.Bool:
		return id.Name, lit.Val.String(), true
	default:
		return "", "", false
	}
}
