package costmodel

import (
	"fmt"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/oql"
)

func get(table string) *algebra.Get {
	return &algebra.Get{Ref: algebra.ExtentRef{Extent: table, Source: table, Attrs: []string{"a"}}}
}

func sel(t *testing.T, pred string, in algebra.Node) *algebra.Select {
	t.Helper()
	e, err := oql.ParseQuery(pred)
	if err != nil {
		t.Fatal(err)
	}
	return &algebra.Select{Pred: e, Input: in}
}

func TestDefaultEstimate(t *testing.T) {
	h := New()
	est := h.Estimate("r0", get("t"))
	if est.Basis != BasisDefault {
		t.Fatalf("basis = %s", est.Basis)
	}
	// §3.3: "a default time cost of 0 and a data cost of 1 is used".
	if est.Time != 0 || est.Rows != 1 {
		t.Errorf("default = (%v, %v), want (0, 1)", est.Time, est.Rows)
	}
}

func TestExactMatch(t *testing.T) {
	h := New()
	expr := sel(t, `a > 10`, get("t"))
	h.Record("r0", expr, 100*time.Millisecond, 50)
	est := h.Estimate("r0", expr)
	if est.Basis != BasisExact {
		t.Fatalf("basis = %s", est.Basis)
	}
	if est.Time != 100*time.Millisecond || est.Rows != 50 {
		t.Errorf("estimate = %+v", est)
	}
}

func TestExactMatchIsPerRepo(t *testing.T) {
	h := New()
	expr := sel(t, `a > 10`, get("t"))
	h.Record("r0", expr, 100*time.Millisecond, 50)
	if est := h.Estimate("r1", expr); est.Basis != BasisDefault {
		t.Errorf("another repo should not match: %s", est.Basis)
	}
}

func TestSmoothingConverges(t *testing.T) {
	h := New(WithAlpha(0.5))
	expr := get("t")
	// Observations trend from 100ms to 200ms; the smoothed estimate must
	// land between, closer to recent values.
	h.Record("r0", expr, 100*time.Millisecond, 10)
	h.Record("r0", expr, 200*time.Millisecond, 20)
	est := h.Estimate("r0", expr)
	if est.Time <= 100*time.Millisecond || est.Time >= 200*time.Millisecond {
		t.Errorf("smoothed time = %v, want between observations", est.Time)
	}
	if est.Time < 150*time.Millisecond {
		t.Errorf("smoothed time = %v, should weight the recent observation", est.Time)
	}
}

func TestBoundedHistory(t *testing.T) {
	h := New(WithMaxKeep(3))
	expr := get("t")
	// Early outliers fall out of the bounded window entirely.
	h.Record("r0", expr, time.Hour, 1000000)
	for i := 0; i < 3; i++ {
		h.Record("r0", expr, 10*time.Millisecond, 5)
	}
	est := h.Estimate("r0", expr)
	if est.Time > 20*time.Millisecond {
		t.Errorf("outlier should have aged out: %v", est.Time)
	}
	if got := h.Observations("r0", expr); got != 3 {
		t.Errorf("observations = %d, want 3", got)
	}
}

func TestCloseMatch(t *testing.T) {
	h := New()
	seen := sel(t, `a > 10`, get("t"))
	similar := sel(t, `a > 99`, get("t"))     // same shape, new constant
	differentOp := sel(t, `a = 10`, get("t")) // comparison operator differs
	h.Record("r0", seen, 80*time.Millisecond, 40)

	est := h.Estimate("r0", similar)
	if est.Basis != BasisClose {
		t.Fatalf("basis = %s, want close", est.Basis)
	}
	if est.Rows != 40 {
		t.Errorf("close rows = %v", est.Rows)
	}
	// §3.3: a close match is one "whose comparisons operators match but
	// whose constants do not match".
	if est := h.Estimate("r0", differentOp); est.Basis != BasisDefault {
		t.Errorf("different operator should not close-match: %s", est.Basis)
	}
}

func TestExactPreferredOverClose(t *testing.T) {
	h := New()
	a := sel(t, `a > 10`, get("t"))
	b := sel(t, `a > 20`, get("t"))
	h.Record("r0", a, 10*time.Millisecond, 1)
	h.Record("r0", b, 90*time.Millisecond, 9)
	est := h.Estimate("r0", a)
	if est.Basis != BasisExact {
		t.Fatalf("basis = %s", est.Basis)
	}
	if est.Rows != 1 {
		t.Errorf("exact estimate contaminated by close observations: %+v", est)
	}
}

func TestShapeSignature(t *testing.T) {
	a := ShapeSignature(sel(t, `a > 10`, get("t")))
	b := ShapeSignature(sel(t, `a > 42`, get("t")))
	c := ShapeSignature(sel(t, `a = 10`, get("t")))
	if a != b {
		t.Errorf("same shape should share signatures:\n%s\n%s", a, b)
	}
	if a == c {
		t.Errorf("different comparison operators must not share signatures: %s", a)
	}
	// Wildcarding reaches join predicates and projections.
	j := &algebra.Join{L: get("t"), R: get("u"), Pred: mustParse(t, `x = 1`)}
	j2 := &algebra.Join{L: get("t"), R: get("u"), Pred: mustParse(t, `x = 2`)}
	if ShapeSignature(j) != ShapeSignature(j2) {
		t.Error("join constants should wildcard")
	}
}

func mustParse(t *testing.T, src string) oql.Expr {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConcurrentRecordEstimate(t *testing.T) {
	h := New()
	done := make(chan struct{})
	expr := get("t")
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			h.Record("r0", expr, time.Duration(i)*time.Millisecond, i)
		}
	}()
	for i := 0; i < 200; i++ {
		_ = h.Estimate("r0", expr)
	}
	<-done
}

func TestEstimateErrorShrinksWithObservations(t *testing.T) {
	// The calibration property behind experiment E4: more recorded calls
	// bring the estimate closer to the steady-state cost.
	steady := 100 * time.Millisecond
	var errs []float64
	for _, k := range []int{1, 2, 4, 8} {
		h := New()
		expr := get("t")
		// First observation is an outlier; the rest are steady.
		h.Record("r0", expr, 500*time.Millisecond, 10)
		for i := 1; i < k; i++ {
			h.Record("r0", expr, steady, 10)
		}
		est := h.Estimate("r0", expr)
		diff := est.Time - steady
		if diff < 0 {
			diff = -diff
		}
		errs = append(errs, float64(diff))
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1] {
			t.Fatalf("estimate error should shrink with more observations: %v", errs)
		}
	}
	if errs[len(errs)-1] >= errs[0]/4 {
		t.Errorf("error after 8 observations (%v) should be well below after 1 (%v)", errs[3], errs[0])
	}
}

func ExampleHistory_Estimate() {
	h := New()
	expr := &algebra.Get{Ref: algebra.ExtentRef{Extent: "person0", Source: "person0"}}
	fmt.Println(h.Estimate("r0", expr).Basis)
	h.Record("r0", expr, 50*time.Millisecond, 2)
	fmt.Println(h.Estimate("r0", expr).Basis)
	// Output:
	// default
	// exact
}

// TestQuantileSlidingWindow: the per-copy window tracks latency quantiles
// across expressions (p50 near the bulk, p99 catching the tail) and slides —
// once enough new observations arrive, old outliers fall out.
func TestQuantileSlidingWindow(t *testing.T) {
	h := New(WithWindow(100))
	if _, ok := h.Quantile("r0", 0.99); ok {
		t.Fatal("quantile over an empty window should report !ok")
	}
	// 99 fast calls and one slow one, spread over two expressions: the
	// window is per copy, not per expression.
	for i := 0; i < 99; i++ {
		expr := get("a")
		if i%2 == 1 {
			expr = get("b")
		}
		h.Record("r0", expr, 2*time.Millisecond, 1)
	}
	h.Record("r0", get("a"), 200*time.Millisecond, 1)

	p50, ok := h.Quantile("r0", 0.5)
	if !ok || p50 != 2*time.Millisecond {
		t.Errorf("p50 = %v, %v; want 2ms", p50, ok)
	}
	p99, ok := h.Quantile("r0", 0.99)
	if !ok || p99 != 2*time.Millisecond {
		t.Errorf("p99 = %v (99 of 100 calls are 2ms); want 2ms", p99)
	}
	p100, ok := h.Quantile("r0", 1.0)
	if !ok || p100 != 200*time.Millisecond {
		t.Errorf("p100 = %v, want the 200ms outlier", p100)
	}

	// Another copy's window is independent.
	if _, ok := h.Quantile("r0b", 0.5); ok {
		t.Error("r0b has no history; Quantile should report !ok")
	}

	// The window slides: 100 new 5ms observations push the outlier out.
	for i := 0; i < 100; i++ {
		h.Record("r0", get("a"), 5*time.Millisecond, 1)
	}
	if p100, _ := h.Quantile("r0", 1.0); p100 != 5*time.Millisecond {
		t.Errorf("after sliding, max = %v, want 5ms", p100)
	}
}
