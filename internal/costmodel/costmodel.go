// Package costmodel implements DISCO's learned cost estimation for calls to
// data sources (paper §3.3). Heterogeneous sources do not export cost
// information, so the mediator records every exec call — the expression,
// the time taken and the amount of data returned — and estimates future
// calls from history:
//
//  1. an exact match (same expression) is estimated by smoothing the
//     recorded observations, keeping only a fixed number of them;
//  2. a close match (same expression shape, different constants — the
//     predicate-based-caching variant the paper cites) smooths over the
//     shape's observations;
//  3. with no history at all the default is time 0 and data 1, which makes
//     the optimizer push the maximum amount of computation to the source
//     and otherwise compare plans on mediator-side cost alone — exactly
//     the behaviour the paper derives.
package costmodel

import (
	"math"
	"sort"
	"sync"
	"time"

	"disco/internal/algebra"
	"disco/internal/oql"
)

// Basis says which rule produced an estimate.
type Basis uint8

// Estimation bases, from most to least informed.
const (
	BasisExact Basis = iota + 1
	BasisClose
	BasisDefault
)

// String returns the lowercase name of the basis.
func (b Basis) String() string {
	switch b {
	case BasisExact:
		return "exact"
	case BasisClose:
		return "close"
	default:
		return "default"
	}
}

// Estimate is a predicted cost for one exec call.
type Estimate struct {
	Time  time.Duration
	Rows  float64
	Basis Basis
}

// DefaultEstimate is the no-history estimate: zero time, one row.
func DefaultEstimate() Estimate {
	return Estimate{Time: 0, Rows: 1, Basis: BasisDefault}
}

type observation struct {
	elapsed time.Duration
	rows    int
}

// History records exec calls and produces estimates. It is safe for
// concurrent use.
type History struct {
	mu      sync.Mutex
	exact   map[string][]observation
	shape   map[string][]observation
	copies  map[string]*copyWindow
	maxKeep int
	alpha   float64
	window  int
}

// DefaultWindow is how many recent latencies the per-copy sliding window
// keeps for quantile estimation.
const DefaultWindow = 64

// copyWindow is one repository's sliding window of recent call latencies,
// across every expression served by that copy. Quantiles over it — not the
// smoothed mean — are what hedging and load balancing consult: a hedge
// trigger needs the tail (p99), and the tail of a smoothed mean is the
// mean.
type copyWindow struct {
	lat  []time.Duration // ring buffer, oldest overwritten first
	next int
}

func (w *copyWindow) add(d time.Duration, size int) {
	if len(w.lat) < size {
		w.lat = append(w.lat, d)
		return
	}
	w.lat[w.next] = d
	w.next = (w.next + 1) % len(w.lat)
}

// Option configures a History.
type Option func(*History)

// WithMaxKeep bounds how many exactly-matching observations are kept per
// signature ("only a fixed number of exactly matching calls are recorded").
func WithMaxKeep(n int) Option {
	return func(h *History) {
		if n > 0 {
			h.maxKeep = n
		}
	}
}

// WithAlpha sets the smoothing factor in (0, 1]; higher weights recent
// observations more.
func WithAlpha(a float64) Option {
	return func(h *History) {
		if a > 0 && a <= 1 {
			h.alpha = a
		}
	}
}

// WithWindow sets how many recent latencies the per-copy sliding window
// keeps for quantile estimation (default DefaultWindow).
func WithWindow(n int) Option {
	return func(h *History) {
		if n > 0 {
			h.window = n
		}
	}
}

// New returns an empty history. Defaults: 8 observations per signature,
// smoothing factor 0.5, DefaultWindow latencies per copy.
func New(opts ...Option) *History {
	h := &History{
		exact:   make(map[string][]observation),
		shape:   make(map[string][]observation),
		copies:  make(map[string]*copyWindow),
		maxKeep: 8,
		alpha:   0.5,
		window:  DefaultWindow,
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Record stores the outcome of one exec call.
func (h *History) Record(repo string, expr algebra.Node, elapsed time.Duration, rows int) {
	ex := repo + "|" + expr.String()
	sh := repo + "|" + ShapeSignature(expr)
	obs := observation{elapsed: elapsed, rows: rows}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.exact[ex] = appendBounded(h.exact[ex], obs, h.maxKeep)
	h.shape[sh] = appendBounded(h.shape[sh], obs, h.maxKeep)
	w, ok := h.copies[repo]
	if !ok {
		w = &copyWindow{}
		h.copies[repo] = w
	}
	w.add(elapsed, h.window)
}

// Quantile returns the q-quantile (0 < q <= 1) of the copy's recent call
// latencies over the sliding window, across every expression the copy
// served. ok is false when the copy has no recorded calls.
func (h *History) Quantile(repo string, q float64) (time.Duration, bool) {
	h.mu.Lock()
	w, found := h.copies[repo]
	if !found || len(w.lat) == 0 {
		h.mu.Unlock()
		return 0, false
	}
	lats := append([]time.Duration(nil), w.lat...)
	h.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(math.Ceil(q*float64(len(lats)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx], true
}

func appendBounded(obs []observation, o observation, max int) []observation {
	obs = append(obs, o)
	if len(obs) > max {
		obs = obs[len(obs)-max:]
	}
	return obs
}

// Estimate predicts the cost of an exec call from history.
func (h *History) Estimate(repo string, expr algebra.Node) Estimate {
	ex := repo + "|" + expr.String()
	sh := repo + "|" + ShapeSignature(expr)
	h.mu.Lock()
	defer h.mu.Unlock()
	if obs := h.exact[ex]; len(obs) > 0 {
		t, r := h.smooth(obs)
		return Estimate{Time: t, Rows: r, Basis: BasisExact}
	}
	if obs := h.shape[sh]; len(obs) > 0 {
		t, r := h.smooth(obs)
		return Estimate{Time: t, Rows: r, Basis: BasisClose}
	}
	return DefaultEstimate()
}

// smooth applies exponential smoothing, oldest first, so recent calls
// dominate: est = alpha*x_n + (1-alpha)*est_{n-1}.
func (h *History) smooth(obs []observation) (time.Duration, float64) {
	t := float64(obs[0].elapsed)
	r := float64(obs[0].rows)
	for _, o := range obs[1:] {
		t = h.alpha*float64(o.elapsed) + (1-h.alpha)*t
		r = h.alpha*float64(o.rows) + (1-h.alpha)*r
	}
	return time.Duration(t), r
}

// Observations reports how many exact observations exist for an expression
// (used by the experiment harness).
func (h *History) Observations(repo string, expr algebra.Node) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.exact[repo+"|"+expr.String()])
}

// ShapeSignature canonicalizes an expression by wildcarding every constant,
// so that selections differing only in comparison constants share a
// signature. This is the "close match" relation of §3.3.
func ShapeSignature(n algebra.Node) string {
	wild := algebra.Transform(n, func(m algebra.Node) algebra.Node {
		switch x := m.(type) {
		case *algebra.Select:
			return &algebra.Select{Pred: wildcard(x.Pred), Input: x.Input}
		case *algebra.Join:
			if x.Pred == nil {
				return x
			}
			return &algebra.Join{L: x.L, R: x.R, Pred: wildcard(x.Pred)}
		case *algebra.Project:
			cols := make([]algebra.Col, len(x.Cols))
			for i, c := range x.Cols {
				cols[i] = algebra.Col{Name: c.Name, Expr: wildcard(c.Expr)}
			}
			return &algebra.Project{Cols: cols, Input: x.Input}
		default:
			return m
		}
	})
	return wild.String()
}

// wildcard replaces literal constants with a placeholder identifier while
// preserving the operator structure (comparison operators must still match
// for a close match, per the paper).
func wildcard(e oql.Expr) oql.Expr {
	switch x := e.(type) {
	case *oql.Literal:
		return &oql.Ident{Name: "_const"}
	case *oql.Unary:
		return &oql.Unary{Op: x.Op, X: wildcard(x.X)}
	case *oql.Binary:
		return &oql.Binary{Op: x.Op, L: wildcard(x.L), R: wildcard(x.R)}
	default:
		return e
	}
}
