package core

import (
	"strings"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/wire"
	"disco/internal/wrapper"
)

// maxPreparedPlans bounds the prepared-statement cache; beyond it the
// oldest entries are evicted first.
const maxPreparedPlans = 256

// preparedPlan is one cached Prepare result: the optimized plan for a query
// text, valid for the catalog version the cache was built against, plus the
// compiled expression programs of the plan's operators. The programs cache
// rides the plan entry, so re-executing a prepared query skips expression
// compilation along with parse/expand/compile/optimize, and is evicted and
// invalidated with it.
type preparedPlan struct {
	plan  algebra.Node
	str   string
	progs *oql.ProgramCache
}

// preparedLookup returns the cached plan and its program cache for a query
// text if the cache is still valid for the given catalog version. A version
// change flushes the whole cache — the §3.3 invalidation rule applied to
// the full pipeline, not just the optimize stage.
func (m *Mediator) preparedLookup(src string, version int64) (preparedPlan, bool) {
	m.prepMu.Lock()
	defer m.prepMu.Unlock()
	if version < m.preparedAt {
		// The caller read the catalog version just before a concurrent
		// change that the cache has already seen: a plain miss, without
		// winding the cache back and flushing entries valid at the newer
		// version (versions only grow).
		return preparedPlan{}, false
	}
	if m.preparedAt != version {
		m.prepared = nil
		m.prepOrder = m.prepOrder[:0]
		m.preparedAt = version
		return preparedPlan{}, false
	}
	p, ok := m.prepared[src]
	return p, ok
}

// preparedStore caches a successful Prepare result under the catalog
// version it was compiled against and returns the entry that ended up in
// the cache (the already-stored one when racing Prepares tie). A result
// whose version the cache has already moved past — a Prepare that started
// before a catalog change and finished after it — is dropped rather than
// stored: storing it would flush every entry valid at the newer version
// for a plan nobody can ever look up again.
func (m *Mediator) preparedStore(src string, version int64, entry preparedPlan) preparedPlan {
	m.prepMu.Lock()
	defer m.prepMu.Unlock()
	if version < m.preparedAt {
		return entry
	}
	if m.preparedAt != version {
		m.prepared = nil
		m.prepOrder = m.prepOrder[:0]
		m.preparedAt = version
	}
	if m.prepared == nil {
		m.prepared = make(map[string]preparedPlan)
	}
	if prev, ok := m.prepared[src]; ok {
		return prev
	}
	for len(m.prepOrder) >= maxPreparedPlans {
		delete(m.prepared, m.prepOrder[0])
		m.prepOrder = m.prepOrder[1:]
	}
	m.prepared[src] = entry
	m.prepOrder = append(m.prepOrder, src)
	return entry
}

// flushPrepared drops every prepared plan while keeping the cache's
// version watermark. Breaker transitions use it: a plan optimized while a
// source was believed dead (availability-penalized costs) must not keep
// serving from the prepared cache after the source's state changes.
func (m *Mediator) flushPrepared() {
	m.prepMu.Lock()
	m.prepared = nil
	m.prepOrder = m.prepOrder[:0]
	m.prepMu.Unlock()
}

// clientFor returns the mediator's pooled wire client for a repository
// address, creating it on first use. Every wrapper instance bound to the
// same address — and the freshness checker — shares one client, so source
// connections persist across queries instead of being dialed per submit.
func (m *Mediator) clientFor(addr string) *wire.Client {
	addr = strings.TrimPrefix(addr, "tcp://")
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.clients[addr]
	if !ok {
		c = wire.NewClient(addr)
		m.clients[addr] = c
	}
	return c
}

// wireCancelsSent sums the cancel frames written across the mediator's
// pooled wire clients — the "abandoned work reported to sources" gauge the
// query trace windows over. Close drops the clients (and their counters),
// so a window straddling Close undercounts rather than erring.
func (m *Mediator) wireCancelsSent() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, c := range m.clients {
		n += c.Stats().CancelsSent.Load()
	}
	return n
}

// Close releases the mediator's pooled source connections and drops the
// wrapper instances holding them. Background half-open probes are refused
// from here on, and the in-flight ones are waited out before the clients
// are released, so no probe ever dials through a released pool. The
// mediator stays usable for queries: a later query redials lazily.
func (m *Mediator) Close() {
	if m.admit != nil {
		// Queued queries are shed promptly with an OverloadError instead of
		// waiting out their queue bound against a mediator releasing its
		// clients; admitted queries run to completion — drain waits for them
		// (bounded by the evaluation deadline) before the clients go away —
		// and the gate stays usable for later queries.
		m.admit.shedAll()
		m.admit.drain()
	}
	m.probeMu.Lock()
	m.probeClosed = true
	m.probeMu.Unlock()
	m.probeWG.Wait()
	m.mu.Lock()
	clients := m.clients
	m.clients = make(map[string]*wire.Client)
	m.wrappers = make(map[string]wrapper.Wrapper)
	m.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}
