package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// shardRows is the people data spread over four shards; shard 3 repeats
// Mary so distinct semantics across shards is observable.
var shardRows = [][][3]interface{}{
	{{1, "Mary", 200}},
	{{2, "Sam", 50}, {3, "Ann", 5}},
	{{4, "Cal", 55}},
	{{5, "Zoe", 120}, {1, "Mary", 200}},
}

func shardStore(t *testing.T, rows [][3]interface{}) *source.RelStore {
	t.Helper()
	s := source.NewRelStore()
	if err := s.CreateTable("people", "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := s.Insert("people", types.Int(int64(r[0].(int))), types.Str(r[1].(string)), types.Int(int64(r[2].(int)))); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

const shardSchema = `
r0 := Repository(address="mem:r0");
r1 := Repository(address="mem:r1");
r2 := Repository(address="mem:r2");
r3 := Repository(address="mem:r3");
w0 := WrapperPostgres();

interface Person (extent person) {
    attribute Short id;
    attribute String name;
    attribute Short salary;
}

extent people of Person wrapper w0 at r0, r1, r2, r3;
`

// shardedMediator declares one logical extent partitioned across four
// in-process repositories.
func shardedMediator(t *testing.T, opts ...Option) *Mediator {
	t.Helper()
	m := New(append([]Option{WithTimeout(2 * time.Second)}, opts...)...)
	for i, rows := range shardRows {
		m.RegisterEngine("r"+string(rune('0'+i)), shardStore(t, rows))
	}
	if err := m.ExecODL(shardSchema); err != nil {
		t.Fatal(err)
	}
	return m
}

// singleMediator holds the same people rows in one repository.
func singleMediator(t *testing.T) *Mediator {
	t.Helper()
	var all [][3]interface{}
	for _, rows := range shardRows {
		all = append(all, rows...)
	}
	m := New(WithTimeout(2 * time.Second))
	m.RegisterEngine("r0", shardStore(t, all))
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 repository r0;
	`); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPartitionedExtentMatchesSingleRepo: the acceptance property — a query
// over a 4-partition extent returns the same bag as the single-repository
// equivalent, including duplicates and distinct semantics.
func TestPartitionedExtentMatchesSingleRepo(t *testing.T) {
	sharded := shardedMediator(t)
	single := singleMediator(t)
	queries := []string{
		`select x from x in people`,
		`select x.name from x in people where x.salary > 10`,
		`select struct(n: x.name, s: x.salary) from x in people where x.salary < 100`,
		`select distinct x.name from x in people`,
		`count(people)`,
		`sum(select x.salary from x in people)`,
	}
	for _, q := range queries {
		got, err := sharded.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := single.Query(q)
		if err != nil {
			t.Fatalf("%s (single): %v", q, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s:\n sharded %s\n single  %s", q, got, want)
		}
	}
}

// TestPartitionedPlanShape: the optimizer rewrites Get(people) into a
// parallel union of per-partition submits with the selection pushed down to
// every shard.
func TestPartitionedPlanShape(t *testing.T) {
	m := shardedMediator(t)
	plan, _, err := m.Prepare(`select x.name from x in people where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	if !strings.Contains(s, "punion(") {
		t.Errorf("plan is not a parallel union: %s", s)
	}
	subs := algebra.Submits(plan)
	if len(subs) != 4 {
		t.Fatalf("plan has %d submits, want 4: %s", len(subs), s)
	}
	seen := map[string]bool{}
	for _, sub := range subs {
		seen[sub.Repo] = true
		if !strings.Contains(sub.Input.String(), "select(") {
			t.Errorf("shard %s did not get the pushed selection: %s", sub.Repo, sub.Input)
		}
	}
	for _, r := range []string{"r0", "r1", "r2", "r3"} {
		if !seen[r] {
			t.Errorf("no submit for partition %s in %s", r, s)
		}
	}
}

// barrierEngine wraps an engine so every Query blocks until `width` queries
// are in flight at once: the test deadlocks (and the barrier times out)
// unless the mediator really fans out in parallel.
type barrierEngine struct {
	inner   source.Engine
	arrive  *sync.WaitGroup
	release chan struct{}
}

func (b barrierEngine) Query(q string) (*types.Bag, error) {
	b.arrive.Done()
	select {
	case <-b.release:
	case <-time.After(2 * time.Second):
		return nil, &testBarrierError{}
	}
	return b.inner.Query(q)
}

func (b barrierEngine) Collections() []string { return b.inner.Collections() }

type testBarrierError struct{}

func (*testBarrierError) Error() string {
	return "barrier never filled: partition submits did not run concurrently"
}

// TestPartitionSubmitsRunConcurrently is the acceptance concurrency check:
// all four shard submits must be in flight at the same time. Run under
// -race it also exercises the scatter-gather merge for data races.
func TestPartitionSubmitsRunConcurrently(t *testing.T) {
	m := New(WithTimeout(5 * time.Second))
	var arrivals sync.WaitGroup
	arrivals.Add(len(shardRows))
	release := make(chan struct{})
	go func() {
		arrivals.Wait()
		close(release)
	}()
	for i, rows := range shardRows {
		m.RegisterEngine("r"+string(rune('0'+i)), barrierEngine{
			inner:   shardStore(t, rows),
			arrive:  &arrivals,
			release: release,
		})
	}
	if err := m.ExecODL(shardSchema); err != nil {
		t.Fatal(err)
	}
	got, err := m.Query(`select x.name from x in people where x.salary > 100`)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.Str("Mary"), types.Str("Zoe"), types.Str("Mary"))
	if !got.Equal(want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestPartitionQueryBySingleShard: extent@repo addresses one partition
// directly — the form residual queries use.
func TestPartitionQueryBySingleShard(t *testing.T) {
	m := shardedMediator(t)
	got := m.MustQuery(`select x.name from x in people@r1`)
	if !got.Equal(types.NewBag(types.Str("Sam"), types.Str("Ann"))) {
		t.Errorf("people@r1 = %s", got)
	}
	if _, err := m.Query(`select x from x in people@r9`); err == nil ||
		!strings.Contains(err.Error(), "no partition") {
		t.Errorf("unknown partition err = %v", err)
	}
}

// TestPartitionDownYieldsResidualOverMissingPartition is the §4 acceptance
// scenario on the wire: with one of four partitions down the answer is
// partial, keeps the answered shards' data, and its residual query names
// only the missing partition; resubmission after recovery completes it.
func TestPartitionDownYieldsResidualOverMissingPartition(t *testing.T) {
	servers := make([]*wire.Server, len(shardRows))
	odl := &strings.Builder{}
	for i, rows := range shardRows {
		srv, err := wire.NewServer("127.0.0.1:0", EngineHandler{Engine: shardStore(t, rows)})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
		odl.WriteString("r" + string(rune('0'+i)) + ` := Repository(address="` + srv.Addr() + `");` + "\n")
	}
	odl.WriteString(`
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at r0, r1, r2, r3;
	`)
	m := New(WithTimeout(400 * time.Millisecond))
	if err := m.ExecODL(odl.String()); err != nil {
		t.Fatal(err)
	}

	const q = `select x.name from x in people where x.salary > 10`

	ans, err := m.QueryPartial(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Complete {
		t.Fatalf("all shards up: expected complete answer, got %s", ans)
	}
	full := ans.Value

	// Shard r2 goes silent.
	servers[2].SetAvailable(false)
	ans, err = m.QueryPartial(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Fatal("expected partial answer with r2 down")
	}
	if len(ans.Unavailable) != 1 || ans.Unavailable[0] != "r2" {
		t.Errorf("unavailable = %v, want [r2]", ans.Unavailable)
	}
	residual := ans.Residual.String()
	if !strings.Contains(residual, "people@r2") {
		t.Errorf("residual does not name the missing partition: %s", residual)
	}
	for _, alive := range []string{"people@r0", "people@r1", "people@r3"} {
		if strings.Contains(residual, alive) {
			t.Errorf("residual re-reads answered partition %s: %s", alive, residual)
		}
	}
	// The answered shards' data is kept in the partial answer.
	for _, name := range []string{"Mary", "Sam", "Zoe"} {
		if !strings.Contains(residual, `"`+name+`"`) {
			t.Errorf("partial answer lost %s from an answered shard: %s", name, residual)
		}
	}

	// r2 recovers: resubmitting the answer-as-query completes it.
	servers[2].SetAvailable(true)
	re, err := m.QueryPartial(residual)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Complete {
		t.Fatalf("resubmission should complete: %s", re.Residual)
	}
	if !re.Value.Equal(full) {
		t.Errorf("resubmitted = %s, want %s", re.Value, full)
	}
}

// TestPartitionTimingsRecorded: every shard call lands in the cost history
// under its own repository, so the optimizer can learn slow shards.
func TestPartitionTimingsRecorded(t *testing.T) {
	m := shardedMediator(t)
	const q = `select x from x in people`
	plan, _, err := m.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	m.MustQuery(q)
	subs := algebra.Submits(plan)
	if len(subs) != 4 {
		t.Fatalf("plan has %d submits, want 4", len(subs))
	}
	for _, sub := range subs {
		if n := m.History().Observations(sub.Repo, sub.Input); n == 0 {
			t.Errorf("no cost observations for shard %s", sub.Repo)
		}
	}
}

// TestPartitionedDumpRoundTrips: DumpODL renders the partition list and the
// dump reproduces the catalog.
func TestPartitionedDumpRoundTrips(t *testing.T) {
	m := shardedMediator(t)
	dump := m.DumpODL()
	if !strings.Contains(dump, "at r0, r1, r2, r3") {
		t.Errorf("dump lacks partition list:\n%s", dump)
	}
	m2 := New(WithTimeout(2 * time.Second))
	for i, rows := range shardRows {
		m2.RegisterEngine("r"+string(rune('0'+i)), shardStore(t, rows))
	}
	if err := m2.ExecODL(dump); err != nil {
		t.Fatalf("reapplying dump: %v\n%s", err, dump)
	}
	if got, want := m2.MustQuery(`count(people)`), m.MustQuery(`count(people)`); !got.Equal(want) {
		t.Errorf("round-tripped catalog answers %s, want %s", got, want)
	}
}

// TestPartitionedExtentOverComposedMediators: the shards of a partitioned
// extent may themselves be mediators (Figure 1 composition). The upstream's
// shard addressing (people@m0) is local — the OQL shipped downstream must
// name the collection plainly, or the downstream mediator rejects it.
func TestPartitionedExtentOverComposedMediators(t *testing.T) {
	var addrs []string
	for i, rows := range shardRows[:2] {
		repo := "r" + string(rune('0'+i))
		lower := New(WithTimeout(250 * time.Millisecond))
		lower.RegisterEngine(repo, shardStore(t, rows))
		if err := lower.ExecODL(`
			` + repo + ` := Repository(address="mem:` + repo + `");
			w0 := WrapperPostgres();
			interface Person (extent person) {
			    attribute Short id;
			    attribute String name;
			    attribute Short salary;
			}
			extent people of Person wrapper w0 repository ` + repo + `;
		`); err != nil {
			t.Fatal(err)
		}
		srv, err := lower.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr())
	}
	upper := New(WithTimeout(2 * time.Second))
	if err := upper.ExecODL(`
		m0 := Repository(address="` + addrs[0] + `");
		m1 := Repository(address="` + addrs[1] + `");
		wmed := Wrapper("mediator");
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper wmed at m0, m1;
	`); err != nil {
		t.Fatal(err)
	}
	got, err := upper.Query(`select x.name from x in people where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !got.Equal(want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestPartitionMaxFanout: a bounded fan-out still drains every shard.
func TestPartitionMaxFanout(t *testing.T) {
	m := shardedMediator(t, WithMaxFanout(2))
	if got := m.MustQuery(`count(people)`); !got.Equal(types.Int(6)) {
		t.Errorf("count = %s, want 6", got)
	}
}
