package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPreparedStatementCacheHit: a repeated query skips the whole front
// half of the pipeline — the second Prepare reports a cache hit with every
// stage timing at zero, and returns the identical plan.
func TestPreparedStatementCacheHit(t *testing.T) {
	m := paperMediator(t)
	const q = `select x.name from x in person where x.salary > 10`

	plan1, cold, err := m.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first Prepare must miss")
	}
	plan2, warm, err := m.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second Prepare must hit the prepared-statement cache")
	}
	if warm.Parse != 0 || warm.Expand != 0 || warm.Compile != 0 || warm.Optimize != 0 {
		t.Errorf("hit ran pipeline stages: parse=%v expand=%v compile=%v optimize=%v",
			warm.Parse, warm.Expand, warm.Compile, warm.Optimize)
	}
	if plan1 != plan2 {
		t.Error("hit must return the cached plan instance")
	}
	if warm.Plan != cold.Plan {
		t.Errorf("hit plan string %q != cold %q", warm.Plan, cold.Plan)
	}
	// The cached plan still executes.
	if _, err := m.Query(q); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedStatementCacheInvalidation: any catalog change (here an
// ExecODL extent drop) must flush the cache — the same query text
// recompiles and reports CacheHit=false, and its answer reflects the new
// catalog.
func TestPreparedStatementCacheInvalidation(t *testing.T) {
	m := paperMediator(t)
	const q = `select x.name from x in person where x.salary > 10`

	if _, tr, err := m.QueryTraced(q); err != nil || tr.CacheHit {
		t.Fatalf("first run: err=%v hit=%v", err, tr != nil && tr.CacheHit)
	}
	if _, tr, err := m.QueryTraced(q); err != nil || !tr.CacheHit {
		t.Fatalf("second run must hit")
	}
	if err := m.ExecODL(`drop extent person1;`); err != nil {
		t.Fatal(err)
	}
	_, tr, err := m.QueryTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CacheHit {
		t.Error("catalog change must invalidate the prepared-statement cache")
	}
	// And the recompiled plan hits again afterwards.
	if _, tr, err := m.QueryTraced(q); err != nil || !tr.CacheHit {
		t.Fatalf("post-invalidation rerun must hit again (err=%v)", err)
	}
}

// TestPreparedStatementCacheViewInvalidation: defining a view is a catalog
// change too — cached plans compiled without it must not survive.
func TestPreparedStatementCacheViewInvalidation(t *testing.T) {
	m := paperMediator(t)
	const q = `select x.name from x in person0`
	if _, _, err := m.QueryTraced(q); err != nil {
		t.Fatal(err)
	}
	if err := m.Define(`define rich as select y from y in person0 where y.salary > 100`); err != nil {
		t.Fatal(err)
	}
	_, tr, err := m.QueryTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CacheHit {
		t.Error("view definition must invalidate the prepared-statement cache")
	}
}

// TestPreparedStatementCacheBounded: the cache never grows past its bound;
// old entries are evicted, not leaked.
func TestPreparedStatementCacheBounded(t *testing.T) {
	m := paperMediator(t)
	for i := 0; i < maxPreparedPlans+20; i++ {
		q := fmt.Sprintf(`select x.name from x in person0 where x.salary > %d`, i)
		if _, _, err := m.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	m.prepMu.Lock()
	n := len(m.prepared)
	order := len(m.prepOrder)
	m.prepMu.Unlock()
	if n > maxPreparedPlans || order > maxPreparedPlans {
		t.Errorf("cache holds %d entries (%d in order), bound %d", n, order, maxPreparedPlans)
	}
	// The newest query is still cached.
	q := fmt.Sprintf(`select x.name from x in person0 where x.salary > %d`, maxPreparedPlans+19)
	if _, tr, err := m.Prepare(q); err != nil || !tr.CacheHit {
		t.Errorf("newest entry evicted? err=%v", err)
	}
}

// TestPreparedStoreStaleVersionDropped: a Prepare that started before a
// catalog change and finishes after it must not flush the entries built at
// the newer version — its result is simply dropped.
func TestPreparedStoreStaleVersionDropped(t *testing.T) {
	m := paperMediator(t)
	const q = `select x.name from x in person where x.salary > 10`
	if _, _, err := m.Prepare(q); err != nil {
		t.Fatal(err)
	}
	v := m.Catalog().Version()
	// Simulate the straggler: a store compiled against a superseded catalog.
	m.preparedStore("straggler", v-1, preparedPlan{})
	if _, tr, err := m.Prepare(q); err != nil || !tr.CacheHit {
		t.Fatalf("stale store flushed the warm cache (err=%v)", err)
	}
	// And a stale lookup neither hits nor rewinds the cache.
	if _, ok := m.preparedLookup(q, v-1); ok {
		t.Fatal("lookup at a superseded version must miss")
	}
	if _, tr, err := m.Prepare(q); err != nil || !tr.CacheHit {
		t.Fatalf("stale lookup rewound the cache (err=%v)", err)
	}
}

// TestPreparedStatementCacheConcurrent: concurrent Prepare/ExecODL must be
// race-free and never serve a plan across a version change.
func TestPreparedStatementCacheConcurrent(t *testing.T) {
	m := paperMediator(t)
	const q = `select x.name from x in person0 where x.salary > 10`
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			view := fmt.Sprintf(`define v%d as select y from y in person0`, i)
			if err := m.Define(view); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := m.Prepare(q); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	time.Sleep(60 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestPreparedPlanSharesCompiledPrograms: repeated executions of a prepared
// query must share one compiled-program cache (expressions lower once per
// prepared statement), and a catalog change must swap in a fresh one along
// with the fresh plan.
func TestPreparedPlanSharesCompiledPrograms(t *testing.T) {
	m := paperMediator(t)
	const q = `select x.name from x in person where x.salary > 10`
	e1, _, err := m.prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if e1.progs == nil {
		t.Fatal("prepared entry carries no program cache")
	}
	e2, tr, err := m.prepare(q)
	if err != nil || !tr.CacheHit {
		t.Fatalf("second prepare: err=%v hit=%v", err, tr != nil && tr.CacheHit)
	}
	if e2.progs != e1.progs {
		t.Error("prepared-statement hit must reuse the compiled programs")
	}
	// A query through the cached entry actually runs with those programs,
	// and repeated executions must not grow the cache — projections
	// synthesize their constructor expression per build, so a misplaced
	// cache key would add an entry per execution (a leak).
	if _, err := m.Query(q); err != nil {
		t.Fatal(err)
	}
	n1 := e1.progs.Len()
	if n1 == 0 {
		t.Fatal("execution compiled no programs into the prepared entry")
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if n2 := e1.progs.Len(); n2 != n1 {
		t.Errorf("program cache grew across executions of one prepared plan: %d -> %d", n1, n2)
	}
	// Same property for a plan with an explicit struct projection: the
	// Project operator synthesizes its constructor expression per build,
	// so its program must be cached under the stable plan node.
	const pq = `select struct(nm: x.name, pay: x.salary) from x in person where x.salary > 10`
	pe, _, err := m.prepare(pq)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Query(pq); err != nil {
			t.Fatal(err)
		}
	}
	pn := pe.progs.Len()
	if _, err := m.Query(pq); err != nil {
		t.Fatal(err)
	}
	if pn2 := pe.progs.Len(); pn2 != pn {
		t.Errorf("projection program cache grew across executions: %d -> %d", pn, pn2)
	}
	// Catalog change: new plan, new program cache.
	if err := m.Define(`define fresh as select y from y in person0`); err != nil {
		t.Fatal(err)
	}
	e3, _, err := m.prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if e3.progs == e1.progs {
		t.Error("catalog change must invalidate the compiled programs with the plan")
	}
}
