package core

import (
	"testing"
	"time"
)

// TestBreakerTransitions drives one source's breaker through its full
// state machine with an injected clock: consecutive failures open it, the
// cooldown half-opens exactly one probe, and the probe's outcome closes or
// re-opens it.
func TestBreakerTransitions(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreakers(3, time.Minute)
	b.now = func() time.Time { return clock }

	// Below the threshold the breaker stays closed, and a success resets
	// the consecutive count.
	b.Failure("r0")
	b.Failure("r0")
	if got := b.State("r0"); got != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	b.Success("r0")
	b.Failure("r0")
	b.Failure("r0")
	if got := b.State("r0"); got != BreakerClosed {
		t.Fatalf("success must reset the consecutive count; state = %v", got)
	}

	// The threshold-th consecutive failure opens it.
	b.Failure("r0")
	if got := b.State("r0"); got != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", got)
	}
	if b.Allow("r0") {
		t.Fatal("open breaker inside its cooldown must refuse")
	}

	// After the cooldown, exactly one probe is admitted.
	clock = clock.Add(time.Minute)
	if !b.Allow("r0") {
		t.Fatal("cooldown elapsed: the half-open probe must be admitted")
	}
	if got := b.State("r0"); got != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if b.Allow("r0") {
		t.Fatal("only one probe at a time may run half-open")
	}

	// A failed probe re-opens and re-arms the cooldown.
	b.Failure("r0")
	if got := b.State("r0"); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Allow("r0") {
		t.Fatal("failed probe must re-arm the cooldown")
	}

	// A successful probe closes it again.
	clock = clock.Add(time.Minute)
	if !b.Allow("r0") {
		t.Fatal("second probe must be admitted after the re-armed cooldown")
	}
	b.Success("r0")
	if got := b.State("r0"); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow("r0") {
		t.Fatal("closed breaker must allow")
	}

	// Sources are independent.
	if got := b.State("r1"); got != BreakerClosed {
		t.Fatalf("untouched source state = %v, want closed", got)
	}
}

// TestBreakerReleaseReturnsProbeSlot: an attempt that Allow admitted as
// the half-open probe but that was abandoned before a verdict (caller
// cancelled, mediator-side failure) must return the slot via Release —
// otherwise the breaker would stay half-open with its probe pinned
// forever and the source could never rejoin routing.
func TestBreakerReleaseReturnsProbeSlot(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreakers(1, time.Minute)
	b.now = func() time.Time { return clock }
	b.Failure("r0")
	clock = clock.Add(time.Minute)
	if !b.Allow("r0") {
		t.Fatal("probe should be admitted after the cooldown")
	}
	if b.Allow("r0") {
		t.Fatal("probe slot should be claimed")
	}
	b.Release("r0")
	if !b.Allow("r0") {
		t.Fatal("Release must return the probe slot so a later attempt can probe")
	}
}

// TestBreakerNotify: state transitions (and only transitions) fire the
// notify hook the mediator uses to flush cost caches.
func TestBreakerNotify(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreakers(2, time.Minute)
	b.now = func() time.Time { return clock }
	calls := 0
	b.SetNotify(func() { calls++ })

	b.Failure("r0") // closed, below threshold: no transition
	if calls != 0 {
		t.Fatalf("notify fired %d times below the threshold", calls)
	}
	b.Failure("r0") // closed -> open
	if calls != 1 {
		t.Fatalf("notify after open = %d, want 1", calls)
	}
	b.Success("r0") // open -> closed
	if calls != 2 {
		t.Fatalf("notify after close = %d, want 2", calls)
	}
	b.Success("r0") // already closed: no transition
	if calls != 2 {
		t.Fatalf("redundant success fired notify (%d)", calls)
	}
}
