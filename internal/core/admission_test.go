package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disco/internal/chaos"
	"disco/internal/wire"
)

// TestAdmissionFastPath: under the concurrency limit with nothing queued,
// acquisition is immediate and release frees the slot.
func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(2, 4, time.Second)
	for i := 0; i < 2; i++ {
		if wait, shed := a.acquire(time.Time{}); shed != nil || wait != 0 {
			t.Fatalf("acquire %d: wait=%v shed=%v", i, wait, shed)
		}
	}
	a.release()
	a.release()
	if wait, shed := a.acquire(time.Time{}); shed != nil || wait != 0 {
		t.Fatalf("reacquire after release: wait=%v shed=%v", wait, shed)
	}
	a.release()
}

// TestAdmissionQueueFullSheds: with the slot held and the queue at its
// bound, the next arrival is shed immediately with the queue-full reason.
func TestAdmissionQueueFullSheds(t *testing.T) {
	a := newAdmission(1, 2, time.Second)
	if _, shed := a.acquire(time.Time{}); shed != nil {
		t.Fatal(shed)
	}
	// Two waiters fill the queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, shed := a.acquire(time.Time{}); shed != nil {
				t.Errorf("queued waiter shed: %v", shed)
				return
			}
			a.release()
		}()
	}
	waitForQueue(t, a, 2)
	_, shed := a.acquire(time.Time{})
	if shed == nil {
		t.Fatal("third arrival should shed: queue is full")
	}
	if !IsOverloadError(shed) {
		t.Fatalf("shed error is not an OverloadError: %v", shed)
	}
	a.release() // grants waiter 1
	wg.Wait()
	a.release() // the slot the last waiter released transfers back
}

// TestAdmissionQueueWaitBound: a waiter that never gets a slot sheds once
// the queue wait bound elapses — and withdraws from the queue.
func TestAdmissionQueueWaitBound(t *testing.T) {
	a := newAdmission(1, 4, 30*time.Millisecond)
	if _, shed := a.acquire(time.Time{}); shed != nil {
		t.Fatal(shed)
	}
	start := time.Now()
	queued, shed := a.acquire(time.Time{})
	if shed == nil {
		t.Fatal("waiter should shed after the wait bound")
	}
	if queued < 20*time.Millisecond {
		t.Fatalf("shed too early: queued %v", queued)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("shed too late: %v", elapsed)
	}
	a.mu.Lock()
	qlen := len(a.queue)
	a.mu.Unlock()
	if qlen != 0 {
		t.Fatalf("timed-out waiter left itself queued (%d waiting)", qlen)
	}
	a.release()
}

// TestAdmissionDeadlineAwareShed: when the gate is saturated and the
// arriving query's remaining deadline cannot cover the observed p50
// service time, it is shed on arrival — no queueing, no slot burned.
func TestAdmissionDeadlineAwareShed(t *testing.T) {
	a := newAdmission(1, 4, time.Second)
	for i := 0; i < 8; i++ {
		a.observe(100 * time.Millisecond)
	}
	if _, shed := a.acquire(time.Time{}); shed != nil {
		t.Fatal(shed)
	}
	// 10ms of deadline cannot cover a 100ms p50.
	queued, shed := a.acquire(time.Now().Add(10 * time.Millisecond))
	if shed == nil {
		t.Fatal("doomed query should shed on arrival")
	}
	if queued != 0 {
		t.Fatalf("doomed query queued for %v before shedding", queued)
	}
	// A roomy deadline queues normally (and gets the slot on release).
	done := make(chan error, 1)
	go func() {
		_, shed := a.acquire(time.Now().Add(time.Minute))
		if shed != nil {
			done <- shed
			return
		}
		a.release()
		done <- nil
	}()
	waitForQueue(t, a, 1)
	a.release()
	if err := <-done; err != nil {
		t.Fatalf("roomy-deadline waiter shed: %v", err)
	}
}

// TestAdmissionCloseShedsWaiters: shedAll (the Mediator.Close path) sheds
// every queued waiter promptly instead of letting them wait out the bound,
// and the gate stays usable afterwards.
func TestAdmissionCloseShedsWaiters(t *testing.T) {
	a := newAdmission(1, 8, time.Minute)
	if _, shed := a.acquire(time.Time{}); shed != nil {
		t.Fatal(shed)
	}
	const waiters = 4
	sheds := make(chan *OverloadError, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, shed := a.acquire(time.Time{})
			sheds <- shed
		}()
	}
	waitForQueue(t, a, waiters)
	start := time.Now()
	a.shedAll()
	for i := 0; i < waiters; i++ {
		select {
		case shed := <-sheds:
			if shed == nil {
				t.Fatal("waiter was granted a slot during shedAll")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter did not return after shedAll")
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shedAll took %v; waiters should return promptly", elapsed)
	}
	a.release()
	// The gate still admits after shedAll.
	if _, shed := a.acquire(time.Time{}); shed != nil {
		t.Fatalf("gate unusable after shedAll: %v", shed)
	}
	a.release()
}

// TestAdmissionQueueFlappingInvariant hammers the gate with acquirers
// whose holds and deadlines vary, flapping the queue between full and
// drained, and asserts the two invariants that make it a gate: executing
// concurrency never exceeds the limit, and every acquisition is exactly
// balanced by a release or a shed (no slot is lost or duplicated). Run
// with -race; the goroutine-leak check catches abandoned waiters.
func TestAdmissionQueueFlappingInvariant(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	const limit = 3
	a := newAdmission(limit, 2, 5*time.Millisecond)
	var (
		executing atomic.Int64
		peak      atomic.Int64
		admitted  atomic.Int64
		shedCount atomic.Int64
		wg        sync.WaitGroup
	)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				var deadline time.Time
				if r.Intn(2) == 0 {
					deadline = time.Now().Add(time.Duration(r.Intn(20)) * time.Millisecond)
				}
				_, shed := a.acquire(deadline)
				if shed != nil {
					shedCount.Add(1)
					continue
				}
				n := executing.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				if n > limit {
					t.Errorf("%d queries executing; the limit is %d", n, limit)
				}
				time.Sleep(time.Duration(r.Intn(2)) * time.Millisecond)
				executing.Add(-1)
				admitted.Add(1)
				a.observe(time.Millisecond)
				a.release()
			}
		}(g)
	}
	wg.Wait()
	if admitted.Load() == 0 {
		t.Fatal("flapping run admitted nothing")
	}
	if shedCount.Load() == 0 {
		t.Fatal("16 clients against 3 slots and 2 queue seats never shed")
	}
	a.mu.Lock()
	inflight, qlen := a.inflight, len(a.queue)
	a.mu.Unlock()
	if inflight != 0 || qlen != 0 {
		t.Fatalf("gate did not drain: inflight=%d queued=%d", inflight, qlen)
	}
	t.Logf("flapping: %d admitted, %d shed, peak concurrency %d",
		admitted.Load(), shedCount.Load(), peak.Load())
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
}

// TestMediatorCloseWithQueriesQueued: Close while queries wait at the gate
// sheds them as OverloadErrors; it neither deadlocks nor grants them.
func TestMediatorCloseWithQueriesQueued(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	slowStore := shardStore(t, shardRows[0])
	srv, err := wire.NewServer("127.0.0.1:0", EngineHandler{Engine: slowStore})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetLatency(200 * time.Millisecond)

	m := New(WithTimeout(2*time.Second), WithAdmission(1, 8, time.Minute))
	if err := m.ExecODL(fmt.Sprintf(`
		r0 := Repository(address=%q);
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 repository r0;
	`, srv.Addr())); err != nil {
		t.Fatal(err)
	}

	// One query holds the only slot (the server's latency keeps it there);
	// more queue behind it.
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := m.Query(`select x.name from x in people`)
			results <- err
		}()
	}
	waitForQueue(t, m.admit, 3)

	m.Close()
	var sheds, successes int
	for i := 0; i < 4; i++ {
		select {
		case err := <-results:
			switch {
			case err == nil:
				successes++
			case IsOverloadError(err):
				sheds++
			default:
				t.Errorf("queued query failed with a non-overload error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("query stuck after Close: waiters were not shed")
		}
	}
	if sheds != 3 {
		t.Errorf("Close shed %d queued queries, want 3 (the admitted one runs to completion)", sheds)
	}
	if successes != 1 {
		t.Errorf("%d queries succeeded, want 1: the in-flight query finishes, the queued ones shed", successes)
	}
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
}

// TestQueryShedReturnsOverloadError: end to end through the public API, a
// query refused by the gate surfaces as an *OverloadError with Shed marked
// on its trace — and is distinguishable from unavailability.
func TestQueryShedReturnsOverloadError(t *testing.T) {
	m := shardedMediator(t, WithAdmission(1, 1, 20*time.Millisecond))
	defer m.Close()

	// Prime, then saturate the gate from goroutines and collect at least
	// one shed.
	if _, err := m.Query(`select x.name from x in people`); err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup
		shedSeen atomic.Int64
	)
	until := time.Now().Add(300 * time.Millisecond)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(until) {
				_, tr, err := m.QueryTraced(`select x.name from x in people`)
				if err == nil {
					continue
				}
				var oe *OverloadError
				if !errors.As(err, &oe) {
					t.Errorf("saturated gate returned a non-overload error: %v", err)
					return
				}
				if tr.Shed != 1 {
					t.Error("OverloadError without Shed marked on the trace")
					return
				}
				shedSeen.Add(1)
			}
		}()
	}
	wg.Wait()
	if shedSeen.Load() == 0 {
		t.Skip("no shed observed (machine too fast for 8 clients to saturate 1 slot)")
	}
	shed, _, _ := m.OverloadStats()
	if shed < shedSeen.Load() {
		t.Errorf("OverloadStats sheds %d < observed %d", shed, shedSeen.Load())
	}
}

// TestRetryBudgetRatio pins the budget arithmetic: a cold mediator gets a
// few free retries, the budget then refuses, and submit traffic earns more
// (~10% of recent submits).
func TestRetryBudgetRatio(t *testing.T) {
	m := New()
	free := 0
	for m.allowRetry() {
		m.retries.Add(1)
		free++
		if free > 1000 {
			t.Fatal("retry budget never exhausts")
		}
	}
	if free == 0 {
		t.Fatal("a cold mediator should grant at least one retry")
	}
	if free > 10 {
		t.Fatalf("a cold mediator granted %d free retries; the floor should be small", free)
	}
	m.submits.Add(1000)
	granted := 0
	for m.allowRetry() {
		m.retries.Add(1)
		granted++
		if granted > 1000 {
			t.Fatal("retry budget never exhausts after submits")
		}
	}
	// retries*10 < submits+32: 1000 submits fund ~100 total retries.
	if granted < 50 || granted > 150 {
		t.Fatalf("1000 submits funded %d more retries; want ~10%%", granted)
	}
}

// TestRetryBudgetExhaustion drives a mediator against a chaos link that
// drops every answer mid-frame: the first transients earn budgeted
// retries, and once the budget is spent further transients degrade
// directly, counting RetryBudgetExhausted.
func TestRetryBudgetExhaustion(t *testing.T) {
	store := shardStore(t, shardRows[0])
	srv, err := wire.NewServer("127.0.0.1:0", EngineHandler{Engine: store})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy, err := chaos.NewProxy(srv.Addr(), 11)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	m := New(WithTimeout(300 * time.Millisecond))
	defer m.Close()
	if err := m.ExecODL(fmt.Sprintf(`
		r0 := Repository(address=%q);
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 repository r0;
	`, proxy.Addr())); err != nil {
		t.Fatal(err)
	}

	proxy.SetFault(chaos.Flaky{DropAfter: 10})
	for i := 0; i < 12; i++ {
		ans, err := m.QueryPartial(`select x.name from x in people`)
		if err != nil {
			t.Fatalf("query %d: transient faults must degrade to residuals, got error: %v", i, err)
		}
		if ans.Complete {
			t.Fatalf("query %d: complete answer through a link dropping every frame", i)
		}
	}
	_, retried, exhausted := m.OverloadStats()
	if retried == 0 {
		t.Error("no budgeted retries: transients should earn a retry while budget lasts")
	}
	if exhausted == 0 {
		t.Error("budget never exhausted: 12 all-transient queries must outrun the cold budget")
	}
	t.Logf("retry budget: %d retried, %d refused", retried, exhausted)

	// Recovery: a healthy link and a few successful submits refill the
	// budget's denominator and answers become complete again.
	proxy.SetFault(chaos.Healthy{})
	recovered := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ans, err := m.QueryPartial(`select x.name from x in people`)
		if err == nil && ans.Complete {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("no recovery after the flaky link healed")
	}
}

// waitForQueue blocks until the gate's queue holds n waiters.
func waitForQueue(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		qlen := len(a.queue)
		a.mu.Unlock()
		if qlen >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters", n)
}
