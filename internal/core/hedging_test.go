package core

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitCondition polls cond until it holds or the deadline passes.
func waitCondition(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// TestLoadBalancingSpreadsReads: with WithLoadBalancing every copy of a
// shard serves a share of the reads. Without it the replica of a healthy
// primary would never see a query (it exists only as a failover path).
func TestLoadBalancingSpreadsReads(t *testing.T) {
	m, servers := replicatedMediator(t, WithLoadBalancing())
	want := wantAll()
	for i := 0; i < 60; i++ {
		v, err := m.Query(`select x from x in people`)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(want) {
			t.Fatalf("answer = %s, want %s", v, want)
		}
	}
	for _, repo := range []string{"r0", "r0b", "r1", "r1b"} {
		if n := servers[repo].Stats().Queries.Load(); n == 0 {
			t.Errorf("copy %s served no queries under load balancing", repo)
		}
	}
}

// TestHedgedRequestRescuesSlowCopy is the hedging contract end to end: a
// consistently slow copy leading the candidate order is rescued by a
// backup submit to its replica, the answer stays correct, and the
// cancelled loser is invisible to the control loops — its breaker is
// never poisoned (threshold 1 would open it on a single false verdict)
// and its cost history records no observation.
func TestHedgedRequestRescuesSlowCopy(t *testing.T) {
	m, servers := replicatedMediator(t,
		WithHedging(5*time.Millisecond), WithBreaker(1, time.Minute))
	// r0 is alive but two orders of magnitude slower than its replica;
	// unhedged, every read of shard 0 would wait it out.
	servers["r0"].SetLatency(100 * time.Millisecond)
	want := wantAll()
	for i := 0; i < 10; i++ {
		start := time.Now()
		v, err := m.Query(`select x from x in people`)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(want) {
			t.Fatalf("answer = %s, want %s", v, want)
		}
		if i > 0 && time.Since(start) > 90*time.Millisecond {
			// After the first query the history knows the fast copy; no
			// read should ever track the slow copy's latency again.
			t.Errorf("query %d took %v, want well under the slow copy's 100ms", i, time.Since(start))
		}
	}
	if fired := m.hedgesFired.Load(); fired == 0 {
		t.Error("no hedges fired against a 100ms straggler")
	}
	if won := m.hedgesWon.Load(); won == 0 {
		t.Error("no hedge won against a 100ms straggler")
	}
	// The cancelled losers must leave no trace: r0 answered nothing, so
	// its breaker stays closed (a single unavailability verdict would
	// open it) and its latency window stays empty.
	for _, repo := range []string{"r0", "r0b", "r1", "r1b"} {
		if got := m.BreakerState(repo); got != BreakerClosed {
			t.Errorf("breaker %s = %v, want closed: a hedged loser poisoned it", repo, got)
		}
	}
	if _, ok := m.history.Quantile("r0", 0.5); ok {
		t.Error("cancelled hedge losers recorded cost-history observations for r0")
	}
}

// TestHedgeTraceCounters: QueryTraced surfaces the hedges fired and won
// during the query's execution window.
func TestHedgeTraceCounters(t *testing.T) {
	m, servers := replicatedMediator(t, WithHedging(5*time.Millisecond))
	servers["r0"].SetLatency(100 * time.Millisecond)
	_, tr, err := m.QueryTraced(`select x from x in people`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.HedgesFired == 0 {
		t.Errorf("Trace.HedgesFired = 0, want at least one for a 100ms straggler")
	}
	if tr.HedgesWon == 0 {
		t.Errorf("Trace.HedgesWon = 0, want at least one")
	}
}

// TestCloseWaitsForProbes: background half-open probes are tracked — Close
// blocks until the in-flight probe delivers its verdict instead of letting
// it dial through a released client pool, and a probe requested after
// Close is refused with its breaker slot returned.
func TestCloseWaitsForProbes(t *testing.T) {
	m, servers := replicatedMediator(t, WithBreaker(1, 10*time.Millisecond))
	if _, err := m.Query(`select x from x in people`); err != nil {
		t.Fatal(err) // warm the wrappers and clients
	}
	m.breakers.Failure("r0")
	time.Sleep(15 * time.Millisecond) // past the cooldown
	servers["r0"].SetLatency(150 * time.Millisecond)
	base := runtime.NumGoroutine()
	m.maybeProbe("r0")
	start := time.Now()
	m.Close()
	waited := time.Since(start)
	if got := m.BreakerState("r0"); got != BreakerClosed {
		t.Errorf("breaker r0 = %v after Close, want closed: Close must wait out the in-flight probe", got)
	}
	if waited < 100*time.Millisecond {
		t.Errorf("Close returned after %v, want >= the probe's 150ms ping", waited)
	}
	if !waitCondition(2*time.Second, func() bool { return runtime.NumGoroutine() <= base }) {
		t.Errorf("probe goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), base)
	}

	// After Close no probe may start; the slot Allow claimed must come
	// back, or the breaker would be pinned half-open forever.
	m.breakers.Failure("r0")
	time.Sleep(15 * time.Millisecond)
	g0 := runtime.NumGoroutine()
	m.maybeProbe("r0")
	if !m.breakers.Admittable("r0") {
		t.Error("probe refused after Close left the half-open slot claimed")
	}
	if !waitCondition(2*time.Second, func() bool { return runtime.NumGoroutine() <= g0 }) {
		t.Errorf("probe started after Close: %d goroutines, want <= %d", runtime.NumGoroutine(), g0)
	}
}

// TestBreakersConcurrentSlotAccounting races Allow/Success/Failure/Release
// against each other (run under -race): the half-open probe slot must stay
// consistent when a deferred dial settles a verdict it never claimed a
// slot for, while a concurrent probe holds the slot.
func TestBreakersConcurrentSlotAccounting(t *testing.T) {
	b := NewBreakers(1, time.Millisecond)
	b.Failure("x")
	time.Sleep(2 * time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (g + i) % 5 {
				case 0:
					b.Allow("x")
				case 1:
					b.Success("x") // a deferred dial that answered, slotless
				case 2:
					b.Failure("x")
				case 3:
					b.Release("x")
				default:
					b.State("x")
					b.Admittable("x")
				}
			}
		}(g)
	}
	wg.Wait()
	// Whatever interleaving happened, the slot must be claimable again:
	// drive the breaker open, wait out the cooldown, and claim.
	b.Failure("x")
	time.Sleep(2 * time.Millisecond)
	if !b.Allow("x") {
		t.Fatal("probe slot not claimable after concurrent accounting")
	}
	b.Release("x")
	if !b.Allow("x") {
		t.Fatal("released probe slot not claimable again")
	}
}

// TestProbeSlotRaceUnderTraffic hammers a flapping replicated extent from
// many goroutines (run under -race): deferred dials settle verdicts
// without claiming the probe slot while background probes hold it, and
// the breakers must come out of it able to recover.
func TestProbeSlotRaceUnderTraffic(t *testing.T) {
	m, servers := replicatedMediator(t,
		WithBreaker(1, time.Millisecond), WithTimeout(120*time.Millisecond))
	stopFlap := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		up := false
		for {
			select {
			case <-stopFlap:
				return
			case <-time.After(20 * time.Millisecond):
				servers["r0"].SetAvailable(up)
				servers["r0b"].SetAvailable(!up)
				up = !up
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				// Partial evaluation keeps a flapping shard's query legal:
				// the answer may be residual, never racy.
				if _, err := m.QueryPartial(`select x from x in people`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stopFlap)
	flapWG.Wait()
	servers["r0"].SetAvailable(true)
	servers["r0b"].SetAvailable(true)
	ok := waitCondition(5*time.Second, func() bool {
		if _, err := m.Query(`select x from x in people`); err != nil {
			return false
		}
		for _, repo := range []string{"r0", "r0b", "r1", "r1b"} {
			if m.BreakerState(repo) != BreakerClosed {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Error("breakers did not recover once the copies came back: probe-slot accounting corrupted")
	}
}

// TestAttemptCtxShares: the failover deadline split gives one attempt an
// equal share of the time left over the round's remaining candidates,
// derived from a single clock read, leaves the last candidate under the
// parent deadline, and always returns a cancellable context (racing arms
// are called off through it).
func TestAttemptCtxShares(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	pd, _ := parent.Deadline()

	actx, acancel := attemptCtx(parent, 4)
	defer acancel()
	d, ok := actx.Deadline()
	if !ok {
		t.Fatal("attempt context lost the deadline")
	}
	if share := time.Until(d); share < 150*time.Millisecond || share > 260*time.Millisecond {
		t.Errorf("share for 4 remaining candidates = %v, want ~250ms of the 1s budget", share)
	}

	last, lcancel := attemptCtx(parent, 1)
	if d, _ := last.Deadline(); !d.Equal(pd) {
		t.Errorf("last candidate deadline = %v, want the parent's %v", d, pd)
	}
	lcancel()
	if last.Err() == nil {
		t.Error("attempt context for the last candidate is not cancellable")
	}

	free, fcancel := attemptCtx(context.Background(), 3)
	if _, ok := free.Deadline(); ok {
		t.Error("deadline-free parent grew a deadline")
	}
	fcancel()
	if free.Err() == nil {
		t.Error("attempt context without deadline is not cancellable")
	}
}
