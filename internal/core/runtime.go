package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"syscall"
	"time"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/catalog"
	"disco/internal/oql"
	"disco/internal/physical"
	"disco/internal/types"
	"disco/internal/wire"
	"disco/internal/wrapper"
)

// buildPhysical wires a logical plan to the mediator's runtime. progs is
// the plan's compiled-program cache (shared across executions of a
// prepared plan); nil compiles per execution.
func (m *Mediator) buildPhysical(plan algebra.Node, progs *oql.ProgramCache) (*physical.Plan, error) {
	rt := &physical.Runtime{
		Submit:    m.submit,
		Resolver:  valueResolver{m: m},
		MaxFanout: m.maxFanout,
		Programs:  progs,
	}
	return physical.Build(plan, rt)
}

// submit is the mediator side of the exec physical algorithm (§3.3): it
// finds the wrapper serving the expression, translates the expression into
// the source namespace via the local transformation maps, executes it,
// renames and type-checks the results, and records the call in the cost
// history.
func (m *Mediator) submit(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
	w, err := m.wrapperForExpr(repo, expr)
	if err != nil {
		return nil, err
	}
	src, err := algebra.ToSource(expr)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	bag, err := w.Execute(ctx, src)
	if err != nil {
		return nil, classifySourceError(repo, err)
	}
	elapsed := time.Since(start)

	// Reformat: rename attributes back into the mediator namespace.
	refs := exprRefs(expr)
	bag, err = types.BagMap(bag, func(e types.Value) (types.Value, error) {
		st, ok := e.(*types.Struct)
		if !ok {
			return e, nil
		}
		for _, ref := range refs {
			st = algebra.FromSource(ref, st)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}

	// Run-time type check (§2.1): full-object retrievals must conform to
	// the mediator interface.
	if get, ok := expr.(*algebra.Get); ok && get.Ref.Iface != "" {
		if err := wrapper.CheckResult(m.catalog.Schema(), get.Ref.Iface, bag); err != nil {
			return nil, err
		}
	}

	// Learn the call's cost (§3.3).
	m.history.Record(repo, expr, elapsed, bag.Len())
	return bag, nil
}

func exprRefs(expr algebra.Node) []algebra.ExtentRef {
	var refs []algebra.ExtentRef
	algebra.Walk(expr, func(n algebra.Node) {
		if g, ok := n.(*algebra.Get); ok {
			refs = append(refs, g.Ref)
		}
	})
	return refs
}

// classifySourceError separates unavailability (no answer: timeouts,
// refused connections) from genuine query failures reported by a live
// source. Partial evaluation applies only to the former.
func classifySourceError(repo string, err error) error {
	var already *physical.UnavailableError
	if errors.As(err, &already) {
		return err
	}
	var upstream *wire.PartialUpstreamError
	if errors.As(err, &upstream) {
		// A mediator source answered partially: from here that is an
		// unavailability, and this mediator's partial evaluation produces
		// its own resubmittable answer.
		return &physical.UnavailableError{Repo: repo, Err: err}
	}
	var remote *wire.RemoteError
	if errors.As(err, &remote) {
		return err // the source answered: a real error
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return &physical.UnavailableError{Repo: repo, Err: err}
	case isUnavailableNetErr(err):
		return &physical.UnavailableError{Repo: repo, Err: err}
	default:
		return err
	}
}

// isUnavailableNetErr recognizes network errors that mean "no answer" —
// timeouts, refused connections and dial-phase failures. Errors from a
// source that was reached and answered (e.g. a reset mid-answer) are NOT
// unavailability: partial evaluation must not silently degrade genuine
// source-side failures into partial answers.
func isUnavailableNetErr(err error) bool {
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) && opErr.Op == "dial" {
		// The connection was never established: the source is unreachable.
		return true
	}
	return false
}

// wrapperForExpr locates the wrapper instance serving a submit expression:
// every extent read by the expression must be declared with the same
// wrapper object.
func (m *Mediator) wrapperForExpr(repo string, expr algebra.Node) (wrapper.Wrapper, error) {
	refs := exprRefs(expr)
	if len(refs) == 0 {
		return nil, fmt.Errorf("mediator: submit to %s reads no extents", repo)
	}
	wrapperName := ""
	for _, ref := range refs {
		me, err := m.catalog.Extent(ref.Extent)
		if err != nil {
			return nil, err
		}
		if !me.HasPartition(repo) {
			return nil, fmt.Errorf("mediator: extent %s lives at %s, not %s", ref.Extent, strings.Join(me.Partitions(), ","), repo)
		}
		if wrapperName == "" {
			wrapperName = me.Wrapper
		} else if me.Wrapper != wrapperName {
			return nil, fmt.Errorf("mediator: extents of one submit use different wrappers (%s, %s)", wrapperName, me.Wrapper)
		}
	}
	return m.wrapperInstance(wrapperName, repo)
}

// wrapperInstance returns (instantiating on first use) the wrapper object
// bound to a repository.
func (m *Mediator) wrapperInstance(wrapperName, repoName string) (wrapper.Wrapper, error) {
	key := wrapperName + "@" + repoName
	m.mu.Lock()
	if w, ok := m.wrappers[key]; ok {
		m.mu.Unlock()
		return w, nil
	}
	m.mu.Unlock()

	wdecl, err := m.catalog.Wrapper(wrapperName)
	if err != nil {
		return nil, err
	}
	repo, err := m.catalog.Repository(repoName)
	if err != nil {
		return nil, err
	}
	w, err := m.instantiate(wdecl, repo)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.wrappers[key] = w
	m.mu.Unlock()
	return w, nil
}

// instantiate builds a wrapper implementation for a wrapper declaration and
// repository address.
func (m *Mediator) instantiate(w *catalog.Wrapper, repo *catalog.Repository) (wrapper.Wrapper, error) {
	switch w.Kind {
	case "sql":
		q, err := m.querierFor(repo, wire.LangSQL)
		if err != nil {
			return nil, err
		}
		// An ops property restricts the advertised operator set, e.g.
		// Wrapper("sql", ops="get,select") models a server that filters
		// but cannot project or join.
		if spec := w.Props["ops"]; spec != "" {
			ops, err := parseOpsSpec(spec)
			if err != nil {
				return nil, fmt.Errorf("mediator: wrapper %s: %w", w.Name, err)
			}
			return wrapper.NewSQLWithOps(q, ops), nil
		}
		return wrapper.NewSQL(q), nil
	case "scan":
		q, err := m.querierFor(repo, wire.LangSQL)
		if err != nil {
			return nil, err
		}
		return wrapper.NewScan(wrapper.NewSQL(q)), nil
	case "doc":
		q, err := m.querierFor(repo, wire.LangDoc)
		if err != nil {
			return nil, err
		}
		return wrapper.NewDoc(q), nil
	case "csv":
		path := w.Props["path"]
		collection := w.Props["collection"]
		if path == "" || collection == "" {
			return nil, fmt.Errorf("mediator: csv wrapper %s needs path and collection properties", w.Name)
		}
		return wrapper.NewCSV(collection, path)
	case "mediator":
		addr := repo.Address
		if strings.HasPrefix(addr, "mem:") {
			return nil, fmt.Errorf("mediator: mediator wrapper %s needs a network address", w.Name)
		}
		return &mediatorWrapper{client: m.clientFor(addr)}, nil
	default:
		return nil, fmt.Errorf("mediator: unknown wrapper kind %q", w.Kind)
	}
}

// parseOpsSpec parses an ops="get,select,..." wrapper property into an
// operator set. Composition, connectives and all comparisons are enabled
// whenever any operator beyond get is present.
func parseOpsSpec(spec string) (capability.OpSet, error) {
	ops := capability.OpSet{}
	for _, tok := range strings.Split(spec, ",") {
		switch strings.TrimSpace(strings.ToLower(tok)) {
		case "get":
			ops.Get = true
		case "select":
			ops.Select = true
		case "project":
			ops.Project = true
		case "join":
			ops.Join = true
		case "distinct":
			ops.Distinct = true
		case "":
		default:
			return ops, fmt.Errorf("unknown operator %q in ops spec", tok)
		}
	}
	if ops.Select || ops.Project || ops.Join || ops.Distinct {
		ops.Compose = true
		ops.Connectives = true
	}
	return ops, nil
}

// querierFor resolves a repository address to a querier: mem: addresses
// bind to registered in-process engines, everything else dials TCP.
func (m *Mediator) querierFor(repo *catalog.Repository, lang string) (wrapper.Querier, error) {
	addr := repo.Address
	if name, ok := strings.CutPrefix(addr, "mem:"); ok {
		m.mu.Lock()
		eng, found := m.engines[name]
		m.mu.Unlock()
		if !found {
			return nil, fmt.Errorf("mediator: no in-process engine %q (repository %s)", name, repo.Name)
		}
		return wrapper.EngineQuerier{Engine: eng}, nil
	}
	if addr == "" {
		return nil, fmt.Errorf("mediator: repository %s has no address", repo.Name)
	}
	// One pooled client per address, shared across wrapper instances and
	// queries: submits reuse persistent connections instead of dialing.
	return wrapper.RemoteQuerier{Client: m.clientFor(addr), Lang: lang}, nil
}
