package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"syscall"
	"time"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/catalog"
	"disco/internal/costmodel"
	"disco/internal/oql"
	"disco/internal/physical"
	"disco/internal/types"
	"disco/internal/wire"
	"disco/internal/wrapper"
)

// buildPhysical wires a logical plan to the mediator's runtime. progs is
// the plan's compiled-program cache (shared across executions of a
// prepared plan); nil compiles per execution.
func (m *Mediator) buildPhysical(plan algebra.Node, progs *oql.ProgramCache) (*physical.Plan, error) {
	rt := &physical.Runtime{
		Submit:    m.submit,
		Resolver:  valueResolver{m: m},
		MaxFanout: m.maxFanout,
		Programs:  progs,
	}
	return physical.Build(plan, rt)
}

// submit is the mediator side of the exec physical algorithm (§3.3) with
// replica failover: it executes the expression at the shard's primary and,
// when the primary is classified unavailable, retries the shard's declared
// replicas before giving up. Partial evaluation therefore fires only when
// every copy of a shard is down. The per-source circuit breaker routes
// around copies that recently failed (a warm breaker skips a dead primary
// without re-paying its timeout) and the learned cost history orders the
// healthy copies fastest-first.
func (m *Mediator) submit(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
	refs := exprRefs(expr)
	m.countShardReads(refs)
	bag, err := m.submitShard(ctx, repo, expr)
	if err != nil && isUnavailableErr(err) && allStandby(refs) {
		// The unreachable copy is the *new* placement of a migrating shard
		// (the standby branch of a dual-read). The old placement branch still
		// holds every row, so the standby degrades to an empty answer instead
		// of poisoning the query with a residual. The breaker has already
		// recorded the failure; the migration driver sees it before cutover.
		return types.NewBag(), nil
	}
	return bag, err
}

// countShardReads bumps the per-shard traffic counters, one per logical
// shard read. Standby (dual-read new placement) branches are skipped: they
// duplicate a counted read of the same shard.
func (m *Mediator) countShardReads(refs []algebra.ExtentRef) {
	m.shardMu.Lock()
	for _, r := range refs {
		if r.Standby {
			continue
		}
		m.shardReads[r.QualifiedName()]++
	}
	m.shardMu.Unlock()
}

// allStandby reports whether every extent the expression reads is a
// dual-read standby copy (and there is at least one).
func allStandby(refs []algebra.ExtentRef) bool {
	if len(refs) == 0 {
		return false
	}
	for _, r := range refs {
		if !r.Standby {
			return false
		}
	}
	return true
}

// submitShard routes one shard read through failover, load balancing and
// hedging.
func (m *Mediator) submitShard(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
	cands := m.submitCandidates(repo, expr)
	if len(cands) == 1 {
		bag, err := m.submitOnce(ctx, repo, expr)
		m.noteOutcome(repo, err)
		// A one-copy source gets the same background probe pass as a
		// replica group: after an open breaker's cooldown, recovery is
		// rediscovered by a ping instead of a user query re-paying the
		// full timeout.
		m.maybeProbe(repo)
		return bag, err
	}
	ordered := m.orderCandidates(cands, expr)
	if m.loadBalance {
		ordered = m.rebalance(ordered)
	}
	bag, err := m.submitFailover(ctx, repo, expr, ordered)
	// Half-open probes ride query traffic: copies this query routed around
	// while their breaker was open are pinged in the background once their
	// cooldown elapses, so a recovered primary rejoins without a user query
	// paying for the discovery.
	for _, cand := range cands {
		m.maybeProbe(cand)
	}
	return bag, err
}

// rebalance spreads read traffic across a shard's healthy copies: the head
// of the candidate list is drawn at weighted random from the leading run
// of closed-breaker copies, weight inverse to the copy's recent median
// latency. An unmeasured copy weighs as much as the fastest measured one
// (new replicas must attract traffic to be learned at all), and every
// weight is floored at 1/20 of the fastest so a slow copy keeps ~5% of the
// traffic — the trickle that notices when it speeds up. Failover order
// behind the head is untouched.
func (m *Mediator) rebalance(cands []string) []string {
	lead := 0
	for _, c := range cands {
		if m.breakers.State(c) != BreakerClosed {
			break
		}
		lead++
	}
	if lead < 2 {
		return cands
	}
	weights := make([]float64, lead)
	maxW := 0.0
	for i := 0; i < lead; i++ {
		if p50, ok := m.history.Quantile(cands[i], 0.5); ok {
			lat := p50
			if lat < 100*time.Microsecond {
				lat = 100 * time.Microsecond
			}
			weights[i] = 1 / float64(lat)
			if weights[i] > maxW {
				maxW = weights[i]
			}
		}
	}
	if maxW == 0 {
		maxW = 1
	}
	total := 0.0
	for i := range weights {
		if weights[i] == 0 {
			weights[i] = maxW
		} else if weights[i] < maxW/20 {
			weights[i] = maxW / 20
		}
		total += weights[i]
	}
	r := rand.Float64() * total
	pick := 0
	for i, w := range weights {
		if r -= w; r < 0 {
			pick = i
			break
		}
	}
	if pick == 0 {
		return cands
	}
	out := make([]string, 0, len(cands))
	out = append(out, cands[pick])
	out = append(out, cands[:pick]...)
	return append(out, cands[pick+1:]...)
}

// maybeProbe launches one background liveness probe of a source whose
// breaker is not closed and whose cooldown has elapsed. Allow claims the
// half-open probe slot, so concurrent queries start at most one probe per
// source. The probe's verdict follows noteOutcome's taxonomy: only an
// answer closes the breaker, only unreachability (timeout, dead network)
// re-arms it, and a mediator-side failure that never consulted the source
// (catalog lookup, a closed client) merely returns the probe slot.
// Probes run on tracked goroutines: Close refuses new ones and waits for
// those in flight, so no probe ever dials through a client pool Close has
// already released.
func (m *Mediator) maybeProbe(repo string) {
	if m.breakers.State(repo) == BreakerClosed || !m.breakers.Allow(repo) {
		return
	}
	m.probeMu.Lock()
	if m.probeClosed {
		m.probeMu.Unlock()
		// Allow claimed the half-open probe slot; hand it back, or the
		// breaker would stay pinned half-open with no probe in flight.
		m.breakers.Release(repo)
		return
	}
	m.probeWG.Add(1)
	m.probeMu.Unlock()
	go func() {
		defer m.probeWG.Done()
		switch err := m.pingRepo(repo); {
		case err == nil:
			m.breakers.Success(repo)
		case errors.Is(err, context.DeadlineExceeded) || isUnavailableNetErr(err):
			m.breakers.Failure(repo)
		default:
			m.breakers.Release(repo)
		}
	}()
}

// pingRepo checks a repository's liveness: in-process engines by registry
// lookup, remote repositories by a wire ping within the evaluation
// deadline.
func (m *Mediator) pingRepo(repo string) error {
	r, err := m.catalog.Repository(repo)
	if err != nil {
		return err
	}
	if name, ok := strings.CutPrefix(r.Address, "mem:"); ok {
		m.mu.Lock()
		_, found := m.engines[name]
		m.mu.Unlock()
		if !found {
			return fmt.Errorf("mediator: no in-process engine %q", name)
		}
		return nil
	}
	//lint:allow ctxflow breaker probes deliberately outlive the query that triggered them (probeWG-tracked, bounded by the mediator timeout): a caller walking away must not strand the breaker half-open
	ctx, cancel := context.WithTimeout(context.Background(), m.timeout)
	defer cancel()
	return m.clientFor(r.Address).Ping(ctx)
}

// submitFailover tries the shard's candidate copies: copies whose breaker
// admits them first — raced, so an unavailable or straggling copy hands
// over to the next without the shard waiting out every timeout in series —
// then, only if none of those answered, the copies whose breaker refused,
// as a last resort. The breaker may therefore delay a copy behind the
// healthy ones, but it can never leave a copy undialed while the shard
// goes unanswered ("a breaker can delay but never forge a partial
// answer"). A real (answered) error aborts immediately; classified
// unavailability moves on to the next copy.
//
// The evaluation budget splits over the healthy copies first; the
// deferred ones re-split whatever is left only if reached. Splitting over
// all copies up front would let a crowd of breaker-refused replicas
// starve the first healthy one of deadline.
func (m *Mediator) submitFailover(ctx context.Context, shard string, expr algebra.Node, cands []string) (*types.Bag, error) {
	var healthy, deferred []string
	for _, cand := range cands {
		if m.breakers.Admittable(cand) {
			healthy = append(healthy, cand)
		} else {
			deferred = append(deferred, cand)
		}
	}
	// The deferred tail collectively reserves one deadline share: enough
	// that the last resort is still dialable after the healthy copies
	// burn their shares, without a crowd of refused copies starving the
	// first healthy one.
	reserve := 0
	if len(deferred) > 0 {
		reserve = 1
	}
	attempted := 0
	var lastUnavail error
	if len(healthy) > 0 && ctx.Err() == nil {
		bag, err, done := m.raceArms(ctx, expr, healthy, reserve, &attempted, &deferred)
		if done {
			return bag, err
		}
		if err != nil {
			lastUnavail = err
		}
	}
	for i, cand := range deferred {
		if ctx.Err() != nil {
			break
		}
		actx, cancel := attemptCtx(ctx, len(deferred)-i)
		bag, err := m.submitOnce(actx, cand, expr)
		m.noteOutcome(cand, err)
		cancel()
		attempted++
		if err == nil {
			return bag, nil
		}
		if !isUnavailableErr(err) {
			// The source answered with a genuine failure (or the caller
			// ended the query): no replica may mask it.
			return nil, err
		}
		lastUnavail = err
	}
	if attempted == 0 {
		// The caller's context died before any copy could be dialed.
		err := ctx.Err()
		if err == nil {
			err = errors.New("no candidate attempted")
		}
		return nil, classifySourceError(ctx, shard, fmt.Errorf("mediator: submit to %s: %w", shard, err))
	}
	return nil, &physical.UnavailableError{
		Repo: shard,
		Err:  fmt.Errorf("no replica answered: %w", lastUnavail),
	}
}

// armResult carries one racing arm's outcome back to the coordinator.
type armResult struct {
	idx int
	bag *types.Bag
	err error
}

// raceArms drives a shard's healthy copies as racing arms. The first arm
// launches immediately; another launches when the newest arm resolves
// unavailable (plain failover), when it outlasts the hedge trigger
// (hedged request), or when the scatter-gather straggler hook fires. The
// first answer — or answered error — wins and the losers are cancelled. A
// cancelled loser classifies as caller-side termination, so its breaker
// verdict is a slot Release (neither success nor failure) and its cost
// history records nothing: losing a race is not evidence about the
// source.
//
// done=false means every arm resolved unavailable (err holds the last
// unavailability) and the caller should fall through to the
// breaker-deferred copies. Copies whose breaker refuses the launch-time
// Allow (the state moved since partitioning) are appended to deferred.
func (m *Mediator) raceArms(ctx context.Context, expr algebra.Node, healthy []string, reserve int, attempted *int, deferred *[]string) (*types.Bag, error, bool) {
	results := make(chan armResult, len(healthy))
	var cancels []context.CancelFunc
	var isHedge []bool
	next := 0
	inflight := 0
	launch := func(hedge bool) bool {
		for next < len(healthy) {
			cand := healthy[next]
			remaining := len(healthy) - next + reserve
			next++
			if !m.breakers.Allow(cand) {
				*deferred = append(*deferred, cand)
				continue
			}
			actx, cancel := attemptCtx(ctx, remaining)
			idx := len(cancels)
			cancels = append(cancels, cancel)
			isHedge = append(isHedge, hedge)
			if hedge {
				m.hedgesFired.Add(1)
			}
			inflight++
			*attempted++
			go func() {
				bag, err := m.submitOnce(actx, cand, expr)
				m.noteOutcome(cand, err)
				results <- armResult{idx: idx, bag: bag, err: err}
			}()
			return true
		}
		return false
	}
	// cancels grows only in this goroutine, so the deferred sweep sees
	// every arm; cancelling the winner's context after its result is
	// already in hand is a no-op.
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()

	var hedgeC <-chan time.Time
	rearmHedge := func() {
		hedgeC = nil
		if m.hedge && next < len(healthy) {
			hedgeC = time.After(m.hedgeDelay(healthy))
		}
	}
	hurry := physical.HurryChan(ctx)
	if !m.hedge {
		hurry = nil
	}

	if !launch(false) {
		return nil, nil, false
	}
	rearmHedge()

	var lastUnavail error
	for {
		// inflight >= 1 here: after a result either a new arm launches or,
		// when none is left, the race returns — so the select cannot block
		// forever (every arm's context is bounded by the caller's).
		select {
		case r := <-results:
			inflight--
			if r.err == nil {
				if isHedge[r.idx] {
					m.hedgesWon.Add(1)
				}
				return r.bag, nil, true
			}
			if !isUnavailableErr(r.err) {
				return nil, r.err, true
			}
			lastUnavail = r.err
			if launch(false) {
				rearmHedge()
			} else if inflight == 0 {
				return nil, lastUnavail, false
			}
		case <-hedgeC:
			if m.allowHedge() && launch(true) {
				rearmHedge()
			} else {
				hedgeC = nil
			}
		case <-hurry:
			hurry = nil
			if m.allowHedge() && launch(true) {
				rearmHedge()
			}
		}
	}
}

// hedgeDelay is the elapsed time past which a submit counts as in the
// tail: the smallest historical p99 among the shard's healthy copies — a
// call that has outlasted the best copy's p99 would almost surely have
// finished there, so re-issuing is worth the duplicate work. The attempted
// copy's own p99 would never rescue a copy that is consistently slow (its
// own tail tracks its slowness). The hedge floor bounds the trigger from
// below when the history is cold or the copies are microsecond-fast.
func (m *Mediator) hedgeDelay(cands []string) time.Duration {
	best := time.Duration(0)
	for _, cand := range cands {
		if p99, ok := m.history.Quantile(cand, 0.99); ok && (best == 0 || p99 < best) {
			best = p99
		}
	}
	if best > m.hedgeFloor {
		return best
	}
	return m.hedgeFloor
}

// allowHedge is the global hedge budget: hedges may be at most ~1/8 of
// total submit traffic (plus a small burst allowance for cold starts), so
// a slow spell degrades into bounded duplicate work instead of a stampede
// that doubles the load on already-struggling replicas.
func (m *Mediator) allowHedge() bool {
	return m.hedgesFired.Load()*8 < m.submits.Load()+64
}

// attemptCtx derives the deadline for one failover attempt: an equal share
// of the time left until the parent deadline, over this and the remaining
// candidates of the same round. The share derives from a single clock
// read — measuring "time left" and "now" separately would silently shrink
// it. The last candidate (and deadline-free contexts) run under the parent
// deadline; the context is always cancellable so a racing arm can be
// called off.
func attemptCtx(ctx context.Context, remaining int) (context.Context, context.CancelFunc) {
	deadline, ok := ctx.Deadline()
	if !ok || remaining <= 1 {
		return context.WithCancel(ctx)
	}
	now := time.Now()
	share := deadline.Sub(now) / time.Duration(remaining)
	if share <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithDeadline(ctx, now.Add(share))
}

// submitCandidates returns the repositories holding a copy of everything
// the submit expression reads, primary first: the intersection of the
// replica groups of the expression's extent refs (an expression reading
// two extents can only fail over to a repository holding both).
func (m *Mediator) submitCandidates(repo string, expr algebra.Node) []string {
	var cands []string
	for _, ref := range exprRefs(expr) {
		group := ref.Replicas
		if len(group) == 0 {
			if me, err := m.catalog.Extent(ref.Extent); err == nil {
				group = me.ReplicaGroup(repo)
			}
		}
		if len(group) == 0 {
			group = []string{repo}
		}
		if cands == nil {
			cands = group
		} else {
			cands = intersectOrdered(cands, group)
		}
	}
	if len(cands) == 0 {
		return []string{repo}
	}
	return cands
}

// intersectOrdered keeps the members of a that also appear in b, in a's
// order.
func intersectOrdered(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	out := a[:0:0]
	for _, x := range a {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

// orderCandidates sorts a shard's copies for routing: breaker-healthy
// copies first (closed before half-open before open), then by the learned
// cost history's smoothed response time — the cost-model consult that
// prefers the fastest live replica. Copies with no history sort after
// measured ones (the optimizer's zero-time default would otherwise make
// every unknown replica leapfrog a known-fast primary), and ties keep
// declaration order, so the primary leads until the history says
// otherwise.
func (m *Mediator) orderCandidates(cands []string, expr algebra.Node) []string {
	type ranked struct {
		repo string
		rank int
		time time.Duration
	}
	rs := make([]ranked, len(cands))
	for i, cand := range cands {
		r := ranked{repo: cand}
		switch m.breakers.State(cand) {
		case BreakerClosed:
			r.rank = 0
		case BreakerHalfOpen:
			r.rank = 1
		default:
			r.rank = 2
		}
		est := m.history.Estimate(cand, expr)
		if est.Basis == costmodel.BasisDefault {
			r.time = time.Duration(1<<63 - 1)
		} else {
			r.time = est.Time
		}
		rs[i] = r
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].rank != rs[j].rank {
			return rs[i].rank < rs[j].rank
		}
		return rs[i].time < rs[j].time
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.repo
	}
	return out
}

// noteOutcome feeds one submit attempt's result into the source's circuit
// breaker: only a real answer counts as success (data, a remote error, or
// an upstream mediator's partial answer — each proves the source alive),
// only classified unavailability counts as failure, and everything else —
// caller-side termination, mediator-side failures that never dialed the
// source (wrapper lookup, translation) — records no verdict, merely
// returning any half-open probe slot the attempt had claimed.
func (m *Mediator) noteOutcome(repo string, err error) {
	var upstream *wire.PartialUpstreamError
	var remote *wire.RemoteError
	switch {
	case err == nil:
		m.breakers.Success(repo)
	case errors.As(err, &upstream), errors.As(err, &remote):
		// Checked before the unavailability case: classify wraps an
		// upstream partial answer in an UnavailableError for partial
		// evaluation, but for the breaker that source answered.
		m.breakers.Success(repo)
	case isUnavailableErr(err):
		m.breakers.Failure(repo)
	default:
		m.breakers.Release(repo)
	}
}

func isUnavailableErr(err error) bool {
	var ue *physical.UnavailableError
	return errors.As(err, &ue)
}

// submitOnce is submitAttempt plus the retry budget: a classified
// transient failure (the source was reached and then the exchange broke —
// a mid-answer drop, a refused dial with deadline to spare, a shed by an
// overloaded server) gets exactly one re-attempt after a jittered backoff,
// provided the token-bucket retry budget admits it. The budget accrues
// with submit traffic (~10% of recent submits, the hedging-budget
// pattern), so retries help at low failure rates and self-disable under
// collapse — when most submits fail, retrying each one would double the
// load on sources already drowning. A transient that cannot be retried,
// or whose retry fails transiently again, degrades to an UnavailableError
// so replica failover and partial evaluation take over: the caller sees a
// residual, not a torn connection.
func (m *Mediator) submitOnce(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
	bag, err := m.submitAttempt(ctx, repo, expr)
	var tr *TransientError
	if err == nil || !errors.As(err, &tr) {
		return bag, err
	}
	if ctx.Err() == nil {
		if m.allowRetry() {
			m.retries.Add(1)
			retryBackoff(ctx)
			if ctx.Err() == nil {
				bag, err = m.submitAttempt(ctx, repo, expr)
				if err == nil {
					return bag, nil
				}
			}
		} else {
			m.retryExhausted.Add(1)
		}
	}
	if errors.As(err, &tr) {
		return nil, &physical.UnavailableError{Repo: tr.Repo, Err: tr.Err}
	}
	return nil, err
}

// allowRetry is the retry budget: retries may be at most ~1/10 of total
// submit traffic, plus a small burst allowance so a cold mediator can
// still retry its first flakes.
func (m *Mediator) allowRetry() bool {
	return m.retries.Load()*10 < m.submits.Load()+32
}

// retryBackoff sleeps a short jittered delay before the one-shot retry, so
// a source that dropped a burst of connections at once is not re-hit by
// the whole burst in lockstep. Bounded by the attempt's context.
func retryBackoff(ctx context.Context) {
	d := 500*time.Microsecond + time.Duration(rand.Int63n(int64(2*time.Millisecond)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// submitAttempt executes a submit expression at one repository: it finds
// the wrapper serving the expression, translates the expression into the
// source namespace via the local transformation maps, executes it, renames
// and type-checks the results, and records the call in the cost history.
func (m *Mediator) submitAttempt(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
	m.submits.Add(1) // hedge-budget denominator: every source attempt counts
	w, err := m.wrapperForExpr(repo, expr)
	if err != nil {
		return nil, err
	}
	src, err := algebra.ToSource(expr)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	bag, err := w.Execute(ctx, src)
	if err != nil {
		return nil, classifySourceError(ctx, repo, err)
	}
	elapsed := time.Since(start)

	// Reformat: rename attributes back into the mediator namespace.
	refs := exprRefs(expr)
	bag, err = types.BagMap(bag, func(e types.Value) (types.Value, error) {
		st, ok := e.(*types.Struct)
		if !ok {
			return e, nil
		}
		for _, ref := range refs {
			st = algebra.FromSource(ref, st)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}

	// Run-time type check (§2.1): full-object retrievals must conform to
	// the mediator interface.
	if get, ok := expr.(*algebra.Get); ok && get.Ref.Iface != "" {
		if err := wrapper.CheckResult(m.catalog.Schema(), get.Ref.Iface, bag); err != nil {
			return nil, err
		}
	}

	// Learn the call's cost (§3.3).
	m.history.Record(repo, expr, elapsed, bag.Len())
	return bag, nil
}

func exprRefs(expr algebra.Node) []algebra.ExtentRef {
	var refs []algebra.ExtentRef
	algebra.Walk(expr, func(n algebra.Node) {
		if g, ok := n.(*algebra.Get); ok {
			refs = append(refs, g.Ref)
		}
	})
	return refs
}

// evalDeadlineKey marks contexts whose deadline is the mediator's own
// evaluation timer — the §4 "designated time" — as opposed to a deadline
// the caller brought.
type evalDeadlineKey struct{}

// withEvalDeadline bounds ctx by the mediator's evaluation deadline and
// tags it as such, so the error classifier can tell the §4 designated
// time (source unavailability) from a caller-imposed bound (a failed
// query from the caller's own impatience or cancellation).
func withEvalDeadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.WithValue(ctx, evalDeadlineKey{}, true), d)
}

func hasEvalDeadline(ctx context.Context) bool {
	v, _ := ctx.Value(evalDeadlineKey{}).(bool)
	return v
}

// TransientError classifies a source failure as transient: the source was
// reached (or is expected right back) and the exchange broke in a way a
// prompt retry has a real chance of fixing — a connection dropped
// mid-answer, a refused dial while the attempt still has deadline to
// spare, an overloaded server shedding load. It never escapes the submit
// path: submitOnce either retries it away under the retry budget or
// degrades it to an UnavailableError so failover and partial evaluation
// take over.
type TransientError struct {
	Repo string
	Err  error
}

// Error implements the error interface.
func (e *TransientError) Error() string {
	return fmt.Sprintf("transient failure at %s: %v", e.Repo, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// refusedRetryFloor is the deadline headroom below which a refused dial is
// not worth retrying: the backoff plus redial would eat what little
// deadline remains, so classify it as plain unavailability instead.
const refusedRetryFloor = 25 * time.Millisecond

// classifySourceError separates three kinds of failure — plus the calls
// the caller itself ended. Unavailability (no answer: timeouts, dead
// dials) is what partial evaluation and replica failover react to.
// Transient failures (mid-answer connection drops, refused dials with
// deadline to spare, server-side load sheds) are retried once under the
// retry budget before degrading to unavailability. Genuine query failures
// reported by a live source stay errors — degrading them would hide real
// failures in partial answers. And a user cancelling a query (or a
// caller-imposed deadline firing) is none of these: it must not become a
// partial answer and it must not count against the source's circuit
// breaker.
func classifySourceError(ctx context.Context, repo string, err error) error {
	var already *physical.UnavailableError
	if errors.As(err, &already) {
		return err
	}
	var upstream *wire.PartialUpstreamError
	if errors.As(err, &upstream) {
		// A mediator source answered partially: from here that is an
		// unavailability, and this mediator's partial evaluation produces
		// its own resubmittable answer.
		return &physical.UnavailableError{Repo: repo, Err: err}
	}
	var overloaded *wire.OverloadedError
	if errors.As(err, &overloaded) {
		// The server shed the request to protect itself: it is alive, and
		// a moment later it may well admit a retry.
		return &TransientError{Repo: repo, Err: err}
	}
	var remote *wire.RemoteError
	if errors.As(err, &remote) {
		return err // the source answered: a real error
	}
	if errors.Is(err, context.Canceled) && ctx.Err() != nil {
		// The call died because the caller's context ended (the user
		// cancelled, or the query already concluded): caller-side, not a
		// verdict on the source.
		return fmt.Errorf("mediator: source call to %s cancelled: %w", repo, err)
	}
	if errors.Is(err, context.DeadlineExceeded) &&
		errors.Is(ctx.Err(), context.DeadlineExceeded) && !hasEvalDeadline(ctx) {
		// The deadline that fired came with the caller's context, not from
		// the mediator's evaluation timer: caller-side as well.
		return fmt.Errorf("mediator: source call to %s ended by caller deadline: %w", repo, err)
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return &physical.UnavailableError{Repo: repo, Err: err}
	case isTimeoutNetErr(err):
		return &physical.UnavailableError{Repo: repo, Err: err}
	case isRefusedErr(err):
		// A refused dial means nothing is listening *right now* — which a
		// restarting server fixes in milliseconds. With deadline to spare
		// the retry budget gets a shot at it; otherwise it is ordinary
		// unavailability.
		if deadlineHeadroom(ctx) >= refusedRetryFloor {
			return &TransientError{Repo: repo, Err: err}
		}
		return &physical.UnavailableError{Repo: repo, Err: err}
	case isMidAnswerDropErr(err):
		// The connection was established and then broke under the
		// exchange: the source (or the path to it) flaked, not the query.
		return &TransientError{Repo: repo, Err: err}
	case isUnavailableNetErr(err):
		return &physical.UnavailableError{Repo: repo, Err: err}
	default:
		return err
	}
}

// deadlineHeadroom is the time left before ctx's deadline (effectively
// infinite when it has none).
func deadlineHeadroom(ctx context.Context) time.Duration {
	d, ok := ctx.Deadline()
	if !ok {
		return time.Duration(1<<63 - 1)
	}
	return time.Until(d)
}

// isTimeoutNetErr recognizes network-level timeouts (no answer within the
// attempt deadline) — always unavailability, never transient: the retry
// would wait out the same silence.
func isTimeoutNetErr(err error) bool {
	var netErr net.Error
	return errors.As(err, &netErr) && netErr.Timeout()
}

// isRefusedErr recognizes refused dials (ECONNREFUSED in any wrapping).
func isRefusedErr(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}

// isMidAnswerDropErr recognizes connections that were established and then
// broke during the exchange: resets, broken pipes, unexpected EOFs, and
// read/write failures on a live connection. These are the classic
// transient faults — a flaky link, a crashing-and-restarting peer, a
// proxy cutting a long response — where one prompt retry usually
// succeeds. (Timeouts are excluded by classification order.)
func isMidAnswerDropErr(err error) bool {
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	//lint:allow eofidentity classification site: asks whether a transport error is EOF-shaped (wrapped EOFs included), not whether a stream ended
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) && (opErr.Op == "read" || opErr.Op == "write") {
		return true
	}
	return false
}

// isUnavailableNetErr recognizes network errors that mean "no answer" —
// timeouts, refused connections and dial-phase failures. Errors from a
// source that was reached and answered (e.g. a reset mid-answer) are NOT
// unavailability: partial evaluation must not silently degrade genuine
// source-side failures into partial answers.
func isUnavailableNetErr(err error) bool {
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) && opErr.Op == "dial" {
		// The connection was never established: the source is unreachable.
		return true
	}
	return false
}

// wrapperForExpr locates the wrapper instance serving a submit expression:
// every extent read by the expression must be declared with the same
// wrapper object.
func (m *Mediator) wrapperForExpr(repo string, expr algebra.Node) (wrapper.Wrapper, error) {
	refs := exprRefs(expr)
	if len(refs) == 0 {
		return nil, fmt.Errorf("mediator: submit to %s reads no extents", repo)
	}
	wrapperName := ""
	for _, ref := range refs {
		me, err := m.catalog.Extent(ref.Extent)
		if err != nil {
			return nil, err
		}
		if !me.HasPartition(repo) && !m.catalog.IsMigrationEndpoint(ref.Extent, repo) {
			// A live migration's endpoints accept reads while its record
			// exists: the destination before placement lists it (copying,
			// dual-read) and the released source after cutover, until the
			// pre-cutover readers drain and the record clears. Anything
			// else is a routing bug.
			return nil, fmt.Errorf("mediator: extent %s lives at %s, not %s", ref.Extent, strings.Join(me.Partitions(), ","), repo)
		}
		if wrapperName == "" {
			wrapperName = me.Wrapper
		} else if me.Wrapper != wrapperName {
			return nil, fmt.Errorf("mediator: extents of one submit use different wrappers (%s, %s)", wrapperName, me.Wrapper)
		}
	}
	return m.wrapperInstance(wrapperName, repo)
}

// wrapperInstance returns (instantiating on first use) the wrapper object
// bound to a repository.
func (m *Mediator) wrapperInstance(wrapperName, repoName string) (wrapper.Wrapper, error) {
	key := wrapperName + "@" + repoName
	m.mu.Lock()
	if w, ok := m.wrappers[key]; ok {
		m.mu.Unlock()
		return w, nil
	}
	m.mu.Unlock()

	wdecl, err := m.catalog.Wrapper(wrapperName)
	if err != nil {
		return nil, err
	}
	repo, err := m.catalog.Repository(repoName)
	if err != nil {
		return nil, err
	}
	w, err := m.instantiate(wdecl, repo)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.wrappers[key] = w
	m.mu.Unlock()
	return w, nil
}

// instantiate builds a wrapper implementation for a wrapper declaration and
// repository address.
func (m *Mediator) instantiate(w *catalog.Wrapper, repo *catalog.Repository) (wrapper.Wrapper, error) {
	switch w.Kind {
	case "sql":
		q, err := m.querierFor(repo, wire.LangSQL)
		if err != nil {
			return nil, err
		}
		// An ops property restricts the advertised operator set, e.g.
		// Wrapper("sql", ops="get,select") models a server that filters
		// but cannot project or join.
		if spec := w.Props["ops"]; spec != "" {
			ops, err := parseOpsSpec(spec)
			if err != nil {
				return nil, fmt.Errorf("mediator: wrapper %s: %w", w.Name, err)
			}
			return wrapper.NewSQLWithOps(q, ops), nil
		}
		return wrapper.NewSQL(q), nil
	case "scan":
		q, err := m.querierFor(repo, wire.LangSQL)
		if err != nil {
			return nil, err
		}
		return wrapper.NewScan(wrapper.NewSQL(q)), nil
	case "doc":
		q, err := m.querierFor(repo, wire.LangDoc)
		if err != nil {
			return nil, err
		}
		return wrapper.NewDoc(q), nil
	case "csv":
		path := w.Props["path"]
		collection := w.Props["collection"]
		if path == "" || collection == "" {
			return nil, fmt.Errorf("mediator: csv wrapper %s needs path and collection properties", w.Name)
		}
		return wrapper.NewCSV(collection, path)
	case "mediator":
		addr := repo.Address
		if strings.HasPrefix(addr, "mem:") {
			return nil, fmt.Errorf("mediator: mediator wrapper %s needs a network address", w.Name)
		}
		return &mediatorWrapper{client: m.clientFor(addr)}, nil
	default:
		return nil, fmt.Errorf("mediator: unknown wrapper kind %q", w.Kind)
	}
}

// parseOpsSpec parses an ops="get,select,..." wrapper property into an
// operator set. Composition, connectives and all comparisons are enabled
// whenever any operator beyond get is present.
func parseOpsSpec(spec string) (capability.OpSet, error) {
	ops := capability.OpSet{}
	for _, tok := range strings.Split(spec, ",") {
		switch strings.TrimSpace(strings.ToLower(tok)) {
		case "get":
			ops.Get = true
		case "select":
			ops.Select = true
		case "project":
			ops.Project = true
		case "join":
			ops.Join = true
		case "distinct":
			ops.Distinct = true
		case "":
		default:
			return ops, fmt.Errorf("unknown operator %q in ops spec", tok)
		}
	}
	if ops.Select || ops.Project || ops.Join || ops.Distinct {
		ops.Compose = true
		ops.Connectives = true
	}
	return ops, nil
}

// querierFor resolves a repository address to a querier: mem: addresses
// bind to registered in-process engines, everything else dials TCP.
func (m *Mediator) querierFor(repo *catalog.Repository, lang string) (wrapper.Querier, error) {
	addr := repo.Address
	if name, ok := strings.CutPrefix(addr, "mem:"); ok {
		m.mu.Lock()
		eng, found := m.engines[name]
		m.mu.Unlock()
		if !found {
			return nil, fmt.Errorf("mediator: no in-process engine %q (repository %s)", name, repo.Name)
		}
		return wrapper.EngineQuerier{Engine: eng}, nil
	}
	if addr == "" {
		return nil, fmt.Errorf("mediator: repository %s has no address", repo.Name)
	}
	// One pooled client per address, shared across wrapper instances and
	// queries: submits reuse persistent connections instead of dialing.
	return wrapper.RemoteQuerier{Client: m.clientFor(addr), Lang: lang}, nil
}
