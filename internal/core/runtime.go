package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"syscall"
	"time"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/catalog"
	"disco/internal/costmodel"
	"disco/internal/oql"
	"disco/internal/physical"
	"disco/internal/types"
	"disco/internal/wire"
	"disco/internal/wrapper"
)

// buildPhysical wires a logical plan to the mediator's runtime. progs is
// the plan's compiled-program cache (shared across executions of a
// prepared plan); nil compiles per execution.
func (m *Mediator) buildPhysical(plan algebra.Node, progs *oql.ProgramCache) (*physical.Plan, error) {
	rt := &physical.Runtime{
		Submit:    m.submit,
		Resolver:  valueResolver{m: m},
		MaxFanout: m.maxFanout,
		Programs:  progs,
	}
	return physical.Build(plan, rt)
}

// submit is the mediator side of the exec physical algorithm (§3.3) with
// replica failover: it executes the expression at the shard's primary and,
// when the primary is classified unavailable, retries the shard's declared
// replicas before giving up. Partial evaluation therefore fires only when
// every copy of a shard is down. The per-source circuit breaker routes
// around copies that recently failed (a warm breaker skips a dead primary
// without re-paying its timeout) and the learned cost history orders the
// healthy copies fastest-first.
func (m *Mediator) submit(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
	cands := m.submitCandidates(repo, expr)
	if len(cands) == 1 {
		bag, err := m.submitOnce(ctx, repo, expr)
		m.noteOutcome(repo, err)
		return bag, err
	}
	bag, err := m.submitFailover(ctx, repo, expr, m.orderCandidates(cands, expr))
	// Half-open probes ride query traffic: copies this query routed around
	// while their breaker was open are pinged in the background once their
	// cooldown elapses, so a recovered primary rejoins without a user query
	// paying for the discovery.
	for _, cand := range cands {
		m.maybeProbe(cand)
	}
	return bag, err
}

// maybeProbe launches one background liveness probe of a source whose
// breaker is not closed and whose cooldown has elapsed. Allow claims the
// half-open probe slot, so concurrent queries start at most one probe per
// source. The probe's verdict follows noteOutcome's taxonomy: only an
// answer closes the breaker, only unreachability (timeout, dead network)
// re-arms it, and a mediator-side failure that never consulted the source
// (catalog lookup, a closed client) merely returns the probe slot.
func (m *Mediator) maybeProbe(repo string) {
	if m.breakers.State(repo) == BreakerClosed || !m.breakers.Allow(repo) {
		return
	}
	go func() {
		switch err := m.pingRepo(repo); {
		case err == nil:
			m.breakers.Success(repo)
		case errors.Is(err, context.DeadlineExceeded) || isUnavailableNetErr(err):
			m.breakers.Failure(repo)
		default:
			m.breakers.Release(repo)
		}
	}()
}

// pingRepo checks a repository's liveness: in-process engines by registry
// lookup, remote repositories by a wire ping within the evaluation
// deadline.
func (m *Mediator) pingRepo(repo string) error {
	r, err := m.catalog.Repository(repo)
	if err != nil {
		return err
	}
	if name, ok := strings.CutPrefix(r.Address, "mem:"); ok {
		m.mu.Lock()
		_, found := m.engines[name]
		m.mu.Unlock()
		if !found {
			return fmt.Errorf("mediator: no in-process engine %q", name)
		}
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.timeout)
	defer cancel()
	return m.clientFor(r.Address).Ping(ctx)
}

// submitFailover tries the shard's candidate copies in order: copies
// whose breaker admits them first, then — only if none of those answered
// — the copies whose breaker refused, as a last resort. The breaker may
// therefore delay a copy behind the healthy ones, but it can never leave
// a copy undialed while the shard goes unanswered ("a breaker can delay
// but never forge a partial answer"). A real (answered) error aborts
// immediately; classified unavailability moves on to the next copy.
func (m *Mediator) submitFailover(ctx context.Context, shard string, expr algebra.Node, cands []string) (*types.Bag, error) {
	remaining := len(cands)
	attempted := 0
	var lastUnavail error
	// attempt runs one copy under its share of the remaining evaluation
	// budget (so a cold failover still reaches a live replica before the
	// query deadline instead of spending it all on the dead primary) and
	// reports whether the outcome is final.
	attempt := func(cand string) (*types.Bag, error, bool) {
		actx, cancel := attemptCtx(ctx, remaining)
		bag, err := m.submitOnce(actx, cand, expr)
		m.noteOutcome(cand, err)
		cancel()
		remaining--
		attempted++
		if err == nil {
			return bag, nil, true
		}
		if !isUnavailableErr(err) {
			// The source answered with a genuine failure (or the caller
			// ended the query): no replica may mask it.
			return nil, err, true
		}
		lastUnavail = err
		return nil, nil, false
	}
	var deferred []string
	for _, cand := range cands {
		if ctx.Err() != nil {
			break
		}
		if !m.breakers.Allow(cand) {
			deferred = append(deferred, cand)
			continue
		}
		if bag, err, done := attempt(cand); done {
			return bag, err
		}
	}
	for _, cand := range deferred {
		if ctx.Err() != nil {
			break
		}
		if bag, err, done := attempt(cand); done {
			return bag, err
		}
	}
	if attempted == 0 {
		// The caller's context died before any copy could be dialed.
		err := ctx.Err()
		if err == nil {
			err = errors.New("no candidate attempted")
		}
		return nil, classifySourceError(ctx, shard, fmt.Errorf("mediator: submit to %s: %w", shard, err))
	}
	return nil, &physical.UnavailableError{
		Repo: shard,
		Err:  fmt.Errorf("no replica answered: %w", lastUnavail),
	}
}

// attemptCtx derives the deadline for one failover attempt: an equal share
// of the time left until the parent deadline, over this and the remaining
// candidates. The last candidate (and deadline-free contexts) run under
// the parent as-is.
func attemptCtx(ctx context.Context, remaining int) (context.Context, context.CancelFunc) {
	if remaining <= 1 {
		return ctx, func() {}
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	share := time.Until(deadline) / time.Duration(remaining)
	if share <= 0 {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, time.Now().Add(share))
}

// submitCandidates returns the repositories holding a copy of everything
// the submit expression reads, primary first: the intersection of the
// replica groups of the expression's extent refs (an expression reading
// two extents can only fail over to a repository holding both).
func (m *Mediator) submitCandidates(repo string, expr algebra.Node) []string {
	var cands []string
	for _, ref := range exprRefs(expr) {
		group := ref.Replicas
		if len(group) == 0 {
			if me, err := m.catalog.Extent(ref.Extent); err == nil {
				group = me.ReplicaGroup(repo)
			}
		}
		if len(group) == 0 {
			group = []string{repo}
		}
		if cands == nil {
			cands = group
		} else {
			cands = intersectOrdered(cands, group)
		}
	}
	if len(cands) == 0 {
		return []string{repo}
	}
	return cands
}

// intersectOrdered keeps the members of a that also appear in b, in a's
// order.
func intersectOrdered(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	out := a[:0:0]
	for _, x := range a {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

// orderCandidates sorts a shard's copies for routing: breaker-healthy
// copies first (closed before half-open before open), then by the learned
// cost history's smoothed response time — the cost-model consult that
// prefers the fastest live replica. Copies with no history sort after
// measured ones (the optimizer's zero-time default would otherwise make
// every unknown replica leapfrog a known-fast primary), and ties keep
// declaration order, so the primary leads until the history says
// otherwise.
func (m *Mediator) orderCandidates(cands []string, expr algebra.Node) []string {
	type ranked struct {
		repo string
		rank int
		time time.Duration
	}
	rs := make([]ranked, len(cands))
	for i, cand := range cands {
		r := ranked{repo: cand}
		switch m.breakers.State(cand) {
		case BreakerClosed:
			r.rank = 0
		case BreakerHalfOpen:
			r.rank = 1
		default:
			r.rank = 2
		}
		est := m.history.Estimate(cand, expr)
		if est.Basis == costmodel.BasisDefault {
			r.time = time.Duration(1<<63 - 1)
		} else {
			r.time = est.Time
		}
		rs[i] = r
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].rank != rs[j].rank {
			return rs[i].rank < rs[j].rank
		}
		return rs[i].time < rs[j].time
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.repo
	}
	return out
}

// noteOutcome feeds one submit attempt's result into the source's circuit
// breaker: only a real answer counts as success (data, a remote error, or
// an upstream mediator's partial answer — each proves the source alive),
// only classified unavailability counts as failure, and everything else —
// caller-side termination, mediator-side failures that never dialed the
// source (wrapper lookup, translation) — records no verdict, merely
// returning any half-open probe slot the attempt had claimed.
func (m *Mediator) noteOutcome(repo string, err error) {
	var upstream *wire.PartialUpstreamError
	var remote *wire.RemoteError
	switch {
	case err == nil:
		m.breakers.Success(repo)
	case errors.As(err, &upstream), errors.As(err, &remote):
		// Checked before the unavailability case: classify wraps an
		// upstream partial answer in an UnavailableError for partial
		// evaluation, but for the breaker that source answered.
		m.breakers.Success(repo)
	case isUnavailableErr(err):
		m.breakers.Failure(repo)
	default:
		m.breakers.Release(repo)
	}
}

func isUnavailableErr(err error) bool {
	var ue *physical.UnavailableError
	return errors.As(err, &ue)
}

// submitOnce executes a submit expression at one repository: it finds the
// wrapper serving the expression, translates the expression into the
// source namespace via the local transformation maps, executes it, renames
// and type-checks the results, and records the call in the cost history.
func (m *Mediator) submitOnce(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
	w, err := m.wrapperForExpr(repo, expr)
	if err != nil {
		return nil, err
	}
	src, err := algebra.ToSource(expr)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	bag, err := w.Execute(ctx, src)
	if err != nil {
		return nil, classifySourceError(ctx, repo, err)
	}
	elapsed := time.Since(start)

	// Reformat: rename attributes back into the mediator namespace.
	refs := exprRefs(expr)
	bag, err = types.BagMap(bag, func(e types.Value) (types.Value, error) {
		st, ok := e.(*types.Struct)
		if !ok {
			return e, nil
		}
		for _, ref := range refs {
			st = algebra.FromSource(ref, st)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}

	// Run-time type check (§2.1): full-object retrievals must conform to
	// the mediator interface.
	if get, ok := expr.(*algebra.Get); ok && get.Ref.Iface != "" {
		if err := wrapper.CheckResult(m.catalog.Schema(), get.Ref.Iface, bag); err != nil {
			return nil, err
		}
	}

	// Learn the call's cost (§3.3).
	m.history.Record(repo, expr, elapsed, bag.Len())
	return bag, nil
}

func exprRefs(expr algebra.Node) []algebra.ExtentRef {
	var refs []algebra.ExtentRef
	algebra.Walk(expr, func(n algebra.Node) {
		if g, ok := n.(*algebra.Get); ok {
			refs = append(refs, g.Ref)
		}
	})
	return refs
}

// evalDeadlineKey marks contexts whose deadline is the mediator's own
// evaluation timer — the §4 "designated time" — as opposed to a deadline
// the caller brought.
type evalDeadlineKey struct{}

// withEvalDeadline bounds ctx by the mediator's evaluation deadline and
// tags it as such, so the error classifier can tell the §4 designated
// time (source unavailability) from a caller-imposed bound (a failed
// query from the caller's own impatience or cancellation).
func withEvalDeadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.WithValue(ctx, evalDeadlineKey{}, true), d)
}

func hasEvalDeadline(ctx context.Context) bool {
	v, _ := ctx.Value(evalDeadlineKey{}).(bool)
	return v
}

// classifySourceError separates unavailability (no answer: timeouts,
// refused connections) from genuine query failures reported by a live
// source, and from calls the caller itself ended. Partial evaluation
// applies only to the first kind; a user cancelling a query (or a
// caller-imposed deadline firing) is neither an answer nor unavailability
// — it must not degrade the query into a partial answer, and it must not
// count against the source's circuit breaker.
func classifySourceError(ctx context.Context, repo string, err error) error {
	var already *physical.UnavailableError
	if errors.As(err, &already) {
		return err
	}
	var upstream *wire.PartialUpstreamError
	if errors.As(err, &upstream) {
		// A mediator source answered partially: from here that is an
		// unavailability, and this mediator's partial evaluation produces
		// its own resubmittable answer.
		return &physical.UnavailableError{Repo: repo, Err: err}
	}
	var remote *wire.RemoteError
	if errors.As(err, &remote) {
		return err // the source answered: a real error
	}
	if errors.Is(err, context.Canceled) && ctx.Err() != nil {
		// The call died because the caller's context ended (the user
		// cancelled, or the query already concluded): caller-side, not a
		// verdict on the source.
		return fmt.Errorf("mediator: source call to %s cancelled: %w", repo, err)
	}
	if errors.Is(err, context.DeadlineExceeded) &&
		errors.Is(ctx.Err(), context.DeadlineExceeded) && !hasEvalDeadline(ctx) {
		// The deadline that fired came with the caller's context, not from
		// the mediator's evaluation timer: caller-side as well.
		return fmt.Errorf("mediator: source call to %s ended by caller deadline: %w", repo, err)
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return &physical.UnavailableError{Repo: repo, Err: err}
	case isUnavailableNetErr(err):
		return &physical.UnavailableError{Repo: repo, Err: err}
	default:
		return err
	}
}

// isUnavailableNetErr recognizes network errors that mean "no answer" —
// timeouts, refused connections and dial-phase failures. Errors from a
// source that was reached and answered (e.g. a reset mid-answer) are NOT
// unavailability: partial evaluation must not silently degrade genuine
// source-side failures into partial answers.
func isUnavailableNetErr(err error) bool {
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) && opErr.Op == "dial" {
		// The connection was never established: the source is unreachable.
		return true
	}
	return false
}

// wrapperForExpr locates the wrapper instance serving a submit expression:
// every extent read by the expression must be declared with the same
// wrapper object.
func (m *Mediator) wrapperForExpr(repo string, expr algebra.Node) (wrapper.Wrapper, error) {
	refs := exprRefs(expr)
	if len(refs) == 0 {
		return nil, fmt.Errorf("mediator: submit to %s reads no extents", repo)
	}
	wrapperName := ""
	for _, ref := range refs {
		me, err := m.catalog.Extent(ref.Extent)
		if err != nil {
			return nil, err
		}
		if !me.HasPartition(repo) {
			return nil, fmt.Errorf("mediator: extent %s lives at %s, not %s", ref.Extent, strings.Join(me.Partitions(), ","), repo)
		}
		if wrapperName == "" {
			wrapperName = me.Wrapper
		} else if me.Wrapper != wrapperName {
			return nil, fmt.Errorf("mediator: extents of one submit use different wrappers (%s, %s)", wrapperName, me.Wrapper)
		}
	}
	return m.wrapperInstance(wrapperName, repo)
}

// wrapperInstance returns (instantiating on first use) the wrapper object
// bound to a repository.
func (m *Mediator) wrapperInstance(wrapperName, repoName string) (wrapper.Wrapper, error) {
	key := wrapperName + "@" + repoName
	m.mu.Lock()
	if w, ok := m.wrappers[key]; ok {
		m.mu.Unlock()
		return w, nil
	}
	m.mu.Unlock()

	wdecl, err := m.catalog.Wrapper(wrapperName)
	if err != nil {
		return nil, err
	}
	repo, err := m.catalog.Repository(repoName)
	if err != nil {
		return nil, err
	}
	w, err := m.instantiate(wdecl, repo)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.wrappers[key] = w
	m.mu.Unlock()
	return w, nil
}

// instantiate builds a wrapper implementation for a wrapper declaration and
// repository address.
func (m *Mediator) instantiate(w *catalog.Wrapper, repo *catalog.Repository) (wrapper.Wrapper, error) {
	switch w.Kind {
	case "sql":
		q, err := m.querierFor(repo, wire.LangSQL)
		if err != nil {
			return nil, err
		}
		// An ops property restricts the advertised operator set, e.g.
		// Wrapper("sql", ops="get,select") models a server that filters
		// but cannot project or join.
		if spec := w.Props["ops"]; spec != "" {
			ops, err := parseOpsSpec(spec)
			if err != nil {
				return nil, fmt.Errorf("mediator: wrapper %s: %w", w.Name, err)
			}
			return wrapper.NewSQLWithOps(q, ops), nil
		}
		return wrapper.NewSQL(q), nil
	case "scan":
		q, err := m.querierFor(repo, wire.LangSQL)
		if err != nil {
			return nil, err
		}
		return wrapper.NewScan(wrapper.NewSQL(q)), nil
	case "doc":
		q, err := m.querierFor(repo, wire.LangDoc)
		if err != nil {
			return nil, err
		}
		return wrapper.NewDoc(q), nil
	case "csv":
		path := w.Props["path"]
		collection := w.Props["collection"]
		if path == "" || collection == "" {
			return nil, fmt.Errorf("mediator: csv wrapper %s needs path and collection properties", w.Name)
		}
		return wrapper.NewCSV(collection, path)
	case "mediator":
		addr := repo.Address
		if strings.HasPrefix(addr, "mem:") {
			return nil, fmt.Errorf("mediator: mediator wrapper %s needs a network address", w.Name)
		}
		return &mediatorWrapper{client: m.clientFor(addr)}, nil
	default:
		return nil, fmt.Errorf("mediator: unknown wrapper kind %q", w.Kind)
	}
}

// parseOpsSpec parses an ops="get,select,..." wrapper property into an
// operator set. Composition, connectives and all comparisons are enabled
// whenever any operator beyond get is present.
func parseOpsSpec(spec string) (capability.OpSet, error) {
	ops := capability.OpSet{}
	for _, tok := range strings.Split(spec, ",") {
		switch strings.TrimSpace(strings.ToLower(tok)) {
		case "get":
			ops.Get = true
		case "select":
			ops.Select = true
		case "project":
			ops.Project = true
		case "join":
			ops.Join = true
		case "distinct":
			ops.Distinct = true
		case "":
		default:
			return ops, fmt.Errorf("unknown operator %q in ops spec", tok)
		}
	}
	if ops.Select || ops.Project || ops.Join || ops.Distinct {
		ops.Compose = true
		ops.Connectives = true
	}
	return ops, nil
}

// querierFor resolves a repository address to a querier: mem: addresses
// bind to registered in-process engines, everything else dials TCP.
func (m *Mediator) querierFor(repo *catalog.Repository, lang string) (wrapper.Querier, error) {
	addr := repo.Address
	if name, ok := strings.CutPrefix(addr, "mem:"); ok {
		m.mu.Lock()
		eng, found := m.engines[name]
		m.mu.Unlock()
		if !found {
			return nil, fmt.Errorf("mediator: no in-process engine %q (repository %s)", name, repo.Name)
		}
		return wrapper.EngineQuerier{Engine: eng}, nil
	}
	if addr == "" {
		return nil, fmt.Errorf("mediator: repository %s has no address", repo.Name)
	}
	// One pooled client per address, shared across wrapper instances and
	// queries: submits reuse persistent connections instead of dialing.
	return wrapper.RemoteQuerier{Client: m.clientFor(addr), Lang: lang}, nil
}
