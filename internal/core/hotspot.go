// Hotspot detection (ROADMAP item 2): the mediator counts logical reads per
// shard (the denominator lives in runtime.go's submit path) and surfaces the
// shards drawing an outsized share of their extent's traffic, with a
// rebalance recommendation the live-migration machinery can act on — split a
// hot range shard, or move it to a quieter repository.
package core

import (
	"fmt"
	"sort"
	"strings"

	"disco/internal/algebra"
)

// HotShardMinReads is the minimum total read count an extent must have
// accumulated before its shards can be called hot: below it the shares are
// noise, not load.
const HotShardMinReads = 16

// HotShardFactor is the skew threshold: a shard is hot when its share of the
// extent's reads is at least this multiple of the fair share (1/shards).
const HotShardFactor = 2.0

// HotShard is one overloaded shard of a partitioned extent, with the
// rebalance the traffic skew recommends.
type HotShard struct {
	// Shard is the extent@repo name, Extent/Repo its parts.
	Shard  string
	Extent string
	Repo   string
	// Reads is the shard's logical read count, Share its fraction of the
	// extent's total reads.
	Reads int64
	Share float64
	// Advice is the recommended rebalance, phrased for the Explain report.
	Advice string
}

// ShardTraffic returns the per-shard logical read counters, keyed extent@repo
// (plain extent for unpartitioned extents). Reads are counted once per shard
// access regardless of failover, hedging or dual-read fan-out.
func (m *Mediator) ShardTraffic() map[string]int64 {
	m.shardMu.Lock()
	defer m.shardMu.Unlock()
	out := make(map[string]int64, len(m.shardReads))
	for k, v := range m.shardReads {
		out[k] = v
	}
	return out
}

// HotShards reports the shards whose share of their extent's read traffic is
// at least HotShardFactor times the fair share, hottest first. Extents with
// fewer than HotShardMinReads total reads, and unpartitioned extents (no
// siblings to rebalance against), report nothing.
func (m *Mediator) HotShards() []HotShard {
	byExtent := map[string]map[string]int64{}
	for shard, n := range m.ShardTraffic() {
		ext, repo, ok := strings.Cut(shard, "@")
		if !ok {
			continue
		}
		if byExtent[ext] == nil {
			byExtent[ext] = map[string]int64{}
		}
		byExtent[ext][repo] += n
	}
	var out []HotShard
	for ext, repos := range byExtent {
		me, err := m.catalog.Extent(ext)
		if err != nil || !me.Partitioned() {
			continue
		}
		shards := len(me.Partitions())
		var total int64
		for _, n := range repos {
			total += n
		}
		if shards < 2 || total < HotShardMinReads {
			continue
		}
		fair := 1.0 / float64(shards)
		for repo, n := range repos {
			share := float64(n) / float64(total)
			if share < HotShardFactor*fair {
				continue
			}
			hs := HotShard{
				Shard: ext + "@" + repo, Extent: ext, Repo: repo,
				Reads: n, Share: share,
			}
			if me.Scheme != nil && me.Scheme.Kind == algebra.PartRange {
				hs.Advice = fmt.Sprintf("split %s or move it to a quieter repository", hs.Shard)
			} else {
				hs.Advice = fmt.Sprintf("move %s to a quieter repository", hs.Shard)
			}
			out = append(out, hs)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// hotShardReport renders the hot-shard lines Explain appends to the
// optimizer's report; empty when nothing is hot.
func (m *Mediator) hotShardReport() string {
	hot := m.HotShards()
	if len(hot) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("hot shards: ")
	for i, hs := range hot {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s (%.0f%%)", hs.Shard, hs.Share*100)
	}
	b.WriteByte('\n')
	for _, hs := range hot {
		fmt.Fprintf(&b, "rebalance: %s\n", hs.Advice)
	}
	return b.String()
}
