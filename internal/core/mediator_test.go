package core

import (
	"strings"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// paperStores builds the data of §1.2: r0 holds Mary (salary 200), r1
// holds Sam (salary 50).
func paperStores(t *testing.T) (*source.RelStore, *source.RelStore) {
	t.Helper()
	mk := func(rows ...[3]interface{}) *source.RelStore {
		s := source.NewRelStore()
		if err := s.CreateTable("person0", "id", "name", "salary"); err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := s.Insert("person0", types.Int(int64(r[0].(int))), types.Str(r[1].(string)), types.Int(int64(r[2].(int)))); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	r0 := mk([3]interface{}{1, "Mary", 200})
	r1 := source.NewRelStore()
	if err := r1.CreateTable("person1", "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	if err := r1.Insert("person1", types.Int(2), types.Str("Sam"), types.Int(50)); err != nil {
		t.Fatal(err)
	}
	return r0, r1
}

const paperSchema = `
r0 := Repository(host="rodin", name="db", address="mem:r0");
r1 := Repository(host="rodin", name="db2", address="mem:r1");
w0 := WrapperPostgres();

interface Person (extent person) {
    attribute Short id;
    attribute String name;
    attribute Short salary;
}

extent person0 of Person wrapper w0 repository r0;
extent person1 of Person wrapper w0 repository r1;
`

func paperMediator(t *testing.T) *Mediator {
	t.Helper()
	m := New(WithTimeout(500 * time.Millisecond))
	r0, r1 := paperStores(t)
	m.RegisterEngine("r0", r0)
	m.RegisterEngine("r1", r1)
	if err := m.ExecODL(paperSchema); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPaperIntroExample runs §1.2 end to end: the implicit person extent
// spans both sources.
func TestPaperIntroExample(t *testing.T) {
	m := paperMediator(t)
	got, err := m.Query(`select x.name from x in person where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !got.Equal(want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestExplicitExtents(t *testing.T) {
	m := paperMediator(t)
	got, err := m.Query(`select x.name from x in person0 where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(types.NewBag(types.Str("Mary"))) {
		t.Errorf("person0 = %s", got)
	}
	got, err = m.Query(`select x.name from x in union(person0, person1) where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(types.NewBag(types.Str("Mary"), types.Str("Sam"))) {
		t.Errorf("union = %s", got)
	}
}

// TestAddingSourceLeavesQueryUnchanged is the DBA scaling claim of §1.2:
// adding a data source is one extent declaration, and the same query then
// spans three sources.
func TestAddingSourceLeavesQueryUnchanged(t *testing.T) {
	m := paperMediator(t)
	const q = `select x.name from x in person where x.salary > 10`
	if v := m.MustQuery(q); v.(*types.Bag).Len() != 2 {
		t.Fatalf("before: %s", v)
	}
	// One new store, one repository object, one extent declaration.
	r2 := source.NewRelStore()
	if err := r2.CreateTable("person2", "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Insert("person2", types.Int(3), types.Str("Ann"), types.Int(75)); err != nil {
		t.Fatal(err)
	}
	m.RegisterEngine("r2", r2)
	if err := m.ExecODL(`
		r2 := Repository(host="rodin", name="db3", address="mem:r2");
		extent person2 of Person wrapper w0 repository r2;
	`); err != nil {
		t.Fatal(err)
	}
	got := m.MustQuery(q)
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"), types.Str("Ann"))
	if !got.Equal(want) {
		t.Errorf("after adding source: %s, want %s", got, want)
	}
}

// TestMetaExtentQuery: the catalog is queryable as the metaextent
// collection (§2.1).
func TestMetaExtentQuery(t *testing.T) {
	m := paperMediator(t)
	got, err := m.Query(`select x.e from x in metaextent where x.interface = "Person"`)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.Str("person0"), types.Str("person1"))
	if !got.Equal(want) {
		t.Errorf("metaextent = %s", got)
	}
}

// TestTypeMapping is §2.2.2: PersonPrime accesses the same source relation
// under renamed attributes via the local transformation map.
func TestTypeMapping(t *testing.T) {
	m := paperMediator(t)
	if err := m.ExecODL(`
		interface PersonPrime {
		    attribute String n;
		    attribute Short s;
		}
		extent personprime0 of PersonPrime wrapper w0 repository r0
		    map ((person0=personprime0),(name=n),(salary=s));
	`); err != nil {
		t.Fatal(err)
	}
	got, err := m.Query(`select x.n from x in personprime0 where x.s > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(types.NewBag(types.Str("Mary"))) {
		t.Errorf("mapped query = %s", got)
	}
}

// TestSubtypeStar is §2.2.1: person* closes over Student extents while
// person does not.
func TestSubtypeStar(t *testing.T) {
	m := paperMediator(t)
	r2 := source.NewRelStore()
	if err := r2.CreateTable("student0", "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Insert("student0", types.Int(9), types.Str("Stu"), types.Int(12)); err != nil {
		t.Fatal(err)
	}
	m.RegisterEngine("r2", r2)
	if err := m.ExecODL(`
		interface Student:Person { }
		r2 := Repository(address="mem:r2");
		extent student0 of Student wrapper w0 repository r2;
	`); err != nil {
		t.Fatal(err)
	}
	plain := m.MustQuery(`select x.name from x in person`)
	if plain.(*types.Bag).Len() != 2 {
		t.Errorf("person should not include subtype extents: %s", plain)
	}
	star := m.MustQuery(`select x.name from x in person* where x.salary > 10`)
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"), types.Str("Stu"))
	if !star.Equal(want) {
		t.Errorf("person* = %s, want %s", star, want)
	}
}

// TestDoubleView is the §2.2.3 reconciliation view.
func TestDoubleView(t *testing.T) {
	m := paperMediator(t)
	// Give both sources a shared person (id 1) so the join is non-empty.
	r1 := source.NewRelStore()
	if err := r1.CreateTable("person1", "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	if err := r1.Insert("person1", types.Int(1), types.Str("Mary"), types.Int(55)); err != nil {
		t.Fatal(err)
	}
	m.RegisterEngine("r1", r1) // replaces the fixture's r1

	if err := m.Define(`define double as
		select struct(name: x.name, salary: x.salary + y.salary)
		from x in person0 and y in person1
		where x.id = y.id`); err != nil {
		t.Fatal(err)
	}
	got := m.MustQuery(`select d.salary from d in double where d.name = "Mary"`)
	if !got.Equal(types.NewBag(types.Int(255))) {
		t.Errorf("double view = %s", got)
	}
}

// TestMultipleView is the §2.2.3 aggregate view over person*.
func TestMultipleView(t *testing.T) {
	m := paperMediator(t)
	if err := m.Define(`define multiple as
		select struct(name: x.name,
		              salary: sum(select z.salary from z in person where x.id = z.id))
		from x in person*`); err != nil {
		t.Fatal(err)
	}
	got := m.MustQuery(`select v.salary from v in multiple where v.name = "Mary"`)
	if !got.Equal(types.NewBag(types.Int(200))) {
		t.Errorf("multiple view = %s", got)
	}
}

// TestPersonNewView is the §2.3 dissimilar-structure view: PersonTwo splits
// salary into regular and consulting pay.
func TestPersonNewView(t *testing.T) {
	m := paperMediator(t)
	r5 := source.NewRelStore()
	if err := r5.CreateTable("persontwo0", "name", "regular", "consult"); err != nil {
		t.Fatal(err)
	}
	if err := r5.Insert("persontwo0", types.Str("Cal"), types.Int(30), types.Int(25)); err != nil {
		t.Fatal(err)
	}
	m.RegisterEngine("r5", r5)
	if err := m.ExecODL(`
		interface PersonTwo {
		    attribute String name;
		    attribute Short regular;
		    attribute Short consult;
		}
		r5 := Repository(address="mem:r5");
		extent persontwo0 of PersonTwo wrapper w0 repository r5;

		define personnew as
		    union(select struct(name: x.name, salary: x.salary) from x in person,
		          select struct(name: x.name, salary: x.regular + x.consult) from x in persontwo0);
	`); err != nil {
		t.Fatal(err)
	}
	got := m.MustQuery(`select p.salary from p in personnew where p.name = "Cal"`)
	if !got.Equal(types.NewBag(types.Int(55))) {
		t.Errorf("personnew = %s", got)
	}
	if got := m.MustQuery(`count(personnew)`); !got.Equal(types.Int(3)) {
		t.Errorf("personnew count = %s", got)
	}
}

// TestPartialAnswersOverTCP is §1.3/§4 on the real network substrate: a
// blocked server yields the paper's partial answer; recovery plus
// resubmission yields the full answer.
func TestPartialAnswersOverTCP(t *testing.T) {
	r0, r1 := paperStores(t)
	srv0, err := wire.NewServer("127.0.0.1:0", EngineHandler{Engine: r0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv0.Close()
	srv1, err := wire.NewServer("127.0.0.1:0", EngineHandler{Engine: r1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()

	m := New(WithTimeout(300 * time.Millisecond))
	if err := m.ExecODL(`
		r0 := Repository(address="` + srv0.Addr() + `");
		r1 := Repository(address="` + srv1.Addr() + `");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;
	`); err != nil {
		t.Fatal(err)
	}

	const q = `select x.name from x in person where x.salary > 10`

	// All up: complete answer.
	ans, err := m.QueryPartial(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Complete {
		t.Fatalf("expected complete answer, got %s", ans)
	}

	// r0 stops answering: the §1.3 partial answer appears.
	srv0.SetAvailable(false)
	ans, err = m.QueryPartial(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Fatal("expected partial answer")
	}
	got := ans.Residual.String()
	want := `union(select x.name from x in person0 where x.salary > 10, bag("Sam"))`
	if got != want {
		t.Errorf("partial answer:\n got  %s\n want %s", got, want)
	}
	if len(ans.Unavailable) != 1 || ans.Unavailable[0] != "r0" {
		t.Errorf("unavailable = %v", ans.Unavailable)
	}

	// r0 recovers; resubmitting the answer yields the original answer.
	srv0.SetAvailable(true)
	re, err := m.QueryPartial(got)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Complete {
		t.Fatalf("resubmission should complete: %s", re.Residual)
	}
	if !re.Value.Equal(types.NewBag(types.Str("Mary"), types.Str("Sam"))) {
		t.Errorf("resubmitted = %s", re.Value)
	}
}

// TestRunTimeTypeCheck is §2.1: objects that do not match the mediator type
// raise a run-time error.
func TestRunTimeTypeCheck(t *testing.T) {
	m := New(WithTimeout(300 * time.Millisecond))
	bad := source.NewRelStore()
	// salary is a string at the source but Short at the mediator.
	if err := bad.CreateTable("person0", "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	if err := bad.Insert("person0", types.Int(1), types.Str("Mary"), types.Str("lots")); err != nil {
		t.Fatal(err)
	}
	m.RegisterEngine("r0", bad)
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
	`); err != nil {
		t.Fatal(err)
	}
	_, err := m.Query(`select x from x in person0`)
	if err == nil || !strings.Contains(err.Error(), "type mismatch") {
		t.Errorf("err = %v, want run-time type mismatch", err)
	}
}

// TestDocWrapperIntegration: a keyword source joins the federation with its
// weak capability set; equality selections push, ranges stay local.
func TestDocWrapperIntegration(t *testing.T) {
	m := New(WithTimeout(300 * time.Millisecond))
	docs := source.NewDocStore()
	docs.AddDocument("sites", types.NewStruct(
		types.Field{Name: "site", Value: types.Str("amont")},
		types.Field{Name: "quality", Value: types.Str("good")},
		types.Field{Name: "ph", Value: types.Float(7.1)},
	))
	docs.AddDocument("sites", types.NewStruct(
		types.Field{Name: "site", Value: types.Str("aval")},
		types.Field{Name: "quality", Value: types.Str("poor")},
		types.Field{Name: "ph", Value: types.Float(6.0)},
	))
	m.RegisterEngine("waisbox", docs)
	if err := m.ExecODL(`
		rw := Repository(address="mem:waisbox");
		wdoc := Wrapper("doc");
		interface Site (extent allsites) {
		    attribute String site;
		    attribute String quality;
		    attribute Float ph;
		}
		extent sites of Site wrapper wdoc repository rw;
	`); err != nil {
		t.Fatal(err)
	}
	// Equality predicate: pushable to the doc source.
	got := m.MustQuery(`select s.site from s in sites where s.quality = "good"`)
	if !got.Equal(types.NewBag(types.Str("amont"))) {
		t.Errorf("equality query = %s", got)
	}
	// Range predicate: must run at the mediator, same answer.
	got = m.MustQuery(`select s.site from s in sites where s.ph > 6.5`)
	if !got.Equal(types.NewBag(types.Str("amont"))) {
		t.Errorf("range query = %s", got)
	}
	// The pushed-down plan shows in EXPLAIN.
	explain, err := m.Explain(`select s.site from s in sites where s.quality = "good"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, `submit(rw, select(quality = "good", get(sites)))`) {
		t.Errorf("explain should show the pushed plan:\n%s", explain)
	}
}

// TestMediatorComposition: a mediator is a data source of another mediator
// (Figure 1's stacked M boxes).
func TestMediatorComposition(t *testing.T) {
	// Lower mediator federates the two person sources and serves OQL.
	lower := paperMediator(t)
	srv, err := lower.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Upper mediator sees the lower one as a single data source whose
	// collection "person" is the federated extent.
	upper := New(WithTimeout(2 * time.Second))
	if err := upper.ExecODL(`
		rlower := Repository(address="` + srv.Addr() + `");
		wmed := Wrapper("mediator");
		interface Person (extent people) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person of Person wrapper wmed repository rlower;
	`); err != nil {
		t.Fatal(err)
	}
	got, err := upper.Query(`select x.name from x in person where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !got.Equal(want) {
		t.Errorf("composed query = %s, want %s", got, want)
	}
}

func TestQueryErrors(t *testing.T) {
	m := paperMediator(t)
	cases := []struct{ src, frag string }{
		{`select x from y in person`, "unknown"},
		{`select x.name from x in ghost`, "unknown collection"},
		{`this is not oql`, "oql"},
		{`select x.ghost from x in person0`, "no attribute"},
	}
	for _, tt := range cases {
		_, err := m.Query(tt.src)
		if err == nil {
			t.Errorf("Query(%q) should fail", tt.src)
			continue
		}
		if !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("Query(%q) error = %q, want fragment %q", tt.src, err, tt.frag)
		}
	}
}

func TestPlanCacheAcrossExtentChanges(t *testing.T) {
	m := paperMediator(t)
	const q = `select x.name from x in person`
	if _, tr, err := m.QueryTraced(q); err != nil || tr.CacheHit {
		t.Fatalf("first run: err=%v hit=%v", err, tr != nil && tr.CacheHit)
	}
	if _, tr, err := m.QueryTraced(q); err != nil || !tr.CacheHit {
		t.Fatalf("second run should hit the plan cache")
	}
	// Dropping an extent invalidates cached plans and changes the answer.
	if err := m.ExecODL(`drop extent person1;`); err != nil {
		t.Fatal(err)
	}
	v, tr, err := m.QueryTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CacheHit {
		t.Error("extent drop must invalidate the plan cache")
	}
	if v.(*types.Bag).Len() != 1 {
		t.Errorf("after drop: %s", v)
	}
}

func TestODLErrors(t *testing.T) {
	m := paperMediator(t)
	bad := []string{
		`extent e1 of Ghost wrapper w0 repository r0;`,
		`extent e1 of Person wrapper ghost repository r0;`,
		`extent e1 of Person wrapper w0 repository ghost;`,
		`w9 := Wrapper("hologram"); extent e1 of Person wrapper w9 repository r0;`,
	}
	for _, src := range bad {
		if err := m.ExecODL(src); err == nil {
			// Wrapper-kind errors surface at first use, not declaration.
			if _, qerr := m.Query(`select x from x in e1`); qerr == nil {
				t.Errorf("ExecODL(%q) should fail eventually", src)
			}
		}
	}
}

func TestScanWrapperForcesMediatorEvaluation(t *testing.T) {
	m := New(WithTimeout(300 * time.Millisecond))
	r0, _ := paperStores(t)
	m.RegisterEngine("r0", r0)
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		wscan := Wrapper("scan");
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper wscan repository r0;
	`); err != nil {
		t.Fatal(err)
	}
	got := m.MustQuery(`select x.name from x in person0 where x.salary > 10`)
	if !got.Equal(types.NewBag(types.Str("Mary"))) {
		t.Errorf("scan-wrapped query = %s", got)
	}
	explain, err := m.Explain(`select x.name from x in person0 where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain, "submit(r0, select") {
		t.Errorf("scan wrapper must not receive selections:\n%s", explain)
	}
}

func TestCostHistoryLearnsFromExecution(t *testing.T) {
	m := paperMediator(t)
	const q = `select x.name from x in person0`
	if _, err := m.Query(q); err != nil {
		t.Fatal(err)
	}
	// The submit expression that ran was project([name], get(person0)); the
	// history must now hold an exact observation for it.
	plan, _, err := m.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	subs := 0
	for _, s := range algebra.Submits(plan) {
		if m.History().Observations(s.Repo, s.Input) > 0 {
			subs++
		}
	}
	if subs == 0 {
		t.Error("execution should record exec costs for the submitted expressions")
	}
}
