package core

import (
	"context"
	"testing"
	"time"
)

// TestHedgeLoserReclaimsServerWork is the end-to-end cancellation contract
// for hedging: when a backup submit wins, the loser is not merely ignored —
// its wire client sends a cancel frame, the slow server's handler context is
// cancelled, and its in-flight gauge drains instead of accumulating one
// zombie per race. The loser stays invisible to the control loops (breaker
// closed, no cost-history observation), and the trace reports the cancels.
func TestHedgeLoserReclaimsServerWork(t *testing.T) {
	m, servers := replicatedMediator(t,
		WithHedging(5*time.Millisecond), WithBreaker(1, time.Minute))
	// r0 is alive but slow: every read of shard 0 hedges to r0b, wins there,
	// and abandons the submit still pending at r0.
	servers["r0"].SetLatency(150 * time.Millisecond)
	want := wantAll()

	c0 := m.wireCancelsSent()
	for i := 0; i < 8; i++ {
		v, _, err := m.QueryTraced(`select x from x in people`)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(want) {
			t.Fatalf("answer = %s, want %s", v, want)
		}
		// The race's loser must release its server-side slot promptly — the
		// cancel frame aborts even the injected latency sleep — not after the
		// 150ms "link" plus handler time, and never accumulate across races.
		if !waitCondition(time.Second, func() bool { return servers["r0"].Inflight() == 0 }) {
			t.Fatalf("race %d: r0 inflight = %d, abandoned hedge loser not reclaimed", i, servers["r0"].Inflight())
		}
	}
	if fired := m.hedgesFired.Load(); fired == 0 {
		t.Fatal("no hedges fired against a 150ms straggler; test exercised nothing")
	}
	// Cancel frames are written asynchronously once the abandoning caller has
	// already returned (they are deliberately off the error path), so poll
	// the mediator-wide counter rather than summing per-query trace windows —
	// a frame can land between two windows and be seen by neither.
	if !waitCondition(time.Second, func() bool { return m.wireCancelsSent() > c0 }) {
		t.Error("no cancel frames sent despite abandoned hedge losers")
	}
	if !waitCondition(time.Second, func() bool { return servers["r0"].Stats().Cancelled.Load() > 0 }) {
		t.Error("slow server counted no cancelled handlers")
	}
	// Cancels are a caller-side verdict: they must never poison the loser's
	// breaker (threshold 1 would open on a single false unavailability) nor
	// record a latency observation for work that never finished.
	for _, repo := range []string{"r0", "r0b", "r1", "r1b"} {
		if got := m.BreakerState(repo); got != BreakerClosed {
			t.Errorf("breaker %s = %v, want closed: a cancelled loser poisoned it", repo, got)
		}
	}
	if _, ok := m.history.Quantile("r0", 0.5); ok {
		t.Error("cancelled hedge losers recorded cost-history observations for r0")
	}
}

// TestCallerCancelReclaimsServerWork: a caller abandoning QueryContext
// mid-flight propagates to the sources — their in-flight gauges drain and
// their breakers stay closed (a caller walking away says nothing about
// source health).
func TestCallerCancelReclaimsServerWork(t *testing.T) {
	m, servers := replicatedMediator(t, WithBreaker(1, time.Minute))
	for _, srv := range servers {
		srv.SetLatency(300 * time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.QueryContext(ctx, `select x from x in people`)
		done <- err
	}()
	// Wait for the scatter-gather to put work in flight at the sources, then
	// walk away.
	if !waitCondition(time.Second, func() bool {
		var n int64
		for _, srv := range servers {
			n += srv.Inflight()
		}
		return n > 0
	}) {
		t.Fatal("no source work went in flight")
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("query survived its caller's cancel")
	}
	for repo, srv := range servers {
		srv := srv
		if !waitCondition(time.Second, func() bool { return srv.Inflight() == 0 }) {
			t.Errorf("%s inflight = %d after caller cancel", repo, srv.Inflight())
		}
	}
	for _, repo := range []string{"r0", "r0b", "r1", "r1b"} {
		if got := m.BreakerState(repo); got != BreakerClosed {
			t.Errorf("breaker %s = %v, want closed after caller-side cancel", repo, got)
		}
	}
}
