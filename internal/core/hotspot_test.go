package core

import (
	"strings"
	"testing"

	"disco/internal/types"
)

// TestHotShardsDetected: skewed point-query traffic marks the busy shard hot
// with a rebalance recommendation, and Explain surfaces it.
func TestHotShardsDetected(t *testing.T) {
	m, _, _ := migMediator(t)
	if hot := m.HotShards(); len(hot) != 0 {
		t.Fatalf("cold mediator reports hot shards: %v", hot)
	}
	// 40 of 48 reads hit r1's range: share 5/6 >= 2 * fair share 1/3.
	for i := 0; i < 40; i++ {
		m.MustQuery(`select x.name from x in people where x.id = 15`)
	}
	for i := 0; i < 4; i++ {
		m.MustQuery(`select x.name from x in people where x.id = 5`)
		m.MustQuery(`select x.name from x in people where x.id = 25`)
	}
	hot := m.HotShards()
	if len(hot) != 1 {
		t.Fatalf("hot shards = %v, want exactly people@r1", hot)
	}
	hs := hot[0]
	if hs.Shard != "people@r1" || hs.Extent != "people" || hs.Repo != "r1" {
		t.Errorf("hot shard = %+v", hs)
	}
	if hs.Reads != 40 || hs.Share < 0.8 || hs.Share > 0.9 {
		t.Errorf("hot shard reads=%d share=%.2f, want 40 reads at ~83%%", hs.Reads, hs.Share)
	}
	// A range shard's advice offers the split.
	if !strings.Contains(hs.Advice, "split people@r1") {
		t.Errorf("advice = %q, want a split recommendation", hs.Advice)
	}

	report, err := m.Explain(`select x from x in people`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "hot shards: people@r1 (83%)") {
		t.Errorf("explain lacks the hot-shard line:\n%s", report)
	}
	if !strings.Contains(report, "rebalance: split people@r1") {
		t.Errorf("explain lacks the rebalance advice:\n%s", report)
	}
}

// TestHotShardsNeedMinimumTraffic: below the sample floor nothing is hot, no
// matter how skewed.
func TestHotShardsNeedMinimumTraffic(t *testing.T) {
	m, _, _ := migMediator(t)
	for i := 0; i < int(HotShardMinReads)-1; i++ {
		m.MustQuery(`select x.name from x in people where x.id = 15`)
	}
	if hot := m.HotShards(); len(hot) != 0 {
		t.Errorf("under-sampled traffic reports hot shards: %v", hot)
	}
}

// TestHotShardAdviceForHashShard: a hash shard cannot split a range, so the
// advice is a move.
func TestHotShardAdviceForHashShard(t *testing.T) {
	m, _ := hashMediator(t, 4, 16)
	for i := 0; i < 32; i++ {
		m.MustQuery(`select x.name from x in people where x.id = 1`)
	}
	hot := m.HotShards()
	if len(hot) != 1 {
		t.Fatalf("hot shards = %v, want one", hot)
	}
	if !strings.HasPrefix(hot[0].Advice, "move ") || strings.Contains(hot[0].Advice, "split") {
		t.Errorf("hash shard advice = %q, want a move", hot[0].Advice)
	}
}

// TestTraceShardReads: a traced query reports which shards it read, and
// balanced traffic reports no hot shards.
func TestTraceShardReads(t *testing.T) {
	m, _, _ := migMediator(t)
	_, tr, err := m.QueryTraced(`select x.name from x in people where x.id >= 10 and x.id < 20`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.ShardReads) != 1 || tr.ShardReads["people@r1"] != 1 {
		t.Errorf("trace shard reads = %v, want people@r1=1", tr.ShardReads)
	}
	if !strings.Contains(tr.String(), "shard reads people@r1=1") {
		t.Errorf("trace string lacks the shard-read line:\n%s", tr)
	}
	_, tr, err = m.QueryTraced(`select x from x in people`)
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range []string{"people@r0", "people@r1", "people@r2"} {
		if tr.ShardReads[shard] != 1 {
			t.Errorf("full scan trace reads %v, want one read per shard", tr.ShardReads)
			break
		}
	}
	// The counters aggregate across queries.
	traffic := m.ShardTraffic()
	if traffic["people@r1"] != 2 {
		t.Errorf("aggregate traffic = %v, want people@r1=2", traffic)
	}
	if hot := m.HotShards(); len(hot) != 0 {
		t.Errorf("balanced traffic reports hot shards: %v", hot)
	}
}

// TestShardTrafficSkipsStandby: dual-read fan-out counts one logical read
// for the migrating shard, not two — migration must not inflate its own
// hotspot signal.
func TestShardTrafficSkipsStandby(t *testing.T) {
	m, _, _ := migMediator(t)
	if err := m.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	advance(t, m, "people", "copying", false)
	advance(t, m, "people", "dual-read", false)
	before := m.ShardTraffic()
	got := m.MustQuery(`select x.name from x in people where x.id = 15`)
	if !got.Equal(types.NewBag(types.Str("p15"))) {
		t.Fatalf("dual-read query = %s", got)
	}
	after := m.ShardTraffic()
	if d := after["people@r1"] - before["people@r1"]; d != 1 {
		t.Errorf("dual-read added %d reads for people@r1, want 1", d)
	}
	if d := after["people@r3"] - before["people@r3"]; d != 0 {
		t.Errorf("standby branch counted %d reads for people@r3, want 0", d)
	}
}
