package core

import (
	"context"
	"sort"
	"strings"

	"disco/internal/algebra"
	"disco/internal/partial"
	"disco/internal/source"
)

// This file implements the §4 staleness extension the paper sketches: "it
// would be convenient for the user to be able to check if the data [baked
// into a partial answer] was still valid". Sources version their
// collections; when a partial answer embeds data from the sources that did
// answer, the mediator snapshots those versions, and CheckFresh later
// reports which of them have changed — telling the user whether
// resubmitting the answer would mix stale data with fresh.

// snapshotPartial records, on a partial answer, the data versions of every
// collection the plan read from the sources that did answer. ctx is the
// caller's context — not the (usually already-expired) evaluation context
// the partial answer came out of: the snapshot gets its own timeout but
// must still die with the caller.
func (m *Mediator) snapshotPartial(ctx context.Context, plan algebra.Node, ans *partial.Answer) {
	if ans.Complete {
		return
	}
	down := map[string]bool{}
	for _, r := range ans.Unavailable {
		down[r] = true
	}
	// Which source collections did each answering repository contribute?
	read := map[string]map[string]bool{}
	for _, sub := range algebra.Submits(plan) {
		if down[sub.Repo] {
			continue
		}
		algebra.Walk(sub.Input, func(n algebra.Node) {
			if g, ok := n.(*algebra.Get); ok {
				if read[sub.Repo] == nil {
					read[sub.Repo] = map[string]bool{}
				}
				read[sub.Repo][g.Ref.Source] = true
			}
		})
	}
	snapshot := map[string]map[string]int64{}
	for repo, colls := range read {
		versions, err := m.sourceVersions(ctx, repo)
		if err != nil || versions == nil {
			continue // unversioned or unreachable: nothing to record
		}
		for coll := range colls {
			v, ok := versions[coll]
			if !ok {
				continue
			}
			if snapshot[repo] == nil {
				snapshot[repo] = map[string]int64{}
			}
			snapshot[repo][coll] = v
		}
	}
	if len(snapshot) > 0 {
		ans.Snapshot = snapshot
	}
}

// CheckFresh reports which repositories' embedded data has changed since a
// partial answer was produced. An empty result means every source that
// contributed data is unchanged (or does not track versions).
func (m *Mediator) CheckFresh(ans *partial.Answer) ([]string, error) {
	//lint:allow ctxflow compat shim for the context-free public API; context-aware callers use CheckFreshContext
	return m.CheckFreshContext(context.Background(), ans)
}

// CheckFreshContext is CheckFresh bounded by the caller's context: each
// over-the-wire version read gets the mediator's timeout but dies with
// the caller.
func (m *Mediator) CheckFreshContext(ctx context.Context, ans *partial.Answer) ([]string, error) {
	var stale []string
	for repo, snap := range ans.Snapshot {
		current, err := m.sourceVersions(ctx, repo)
		if err != nil {
			return nil, err
		}
		for coll, v := range snap {
			if current[coll] != v {
				stale = append(stale, repo)
				break
			}
		}
	}
	sort.Strings(stale)
	return stale, nil
}

// sourceVersions reads the current collection versions of a repository's
// source: directly for in-process engines, over the wire otherwise. A nil
// map means the source does not track versions. The wire read gets the
// mediator's timeout within whatever budget ctx still carries.
func (m *Mediator) sourceVersions(ctx context.Context, repo string) (map[string]int64, error) {
	r, err := m.catalog.Repository(repo)
	if err != nil {
		return nil, err
	}
	if name, ok := strings.CutPrefix(r.Address, "mem:"); ok {
		m.mu.Lock()
		eng, found := m.engines[name]
		m.mu.Unlock()
		if !found {
			return nil, nil
		}
		if v, ok := eng.(source.Versioned); ok {
			return v.Versions(), nil
		}
		return nil, nil
	}
	if r.Address == "" || strings.HasPrefix(r.Address, "file:") {
		return nil, nil
	}
	ctx, cancel := context.WithTimeout(ctx, m.timeout)
	defer cancel()
	// Reuse the mediator's pooled client for the address instead of
	// building (and dialing) a throwaway one per check.
	return m.clientFor(r.Address).Versions(ctx)
}
