// Package core implements the DISCO mediator: the component that accepts
// ODL definitions and OQL queries, models data sources as first-class
// objects through the catalog, optimizes queries against wrapper
// capabilities and learned costs, executes them across data sources, and
// answers with partial-evaluation semantics when sources are unavailable.
//
// It is the paper's Mediator Prototype 0 (Figure 2) grown to the full
// design: OQL/ODL parsers feed the internal database (catalog), the query
// optimizer produces trees, the run-time system drives wrappers, and the
// result — possibly a query — returns to the caller.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"disco/internal/catalog"
	"disco/internal/costmodel"
	"disco/internal/odl"
	"disco/internal/optimizer"
	"disco/internal/source"
	"disco/internal/wire"
	"disco/internal/wrapper"
)

// DefaultTimeout is the §4 "designated time" after which data sources that
// have not answered are classified unavailable.
const DefaultTimeout = 2 * time.Second

// DefaultHedgeFloor is the minimum elapsed time before a submit may hedge:
// below it a backup request saves nothing and a cold cost history (or a
// microsecond-fast source) would otherwise hedge every call.
const DefaultHedgeFloor = time.Millisecond

// Mediator is a DISCO mediator instance. It is safe for concurrent use.
type Mediator struct {
	catalog *catalog.Catalog
	history *costmodel.History
	opt     *optimizer.Optimizer

	// Timeout bounds query evaluation; sources that do not answer within
	// it yield partial answers (QueryPartial) or errors (Query).
	timeout time.Duration
	// maxFanout bounds how many partition shards one scatter-gather drains
	// concurrently; 0 means unbounded.
	maxFanout int

	// breakers is the per-source circuit-breaker set fed by the
	// availability classifier and consulted by replica routing and the
	// cost model.
	breakers         *Breakers
	breakerThreshold int
	breakerCooldown  time.Duration

	// loadBalance spreads reads across the breaker-healthy copies of a
	// shard weighted by inverse estimated latency, instead of always
	// routing to the front of the cost-ordered candidate list.
	loadBalance bool
	// hedge enables backup submits for calls that outlast the hedge
	// trigger (and the scatter-gather straggler hook that rides it);
	// hedgeFloor bounds the trigger from below.
	hedge      bool
	hedgeFloor time.Duration

	// admit, when non-nil, is the admission gate (WithAdmission): the
	// overload-protection layer that bounds concurrent query execution,
	// queues a bounded FIFO of waiters, and sheds the rest with a typed
	// OverloadError before any source is dialed.
	admit *admission

	// submits counts every source attempt; with hedgesFired it forms the
	// global hedge budget (hedges are bounded to a fraction of traffic so
	// a slow spell cannot stampede the replicas). hedgesWon feeds the
	// Trace counters.
	submits     atomic.Int64
	hedgesFired atomic.Int64
	hedgesWon   atomic.Int64

	// Degradation counters surfaced through Trace and OverloadStats:
	// sheds counts queries refused by the admission gate, retries counts
	// transient source errors re-attempted under the retry budget, and
	// retryExhausted counts transients that could not retry because the
	// budget was spent.
	sheds          atomic.Int64
	retries        atomic.Int64
	retryExhausted atomic.Int64

	// epoch/readers implement the migration cutover drain: every query
	// executes inside the reader epoch current when it started, and
	// destructive migration cleanup (clearing a released shard) first flips
	// the epoch and waits for the old one to empty. A plan resolved against
	// the pre-cutover catalog therefore finishes before the shard it still
	// reads is wiped — the cleanup can never turn an in-flight dual-read
	// answer into silent row loss.
	epoch   atomic.Int64
	readers [2]atomic.Int64

	// shardMu guards shardReads: logical reads per shard (extent@repo),
	// counted once per submit regardless of failover/hedge attempts — the
	// traffic denominator hotspot detection divides by.
	shardMu    sync.Mutex
	shardReads map[string]int64

	// probeMu/probeClosed/probeWG track the background half-open probes,
	// so Close can refuse new ones and wait out those in flight instead
	// of letting them dial through a released client pool.
	probeMu     sync.Mutex
	probeClosed bool
	probeWG     sync.WaitGroup

	mu       sync.Mutex
	engines  map[string]source.Engine   // in-process engines by mem: name
	wrappers map[string]wrapper.Wrapper // instantiated per wrapper/repo pair
	clients  map[string]*wire.Client    // pooled wire clients by address

	// Prepared-statement cache: full Prepare pipelines (parse, view
	// expansion, compile, optimize) keyed by query text, flushed whenever
	// the catalog version moves (§3.3 invalidation for the whole pipeline).
	prepMu     sync.Mutex
	prepared   map[string]preparedPlan
	prepOrder  []string
	preparedAt int64
}

// Option configures a Mediator.
type Option func(*Mediator)

// WithTimeout sets the evaluation deadline for sources.
func WithTimeout(d time.Duration) Option {
	return func(m *Mediator) {
		if d > 0 {
			m.timeout = d
		}
	}
}

// WithHistory shares a cost history (useful for tests and for warm starts).
func WithHistory(h *costmodel.History) Option {
	return func(m *Mediator) { m.history = h }
}

// WithMaxFanout bounds how many partitions of a sharded extent the mediator
// queries concurrently (0 = all at once).
func WithMaxFanout(n int) Option {
	return func(m *Mediator) {
		if n > 0 {
			m.maxFanout = n
		}
	}
}

// WithBreaker tunes the per-source circuit breakers: a source opens after
// threshold consecutive classified unavailabilities and is probed again
// (half-open) after cooldown. Zero values keep the defaults
// (DefaultBreakerThreshold, DefaultBreakerCooldown).
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(m *Mediator) {
		m.breakerThreshold = threshold
		m.breakerCooldown = cooldown
	}
}

// WithAdmission installs the admission gate — the mediator's overload
// protection. At most maxConcurrent queries execute at once; up to
// maxQueued more wait in FIFO order for at most maxWait (non-positive
// values keep DefaultMaxQueued / DefaultMaxQueueWait); everything beyond
// that is shed immediately with an *OverloadError, before any source is
// dialed. A query whose remaining deadline cannot cover the gate's
// observed median service time is shed on arrival rather than queued to
// die waiting. Shedding keeps the latency of admitted queries bounded
// when offered load exceeds capacity — the callers that were answered
// were answered within the SLO, and the rest learned it immediately.
func WithAdmission(maxConcurrent, maxQueued int, maxWait time.Duration) Option {
	return func(m *Mediator) {
		if maxConcurrent > 0 {
			m.admit = newAdmission(maxConcurrent, maxQueued, maxWait)
		}
	}
}

// WithLoadBalancing routes each read to a weighted-random breaker-healthy
// copy of its shard — weight inverse to the copy's estimated latency, with
// an exploration floor so even a slow copy keeps a trickle of traffic that
// notices when it recovers. Without it replicas are a failover path only:
// every read goes to the single best copy.
func WithLoadBalancing() Option {
	return func(m *Mediator) { m.loadBalance = true }
}

// WithHedging enables hedged requests: a submit that has outlasted the
// best healthy copy's historical p99 (never less than floor; non-positive
// floor keeps DefaultHedgeFloor) fires a backup submit to the next-ranked
// replica and the first answer wins. A global budget bounds hedges to a
// fraction of total traffic. Hedging also arms the scatter-gather
// straggler hook: fan-out branches still running after most others
// finished are hedged immediately.
func WithHedging(floor time.Duration) Option {
	return func(m *Mediator) {
		m.hedge = true
		if floor > 0 {
			m.hedgeFloor = floor
		}
	}
}

// New returns an empty mediator.
func New(opts ...Option) *Mediator {
	m := &Mediator{
		catalog:    catalog.New(),
		history:    costmodel.New(),
		timeout:    DefaultTimeout,
		hedgeFloor: DefaultHedgeFloor,
		engines:    make(map[string]source.Engine),
		wrappers:   make(map[string]wrapper.Wrapper),
		clients:    make(map[string]*wire.Client),
		shardReads: make(map[string]int64),
	}
	for _, o := range opts {
		o(m)
	}
	m.breakers = NewBreakers(m.breakerThreshold, m.breakerCooldown)
	m.opt = optimizer.NewWithCapabilities(&mediatorCaps{m: m}, m.history)
	// The cost model consults the breakers: a submit to a source whose
	// breaker is open is charged the evaluation timeout it would likely
	// burn, and breaker transitions flush cached plan choices — the
	// optimizer's plan cache and the prepared-statement cache both, since
	// a prepared entry would otherwise keep serving an availability-
	// penalized plan without ever re-optimizing.
	m.opt.SetAvailability(
		func(repo string) bool { return m.breakers.State(repo) != BreakerOpen },
		float64(m.timeout)/float64(time.Millisecond),
	)
	m.breakers.SetNotify(func() {
		m.opt.InvalidateCache()
		m.flushPrepared()
	})
	return m
}

// BreakerState reports the circuit-breaker state the mediator holds for a
// repository (monitoring, tests).
func (m *Mediator) BreakerState(repo string) BreakerState {
	return m.breakers.State(repo)
}

// Catalog exposes the mediator's internal database.
func (m *Mediator) Catalog() *catalog.Catalog { return m.catalog }

// History exposes the learned cost history.
func (m *Mediator) History() *costmodel.History { return m.history }

// Timeout reports the evaluation deadline.
func (m *Mediator) Timeout() time.Duration { return m.timeout }

// RegisterEngine attaches an in-process data source under a mem: name:
// a repository declared with address="mem:NAME" resolves to it.
func (m *Mediator) RegisterEngine(name string, e source.Engine) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.engines[name] = e
}

// ExecODL parses and applies a sequence of ODL statements: interface and
// extent declarations, Repository/Wrapper construction, view definitions
// and extent drops.
func (m *Mediator) ExecODL(src string) error {
	stmts, err := odl.Parse(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if err := m.Apply(s); err != nil {
			return err
		}
	}
	return nil
}

// Apply applies one parsed ODL statement to the catalog.
func (m *Mediator) Apply(stmt odl.Statement) error {
	switch s := stmt.(type) {
	case *odl.InterfaceDecl:
		return m.catalog.DefineInterface(s.Iface)
	case *odl.RepositoryDecl:
		return m.catalog.AddRepository(&catalog.Repository{
			Name:    s.Name,
			Host:    s.Props["host"],
			Address: s.Props["address"],
			DB:      s.Props["name"],
			Props:   s.Props,
		})
	case *odl.WrapperDecl:
		return m.catalog.AddWrapper(&catalog.Wrapper{
			Name:  s.Name,
			Kind:  normalizeWrapperKind(s.Kind),
			Props: s.Props,
		})
	case *odl.ExtentDecl:
		return m.catalog.AddExtent(&catalog.MetaExtent{
			Name:         s.Name,
			Iface:        s.Iface,
			Wrapper:      s.Wrapper,
			Repository:   s.Repository,
			Repositories: s.Repositories,
			Replicas:     s.Replicas,
			Scheme:       s.Scheme,
			SourceName:   s.SourceName,
			AttrMap:      s.AttrMap,
		})
	case *odl.ViewDecl:
		return m.catalog.DefineView(s.Name, s.Query)
	case *odl.DropExtentDecl:
		return m.catalog.DropExtent(s.Name)
	case *odl.MigrateDecl:
		return m.catalog.RestoreMigration(&catalog.Migration{
			Extent: s.Extent, Kind: s.Kind, From: s.From, To: s.To,
			SplitAt: s.SplitAt, Phase: s.Phase,
		})
	default:
		return fmt.Errorf("mediator: unknown statement %T", stmt)
	}
}

// normalizeWrapperKind maps the WrapperX() constructor suffixes onto the
// implemented wrapper kinds.
func normalizeWrapperKind(kind string) string {
	switch kind {
	case "postgres", "sql", "relational", "oracle", "sybase":
		return "sql"
	case "scan", "file":
		return "scan"
	case "doc", "wais", "keyword":
		return "doc"
	case "csv":
		return "csv"
	case "mediator", "disco":
		return "mediator"
	default:
		return kind
	}
}
