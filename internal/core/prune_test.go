package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/source"
	"disco/internal/types"
)

// countingEngine wraps an in-process engine and counts source calls, so
// tests can assert exactly how many shards a query touched.
type countingEngine struct {
	inner source.Engine
	mu    sync.Mutex
	calls int
}

func (e *countingEngine) Query(q string) (*types.Bag, error) {
	e.mu.Lock()
	e.calls++
	e.mu.Unlock()
	return e.inner.Query(q)
}

func (e *countingEngine) Collections() []string { return e.inner.Collections() }

func (e *countingEngine) count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls
}

func resetCounts(engines []*countingEngine) {
	for _, e := range engines {
		e.mu.Lock()
		e.calls = 0
		e.mu.Unlock()
	}
}

func totalCalls(engines []*countingEngine) int {
	n := 0
	for _, e := range engines {
		n += e.count()
	}
	return n
}

// hashMediator builds a mediator over one extent hash-partitioned across n
// shards, with rows id 0..rows-1 placed by the same hash the optimizer
// routes with. It returns the mediator and the per-shard counting engines.
func hashMediator(t *testing.T, shards, rows int) (*Mediator, []*countingEngine) {
	t.Helper()
	m := New(WithTimeout(2 * time.Second))
	engines := make([]*countingEngine, shards)
	stores := make([]*source.RelStore, shards)
	var odl strings.Builder
	var repos []string
	for i := 0; i < shards; i++ {
		stores[i] = source.NewRelStore()
		if err := stores[i].CreateTable("people", "id", "name", "salary"); err != nil {
			t.Fatal(err)
		}
		engines[i] = &countingEngine{inner: stores[i]}
		repo := fmt.Sprintf("r%d", i)
		repos = append(repos, repo)
		m.RegisterEngine(repo, engines[i])
		fmt.Fprintf(&odl, "%s := Repository(address=%q);\n", repo, "mem:"+repo)
	}
	for id := 0; id < rows; id++ {
		shard := int(algebra.HashValue(types.Int(int64(id))) % uint64(shards))
		if err := stores[shard].Insert("people",
			types.Int(int64(id)), types.Str(fmt.Sprintf("p%d", id)), types.Int(int64(id%97))); err != nil {
			t.Fatal(err)
		}
	}
	odl.WriteString(`
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at ` + strings.Join(repos, ", ") + `
		    partition by hash(id);
	`)
	if err := m.ExecODL(odl.String()); err != nil {
		t.Fatal(err)
	}
	return m, engines
}

// TestHashPointQuerySubmitsOnce is the tentpole's headline property: a point
// lookup on a hash-partitioned 16-shard extent contacts exactly one
// repository, while a full scan still contacts all 16.
func TestHashPointQuerySubmitsOnce(t *testing.T) {
	m, engines := hashMediator(t, 16, 64)

	resetCounts(engines)
	v, err := m.Query(`select x.name from x in people where x.id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.Str("p7"))
	if !v.Equal(want) {
		t.Errorf("point query = %s, want %s", v, want)
	}
	if got := totalCalls(engines); got != 1 {
		t.Errorf("point query made %d source calls, want exactly 1", got)
	}
	home := int(algebra.HashValue(types.Int(7)) % 16)
	if engines[home].count() != 1 {
		t.Errorf("the one call should hit shard %d (the hash slot of 7)", home)
	}

	resetCounts(engines)
	v, err = m.Query(`select x.name from x in people`)
	if err != nil {
		t.Fatal(err)
	}
	if bag, ok := v.(*types.Bag); !ok || bag.Len() != 64 {
		t.Errorf("full scan returned %s, want 64 rows", v)
	}
	if got := totalCalls(engines); got != 16 {
		t.Errorf("full scan made %d source calls, want 16", got)
	}
}

// TestHashInListPrunesToMemberShards: an IN over constants contacts only the
// member values' hash slots.
func TestHashInListPrunesToMemberShards(t *testing.T) {
	m, engines := hashMediator(t, 16, 64)
	resetCounts(engines)
	v, err := m.Query(`select x.name from x in people where x.id in bag(3, 11)`)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.Str("p3"), types.Str("p11"))
	if !v.Equal(want) {
		t.Errorf("in-list query = %s, want %s", v, want)
	}
	shards := map[int]bool{
		int(algebra.HashValue(types.Int(3)) % 16):  true,
		int(algebra.HashValue(types.Int(11)) % 16): true,
	}
	if got := totalCalls(engines); got != len(shards) {
		t.Errorf("in-list made %d source calls, want %d", got, len(shards))
	}
	for i, e := range engines {
		if (e.count() > 0) != shards[i] {
			t.Errorf("shard %d calls = %d, member shard = %v", i, e.count(), shards[i])
		}
	}
}

// rangeMediator builds a mediator over one extent range-partitioned as
// (..10, 10..20, 20..) across three shards, rows placed accordingly.
func rangeMediator(t *testing.T) (*Mediator, []*countingEngine) {
	t.Helper()
	m := New(WithTimeout(2 * time.Second))
	engines := make([]*countingEngine, 3)
	stores := make([]*source.RelStore, 3)
	var odl strings.Builder
	for i := 0; i < 3; i++ {
		stores[i] = source.NewRelStore()
		if err := stores[i].CreateTable("people", "id", "name", "salary"); err != nil {
			t.Fatal(err)
		}
		engines[i] = &countingEngine{inner: stores[i]}
		repo := fmt.Sprintf("r%d", i)
		m.RegisterEngine(repo, engines[i])
		fmt.Fprintf(&odl, "%s := Repository(address=%q);\n", repo, "mem:"+repo)
	}
	spec := &algebra.PartitionSpec{Kind: algebra.PartRange, Attr: "id", Ranges: []algebra.RangeBound{
		{Hi: types.Int(10)},
		{Lo: types.Int(10), Hi: types.Int(20)},
		{Lo: types.Int(20)},
	}}
	for _, id := range []int{5, 9, 10, 15, 20, 25} {
		shard := spec.Locate(types.Int(int64(id)), 3)
		if err := stores[shard].Insert("people",
			types.Int(int64(id)), types.Str(fmt.Sprintf("p%d", id)), types.Int(int64(id))); err != nil {
			t.Fatal(err)
		}
	}
	odl.WriteString(`
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at r0, r1, r2
		    partition by range(id) (..10, 10..20, 20..);
	`)
	if err := m.ExecODL(odl.String()); err != nil {
		t.Fatal(err)
	}
	return m, engines
}

// TestRangePruningBoundaries pins the interval semantics: Lo is inclusive,
// Hi exclusive, so id = 10 lives in 10..20, not ..10.
func TestRangePruningBoundaries(t *testing.T) {
	m, engines := rangeMediator(t)
	cases := []struct {
		query string
		want  *types.Bag
		calls [3]int
	}{
		// The boundary value routes to the shard whose Lo it equals.
		{`select x.name from x in people where x.id = 10`,
			types.NewBag(types.Str("p10")), [3]int{0, 1, 0}},
		{`select x.name from x in people where x.id = 9`,
			types.NewBag(types.Str("p9")), [3]int{1, 0, 0}},
		// Order predicates keep only shards whose interval intersects.
		{`select x.name from x in people where x.id < 10`,
			types.NewBag(types.Str("p5"), types.Str("p9")), [3]int{1, 0, 0}},
		{`select x.name from x in people where x.id <= 10`,
			types.NewBag(types.Str("p5"), types.Str("p9"), types.Str("p10")), [3]int{1, 1, 0}},
		{`select x.name from x in people where x.id >= 20`,
			types.NewBag(types.Str("p20"), types.Str("p25")), [3]int{0, 0, 1}},
		{`select x.name from x in people where x.id > 20`,
			types.NewBag(types.Str("p25")), [3]int{0, 0, 1}},
		// id > 19 cannot prune 10..20: the schema says Short, but the
		// pruner reasons over the declared interval's real endpoints (a
		// 19.5 would belong to that shard), so it conservatively keeps it.
		{`select x.name from x in people where x.id > 19`,
			types.NewBag(types.Str("p20"), types.Str("p25")), [3]int{0, 1, 1}},
		{`select x.name from x in people where x.id >= 10 and x.id < 20`,
			types.NewBag(types.Str("p10"), types.Str("p15")), [3]int{0, 1, 0}},
		// The flipped spelling prunes the same way.
		{`select x.name from x in people where 20 <= x.id`,
			types.NewBag(types.Str("p20"), types.Str("p25")), [3]int{0, 0, 1}},
	}
	for _, c := range cases {
		resetCounts(engines)
		v, err := m.Query(c.query)
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		if !v.Equal(c.want) {
			t.Errorf("%s = %s, want %s", c.query, v, c.want)
		}
		for i, e := range engines {
			if e.count() != c.calls[i] {
				t.Errorf("%s: shard %d calls = %d, want %d", c.query, i, e.count(), c.calls[i])
			}
		}
	}
}

// TestEmptySurvivorSetMakesNoCalls: contradictory conjuncts prune every
// shard, and the query answers an empty bag without touching any source.
func TestEmptySurvivorSetMakesNoCalls(t *testing.T) {
	m, engines := rangeMediator(t)
	resetCounts(engines)
	v, err := m.Query(`select x.name from x in people where x.id = 5 and x.id = 15`)
	if err != nil {
		t.Fatal(err)
	}
	if bag, ok := v.(*types.Bag); !ok || bag.Len() != 0 {
		t.Errorf("contradiction = %s, want empty bag", v)
	}
	if got := totalCalls(engines); got != 0 {
		t.Errorf("contradiction made %d source calls, want 0", got)
	}

	// An empty IN list excludes every shard too.
	resetCounts(engines)
	v, err = m.Query(`select x.name from x in people where x.id in bag()`)
	if err != nil {
		t.Fatal(err)
	}
	if bag, ok := v.(*types.Bag); !ok || bag.Len() != 0 {
		t.Errorf("empty in-list = %s, want empty bag", v)
	}
	if got := totalCalls(engines); got != 0 {
		t.Errorf("empty in-list made %d source calls, want 0", got)
	}
}

// TestPrunedShardsNamedInReport: EXPLAIN names the shards pruning removed,
// so the DBA can see which sources a query skips.
func TestPrunedShardsNamedInReport(t *testing.T) {
	m, _ := rangeMediator(t)
	report, err := m.Explain(`select x.name from x in people where x.id = 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "pruned shards: people@r0, people@r2") {
		t.Errorf("report should name the pruned shards:\n%s", report)
	}
}

// coPartitionedMediator declares two extents hash-partitioned by the same
// attribute over the same four repositories, with matching rows co-located.
func coPartitionedMediator(t *testing.T) (*Mediator, []*countingEngine) {
	t.Helper()
	m := New(WithTimeout(2 * time.Second))
	engines := make([]*countingEngine, 4)
	var odl strings.Builder
	for i := 0; i < 4; i++ {
		s := source.NewRelStore()
		if err := s.CreateTable("people", "id", "name", "salary"); err != nil {
			t.Fatal(err)
		}
		if err := s.CreateTable("bonus", "id", "amount"); err != nil {
			t.Fatal(err)
		}
		engines[i] = &countingEngine{inner: s}
		repo := fmt.Sprintf("r%d", i)
		m.RegisterEngine(repo, engines[i])
		fmt.Fprintf(&odl, "%s := Repository(address=%q);\n", repo, "mem:"+repo)
		// Co-partitioned placement: a person and its bonus land together.
		for id := 0; id < 32; id++ {
			if int(algebra.HashValue(types.Int(int64(id)))%4) != i {
				continue
			}
			if err := s.Insert("people",
				types.Int(int64(id)), types.Str(fmt.Sprintf("p%d", id)), types.Int(int64(id))); err != nil {
				t.Fatal(err)
			}
			if err := s.Insert("bonus",
				types.Int(int64(id)), types.Int(int64(id*10))); err != nil {
				t.Fatal(err)
			}
		}
	}
	odl.WriteString(`
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		interface Bonus (extent allbonus) {
		    attribute Short id;
		    attribute Short amount;
		}
		extent people of Person wrapper w0 at r0, r1, r2, r3
		    partition by hash(id);
		extent bonus of Bonus wrapper w0 at r0, r1, r2, r3
		    partition by hash(id);
	`)
	if err := m.ExecODL(odl.String()); err != nil {
		t.Fatal(err)
	}
	return m, engines
}

// TestPartitionWiseJoinRuntime: a co-partitioned equi-join answers the full
// join while calling each repository once per extent (4 shards x 2 sides =
// 8 calls), never the 4x4 all-pairs fan-out a cross-shard join would need.
func TestPartitionWiseJoinRuntime(t *testing.T) {
	m, engines := coPartitionedMediator(t)
	resetCounts(engines)
	v, err := m.Query(`select struct(name: x.name, amount: y.amount) from x in people, y in bonus where x.id = y.id`)
	if err != nil {
		t.Fatal(err)
	}
	bag, ok := v.(*types.Bag)
	if !ok || bag.Len() != 32 {
		t.Fatalf("join = %s, want 32 rows", v)
	}
	for id := 0; id < 32; id += 13 {
		probe := types.NewStruct(
			types.Field{Name: "name", Value: types.Str(fmt.Sprintf("p%d", id))},
			types.Field{Name: "amount", Value: types.Int(int64(id * 10))},
		)
		if types.Multiplicity(bag, probe) != 1 {
			t.Errorf("join result misses %s", probe)
		}
	}
	if got := totalCalls(engines); got > 8 {
		t.Errorf("co-partitioned join made %d source calls, want at most 8 (one per shard per side)", got)
	}
	for i, e := range engines {
		if e.count() > 2 {
			t.Errorf("shard %d answered %d calls, want at most 2", i, e.count())
		}
	}
}

// TestPartitionWiseJoinWithPointPredicate: adding a point predicate on the
// partition attribute prunes both sides to the key's home shard.
func TestPartitionWiseJoinWithPointPredicate(t *testing.T) {
	m, engines := coPartitionedMediator(t)
	resetCounts(engines)
	v, err := m.Query(`select struct(name: x.name, amount: y.amount) from x in people, y in bonus where x.id = y.id and x.id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.NewStruct(
		types.Field{Name: "name", Value: types.Str("p5")},
		types.Field{Name: "amount", Value: types.Int(50)},
	))
	if !v.Equal(want) {
		t.Errorf("point join = %s, want %s", v, want)
	}
	if got := totalCalls(engines); got > 2 {
		t.Errorf("point join made %d source calls, want at most 2 (both sides at the home shard)", got)
	}
	home := int(algebra.HashValue(types.Int(5)) % 4)
	for i, e := range engines {
		if i != home && e.count() > 0 {
			t.Errorf("shard %d was contacted; only home shard %d holds id 5", i, home)
		}
	}

	// The report accounts for every skipped source: the people shards the
	// point predicate pruned AND their bonus counterparts the partition-wise
	// join dropped.
	report, err := m.Explain(`select struct(name: x.name, amount: y.amount) from x in people, y in bonus where x.id = y.id and x.id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	prunedLine := ""
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "pruned shards:") {
			prunedLine = line
		}
	}
	for _, shard := range []string{"people@", "bonus@"} {
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("%sr%d", shard, i)
			if got, want := strings.Contains(prunedLine, name), i != home; got != want {
				t.Errorf("pruned line lists %s = %v, want %v:\n%s", name, got, want, prunedLine)
			}
		}
	}
}
