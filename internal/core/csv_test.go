package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"disco/internal/source"
	"disco/internal/types"
)

// relFromRows builds a RelStore with an (id, name, salary) table.
func relFromRows(t *testing.T, table string, rows [][3]interface{}) *source.RelStore {
	t.Helper()
	s := source.NewRelStore()
	if err := s.CreateTable(table, "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := s.Insert(table,
			types.Int(int64(r[0].(int))), types.Str(r[1].(string)), types.Int(int64(r[2].(int)))); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestCSVWrapperViaODL: a CSV file joins the federation through the csv
// wrapper kind, with filtering executed inside the wrapper.
func TestCSVWrapperViaODL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lab.csv")
	csv := "sample,ph,lead\nS1,7.2,11\nS2,6.1,48\nS3,6.9,3\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}

	m := New(WithTimeout(300 * time.Millisecond))
	if err := m.ExecODL(`
		rlab := Repository(address="file:lab");
		wcsv := Wrapper("csv", path="` + path + `", collection="lab");
		interface Sample (extent samples) {
		    attribute String sample;
		    attribute Float ph;
		    attribute Short lead;
		}
		extent lab of Sample wrapper wcsv repository rlab;
	`); err != nil {
		t.Fatal(err)
	}

	got := m.MustQuery(`select s.sample from s in lab where s.lead > 10`)
	want := types.NewBag(types.Str("S1"), types.Str("S2"))
	if !got.Equal(want) {
		t.Errorf("csv query = %s, want %s", got, want)
	}

	// The CSV wrapper advertises select support, so the predicate pushes
	// into the wrapper (which runs it over the loaded file).
	explain, err := m.Explain(`select s.sample from s in lab where s.lead > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "submit(rlab, project([sample], select(lead > 10, get(lab))))") {
		t.Errorf("csv wrapper should accept pushdown:\n%s", explain)
	}

	// Mixed federation: CSV data joins relational data.
	rel := relFromRows(t, "person0", [][3]interface{}{{1, "S1", 10}})
	m.RegisterEngine("r0", rel)
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
	`); err != nil {
		t.Fatal(err)
	}
	joined := m.MustQuery(`select struct(who: p.name, ph: s.ph)
		from p in person0, s in lab where p.name = s.sample`)
	if joined.(*types.Bag).Len() != 1 {
		t.Errorf("cross-engine join = %s", joined)
	}
}

func TestCSVWrapperMissingProps(t *testing.T) {
	m := New()
	if err := m.ExecODL(`
		rlab := Repository(address="file:x");
		wcsv := Wrapper("csv");
		interface T (extent ts) { attribute String a; }
		extent data of T wrapper wcsv repository rlab;
	`); err != nil {
		t.Fatal(err) // declaration is fine; instantiation fails at first use
	}
	if _, err := m.Query(`select t from t in data`); err == nil ||
		!strings.Contains(err.Error(), "path and collection") {
		t.Errorf("err = %v", err)
	}
}
