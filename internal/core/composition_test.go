package core

import (
	"strings"
	"testing"
	"time"

	"disco/internal/types"
	"disco/internal/wire"
)

// composedFederation builds the three-level Figure 1 stack: two TCP data
// sources under a lower mediator, itself a source of an upper mediator.
func composedFederation(t *testing.T) (src0, src1 *wire.Server, lower, upper *Mediator) {
	t.Helper()
	r0, r1 := paperStores(t)
	var err error
	src0, err = wire.NewServer("127.0.0.1:0", EngineHandler{Engine: r0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src0.Close() })
	src1, err = wire.NewServer("127.0.0.1:0", EngineHandler{Engine: r1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src1.Close() })

	lower = New(WithTimeout(250 * time.Millisecond))
	if err := lower.ExecODL(`
		r0 := Repository(address="` + src0.Addr() + `");
		r1 := Repository(address="` + src1.Addr() + `");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;
	`); err != nil {
		t.Fatal(err)
	}
	lowerSrv, err := lower.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lowerSrv.Close() })

	upper = New(WithTimeout(2 * time.Second))
	if err := upper.ExecODL(`
		rlower := Repository(address="` + lowerSrv.Addr() + `");
		wmed := Wrapper("mediator");
		interface Person (extent staff) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person of Person wrapper wmed repository rlower;
	`); err != nil {
		t.Fatal(err)
	}
	return src0, src1, lower, upper
}

// TestPartialAnswersComposeAcrossMediators: with a bottom-level source
// down, the lower mediator answers partially; the upper mediator classifies
// that as unavailability and emits its own resubmittable answer. After the
// bottom source recovers, resubmitting the upper answer yields the full
// result — partial evaluation composes through the M-over-M stack.
func TestPartialAnswersComposeAcrossMediators(t *testing.T) {
	src0, _, _, upper := composedFederation(t)
	const q = `select x.name from x in person where x.salary > 10`

	// Baseline through both levels.
	full, err := upper.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !full.Equal(want) {
		t.Fatalf("baseline = %s", full)
	}

	// Bottom source dies. The lower mediator can only answer partially,
	// so the upper's partial answer references its own extent.
	src0.SetAvailable(false)
	ans, err := upper.QueryPartial(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Fatal("upper answer should be partial")
	}
	if !strings.Contains(ans.Residual.String(), "person") {
		t.Errorf("upper residual should reference the federated extent: %s", ans.Residual)
	}
	if len(ans.Unavailable) != 1 || ans.Unavailable[0] != "rlower" {
		t.Errorf("upper unavailable = %v, want the lower mediator's repo", ans.Unavailable)
	}

	// Recovery at the bottom; resubmission at the top.
	src0.SetAvailable(true)
	re, err := upper.QueryPartial(ans.Residual.String())
	if err != nil {
		t.Fatal(err)
	}
	if !re.Complete {
		t.Fatalf("resubmission should complete: %s", re.Residual)
	}
	if !re.Value.Equal(want) {
		t.Errorf("resubmitted = %s, want %s", re.Value, want)
	}
}

// TestLowerMediatorStillAnswersDirectly: the same outage produces the §1.3
// answer at the lower level, independent of the upper mediator.
func TestLowerMediatorStillAnswersDirectly(t *testing.T) {
	src0, _, lower, _ := composedFederation(t)
	src0.SetAvailable(false)
	ans, err := lower.QueryPartial(`select x.name from x in person where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Fatal("expected partial")
	}
	want := `union(select x.name from x in person0 where x.salary > 10, bag("Sam"))`
	if ans.Residual.String() != want {
		t.Errorf("lower residual = %s, want %s", ans.Residual, want)
	}
}

// TestConcurrentQueriesOneMediator: the mediator is safe under parallel
// queries (shared catalog, optimizer cache, cost history, wrappers).
func TestConcurrentQueriesOneMediator(t *testing.T) {
	m := paperMediator(t)
	queries := []string{
		`select x.name from x in person where x.salary > 10`,
		`count(person)`,
		`select struct(n: x.name) from x in person0`,
		`sum(select x.salary from x in person)`,
	}
	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func(i int) {
			_, err := m.Query(queries[i%len(queries)])
			done <- err
		}(i)
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
