package core

import (
	"context"
	"fmt"
	"time"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/partial"
	"disco/internal/types"
)

// Trace records the Figure 2 pipeline stages for one query.
type Trace struct {
	Parse    time.Duration
	Expand   time.Duration // view expansion against the internal db
	Compile  time.Duration
	Optimize time.Duration
	Execute  time.Duration
	Plan     string
	CacheHit bool
	// HedgesFired/HedgesWon count hedged backup submits launched, and won,
	// during this query's execution window. The counters are mediator-wide,
	// so concurrent queries see each other's hedges.
	HedgesFired int64
	HedgesWon   int64
}

// Prepare runs the front half of the pipeline: parse, view expansion,
// compilation and optimization. The returned plan can be executed multiple
// times.
//
// Results are cached per (query text, catalog version): a repeated query
// skips the whole front half — the returned Trace reports CacheHit with
// every stage timing at zero. Any catalog change (ExecODL, Define, drops)
// invalidates the cache.
func (m *Mediator) Prepare(src string) (algebra.Node, *Trace, error) {
	entry, tr, err := m.prepare(src)
	return entry.plan, tr, err
}

// prepare is Prepare plus the plan's compiled-program cache: executions of
// a prepared plan share it, so operator expressions compile once per
// prepared statement rather than once per query.
func (m *Mediator) prepare(src string) (preparedPlan, *Trace, error) {
	version := m.catalog.Version()
	if entry, ok := m.preparedLookup(src, version); ok {
		return entry, &Trace{Plan: entry.str, CacheHit: true}, nil
	}

	tr := &Trace{}
	t0 := time.Now()
	expr, err := oql.ParseQuery(src)
	if err != nil {
		return preparedPlan{}, tr, err
	}
	tr.Parse = time.Since(t0)

	t0 = time.Now()
	expanded, err := m.expandViews(expr)
	if err != nil {
		return preparedPlan{}, tr, err
	}
	tr.Expand = time.Since(t0)

	t0 = time.Now()
	plan, err := algebra.Compile(expanded, planResolver{m: m})
	if err != nil {
		return preparedPlan{}, tr, err
	}
	tr.Compile = time.Since(t0)

	t0 = time.Now()
	optimized, report := m.opt.Optimize(plan, version)
	tr.Optimize = time.Since(t0)
	tr.Plan = optimized.String()
	tr.CacheHit = report.CacheHit
	entry := m.preparedStore(src, version, preparedPlan{plan: optimized, str: tr.Plan, progs: oql.NewProgramCache()})
	return entry, tr, nil
}

// Query evaluates an OQL query and returns its value. Unavailable sources
// surface as errors; use QueryPartial for the §4 semantics.
func (m *Mediator) Query(src string) (types.Value, error) {
	v, _, err := m.QueryTraced(src)
	return v, err
}

// QueryTraced is Query with pipeline stage timings.
func (m *Mediator) QueryTraced(src string) (types.Value, *Trace, error) {
	entry, tr, err := m.prepare(src)
	if err != nil {
		return nil, tr, err
	}
	p, err := m.buildPhysical(entry.plan, entry.progs)
	if err != nil {
		return nil, tr, err
	}
	ctx, cancel := withEvalDeadline(context.Background(), m.timeout)
	defer cancel()
	f0, w0 := m.hedgesFired.Load(), m.hedgesWon.Load()
	t0 := time.Now()
	v, err := p.Run(ctx)
	tr.Execute = time.Since(t0)
	tr.HedgesFired = m.hedgesFired.Load() - f0
	tr.HedgesWon = m.hedgesWon.Load() - w0
	if err != nil {
		return nil, tr, err
	}
	return v, tr, nil
}

// QueryPartial evaluates a query under partial-evaluation semantics: if
// some sources do not answer before the deadline, the answer is another
// query (§4).
func (m *Mediator) QueryPartial(src string) (*partial.Answer, error) {
	entry, _, err := m.prepare(src)
	if err != nil {
		return nil, err
	}
	plan := entry.plan
	p, err := m.buildPhysical(plan, entry.progs)
	if err != nil {
		return nil, err
	}
	ctx, cancel := withEvalDeadline(context.Background(), m.timeout)
	defer cancel()
	ans, err := partial.Evaluate(ctx, p)
	if err != nil {
		return nil, err
	}
	m.snapshotPartial(plan, ans)
	return ans, nil
}

// Explain returns the optimizer's report for a query: every candidate plan
// with its estimated cost, the chosen one marked.
func (m *Mediator) Explain(src string) (string, error) {
	expr, err := oql.ParseQuery(src)
	if err != nil {
		return "", err
	}
	expanded, err := m.expandViews(expr)
	if err != nil {
		return "", err
	}
	plan, err := algebra.Compile(expanded, planResolver{m: m})
	if err != nil {
		return "", err
	}
	_, report := m.opt.Optimize(plan, m.catalog.Version())
	return report.String(), nil
}

// ExplainPlan returns the chosen plan for a query rendered as an indented
// operator tree.
func (m *Mediator) ExplainPlan(src string) (string, error) {
	plan, _, err := m.Prepare(src)
	if err != nil {
		return "", err
	}
	return algebra.TreeString(plan), nil
}

// DumpODL renders the mediator's catalog as ODL text that reproduces it.
func (m *Mediator) DumpODL() string { return m.catalog.DumpODL() }

// Define registers a view from OQL text (define name as query).
func (m *Mediator) Define(src string) error {
	d, err := oql.ParseDefine(src)
	if err != nil {
		return err
	}
	return m.catalog.DefineView(d.Name, d.Query)
}

// MustQuery is Query for examples and tests that treat failure as fatal.
func (m *Mediator) MustQuery(src string) types.Value {
	v, err := m.Query(src)
	if err != nil {
		panic(fmt.Sprintf("query %q: %v", src, err))
	}
	return v
}
