package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/partial"
	"disco/internal/types"
)

// Trace records the Figure 2 pipeline stages for one query.
type Trace struct {
	Parse    time.Duration
	Expand   time.Duration // view expansion against the internal db
	Compile  time.Duration
	Optimize time.Duration
	Execute  time.Duration
	Plan     string
	CacheHit bool
	// AdmissionWait is the time this query spent queued at the admission
	// gate before execution began (zero when admitted immediately, or when
	// the mediator runs without WithAdmission).
	AdmissionWait time.Duration
	// Shed is 1 when the admission gate refused this query (the query then
	// returned an *OverloadError and dialed no source).
	Shed int64
	// HedgesFired/HedgesWon count hedged backup submits launched, and won,
	// during this query's execution window. The counters are mediator-wide,
	// so concurrent queries see each other's hedges.
	HedgesFired int64
	HedgesWon   int64
	// Retried counts transient source errors (mid-answer drops, refused
	// dials with deadline to spare) that were re-attempted under the retry
	// budget during this query's execution window; RetryBudgetExhausted
	// counts transients that wanted a retry the budget refused. Like the
	// hedge counters they are mediator-wide windows.
	Retried              int64
	RetryBudgetExhausted int64
	// CancelsSent counts best-effort cancel frames the mediator's wire
	// clients wrote during this query's execution window — abandoned
	// source calls (hedge losers, lapsed deadlines, torn-down pools) being
	// reported to their servers so the work stops. Like the hedge and
	// retry counters it is a mediator-wide window, so concurrent queries
	// see each other's cancels.
	CancelsSent int64
	// ShardReads counts the logical shard reads this query's execution
	// window added, keyed extent@repo — the per-query view of the traffic
	// counters hotspot detection aggregates. Mediator-wide like the other
	// window counters, so concurrent queries see each other's reads.
	ShardReads map[string]int64

	// admittedAt marks when the admission gate granted the slot; the
	// release path uses it to observe the query's service time.
	admittedAt time.Time
}

// String renders the stage timings and degradation counters — why the
// query was slow, shed, or retried — in one line per stage.
func (tr *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "parse    %v\n", tr.Parse)
	fmt.Fprintf(&b, "expand   %v\n", tr.Expand)
	fmt.Fprintf(&b, "compile  %v\n", tr.Compile)
	fmt.Fprintf(&b, "optimize %v\n", tr.Optimize)
	if tr.CacheHit {
		b.WriteString("(prepared-statement cache hit: front half skipped)\n")
	}
	if tr.Plan != "" {
		fmt.Fprintf(&b, "plan     %s\n", tr.Plan)
	}
	if tr.AdmissionWait > 0 || tr.Shed > 0 {
		fmt.Fprintf(&b, "admission wait %v\n", tr.AdmissionWait)
	}
	if tr.Shed > 0 {
		b.WriteString("shed by admission gate (overload)\n")
	}
	fmt.Fprintf(&b, "execute  %v\n", tr.Execute)
	if tr.HedgesFired > 0 {
		fmt.Fprintf(&b, "hedges fired=%d won=%d\n", tr.HedgesFired, tr.HedgesWon)
	}
	if tr.Retried > 0 || tr.RetryBudgetExhausted > 0 {
		fmt.Fprintf(&b, "transient retries=%d budget-refused=%d\n", tr.Retried, tr.RetryBudgetExhausted)
	}
	if tr.CancelsSent > 0 {
		fmt.Fprintf(&b, "source cancels sent=%d\n", tr.CancelsSent)
	}
	if len(tr.ShardReads) > 0 {
		shards := make([]string, 0, len(tr.ShardReads))
		for s := range tr.ShardReads {
			shards = append(shards, s)
		}
		sort.Strings(shards)
		b.WriteString("shard reads")
		for _, s := range shards {
			fmt.Fprintf(&b, " %s=%d", s, tr.ShardReads[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Prepare runs the front half of the pipeline: parse, view expansion,
// compilation and optimization. The returned plan can be executed multiple
// times.
//
// Results are cached per (query text, catalog version): a repeated query
// skips the whole front half — the returned Trace reports CacheHit with
// every stage timing at zero. Any catalog change (ExecODL, Define, drops)
// invalidates the cache.
func (m *Mediator) Prepare(src string) (algebra.Node, *Trace, error) {
	entry, tr, err := m.prepare(src)
	return entry.plan, tr, err
}

// prepare is Prepare plus the plan's compiled-program cache: executions of
// a prepared plan share it, so operator expressions compile once per
// prepared statement rather than once per query.
func (m *Mediator) prepare(src string) (preparedPlan, *Trace, error) {
	version := m.catalog.Version()
	if entry, ok := m.preparedLookup(src, version); ok {
		return entry, &Trace{Plan: entry.str, CacheHit: true}, nil
	}

	tr := &Trace{}
	t0 := time.Now()
	expr, err := oql.ParseQuery(src)
	if err != nil {
		return preparedPlan{}, tr, err
	}
	tr.Parse = time.Since(t0)

	t0 = time.Now()
	expanded, err := m.expandViews(expr)
	if err != nil {
		return preparedPlan{}, tr, err
	}
	tr.Expand = time.Since(t0)

	t0 = time.Now()
	plan, err := algebra.Compile(expanded, planResolver{m: m})
	if err != nil {
		return preparedPlan{}, tr, err
	}
	tr.Compile = time.Since(t0)

	t0 = time.Now()
	optimized, report := m.opt.Optimize(plan, version)
	tr.Optimize = time.Since(t0)
	tr.Plan = optimized.String()
	tr.CacheHit = report.CacheHit
	entry := m.preparedStore(src, version, preparedPlan{plan: optimized, str: tr.Plan, progs: oql.NewProgramCache()})
	return entry, tr, nil
}

// Query evaluates an OQL query and returns its value. Unavailable sources
// surface as errors; use QueryPartial for the §4 semantics.
func (m *Mediator) Query(src string) (types.Value, error) {
	v, _, err := m.QueryTraced(src)
	return v, err
}

// QueryContext is Query bounded by the caller's context as well as the
// evaluation deadline. A context that is cancelled (or whose deadline
// fires) ends the query as a caller-side error — never a partial answer —
// and a context whose remaining deadline cannot cover the typical service
// time is shed immediately by the admission gate when one is installed.
func (m *Mediator) QueryContext(ctx context.Context, src string) (types.Value, error) {
	v, _, err := m.queryTraced(ctx, src)
	return v, err
}

// QueryTraced is Query with pipeline stage timings.
func (m *Mediator) QueryTraced(src string) (types.Value, *Trace, error) {
	//lint:allow ctxflow compat shim for the context-free public API; context-aware callers use QueryContext
	return m.queryTraced(context.Background(), src)
}

func (m *Mediator) queryTraced(ctx context.Context, src string) (types.Value, *Trace, error) {
	defer m.enterReadEpoch()()
	entry, tr, err := m.prepare(src)
	if err != nil {
		return nil, tr, err
	}
	ctx, cancel := withEvalDeadline(ctx, m.timeout)
	defer cancel()
	if err := m.admitQuery(ctx, tr); err != nil {
		return nil, tr, err
	}
	defer m.admitDone(tr)
	p, err := m.buildPhysical(entry.plan, entry.progs)
	if err != nil {
		return nil, tr, err
	}
	f0, w0 := m.hedgesFired.Load(), m.hedgesWon.Load()
	r0, x0 := m.retries.Load(), m.retryExhausted.Load()
	c0 := m.wireCancelsSent()
	s0 := m.ShardTraffic()
	t0 := time.Now()
	v, err := p.Run(ctx)
	tr.Execute = time.Since(t0)
	tr.HedgesFired = m.hedgesFired.Load() - f0
	tr.HedgesWon = m.hedgesWon.Load() - w0
	tr.Retried = m.retries.Load() - r0
	tr.RetryBudgetExhausted = m.retryExhausted.Load() - x0
	tr.ShardReads = map[string]int64{}
	for shard, n := range m.ShardTraffic() {
		if d := n - s0[shard]; d > 0 {
			tr.ShardReads[shard] = d
		}
	}
	if tr.CancelsSent = m.wireCancelsSent() - c0; tr.CancelsSent < 0 {
		tr.CancelsSent = 0 // client pool replaced mid-window (Close)
	}
	if err != nil {
		return nil, tr, err
	}
	return v, tr, nil
}

// QueryPartial evaluates a query under partial-evaluation semantics: if
// some sources do not answer before the deadline, the answer is another
// query (§4).
func (m *Mediator) QueryPartial(src string) (*partial.Answer, error) {
	//lint:allow ctxflow compat shim for the context-free public API; context-aware callers use QueryPartialContext
	return m.QueryPartialContext(context.Background(), src)
}

// QueryPartialContext is QueryPartial bounded by the caller's context.
// Admission applies before any source is dialed: a shed query returns an
// *OverloadError, not a partial answer — shed and "source down" are
// different verdicts and callers can tell them apart.
func (m *Mediator) QueryPartialContext(ctx context.Context, src string) (*partial.Answer, error) {
	defer m.enterReadEpoch()()
	entry, tr, err := m.prepare(src)
	if err != nil {
		return nil, err
	}
	plan := entry.plan
	// The evaluation context gets the §4 deadline; the caller's ctx stays
	// unwrapped for the post-evaluation version snapshot, which runs after
	// the evaluation budget is (by definition of a partial answer) spent.
	ectx, cancel := withEvalDeadline(ctx, m.timeout)
	defer cancel()
	if err := m.admitQuery(ectx, tr); err != nil {
		return nil, err
	}
	defer m.admitDone(tr)
	p, err := m.buildPhysical(plan, entry.progs)
	if err != nil {
		return nil, err
	}
	ans, err := partial.Evaluate(ectx, p)
	if err != nil {
		return nil, err
	}
	m.snapshotPartial(ctx, plan, ans)
	return ans, nil
}

// admitQuery passes the query through the admission gate (a no-op without
// WithAdmission), recording the queue wait — and the shed, if the gate
// refuses — on the trace. It must run before the physical plan is built:
// a shed query performs zero source dials.
func (m *Mediator) admitQuery(ctx context.Context, tr *Trace) error {
	if m.admit == nil {
		return nil
	}
	deadline, _ := ctx.Deadline()
	wait, shed := m.admit.acquire(deadline)
	tr.AdmissionWait = wait
	if shed != nil {
		tr.Shed = 1
		m.sheds.Add(1)
		return shed
	}
	tr.admittedAt = time.Now()
	return nil
}

// admitDone releases the admission slot and feeds the query's service time
// into the gate's p50 window (the signal deadline-aware shedding uses).
func (m *Mediator) admitDone(tr *Trace) {
	if m.admit == nil || tr.admittedAt.IsZero() {
		return
	}
	m.admit.observe(time.Since(tr.admittedAt))
	m.admit.release()
}

// OverloadStats reports the mediator-wide degradation counters: queries
// shed by the admission gate, transient source errors retried under the
// retry budget, and retries the exhausted budget refused.
func (m *Mediator) OverloadStats() (shed, retried, retryBudgetExhausted int64) {
	return m.sheds.Load(), m.retries.Load(), m.retryExhausted.Load()
}

// Explain returns the optimizer's report for a query: every candidate plan
// with its estimated cost, the chosen one marked.
func (m *Mediator) Explain(src string) (string, error) {
	expr, err := oql.ParseQuery(src)
	if err != nil {
		return "", err
	}
	expanded, err := m.expandViews(expr)
	if err != nil {
		return "", err
	}
	plan, err := algebra.Compile(expanded, planResolver{m: m})
	if err != nil {
		return "", err
	}
	_, report := m.opt.Optimize(plan, m.catalog.Version())
	out := report.String()
	if hot := m.hotShardReport(); hot != "" {
		if !strings.HasSuffix(out, "\n") {
			out += "\n"
		}
		out += hot
	}
	return out, nil
}

// ExplainPlan returns the chosen plan for a query rendered as an indented
// operator tree.
func (m *Mediator) ExplainPlan(src string) (string, error) {
	plan, _, err := m.Prepare(src)
	if err != nil {
		return "", err
	}
	return algebra.TreeString(plan), nil
}

// DumpODL renders the mediator's catalog as ODL text that reproduces it.
func (m *Mediator) DumpODL() string { return m.catalog.DumpODL() }

// Define registers a view from OQL text (define name as query).
func (m *Mediator) Define(src string) error {
	d, err := oql.ParseDefine(src)
	if err != nil {
		return err
	}
	return m.catalog.DefineView(d.Name, d.Query)
}

// MustQuery is Query for examples and tests that treat failure as fatal.
func (m *Mediator) MustQuery(src string) types.Value {
	v, err := m.Query(src)
	if err != nil {
		panic(fmt.Sprintf("query %q: %v", src, err))
	}
	return v
}
