package core

import (
	"context"
	"fmt"
	"strings"

	"disco/internal/algebra"
	"disco/internal/catalog"
	"disco/internal/oql"
	"disco/internal/types"
)

// MetaExtentName is the reserved collection of extent metadata (§2.1).
const MetaExtentName = "metaextent"

// planResolver implements algebra.NameResolver over the catalog: extents
// resolve to submit(get(...)) plans, implicit type extents to unions over
// their declared extents, and T* to the subtype closure.
type planResolver struct {
	m *Mediator
}

// ResolvePlan implements algebra.NameResolver.
func (r planResolver) ResolvePlan(name string, star bool) (algebra.Node, error) {
	cat := r.m.catalog
	// extent@repo names one shard of a partitioned extent — the form
	// residual queries use so resubmission touches only the missing
	// partitions.
	if ext, repo, ok := strings.Cut(name, "@"); ok {
		if star {
			return nil, fmt.Errorf("mediator: %s* applies to type extents, not partitions", name)
		}
		me, err := cat.Extent(ext)
		if err != nil {
			return nil, err
		}
		// A replica name canonicalizes to its shard's primary, so residuals
		// written against any copy route (and fail over) like the original.
		primary, ok := me.PrimaryFor(repo)
		if !ok {
			return nil, fmt.Errorf("mediator: extent %s has no partition at %q", ext, repo)
		}
		return r.shardBranch(me, primary), nil
	}
	if name == MetaExtentName {
		if star {
			return nil, fmt.Errorf("mediator: metaextent has no subtype closure")
		}
		return &algebra.Const{Data: cat.MetaExtentBag()}, nil
	}
	// An explicit extent (person0).
	if me, err := cat.Extent(name); err == nil {
		if star {
			return nil, fmt.Errorf("mediator: %s* applies to type extents, not data-source extents", name)
		}
		return r.extentPlan(me), nil
	}
	// The implicit extent of an interface (person, person*): realize the
	// §2.1 definition flatten(select x.e from x in metaextent where
	// x.interface = T) natively as a union over the registered extents.
	if iface, ok := cat.InterfaceByExtentName(name); ok {
		var extents []*catalog.MetaExtent
		if star {
			extents = cat.ExtentsOfStar(iface.Name)
		} else {
			extents = cat.ExtentsOf(iface.Name)
		}
		inputs := make([]algebra.Node, 0, len(extents))
		for _, me := range extents {
			inputs = append(inputs, r.extentPlan(me))
		}
		switch len(inputs) {
		case 0:
			// A type with no extents yet: the collection is empty.
			return &algebra.Const{Data: types.NewBag()}, nil
		case 1:
			return inputs[0], nil
		default:
			return &algebra.Union{Inputs: inputs}, nil
		}
	}
	return nil, fmt.Errorf("mediator: unknown collection %q", name)
}

// extentPlan produces the access plan for one extent: a single submit, or —
// for a horizontally partitioned extent — a parallel union of per-partition
// submits that the physical layer executes with scatter-gather.
func (r planResolver) extentPlan(me *catalog.MetaExtent) algebra.Node {
	parts := me.Partitions()
	if len(parts) == 1 {
		return r.shardBranch(me, parts[0])
	}
	inputs := make([]algebra.Node, len(parts))
	for i, repo := range parts {
		inputs[i] = r.shardBranch(me, repo)
	}
	return &algebra.Union{Inputs: inputs, Par: true}
}

// shardBranch returns the access plan for one shard, rewriting it when a
// live migration of the extent is in flight:
//
//   - dual-read (move/split): the shard reads a distinct-fused parallel
//     union of its old and new placement. The new-placement branch is marked
//     Standby, so its unavailability degrades to the old placement alone
//     (empty answer, no residual), and it carries the old shard's partition
//     metadata, so pruning that skips the shard dials neither placement.
//   - split at cutover: placement has swapped but the old shard's collection
//     still holds the moved-away rows until cleanup; a mediator-side range
//     guard (attr < split point) keeps them out of answers.
//   - merge before cutover: the surviving shard's collection accumulates the
//     absorbed shard's rows while the absorbed shard is still authoritative;
//     a guard restricted to the survivor's own declared range prevents
//     double counting. Aborted merges keep the guard until cleanup clears
//     the copied rows (ClearMigration removes the record only then).
//
// Every phase transition bumps the catalog version, so the prepared-plan
// cache never serves a plan from a different phase.
func (r planResolver) shardBranch(me *catalog.MetaExtent, repo string) algebra.Node {
	cat := r.m.catalog
	var ref algebra.ExtentRef
	if me.Partitioned() {
		ref = cat.PartitionRef(me, repo)
	} else {
		ref = cat.ExtentRef(me)
	}
	sub := &algebra.Submit{Repo: repo, Input: &algebra.Get{Ref: ref}}
	mig, ok := cat.MigrationOf(me.Name)
	if !ok {
		return sub
	}
	switch {
	case mig.DualRead() && mig.From == repo:
		aux := ref
		aux.Repo = mig.To
		aux.Partition = mig.To
		aux.Replicas = nil
		aux.Standby = true
		standby := &algebra.Submit{Repo: mig.To, Input: &algebra.Get{Ref: aux}}
		return &algebra.Distinct{Input: &algebra.Union{Inputs: []algebra.Node{sub, standby}, Par: true}}
	case mig.Kind == catalog.MigrateSplit && mig.Phase == catalog.PhaseCutover && mig.From == repo:
		// Rows >= SplitAt now live (and are read) at To; the copies still
		// sitting in From's collection are filtered out until cleanup.
		pred := &oql.Binary{Op: oql.OpLt, L: &oql.Ident{Name: me.Scheme.Attr}, R: &oql.Literal{Val: mig.SplitAt}}
		return &algebra.Select{Pred: pred, Input: sub}
	case mig.Kind == catalog.MigrateMerge && mig.Phase != catalog.PhaseCutover && mig.To == repo && me.Scheme != nil:
		if pred := rangeGuard(me, repo); pred != nil {
			return &algebra.Select{Pred: pred, Input: sub}
		}
	}
	return sub
}

// rangeGuard builds the predicate confining a shard's answer to its own
// declared range (Lo <= attr < Hi, open bounds omitted); nil when the range
// is unbounded on both sides or unknown.
func rangeGuard(me *catalog.MetaExtent, repo string) oql.Expr {
	if me.Scheme == nil || me.Scheme.Kind != algebra.PartRange {
		return nil
	}
	parts := me.Partitions()
	idx := -1
	for i, p := range parts {
		if p == repo {
			idx = i
			break
		}
	}
	if idx < 0 || idx >= len(me.Scheme.Ranges) {
		return nil
	}
	rng := me.Scheme.Ranges[idx]
	attr := &oql.Ident{Name: me.Scheme.Attr}
	var pred oql.Expr
	if rng.Lo != nil {
		pred = &oql.Binary{Op: oql.OpGe, L: attr, R: &oql.Literal{Val: rng.Lo}}
	}
	if rng.Hi != nil {
		hi := &oql.Binary{Op: oql.OpLt, L: attr, R: &oql.Literal{Val: rng.Hi}}
		if pred == nil {
			pred = hi
		} else {
			pred = &oql.Binary{Op: oql.OpAnd, L: pred, R: hi}
		}
	}
	return pred
}

// valueResolver implements oql.Resolver for the reference evaluation of
// correlated subqueries: names materialize by planning and running them.
type valueResolver struct {
	m *Mediator
}

// Resolve implements oql.Resolver.
func (r valueResolver) Resolve(name string, star bool) (types.Value, error) {
	// Views materialize by evaluating their expanded body.
	if body, ok := r.m.catalog.View(name); ok && !star {
		expanded, err := r.m.expandViews(body)
		if err != nil {
			return nil, err
		}
		return oql.Eval(expanded, nil, r)
	}
	plan, err := planResolver{m: r.m}.ResolvePlan(name, star)
	if err != nil {
		return nil, err
	}
	//lint:allow ctxflow the oql.Resolver interface carries no context; this reference-evaluation path is bounded by the mediator's own §4 evaluation deadline
	ctx, cancel := withEvalDeadline(context.Background(), r.m.timeout)
	defer cancel()
	// Ad-hoc resolver plans are built per evaluation (their expression
	// nodes are fresh each time), so there is no program cache to share.
	p, err := r.m.buildPhysical(plan, nil)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}

// expandViews substitutes view bodies for view references, recursively.
// The catalog guarantees acyclicity, so expansion terminates.
func (m *Mediator) expandViews(e oql.Expr) (oql.Expr, error) {
	return m.expandViewsBound(e, map[string]bool{})
}

func (m *Mediator) expandViewsBound(e oql.Expr, bound map[string]bool) (oql.Expr, error) {
	switch x := e.(type) {
	case *oql.Ident:
		if x.Star || bound[x.Name] {
			return x, nil
		}
		body, ok := m.catalog.View(x.Name)
		if !ok {
			return x, nil
		}
		return m.expandViewsBound(body, map[string]bool{})
	case *oql.Literal:
		return x, nil
	case *oql.Path:
		base, err := m.expandViewsBound(x.Base, bound)
		if err != nil {
			return nil, err
		}
		return &oql.Path{Base: base, Field: x.Field}, nil
	case *oql.Unary:
		inner, err := m.expandViewsBound(x.X, bound)
		if err != nil {
			return nil, err
		}
		return &oql.Unary{Op: x.Op, X: inner}, nil
	case *oql.Binary:
		l, err := m.expandViewsBound(x.L, bound)
		if err != nil {
			return nil, err
		}
		r, err := m.expandViewsBound(x.R, bound)
		if err != nil {
			return nil, err
		}
		return &oql.Binary{Op: x.Op, L: l, R: r}, nil
	case *oql.StructCtor:
		fields := make([]oql.StructField, len(x.Fields))
		for i, f := range x.Fields {
			fe, err := m.expandViewsBound(f.Expr, bound)
			if err != nil {
				return nil, err
			}
			fields[i] = oql.StructField{Name: f.Name, Expr: fe}
		}
		return &oql.StructCtor{Fields: fields}, nil
	case *oql.Call:
		args := make([]oql.Expr, len(x.Args))
		for i, a := range x.Args {
			ae, err := m.expandViewsBound(a, bound)
			if err != nil {
				return nil, err
			}
			args[i] = ae
		}
		return &oql.Call{Fn: x.Fn, Args: args}, nil
	case *oql.Select:
		inner := make(map[string]bool, len(bound)+len(x.From))
		for k := range bound {
			inner[k] = true
		}
		from := make([]oql.Binding, len(x.From))
		for i, b := range x.From {
			dom, err := m.expandViewsBound(b.Domain, inner)
			if err != nil {
				return nil, err
			}
			from[i] = oql.Binding{Var: b.Var, Domain: dom}
			inner[b.Var] = true
		}
		proj, err := m.expandViewsBound(x.Proj, inner)
		if err != nil {
			return nil, err
		}
		out := &oql.Select{Distinct: x.Distinct, Proj: proj, From: from}
		if x.Where != nil {
			w, err := m.expandViewsBound(x.Where, inner)
			if err != nil {
				return nil, err
			}
			out.Where = w
		}
		return out, nil
	default:
		return e, nil
	}
}

// mediatorCaps implements algebra.Capabilities: a submit expression is
// acceptable when every extent it reads is served by the same wrapper and
// that wrapper's grammar derives the expression.
type mediatorCaps struct {
	m *Mediator
}

// Accepts implements algebra.Capabilities.
func (c *mediatorCaps) Accepts(repo string, expr algebra.Node) bool {
	w, err := c.m.wrapperForExpr(repo, expr)
	if err != nil {
		return false
	}
	return w.Grammar().AcceptsExpr(expr)
}
