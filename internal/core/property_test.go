package core

import (
	"fmt"
	"math/rand"
	"testing"

	"disco/internal/oql"
	"disco/internal/source"
	"disco/internal/types"
)

// TestRandomQueriesMatchReference is the system-level soundness property:
// for randomly generated queries, the full pipeline (view expansion,
// compilation, capability-checked pushdown, cost-based choice, physical
// execution across wrappers) produces exactly what the reference OQL
// evaluator produces on materialized extents.
func TestRandomQueriesMatchReference(t *testing.T) {
	m, data := propertyMediator(t)
	ref := referenceDataResolver(data)
	rng := rand.New(rand.NewSource(1996))

	const cases = 150
	for i := 0; i < cases; i++ {
		q := randomQuery(rng)
		want, refErr := oql.Eval(mustParseQ(t, q), nil, ref)
		got, gotErr := m.Query(q)
		switch {
		case refErr != nil && gotErr != nil:
			// Both reject (e.g. type errors): fine.
		case refErr != nil:
			t.Errorf("case %d %q: reference errors (%v) but mediator answers %s", i, q, refErr, got)
		case gotErr != nil:
			t.Errorf("case %d %q: mediator errors (%v) but reference answers %s", i, q, gotErr, want)
		case !got.Equal(want):
			t.Errorf("case %d %q:\n mediator  %s\n reference %s", i, q, got, want)
		}
	}
}

// propertyMediator builds a two-source federation with deterministic data
// and returns the raw data for the reference resolver.
func propertyMediator(t *testing.T) (*Mediator, map[string]*types.Bag) {
	t.Helper()
	m := New()
	data := map[string]*types.Bag{}
	for si, names := range [][]string{
		{"Mary", "Ann", "Bob", "Dee"},
		{"Sam", "Eve", "Maryam"},
	} {
		table := fmt.Sprintf("person%d", si)
		store := source.NewRelStore()
		if err := store.CreateTable(table, "id", "name", "salary"); err != nil {
			t.Fatal(err)
		}
		var rows []types.Value
		for i, n := range names {
			id := types.Int(int64(si*100 + i))
			sal := types.Int(int64((i*37 + si*11) % 100))
			if err := store.Insert(table, id, types.Str(n), sal); err != nil {
				t.Fatal(err)
			}
			rows = append(rows, types.NewStruct(
				types.Field{Name: "id", Value: id},
				types.Field{Name: "name", Value: types.Str(n)},
				types.Field{Name: "salary", Value: sal},
			))
		}
		data[table] = types.NewBag(rows...)
		m.RegisterEngine(fmt.Sprintf("r%d", si), store)
	}
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		r1 := Repository(address="mem:r1");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;
	`); err != nil {
		t.Fatal(err)
	}
	return m, data
}

func referenceDataResolver(data map[string]*types.Bag) oql.Resolver {
	return oql.ResolverFunc(func(name string, star bool) (types.Value, error) {
		switch name {
		case "person0", "person1":
			return data[name], nil
		case "person":
			return types.BagUnion(data["person0"], data["person1"]), nil
		default:
			return nil, fmt.Errorf("unknown name %q", name)
		}
	})
}

func mustParseQ(t *testing.T, src string) oql.Expr {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

// randomQuery generates a random but well-typed query over the Person
// schema.
func randomQuery(r *rand.Rand) string {
	sel := randomSelect(r, "x")
	switch r.Intn(6) {
	case 0:
		return fmt.Sprintf("count(%s)", sel)
	case 1:
		return fmt.Sprintf("sum(select x.salary from x in %s)", randomDomain(r))
	default:
		return sel
	}
}

func randomSelect(r *rand.Rand, v string) string {
	proj := randomProj(r, v)
	domain := randomDomain(r)
	distinct := ""
	if r.Intn(4) == 0 {
		distinct = "distinct "
	}
	if r.Intn(5) == 0 {
		return fmt.Sprintf("select %s%s from %s in %s", distinct, proj, v, domain)
	}
	return fmt.Sprintf("select %s%s from %s in %s where %s",
		distinct, proj, v, domain, randomPred(r, v, 2))
}

func randomDomain(r *rand.Rand) string {
	switch r.Intn(5) {
	case 0:
		return "person0"
	case 1:
		return "person1"
	case 2:
		return "union(person0, person1)"
	default:
		return "person"
	}
}

func randomProj(r *rand.Rand, v string) string {
	switch r.Intn(6) {
	case 0:
		return v + ".name"
	case 1:
		return v + ".salary"
	case 2:
		return v
	case 3:
		return fmt.Sprintf("struct(n: %s.name, double: %s.salary * 2)", v, v)
	case 4:
		return fmt.Sprintf("%s.salary + %s.id", v, v)
	default:
		return fmt.Sprintf("struct(who: %s.name)", v)
	}
}

func randomPred(r *rand.Rand, v string, depth int) string {
	if depth <= 0 || r.Intn(3) == 0 {
		return randomComparison(r, v)
	}
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s and %s", randomPred(r, v, depth-1), randomPred(r, v, depth-1))
	case 1:
		return fmt.Sprintf("%s or %s", randomPred(r, v, depth-1), randomPred(r, v, depth-1))
	case 2:
		return fmt.Sprintf("not (%s)", randomPred(r, v, depth-1))
	default:
		return randomComparison(r, v)
	}
}

func randomComparison(r *rand.Rand, v string) string {
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	switch r.Intn(6) {
	case 0:
		return fmt.Sprintf("%s.name = %q", v, []string{"Mary", "Sam", "Zoe"}[r.Intn(3)])
	case 1:
		return fmt.Sprintf("contains(%s.name, %q)", v, []string{"Mar", "a", "q"}[r.Intn(3)])
	case 2:
		return fmt.Sprintf("%s.id in bag(%d, %d)", v, r.Intn(110), r.Intn(110))
	default:
		return fmt.Sprintf("%s.salary %s %d", v, ops[r.Intn(len(ops))], r.Intn(100))
	}
}
