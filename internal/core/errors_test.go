package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"disco/internal/wire"
)

func TestStarOnExplicitExtentFails(t *testing.T) {
	m := paperMediator(t)
	if _, err := m.Query(`select x from x in person0*`); err == nil ||
		!strings.Contains(err.Error(), "type extents") {
		t.Errorf("err = %v", err)
	}
	if _, err := m.Query(`select x from x in metaextent*`); err == nil {
		t.Error("metaextent* should fail")
	}
}

func TestRepositoryWithoutAddress(t *testing.T) {
	m := New()
	if err := m.ExecODL(`
		rempty := Repository(host="somewhere");
		w0 := WrapperPostgres();
		interface T (extent ts) { attribute String a; }
		extent t0 of T wrapper w0 repository rempty;
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(`select t from t in t0`); err == nil ||
		!strings.Contains(err.Error(), "no address") {
		t.Errorf("err = %v", err)
	}
}

func TestMemEngineNotRegistered(t *testing.T) {
	m := New()
	if err := m.ExecODL(`
		r0 := Repository(address="mem:ghost");
		w0 := WrapperPostgres();
		interface T (extent ts) { attribute String a; }
		extent t0 of T wrapper w0 repository r0;
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(`select t from t in t0`); err == nil ||
		!strings.Contains(err.Error(), "no in-process engine") {
		t.Errorf("err = %v", err)
	}
}

func TestMediatorWrapperNeedsNetworkAddress(t *testing.T) {
	m := New()
	if err := m.ExecODL(`
		r0 := Repository(address="mem:x");
		wmed := Wrapper("mediator");
		interface T (extent ts) { attribute String a; }
		extent t0 of T wrapper wmed repository r0;
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(`select t from t in t0`); err == nil ||
		!strings.Contains(err.Error(), "network address") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownWrapperKindAtUse(t *testing.T) {
	m := paperMediator(t)
	if err := m.ExecODL(`
		w9 := Wrapper("hologram");
		extent hx of Person wrapper w9 repository r0;
	`); err != nil {
		t.Fatal(err) // declaration is lazy
	}
	if _, err := m.Query(`select x from x in hx`); err == nil ||
		!strings.Contains(err.Error(), "unknown wrapper kind") {
		t.Errorf("err = %v", err)
	}
}

func TestBadOpsSpec(t *testing.T) {
	m := paperMediator(t)
	if err := m.ExecODL(`
		wops := Wrapper("sql", ops="get,teleport");
		extent ox of Person wrapper wops repository r0
		    map ((person0=ox));
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(`select x from x in ox`); err == nil ||
		!strings.Contains(err.Error(), "teleport") {
		t.Errorf("err = %v", err)
	}
}

func TestExplainAndPlanErrors(t *testing.T) {
	m := paperMediator(t)
	if _, err := m.Explain(`not valid ~`); err == nil {
		t.Error("Explain of garbage should fail")
	}
	if _, err := m.ExplainPlan(`select x from x in nowhere`); err == nil {
		t.Error("ExplainPlan of unknown extent should fail")
	}
	if err := m.Define(`define broken as`); err == nil {
		t.Error("Define of garbage should fail")
	}
}

func TestExplainPlanTree(t *testing.T) {
	m := paperMediator(t)
	tree, err := m.ExplainPlan(`select x.name from x in person where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"union[2]", "submit(r0)", "get(person0)"} {
		if !strings.Contains(tree, frag) {
			t.Errorf("plan tree missing %q:\n%s", frag, tree)
		}
	}
}

func TestMediatorServerRejectsWrongLanguage(t *testing.T) {
	m := paperMediator(t)
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := wire.NewClient(srv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Query(ctx, wire.LangSQL, "SELECT 1"); err == nil ||
		!strings.Contains(err.Error(), "mediator serves oql") {
		t.Errorf("err = %v", err)
	}
}

func TestMediatorWrapperRejectsNonBagAnswers(t *testing.T) {
	// A lower mediator whose collection is a scalar view: the upper's
	// mediator wrapper must reject the non-bag payload cleanly.
	lower := paperMediator(t)
	if err := lower.Define(`define total as count(person)`); err != nil {
		t.Fatal(err)
	}
	srv, err := lower.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	upper := New(WithTimeout(2 * time.Second))
	if err := upper.ExecODL(`
		rlower := Repository(address="` + srv.Addr() + `");
		wmed := Wrapper("mediator");
		interface T (extent ts) { attribute String a; }
		extent total of T wrapper wmed repository rlower;
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := upper.Query(`select t from t in total`); err == nil ||
		!strings.Contains(err.Error(), "want bag") {
		t.Errorf("err = %v", err)
	}
}

func TestDumpODLFromMediator(t *testing.T) {
	m := paperMediator(t)
	dump := m.DumpODL()
	for _, frag := range []string{"interface Person", "extent person0", "WrapperPostgres"} {
		if !strings.Contains(dump, frag) {
			// The wrapper kind is normalized to sql, so the constructor
			// spelling differs; accept the normalized form.
			if frag == "WrapperPostgres" && strings.Contains(dump, `Wrapper("sql")`) {
				continue
			}
			t.Errorf("dump missing %q:\n%s", frag, dump)
		}
	}
	// The dump reloads into a fresh mediator with the same engines.
	m2 := New(WithTimeout(500 * time.Millisecond))
	r0, r1 := paperStores(t)
	m2.RegisterEngine("r0", r0)
	m2.RegisterEngine("r1", r1)
	if err := m2.ExecODL(dump); err != nil {
		t.Fatalf("dump does not reload: %v\n%s", err, dump)
	}
	v, err := m2.Query(`count(person)`)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "2" {
		t.Errorf("reloaded federation count = %s", v)
	}
}
