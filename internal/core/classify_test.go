package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"disco/internal/physical"
	"disco/internal/types"
	"disco/internal/wire"
)

// timeoutErr is a minimal net.Error with Timeout() = true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// The three classifier verdicts (plus caller-side, folded into plain for
// the "must not become a partial answer" property the table checks).
const (
	wantPlain       = "plain"
	wantUnavailable = "unavailable"
	wantTransient   = "transient"
)

// TestClassifySourceError is the regression suite for the three-way error
// classifier. Unavailability ("no answer": timeouts, dead dials, expired
// evaluation deadlines) may become partial answers. Transient failures
// (mid-answer connection drops, refused dials with deadline to spare, an
// overloaded server's shed) are eligible for one budgeted retry before
// degrading to unavailability. Everything else — genuine errors a live
// source answered with, and calls the caller itself ended — must stay a
// plain error so it can neither become a partial answer nor trip the
// source's circuit breaker.
func TestClassifySourceError(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	callerDeadline, cancelCD := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelCD()
	evalDeadline, cancelED := withEvalDeadline(context.Background(), time.Nanosecond)
	defer cancelED()
	<-evalDeadline.Done()
	// An evaluation deadline with plenty of headroom: refused dials under
	// it are worth a retry.
	roomyDeadline, cancelRD := withEvalDeadline(context.Background(), time.Minute)
	defer cancelRD()

	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want string
	}{
		{
			name: "deadline exceeded",
			err:  context.DeadlineExceeded,
			want: wantUnavailable,
		},
		{
			name: "wrapped cancellation from within the source path",
			err:  fmt.Errorf("exec: %w", context.Canceled),
			// The caller's context is alive, so the cancel arose
			// source-side: still no answer by the designated time.
			want: wantUnavailable,
		},
		{
			name: "caller cancellation",
			ctx:  cancelled,
			err:  fmt.Errorf("exec: %w", context.Canceled),
			want: wantPlain,
		},
		{
			name: "caller-imposed deadline",
			ctx:  callerDeadline,
			err:  fmt.Errorf("wire: %w", context.DeadlineExceeded),
			want: wantPlain,
		},
		{
			name: "mediator evaluation deadline",
			ctx:  evalDeadline,
			err:  fmt.Errorf("wire: %w", context.DeadlineExceeded),
			want: wantUnavailable,
		},
		{
			name: "network timeout",
			err:  timeoutErr{},
			want: wantUnavailable,
		},
		{
			name: "connection refused with deadline to spare is transient",
			ctx:  roomyDeadline,
			err: &net.OpError{Op: "dial", Net: "tcp",
				Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)},
			// A restarting server fixes a refused dial in milliseconds; with
			// headroom the retry budget gets one shot before failover.
			want: wantTransient,
		},
		{
			name: "connection refused with the deadline nearly spent",
			ctx:  evalDeadline,
			err: &net.OpError{Op: "dial", Net: "tcp",
				Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)},
			// No headroom for a backoff and redial: ordinary unavailability.
			want: wantUnavailable,
		},
		{
			name: "host unreachable at dial",
			err: &net.OpError{Op: "dial", Net: "tcp",
				Err: os.NewSyscallError("connect", syscall.EHOSTUNREACH)},
			// Not a refused dial: routing problems do not clear in one
			// backoff, so no retry is owed.
			want: wantUnavailable,
		},
		{
			name: "bare ECONNREFUSED with headroom",
			ctx:  roomyDeadline,
			err:  syscall.ECONNREFUSED,
			// e.g. surfaced by a local proxy without the OpError wrapping.
			want: wantTransient,
		},
		{
			name: "reset mid-answer is transient",
			err: &net.OpError{Op: "read", Net: "tcp",
				Err: os.NewSyscallError("read", syscall.ECONNRESET)},
			// The source was reached and the exchange broke: one budgeted
			// retry usually succeeds against a flaky link (the PR 1 choice
			// of "plain error" predates retry budgets).
			want: wantTransient,
		},
		{
			name: "write failure on an established connection",
			err: &net.OpError{Op: "write", Net: "tcp",
				Err: os.NewSyscallError("write", syscall.EPIPE)},
			want: wantTransient,
		},
		{
			name: "connection closed mid-answer",
			err:  fmt.Errorf("wire: read 127.0.0.1:1: %w", io.EOF),
			want: wantTransient,
		},
		{
			name: "server shed the request (overload frame)",
			err:  &wire.OverloadedError{Addr: "127.0.0.1:1"},
			want: wantTransient,
		},
		{
			name: "remote error from a live source",
			err:  &wire.RemoteError{Addr: "127.0.0.1:1", Msg: "no such table"},
			want: wantPlain,
		},
		{
			name: "plain source error",
			err:  errors.New("table people does not exist"),
			want: wantPlain,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := tc.ctx
			if ctx == nil {
				ctx = context.Background()
			}
			got := classifySourceError(ctx, "r0", tc.err)
			var ue *physical.UnavailableError
			var te *TransientError
			verdict := wantPlain
			switch {
			case errors.As(got, &ue):
				verdict = wantUnavailable
			case errors.As(got, &te):
				verdict = wantTransient
			}
			if verdict != tc.want {
				t.Errorf("classifySourceError(%v) = %v, want %v", tc.err, verdict, tc.want)
			}
			switch verdict {
			case wantUnavailable:
				if ue.Repo != "r0" {
					t.Errorf("UnavailableError.Repo = %q, want r0", ue.Repo)
				}
			case wantTransient:
				if te.Repo != "r0" {
					t.Errorf("TransientError.Repo = %q, want r0", te.Repo)
				}
				if !errors.Is(got, tc.err) {
					t.Errorf("transient error lost its cause: %v", got)
				}
			default:
				if !errors.Is(got, tc.err) {
					t.Errorf("real error was rewrapped beyond recognition: %v", got)
				}
			}
		})
	}
}

// TestRealSourceFailureAbortsQueryOverPartitions: a live shard answering
// with an error must fail the whole query, not shrink it to a partial
// answer (the mis-classification this fix removes).
func TestRealSourceFailureAbortsQueryOverPartitions(t *testing.T) {
	m := New(WithTimeout(2 * time.Second))
	m.RegisterEngine("r0", shardStore(t, shardRows[0]))
	// r1's engine lacks the people table: a genuine query failure from a
	// live source.
	m.RegisterEngine("r1", failingEngine{})
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		r1 := Repository(address="mem:r1");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at r0, r1;
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.QueryPartial(`select x from x in people`); err == nil {
		t.Fatal("real shard failure must abort the query, not yield a partial answer")
	}
}

type failingEngine struct{}

func (failingEngine) Query(string) (*types.Bag, error) {
	return nil, errors.New("disk corrupted")
}
func (failingEngine) Collections() []string { return nil }
