package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"disco/internal/physical"
	"disco/internal/types"
)

// timeoutErr is a minimal net.Error with Timeout() = true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestClassifySourceError is the regression suite for the unavailability
// classifier: only "no answer" conditions (timeouts, refused or failed
// dials, expired evaluation deadlines) may become partial answers. A
// source that was reached and then failed mid-answer produced a genuine
// error — degrading it silently into a partial answer hides real failures.
// And a call the caller itself ended (cancellation, a caller-imposed
// deadline) is neither: it must classify as a plain error so it cannot
// become a partial answer or trip the source's circuit breaker.
func TestClassifySourceError(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	callerDeadline, cancelCD := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelCD()
	evalDeadline, cancelED := withEvalDeadline(context.Background(), time.Nanosecond)
	defer cancelED()
	<-evalDeadline.Done()

	cases := []struct {
		name        string
		ctx         context.Context
		err         error
		unavailable bool
	}{
		{
			name:        "deadline exceeded",
			err:         context.DeadlineExceeded,
			unavailable: true,
		},
		{
			name: "wrapped cancellation from within the source path",
			err:  fmt.Errorf("exec: %w", context.Canceled),
			// The caller's context is alive, so the cancel arose
			// source-side: still no answer by the designated time.
			unavailable: true,
		},
		{
			name:        "caller cancellation",
			ctx:         cancelled,
			err:         fmt.Errorf("exec: %w", context.Canceled),
			unavailable: false,
		},
		{
			name:        "caller-imposed deadline",
			ctx:         callerDeadline,
			err:         fmt.Errorf("wire: %w", context.DeadlineExceeded),
			unavailable: false,
		},
		{
			name:        "mediator evaluation deadline",
			ctx:         evalDeadline,
			err:         fmt.Errorf("wire: %w", context.DeadlineExceeded),
			unavailable: true,
		},
		{
			name:        "network timeout",
			err:         timeoutErr{},
			unavailable: true,
		},
		{
			name: "connection refused at dial",
			err: &net.OpError{Op: "dial", Net: "tcp",
				Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)},
			unavailable: true,
		},
		{
			name: "host unreachable at dial",
			err: &net.OpError{Op: "dial", Net: "tcp",
				Err: os.NewSyscallError("connect", syscall.EHOSTUNREACH)},
			unavailable: true,
		},
		{
			name: "bare ECONNREFUSED",
			err:  syscall.ECONNREFUSED,
			// e.g. surfaced by a local proxy without the OpError wrapping.
			unavailable: true,
		},
		{
			name: "reset mid-answer is a real failure",
			err: &net.OpError{Op: "read", Net: "tcp",
				Err: os.NewSyscallError("read", syscall.ECONNRESET)},
			unavailable: false,
		},
		{
			name: "write failure on an established connection",
			err: &net.OpError{Op: "write", Net: "tcp",
				Err: os.NewSyscallError("write", syscall.EPIPE)},
			unavailable: false,
		},
		{
			name:        "plain source error",
			err:         errors.New("table people does not exist"),
			unavailable: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := tc.ctx
			if ctx == nil {
				ctx = context.Background()
			}
			got := classifySourceError(ctx, "r0", tc.err)
			var ue *physical.UnavailableError
			isUnavailable := errors.As(got, &ue)
			if isUnavailable != tc.unavailable {
				t.Errorf("classifySourceError(%v): unavailable = %v, want %v", tc.err, isUnavailable, tc.unavailable)
			}
			if isUnavailable && ue.Repo != "r0" {
				t.Errorf("UnavailableError.Repo = %q, want r0", ue.Repo)
			}
			if !isUnavailable && !errors.Is(got, tc.err) {
				t.Errorf("real error was rewrapped beyond recognition: %v", got)
			}
		})
	}
}

// TestRealSourceFailureAbortsQueryOverPartitions: a live shard answering
// with an error must fail the whole query, not shrink it to a partial
// answer (the mis-classification this fix removes).
func TestRealSourceFailureAbortsQueryOverPartitions(t *testing.T) {
	m := New(WithTimeout(2 * time.Second))
	m.RegisterEngine("r0", shardStore(t, shardRows[0]))
	// r1's engine lacks the people table: a genuine query failure from a
	// live source.
	m.RegisterEngine("r1", failingEngine{})
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		r1 := Repository(address="mem:r1");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at r0, r1;
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.QueryPartial(`select x from x in people`); err == nil {
		t.Fatal("real shard failure must abort the query, not yield a partial answer")
	}
}

type failingEngine struct{}

func (failingEngine) Query(string) (*types.Bag, error) {
	return nil, errors.New("disk corrupted")
}
func (failingEngine) Collections() []string { return nil }
