package core

import (
	"testing"
	"time"

	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// TestCheckFreshDetectsChangedSources exercises the §4 staleness extension:
// a partial answer snapshots the versions of the data it embeds, and
// CheckFresh reports when those sources changed while others were down.
func TestCheckFreshDetectsChangedSources(t *testing.T) {
	r0, r1 := paperStores(t)
	srv0, err := wire.NewServer("127.0.0.1:0", EngineHandler{Engine: r0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv0.Close()
	srv1, err := wire.NewServer("127.0.0.1:0", EngineHandler{Engine: r1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()

	m := New(WithTimeout(250 * time.Millisecond))
	if err := m.ExecODL(`
		r0 := Repository(address="` + srv0.Addr() + `");
		r1 := Repository(address="` + srv1.Addr() + `");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
		extent person1 of Person wrapper w0 repository r1;
	`); err != nil {
		t.Fatal(err)
	}

	// r0 goes down; the partial answer embeds r1's data and snapshots
	// r1's versions.
	srv0.SetAvailable(false)
	ans, err := m.QueryPartial(`select x.name from x in person where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Fatal("expected partial")
	}
	if ans.Snapshot == nil || ans.Snapshot["r1"] == nil {
		t.Fatalf("snapshot missing r1: %+v", ans.Snapshot)
	}
	if _, tracked := ans.Snapshot["r0"]; tracked {
		t.Error("the unavailable source cannot be snapshotted")
	}

	// Nothing changed yet: fresh.
	stale, err := m.CheckFresh(ans)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Errorf("stale = %v, want none", stale)
	}

	// Sam gets a raise at r1 while r0 is still down: the embedded data is
	// now stale and CheckFresh says so.
	if err := r1.Insert("person1", types.Int(9), types.Str("New"), types.Int(77)); err != nil {
		t.Fatal(err)
	}
	stale, err = m.CheckFresh(ans)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 1 || stale[0] != "r1" {
		t.Errorf("stale = %v, want [r1]", stale)
	}
}

func TestCheckFreshInProcessEngines(t *testing.T) {
	m := paperMediator(t) // mem: engines, RelStore is Versioned
	// Make r1 unavailable by replacing it with a TCP-less trick: drop the
	// extent instead and query the remaining one... simpler: use the
	// harness behaviour where both are up — a complete answer snapshots
	// nothing.
	ans, err := m.QueryPartial(`select x.name from x in person`)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Complete {
		t.Fatal("expected complete answer")
	}
	if ans.Snapshot != nil {
		t.Errorf("complete answers carry no snapshot: %+v", ans.Snapshot)
	}
}

func TestRelStoreDelete(t *testing.T) {
	s := source.NewRelStore()
	if err := source.ExecScript(s, `
		CREATE TABLE t (id, name);
		INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c');
	`); err != nil {
		t.Fatal(err)
	}
	v0 := s.Versions()["t"]
	n, err := s.Delete("t", `id >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("deleted = %d, want 2", n)
	}
	rows, err := s.Rows("t")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Errorf("remaining rows = %d", rows.Len())
	}
	if s.Versions()["t"] == v0 {
		t.Error("delete should bump the version")
	}
	// No matches: version unchanged.
	v1 := s.Versions()["t"]
	if _, err := s.Delete("t", `id = 99`); err != nil {
		t.Fatal(err)
	}
	if s.Versions()["t"] != v1 {
		t.Error("no-op delete should not bump the version")
	}
	// Errors.
	if _, err := s.Delete("ghost", `id = 1`); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := s.Delete("t", `not valid sql ~`); err == nil {
		t.Error("bad condition should fail")
	}
}
