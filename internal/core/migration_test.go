package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/catalog"
	"disco/internal/source"
	"disco/internal/types"
)

// migMediator builds the live-migration fixture: one extent range-partitioned
// (..10, 10..20, 20..) across r0, r1, r2 plus two spare repositories r3, r4
// declared but holding nothing — the destinations migrations move shards to.
func migMediator(t *testing.T) (*Mediator, []*countingEngine, []*source.RelStore) {
	t.Helper()
	m := New(WithTimeout(2 * time.Second))
	engines := make([]*countingEngine, 5)
	stores := make([]*source.RelStore, 5)
	var odl strings.Builder
	for i := 0; i < 5; i++ {
		stores[i] = source.NewRelStore()
		engines[i] = &countingEngine{inner: stores[i]}
		repo := "r" + string(rune('0'+i))
		m.RegisterEngine(repo, engines[i])
		odl.WriteString(repo + ` := Repository(address="mem:` + repo + `");` + "\n")
	}
	for i := 0; i < 3; i++ {
		if err := stores[i].CreateTable("people", "id", "name", "salary"); err != nil {
			t.Fatal(err)
		}
	}
	spec := &algebra.PartitionSpec{Kind: algebra.PartRange, Attr: "id", Ranges: []algebra.RangeBound{
		{Hi: types.Int(10)},
		{Lo: types.Int(10), Hi: types.Int(20)},
		{Lo: types.Int(20)},
	}}
	for _, id := range []int{5, 9, 10, 15, 20, 25} {
		shard := spec.Locate(types.Int(int64(id)), 3)
		if err := stores[shard].Insert("people",
			types.Int(int64(id)), types.Str("p"+itoa(id)), types.Int(int64(id))); err != nil {
			t.Fatal(err)
		}
	}
	odl.WriteString(`
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at r0, r1, r2
		    partition by range(id) (..10, 10..20, 20..);
	`)
	if err := m.ExecODL(odl.String()); err != nil {
		t.Fatal(err)
	}
	return m, engines, stores
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// migBaseline is every query the lifecycle tests replay at each resting
// state, with the answer the unmigrated layout gives.
var migBaseline = []struct {
	query string
	want  *types.Bag
}{
	{`select x.name from x in people`, types.NewBag(
		types.Str("p5"), types.Str("p9"), types.Str("p10"),
		types.Str("p15"), types.Str("p20"), types.Str("p25"))},
	{`select x.name from x in people where x.id >= 10 and x.id < 20`,
		types.NewBag(types.Str("p10"), types.Str("p15"))},
	{`count(people)`, types.NewBag()}, // filled in checkBaseline: count answers Int
}

// checkBaseline asserts the mediator still answers exactly the pre-migration
// result set — complete and duplicate-free — at the current resting state.
func checkBaseline(t *testing.T, m *Mediator, label string) {
	t.Helper()
	for _, c := range migBaseline[:2] {
		got, err := m.Query(c.query)
		if err != nil {
			t.Fatalf("%s: %s: %v", label, c.query, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: %s = %s, want %s", label, c.query, got, c.want)
		}
	}
	if got := m.MustQuery(`count(people)`); !got.Equal(types.Int(6)) {
		t.Errorf("%s: count(people) = %s, want 6", label, got)
	}
}

// advance steps the migration once and checks the phase it rests in.
func advance(t *testing.T, m *Mediator, extent, wantPhase string, wantDone bool) {
	t.Helper()
	phase, done, err := m.AdvanceMigration(context.Background(), extent)
	if err != nil {
		t.Fatalf("advance to %s: %v", wantPhase, err)
	}
	if phase != wantPhase || done != wantDone {
		t.Fatalf("advance = (%s, %v), want (%s, %v)", phase, done, wantPhase, wantDone)
	}
}

// TestMigrationMoveLifecycle walks a shard move through every resting state:
// each transition bumps the catalog version, every state answers the
// baseline, and the finished layout serves the moved shard from its new home
// with the old collection emptied.
func TestMigrationMoveLifecycle(t *testing.T) {
	m, engines, stores := migMediator(t)
	checkBaseline(t, m, "before")

	if err := m.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	version := m.Catalog().Version()
	for _, step := range []struct {
		phase string
		done  bool
	}{
		{catalog.PhaseCopying, false},
		{catalog.PhaseDualRead, false},
		{catalog.PhaseCutover, false},
		{catalog.PhaseCutover, true},
	} {
		advance(t, m, "people", step.phase, step.done)
		if v := m.Catalog().Version(); v <= version {
			t.Errorf("phase %s did not bump the catalog version (%d -> %d)", step.phase, version, v)
		} else {
			version = v
		}
		checkBaseline(t, m, step.phase)
	}

	me, err := m.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(me.Partitions(), ","); got != "r0,r3,r2" {
		t.Errorf("post-move placement = %s, want r0,r3,r2", got)
	}
	if _, ok := m.Catalog().MigrationOf("people"); ok {
		t.Error("migration record should be gone after finish")
	}
	// The moved shard answers from its new home only.
	resetCounts(engines)
	got := m.MustQuery(`select x.name from x in people where x.id = 15`)
	if !got.Equal(types.NewBag(types.Str("p15"))) {
		t.Errorf("moved shard answers %s", got)
	}
	if engines[3].count() != 1 || totalCalls(engines) != 1 {
		t.Errorf("post-move point query calls = %d total, r3 = %d; want 1/1", totalCalls(engines), engines[3].count())
	}
	// Cleanup emptied the old collection.
	rows, err := stores[1].Rows("people")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Errorf("old shard still holds %d rows after cleanup", rows.Len())
	}
}

// TestMigrationDualReadPlanShape: during dual-read the migrating shard's
// branch is a distinct-fused parallel union over old and new placement, and
// Explain surfaces the in-flight migration.
func TestMigrationDualReadPlanShape(t *testing.T) {
	m, _, _ := migMediator(t)
	if err := m.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	advance(t, m, "people", catalog.PhaseCopying, false)
	advance(t, m, "people", catalog.PhaseDualRead, false)

	plan, _, err := m.Prepare(`select x.name from x in people`)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	if !strings.Contains(s, "distinct(") {
		t.Errorf("dual-read plan lacks the distinct fuse: %s", s)
	}
	subs := algebra.Submits(plan)
	if len(subs) != 4 {
		t.Fatalf("dual-read plan has %d submits, want 4 (r0, r1, r3, r2): %s", len(subs), s)
	}
	repos := map[string]int{}
	standbys := 0
	for _, sub := range subs {
		repos[sub.Repo]++
		for _, ref := range exprRefs(sub.Input) {
			if ref.Standby {
				standbys++
				if sub.Repo != "r3" {
					t.Errorf("standby branch submits to %s, want r3", sub.Repo)
				}
			}
		}
	}
	for _, r := range []string{"r0", "r1", "r2", "r3"} {
		if repos[r] != 1 {
			t.Errorf("dual-read plan submits to %s %d times, want 1: %s", r, repos[r], s)
		}
	}
	if standbys != 1 {
		t.Errorf("dual-read plan has %d standby refs, want 1: %s", standbys, s)
	}
}

// TestMigrationDualReadPrunes is the pruning satellite: a query whose
// predicate excludes the migrating shard dials neither its old nor its new
// placement, and a query it keeps dials both.
func TestMigrationDualReadPrunes(t *testing.T) {
	m, engines, _ := migMediator(t)
	if err := m.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	advance(t, m, "people", catalog.PhaseCopying, false)
	advance(t, m, "people", catalog.PhaseDualRead, false)

	// id = 5 lives on r0: the pruned migrating shard dials neither placement.
	resetCounts(engines)
	got, err := m.Query(`select x.name from x in people where x.id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(types.NewBag(types.Str("p5"))) {
		t.Errorf("pruned query = %s", got)
	}
	if totalCalls(engines) != 1 || engines[0].count() != 1 {
		t.Errorf("pruned dual-read query made %d calls (r1=%d, r3=%d), want 1 to r0 only",
			totalCalls(engines), engines[1].count(), engines[3].count())
	}

	// id = 15 lives on the migrating shard: both placements answer.
	resetCounts(engines)
	got, err = m.Query(`select x.name from x in people where x.id = 15`)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(types.NewBag(types.Str("p15"))) {
		t.Errorf("dual-read point query = %s", got)
	}
	if engines[1].count() != 1 || engines[3].count() != 1 || totalCalls(engines) != 2 {
		t.Errorf("dual-read point query calls: r1=%d r3=%d total=%d, want exactly both placements",
			engines[1].count(), engines[3].count(), totalCalls(engines))
	}
}

// downEngine fails every query with a timeout-classified error while down.
type downEngine struct {
	inner source.Engine
	mu    sync.Mutex
	down  bool
}

func (e *downEngine) setDown(down bool) {
	e.mu.Lock()
	e.down = down
	e.mu.Unlock()
}

func (e *downEngine) Query(q string) (*types.Bag, error) {
	e.mu.Lock()
	down := e.down
	e.mu.Unlock()
	if down {
		return nil, context.DeadlineExceeded
	}
	return e.inner.Query(q)
}

func (e *downEngine) Collections() []string { return e.inner.Collections() }

func (e *downEngine) LoadRows(collection string, cols []string, clear source.ClearSpec, rows []types.Value) error {
	e.mu.Lock()
	down := e.down
	e.mu.Unlock()
	if down {
		return context.DeadlineExceeded
	}
	return e.inner.(source.Loader).LoadRows(collection, cols, clear, rows)
}

// LoadRows lets migration loads pass through the counting wrapper. Loads are
// not source calls from a query, so they are deliberately not counted.
func (e *countingEngine) LoadRows(collection string, cols []string, clear source.ClearSpec, rows []types.Value) error {
	return e.inner.(source.Loader).LoadRows(collection, cols, clear, rows)
}

// TestMigrationDeadStandbyDegrades: a dead *new* copy mid-migration degrades
// to the old placement — complete answers, no error, no residual.
func TestMigrationDeadStandbyDegrades(t *testing.T) {
	m, _, stores := migMediator(t)
	dead := &downEngine{inner: stores[3]}
	m.RegisterEngine("r3", dead)
	if err := m.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	advance(t, m, "people", catalog.PhaseCopying, false)
	advance(t, m, "people", catalog.PhaseDualRead, false)

	dead.setDown(true)
	checkBaseline(t, m, "dead standby")
	ans, err := m.QueryPartial(`select x.name from x in people`)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Complete {
		t.Errorf("dead standby must not leave a residual: %s", ans.Residual)
	}

	// The standby recovering lets the migration proceed to completion.
	dead.setDown(false)
	advance(t, m, "people", catalog.PhaseCutover, false)
	advance(t, m, "people", catalog.PhaseCutover, true)
	checkBaseline(t, m, "after recovery cutover")
}

// TestMigrationSplitLifecycle splits the 10..20 shard at 15: every resting
// state answers the baseline (the cutover guard hides the not-yet-cleaned
// rows), the final scheme has four ranges with the split point as an
// inclusive lower bound, and boundary rows route to the new shard only.
func TestMigrationSplitLifecycle(t *testing.T) {
	m, engines, stores := migMediator(t)
	if err := m.BeginShardSplit("people", "r1", types.Int(15), "r3"); err != nil {
		t.Fatal(err)
	}
	advance(t, m, "people", catalog.PhaseCopying, false)
	checkBaseline(t, m, "copying")
	advance(t, m, "people", catalog.PhaseDualRead, false)
	checkBaseline(t, m, "dual-read")
	advance(t, m, "people", catalog.PhaseCutover, false)
	// Placement swapped but r1 still holds the moved-away p15: the cutover
	// guard keeps it out of answers until cleanup.
	rows, err := stores[1].Rows("people")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("pre-cleanup old shard holds %d rows, want 2 (p10, p15)", rows.Len())
	}
	checkBaseline(t, m, "cutover before cleanup")
	advance(t, m, "people", catalog.PhaseCutover, true)
	checkBaseline(t, m, "done")

	me, err := m.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(me.Partitions(), ","); got != "r0,r1,r3,r2" {
		t.Errorf("post-split placement = %s, want r0,r1,r3,r2", got)
	}
	if got := me.Scheme.String(); got != "range(id) (..10, 10..15, 15..20, 20..)" {
		t.Errorf("post-split scheme = %s", got)
	}
	// The split bound is inclusive-below: id = 15 lives on the new shard.
	resetCounts(engines)
	if got := m.MustQuery(`select x.name from x in people where x.id = 15`); !got.Equal(types.NewBag(types.Str("p15"))) {
		t.Errorf("split boundary row = %s", got)
	}
	if engines[3].count() != 1 || totalCalls(engines) != 1 {
		t.Errorf("boundary row query calls r3=%d total=%d, want 1/1", engines[3].count(), totalCalls(engines))
	}
	// Cleanup removed the moved-away half from the old shard.
	rows, err = stores[1].Rows("people")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Errorf("post-cleanup old shard holds %d rows, want 1 (p10)", rows.Len())
	}
}

// TestMigrationMergeLifecycle folds the 10..20 shard into its 20.. neighbor.
// A repeated copy while still in phase copying models a crash-resume: the
// survivor's range guard keeps the copied rows out of answers until the
// instant the ranges merge.
func TestMigrationMergeLifecycle(t *testing.T) {
	m, _, stores := migMediator(t)
	if err := m.BeginShardMerge("people", "r1", "r2"); err != nil {
		t.Fatal(err)
	}
	advance(t, m, "people", catalog.PhaseCopying, false)
	checkBaseline(t, m, "copying")

	// Crash-resume: the copy ran, the driver died before cutover, and the
	// copy re-runs on resume. The survivor now physically holds the absorbed
	// rows; answers must not double-count them.
	mig, ok := m.Catalog().MigrationOf("people")
	if !ok {
		t.Fatal("migration record missing")
	}
	for i := 0; i < 2; i++ {
		if err := m.copyShard(context.Background(), &mig); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := stores[2].Rows("people")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 4 {
		t.Fatalf("survivor holds %d rows after copy, want 4 (own 2 + absorbed 2)", rows.Len())
	}
	checkBaseline(t, m, "copied, pre-cutover")

	advance(t, m, "people", catalog.PhaseCutover, false)
	checkBaseline(t, m, "cutover")
	advance(t, m, "people", catalog.PhaseCutover, true)
	checkBaseline(t, m, "done")

	me, err := m.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(me.Partitions(), ","); got != "r0,r2" {
		t.Errorf("post-merge placement = %s, want r0,r2", got)
	}
	if got := me.Scheme.String(); got != "range(id) (..10, 10..)" {
		t.Errorf("post-merge scheme = %s", got)
	}
	rows, err = stores[1].Rows("people")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Errorf("absorbed shard holds %d rows after cleanup", rows.Len())
	}
}

// TestMigrationAbortRetry: aborting mid-migration rolls back to a consistent
// catalog (placement never changed), wipes the partial copy, and the same
// migration can then be retried to completion.
func TestMigrationAbortRetry(t *testing.T) {
	m, _, stores := migMediator(t)
	if err := m.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	advance(t, m, "people", catalog.PhaseCopying, false)
	advance(t, m, "people", catalog.PhaseDualRead, false)

	if err := m.AbortMigration(context.Background(), "people"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Catalog().MigrationOf("people"); ok {
		t.Error("aborted migration record should be cleared after cleanup")
	}
	me, err := m.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(me.Partitions(), ","); got != "r0,r1,r2" {
		t.Errorf("post-abort placement = %s, want the original r0,r1,r2", got)
	}
	rows, err := stores[3].Rows("people")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Errorf("abort left %d rows at the destination", rows.Len())
	}
	checkBaseline(t, m, "after abort")

	// The same move retries cleanly end to end.
	if err := m.MoveShard(context.Background(), "people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	checkBaseline(t, m, "after retried move")
	me, err = m.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(me.Partitions(), ","); got != "r0,r3,r2" {
		t.Errorf("retried move placement = %s, want r0,r3,r2", got)
	}
}

// TestMigrationAbortedCleanupFailureKeepsRecord: when abort cleanup cannot
// reach the destination the aborted record survives, and a later
// AdvanceMigration retries the cleanup and clears it.
func TestMigrationAbortedCleanupFailureKeepsRecord(t *testing.T) {
	m, _, stores := migMediator(t)
	dead := &downEngine{inner: stores[3]}
	m.RegisterEngine("r3", dead)
	if err := m.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	advance(t, m, "people", catalog.PhaseCopying, false)
	advance(t, m, "people", catalog.PhaseDualRead, false)

	dead.setDown(true)
	if err := m.AbortMigration(context.Background(), "people"); err == nil {
		t.Fatal("abort cleanup against a dead destination should fail")
	}
	mig, ok := m.Catalog().MigrationOf("people")
	if !ok || mig.Phase != catalog.PhaseAborted {
		t.Fatalf("record after failed cleanup = %+v, want phase aborted", mig)
	}
	checkBaseline(t, m, "aborted, cleanup pending")

	dead.setDown(false)
	advance(t, m, "people", catalog.PhaseAborted, true)
	if _, ok := m.Catalog().MigrationOf("people"); ok {
		t.Error("record should clear once cleanup succeeds")
	}
	rows, err := stores[3].Rows("people")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Errorf("retried cleanup left %d rows at the destination", rows.Len())
	}
}

// TestMigrationMoveUnpartitionedExtent: a single-repository extent moves too
// (the degenerate one-shard case).
func TestMigrationMoveUnpartitionedExtent(t *testing.T) {
	m := New(WithTimeout(2 * time.Second))
	src := source.NewRelStore()
	if err := src.CreateTable("people", "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	if err := src.Insert("people", types.Int(1), types.Str("Mary"), types.Int(200)); err != nil {
		t.Fatal(err)
	}
	dst := source.NewRelStore()
	m.RegisterEngine("r0", src)
	m.RegisterEngine("r1", dst)
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		r1 := Repository(address="mem:r1");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 repository r0;
	`); err != nil {
		t.Fatal(err)
	}
	if err := m.MoveShard(context.Background(), "people", "r0", "r1"); err != nil {
		t.Fatal(err)
	}
	got := m.MustQuery(`select x.name from x in people`)
	if !got.Equal(types.NewBag(types.Str("Mary"))) {
		t.Errorf("moved extent answers %s", got)
	}
	me, err := m.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if me.Repository != "r1" || me.Partitioned() {
		t.Errorf("post-move extent placement = %+v, want repository r1", me)
	}
}

// remount builds a fresh mediator over the same stores and applies a dump.
func remount(t *testing.T, dump string, stores []*source.RelStore) *Mediator {
	t.Helper()
	m2 := New(WithTimeout(2 * time.Second))
	for i, s := range stores {
		m2.RegisterEngine("r"+string(rune('0'+i)), s)
	}
	if err := m2.ExecODL(dump); err != nil {
		t.Fatalf("reapplying dump: %v\n%s", err, dump)
	}
	return m2
}

// TestMigrationDumpRoundTrips: a DumpODL taken at any resting state restores
// both the placement and the migration record, and the restored mediator
// answers the same baseline — dual-read fusing, cutover guards and all.
func TestMigrationDumpRoundTrips(t *testing.T) {
	m, _, stores := migMediator(t)
	if err := m.BeginShardSplit("people", "r1", types.Int(15), "r3"); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		phase string
		done  bool
	}{
		{catalog.PhaseCopying, false},
		{catalog.PhaseDualRead, false},
		{catalog.PhaseCutover, false},
	}
	wantLine := `migrate people split r1 at 15 to r3 phase %q;`
	check := func(phase string) {
		t.Helper()
		dump := m.DumpODL()
		line := strings.ReplaceAll(wantLine, "%q", `"`+phase+`"`)
		if !strings.Contains(dump, line) {
			t.Fatalf("dump at %s lacks %q:\n%s", phase, line, dump)
		}
		m2 := remount(t, dump, stores)
		mig, ok := m2.Catalog().MigrationOf("people")
		if !ok {
			t.Fatalf("restored catalog has no migration record at %s", phase)
		}
		orig, _ := m.Catalog().MigrationOf("people")
		if mig != orig {
			t.Errorf("restored record %+v, want %+v", mig, orig)
		}
		checkBaseline(t, m2, "restored at "+phase)
		// The restored dump is stable: dumping again reproduces it.
		if re := m2.DumpODL(); re != dump {
			t.Errorf("restored dump differs at %s:\n--- original\n%s\n--- restored\n%s", phase, dump, re)
		}
	}
	check(catalog.PhaseDeclared)
	for _, step := range steps {
		advance(t, m, "people", step.phase, step.done)
		check(step.phase)
	}
	advance(t, m, "people", catalog.PhaseCutover, true)

	// Completed split: the new range bounds (split point inclusive-below)
	// survive a round trip with no migrate statement left.
	dump := m.DumpODL()
	if strings.Contains(dump, "migrate ") {
		t.Errorf("finished migration still dumped:\n%s", dump)
	}
	if !strings.Contains(dump, "(..10, 10..15, 15..20, 20..)") {
		t.Errorf("dump lacks the split ranges:\n%s", dump)
	}
	m2 := remount(t, dump, stores)
	checkBaseline(t, m2, "post-split round trip")
	me, err := m2.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	if got := me.Scheme.String(); got != "range(id) (..10, 10..15, 15..20, 20..)" {
		t.Errorf("round-tripped scheme = %s", got)
	}
}

// TestMigrationAbortedDumpRoundTrips: an aborted record (cleanup pending)
// survives the dump, so a restored mediator can still retry or clean up.
func TestMigrationAbortedDumpRoundTrips(t *testing.T) {
	m, _, stores := migMediator(t)
	if err := m.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	advance(t, m, "people", catalog.PhaseCopying, false)
	if err := m.Catalog().AbortMigration("people"); err != nil {
		t.Fatal(err)
	}
	dump := m.DumpODL()
	if !strings.Contains(dump, `migrate people move r1 to r3 phase "aborted";`) {
		t.Fatalf("dump lacks the aborted record:\n%s", dump)
	}
	m2 := remount(t, dump, stores)
	advance(t, m2, "people", catalog.PhaseAborted, true)
	if _, ok := m2.Catalog().MigrationOf("people"); ok {
		t.Error("restored aborted migration should clear after cleanup")
	}
	checkBaseline(t, m2, "restored aborted")
}

// TestMigrationMergeDumpRoundTrips: merged range bounds survive the round
// trip — the survivor's range covers both halves, inclusive-below and
// exclusive-above preserved.
func TestMigrationMergeDumpRoundTrips(t *testing.T) {
	m, _, stores := migMediator(t)
	if err := m.MergeShards(context.Background(), "people", "r1", "r0"); err != nil {
		t.Fatal(err)
	}
	dump := m.DumpODL()
	if !strings.Contains(dump, "(..20, 20..)") {
		t.Errorf("dump lacks the merged ranges:\n%s", dump)
	}
	m2 := remount(t, dump, stores)
	checkBaseline(t, m2, "post-merge round trip")
	// Bound semantics preserved: 20 belongs to the upper shard.
	got := m2.MustQuery(`select x.name from x in people where x.id = 20`)
	if !got.Equal(types.NewBag(types.Str("p20"))) {
		t.Errorf("boundary row after round trip = %s", got)
	}
}

// TestMigrationBeginValidation: the state machine refuses ill-formed
// migrations and concurrent migrations of one extent.
func TestMigrationBeginValidation(t *testing.T) {
	m, _, _ := migMediator(t)
	cases := []struct {
		name string
		err  error
	}{
		{"move to a holding repo", m.BeginShardMove("people", "r1", "r2")},
		{"move from a non-member", m.BeginShardMove("people", "r4", "r3")},
		{"move unknown extent", m.BeginShardMove("ghosts", "r1", "r3")},
		{"split outside the range", m.BeginShardSplit("people", "r1", types.Int(25), "r3")},
		{"split at the lower bound", m.BeginShardSplit("people", "r1", types.Int(10), "r3")},
		{"merge non-adjacent", m.BeginShardMerge("people", "r0", "r2")},
		{"merge into itself", m.BeginShardMerge("people", "r1", "r1")},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := m.BeginShardMove("people", "r1", "r3"); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginShardMove("people", "r0", "r4"); err == nil {
		t.Error("second concurrent migration of one extent should be refused")
	}
	var nf *catalog.ErrNotFound
	if _, _, err := m.AdvanceMigration(context.Background(), "ghosts"); !errors.As(err, &nf) {
		t.Errorf("advancing a missing migration = %v, want ErrNotFound", err)
	}
}
