package core

import (
	"strings"
	"testing"
	"time"

	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// notesMediator federates a keyword-search document source with contains()
// pushdown available.
func notesMediator(t *testing.T) *Mediator {
	t.Helper()
	m := New(WithTimeout(300 * time.Millisecond))
	docs := source.NewDocStore()
	for _, n := range []struct{ station, note string }{
		{"amont", "upstream reference site"},
		{"aval", "downstream of the treatment plant"},
		{"marne", "confluence, reference quality"},
	} {
		docs.AddDocument("notes", types.NewStruct(
			types.Field{Name: "station", Value: types.Str(n.station)},
			types.Field{Name: "note", Value: types.Str(n.note)},
		))
	}
	m.RegisterEngine("waisbox", docs)
	if err := m.ExecODL(`
		rw := Repository(address="mem:waisbox");
		wdoc := Wrapper("doc");
		interface Note (extent allnotes) {
		    attribute String station;
		    attribute String note;
		}
		extent notes of Note wrapper wdoc repository rw;
	`); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestContainsPushesToDocSource: contains() predicates reach the keyword
// server as GREP operations.
func TestContainsPushesToDocSource(t *testing.T) {
	m := notesMediator(t)
	got := m.MustQuery(`select n.station from n in notes where contains(n.note, "reference")`)
	want := types.NewBag(types.Str("amont"), types.Str("marne"))
	if !got.Equal(want) {
		t.Errorf("contains query = %s, want %s", got, want)
	}
	explain, err := m.Explain(`select n.station from n in notes where contains(n.note, "reference")`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, `submit(rw, select(contains(note, "reference"), get(notes)))`) {
		t.Errorf("contains should push into the submit:\n%s", explain)
	}
}

// TestContainsStaysLocalForSQLSources: relational wrappers do not advertise
// CONTAINS, so the predicate evaluates at the mediator with identical
// results.
func TestContainsStaysLocalForSQLSources(t *testing.T) {
	m := New(WithTimeout(300 * time.Millisecond))
	store := source.NewRelStore()
	if err := store.CreateTable("person0", "id", "name", "salary"); err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"Mary Curie", "Sam Weiss", "Maryam M"} {
		if err := store.Insert("person0", types.Int(int64(i)), types.Str(name), types.Int(50)); err != nil {
			t.Fatal(err)
		}
	}
	m.RegisterEngine("r0", store)
	if err := m.ExecODL(`
		r0 := Repository(address="mem:r0");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent person0 of Person wrapper w0 repository r0;
	`); err != nil {
		t.Fatal(err)
	}
	const q = `select x.name from x in person0 where contains(x.name, "Mary")`
	got := m.MustQuery(q)
	want := types.NewBag(types.Str("Mary Curie"), types.Str("Maryam M"))
	if !got.Equal(want) {
		t.Errorf("contains query = %s, want %s", got, want)
	}
	explain, err := m.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain, "submit(r0, select(contains") {
		t.Errorf("SQL wrappers must not receive contains predicates:\n%s", explain)
	}
}

// TestContainsPartialAnswerRoundTrips: a residual query carrying a
// contains() predicate parses and re-evaluates.
func TestContainsInResidualQuery(t *testing.T) {
	docs := source.NewDocStore()
	docs.AddDocument("notes", types.NewStruct(
		types.Field{Name: "station", Value: types.Str("amont")},
		types.Field{Name: "note", Value: types.Str("reference site")},
	))
	srv, err := wire.NewServer("127.0.0.1:0", EngineHandler{Engine: docs})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := New(WithTimeout(200 * time.Millisecond))
	if err := m.ExecODL(`
		rw := Repository(address="` + srv.Addr() + `");
		wdoc := Wrapper("doc");
		interface Note (extent allnotes) {
		    attribute String station;
		    attribute String note;
		}
		extent notes of Note wrapper wdoc repository rw;
	`); err != nil {
		t.Fatal(err)
	}
	srv.SetAvailable(false)
	ans, err := m.QueryPartial(`select n.station from n in notes where contains(n.note, "reference")`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Fatal("expected partial answer")
	}
	if !strings.Contains(ans.Residual.String(), "contains(") {
		t.Errorf("residual should carry the contains predicate: %s", ans.Residual)
	}
	srv.SetAvailable(true)
	re, err := m.QueryPartial(ans.Residual.String())
	if err != nil {
		t.Fatal(err)
	}
	if !re.Complete || !re.Value.Equal(types.NewBag(types.Str("amont"))) {
		t.Errorf("resubmitted = %v (complete=%v)", re.Value, re.Complete)
	}
}
