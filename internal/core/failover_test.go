package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/physical"
	"disco/internal/types"
	"disco/internal/wire"
)

// replicatedMediator declares one extent partitioned over two shards with
// one replica each (at r0|r0b, r1|r1b), every copy served over TCP so
// availability can be flipped per server. Each replica holds the same rows
// as its primary — the replica contract.
func replicatedMediator(t *testing.T, opts ...Option) (*Mediator, map[string]*wire.Server) {
	t.Helper()
	servers := map[string]*wire.Server{}
	var odl strings.Builder
	for shard := 0; shard < 2; shard++ {
		for _, suffix := range []string{"", "b"} {
			repo := fmt.Sprintf("r%d%s", shard, suffix)
			srv, err := wire.NewServer("127.0.0.1:0", EngineHandler{Engine: shardStore(t, shardRows[shard])})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			servers[repo] = srv
			fmt.Fprintf(&odl, "%s := Repository(address=%q);\n", repo, srv.Addr())
		}
	}
	odl.WriteString(`
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at r0|r0b, r1|r1b;
	`)
	m := New(append([]Option{WithTimeout(800 * time.Millisecond)}, opts...)...)
	t.Cleanup(m.Close)
	if err := m.ExecODL(odl.String()); err != nil {
		t.Fatal(err)
	}
	return m, servers
}

// wantAll is the full people bag of shards 0 and 1.
func wantAll() *types.Bag {
	var elems []types.Value
	for _, rows := range shardRows[:2] {
		for _, r := range rows {
			elems = append(elems, types.NewStruct(
				types.Field{Name: "id", Value: types.Int(int64(r[0].(int)))},
				types.Field{Name: "name", Value: types.Str(r[1].(string))},
				types.Field{Name: "salary", Value: types.Int(int64(r[2].(int)))},
			))
		}
	}
	return types.NewBag(elems...)
}

// TestFailoverRouting is the table-driven failover contract: as long as at
// least one copy of every shard answers, the query completes with the full
// bag and no residual, whichever copies are down.
func TestFailoverRouting(t *testing.T) {
	cases := []struct {
		name string
		down []string
	}{
		{name: "all copies up"},
		{name: "primary down, replica answers", down: []string{"r0"}},
		{name: "replica down, primary answers", down: []string{"r0b"}},
		{name: "both primaries down", down: []string{"r0", "r1"}},
		{name: "primary of one shard, replica of the other", down: []string{"r0", "r1b"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, servers := replicatedMediator(t)
			for _, repo := range tc.down {
				servers[repo].SetAvailable(false)
			}
			ans, err := m.QueryPartial(`select x from x in people`)
			if err != nil {
				t.Fatal(err)
			}
			if !ans.Complete {
				t.Fatalf("want complete answer, got residual %s", ans.Residual)
			}
			if !ans.Value.Equal(wantAll()) {
				t.Errorf("answer = %s, want %s", ans.Value, wantAll())
			}
		})
	}
}

// TestFailoverAllReplicasDown: partial evaluation fires only when every
// copy of a shard is down — and the residual stays resubmittable, naming
// the shard by its primary so recovery of any copy completes it.
func TestFailoverAllReplicasDown(t *testing.T) {
	m, servers := replicatedMediator(t)
	servers["r0"].SetAvailable(false)
	servers["r0b"].SetAvailable(false)

	ans, err := m.QueryPartial(`select x.name from x in people where x.salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Fatal("want a partial answer with every copy of shard 0 down")
	}
	residual := ans.Residual.String()
	if !strings.Contains(residual, "people@r0") {
		t.Errorf("residual should name the missing shard people@r0: %s", residual)
	}
	if len(ans.Unavailable) != 1 || ans.Unavailable[0] != "r0" {
		t.Errorf("unavailable = %v, want [r0] (the shard's primary)", ans.Unavailable)
	}

	// Only the replica recovers: resubmission must still complete, routed
	// through the shard's surviving copy.
	servers["r0b"].SetAvailable(true)
	re, err := m.QueryPartial(residual)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Complete {
		t.Fatalf("resubmission should complete via the replica: %s", re.Residual)
	}
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !re.Value.Equal(want) {
		t.Errorf("resubmitted = %s, want %s", re.Value, want)
	}
}

// TestReplicaShardAddressing: the extent@repo form accepts a replica name
// and canonicalizes it to the shard, so hand-written shard queries work
// against any copy's name.
func TestReplicaShardAddressing(t *testing.T) {
	m, servers := replicatedMediator(t)
	servers["r0"].SetAvailable(false)
	v, err := m.Query(`select x.name from x in people@r0b`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.NewBag(types.Str("Mary"))) {
		t.Errorf("people@r0b = %s", v)
	}
}

// TestBreakerWarmSkipsDeadPrimaryTimeout is the acceptance criterion: with
// the breaker warm, a query whose home shard's primary is down completes
// via the replica without re-paying the dead primary's timeout.
func TestBreakerWarmSkipsDeadPrimaryTimeout(t *testing.T) {
	m, servers := replicatedMediator(t, WithBreaker(1, time.Minute))
	servers["r0"].SetAvailable(false)

	const q = `select x from x in people`
	// Cold: the first query burns its share of the deadline on r0 before
	// failing over.
	start := time.Now()
	if _, err := m.Query(q); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	if got := m.BreakerState("r0"); got != BreakerOpen {
		t.Fatalf("breaker for r0 = %v after classified unavailability, want open", got)
	}

	// Warm: the open breaker routes straight to the replica.
	start = time.Now()
	if _, err := m.Query(q); err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)
	// The cold path waits out r0's attempt share (half of the 800ms
	// deadline); the warm path must not.
	if warm > 200*time.Millisecond {
		t.Errorf("warm failover took %v (cold %v): the open breaker should skip the dead primary", warm, cold)
	}
	if cold < 300*time.Millisecond {
		t.Logf("cold failover unexpectedly fast (%v); timing assertion may be meaningless", cold)
	}
}

// TestBreakerProbeRecoversPrimary: after the cooldown, the half-open probe
// rediscovers a recovered primary and closes the breaker.
func TestBreakerProbeRecoversPrimary(t *testing.T) {
	m, servers := replicatedMediator(t, WithBreaker(1, 50*time.Millisecond))
	servers["r0"].SetAvailable(false)
	if _, err := m.Query(`select x from x in people`); err != nil {
		t.Fatal(err)
	}
	if got := m.BreakerState("r0"); got != BreakerOpen {
		t.Fatalf("breaker for r0 = %v, want open", got)
	}
	servers["r0"].SetAvailable(true)
	time.Sleep(60 * time.Millisecond) // past the cooldown
	// The next query routes via the replica and fires the background probe;
	// the probe's success closes the breaker shortly after.
	if _, err := m.Query(`select x from x in people`); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.BreakerState("r0") != BreakerClosed && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := m.BreakerState("r0"); got != BreakerClosed {
		t.Errorf("breaker for r0 = %v after a successful probe, want closed", got)
	}
}

// TestBreakerOpenReplicaStillAnswersShard: the breaker is advisory — a
// copy whose breaker is open (cooldown pending) is deferred behind the
// healthy copies, but when every admitted copy turns out dead it is still
// dialed as a last resort. A breaker must never convert a shard with a
// live copy into a partial answer.
func TestBreakerOpenReplicaStillAnswersShard(t *testing.T) {
	m, servers := replicatedMediator(t, WithBreaker(1, time.Minute))
	// r0b blipped moments ago: its breaker is open and the cooldown has
	// not elapsed. Then the primary dies for real.
	m.breakers.Failure("r0b")
	servers["r0"].SetAvailable(false)
	ans, err := m.QueryPartial(`select x from x in people`)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Complete {
		t.Fatalf("the breaker-refused replica must be dialed as a last resort; got residual %s", ans.Residual)
	}
	if !ans.Value.Equal(wantAll()) {
		t.Errorf("answer = %s, want %s", ans.Value, wantAll())
	}
}

// TestFailoverConcurrentQueries hammers a half-dead replicated extent from
// many goroutines; run under -race this is the failover path's data-race
// check, and every query must still see the full bag.
func TestFailoverConcurrentQueries(t *testing.T) {
	m, servers := replicatedMediator(t, WithBreaker(2, 100*time.Millisecond))
	servers["r0"].SetAvailable(false)
	want := wantAll()
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				v, err := m.Query(`select x from x in people`)
				if err != nil {
					errs <- err
					return
				}
				if !v.Equal(want) {
					errs <- fmt.Errorf("got %s", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPrunedShardNeverDialsReplicas: partition pruning composes with
// replication — a point query touches exactly one copy of one shard, and
// the pruned shards' replicas are never dialed either.
func TestPrunedShardNeverDialsReplicas(t *testing.T) {
	m := New(WithTimeout(2 * time.Second))
	engines := map[string]*countingEngine{}
	var odl strings.Builder
	for shard := 0; shard < 4; shard++ {
		for _, suffix := range []string{"", "b"} {
			repo := fmt.Sprintf("r%d%s", shard, suffix)
			store := shardStore(t, nil)
			for id := 0; id < 32; id++ {
				if int(algebra.HashValue(types.Int(int64(id)))%4) != shard {
					continue
				}
				if err := store.Insert("people", types.Int(int64(id)), types.Str(fmt.Sprintf("p%d", id)), types.Int(int64(id))); err != nil {
					t.Fatal(err)
				}
			}
			engines[repo] = &countingEngine{inner: store}
			m.RegisterEngine(repo, engines[repo])
			fmt.Fprintf(&odl, "%s := Repository(address=%q);\n", repo, "mem:"+repo)
		}
	}
	odl.WriteString(`
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at r0|r0b, r1|r1b, r2|r2b, r3|r3b
		    partition by hash(id);
	`)
	if err := m.ExecODL(odl.String()); err != nil {
		t.Fatal(err)
	}
	v, err := m.Query(`select x.name from x in people where x.id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(types.NewBag(types.Str("p7"))) {
		t.Errorf("point query = %s", v)
	}
	total := 0
	for repo, e := range engines {
		n := e.count()
		total += n
		home := fmt.Sprintf("r%d", int(algebra.HashValue(types.Int(7))%4))
		if repo != home && n > 0 {
			t.Errorf("repo %s answered %d calls; only the home shard's primary %s should", repo, n, home)
		}
	}
	if total != 1 {
		t.Errorf("point query made %d source calls across all replicas, want exactly 1", total)
	}
}

// TestReplicaODLRoundTrip: a replicated, partitioned catalog dumps to ODL
// that reproduces itself — the replica groups and the scheme both survive.
func TestReplicaODLRoundTrip(t *testing.T) {
	m := New()
	for shard := 0; shard < 2; shard++ {
		for _, suffix := range []string{"", "b"} {
			repo := fmt.Sprintf("r%d%s", shard, suffix)
			m.RegisterEngine(repo, shardStore(t, nil))
		}
	}
	odlSrc := `
		r0 := Repository(address="mem:r0");
		r0b := Repository(address="mem:r0b");
		r1 := Repository(address="mem:r1");
		r1b := Repository(address="mem:r1b");
		w0 := WrapperPostgres();
		interface Person (extent person) {
		    attribute Short id;
		    attribute String name;
		    attribute Short salary;
		}
		extent people of Person wrapper w0 at r0|r0b, r1|r1b
		    partition by hash(id);
	`
	if err := m.ExecODL(odlSrc); err != nil {
		t.Fatal(err)
	}
	dump := m.DumpODL()
	if !strings.Contains(dump, "at r0|r0b, r1|r1b") {
		t.Fatalf("dump misses replica groups:\n%s", dump)
	}
	m2 := New()
	if err := m2.ExecODL(dump); err != nil {
		t.Fatalf("dump does not re-apply: %v\n%s", err, dump)
	}
	if dump2 := m2.DumpODL(); dump2 != dump {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", dump, dump2)
	}
	me, err := m2.Catalog().Extent("people")
	if err != nil || !me.Replicated() || me.Scheme == nil {
		t.Errorf("replicas or scheme lost: %+v, %v", me, err)
	}
}

// TestCallerCancelDoesNotTripBreaker: a cancelled caller must produce a
// plain error — not an unavailability — and leave the circuit breaker
// untouched however often it happens (the poisoning bug this PR fixes).
func TestCallerCancelDoesNotTripBreaker(t *testing.T) {
	m, _ := replicatedMediator(t, WithBreaker(2, time.Minute))
	me, err := m.Catalog().Extent("people")
	if err != nil {
		t.Fatal(err)
	}
	expr := &algebra.Get{Ref: m.Catalog().PartitionRef(me, "r0")}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 5; i++ {
		_, err := m.submit(ctx, "r0", expr)
		if err == nil {
			t.Fatal("submit with a cancelled caller context should fail")
		}
		var ue *physical.UnavailableError
		if errors.As(err, &ue) {
			t.Fatalf("caller cancellation classified as unavailability: %v", err)
		}
	}
	if got := m.BreakerState("r0"); got != BreakerClosed {
		t.Errorf("breaker for r0 = %v after caller cancellations, want closed (not poisoned)", got)
	}
	if got := m.BreakerState("r0b"); got != BreakerClosed {
		t.Errorf("breaker for r0b = %v, want closed", got)
	}
}
