package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission-gate defaults (WithAdmission zero values).
const (
	// DefaultMaxQueued bounds the admission FIFO when WithAdmission is
	// given a non-positive queue bound.
	DefaultMaxQueued = 64
	// DefaultMaxQueueWait bounds how long a query may sit in the admission
	// queue before it is shed.
	DefaultMaxQueueWait = time.Second
)

// OverloadError reports that the mediator shed a query to protect itself:
// the admission gate was at its concurrency limit and the query could not
// (or should not) wait. It is distinct from an unavailability — no source
// was dialed, nothing is known to be down, and the same query resubmitted
// moments later may well be admitted. Callers that retry should do so with
// backoff; callers that cannot should surface the overload.
type OverloadError struct {
	// Reason says why the query was shed: the queue was full, the queue
	// wait bound elapsed, the query's remaining deadline could not cover
	// the typical service time, or the gate was closed under it.
	Reason string
	// Queued is how long the query waited in the admission queue before
	// being shed (zero when it was shed on arrival).
	Queued time.Duration
}

// Error implements the error interface.
func (e *OverloadError) Error() string {
	if e.Queued > 0 {
		return fmt.Sprintf("mediator overloaded: %s (queued %v)", e.Reason, e.Queued)
	}
	return "mediator overloaded: " + e.Reason
}

// IsOverloadError reports whether err is (or wraps) an admission shed.
func IsOverloadError(err error) bool {
	var oe *OverloadError
	return errors.As(err, &oe)
}

// admitWaiter is one queued query: grant closes ready with granted set;
// the waiter itself withdraws on timeout or context death.
type admitWaiter struct {
	ready   chan struct{}
	granted bool
	shedErr *OverloadError // set instead of granted when the gate sheds it
}

// admission is the mediator's weighted-semaphore admission gate: at most
// maxConcurrent queries execute, at most maxQueued more wait in FIFO
// order, and nothing waits past maxWait or past the point where its own
// deadline could no longer cover the typical (p50) service time. Everything
// beyond those bounds is shed immediately with an OverloadError — early
// rejection is the mechanism that keeps the latency of *admitted* queries
// bounded when offered load exceeds capacity.
type admission struct {
	maxConcurrent int
	maxQueued     int
	maxWait       time.Duration

	mu       sync.Mutex
	cond     *sync.Cond // signaled when inflight drops to zero (drain)
	inflight int
	queue    []*admitWaiter

	// serviceNS is a sliding window of recent admitted-query service times
	// feeding the p50 the deadline-aware shed compares against.
	serviceNS []int64
	serviceAt int
}

// serviceWindow is how many recent service times the gate remembers.
const serviceWindow = 64

func newAdmission(maxConcurrent, maxQueued int, maxWait time.Duration) *admission {
	if maxQueued <= 0 {
		maxQueued = DefaultMaxQueued
	}
	if maxWait <= 0 {
		maxWait = DefaultMaxQueueWait
	}
	a := &admission{
		maxConcurrent: maxConcurrent,
		maxQueued:     maxQueued,
		maxWait:       maxWait,
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// p50Locked returns the median of the recent service-time window (0 when
// the window is empty). Called with a.mu held.
func (a *admission) p50Locked() time.Duration {
	n := len(a.serviceNS)
	if n == 0 {
		return 0
	}
	sorted := make([]int64, n)
	copy(sorted, a.serviceNS)
	// n <= serviceWindow, so insertion sort is cheap and allocation-free
	// beyond the copy.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return time.Duration(sorted[n/2])
}

// observe records one admitted query's service time in the p50 window.
func (a *admission) observe(d time.Duration) {
	a.mu.Lock()
	if len(a.serviceNS) < serviceWindow {
		a.serviceNS = append(a.serviceNS, int64(d))
	} else {
		a.serviceNS[a.serviceAt] = int64(d)
		a.serviceAt = (a.serviceAt + 1) % serviceWindow
	}
	a.mu.Unlock()
}

// acquire admits the query, queues it, or sheds it. deadline is the
// query's evaluation deadline (zero when none): a query whose remaining
// deadline cannot cover the historical p50 service time is shed on
// arrival — queueing it would only let it burn a slot and die anyway.
// The returned duration is the time spent queued (for Trace).
func (a *admission) acquire(deadline time.Time) (time.Duration, *OverloadError) {
	a.mu.Lock()
	if a.inflight < a.maxConcurrent && len(a.queue) == 0 {
		a.inflight++
		a.mu.Unlock()
		return 0, nil
	}
	// The gate is at capacity: decide between queueing and shedding.
	if !deadline.IsZero() {
		if p50 := a.p50Locked(); p50 > 0 && time.Until(deadline) < p50 {
			a.mu.Unlock()
			return 0, &OverloadError{Reason: fmt.Sprintf(
				"remaining deadline %v cannot cover typical service time %v",
				time.Until(deadline).Round(time.Millisecond), p50.Round(time.Millisecond))}
		}
	}
	if len(a.queue) >= a.maxQueued {
		a.mu.Unlock()
		return 0, &OverloadError{Reason: fmt.Sprintf("admission queue full (%d waiting)", a.maxQueued)}
	}
	w := &admitWaiter{ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	start := time.Now()
	wait := a.maxWait
	if !deadline.IsZero() {
		if until := time.Until(deadline); until < wait {
			wait = until
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.ready:
		queued := time.Since(start)
		if w.shedErr != nil {
			w.shedErr.Queued = queued
			return queued, w.shedErr
		}
		return queued, nil
	case <-timer.C:
	}
	// Timed out: withdraw from the queue — unless a grant (or a gate-close
	// shed) raced the timer, in which case honor it.
	a.mu.Lock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.mu.Unlock()
			queued := time.Since(start)
			return queued, &OverloadError{
				Reason: fmt.Sprintf("no slot within the queue wait bound %v", wait),
				Queued: queued,
			}
		}
	}
	a.mu.Unlock()
	<-w.ready // the grant/shed is already decided; collect it
	queued := time.Since(start)
	if w.shedErr != nil {
		w.shedErr.Queued = queued
		return queued, w.shedErr
	}
	return queued, nil
}

// release returns one slot and grants it to the queue head, FIFO.
func (a *admission) release() {
	a.mu.Lock()
	if len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		w.granted = true
		close(w.ready)
		// The slot transfers to the waiter; inflight is unchanged.
		a.mu.Unlock()
		return
	}
	a.inflight--
	if a.inflight == 0 {
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// drain blocks until no admitted query remains in flight. Close calls it
// after shedAll so the queries already past the gate finish against live
// clients before the mediator releases them.
func (a *admission) drain() {
	a.mu.Lock()
	for a.inflight > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// shedAll sheds every queued waiter (Mediator.Close): each one returns
// promptly with an OverloadError instead of waiting out its bound against
// a mediator that is releasing its clients. Queries already admitted run
// to completion; the gate stays usable afterwards (Close keeps the
// mediator queryable).
func (a *admission) shedAll() {
	a.mu.Lock()
	queue := a.queue
	a.queue = nil
	a.mu.Unlock()
	for _, w := range queue {
		w.shedErr = &OverloadError{Reason: "mediator closing"}
		close(w.ready)
	}
}
