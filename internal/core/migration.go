// The live-migration driver (ROADMAP item 2): the phase machine that moves
// a shard between repositories or splits/merges range partitions while
// queries keep running. The catalog holds the resting states; this file does
// the work between them — the idempotent copy, the cutover, and the
// source-side cleanup — one crash-safe step at a time:
//
//	declared --Advance--> copying --Advance(copy)--> dual-read
//	dual-read --Advance--> cutover --Advance(cleanup)--> record removed
//	merge: copying --Advance(copy)--> cutover (no dual-read; the absorbed
//	       shard stays authoritative until the instant placement merges)
//
// Crash-safety is by construction, not by logging: every resting state is a
// catalog version, every copy is clear-then-load (re-runnable), and the only
// placement change is the cutover's atomic clone swap. A driver killed at
// any point resumes by calling AdvanceMigration again, or walks away with
// AbortMigration — placement never changed before cutover, so queries were
// never wrong.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"disco/internal/algebra"
	"disco/internal/catalog"
	"disco/internal/physical"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// enterReadEpoch registers a query with the current reader epoch and
// returns its release. Queries enter the epoch before resolving their plan,
// so a reader counted in a post-drain epoch provably planned against the
// post-cutover catalog.
func (m *Mediator) enterReadEpoch() func() {
	slot := &m.readers[m.epoch.Load()&1]
	slot.Add(1)
	return func() { slot.Add(-1) }
}

// drainReaders opens a new reader epoch and waits for every query that
// entered under the old one to finish, so destructive cleanup below never
// races a plan resolved against the pre-cutover catalog. The wait is
// bounded by twice the evaluation deadline — no query outlives one deadline
// (withEvalDeadline attaches it unconditionally), so the bound only trips
// if something is already broken, and proceeding then is no worse than the
// race the drain exists to close.
func (m *Mediator) drainReaders(ctx context.Context) {
	old := &m.readers[(m.epoch.Add(1)-1)&1]
	deadline := time.Now().Add(2 * m.timeout)
	for old.Load() > 0 && time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// BeginShardMove registers a move of extent's shard at from to repository
// to. The migration starts in phase declared; AdvanceMigration does the
// work.
func (m *Mediator) BeginShardMove(extent, from, to string) error {
	return m.catalog.BeginMigration(&catalog.Migration{
		Extent: extent, Kind: catalog.MigrateMove, From: from, To: to,
	})
}

// BeginShardSplit registers a split of the range shard at from: rows with
// partition attribute >= at move to a new shard at repository to.
func (m *Mediator) BeginShardSplit(extent, from string, at types.Value, to string) error {
	return m.catalog.BeginMigration(&catalog.Migration{
		Extent: extent, Kind: catalog.MigrateSplit, From: from, To: to, SplitAt: at,
	})
}

// BeginShardMerge registers a merge of the range shard at from into its
// adjacent shard at to.
func (m *Mediator) BeginShardMerge(extent, from, to string) error {
	return m.catalog.BeginMigration(&catalog.Migration{
		Extent: extent, Kind: catalog.MigrateMerge, From: from, To: to,
	})
}

// AdvanceMigration performs one step of the extent's migration and returns
// the phase it rests in afterwards. done reports that the record is gone
// (the migration finished, or an aborted one finished cleanup). Steps are
// idempotent: a step that failed — or a driver that crashed mid-step — is
// retried by calling AdvanceMigration again from the same resting state.
func (m *Mediator) AdvanceMigration(ctx context.Context, extent string) (phase string, done bool, err error) {
	mig, ok := m.catalog.MigrationOf(extent)
	if !ok {
		return "", true, &catalog.ErrNotFound{Kind: "migration", Name: extent}
	}
	switch mig.Phase {
	case catalog.PhaseDeclared:
		if err := m.catalog.SetMigrationPhase(extent, catalog.PhaseCopying); err != nil {
			return mig.Phase, false, err
		}
		return catalog.PhaseCopying, false, nil
	case catalog.PhaseCopying:
		if err := m.copyShard(ctx, &mig); err != nil {
			return mig.Phase, false, err
		}
		if mig.Kind == catalog.MigrateMerge {
			// Merge skips dual-read: the absorbed shard answers for its range
			// until the instant the ranges merge, and the surviving shard's
			// range guard keeps the copied rows out of answers until then.
			if err := m.catalog.CutoverMigration(extent); err != nil {
				return mig.Phase, false, err
			}
			return catalog.PhaseCutover, false, nil
		}
		if err := m.catalog.SetMigrationPhase(extent, catalog.PhaseDualRead); err != nil {
			return mig.Phase, false, err
		}
		return catalog.PhaseDualRead, false, nil
	case catalog.PhaseDualRead:
		if err := m.catalog.CutoverMigration(extent); err != nil {
			return mig.Phase, false, err
		}
		return catalog.PhaseCutover, false, nil
	case catalog.PhaseCutover:
		m.drainReaders(ctx)
		if err := m.cleanupAfterCutover(ctx, &mig); err != nil {
			return mig.Phase, false, err
		}
		if err := m.catalog.FinishMigration(extent); err != nil {
			return mig.Phase, false, err
		}
		return mig.Phase, true, nil
	case catalog.PhaseAborted:
		m.drainReaders(ctx)
		if err := m.cleanupAborted(ctx, &mig); err != nil {
			return mig.Phase, false, err
		}
		if err := m.catalog.ClearMigration(extent); err != nil {
			return mig.Phase, false, err
		}
		return mig.Phase, true, nil
	default:
		return mig.Phase, false, fmt.Errorf("mediator: migration of %q in unknown phase %q", extent, mig.Phase)
	}
}

// AbortMigration abandons an extent's migration before cutover and cleans up
// the partial copy at the destination. Placement never changed, so answers
// were never affected; after cleanup the record is cleared and the same
// migration can be retried with a fresh Begin. If cleanup cannot reach the
// destination the record stays aborted (answers remain correct — for a merge
// the survivor's range guard persists with the record) and either a later
// AdvanceMigration retries the cleanup or a retrying Begin resumes — the
// copy's clear-then-load makes the leftover harmless.
func (m *Mediator) AbortMigration(ctx context.Context, extent string) error {
	if err := m.catalog.AbortMigration(extent); err != nil {
		return err
	}
	mig, ok := m.catalog.MigrationOf(extent)
	if !ok {
		return nil
	}
	m.drainReaders(ctx)
	if err := m.cleanupAborted(ctx, &mig); err != nil {
		return err
	}
	return m.catalog.ClearMigration(extent)
}

// MoveShard runs a full shard move to completion: begin, copy, dual-read,
// cutover, cleanup.
func (m *Mediator) MoveShard(ctx context.Context, extent, from, to string) error {
	if err := m.BeginShardMove(extent, from, to); err != nil {
		return err
	}
	return m.driveMigration(ctx, extent)
}

// SplitShard runs a full range split to completion.
func (m *Mediator) SplitShard(ctx context.Context, extent, from string, at types.Value, to string) error {
	if err := m.BeginShardSplit(extent, from, at, to); err != nil {
		return err
	}
	return m.driveMigration(ctx, extent)
}

// MergeShards runs a full range merge to completion.
func (m *Mediator) MergeShards(ctx context.Context, extent, from, to string) error {
	if err := m.BeginShardMerge(extent, from, to); err != nil {
		return err
	}
	return m.driveMigration(ctx, extent)
}

// driveMigration advances the extent's migration until done.
func (m *Mediator) driveMigration(ctx context.Context, extent string) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, done, err := m.AdvanceMigration(ctx, extent)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// copyShard copies the migrating rows to the destination as one idempotent
// clear-then-load: read the source shard (through the normal submit path, so
// replica failover and breakers apply), filter to the migrating subset
// (split copies only rows >= SplitAt), translate into the source namespace,
// and ship. Re-running after a partial or failed earlier copy converges on
// the same state because the load clears its target set first.
func (m *Mediator) copyShard(ctx context.Context, mig *catalog.Migration) error {
	me, err := m.catalog.Extent(mig.Extent)
	if err != nil {
		return err
	}
	var ref algebra.ExtentRef
	if me.Partitioned() {
		ref = m.catalog.PartitionRef(me, mig.From)
	} else {
		ref = m.catalog.ExtentRef(me)
	}
	cctx, cancel := withEvalDeadline(ctx, m.timeout)
	defer cancel()
	bag, err := m.submit(cctx, mig.From, &algebra.Get{Ref: ref})
	if err != nil {
		return fmt.Errorf("mediator: migration copy of %s from %s: %w", mig.Extent, mig.From, err)
	}
	attr := ""
	if me.Scheme != nil {
		attr = me.Scheme.Attr
	}
	rows := make([]types.Value, 0, bag.Len())
	var rangeErr error
	bag.Range(func(v types.Value) bool {
		if mig.Kind == catalog.MigrateSplit {
			in, err := rowAtLeast(v, attr, mig.SplitAt)
			if err != nil {
				rangeErr = err
				return false
			}
			if !in {
				return true
			}
		}
		st, ok := v.(*types.Struct)
		if !ok {
			rangeErr = fmt.Errorf("mediator: migration copy of %s: row is %s, not struct", mig.Extent, v.Kind())
			return false
		}
		rows = append(rows, toSourceRow(ref, st))
		return true
	})
	if rangeErr != nil {
		return rangeErr
	}
	clear := source.ClearSpec{All: true}
	if mig.Kind == catalog.MigrateMerge {
		// The destination collection is the surviving shard's own data;
		// clear only the absorbed shard's range.
		idx := -1
		for i, p := range me.Partitions() {
			if p == mig.From {
				idx = i
				break
			}
		}
		if me.Scheme == nil || idx < 0 || idx >= len(me.Scheme.Ranges) {
			return fmt.Errorf("mediator: merge copy of %s: shard %s has no declared range", mig.Extent, mig.From)
		}
		rng := me.Scheme.Ranges[idx]
		clear = source.ClearSpec{Attr: ref.SourceAttr(attr), Lo: rng.Lo, Hi: rng.Hi}
	}
	cols := make([]string, len(ref.Attrs))
	for i, a := range ref.Attrs {
		cols[i] = ref.SourceAttr(a)
	}
	return m.loadRows(ctx, mig.To, me.SourceName, cols, clear, rows)
}

// rowAtLeast reports whether the row's attr value is >= bound.
func rowAtLeast(v types.Value, attr string, bound types.Value) (bool, error) {
	st, ok := v.(*types.Struct)
	if !ok {
		return false, fmt.Errorf("mediator: migration row is %s, not struct", v.Kind())
	}
	fv, ok := st.Get(attr)
	if !ok {
		return false, fmt.Errorf("mediator: migration row lacks partition attribute %q", attr)
	}
	c, err := types.Compare(fv, bound)
	if err != nil {
		return false, err
	}
	return c >= 0, nil
}

// toSourceRow renames a mediator-namespace row into the source namespace
// (the inverse of algebra.FromSource).
func toSourceRow(ref algebra.ExtentRef, st *types.Struct) *types.Struct {
	if len(ref.AttrMap) == 0 {
		return st
	}
	fields := st.Fields()
	out := make([]types.Field, len(fields))
	for i, f := range fields {
		out[i] = types.Field{Name: ref.SourceAttr(f.Name), Value: f.Value}
	}
	return types.NewStruct(out...)
}

// cleanupAfterCutover removes the moved-away rows from the migration
// source. For a split the cleanup is required before the record may finish:
// the split cutover guard (attr < SplitAt on the old shard) filters the
// leftover rows out of answers for exactly as long as the record exists, so
// an unreachable source delays Finish without ever corrupting an answer.
// For move and merge the whole old collection goes away — also
// answer-invisible (the old shard left placement at cutover), so a failed
// cleanup here is retried on the next Advance just the same.
func (m *Mediator) cleanupAfterCutover(ctx context.Context, mig *catalog.Migration) error {
	me, err := m.catalog.Extent(mig.Extent)
	if err != nil {
		return err
	}
	clear := source.ClearSpec{All: true}
	if mig.Kind == catalog.MigrateSplit {
		attr := ""
		if me.Scheme != nil {
			attr = me.Scheme.Attr
		}
		ref := m.catalog.ExtentRef(me)
		clear = source.ClearSpec{Attr: ref.SourceAttr(attr), Lo: mig.SplitAt}
	}
	return m.loadRows(ctx, mig.From, me.SourceName, nil, clear, nil)
}

// cleanupAborted wipes the partial copy an aborted migration may have left
// at its destination: everything for move/split (the destination collection
// existed only for the migration), the absorbed shard's range for merge
// (the destination is the survivor's live collection).
func (m *Mediator) cleanupAborted(ctx context.Context, mig *catalog.Migration) error {
	me, err := m.catalog.Extent(mig.Extent)
	if err != nil {
		return err
	}
	clear := source.ClearSpec{All: true}
	if mig.Kind == catalog.MigrateMerge {
		idx := -1
		for i, p := range me.Partitions() {
			if p == mig.From {
				idx = i
				break
			}
		}
		if me.Scheme == nil || idx < 0 || idx >= len(me.Scheme.Ranges) {
			return fmt.Errorf("mediator: merge cleanup of %s: shard %s has no declared range", mig.Extent, mig.From)
		}
		ref := m.catalog.ExtentRef(me)
		rng := me.Scheme.Ranges[idx]
		clear = source.ClearSpec{Attr: ref.SourceAttr(me.Scheme.Attr), Lo: rng.Lo, Hi: rng.Hi}
	}
	return m.loadRows(ctx, mig.To, me.SourceName, nil, clear, nil)
}

// loadRows ships one clear-then-load to a repository: in-process engines
// through source.Loader, remote repositories through the wire "load" op.
func (m *Mediator) loadRows(ctx context.Context, repo, collection string, cols []string, clear source.ClearSpec, rows []types.Value) error {
	r, err := m.catalog.Repository(repo)
	if err != nil {
		return err
	}
	if name, ok := cutMemAddr(r.Address); ok {
		m.mu.Lock()
		eng, found := m.engines[name]
		m.mu.Unlock()
		if !found {
			return fmt.Errorf("mediator: no in-process engine %q (repository %s)", name, repo)
		}
		ld, ok := eng.(source.Loader)
		if !ok {
			return fmt.Errorf("mediator: engine %q does not accept migration loads", name)
		}
		return ld.LoadRows(collection, cols, clear, rows)
	}
	if r.Address == "" {
		return fmt.Errorf("mediator: repository %s has no address", repo)
	}
	raw, err := wire.EncodeLoadRows(rows)
	if err != nil {
		return err
	}
	lo, err := wire.EncodeLoadBound(clear.Lo)
	if err != nil {
		return err
	}
	hi, err := wire.EncodeLoadBound(clear.Hi)
	if err != nil {
		return err
	}
	lctx, cancel := withEvalDeadline(ctx, m.timeout)
	defer cancel()
	err = m.clientFor(r.Address).Load(lctx, &wire.LoadRequest{
		Collection: collection,
		Cols:       cols,
		Clear:      wire.LoadClear{All: clear.All, Attr: clear.Attr, Lo: lo, Hi: hi},
		Rows:       raw,
	})
	if err != nil {
		cerr := classifySourceError(lctx, repo, err)
		var tr *TransientError
		if errors.As(cerr, &tr) {
			// TransientError is internal to the submit retry path; the
			// migration driver retries whole steps, so degrade to plain
			// unavailability.
			return &physical.UnavailableError{Repo: tr.Repo, Err: tr.Err}
		}
		return cerr
	}
	return nil
}

// cutMemAddr splits a mem: address into its engine name.
func cutMemAddr(addr string) (string, bool) {
	const prefix = "mem:"
	if len(addr) >= len(prefix) && addr[:len(prefix)] == prefix {
		return addr[len(prefix):], true
	}
	return "", false
}
