package core

import (
	"context"
	"encoding/json"
	"fmt"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/source"
	"disco/internal/types"
	"disco/internal/wire"
)

// Handler adapts a Mediator to the wire protocol so that mediators compose:
// one mediator serves as a data source of another (the M-above-M shape of
// Figure 1). It answers OQL queries and advertises a full-capability
// grammar.
type Handler struct {
	M *Mediator
}

var (
	_ wire.Handler        = Handler{}
	_ wire.PartialHandler = Handler{}
)

// HandleQuery implements wire.Handler. The wire server's request context
// bounds the evaluation: a cancel frame from the querying mediator (or its
// connection dying) stops this mediator's own source calls, so abandonment
// propagates down a mediator-over-mediator tower.
func (h Handler) HandleQuery(ctx context.Context, lang, text string) (json.RawMessage, error) {
	if lang != wire.LangOQL {
		return nil, fmt.Errorf("mediator serves %s, got %q", wire.LangOQL, lang)
	}
	v, err := h.M.QueryContext(ctx, text)
	if err != nil {
		return nil, err
	}
	return types.EncodeValue(v)
}

// HandleQueryPartial implements wire.PartialHandler: when this mediator's
// own sources are unavailable it answers with the residual query, which
// the querying mediator treats as (partial) unavailability of this source
// — partial answers compose across mediator levels because answers are
// queries.
func (h Handler) HandleQueryPartial(ctx context.Context, lang, text string) (json.RawMessage, string, []string, error) {
	if lang != wire.LangOQL {
		return nil, "", nil, fmt.Errorf("mediator serves %s, got %q", wire.LangOQL, lang)
	}
	ans, err := h.M.QueryPartialContext(ctx, text)
	if err != nil {
		return nil, "", nil, err
	}
	if !ans.Complete {
		return nil, ans.Residual.String(), ans.Unavailable, nil
	}
	value, err := types.EncodeValue(ans.Value)
	return value, "", nil, err
}

// Capability implements wire.Handler.
func (h Handler) Capability() string {
	return capability.Standard(capability.FullOpSet()).String()
}

// Collections implements wire.Handler.
func (h Handler) Collections() []string {
	var names []string
	for _, me := range h.M.Catalog().Extents() {
		names = append(names, me.Name)
	}
	return names
}

// Serve starts a wire server exposing the mediator as a data source.
func (m *Mediator) Serve(addr string) (*wire.Server, error) {
	return wire.NewServer(addr, Handler{M: m})
}

// EngineHandler adapts an in-process source.Engine to the wire protocol,
// used by cmd/disco-server and the experiment harness to run data-source
// servers.
type EngineHandler struct {
	Engine source.Engine
	// Grammar is the capability text served to mediators; data-source
	// servers advertise what their wrapper kind supports.
	Grammar string
	// Langs lists accepted query languages (defaults to any).
	Langs []string
}

var _ wire.Handler = EngineHandler{}

// HandleQuery implements wire.Handler. Engines that honor a context
// (source.ContextEngine) get the wire server's request context, so a
// cancelled or expired request stops the engine's interpreter loop instead
// of evaluating an answer nobody will read.
func (h EngineHandler) HandleQuery(ctx context.Context, lang, text string) (json.RawMessage, error) {
	if len(h.Langs) > 0 {
		ok := false
		for _, l := range h.Langs {
			if l == lang {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("source serves %v, got %q", h.Langs, lang)
		}
	}
	var b *types.Bag
	var err error
	if ce, ok := h.Engine.(source.ContextEngine); ok {
		b, err = ce.QueryContext(ctx, text)
	} else {
		b, err = h.Engine.Query(text)
	}
	if err != nil {
		return nil, err
	}
	return types.EncodeValue(b)
}

// HandleLoad implements wire.LoadHandler when the engine accepts migration
// bulk loads (source.Loader); other engines reject the frame.
func (h EngineHandler) HandleLoad(ctx context.Context, req *wire.LoadRequest) error {
	ld, ok := h.Engine.(source.Loader)
	if !ok {
		return fmt.Errorf("source engine does not accept loads")
	}
	rows, err := wire.DecodeLoadRows(req.Rows)
	if err != nil {
		return err
	}
	lo, err := wire.DecodeLoadBound(req.Clear.Lo)
	if err != nil {
		return err
	}
	hi, err := wire.DecodeLoadBound(req.Clear.Hi)
	if err != nil {
		return err
	}
	clear := source.ClearSpec{All: req.Clear.All, Attr: req.Clear.Attr, Lo: lo, Hi: hi}
	return ld.LoadRows(req.Collection, req.Cols, clear, rows)
}

// Capability implements wire.Handler.
func (h EngineHandler) Capability() string { return h.Grammar }

// Collections implements wire.Handler.
func (h EngineHandler) Collections() []string { return h.Engine.Collections() }

// Versions implements wire.VersionedHandler when the engine tracks
// versions; it returns nil otherwise.
func (h EngineHandler) Versions() map[string]int64 {
	if v, ok := h.Engine.(source.Versioned); ok {
		return v.Versions()
	}
	return nil
}

// mediatorWrapper lets one mediator act as a data source of another: it
// converts the submitted logical expression back to OQL (location
// transparency) and ships the text to the remote mediator.
type mediatorWrapper struct {
	client *wire.Client
}

// Grammar implements wrapper.Wrapper: a mediator evaluates full OQL, so
// every operator composes.
func (*mediatorWrapper) Grammar() *capability.Grammar {
	return capability.Standard(capability.FullOpSet())
}

// Execute implements wrapper.Wrapper.
func (w *mediatorWrapper) Execute(ctx context.Context, expr algebra.Node) (*types.Bag, error) {
	q, err := algebra.ToOQL(expr)
	if err != nil {
		return nil, err
	}
	raw, err := w.client.Query(ctx, wire.LangOQL, q.String())
	if err != nil {
		return nil, err
	}
	v, err := types.DecodeValue(raw)
	if err != nil {
		return nil, err
	}
	b, ok := v.(*types.Bag)
	if !ok {
		return nil, fmt.Errorf("remote mediator returned %s, want bag", v.Kind())
	}
	return b, nil
}
