package core

import (
	"sync"
	"time"
)

// Circuit-breaker defaults. A source is declared dead after
// DefaultBreakerThreshold consecutive classified unavailabilities and
// probed again after DefaultBreakerCooldown.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
)

// BreakerState is the state of one source's circuit breaker.
type BreakerState uint8

// Breaker states. Closed is the healthy default: submits flow. Open means
// the source accumulated enough consecutive unavailabilities that routing
// skips it where a replica can answer instead. HalfOpen admits a single
// probe after the cooldown; its outcome closes or reopens the breaker.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breakers tracks a per-source circuit breaker keyed by repository name.
// The availability classifier feeds it (only classified unavailability
// counts as failure — a source that answered, even with an error, is
// alive) and replica routing consults it, so repeat queries skip a
// known-dead copy without re-paying its timeout. It is safe for concurrent
// use.
type Breakers struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu      sync.Mutex
	sources map[string]*sourceBreaker
	// notify is invoked (outside the lock) whenever any source's state
	// changes — the hook the mediator uses to flush cost-model caches.
	notify func()
}

type sourceBreaker struct {
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool
}

// NewBreakers returns a breaker set that opens after threshold consecutive
// failures and half-opens a probe after cooldown. Non-positive arguments
// take the defaults.
func NewBreakers(threshold int, cooldown time.Duration) *Breakers {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breakers{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		sources:   make(map[string]*sourceBreaker),
	}
}

// SetNotify registers a hook invoked after any source's breaker changes
// state. It must be set before the breakers are shared across goroutines.
func (b *Breakers) SetNotify(f func()) { b.notify = f }

func (b *Breakers) get(repo string) *sourceBreaker {
	s, ok := b.sources[repo]
	if !ok {
		s = &sourceBreaker{}
		b.sources[repo] = s
	}
	return s
}

// Allow reports whether a submit may be routed to the source right now.
// Closed always allows. Open allows nothing until the cooldown elapses,
// at which point the breaker transitions to half-open and Allow grants
// exactly one probe (the timer of the half-open protocol); further calls
// are refused until that probe reports Success or Failure.
//
// Allow is advisory: routing falls back to attempting a source whose
// breaker refuses when no healthier copy of the data exists, so an open
// breaker can delay but never forge an unavailability verdict.
func (b *Breakers) Allow(repo string) bool {
	b.mu.Lock()
	s := b.get(repo)
	was := s.state
	var allowed bool
	switch s.state {
	case BreakerClosed:
		allowed = true
	case BreakerOpen:
		if b.now().Sub(s.openedAt) >= b.cooldown {
			s.state = BreakerHalfOpen
			s.probing = true
			allowed = true
		}
	default: // BreakerHalfOpen
		if !s.probing {
			s.probing = true
			allowed = true
		}
	}
	changed := s.state != was
	b.mu.Unlock()
	if changed && b.notify != nil {
		b.notify()
	}
	return allowed
}

// Success records an answered submit (data or a genuine source error —
// either proves the source alive) and closes the breaker.
func (b *Breakers) Success(repo string) {
	b.mu.Lock()
	s := b.get(repo)
	changed := s.state != BreakerClosed
	s.state = BreakerClosed
	s.consecutive = 0
	s.probing = false
	b.mu.Unlock()
	if changed && b.notify != nil {
		b.notify()
	}
}

// Failure records one classified unavailability. The threshold-th
// consecutive failure opens the breaker; a failure while open or
// half-open (a failed probe) re-arms the cooldown.
func (b *Breakers) Failure(repo string) {
	b.mu.Lock()
	s := b.get(repo)
	was := s.state
	s.consecutive++
	s.probing = false
	switch s.state {
	case BreakerClosed:
		if s.consecutive >= b.threshold {
			s.state = BreakerOpen
			s.openedAt = b.now()
		}
	default: // Open or HalfOpen: the probe failed, re-arm the cooldown.
		s.state = BreakerOpen
		s.openedAt = b.now()
	}
	changed := s.state != was
	b.mu.Unlock()
	if changed && b.notify != nil {
		b.notify()
	}
}

// Release returns an unredeemed half-open probe slot: the attempt Allow
// admitted was abandoned before producing a verdict (caller cancelled, or
// the call failed mediator-side without dialing the source). Without it a
// claimed probe would pin the breaker half-open forever.
func (b *Breakers) Release(repo string) {
	b.mu.Lock()
	if s, ok := b.sources[repo]; ok {
		s.probing = false
	}
	b.mu.Unlock()
}

// Admittable reports whether Allow would admit the source right now,
// without claiming the half-open probe slot. Routing uses it to partition
// a shard's copies into healthy and deferred before any of them is dialed
// — the deadline split needs the healthy count first — leaving the actual
// slot claim to the Allow call made when a copy is launched.
func (b *Breakers) Admittable(repo string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.sources[repo]
	if !ok {
		return true
	}
	switch s.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return b.now().Sub(s.openedAt) >= b.cooldown
	default: // BreakerHalfOpen
		return !s.probing
	}
}

// State returns the source's current breaker state without side effects
// (an open breaker past its cooldown still reads Open until a router asks
// Allow). Unknown sources read Closed.
func (b *Breakers) State(repo string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s, ok := b.sources[repo]; ok {
		return s.state
	}
	return BreakerClosed
}
