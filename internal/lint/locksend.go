package lint

import (
	"go/ast"
	"go/token"
)

// LockSend mechanizes the probe-slot/stall class: blocking channel work
// performed while a mutex is held couples everyone contending on that
// lock to whoever is supposed to unblock the channel — and when the
// unblocking party needs the same lock (PR 6's probe-slot accounting came
// one refactor away from exactly this), the deadlock only shows under
// load. While any Lock/RLock is lexically held, the analyzer flags
// channel sends, channel receives, and selects without a default: each
// can block indefinitely. Non-blocking forms (selects with a default,
// close, sync.Cond use) pass. Lock tracking is per-function and lexical:
// holds entered in a branch do not leak past it, deferred Unlocks hold to
// function end, and function literals start lock-free (they run on their
// own goroutine or later).
var LockSend = &Analyzer{
	Name: "locksend",
	Doc: "flags blocking channel operations (send, receive, select without default) while a mutex is lexically held; " +
		"move the channel work off the lock, or annotate with //lint:allow locksend <why>",
	Match: matchPrefixes(
		"disco/internal/core",
		"disco/internal/physical",
		"disco/internal/wire",
		"disco/internal/source",
	),
	Run: runLockSend,
}

func runLockSend(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					scanLocked(pass, x.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				scanLocked(pass, x.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// scanLocked walks a statement list in order, tracking which mutexes are
// held, and reports blocking channel operations that occur under one.
// Nested blocks get a copy of the held set: a lock taken inside a branch
// conservatively does not count as held after it.
func scanLocked(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		scanStmt(pass, s, held)
	}
}

func scanStmt(pass *Pass, s ast.Stmt, held map[string]bool) {
	switch x := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if recv, ok := selCall(call, "Lock", "RLock"); ok && recv != "" {
				held[recv] = true
				return
			}
			if recv, ok := selCall(call, "Unlock", "RUnlock"); ok && recv != "" {
				delete(held, recv)
				return
			}
		}
		checkExpr(pass, x.X, held)
	case *ast.SendStmt:
		report(pass, x.Pos(), "channel send", held)
		checkExpr(pass, x.Value, held)
	case *ast.DeferStmt:
		if _, ok := selCall(x.Call, "Unlock", "RUnlock"); ok {
			return // lock now held to function end: keep it in the set
		}
		for _, a := range x.Call.Args {
			checkExpr(pass, a, held) // defer args evaluate now
		}
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			checkExpr(pass, a, held) // go args evaluate now; the body runs elsewhere
		}
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			checkExpr(pass, e, held)
		}
		for _, e := range x.Lhs {
			checkExpr(pass, e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			checkExpr(pass, e, held)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.LabeledStmt:
		if l, ok := x.(*ast.LabeledStmt); ok {
			scanStmt(pass, l.Stmt, held)
			return
		}
		checkExpr(pass, x.(ast.Node), held)
	case *ast.BlockStmt:
		scanLocked(pass, x.List, clone(held))
	case *ast.IfStmt:
		scanStmt(pass, x.Init, held)
		checkExpr(pass, x.Cond, held)
		scanLocked(pass, x.Body.List, clone(held))
		scanStmt(pass, x.Else, clone(held))
	case *ast.ForStmt:
		scanStmt(pass, x.Init, held)
		checkExpr(pass, x.Cond, held)
		inner := clone(held)
		scanLocked(pass, x.Body.List, inner)
		scanStmt(pass, x.Post, inner)
	case *ast.RangeStmt:
		checkExpr(pass, x.X, held)
		scanLocked(pass, x.Body.List, clone(held))
	case *ast.SwitchStmt:
		scanStmt(pass, x.Init, held)
		checkExpr(pass, x.Tag, held)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					checkExpr(pass, e, held)
				}
				scanLocked(pass, cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		scanStmt(pass, x.Init, held)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLocked(pass, cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			report(pass, x.Pos(), "select without a default case", held)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanLocked(pass, cc.Body, clone(held))
			}
		}
	}
}

// checkExpr reports channel receives inside an expression evaluated while
// locks are held, without descending into function literals.
func checkExpr(pass *Pass, e ast.Node, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	inspectSkipFuncLit(e, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			report(pass, u.Pos(), "channel receive", held)
		}
		return true
	})
}

func report(pass *Pass, pos token.Pos, what string, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	lock := ""
	for l := range held {
		if lock == "" || l < lock {
			lock = l
		}
	}
	pass.Reportf(pos,
		"%s while %s is held can block every goroutine contending on the lock (and deadlocks outright if the "+
			"unblocking party needs it); move the channel work off the critical section, or mark a proven-non-blocking "+
			"site with //lint:allow locksend <why>", what, lock)
}

func clone(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
